// Command confidence reproduces a panel of the paper's Figure 2 at small
// scale: value-prediction confidence for the gcc workload, comparing the
// saturating up/down counter sweep against automatically designed FSM
// confidence predictors cross-trained on the other four programs (§6).
package main

import (
	"fmt"
	"log"
	"sort"

	"fsmpredict/internal/experiments"
	"fsmpredict/internal/stats"
)

func main() {
	log.SetFlags(0)
	const program = "gcc"
	cfg := experiments.Config{LoadEvents: 80_000, Histories: []int{2, 6, 10}}

	fmt.Printf("value-prediction confidence for %s (cross-trained on the other programs)\n\n", program)
	res, err := experiments.Figure2(program, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("saturating up/down counters — Pareto frontier of the §3.1 sweep:")
	tbl := &stats.Table{Headers: []string{"accuracy", "coverage"}}
	for _, p := range res.SUDFrontier() {
		tbl.AddRow(fmt.Sprintf("%.1f%%", p.X*100), fmt.Sprintf("%.1f%%", p.Y*100))
	}
	fmt.Println(tbl)

	hists := make([]int, 0, len(res.Curves))
	for h := range res.Curves {
		hists = append(hists, h)
	}
	sort.Ints(hists)
	for _, h := range hists {
		fmt.Printf("custom FSM, history %d (threshold sweep; states per design shown):\n", h)
		tbl := &stats.Table{Headers: []string{"bias thr", "states", "accuracy", "coverage"}}
		for _, p := range res.Curves[h] {
			tbl.AddRow(
				fmt.Sprintf("%.2f", p.Threshold),
				p.Machine.NumStates(),
				fmt.Sprintf("%.1f%%", p.Result.Accuracy()*100),
				fmt.Sprintf("%.1f%%", p.Result.Coverage()*100),
			)
		}
		fmt.Println(tbl)
	}

	fmt.Println("CSV of all series (paste into a plotter to redraw Figure 2):")
	fmt.Print(stats.CSV(res.Series()))
}
