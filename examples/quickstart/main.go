// Command quickstart walks through the paper's §4 worked example: the
// trace t = 0000 1000 1011 1101 1110 1111 is profiled into a
// second-order Markov model, partitioned into pattern sets, minimized,
// turned into a regular expression and compiled down to the 3-state
// machine of Figure 1, which is then simulated, rendered as DOT, and
// emitted as VHDL.
package main

import (
	"fmt"
	"log"

	"fsmpredict"
)

const paperTrace = "0000 1000 1011 1101 1110 1111"

func main() {
	log.SetFlags(0)

	design, err := fsmpredict.DesignFromTrace(paperTrace, fsmpredict.Options{
		Order: 2,
		Name:  "quickstart",
		// The walkthrough prints the intermediate machine sizes, so ask
		// for the full regex→NFA→DFA pipeline instead of the default
		// direct construction.
		Artifacts: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace t = %s\n\n", paperTrace)

	fmt.Println("1. second-order Markov model (P[1|history]):")
	for h := uint32(0); h < 4; h++ {
		c := design.Model.Count(h)
		fmt.Printf("   P[1|%02b] = %d/%d\n", h, c.Ones, c.Total())
	}

	fmt.Printf("\n2. pattern sets: predict-1 = %v, predict-0 = %v\n",
		design.Partition.PredictOne, design.Partition.PredictZero)

	fmt.Printf("3. minimized cover (Espresso step): %v\n", design.Cover)
	fmt.Printf("4. intermediate machines: NFA %d states -> DFA %d -> minimized %d -> final %d\n",
		design.NFAStates, design.DFAStates, design.MinimizedStates,
		design.Machine.NumStates())

	m := design.Machine
	fmt.Printf("\n5. final machine (Figure 1, right): %s\n", m)

	// Drive the machine over the training trace and report steady-state
	// accuracy. The packed trace feeds the byte-blocked simulation kernel
	// directly — no []bool expansion.
	trace, err := fsmpredict.ParseBits(paperTrace)
	if err != nil {
		log.Fatal(err)
	}
	res := m.SimulateBits(trace, 2)
	fmt.Printf("\n6. replaying t: %d/%d correct after warm-up (miss rate %.1f%%)\n",
		res.Correct, res.Total, res.MissRate()*100)

	fmt.Printf("\n7. Graphviz rendering:\n%s\n", m.DOT())

	vhdlSrc, err := fsmpredict.GenerateVHDL(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8. synthesizable VHDL:\n%s\n", vhdlSrc)

	area, err := fsmpredict.EstimateArea(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("9. estimated area: %.1f gate equivalents\n", area)
}
