// Command gating demonstrates the §2.5 application of designed FSM
// predictors: confidence-directed pipeline gating (Manne et al.). A
// confidence estimator watches the branch predictor; when it is not
// confident, the fetch unit stalls instead of running down a probably
// wrong path. The example designs an FSM estimator from a profile of the
// baseline predictor's correctness stream and compares it against
// resetting counters across a range of thresholds.
package main

import (
	"fmt"
	"log"

	"fsmpredict"
	"fsmpredict/internal/bpred"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/gating"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/workload"
)

func main() {
	log.SetFlags(0)
	const benchmark = "ijpeg"
	prog, err := workload.ByName(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	train := prog.Generate(workload.Train, 120_000)
	test := prog.Generate(workload.Test, 120_000)

	fmt.Printf("pipeline gating on %s (XScale baseline)\n\n", benchmark)
	base := bpred.Run(bpred.NewXScale(), test)
	fmt.Printf("baseline: %.2f%% mispredictions -> wrong-path fetch on %d of %d branches\n\n",
		100*base.MissRate(), base.Misses, base.Total)

	model := gating.CorrectnessModel(bpred.NewXScale(), train, 8)

	tbl := &stats.Table{Headers: []string{
		"estimator", "recall (wrong-path avoided)", "precision", "false stalls",
	}}
	for _, thr := range []float64{0.5, 0.7, 0.9} {
		design, err := fsmpredict.DesignFromModel(model, fsmpredict.Options{
			BiasThreshold: thr,
			Name:          fmt.Sprintf("gate_t%02.0f", thr*100),
		})
		if err != nil {
			log.Fatal(err)
		}
		r := gating.Simulate(bpred.NewXScale(), design.Machine.NewRunner(), test)
		tbl.AddRow(
			fmt.Sprintf("FSM thr=%.1f (%d states)", thr, design.Machine.NumStates()),
			fmt.Sprintf("%.1f%%", 100*r.Recall()),
			fmt.Sprintf("%.1f%%", 100*r.Precision()),
			fmt.Sprintf("%.1f%%", 100*r.FalseStallRate()),
		)
	}
	for _, cfg := range []struct{ max, thr int }{{4, 2}, {8, 4}, {8, 6}} {
		r := gating.Simulate(bpred.NewXScale(), counters.NewResetting(cfg.max, cfg.thr), test)
		tbl.AddRow(
			fmt.Sprintf("resetting ctr max=%d thr=%d", cfg.max, cfg.thr),
			fmt.Sprintf("%.1f%%", 100*r.Recall()),
			fmt.Sprintf("%.1f%%", 100*r.Precision()),
			fmt.Sprintf("%.1f%%", 100*r.FalseStallRate()),
		)
	}
	fmt.Println(tbl)
	fmt.Println("recall = fraction of mispredictions whose wrong-path fetch was avoided")
	fmt.Println("precision = fraction of stalls that actually avoided a misprediction")
}
