// Command loopterm uses the design flow for the loop-termination
// prediction the paper cites as a motivating customization (§7.5 /
// Sherwood & Calder, "Loop Termination Prediction"): a counted loop
// branch with a fixed trip count defeats a 2-bit counter (it always
// mispredicts the exit), while an automatically designed FSM with enough
// history predicts the exit perfectly.
package main

import (
	"fmt"
	"log"

	"fsmpredict"
	"fsmpredict/internal/counters"
)

func main() {
	log.SetFlags(0)
	const trip = 6 // taken 5 times, then the exit (not-taken)

	// The loop branch's outcome stream.
	var trace []bool
	for i := 0; i < 5000; i++ {
		trace = append(trace, i%trip != trip-1)
	}

	design, err := fsmpredict.DesignFromBools(trace, fsmpredict.Options{
		Order: trip,
		Name:  "loop_termination",
	})
	if err != nil {
		log.Fatal(err)
	}
	m := design.Machine
	fmt.Printf("loop with trip count %d\n", trip)
	fmt.Printf("designed FSM: %d states, cover %v\n\n", m.NumStates(), design.Cover)

	// Head-to-head against the classic 2-bit counter.
	fsmRes := m.Simulate(trace, trip)
	twoBit := counters.NewTwoBit()
	total, misses := 0, 0
	for i, taken := range trace {
		if i >= trip {
			total++
			if twoBit.Predict() != taken {
				misses++
			}
		}
		twoBit.Update(taken)
	}

	fmt.Printf("%-22s miss rate\n", "predictor")
	fmt.Printf("%-22s %.2f%%   (always mispredicts the exit)\n",
		"2-bit counter", 100*float64(misses)/float64(total))
	fmt.Printf("%-22s %.2f%%   (tracks the trip count in its states)\n",
		"custom FSM", 100*fsmRes.MissRate())

	if k, ok := m.SyncDepth(); ok {
		fmt.Printf("\nthe FSM synchronizes after %d outcomes: it can be updated on\n", k)
		fmt.Println("every branch (the paper's update-all policy) and still be in the")
		fmt.Println("right state whenever the loop branch is fetched.")
	}

	area, err := fsmpredict.EstimateArea(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nestimated area: %.1f gate equivalents\n", area)
}
