// Command branchcustom builds the paper's customized branch prediction
// architecture (§7) for the ijpeg benchmark: it profiles the training
// input with the XScale baseline, designs per-branch FSM predictors for
// the worst-predicted branches from their global-history Markov models,
// and measures the resulting architecture against XScale, gshare and LGC
// on a different input — the custom-diff protocol of Figure 5.
package main

import (
	"fmt"
	"log"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/experiments"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/workload"
)

func main() {
	log.SetFlags(0)
	const benchmark = "ijpeg"
	const events = 150_000

	prog, err := workload.ByName(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	train := prog.Generate(workload.Train, events)
	test := prog.Generate(workload.Test, events)
	fmt.Printf("benchmark %s: %d training / %d test branches\n\n",
		benchmark, len(train), len(test))

	// Step 1: rank branches by baseline mispredictions.
	ranked := bpred.RankByMisses(train)
	fmt.Println("worst-predicted branches under the XScale baseline:")
	tbl := &stats.Table{Headers: []string{"pc", "executions", "misses", "miss rate"}}
	for i, r := range ranked {
		if i >= 5 {
			break
		}
		tbl.AddRow(fmt.Sprintf("%#x", r.PC), r.Execs, r.Misses,
			fmt.Sprintf("%.1f%%", 100*float64(r.Misses)/float64(r.Execs)))
	}
	fmt.Println(tbl)

	// Step 2: design custom FSMs for the top branches (§7.3, history 9).
	entries, err := bpred.TrainCustom(train, bpred.TrainOptions{
		MaxEntries: 8, Order: 9, MinExecutions: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom FSM predictors (rank order):")
	tbl = &stats.Table{Headers: []string{"pc", "states", "sync depth"}}
	for _, e := range entries {
		depth := "-"
		if k, ok := e.Machine.SyncDepth(); ok {
			depth = fmt.Sprintf("%d", k)
		}
		tbl.AddRow(fmt.Sprintf("%#x", e.Tag), e.Machine.NumStates(), depth)
	}
	fmt.Println(tbl)

	// Step 3: evaluate the architecture sweep on the unseen input.
	areaModel := func(states int) float64 { return 20 + 2.2*float64(states) }
	fmt.Println("misprediction rate vs estimated area (custom-diff):")
	tbl = &stats.Table{Headers: []string{"predictor", "area (GE)", "miss rate"}}
	x := bpred.NewXScale()
	xr := bpred.Run(x, test)
	tbl.AddRow("xscale", fmt.Sprintf("%.0f", x.Area()), fmt.Sprintf("%.2f%%", 100*xr.MissRate()))
	for m := 1; m <= len(entries); m++ {
		c := bpred.NewCustom(entries[:m])
		c.FSMArea = areaModel
		r := bpred.Run(c, test)
		tbl.AddRow(fmt.Sprintf("custom-%d", m), fmt.Sprintf("%.0f", c.Area()),
			fmt.Sprintf("%.2f%%", 100*r.MissRate()))
	}
	for _, bits := range []int{10, 12, 14, 16} {
		g := bpred.NewGshare(bits)
		r := bpred.Run(g, test)
		tbl.AddRow(g.Name(), fmt.Sprintf("%.0f", g.Area()), fmt.Sprintf("%.2f%%", 100*r.MissRate()))
	}
	for _, bits := range []int{8, 10, 12} {
		l := bpred.NewLGC(bits)
		r := bpred.Run(l, test)
		tbl.AddRow(l.Name(), fmt.Sprintf("%.0f", l.Area()), fmt.Sprintf("%.2f%%", 100*r.MissRate()))
	}
	fmt.Println(tbl)

	// Step 4: the Figure 6 showcase — the simple correlated-branch
	// machine, captured from any state.
	f6, err := experiments.Figure6(experiments.Config{BranchEvents: events})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 6 example (branch %#x): cover %v, machine %s\n",
		f6.PC, f6.Cover, f6.Machine)
	if _, _, ok := f6.CapturesFromAnyState(); ok {
		fmt.Println("verified: the pattern is captured starting from ANY state (§7.6)")
	}
}
