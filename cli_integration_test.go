package fsmpredict_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTool compiles one cmd/ binary into dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestCommandLineWorkflow builds the command-line tools and exercises the
// documented end-to-end workflow: generate a benchmark trace with
// tracegen, inspect it with fsmgen, and design a per-branch predictor
// from it — the release smoke test.
func TestCommandLineWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tracegen := buildTool(t, dir, "tracegen")
	fsmgen := buildTool(t, dir, "fsmgen")

	run := func(bin string, args ...string) string {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		return string(out)
	}

	// 1. List benchmarks.
	if out := run(tracegen, "-list"); !strings.Contains(out, "ijpeg") {
		t.Fatalf("tracegen -list missing benchmarks:\n%s", out)
	}

	// 2. Generate a trace.
	traceFile := filepath.Join(dir, "ijpeg.btrc")
	run(tracegen, "-bench", "ijpeg", "-n", "40000", "-o", traceFile)
	if fi, err := os.Stat(traceFile); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}

	// 3. Profile it.
	profile := run(fsmgen, "-branch-trace", traceFile)
	if !strings.Contains(profile, "0x12005008") {
		t.Fatalf("profile missing expected branch:\n%s", profile)
	}

	// 4. Design the Figure 6 branch's predictor and emit VHDL.
	design := run(fsmgen, "-branch-trace", traceFile, "-pc", "0x12005008",
		"-order", "9", "-vhdl")
	for _, want := range []string{
		"minimized cover: [xxxxxxx1x]",
		"final 4 states",
		"synchronizes after 2 inputs",
		"entity branch_0x12005008 is",
	} {
		if !strings.Contains(design, want) {
			t.Errorf("fsmgen output missing %q:\n%s", want, design)
		}
	}

	// 5. Inline-trace mode with DOT output.
	quick := run(fsmgen, "-trace", "0000 1000 1011 1101 1110 1111",
		"-order", "2", "-dot")
	if !strings.Contains(quick, "final 3 states") || !strings.Contains(quick, "digraph") {
		t.Errorf("worked example output wrong:\n%s", quick)
	}

	// 6. SimPoint-sampled trace generation.
	sampled := filepath.Join(dir, "sampled.btrc")
	out := run(tracegen, "-bench", "vortex", "-n", "100000", "-simpoint", "-o", sampled)
	if !strings.Contains(out, "representatives") {
		t.Errorf("simpoint summary missing:\n%s", out)
	}
}

// TestCommandLineBadFlagsExitTwo asserts the unified flag-validation
// convention: every tool rejects an invalid or missing flag value with
// usage on stderr and exit status 2, the same status the flag package
// uses for unknown flags.
func TestCommandLineBadFlagsExitTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	cases := []struct {
		tool string
		args []string
	}{
		{"fsmgen", []string{"-trace", "0101", "-order", "99"}},
		{"fsmgen", []string{"-trace", "0101", "-order", "0"}},
		{"fsmgen", []string{"-trace", "0101", "-threshold", "1.5"}},
		{"fsmgen", []string{}}, // no trace source at all
		{"fsmgen", []string{"-branch-trace", "x.btrc", "-pc", "zzz"}},
		{"fsmgen", []string{"-trace", "0101", "stray-arg"}},
		{"tracegen", []string{}}, // missing -bench
		{"tracegen", []string{"-bench", "ijpeg", "-variant", "bogus"}},
		{"tracegen", []string{"-bench", "nosuchbench"}},
		{"tracegen", []string{"-bench", "ijpeg", "-n", "-5"}},
		{"tracegen", []string{"-bench", "gcc", "-loads", "-simpoint"}},
		{"areabench", []string{"-sample", "2.0"}},
		{"areabench", []string{"-n", "0"}},
		{"branchbench", []string{"-prog", "nosuch"}},
		{"branchbench", []string{"-n", "-1"}},
		{"confbench", []string{"-prog", "nosuch"}},
		{"confbench", []string{"-n", "0"}},
		{"fsmserved", []string{"-workers", "-3"}},
		{"fsmserved", []string{"-timeout", "-1s"}},
		// The flag package's own unknown-flag path must agree.
		{"fsmgen", []string{"-no-such-flag"}},
	}
	built := map[string]string{}
	for _, c := range cases {
		bin, ok := built[c.tool]
		if !ok {
			bin = buildTool(t, dir, c.tool)
			built[c.tool] = bin
		}
		t.Run(c.tool+"_"+strings.Join(c.args, "_"), func(t *testing.T) {
			var stderr bytes.Buffer
			cmd := exec.Command(bin, c.args...)
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("%s %v: err = %v, want exit error", c.tool, c.args, err)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("%s %v: exit code = %d, want 2\nstderr:\n%s", c.tool, c.args, code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-") {
				t.Errorf("%s %v: stderr lacks usage text:\n%s", c.tool, c.args, stderr.String())
			}
		})
	}
}

// TestFSMServedEndToEnd boots the design daemon on a random port,
// designs the paper's Figure 1 trace over HTTP, verifies the metrics
// endpoint reflects the request, and shuts the daemon down with SIGTERM.
func TestFSMServedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "fsmserved")

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs "listening on 127.0.0.1:PORT" once the socket is
	// bound; everything after that line is kept flowing to avoid
	// blocking the child on a full pipe.
	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never reported its address: %v", sc.Err())
	}
	drained := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
		drained <- rest.String()
	}()

	// Design the Figure 1 trace (N=2): the paper's 3-state machine.
	body, err := json.Marshal(map[string]any{
		"trace":   "000010001011110111101111",
		"options": map[string]any{"order": 2, "name": "fig1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/design", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/design: %v", err)
	}
	var design struct {
		States   int             `json:"states"`
		Machine  json.RawMessage `json:"machine"`
		VHDL     string          `json:"vhdl"`
		AreaGE   float64         `json:"area_ge"`
		CacheHit bool            `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&design); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || design.States != 3 {
		t.Fatalf("design: status %d, states %d, want 200 and the paper's 3 states", resp.StatusCode, design.States)
	}
	if !strings.Contains(design.VHDL, "entity fig1 is") || design.AreaGE <= 0 {
		t.Errorf("design payload incomplete: area=%v vhdl=%q...", design.AreaGE, design.VHDL[:min(60, len(design.VHDL))])
	}

	// Simulate the designed machine on its own trace.
	simBody := fmt.Sprintf(`{"machine":%s,"trace":"000010001011110111101111","skip":2}`, design.Machine)
	resp, err = http.Post(base+"/v1/simulate", "application/json", strings.NewReader(simBody))
	if err != nil {
		t.Fatal(err)
	}
	var sim struct {
		Total   int `json:"total"`
		Correct int `json:"correct"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sim.Total != 22 || sim.Correct == 0 {
		t.Errorf("simulate = %+v", sim)
	}

	// Health and metrics must reflect the served design.
	resp, err = http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics strings.Builder
	msc := bufio.NewScanner(resp.Body)
	for msc.Scan() {
		metrics.WriteString(msc.Text())
		metrics.WriteByte('\n')
	}
	resp.Body.Close()
	for _, want := range []string{
		"fsmpredict_design_requests_total 1",
		"fsmpredict_designs_completed_total 1",
		"fsmpredict_simulate_requests_total 1",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics.String())
		}
	}

	// SIGTERM: the daemon must drain and exit 0. Read stderr to EOF
	// before Wait — Wait closes the pipe and would race the scanner.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var rest string
	select {
	case rest = <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited with %v after SIGTERM\nstderr:\n%s", err, rest)
	}
	if !strings.Contains(rest, "shut down cleanly") {
		t.Errorf("daemon log missing clean-shutdown line:\n%s", rest)
	}
}

// TestFSMServedBatchDrainOnSIGTERM terminates the daemon while an
// NDJSON batch request is mid-flight with items parked in the
// coalescing batcher: every accepted line must still get its response
// line and the daemon must exit 0 — shutdown drains the batch plane,
// it does not drop it.
func TestFSMServedBatchDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "fsmserved")

	// A long batch wait guarantees the items are still waiting for
	// company in the batcher when SIGTERM lands.
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-batch", "64", "-batch-wait", "2s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never reported its address: %v", sc.Err())
	}
	drained := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
		drained <- rest.String()
	}()

	// Stream the batch request through a pipe so the connection is
	// still open — and the lines already accepted — when the signal
	// arrives.
	const n = 6
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/batch/design", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type batchLine struct {
		Index  int    `json:"index"`
		ID     string `json:"id"`
		Error  string `json:"error"`
		Result *struct {
			States int `json:"states"`
		} `json:"result"`
	}
	type lineResult struct {
		lines map[int]batchLine
		err   error
	}
	resc := make(chan lineResult, 1)
	go func() {
		out := lineResult{lines: make(map[int]batchLine)}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			out.err = err
			resc <- out
			return
		}
		defer resp.Body.Close()
		rsc := bufio.NewScanner(resp.Body)
		for rsc.Scan() {
			var line batchLine
			if err := json.Unmarshal(rsc.Bytes(), &line); err != nil {
				out.err = err
				resc <- out
				return
			}
			out.lines[line.Index] = line
		}
		out.err = rsc.Err()
		resc <- out
	}()

	for i := 0; i < n; i++ {
		line := fmt.Sprintf(`{"id":"d%d","trace":"000010001011110111101111","options":{"order":2,"name":"m%d"}}`+"\n", i, i)
		if _, err := io.WriteString(pw, line); err != nil {
			t.Fatal(err)
		}
	}

	// The lines are accepted and parked (2s batch wait); terminate now,
	// then end the request body so the handler can finish draining.
	time.Sleep(100 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	pw.Close()

	var res lineResult
	select {
	case res = <-resc:
	case <-time.After(20 * time.Second):
		t.Fatal("batch response did not complete after SIGTERM")
	}
	if res.err != nil {
		t.Fatalf("batch response: %v", res.err)
	}
	if len(res.lines) != n {
		t.Fatalf("got %d response lines, want %d — accepted requests were dropped on shutdown", len(res.lines), n)
	}
	for i := 0; i < n; i++ {
		line, ok := res.lines[i]
		if !ok {
			t.Fatalf("no response for index %d", i)
		}
		if line.Error != "" {
			t.Errorf("index %d dropped on shutdown: %s", i, line.Error)
		} else if line.Result == nil || line.Result.States != 3 {
			t.Errorf("index %d: result %+v, want the paper's 3 states", i, line.Result)
		}
		if want := fmt.Sprintf("d%d", i); line.ID != want {
			t.Errorf("index %d: id %q, want %q", i, line.ID, want)
		}
	}

	var rest string
	select {
	case rest = <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited with %v after SIGTERM\nstderr:\n%s", err, rest)
	}
	if !strings.Contains(rest, "shut down cleanly") {
		t.Errorf("daemon log missing clean-shutdown line:\n%s", rest)
	}
}
