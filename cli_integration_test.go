package fsmpredict_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineWorkflow builds the command-line tools and exercises the
// documented end-to-end workflow: generate a benchmark trace with
// tracegen, inspect it with fsmgen, and design a per-branch predictor
// from it — the release smoke test.
func TestCommandLineWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	tracegen := build("tracegen")
	fsmgen := build("fsmgen")

	run := func(bin string, args ...string) string {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		return string(out)
	}

	// 1. List benchmarks.
	if out := run(tracegen, "-list"); !strings.Contains(out, "ijpeg") {
		t.Fatalf("tracegen -list missing benchmarks:\n%s", out)
	}

	// 2. Generate a trace.
	traceFile := filepath.Join(dir, "ijpeg.btrc")
	run(tracegen, "-bench", "ijpeg", "-n", "40000", "-o", traceFile)
	if fi, err := os.Stat(traceFile); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}

	// 3. Profile it.
	profile := run(fsmgen, "-branch-trace", traceFile)
	if !strings.Contains(profile, "0x12005008") {
		t.Fatalf("profile missing expected branch:\n%s", profile)
	}

	// 4. Design the Figure 6 branch's predictor and emit VHDL.
	design := run(fsmgen, "-branch-trace", traceFile, "-pc", "0x12005008",
		"-order", "9", "-vhdl")
	for _, want := range []string{
		"minimized cover: [xxxxxxx1x]",
		"final 4 states",
		"synchronizes after 2 inputs",
		"entity branch_0x12005008 is",
	} {
		if !strings.Contains(design, want) {
			t.Errorf("fsmgen output missing %q:\n%s", want, design)
		}
	}

	// 5. Inline-trace mode with DOT output.
	quick := run(fsmgen, "-trace", "0000 1000 1011 1101 1110 1111",
		"-order", "2", "-dot")
	if !strings.Contains(quick, "final 3 states") || !strings.Contains(quick, "digraph") {
		t.Errorf("worked example output wrong:\n%s", quick)
	}

	// 6. SimPoint-sampled trace generation.
	sampled := filepath.Join(dir, "sampled.btrc")
	out := run(tracegen, "-bench", "vortex", "-n", "100000", "-simpoint", "-o", sampled)
	if !strings.Contains(out, "representatives") {
		t.Errorf("simpoint summary missing:\n%s", out)
	}
}
