package fsmpredict_test

import (
	"context"
	"strings"
	"testing"

	"fsmpredict"
)

func TestQuickstartFlow(t *testing.T) {
	design, err := fsmpredict.DesignFromTrace("0000 1000 1011 1101 1110 1111",
		fsmpredict.Options{Order: 2, Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	m := design.Machine
	if m.NumStates() != 3 {
		t.Fatalf("machine has %d states, want 3", m.NumStates())
	}
	r := m.NewRunner()
	r.Update(true)
	r.Update(true)
	if !r.Predict() {
		t.Error("after 11 the machine should predict 1")
	}
	r.Update(false)
	r.Update(false)
	if r.Predict() {
		t.Error("after 00 the machine should predict 0")
	}
}

func TestDesignFromBoolsAndModel(t *testing.T) {
	trace := make([]bool, 200)
	for i := range trace {
		trace[i] = i%2 == 0
	}
	d1, err := fsmpredict.DesignFromBools(trace, fsmpredict.Options{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := fsmpredict.NewModel(2)
	model.AddBools(trace)
	d2, err := fsmpredict.DesignFromModel(model, fsmpredict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fsmpredict.Equal(d1.Machine, d2.Machine) {
		t.Error("trace and model paths should agree")
	}
}

func TestDesignFromTraceBadInput(t *testing.T) {
	if _, err := fsmpredict.DesignFromTrace("012", fsmpredict.Options{Order: 2}); err == nil {
		t.Error("expected parse error")
	}
	if _, err := fsmpredict.DesignFromTrace("0101", fsmpredict.Options{Order: 0}); err == nil {
		t.Error("expected order error")
	}
}

func TestVHDLAndSynthesis(t *testing.T) {
	design, err := fsmpredict.DesignFromTrace("0000 1000 1011 1101 1110 1111",
		fsmpredict.Options{Order: 2, Name: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	src, err := fsmpredict.GenerateVHDL(design.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "entity quick is") {
		t.Errorf("VHDL missing entity:\n%s", src)
	}
	syn, err := fsmpredict.Synthesize(design.Machine)
	if err != nil {
		t.Fatal(err)
	}
	area, err := fsmpredict.EstimateArea(design.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if area != syn.Area || area <= 0 {
		t.Errorf("area = %v, synthesis area = %v", area, syn.Area)
	}
}

func TestMachineForCover(t *testing.T) {
	c, err := fsmpredict.ParseCube("1x")
	if err != nil {
		t.Fatal(err)
	}
	m, err := fsmpredict.MachineForCover([]fsmpredict.Cube{c}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 4 {
		t.Errorf("machine states = %d, want 4 (paper Figure 6)", m.NumStates())
	}
	// Prediction = input two steps ago, from any state.
	r := m.NewRunner()
	r.Update(true)
	r.Update(false)
	if !r.Predict() {
		t.Error("history 10 should predict 1")
	}
}

func TestPublicSynthesisSurface(t *testing.T) {
	design, err := fsmpredict.DesignFromTrace("0000 1000 1011 1101 1110 1111",
		fsmpredict.Options{Order: 2, Name: "surface"})
	if err != nil {
		t.Fatal(err)
	}
	best, err := fsmpredict.SynthesizeBest(design.Machine)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := fsmpredict.Synthesize(design.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if best.Area > plain.Area {
		t.Errorf("SynthesizeBest (%v) worse than Synthesize (%v)", best.Area, plain.Area)
	}
	tb, err := fsmpredict.GenerateTestbench(design.Machine, []bool{true, false, true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb, "entity surface_tb is") {
		t.Errorf("testbench missing entity:\n%s", tb)
	}
}

func TestServiceFacade(t *testing.T) {
	svc := fsmpredict.NewService(fsmpredict.ServiceConfig{Workers: 2})
	defer svc.Close()
	ctx := context.Background()
	res, cached, err := svc.DesignString(ctx, "0000 1000 1011 1101 1110 1111",
		fsmpredict.Options{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first request reported cached")
	}
	if res.States != 3 {
		t.Errorf("states = %d, want 3", res.States)
	}
	if _, cached, err = svc.DesignString(ctx, "0000 1000 1011 1101 1110 1111",
		fsmpredict.Options{Order: 2}); err != nil || !cached {
		t.Errorf("repeat: cached=%v err=%v, want cache hit", cached, err)
	}
}
