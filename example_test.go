package fsmpredict_test

import (
	"fmt"

	"fsmpredict"
)

// ExampleDesignFromTrace runs the paper's §4 worked example end to end.
func ExampleDesignFromTrace() {
	design, err := fsmpredict.DesignFromTrace(
		"0000 1000 1011 1101 1110 1111",
		fsmpredict.Options{Order: 2, Name: "example"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cover: %v\n", design.Cover)
	fmt.Printf("states: %d\n", design.Machine.NumStates())

	r := design.Machine.NewRunner()
	r.Update(false)
	r.Update(false)
	fmt.Printf("after 00 predict %v\n", r.Predict())
	r.Update(true)
	fmt.Printf("after 001 predict %v\n", r.Predict())
	// Output:
	// cover: [x1 1x]
	// states: 3
	// after 00 predict false
	// after 001 predict true
}

// ExampleDesignFromModel builds a predictor from an explicit Markov
// model — the path used when profiles are aggregated across a suite.
func ExampleDesignFromModel() {
	model := fsmpredict.NewModel(2)
	// Histories ending in 1 are always followed by 1; others by 0.
	model.ObserveN(0b01, true, 100)
	model.ObserveN(0b11, true, 100)
	model.ObserveN(0b00, false, 100)
	model.ObserveN(0b10, false, 100)

	design, err := fsmpredict.DesignFromModel(model, fsmpredict.Options{})
	if err != nil {
		panic(err)
	}
	// "Predict whatever the last outcome was": two states.
	fmt.Printf("cover: %v, states: %d\n", design.Cover, design.Machine.NumStates())
	// Output:
	// cover: [x1], states: 2
}

// ExampleParseBits replays a packed trace through a designed machine —
// the packed API behind every simulation in the module: the bits stay
// in 64-bit words and the replay runs 8 events per table lookup on the
// byte-blocked superstep kernel, with results bit-identical to the
// step-by-step Runner walk.
func ExampleParseBits() {
	trace := "0000 1000 1011 1101 1110 1111"
	design, err := fsmpredict.DesignFromTrace(trace,
		fsmpredict.Options{Order: 2, Name: "packed"})
	if err != nil {
		panic(err)
	}
	bits, err := fsmpredict.ParseBits(trace)
	if err != nil {
		panic(err)
	}
	res := design.Machine.SimulateBits(bits, 2)
	fmt.Printf("replayed %d events, %d correct after warm-up\n", bits.Len(), res.Correct)
	fmt.Printf("matches bool replay: %v\n", res == design.Machine.Simulate(bits.Bools(), 2))
	// Output:
	// replayed 24 events, 15 correct after warm-up
	// matches bool replay: true
}

// ExampleMachineForCover compiles a hand-written pattern (the paper's
// Figure 6 pattern "1x") directly into a machine.
func ExampleMachineForCover() {
	cube, err := fsmpredict.ParseCube("1x")
	if err != nil {
		panic(err)
	}
	m, err := fsmpredict.MachineForCover([]fsmpredict.Cube{cube}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("states: %d\n", m.NumStates())

	// The machine predicts the outcome observed two updates ago.
	r := m.NewRunner()
	r.Update(true)
	r.Update(false)
	fmt.Printf("prediction: %v\n", r.Predict())
	// Output:
	// states: 4
	// prediction: true
}

// ExampleGenerateVHDL emits the synthesizable hardware description of a
// designed predictor.
func ExampleGenerateVHDL() {
	design, err := fsmpredict.DesignFromTrace("0101 0101 0101 0101",
		fsmpredict.Options{Order: 1, Name: "alternator"})
	if err != nil {
		panic(err)
	}
	src, err := fsmpredict.GenerateVHDL(design.Machine)
	if err != nil {
		panic(err)
	}
	fmt.Println(src[:len("-- Automatically generated FSM predictor (2 states).")])
	area, err := fsmpredict.EstimateArea(design.Machine)
	if err != nil {
		panic(err)
	}
	fmt.Printf("area: %.0f gate equivalents\n", area)
	// Output:
	// -- Automatically generated FSM predictor (2 states).
	// area: 8 gate equivalents
}
