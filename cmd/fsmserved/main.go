// Command fsmserved serves the automated FSM predictor design flow (§4)
// over HTTP: a concurrent daemon with a content-addressed design cache,
// request deduplication, a bounded worker pool that sheds load when
// saturated, and a metrics endpoint.
//
// Usage:
//
//	fsmserved -addr :8080 -workers 8 -queue 64 -cache 1024
//
// Endpoints:
//
//	POST /v1/design         {"trace":"0000 1000 ...","options":{"order":2}}
//	POST /v1/simulate       {"machine":{...},"trace":"0101...","skip":2}
//	POST /v1/batch/design   NDJSON stream of design requests
//	POST /v1/batch/simulate NDJSON stream of simulate requests
//	GET  /healthz
//	GET  /metrics
//
// The /v1/batch endpoints accept one JSON request per line and stream
// one JSON response line per request, possibly out of order; each line
// carries an "index" (and the client's optional "id") for correlation.
// Arrivals within -batch-wait of each other that target the same trace
// coalesce into grouped kernel passes (-batch bounds the group size);
// /metrics reports the achieved coalesce ratio
// (fsmpredict_batch_*_coalesce_ratio_milli).
//
// Instead of an inline "trace", both POST endpoints accept a "workload"
// reference ({"program":"gsm","variant":"train","events":250000,
// "pc":"0x12004008"}) naming a branch trace in the process-wide packed
// trace store; repeated references reuse one generated, packed copy,
// and /metrics exposes the store's hit/miss/byte gauges
// (fsmpredict_tracestore_{hits,misses,bytes}).
//
// Passing -cache-dir gives the design cache, the block-table cache, and
// the trace store a persistent disk tier: a restarted daemon serves
// previously computed artifacts (byte-identical) instead of redesigning
// them. -cache-size bounds the directory (LRU eviction); -cache-serve
// exposes GET /v1/cache/manifest and GET /v1/cache/artifact for peer
// warming, and -warm-from pulls a peer's artifacts at startup.
//
// Passing -pprof host:port additionally serves the net/http/pprof
// endpoints (/debug/pprof/...) on that address, on a mux separate from the
// public listener so profiling is never exposed to API clients.
//
// The daemon exits cleanly on SIGINT/SIGTERM, draining in-flight
// requests first. Each request is bounded by -timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fsmpredict/internal/cachewire"
	"fsmpredict/internal/cliutil"
	"fsmpredict/internal/service"
)

// pprofServer serves the runtime profiling endpoints on their own mux and
// listener, keeping /debug/pprof off the public API surface. It returns
// the bound address (useful with port 0).
func pprofServer(addr string) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	return ln.Addr(), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsmserved: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", 0, "concurrent design pipelines (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "design queue depth before shedding load (0 = 8x workers)")
		cache      = flag.Int("cache", 0, "design cache entries (0 = 1024, negative disables)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		batchMax   = flag.Int("batch", 0, "max requests coalesced into one batch flush (0 = 64)")
		batchWait  = flag.Duration("batch-wait", 0, "max time a batched request waits for company (0 = 2ms)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty disables)")
		cacheDir   = flag.String("cache-dir", "", "persistent artifact cache directory (empty disables the disk tier)")
		cacheSize  = flag.String("cache-size", "", "disk cache size bound, e.g. 512M or 2G (empty = 512M)")
		cacheServe = flag.Bool("cache-serve", false, "expose the disk tier's peer-warming endpoints under /v1/cache")
		warmFrom   = flag.String("warm-from", "", "pull missing cache artifacts from a peer fsmserved base URL at startup")
	)
	flag.Parse()
	if *workers < 0 {
		cliutil.BadUsage("fsmserved: -workers must be >= 0, got %d", *workers)
	}
	if *queue < 0 {
		cliutil.BadUsage("fsmserved: -queue must be >= 0, got %d", *queue)
	}
	if *timeout <= 0 {
		cliutil.BadUsage("fsmserved: -timeout must be positive, got %v", *timeout)
	}
	if *batchMax < 0 {
		cliutil.BadUsage("fsmserved: -batch must be >= 0, got %d", *batchMax)
	}
	if *batchWait < 0 {
		cliutil.BadUsage("fsmserved: -batch-wait must be >= 0, got %v", *batchWait)
	}
	if flag.NArg() > 0 {
		cliutil.BadUsage("fsmserved: unexpected arguments %v", flag.Args())
	}
	maxBytes, err := cachewire.ParseSize(*cacheSize)
	if err != nil {
		cliutil.BadUsage("fsmserved: %v", err)
	}
	if *cacheDir == "" && (*cacheSize != "" || *cacheServe || *warmFrom != "") {
		cliutil.BadUsage("fsmserved: -cache-size, -cache-serve and -warm-from require -cache-dir")
	}
	disk, err := cachewire.Setup(*cacheDir, maxBytes)
	if err != nil {
		log.Fatalf("opening cache dir: %v", err)
	}
	if disk != nil {
		log.Printf("disk cache at %s (%d artifacts)", disk.Dir(), disk.Len())
	}
	if *warmFrom != "" {
		warmCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
		pulled, err := disk.PullFrom(warmCtx, *warmFrom, nil)
		cancel()
		if err != nil {
			// Warming is best-effort: a cold start is slower, not wrong.
			log.Printf("peer warming from %s failed after %d artifacts: %v", *warmFrom, pulled, err)
		} else {
			log.Printf("pulled %d artifacts from %s", pulled, *warmFrom)
		}
	}

	if *pprofAddr != "" {
		pa, err := pprofServer(*pprofAddr)
		if err != nil {
			log.Fatalf("pprof listener: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pa)
	}

	svc := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		BatchMaxSize: *batchMax,
		BatchMaxWait: *batchWait,
		Disk:         disk,
		CacheServe:   *cacheServe,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// http.TimeoutHandler also cancels the request context, which
	// releases the service-side wait for a worker slot — but it buffers
	// the whole response, which would break the batch endpoints'
	// line-by-line streaming. Route /v1/batch/ around it; those streams
	// are instead bounded per line by the service and by the client's
	// connection lifetime.
	api := service.NewHandler(svc)
	timed := http.TimeoutHandler(api, *timeout, "request timed out\n")
	root := http.NewServeMux()
	root.Handle("/v1/batch/", api)
	root.Handle("/", timed)
	srv := &http.Server{
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("listening on %s", ln.Addr())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	svc.Close()
	log.Printf("shut down cleanly")
}
