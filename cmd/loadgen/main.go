// Command loadgen drives an fsmserved instance with design or simulate
// traffic and reports throughput, latency percentiles, and the batch
// plane's coalesce ratio as a JSON summary — the measurement harness
// for the coalescing micro-batch subsystem.
//
// Usage:
//
//	loadgen -url http://host:8080 -mode simulate -transport batch -duration 5s -c 8
//	loadgen -inprocess -transport compare -duration 3s
//
// Two transports hit the same service: "unary" issues one HTTP request
// per item against /v1/design or /v1/simulate; "batch" streams items
// as NDJSON lines over /v1/batch/... with -batch lines per request.
// "compare" runs both back to back at equal concurrency and reports
// the batched-over-unary throughput speedup.
//
// The load is closed-loop by default (-c workers issue back to back);
// -qps switches to an open loop that fires items at the target rate.
// Traffic cycles through -distinct request variants over the stored
// workload traces named by -programs, so batches both coalesce
// (duplicates, shared kernel passes) and stay heterogeneous.
//
// With -min-coalesce the exit status enforces a floor on the measured
// coalesce ratio (CI uses this to prove batching actually batches);
// -min-speedup does the same for the compare transport's speedup.
//
// The -warm mode (requires -inprocess and -cache-dir) measures the
// persistent artifact tier instead: it drives the work list once cold,
// drops every in-process cache while keeping the disk tier, drives the
// same list again, and reports cold/warm latency percentiles, the
// warm-over-cold speedup, and the disk tier's hit counters.
// -min-warm-speedup enforces a floor on that speedup plus at least one
// disk hit (the CI warm-start smoke).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fsmpredict/internal/cachewire"
	"fsmpredict/internal/cliutil"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/service"
)

// opts is the parsed flag set.
type opts struct {
	url         string
	inprocess   bool
	mode        string // design | simulate
	transport   string // unary | batch | compare
	duration    time.Duration
	conc        int
	qps         float64
	batch       int
	programs    []string
	events      int
	order       int
	distinct    int
	minCoalesce float64
	minSpeedup  float64
	cache       int
	srvBatch    int
	srvWait     time.Duration
	warm        bool
	cacheDir    string
	cacheSize   string
	minWarmSpd  float64
}

// latencySummary is the percentile digest of per-item latencies.
type latencySummary struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// runSummary is one transport's measured result.
type runSummary struct {
	Transport  string         `json:"transport"`
	Items      uint64         `json:"items"`
	Requests   uint64         `json:"requests"`
	Errors     uint64         `json:"errors"`
	Seconds    float64        `json:"seconds"`
	ItemsPerS  float64        `json:"items_per_s"`
	Latency    latencySummary `json:"latency"`
	BatchItems uint64         `json:"batch_items,omitempty"`
	Passes     uint64         `json:"batch_passes,omitempty"`
	Coalesce   float64        `json:"coalesce_ratio,omitempty"`
	// FleetMBps is the aggregate trace throughput the fleet kernel
	// sustained across the window (machine-bytes simulated per second,
	// from the fsmpredict_fleet_* counters; simulate mode only).
	FleetMBps float64 `json:"fleet_sim_mb_per_s,omitempty"`
	// SpanSkipRatio is the fraction of simulated events the span kernel
	// advanced through run power tables instead of byte lookups (from
	// fsmpredict_span_skipped_events_total over the fleet's simulated
	// event volume; simulate mode only).
	SpanSkipRatio float64 `json:"span_skip_ratio,omitempty"`
	// FleetDedup is the fraction of fleet machines served by a
	// structural twin's walk instead of their own.
	FleetDedup float64 `json:"fleet_dedup_ratio,omitempty"`
}

// summary is the JSON document loadgen prints.
type summary struct {
	Mode        string       `json:"mode"`
	Concurrency int          `json:"concurrency"`
	TargetQPS   float64      `json:"target_qps,omitempty"`
	BatchLines  int          `json:"batch_lines"`
	Runs        []runSummary `json:"runs"`
	Speedup     float64      `json:"speedup,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var o opts
	var programs string
	flag.StringVar(&o.url, "url", "", "base URL of a running fsmserved (empty with -inprocess)")
	flag.BoolVar(&o.inprocess, "inprocess", false, "serve an in-process fsmserved instead of targeting -url")
	flag.StringVar(&o.mode, "mode", "simulate", "request kind: design or simulate")
	flag.StringVar(&o.transport, "transport", "batch", "unary, batch, or compare (unary then batch)")
	flag.DurationVar(&o.duration, "duration", 3*time.Second, "measurement window per transport")
	flag.IntVar(&o.conc, "c", 8, "concurrent workers (closed loop) or max in-flight (open loop)")
	flag.Float64Var(&o.qps, "qps", 0, "open-loop target items/s (0 = closed loop)")
	flag.IntVar(&o.batch, "batch", 16, "NDJSON lines per batch request")
	flag.StringVar(&programs, "programs", "gsm,vortex", "comma-separated stored workload programs to mix")
	flag.IntVar(&o.events, "events", 20_000, "events per referenced workload trace")
	flag.IntVar(&o.order, "order", 2, "design history order")
	flag.IntVar(&o.distinct, "distinct", 8, "distinct request variants per program")
	flag.Float64Var(&o.minCoalesce, "min-coalesce", 0, "exit 1 if the batch coalesce ratio is below this")
	flag.Float64Var(&o.minSpeedup, "min-speedup", 0, "exit 1 if compare's batched/unary speedup is below this")
	flag.IntVar(&o.cache, "cache", 0, "in-process design cache entries (0 = default, negative disables)")
	flag.IntVar(&o.srvBatch, "server-batch", 0, "in-process server max batch size (0 = service default)")
	flag.DurationVar(&o.srvWait, "server-batch-wait", 0, "in-process server batch wait (0 = service default)")
	flag.BoolVar(&o.warm, "warm", false, "two-phase warm-start measurement: one cold pass over the item set, drop in-process caches, one warm pass (requires -inprocess and -cache-dir)")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "persistent artifact cache directory for the in-process server")
	flag.StringVar(&o.cacheSize, "cache-size", "", "disk cache size bound, e.g. 512M (empty = store default)")
	flag.Float64Var(&o.minWarmSpd, "min-warm-speedup", 0, "exit 1 if the warm pass is not this many times faster than the cold pass")
	flag.Parse()
	if flag.NArg() > 0 {
		cliutil.BadUsage("loadgen: unexpected arguments %v", flag.Args())
	}
	if o.mode != "design" && o.mode != "simulate" {
		cliutil.BadUsage("loadgen: -mode must be design or simulate, got %q", o.mode)
	}
	switch o.transport {
	case "unary", "batch", "compare":
	default:
		cliutil.BadUsage("loadgen: -transport must be unary, batch, or compare, got %q", o.transport)
	}
	if (o.url == "") == !o.inprocess {
		cliutil.BadUsage("loadgen: exactly one of -url and -inprocess is required")
	}
	if o.duration <= 0 || o.conc <= 0 || o.batch <= 0 || o.distinct <= 0 || o.events <= 0 {
		cliutil.BadUsage("loadgen: -duration, -c, -batch, -distinct, -events must be positive")
	}
	if o.qps < 0 || o.minCoalesce < 0 || o.minSpeedup < 0 || o.srvBatch < 0 || o.srvWait < 0 || o.minWarmSpd < 0 {
		cliutil.BadUsage("loadgen: -qps, -min-coalesce, -min-speedup, -min-warm-speedup, -server-batch, -server-batch-wait must be >= 0")
	}
	if o.warm && (!o.inprocess || o.cacheDir == "") {
		cliutil.BadUsage("loadgen: -warm requires -inprocess and -cache-dir")
	}
	if o.cacheDir != "" && !o.inprocess {
		cliutil.BadUsage("loadgen: -cache-dir requires -inprocess")
	}
	o.programs = strings.Split(programs, ",")

	maxBytes, err := cachewire.ParseSize(o.cacheSize)
	if err != nil {
		cliutil.BadUsage("loadgen: %v", err)
	}

	base := o.url
	var svc *service.Service
	if o.inprocess {
		disk, err := cachewire.Setup(o.cacheDir, maxBytes)
		if err != nil {
			log.Fatalf("opening cache dir: %v", err)
		}
		svc = service.New(service.Config{
			CacheEntries: o.cache,
			BatchMaxSize: o.srvBatch,
			BatchMaxWait: o.srvWait,
			Disk:         disk,
		})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: service.NewHandler(svc)}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		log.Printf("in-process fsmserved on %s", base)
	}

	items, err := buildItems(o)
	if err != nil {
		log.Fatal(err)
	}

	if o.warm {
		if err := runWarm(o, svc, base, items); err != nil {
			log.Fatal(err)
		}
		return
	}

	sum := summary{Mode: o.mode, Concurrency: o.conc, TargetQPS: o.qps, BatchLines: o.batch}
	transports := []string{o.transport}
	if o.transport == "compare" {
		transports = []string{"unary", "batch"}
	}
	for _, tr := range transports {
		run, err := drive(base, tr, o, items)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s: %.0f items/s (%d items, %d errors, p50 %.2fms p99 %.2fms, coalesce %.2f)",
			tr, run.ItemsPerS, run.Items, run.Errors, run.Latency.P50Ms, run.Latency.P99Ms, run.Coalesce)
		if run.FleetMBps > 0 {
			log.Printf("%s: fleet simulated %.1f MB/s aggregate (dedup ratio %.2f, span skip %.2f)",
				tr, run.FleetMBps, run.FleetDedup, run.SpanSkipRatio)
		}
		sum.Runs = append(sum.Runs, run)
	}
	if o.transport == "compare" && sum.Runs[0].ItemsPerS > 0 {
		sum.Speedup = sum.Runs[1].ItemsPerS / sum.Runs[0].ItemsPerS
		log.Printf("batched/unary speedup: %.2fx", sum.Speedup)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatal(err)
	}

	if o.minCoalesce > 0 {
		last := sum.Runs[len(sum.Runs)-1]
		if last.Coalesce < o.minCoalesce {
			log.Fatalf("coalesce ratio %.3f below floor %.3f", last.Coalesce, o.minCoalesce)
		}
	}
	if o.minSpeedup > 0 {
		if o.transport != "compare" {
			cliutil.BadUsage("loadgen: -min-speedup requires -transport compare")
		}
		if sum.Speedup < o.minSpeedup {
			log.Fatalf("speedup %.2fx below floor %.2fx", sum.Speedup, o.minSpeedup)
		}
	}
}

// warmSummary is the JSON document of -warm mode: one fixed pass over
// the item set cold (empty in-process caches, disk tier filling), then
// the same pass after DropCaches with the disk tier warm.
type warmSummary struct {
	Mode        string     `json:"mode"`
	Items       int        `json:"items"`
	Cold        runSummary `json:"cold"`
	Warm        runSummary `json:"warm"`
	Speedup     float64    `json:"warm_speedup"`
	DiskHits    uint64     `json:"disk_hits"`
	DiskMisses  uint64     `json:"disk_misses"`
	DiskCorrupt uint64     `json:"disk_corrupt"`
}

// runWarm measures warm-start: pass 1 runs every item once against
// empty caches (publishing artifacts to the disk tier as it goes),
// DropCaches empties every in-process tier, and pass 2 repeats the
// identical work against the warm disk tier. The speedup is wall-clock
// cold/warm; the scraped diskcache counters prove the warm pass was
// actually served from disk rather than from a tier that survived the
// drop.
func runWarm(o opts, svc *service.Service, base string, items []string) error {
	before, err := scrapeDiskMetrics(base)
	if err != nil {
		return err
	}
	cold, err := driveOnce(base, o, items)
	if err != nil {
		return err
	}
	log.Printf("cold: %d items in %.3fs (p50 %.2fms p99 %.2fms)",
		cold.Items, cold.Seconds, cold.Latency.P50Ms, cold.Latency.P99Ms)

	svc.DropCaches()

	mid, err := scrapeDiskMetrics(base)
	if err != nil {
		return err
	}
	warm, err := driveOnce(base, o, items)
	if err != nil {
		return err
	}
	after, err := scrapeDiskMetrics(base)
	if err != nil {
		return err
	}
	log.Printf("warm: %d items in %.3fs (p50 %.2fms p99 %.2fms)",
		warm.Items, warm.Seconds, warm.Latency.P50Ms, warm.Latency.P99Ms)

	sum := warmSummary{
		Mode:        o.mode,
		Items:       len(items),
		Cold:        cold,
		Warm:        warm,
		DiskHits:    after.hits - mid.hits,
		DiskMisses:  after.misses - before.misses,
		DiskCorrupt: after.corrupt - before.corrupt,
	}
	if warm.Seconds > 0 {
		sum.Speedup = cold.Seconds / warm.Seconds
	}
	log.Printf("warm-start speedup: %.2fx (%d disk hits in the warm pass)", sum.Speedup, sum.DiskHits)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return err
	}
	if cold.Errors > 0 || warm.Errors > 0 {
		return fmt.Errorf("request errors: %d cold, %d warm", cold.Errors, warm.Errors)
	}
	if o.minWarmSpd > 0 {
		if sum.DiskHits == 0 {
			return fmt.Errorf("warm pass recorded no disk hits; the tier did not serve")
		}
		if sum.Speedup < o.minWarmSpd {
			return fmt.Errorf("warm speedup %.2fx below floor %.2fx", sum.Speedup, o.minWarmSpd)
		}
	}
	return nil
}

// driveOnce issues every item exactly once over the unary endpoint with
// -c workers and returns the pass's wall clock and latency digest.
func driveOnce(base string, o opts, items []string) (runSummary, error) {
	run := runSummary{Transport: "unary-once"}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.conc}}
	var (
		next  atomic.Uint64
		errN  atomic.Uint64
		latMu sync.Mutex
		lats  []time.Duration
		wg    sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= uint64(len(items)) {
					return
				}
				t0 := time.Now()
				if err := postUnary(client, base, o.mode, items[i]); err != nil {
					errN.Add(1)
					continue
				}
				d := time.Since(t0)
				latMu.Lock()
				lats = append(lats, d)
				latMu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	run.Items = uint64(len(lats))
	run.Requests = uint64(len(items))
	run.Errors = errN.Load()
	run.Seconds = elapsed.Seconds()
	if elapsed > 0 {
		run.ItemsPerS = float64(run.Items) / elapsed.Seconds()
	}
	run.Latency = percentiles(lats)
	return run, nil
}

// diskCounters is one scrape of the disk tier's counters.
type diskCounters struct {
	hits    uint64
	misses  uint64
	corrupt uint64
}

// scrapeDiskMetrics reads the fsmpredict_diskcache_* counters from
// /metrics.
func scrapeDiskMetrics(base string) (diskCounters, error) {
	var c diskCounters
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return c, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		name, val, found := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !found {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			continue
		}
		switch name {
		case "fsmpredict_diskcache_hits_total":
			c.hits = n
		case "fsmpredict_diskcache_misses_total":
			c.misses = n
		case "fsmpredict_diskcache_corrupt_total":
			c.corrupt = n
		}
	}
	return c, sc.Err()
}

// buildItems precomputes the request-line mix: -distinct variants per
// program, each line a complete JSON document (without trailing
// newline) valid on both the unary and batch endpoints.
func buildItems(o opts) ([]string, error) {
	var items []string
	for _, prog := range o.programs {
		prog = strings.TrimSpace(prog)
		for i := 0; i < o.distinct; i++ {
			ref := fmt.Sprintf(`{"program":%q,"variant":"train","events":%d}`, prog, o.events)
			switch o.mode {
			case "design":
				items = append(items, fmt.Sprintf(
					`{"workload":%s,"options":{"order":%d,"name":"lg_%s_%d"}}`,
					ref, o.order, prog, i))
			case "simulate":
				m := counterMachine(2 + i%7)
				mj, err := json.Marshal(m)
				if err != nil {
					return nil, err
				}
				items = append(items, fmt.Sprintf(`{"machine":%s,"workload":%s}`, mj, ref))
			}
		}
	}
	return items, nil
}

// counterMachine builds an n-state saturating up/down counter — cheap
// distinct machines whose batched simulations share one kernel pass
// per trace group.
func counterMachine(n int) *fsm.Machine {
	m := &fsm.Machine{Output: make([]bool, n), Next: make([][2]int, n)}
	for s := 0; s < n; s++ {
		m.Output[s] = s >= n/2
		m.Next[s] = [2]int{max(s-1, 0), min(s+1, n-1)}
	}
	return m
}

// drive runs one transport for the measurement window and returns its
// summary. The coalesce ratio is computed from the /metrics deltas of
// the batch plane's item and pass counters across the window.
func drive(base, transport string, o opts, items []string) (runSummary, error) {
	run := runSummary{Transport: transport}
	before, err := scrapeBatchMetrics(base, o.mode)
	if err != nil {
		return run, err
	}

	var (
		done         = make(chan struct{})
		itemsN, reqN atomic.Uint64
		errN         atomic.Uint64
		latMu        sync.Mutex
		lats         []time.Duration
		next         atomic.Uint64
		tickets      chan struct{} // open loop: one token per item
	)
	record := func(d time.Duration, n int) {
		itemsN.Add(uint64(n))
		latMu.Lock()
		for i := 0; i < n; i++ {
			lats = append(lats, d)
		}
		latMu.Unlock()
	}
	if o.qps > 0 {
		tickets = make(chan struct{}, o.conc*o.batch)
		interval := time.Duration(float64(time.Second) / o.qps)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					select {
					case tickets <- struct{}{}:
					default: // generator ahead of the service: shed
					}
				}
			}
		}()
	}
	// await blocks until the worker may take n more items (open loop)
	// or returns immediately (closed loop); false means the window is
	// over.
	await := func(n int) bool {
		if tickets == nil {
			select {
			case <-done:
				return false
			default:
				return true
			}
		}
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return false
			case <-tickets:
			}
		}
		return true
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.conc}}
	var wg sync.WaitGroup
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				switch transport {
				case "unary":
					if !await(1) {
						return
					}
					item := items[next.Add(1)%uint64(len(items))]
					start := time.Now()
					reqN.Add(1)
					if err := postUnary(client, base, o.mode, item); err != nil {
						errN.Add(1)
					} else {
						record(time.Since(start), 1)
					}
				case "batch":
					if !await(o.batch) {
						return
					}
					var body strings.Builder
					for i := 0; i < o.batch; i++ {
						body.WriteString(items[next.Add(1)%uint64(len(items))])
						body.WriteByte('\n')
					}
					start := time.Now()
					reqN.Add(1)
					ok, failed, err := postBatch(client, base, o.mode, body.String())
					if err != nil {
						errN.Add(uint64(o.batch))
						continue
					}
					errN.Add(uint64(failed))
					record(time.Since(start), ok)
				}
			}
		}()
	}
	start := time.Now()
	time.AfterFunc(o.duration, func() { close(done) })
	<-done
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeBatchMetrics(base, o.mode)
	if err != nil {
		return run, err
	}
	run.Items = itemsN.Load()
	run.Requests = reqN.Load()
	run.Errors = errN.Load()
	run.Seconds = elapsed.Seconds()
	run.ItemsPerS = float64(run.Items) / elapsed.Seconds()
	run.Latency = percentiles(lats)
	run.BatchItems = after.items - before.items
	run.Passes = after.passes - before.passes
	if run.Passes > 0 {
		run.Coalesce = float64(run.BatchItems) / float64(run.Passes)
	}
	if bytes := after.fleetBytes - before.fleetBytes; bytes > 0 {
		run.FleetMBps = float64(bytes) / elapsed.Seconds() / 1e6
	}
	if m := after.fleetMachines - before.fleetMachines; m > 0 {
		run.FleetDedup = float64(after.fleetDeduped-before.fleetDeduped) / float64(m)
	}
	if bytes := after.fleetBytes - before.fleetBytes; bytes > 0 {
		run.SpanSkipRatio = float64(after.spanSkipped-before.spanSkipped) / float64(bytes*8)
	}
	return run, nil
}

// postUnary issues one per-request call and drains the response.
func postUnary(client *http.Client, base, mode, item string) error {
	resp, err := client.Post(base+"/v1/"+mode, "application/json", strings.NewReader(item))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// postBatch issues one NDJSON request and counts per-line outcomes.
func postBatch(client *http.Client, base, mode, body string) (ok, failed int, err error) {
	resp, err := client.Post(base+"/v1/batch/"+mode, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		var line struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Error != "" {
			failed++
			continue
		}
		ok++
	}
	return ok, failed, sc.Err()
}

// batchCounters is one scrape of the mode's batch item/pass counters
// plus the fleet kernel's aggregate counters (zero in design mode).
type batchCounters struct {
	items         uint64
	passes        uint64
	fleetMachines uint64
	fleetDeduped  uint64
	fleetBytes    uint64
	spanSkipped   uint64
}

// scrapeBatchMetrics reads /metrics and extracts the mode's batch-plane
// counters.
func scrapeBatchMetrics(base, mode string) (batchCounters, error) {
	var c batchCounters
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return c, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	itemsName := "fsmpredict_batch_" + mode + "_items_total"
	passesName := "fsmpredict_batch_" + mode + "_passes_total"
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		name, val, found := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !found {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			continue
		}
		switch name {
		case itemsName:
			c.items = n
		case passesName:
			c.passes = n
		case "fsmpredict_fleet_machines_total":
			c.fleetMachines = n
		case "fsmpredict_fleet_deduped_total":
			c.fleetDeduped = n
		case "fsmpredict_fleet_simulated_bytes_total":
			c.fleetBytes = n
		case "fsmpredict_span_skipped_events_total":
			c.spanSkipped = n
		}
	}
	if err := sc.Err(); err != nil {
		return c, err
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return c, ctx.Err()
	}
	return c, nil
}

// percentiles digests a latency sample.
func percentiles(lats []time.Duration) latencySummary {
	if len(lats) == 0 {
		return latencySummary{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	return latencySummary{
		P50Ms: at(0.50),
		P90Ms: at(0.90),
		P99Ms: at(0.99),
		MaxMs: float64(lats[len(lats)-1]) / float64(time.Millisecond),
	}
}
