// Command tracegen emits synthetic benchmark traces — the stand-in for
// the paper's ATOM-instrumented SPEC95/MediaBench runs (§5). Branch
// benchmarks produce (pc, direction) streams; value benchmarks produce
// (pc, value) load streams.
//
// Usage:
//
//	tracegen -bench ijpeg -n 250000 -variant train -o ijpeg.btrc
//	tracegen -bench gcc -loads -n 120000 -text -o gcc.txt
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fsmpredict/internal/cliutil"
	"fsmpredict/internal/simpoint"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		bench   = flag.String("bench", "", "benchmark name")
		n       = flag.Int("n", 250_000, "minimum number of events")
		variant = flag.String("variant", "train", "input variant: train or test")
		loads   = flag.Bool("loads", false, "generate a load-value trace instead of branches")
		text    = flag.Bool("text", false, "write text format instead of binary (branches only)")
		out     = flag.String("o", "", "output file (default stdout)")
		list    = flag.Bool("list", false, "list available benchmarks")
		sample  = flag.Bool("simpoint", false, "emit only SimPoint-representative intervals (branches only)")
		sampleK = flag.Int("simpoint-k", 4, "number of SimPoint clusters")
		bias    = flag.Float64("bias", -1, "generate a synthetic biased branch trace with this taken fraction in (0,1) instead of a benchmark")
		runlen  = flag.Float64("runlen", 0, "mean run length (events) of the biased trace's alternating runs; 0 = iid")
		seed    = flag.Int64("seed", 1, "rng seed for the biased trace")
	)
	flag.Parse()

	if *list {
		fmt.Println("branch benchmarks:")
		for _, p := range workload.BranchSuite() {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Println("value benchmarks (use -loads):")
		for _, p := range workload.LoadSuite() {
			fmt.Printf("  %s\n", p.Name)
		}
		return
	}
	biased := *bias >= 0
	if *bench == "" && !biased {
		cliutil.BadUsage("tracegen: provide -bench or -bias (or -list)")
	}
	if biased && (*bench != "" || *loads || *sample) {
		cliutil.BadUsage("tracegen: -bias replaces -bench and applies to branch traces only")
	}
	cliutil.CheckPositive("n", *n)
	cliutil.CheckOneOf("variant", *variant, "train", "test")
	cliutil.CheckPositive("simpoint-k", *sampleK)
	if *loads && (*sample || *text) {
		cliutil.BadUsage("tracegen: -simpoint and -text apply to branch traces only")
	}
	if flag.NArg() > 0 {
		cliutil.BadUsage("tracegen: unexpected arguments %v", flag.Args())
	}

	v := workload.Train
	if *variant == "test" {
		v = workload.Test
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	if biased {
		events, err := trace.GenBiased(*n, *bias, *runlen, *seed)
		if err != nil {
			cliutil.BadUsage("tracegen: %v", err)
		}
		if *text {
			err = trace.WriteBranchesText(w, events)
		} else {
			err = trace.WriteBranches(w, events)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d branch events (bias %g, mean run %g, seed %d)\n",
			len(events), *bias, *runlen, *seed)
		return
	}

	if *loads {
		prog, err := workload.LoadByName(*bench)
		if err != nil {
			cliutil.BadUsage("tracegen: %v", err)
		}
		events := prog.Generate(v, *n)
		if err := trace.WriteLoads(w, events); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d load events for %s/%s\n", len(events), *bench, v)
		return
	}

	prog, err := workload.ByName(*bench)
	if err != nil {
		cliutil.BadUsage("tracegen: %v", err)
	}
	events := prog.Generate(v, *n)
	if *sample {
		res, err := simpoint.Analyze(events, simpoint.Options{K: *sampleK, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		sampled := res.Sample(events)
		fmt.Fprintf(os.Stderr, "simpoint: %d intervals -> %d representatives (%.0f%% of the trace)\n",
			res.NumIntervals(), len(res.Representatives),
			100*float64(len(sampled))/float64(len(events)))
		events = sampled
	}
	if *text {
		err = trace.WriteBranchesText(w, events)
	} else {
		err = trace.WriteBranches(w, events)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d branch events for %s/%s\n", len(events), *bench, v)
}
