// Command benchjson converts `go test -bench` text output into a JSON
// performance snapshot, and checks a fresh run against a checked-in
// baseline so CI can fail on perf regressions.
//
// Snapshot mode (default) reads bench output on stdin and writes JSON:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -o BENCH.json
//
// Check mode compares stdin against a baseline snapshot and exits 1 if
// any benchmark's time or allocation count grew beyond -ratio:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -check BENCH.json -ratio 2
//
// Benchmarks faster than -min-ns or allocating fewer than -min-allocs
// in the baseline are exempt from the respective comparison: their
// measurements are dominated by fixed overhead and noise, and a smoke
// check that flakes on them teaches people to ignore it. Benchmark
// names are matched without the -GOMAXPROCS suffix so snapshots carry
// across machines with different core counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fsmpredict/internal/benchfmt"
	"fsmpredict/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		in        = flag.String("i", "", "read bench output from this file instead of stdin")
		out       = flag.String("o", "", "write the JSON snapshot to this file instead of stdout")
		check     = flag.String("check", "", "compare against this baseline snapshot instead of emitting JSON")
		ratio     = flag.Float64("ratio", 2, "allowed current/baseline growth before a metric counts as regressed")
		minNs     = flag.Float64("min-ns", 100_000, "skip time comparison when the baseline is below this many ns/op")
		minAllocs = flag.Float64("min-allocs", 16, "skip allocation comparison when the baseline is below this many allocs/op")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		cliutil.BadUsage("benchjson: unexpected arguments %v", flag.Args())
	}
	if *ratio <= 1 {
		cliutil.BadUsage("benchjson: -ratio must be > 1, got %v", *ratio)
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	benches, err := benchfmt.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("no benchmark results in input")
	}

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := benchfmt.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		regs := benchfmt.Compare(baseline, benches, benchfmt.CompareOptions{
			Ratio:     *ratio,
			MinNs:     *minNs,
			MinAllocs: *minAllocs,
		})
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "regression:", r)
			}
			os.Exit(1)
		}
		fmt.Printf("ok: %d benchmarks within %gx of %s\n", len(benches), *ratio, *check)
		return
	}

	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		dst = f
	}
	if err := benchfmt.WriteJSON(dst, benches); err != nil {
		log.Fatal(err)
	}
}
