package main

import (
	"os"
	"path/filepath"
	"testing"

	"fsmpredict/internal/fidelity"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/tracestore"
)

// TestSmokeGridMatchesGolden runs the checked-in smoke grid and diffs
// every table against the golden directory, byte for byte. This is the
// determinism contract: any change to the experiment pipelines that
// shifts a published number must update the goldens explicitly.
func TestSmokeGridMatchesGolden(t *testing.T) {
	res, err := run(options{
		grid:   filepath.Join("testdata", "grid.smoke.json"),
		out:    t.TempDir(),
		golden: filepath.Join("testdata", "golden.smoke"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) == 0 {
		t.Fatal("run produced no tables")
	}
}

// TestAdaptiveGridMatchesGolden is the figure byte-identity guarantee
// for the adaptive-fidelity engine: the adaptive grid is the smoke grid
// with the sweep memo turned on, and it must diff clean against the
// SAME golden directory — first cold, then again in the same process
// with the memo warm, proving memo hits change nothing either.
func TestAdaptiveGridMatchesGolden(t *testing.T) {
	fidelity.ResetMemo()
	for _, pass := range []string{"cold", "memo-warm"} {
		res, err := run(options{
			grid:   filepath.Join("testdata", "grid.adaptive.json"),
			out:    t.TempDir(),
			golden: filepath.Join("testdata", "golden.smoke"),
		})
		if err != nil {
			t.Fatalf("%s adaptive run: %v", pass, err)
		}
		if len(res.Files) == 0 {
			t.Fatalf("%s adaptive run produced no tables", pass)
		}
	}
	if fidelity.Snapshot().Hits == 0 {
		t.Fatal("memo-warm adaptive run served no fitness-memo hits")
	}
}

// TestWarmStartProducesIdenticalTables is the in-process warm-start
// smoke: a cold run fills a shared cache directory, the in-memory tiers
// are dropped (fresh-process stand-in), and the warm run must serve from
// disk while still matching the goldens exactly.
func TestWarmStartProducesIdenticalTables(t *testing.T) {
	cacheDir := t.TempDir()
	o := options{
		grid:     filepath.Join("testdata", "grid.smoke.json"),
		out:      t.TempDir(),
		golden:   filepath.Join("testdata", "golden.smoke"),
		cacheDir: cacheDir,
	}
	cold, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Disk == nil || cold.Disk.Entries == 0 {
		t.Fatal("cold run published nothing to the disk tier")
	}

	// Simulate a fresh process: drop the process-wide in-memory caches
	// so the warm run can only be fast via the disk tier.
	tracestore.Shared.Clear()
	fsm.ResetBlockCache()

	o.out = t.TempDir()
	o.requireDiskHits = true
	warm, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Disk.Hits <= cold.Disk.Hits {
		t.Fatalf("warm run disk hits = %d, want more than cold run's %d", warm.Disk.Hits, cold.Disk.Hits)
	}
	if warm.Disk.Corrupt != 0 {
		t.Fatalf("warm run reported %d corrupt artifacts", warm.Disk.Corrupt)
	}
}

// TestGoldenDiffCatchesDrift corrupts one output and checks the golden
// comparison actually fails.
func TestGoldenDiffCatchesDrift(t *testing.T) {
	out := t.TempDir()
	if _, err := run(options{
		grid: filepath.Join("testdata", "grid.smoke.json"),
		out:  out,
	}); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(out, "figure4.csv")
	if err := os.WriteFile(p, []byte("series,x,y\ndrifted,1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := diffGolden(filepath.Join("testdata", "golden.smoke"), out); err == nil {
		t.Fatal("golden diff accepted a drifted table")
	}
}

// TestGridValidation rejects malformed grids.
func TestGridValidation(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"nofigures.json": `{"name":"x","figures":[]}`,
		"unknown.json":   `{"figures":["figure9"]}`,
		"badfield.json":  `{"figures":["figure6"],"nope":1}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := run(options{grid: p, out: t.TempDir()}); err == nil {
			t.Errorf("grid %s accepted, want error", name)
		}
	}
}
