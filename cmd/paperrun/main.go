// Command paperrun replays the paper's evaluation figures from a JSON
// experiment grid and writes their tables as CSV/JSON files, so a whole
// figure sweep is one reproducible command instead of a shell script
// around the individual bench tools.
//
// Usage:
//
//	paperrun -grid grid.json -out results/
//	paperrun -grid grid.json -out results/ -golden testdata/golden.smoke
//	paperrun -grid grid.json -out results/ -cache-dir /var/cache/fsm
//
// The grid file names the figures to run (figure2, figure4, figure5,
// figure6, figure7), the programs for the per-benchmark figures, and the
// experiment scale (event counts, history lengths, custom-FSM budget).
// Every experiment is bit-identical for any worker count, so the output
// tables are deterministic: -golden diffs them byte-for-byte against a
// checked-in directory and fails on any drift. Only summary.json (wall
// times, cache counters) is nondeterministic, and it is excluded from
// the comparison.
//
// With -cache-dir the run attaches the persistent artifact tier beneath
// the in-process caches, so a second run against the same directory
// starts warm: traces, block tables and designs load from disk instead
// of being regenerated. -require-disk-hits makes that an assertion (the
// run fails if the disk tier served nothing), which is how CI proves the
// warm start works.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"fsmpredict/internal/cachewire"
	"fsmpredict/internal/cliutil"
	"fsmpredict/internal/disktier"
	"fsmpredict/internal/experiments"
	"fsmpredict/internal/fidelity"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/tracestore"
)

// grid is the experiment-grid file format.
type grid struct {
	// Name labels the run in summary.json.
	Name string `json:"name"`
	// Figures picks which experiments run, in order. Valid entries:
	// figure2, figure4, figure5, figure6, figure7.
	Figures []string `json:"figures"`
	// Figure2Programs are value benchmarks (gcc, go, groff, li, perl).
	Figure2Programs []string `json:"figure2_programs"`
	// Figure5Programs are branch benchmarks (compress, gs, gsm, g721,
	// ijpeg, vortex).
	Figure5Programs []string `json:"figure5_programs"`
	// Figure4SampleFrac is the synthesis sample fraction (0 -> 0.1).
	Figure4SampleFrac float64 `json:"figure4_sample_frac"`
	// Scale overrides experiments.DefaultConfig; zero fields keep the
	// paper-scale defaults.
	Scale gridScale `json:"scale"`
}

type gridScale struct {
	BranchEvents int   `json:"branch_events"`
	LoadEvents   int   `json:"load_events"`
	MaxCustom    int   `json:"max_custom"`
	Order        int   `json:"order"`
	Histories    []int `json:"histories"`
	TableLog2    int   `json:"table_log2"`
	Workers      int   `json:"workers"`
	// Adaptive serves repeated figure sweeps from the persistent
	// fitness memo (experiments.Config.Adaptive). Table outputs are
	// byte-identical either way — the golden tests pin that — so a grid
	// can turn it on purely for wall clock.
	Adaptive bool `json:"adaptive"`
}

func (g gridScale) config() experiments.Config {
	return experiments.Config{
		BranchEvents: g.BranchEvents,
		LoadEvents:   g.LoadEvents,
		MaxCustom:    g.MaxCustom,
		Order:        g.Order,
		Histories:    g.Histories,
		TableLog2:    g.TableLog2,
		Workers:      g.Workers,
		Adaptive:     g.Adaptive,
	}
}

type options struct {
	grid            string
	out             string
	golden          string
	cacheDir        string
	cacheSize       string
	requireDiskHits bool
}

// runResult reports what a run produced, for summary.json and tests.
type runResult struct {
	Grid     string             `json:"grid"`
	Name     string             `json:"name"`
	Files    []string           `json:"files"`
	Seconds  map[string]float64 `json:"seconds"`
	Total    float64            `json:"total_seconds"`
	Disk     *disktier.Stats    `json:"disk,omitempty"`
	CacheDir string             `json:"cache_dir,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperrun: ")
	var o options
	flag.StringVar(&o.grid, "grid", "", "experiment grid JSON file (required)")
	flag.StringVar(&o.out, "out", "", "output directory for tables (required)")
	flag.StringVar(&o.golden, "golden", "", "diff outputs against this golden directory (summary.json excluded)")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "persistent artifact cache directory (empty disables the disk tier)")
	flag.StringVar(&o.cacheSize, "cache-size", "", "disk cache size bound, e.g. 512M (empty = store default)")
	flag.BoolVar(&o.requireDiskHits, "require-disk-hits", false, "fail unless the disk tier served at least one artifact (warm-start assertion)")
	flag.Parse()
	if o.grid == "" || o.out == "" {
		cliutil.BadUsage("paperrun: -grid and -out are required")
	}
	if o.cacheDir == "" && (o.cacheSize != "" || o.requireDiskHits) {
		cliutil.BadUsage("paperrun: -cache-size and -require-disk-hits require -cache-dir")
	}
	if flag.NArg() > 0 {
		cliutil.BadUsage("paperrun: unexpected arguments %v", flag.Args())
	}
	res, err := run(o)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d tables in %s (%.2fs)", len(res.Files), o.out, res.Total)
	if res.Disk != nil {
		log.Printf("disk tier: %d hits, %d misses, %d corrupt", res.Disk.Hits, res.Disk.Misses, res.Disk.Corrupt)
	}
}

// run executes the grid and returns the summary; it is the whole
// command minus flag parsing, so tests drive it directly.
func run(o options) (*runResult, error) {
	raw, err := os.ReadFile(o.grid)
	if err != nil {
		return nil, err
	}
	var g grid
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("parsing grid %s: %v", o.grid, err)
	}
	if len(g.Figures) == 0 {
		return nil, fmt.Errorf("grid %s lists no figures", o.grid)
	}
	for _, f := range g.Figures {
		switch f {
		case "figure2", "figure4", "figure5", "figure6", "figure7":
		default:
			return nil, fmt.Errorf("grid %s: unknown figure %q", o.grid, f)
		}
	}
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return nil, err
	}

	maxBytes, err := cachewire.ParseSize(o.cacheSize)
	if err != nil {
		return nil, err
	}
	disk, err := cachewire.Setup(o.cacheDir, maxBytes)
	if err != nil {
		return nil, err
	}
	if disk != nil {
		// Detach the process-wide caches afterwards so test callers
		// (and any later run in the same process) start clean.
		defer fsm.SetDiskTier(nil)
		defer tracestore.Shared.SetDisk(nil)
		defer fidelity.SetDiskTier(nil)
	}

	cfg := g.Scale.config()
	res := &runResult{
		Grid:     o.grid,
		Name:     g.Name,
		Seconds:  make(map[string]float64),
		CacheDir: o.cacheDir,
	}
	tables := map[string]any{}
	start := time.Now()
	// Figure 5 reuses Figure 4's fitted area model when both run.
	var areaModel func(states int) float64
	for _, fig := range g.Figures {
		t0 := time.Now()
		switch fig {
		case "figure2":
			if err := runFigure2(o.out, g, cfg, res, tables); err != nil {
				return nil, err
			}
		case "figure4":
			f4, err := runFigure4(o.out, g, cfg, res, tables)
			if err != nil {
				return nil, err
			}
			areaModel = f4.AreaModel()
		case "figure5":
			if err := runFigure5(o.out, g, cfg, areaModel, res, tables); err != nil {
				return nil, err
			}
		case "figure6", "figure7":
			if err := runExample(o.out, fig, cfg, res, tables); err != nil {
				return nil, err
			}
		}
		res.Seconds[fig] = time.Since(t0).Seconds()
	}

	if err := writeJSON(o.out, "tables.json", tables, res); err != nil {
		return nil, err
	}
	res.Total = time.Since(start).Seconds()
	if disk != nil {
		st := disk.Stats()
		res.Disk = &st
	}
	sort.Strings(res.Files)
	sum, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(o.out, "summary.json"), append(sum, '\n'), 0o644); err != nil {
		return nil, err
	}

	if o.golden != "" {
		if err := diffGolden(o.golden, o.out); err != nil {
			return nil, err
		}
	}
	if o.requireDiskHits {
		if res.Disk == nil || res.Disk.Hits == 0 {
			return nil, fmt.Errorf("disk tier served no artifacts (cold run?); warm-start assertion failed")
		}
	}
	return res, nil
}

func runFigure2(out string, g grid, cfg experiments.Config, res *runResult, tables map[string]any) error {
	progs := g.Figure2Programs
	if len(progs) == 0 {
		progs = []string{"gcc", "go", "groff", "li", "perl"}
	}
	summary := map[string]any{}
	for _, prog := range progs {
		r, err := experiments.Figure2(prog, cfg)
		if err != nil {
			return err
		}
		series := append(r.Series(), stats.Series{Name: "frontier", Points: r.SUDFrontier()})
		if err := writeFile(out, "figure2_"+prog+".csv", stats.CSV(series), res); err != nil {
			return err
		}
		best := map[string]float64{}
		for _, s := range series {
			var max float64
			for _, p := range s.Points {
				if p.Y > max {
					max = p.Y
				}
			}
			best[s.Name] = max
		}
		summary[prog] = map[string]any{"max_coverage": best}
	}
	tables["figure2"] = summary
	return nil
}

func runFigure4(out string, g grid, cfg experiments.Config, res *runResult, tables map[string]any) (*experiments.Figure4Result, error) {
	frac := g.Figure4SampleFrac
	r, err := experiments.Figure4(cfg, frac)
	if err != nil {
		return nil, err
	}
	fit := stats.Series{Name: "fit"}
	if n := len(r.Points); n > 0 {
		lo, hi := r.Points[0].X, r.Points[0].X
		for _, p := range r.Points {
			lo, hi = min(lo, p.X), max(hi, p.X)
		}
		fit.Points = []stats.Point{{X: lo, Y: r.Fit.At(lo)}, {X: hi, Y: r.Fit.At(hi)}}
	}
	series := []stats.Series{
		{Name: "sample", Points: r.Points},
		{Name: "kept", Points: r.Kept},
		fit,
	}
	if err := writeFile(out, "figure4.csv", stats.CSV(series), res); err != nil {
		return nil, err
	}
	tables["figure4"] = map[string]any{
		"slope":     r.Fit.Slope,
		"intercept": r.Fit.Intercept,
		"r2":        r.Fit.R2,
		"samples":   len(r.Points),
		"kept":      len(r.Kept),
	}
	return r, nil
}

func runFigure5(out string, g grid, cfg experiments.Config, areaModel func(states int) float64, res *runResult, tables map[string]any) error {
	progs := g.Figure5Programs
	if len(progs) == 0 {
		progs = []string{"compress", "gs", "gsm", "g721", "ijpeg", "vortex"}
	}
	summary := map[string]any{}
	for _, prog := range progs {
		r, err := experiments.Figure5(prog, cfg, areaModel)
		if err != nil {
			return err
		}
		series := r.Series()
		if err := writeFile(out, "figure5_"+prog+".csv", stats.CSV(series), res); err != nil {
			return err
		}
		minMiss := map[string]float64{}
		for _, s := range series {
			minMiss[s.Name] = experiments.MinMiss(s)
		}
		atBudget := map[string]any{}
		for _, s := range series[1:] { // skip the baseline point itself
			if m, ok := experiments.BestAtOrBelow(s, r.XScale.X); ok {
				atBudget[s.Name] = m
			}
		}
		summary[prog] = map[string]any{
			"xscale_area":    r.XScale.X,
			"xscale_miss":    r.XScale.Y,
			"min_miss":       minMiss,
			"best_at_budget": atBudget,
		}
	}
	tables["figure5"] = summary
	return nil
}

func runExample(out, fig string, cfg experiments.Config, res *runResult, tables map[string]any) error {
	var (
		e   *experiments.ExampleMachine
		err error
	)
	if fig == "figure6" {
		e, err = experiments.Figure6(cfg)
	} else {
		e, err = experiments.Figure7(cfg)
	}
	if err != nil {
		return err
	}
	cover := make([]string, len(e.Cover))
	for i, c := range e.Cover {
		cover[i] = c.String()
	}
	state, hist, ok := e.CapturesFromAnyState()
	doc := map[string]any{
		"program":                 e.Program,
		"pc":                      fmt.Sprintf("%#x", e.PC),
		"order":                   e.Order,
		"cover":                   cover,
		"states":                  e.Machine.NumStates(),
		"captures_from_any_state": ok,
		"machine":                 e.Machine,
	}
	if !ok {
		doc["violation"] = map[string]any{"state": state, "history": hist}
	}
	if err := writeJSON(out, fig+".json", doc, res); err != nil {
		return err
	}
	tables[fig] = map[string]any{
		"states":                  e.Machine.NumStates(),
		"cover":                   cover,
		"captures_from_any_state": ok,
	}
	return nil
}

func writeFile(dir, name, content string, res *runResult) error {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		return err
	}
	res.Files = append(res.Files, name)
	return nil
}

func writeJSON(dir, name string, v any, res *runResult) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFile(dir, name, string(b)+"\n", res)
}

// diffGolden compares the output directory to the checked-in golden
// directory byte-for-byte, excluding summary.json (wall times and cache
// counters are the one intentionally nondeterministic output).
func diffGolden(golden, out string) error {
	want, err := dirFiles(golden)
	if err != nil {
		return fmt.Errorf("reading golden dir: %v", err)
	}
	got, err := dirFiles(out)
	if err != nil {
		return err
	}
	var bad []string
	for _, name := range want {
		g, err := os.ReadFile(filepath.Join(golden, name))
		if err != nil {
			return err
		}
		o, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			bad = append(bad, name+": missing from output")
			continue
		}
		if string(g) != string(o) {
			bad = append(bad, name+": differs from golden")
		}
	}
	wantSet := map[string]bool{}
	for _, name := range want {
		wantSet[name] = true
	}
	for _, name := range got {
		if !wantSet[name] {
			bad = append(bad, name+": not in golden dir")
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("golden mismatch against %s:\n  %s", golden, strings.Join(bad, "\n  "))
	}
	return nil
}

// dirFiles lists a directory's regular files, minus summary.json.
func dirFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || e.Name() == "summary.json" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}
