// Command areabench regenerates Figure 4 of the paper: it designs custom
// FSM predictors across all branch benchmarks, synthesizes a sample with
// the gate-level synthesis model (the Synopsys stand-in), prints the
// (states, area) scatter, and fits the linear area bound used by the
// Figure 5 experiments (§7.4).
//
// Usage:
//
//	areabench                # 100% sample, summary + fit
//	areabench -sample 0.1    # the paper's 10% random sample
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"fsmpredict/internal/cachewire"
	"fsmpredict/internal/cliutil"
	"fsmpredict/internal/experiments"
	"fsmpredict/internal/stats"
)

func main() {
	log.SetFlags(0)
	var (
		sample  = flag.Float64("sample", 1.0, "fraction of generated machines to synthesize")
		events  = flag.Int("n", 250_000, "branch events per benchmark")
		csv     = flag.Bool("csv", false, "emit CSV points instead of a table")
		workers = flag.Int("workers", 0, "parallel design/synthesis workers (0 = GOMAXPROCS)")
		adapt   = flag.Bool("adaptive", false, "serve repeated sweeps from the persistent fitness memo (results identical; pair with -cache-dir for cross-run reuse)")

		cacheDir  = flag.String("cache-dir", "", "persistent artifact cache directory (empty disables the disk tier)")
		cacheSize = flag.String("cache-size", "", "disk cache size bound, e.g. 512M (empty = store default)")
	)
	profile := cliutil.ProfileFlags()
	flag.Parse()
	stop := profile.Start()
	if _, err := cachewire.SetupSized(*cacheDir, *cacheSize); err != nil {
		cliutil.BadUsage("areabench: %v", err)
	}
	if *sample <= 0 || *sample > 1 {
		cliutil.BadUsage("areabench: -sample %v out of range (0,1]", *sample)
	}
	cliutil.CheckPositive("n", *events)
	if *workers < 0 {
		cliutil.BadUsage("areabench: -workers must be >= 0, got %d", *workers)
	}
	if flag.NArg() > 0 {
		cliutil.BadUsage("areabench: unexpected arguments %v", flag.Args())
	}

	cfg := experiments.DefaultConfig()
	cfg.BranchEvents = *events
	cfg.Workers = *workers
	cfg.Adaptive = *adapt

	res, err := experiments.Figure4(cfg, *sample)
	if err != nil {
		log.Fatal(err)
	}

	pts := append([]stats.Point(nil), res.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })

	if *csv {
		fmt.Print(stats.CSV([]stats.Series{{Name: "fsm", Points: pts}}))
	} else {
		tbl := &stats.Table{Headers: []string{"states", "area (GE)", "bound (GE)"}}
		for _, p := range pts {
			tbl.AddRow(int(p.X), fmt.Sprintf("%.1f", p.Y), fmt.Sprintf("%.1f", res.Fit.At(p.X)))
		}
		fmt.Println(tbl)
	}

	fmt.Println(stats.Scatter(res.Points, stats.ScatterOptions{
		Width: 64, Height: 18,
		XLabel: "number of states",
		YLabel: "area (gate equivalents); '-' marks the fitted bound",
		Line:   &res.Fit,
	}))
	fmt.Printf("machines: %d synthesized, %d on the linear trend\n", len(res.Points), len(res.Kept))
	fmt.Printf("linear area bound: area = %.1f + %.2f * states   (R2 = %.3f on the trend)\n",
		res.Fit.Intercept, res.Fit.Slope, res.Fit.R2)
	fmt.Println("machines far below the line are the paper's 'highly regular' cases")
	stop()
}
