// Command fsmgen runs the automated FSM predictor design flow (§4) on a
// binary trace and reports every stage: the Markov model, pattern sets,
// minimized cover, regular expression, machine sizes, and optionally the
// DOT rendering and synthesizable VHDL.
//
// Usage:
//
//	fsmgen -trace "0000 1000 1011 1101 1110 1111" -order 2 -dot
//	fsmgen -file outcomes.txt -order 9 -threshold 0.9 -vhdl
//	fsmgen -branch-trace ijpeg.btrc -pc 0x12005008 -order 9
//
// The -file format is a plain text stream of '0' and '1' characters
// (whitespace ignored). The -branch-trace format is the binary trace
// written by `tracegen`; together with -pc it runs the §7.3 per-branch
// flow: a global-history Markov model for that branch fed through the
// design flow. Without -pc it lists the profile so a branch can be
// picked.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"fsmpredict"
	"fsmpredict/internal/cliutil"
	"fsmpredict/internal/core"
	"fsmpredict/internal/regex"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/vhdl"
)

func main() {
	log.SetFlags(0)
	var (
		traceStr  = flag.String("trace", "", "inline trace of 0/1 characters")
		traceFile = flag.String("file", "", "file containing the trace")
		order     = flag.Int("order", 4, "history length N (1..16)")
		threshold = flag.Float64("threshold", 0.5, "bias threshold for the predict-1 set")
		dcBudget  = flag.Float64("dc", 0.01, "don't-care budget (fraction of observations; negative disables)")
		name      = flag.String("name", "predictor", "machine name (used in VHDL)")
		keepStart = flag.Bool("keep-startup", false, "skip start-state reduction (§4.7)")
		dot       = flag.Bool("dot", false, "print the Graphviz rendering")
		vhdlOut   = flag.Bool("vhdl", false, "print the generated VHDL")
		btrc      = flag.String("branch-trace", "", "binary branch trace from tracegen (per-branch mode)")
		pcFlag    = flag.String("pc", "", "branch address to design for (with -branch-trace)")
		verbose   = flag.Bool("v", false, "report per-stage design-flow timings to stderr")
	)
	flag.Parse()
	cliutil.CheckRange("order", *order, 1, 16)
	if *threshold <= 0 || *threshold > 1 {
		cliutil.BadUsage("fsmgen: -threshold %v out of range (0,1]", *threshold)
	}
	if *dcBudget > 1 {
		cliutil.BadUsage("fsmgen: -dc %v is a fraction of observations, must be <= 1", *dcBudget)
	}
	if *btrc == "" && strings.TrimSpace(*traceStr) == "" && *traceFile == "" {
		cliutil.BadUsage("fsmgen: provide -trace, -file, or -branch-trace")
	}
	if flag.NArg() > 0 {
		cliutil.BadUsage("fsmgen: unexpected arguments %v", flag.Args())
	}

	opts := fsmpredict.Options{
		Order:          *order,
		BiasThreshold:  *threshold,
		DontCareBudget: *dcBudget,
		KeepStartup:    *keepStart,
		Name:           *name,
		// fsmgen reports the intermediate artifacts (regex, NFA/DFA
		// sizes), so it always runs the full pipeline.
		Artifacts: true,
	}
	if *verbose {
		opts.StageObserver = func(stage string, d time.Duration) {
			fmt.Fprintf(os.Stderr, "stage %-9s %12v\n", stage, d)
		}
	}

	var design *fsmpredict.Design
	var err error
	switch {
	case *btrc != "":
		var pc uint64
		havePC := *pcFlag != ""
		if havePC {
			pc, err = strconv.ParseUint(strings.TrimPrefix(*pcFlag, "0x"), 16, 64)
			if err != nil {
				cliutil.BadUsage("fsmgen: bad -pc %q: %v", *pcFlag, err)
			}
		}
		design, err = designFromBranchTrace(*btrc, pc, havePC, opts)
		if err != nil {
			log.Fatal(err)
		}
		if design == nil {
			return // profile listing was printed instead
		}
	default:
		src := *traceStr
		if *traceFile != "" {
			data, err := os.ReadFile(*traceFile)
			if err != nil {
				log.Fatal(err)
			}
			src = string(data)
		}
		if strings.TrimSpace(src) == "" {
			cliutil.BadUsage("fsmgen: the trace is empty")
		}
		design, err = fsmpredict.DesignFromTrace(src, opts)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("trace: %d observations, %d distinct histories (order %d)\n",
		design.Model.Total(), design.Model.Distinct(), *order)
	fmt.Printf("pattern sets: %d predict-1, %d predict-0, %d don't care\n",
		len(design.Partition.PredictOne), len(design.Partition.PredictZero),
		len(design.Partition.DontCare))
	fmt.Printf("minimized cover: %v\n", design.Cover)
	fmt.Printf("regular expression: %s\n", regex.String(design.Expr))
	fmt.Printf("machines: NFA %d -> DFA %d -> minimized %d -> final %d states\n",
		design.NFAStates, design.DFAStates, design.MinimizedStates,
		design.Machine.NumStates())
	if k, ok := design.Machine.SyncDepth(); ok {
		fmt.Printf("synchronizes after %d inputs (update-all safe, §7.6)\n", k)
	} else {
		fmt.Println("machine does not synchronize")
	}
	area, err := vhdl.EstimateArea(design.Machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated area: %.1f gate equivalents\n", area)

	if *dot {
		fmt.Printf("\n%s", design.Machine.DOT())
	}
	if *vhdlOut {
		src, err := fsmpredict.GenerateVHDL(design.Machine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s", src)
	}
}

// designFromBranchTrace runs the §7.3 per-branch flow on a recorded
// branch trace: build the target branch's global-history Markov model and
// design from it. Without a target PC it prints the branch profile and
// returns (nil, nil) so the user can choose one.
func designFromBranchTrace(path string, pc uint64, havePC bool, opts fsmpredict.Options) (*fsmpredict.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadBranches(f)
	if err != nil {
		return nil, err
	}
	if !havePC {
		fmt.Printf("%d events; per-branch profile (pass -pc to design):\n", len(events))
		for i, p := range trace.Profile(events) {
			if i >= 20 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %#x  execs=%d  taken=%.1f%%\n", p.PC, p.Count, 100*p.TakenRate())
		}
		return nil, nil
	}
	models := trace.GlobalMarkov(events, map[uint64]bool{pc: true}, opts.Order)
	model := models[pc]
	if model.Total() == 0 {
		return nil, fmt.Errorf("fsmgen: branch %#x not found in trace (or too early for history)", pc)
	}
	if opts.Name == "predictor" {
		opts.Name = fmt.Sprintf("branch_%#x", pc)
	}
	return core.FromModel(model, opts)
}
