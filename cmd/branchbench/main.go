// Command branchbench regenerates Figure 5 of the paper: misprediction
// rate versus estimated area for the customized branch predictor
// (custom-same and custom-diff), the XScale baseline, gshare, and the
// local/global chooser (LGC), on each of the six branch benchmarks.
//
// Usage:
//
//	branchbench                    # all six benchmarks, tables
//	branchbench -prog vortex -csv  # one benchmark, CSV for plotting
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/cachewire"
	"fsmpredict/internal/cliutil"
	"fsmpredict/internal/experiments"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		prog    = flag.String("prog", "", "single benchmark (default: all six)")
		events  = flag.Int("n", 250_000, "branch events per trace")
		csv     = flag.Bool("csv", false, "emit CSV series instead of tables")
		ppm     = flag.Bool("ppm", false, "also run the Chen et al. PPM baseline (§3.2)")
		workers = flag.Int("workers", 0, "parallel design/simulation workers (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "report trace-store and block-table cache statistics to stderr")

		cacheDir  = flag.String("cache-dir", "", "persistent artifact cache directory (empty disables the disk tier)")
		cacheSize = flag.String("cache-size", "", "disk cache size bound, e.g. 512M (empty = store default)")
	)
	profile := cliutil.ProfileFlags()
	flag.Parse()
	stop := profile.Start()
	disk, err := cachewire.SetupSized(*cacheDir, *cacheSize)
	if err != nil {
		cliutil.BadUsage("branchbench: %v", err)
	}
	cliutil.CheckPositive("n", *events)
	if *prog != "" {
		cliutil.CheckOneOf("prog", *prog, "compress", "gs", "gsm", "g721", "ijpeg", "vortex")
	}
	if *workers < 0 {
		cliutil.BadUsage("branchbench: -workers must be >= 0, got %d", *workers)
	}
	if flag.NArg() > 0 {
		cliutil.BadUsage("branchbench: unexpected arguments %v", flag.Args())
	}

	cfg := experiments.DefaultConfig()
	cfg.BranchEvents = *events
	cfg.Workers = *workers

	// One shared Figure 4 area model, as in the paper.
	f4, err := experiments.Figure4(cfg, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FSM area model (Figure 4 fit): area = %.1f + %.2f * states\n\n",
		f4.Fit.Intercept, f4.Fit.Slope)
	areaModel := f4.AreaModel()

	programs := []string{"compress", "gs", "gsm", "g721", "ijpeg", "vortex"}
	if *prog != "" {
		programs = []string{*prog}
	}

	for _, p := range programs {
		res, err := experiments.Figure5(p, cfg, areaModel)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			fmt.Printf("# %s\n%s", p, stats.CSV(res.Series()))
			continue
		}
		report(res)
		if *ppm {
			reportPPM(p, cfg)
		}
	}
	if *verbose {
		st := tracestore.Shared.Stats()
		fmt.Fprintf(os.Stderr, "tracestore: %d hits, %d misses, %d entries, %.1f MiB retained\n",
			st.Hits, st.Misses, tracestore.Shared.Len(), float64(st.Bytes)/(1<<20))
		// The per-branch custom machines ride the byte-blocked superstep
		// kernel; each distinct machine compiles one transition-closure
		// table, reused across the prefix sweep and both inputs.
		bt := fsm.BlockStats()
		fmt.Fprintf(os.Stderr, "blocktable: %d hits, %d misses, %d tables, %.1f KiB retained\n",
			bt.Hits, bt.Misses, bt.Entries, float64(bt.Bytes)/(1<<10))
		if disk != nil {
			ds := disk.Stats()
			fmt.Fprintf(os.Stderr, "disktier: %d hits, %d misses, %d entries, %.1f MiB on disk\n",
				ds.Hits, ds.Misses, ds.Entries, float64(ds.Bytes)/(1<<20))
		}
	}
	stop()
}

// reportPPM runs the PPM baseline over a range of orders on the test
// input, for comparison with the Figure 5 architectures.
func reportPPM(program string, cfg experiments.Config) {
	prog, err := workload.ByName(program)
	if err != nil {
		log.Fatal(err)
	}
	test := prog.Generate(workload.Test, cfg.BranchEvents)
	tbl := &stats.Table{Headers: []string{"predictor", "area (GE)", "miss rate"}}
	for _, order := range []int{6, 8, 10, 12} {
		p := bpred.NewPPM(order)
		r := bpred.Run(p, test)
		tbl.AddRow(p.Name(), fmt.Sprintf("%.0f", p.Area()), pct(r.MissRate()))
	}
	fmt.Printf("PPM baseline (%s):\n%s\n", program, tbl)
}

func report(res *experiments.Figure5Result) {
	fmt.Printf("=== %s ===\n", res.Program)
	tbl := &stats.Table{Headers: []string{"predictor", "area (GE)", "miss rate"}}
	tbl.AddRow("xscale", fmt.Sprintf("%.0f", res.XScale.X), pct(res.XScale.Y))
	add := func(name string, s stats.Series) {
		for i, p := range s.Points {
			tbl.AddRow(fmt.Sprintf("%s[%d]", name, i), fmt.Sprintf("%.0f", p.X), pct(p.Y))
		}
	}
	add("custom-same", res.CustomSame)
	add("custom-diff", res.CustomDiff)
	add("gshare", res.Gshare)
	add("lgc", res.LGC)
	fmt.Println(tbl)

	fmt.Printf("custom FSM entries: ")
	for i, e := range res.Entries {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%#x(%d states)", e.Tag, e.Machine.NumStates())
	}
	fmt.Printf("\nbest miss rates: custom-diff %.2f%%, gshare %.2f%%, lgc %.2f%% (xscale %.2f%%)\n\n",
		100*experiments.MinMiss(res.CustomDiff), 100*experiments.MinMiss(res.Gshare),
		100*experiments.MinMiss(res.LGC), 100*res.XScale.Y)
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
