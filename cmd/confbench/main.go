// Command confbench regenerates Figure 2 of the paper: value-prediction
// confidence (coverage versus accuracy) for each program in the value
// suite, comparing the saturating up/down counter sweep (§3.1) against
// automatically designed FSM predictors cross-trained on the other
// programs (§6.3), over history lengths 2..10.
//
// Usage:
//
//	confbench                 # all programs, summary tables
//	confbench -prog gcc -csv  # one program, CSV series for plotting
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"fsmpredict/internal/cachewire"
	"fsmpredict/internal/cliutil"
	"fsmpredict/internal/experiments"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/stats"
	"fsmpredict/internal/tracestore"
)

func main() {
	log.SetFlags(0)
	var (
		prog    = flag.String("prog", "", "single program (default: all five)")
		events  = flag.Int("n", 120_000, "load events per program")
		csv     = flag.Bool("csv", false, "emit CSV series instead of tables")
		workers = flag.Int("workers", 0, "parallel design/simulation workers (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "report trace-store cache statistics to stderr")

		cacheDir  = flag.String("cache-dir", "", "persistent artifact cache directory (empty disables the disk tier)")
		cacheSize = flag.String("cache-size", "", "disk cache size bound, e.g. 512M (empty = store default)")
	)
	profile := cliutil.ProfileFlags()
	flag.Parse()
	stop := profile.Start()
	disk, err := cachewire.SetupSized(*cacheDir, *cacheSize)
	if err != nil {
		cliutil.BadUsage("confbench: %v", err)
	}
	cliutil.CheckPositive("n", *events)
	if *prog != "" {
		cliutil.CheckOneOf("prog", *prog, "gcc", "go", "groff", "li", "perl")
	}
	if *workers < 0 {
		cliutil.BadUsage("confbench: -workers must be >= 0, got %d", *workers)
	}
	if flag.NArg() > 0 {
		cliutil.BadUsage("confbench: unexpected arguments %v", flag.Args())
	}

	cfg := experiments.DefaultConfig()
	cfg.LoadEvents = *events
	cfg.Workers = *workers

	programs := []string{"gcc", "go", "groff", "li", "perl"}
	if *prog != "" {
		programs = []string{*prog}
	}

	for _, p := range programs {
		res, err := experiments.Figure2(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			fmt.Printf("# %s\n%s", p, stats.CSV(res.Series()))
			continue
		}
		report(res)
	}
	if *verbose {
		// The five panels share one packed correctness-stream simulation
		// per (program, input) through the process-wide trace store; the
		// hit count shows the sharing at work.
		st := tracestore.Shared.Stats()
		fmt.Fprintf(os.Stderr, "tracestore: %d hits, %d misses, %d entries, %.1f MiB retained\n",
			st.Hits, st.Misses, tracestore.Shared.Len(), float64(st.Bytes)/(1<<20))
		// Every counter config and designed FSM compiles one transition-
		// closure table, shared across programs and thresholds.
		bt := fsm.BlockStats()
		fmt.Fprintf(os.Stderr, "blocktable: %d hits, %d misses, %d tables, %.1f KiB retained\n",
			bt.Hits, bt.Misses, bt.Entries, float64(bt.Bytes)/(1<<10))
		if disk != nil {
			ds := disk.Stats()
			fmt.Fprintf(os.Stderr, "disktier: %d hits, %d misses, %d entries, %.1f MiB on disk\n",
				ds.Hits, ds.Misses, ds.Entries, float64(ds.Bytes)/(1<<20))
		}
	}
	stop()
}

func report(res *experiments.Figure2Result) {
	fmt.Printf("=== %s ===\n", res.Program)
	fmt.Println("up/down counter Pareto frontier:")
	tbl := &stats.Table{Headers: []string{"accuracy", "coverage"}}
	for _, p := range res.SUDFrontier() {
		tbl.AddRow(pct(p.X), pct(p.Y))
	}
	fmt.Println(tbl)

	hists := make([]int, 0, len(res.Curves))
	for h := range res.Curves {
		hists = append(hists, h)
	}
	sort.Ints(hists)
	for _, h := range hists {
		fmt.Printf("custom FSM, history %d:\n", h)
		tbl := &stats.Table{Headers: []string{"threshold", "states", "accuracy", "coverage"}}
		for _, p := range res.Curves[h] {
			tbl.AddRow(fmt.Sprintf("%.2f", p.Threshold), p.Machine.NumStates(),
				pct(p.Result.Accuracy()), pct(p.Result.Coverage()))
		}
		fmt.Println(tbl)
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
