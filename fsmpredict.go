// Package fsmpredict is the public API of the FSM-predictor design
// library, a reproduction of "Automated Design of Finite State Machine
// Predictors" (Sherwood & Calder, ISCA 2001).
//
// The library turns a behavioural trace of binary outcomes — branch
// directions, value-prediction correctness, anything predictable — into
// a small Moore-machine predictor:
//
//	design, err := fsmpredict.DesignFromTrace("0000 1000 1011 1101 1110 1111",
//	    fsmpredict.Options{Order: 2})
//	m := design.Machine
//	r := m.NewRunner()
//	r.Predict()      // prediction of the next outcome
//	r.Update(true)   // learn the actual outcome
//
// The design flow follows the paper exactly: an Nth-order Markov model of
// the trace (§4.2), pattern-set selection with don't cares (§4.3),
// two-level logic minimization (§4.4), a regular expression for the
// predict-1 language (§4.5), Thompson construction and subset
// construction (§4.6), Hopcroft minimization, start-state reduction
// (§4.7), and finally VHDL generation with area estimation (§4.8).
//
// The command-line tools under cmd/ and the runnable programs under
// examples/ exercise the complete evaluation of the paper: custom branch
// predictors for embedded processors and confidence estimation for value
// prediction. See DESIGN.md for the experiment index.
package fsmpredict

import (
	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/service"
	"fsmpredict/internal/vhdl"
)

// Options configures a design run; see core.Options for field semantics.
// The zero value plus an Order is the paper's default setup (bias
// threshold 1/2, 1% don't-care budget, start-state reduction on).
type Options = core.Options

// Design is the full record of one design-flow run, including the Markov
// model, pattern sets, minimized cover, regular expression, intermediate
// machine sizes and the final Machine.
type Design = core.Design

// Machine is the generated Moore-machine predictor.
type Machine = fsm.Machine

// Runner is the mutable per-instance execution state of a Machine.
type Runner = fsm.Runner

// Cube is a 0/1/x pattern over a fixed-width history window.
type Cube = bitseq.Cube

// MarkovModel is an Nth-order model of a binary trace.
type MarkovModel = markov.Model

// Synthesis is the gate-level synthesis result of a Machine.
type Synthesis = vhdl.Synthesis

// Bits is a packed bit sequence — the zero-copy trace representation
// every simulation kernel consumes. Machine.SimulateBits replays one
// through the byte-blocked superstep kernel without expanding to
// []bool.
type Bits = bitseq.Bits

// ParseBits packs a textual 0/1 trace (whitespace and underscores
// ignored) for the packed simulation API.
func ParseBits(trace string) (*Bits, error) { return bitseq.FromString(trace) }

// DesignFromTrace runs the automated design flow of §4 on a trace written
// as a string of '0' and '1' characters (whitespace and underscores are
// ignored).
func DesignFromTrace(trace string, opt Options) (*Design, error) {
	b, err := bitseq.FromString(trace)
	if err != nil {
		return nil, err
	}
	return core.FromTrace(b, opt)
}

// DesignFromBools runs the design flow on a boolean outcome sequence.
func DesignFromBools(trace []bool, opt Options) (*Design, error) {
	return core.FromBools(trace, opt)
}

// DesignFromModel runs the design flow on a prebuilt Markov model, e.g.
// one aggregated across a whole application suite (§6).
func DesignFromModel(m *MarkovModel, opt Options) (*Design, error) {
	return core.FromModel(m, opt)
}

// NewModel returns an empty Nth-order Markov model; feed it with
// AddBools/Observe and pass it to DesignFromModel.
func NewModel(order int) *MarkovModel { return markov.New(order) }

// GenerateVHDL renders the machine as a synthesizable VHDL entity (§4.8).
func GenerateVHDL(m *Machine) (string, error) { return vhdl.Generate(m) }

// Synthesize runs the gate-level synthesis model, returning the logic
// covers, gate count and estimated area of the machine.
func Synthesize(m *Machine) (*Synthesis, error) { return vhdl.Synthesize(m) }

// SynthesizeBest explores the implemented state encodings (binary, Gray,
// output-encoded) and returns the cheapest synthesis.
func SynthesizeBest(m *Machine) (*Synthesis, error) { return vhdl.SynthesizeBest(m) }

// GenerateTestbench renders a self-checking VHDL testbench that replays
// the outcome trace through the generated entity and asserts the
// hardware's predictions match the model's.
func GenerateTestbench(m *Machine, trace []bool, maxVectors int) (string, error) {
	return vhdl.GenerateTestbench(m, trace, maxVectors)
}

// EstimateArea returns the machine's estimated area in gate equivalents.
func EstimateArea(m *Machine) (float64, error) { return vhdl.EstimateArea(m) }

// Equal reports whether two machines make identical predictions on every
// input sequence.
func Equal(a, b *Machine) bool { return fsm.Equal(a, b) }

// ParseCube parses an oldest-first 0/1/x pattern such as "0x1x".
func ParseCube(s string) (Cube, error) { return bitseq.ParseCube(s) }

// MachineForCover builds the predictor recognizing the given same-width
// patterns directly (without a trace), using the verified fast path.
func MachineForCover(cover []Cube, order int) (*Machine, error) {
	return core.DirectMachine(cover, order)
}

// Service is a concurrent design server around the §4 flow: a
// content-addressed result cache, deduplication of identical in-flight
// requests, a bounded worker pool that sheds load with
// service.ErrOverloaded when saturated, and a coalescing micro-batch
// plane (DesignBatch/SimulateBatch) that groups requests by trace so
// each flush runs one kernel pass per group. cmd/fsmserved exposes one
// over HTTP, including the NDJSON /v1/batch endpoints.
type Service = service.Service

// ServiceConfig sizes a Service; the zero value uses GOMAXPROCS
// workers, a 1024-entry cache, and a 64-item / 2 ms batch plane
// (BatchMaxSize, BatchMaxWait).
type ServiceConfig = service.Config

// ServiceResult is the immutable outcome of one served design: machine
// JSON, VHDL, area, and pipeline statistics.
type ServiceResult = service.Result

// ErrOverloaded is returned by a saturated Service instead of queueing
// without bound.
var ErrOverloaded = service.ErrOverloaded

// NewService starts a design service. Callers must Close it when done:
//
//	svc := fsmpredict.NewService(fsmpredict.ServiceConfig{})
//	defer svc.Close()
//	res, cached, err := svc.DesignString(ctx, "0000 1000 1011 ...", fsmpredict.Options{Order: 2})
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }
