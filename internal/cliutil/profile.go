package cliutil

import (
	"flag"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile holds the -cpuprofile/-memprofile flag values shared by the
// bench tools. Register the flags with ProfileFlags before flag.Parse
// and bracket the measured work with Start and its stop function.
type Profile struct {
	cpu *string
	mem *string
}

// ProfileFlags registers the standard profiling flags on the default
// flag set. Call before flag.Parse.
func ProfileFlags() *Profile {
	return &Profile{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given and returns a
// stop function that ends the CPU profile and, when -memprofile was
// given, writes the heap profile. Typical use: defer p.Start()().
func (p *Profile) Start() func() {
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	return func() {
		if *p.cpu != "" {
			pprof.StopCPUProfile()
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}
	}
}
