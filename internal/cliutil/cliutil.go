// Package cliutil holds the shared command-line conventions of the
// cmd/* tools: a bad flag value prints the error and the usage text to
// stderr and exits with status 2 (the same status the flag package uses
// for unknown flags), while runtime failures exit 1 via log.Fatal.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

// exit is swapped out by tests.
var exit = os.Exit

// BadUsage reports a command-line usage error — an invalid or missing
// flag value — to stderr, prints the flag usage, and exits 2.
func BadUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	exit(2)
}

// CheckRange exits with a usage error unless lo <= v <= hi.
func CheckRange(name string, v, lo, hi int) {
	if v < lo || v > hi {
		BadUsage("%s: -%s %d out of range [%d,%d]", progName(), name, v, lo, hi)
	}
}

// CheckPositive exits with a usage error unless v > 0.
func CheckPositive(name string, v int) {
	if v <= 0 {
		BadUsage("%s: -%s must be positive, got %d", progName(), name, v)
	}
}

// CheckOneOf exits with a usage error unless v is one of the allowed
// values.
func CheckOneOf(name, v string, allowed ...string) {
	for _, a := range allowed {
		if v == a {
			return
		}
	}
	BadUsage("%s: -%s %q must be one of %v", progName(), name, v, allowed)
}

func progName() string {
	if len(os.Args) > 0 {
		return filepath.Base(os.Args[0])
	}
	return "cmd"
}
