package counters

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
)

func TestTwoBitBehaviour(t *testing.T) {
	c := NewTwoBit()
	if c.Predict() {
		t.Error("initial 2-bit counter should predict not-taken")
	}
	c.Update(true)
	if c.Predict() {
		t.Error("value 1 should still predict not-taken")
	}
	c.Update(true)
	if !c.Predict() {
		t.Error("value 2 should predict taken")
	}
	c.Update(true)
	c.Update(true) // saturate at 3
	if c.Value() != 3 {
		t.Errorf("value = %d, want 3", c.Value())
	}
	c.Update(false)
	if !c.Predict() {
		t.Error("one not-taken from saturation should stay predicting taken")
	}
	c.Update(false)
	c.Update(false)
	c.Update(false)
	if c.Value() != 0 || c.Predict() {
		t.Error("counter should floor at 0 and predict not-taken")
	}
}

func TestResettingCounter(t *testing.T) {
	c := NewResetting(5, 3)
	for i := 0; i < 5; i++ {
		c.Update(true)
	}
	if c.Value() != 5 || !c.Predict() {
		t.Fatalf("value = %d, predict = %v", c.Value(), c.Predict())
	}
	c.Update(false)
	if c.Value() != 0 || c.Predict() {
		t.Error("a miss should reset to zero")
	}
}

func TestSetValueAndReset(t *testing.T) {
	c := NewTwoBit()
	c.SetValue(2)
	if c.Value() != 2 || !c.Predict() {
		t.Error("SetValue(2) should be weakly taken")
	}
	c.Update(true)
	c.Reset()
	if c.Value() != 2 {
		t.Error("Reset should return to the initialized value")
	}
	c.SetValue(99)
	if c.Value() != 3 {
		t.Error("SetValue should clamp to Max")
	}
	c.SetValue(-4)
	if c.Value() != 0 {
		t.Error("SetValue should clamp to 0")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []SUDConfig{
		{Max: 0, Inc: 1, Dec: 1, Threshold: 1},
		{Max: 3, Inc: 0, Dec: 1, Threshold: 1},
		{Max: 3, Inc: 1, Dec: 0, Threshold: 1},
		{Max: 3, Inc: 1, Dec: -2, Threshold: 1},
		{Max: 3, Inc: 1, Dec: 1, Threshold: 0},
		{Max: 3, Inc: 1, Dec: 1, Threshold: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%v): expected error", i, c)
		}
	}
	if err := (SUDConfig{Max: 3, Inc: 1, Dec: FullReset, Threshold: 2}).Validate(); err != nil {
		t.Errorf("full-reset config should validate: %v", err)
	}
}

func TestConfigString(t *testing.T) {
	c := SUDConfig{Max: 40, Inc: 1, Dec: FullReset, Threshold: 36}
	if got := c.String(); got != "sud(max=40,inc=1,dec=full,thr=36)" {
		t.Errorf("String = %q", got)
	}
	if c.States() != 41 {
		t.Errorf("States = %d, want 41", c.States())
	}
}

func TestNewSUDPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSUD(SUDConfig{})
}

// TestMachineMatchesCounter cross-checks the explicit Moore machine
// against the counter implementation on random outcome streams.
func TestMachineMatchesCounter(t *testing.T) {
	configs := []SUDConfig{
		{Max: 3, Inc: 1, Dec: 1, Threshold: 2},
		{Max: 5, Inc: 1, Dec: 2, Threshold: 4},
		{Max: 10, Inc: 2, Dec: FullReset, Threshold: 9},
		{Max: 40, Inc: 1, Dec: 10, Threshold: 20},
	}
	rng := rand.New(rand.NewSource(3))
	for _, cfg := range configs {
		ctr := NewSUD(cfg)
		r := cfg.Machine().NewRunner()
		for i := 0; i < 2000; i++ {
			if ctr.Predict() != r.Predict() {
				t.Fatalf("%v: step %d: counter %v, machine %v", cfg, i, ctr.Predict(), r.Predict())
			}
			b := rng.Intn(2) == 1
			ctr.Update(b)
			r.Update(b)
		}
	}
}

// TestMachineBlockTableMatchesCounter closes the loop from the counter
// abstraction to the byte-blocked superstep kernel: a full blocked
// replay of a packed stream must flag exactly the events the stepped
// counter is confident on. This is what lets SUDSweepStreams run
// saturating counters through the same kernel as designed FSMs.
func TestMachineBlockTableMatchesCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range PaperSweep()[:10] {
		tab := fsm.BlockTableFor(cfg.Machine())
		if tab == nil {
			t.Fatalf("%v: no block table for counter machine", cfg)
		}
		stream := &bitseq.Bits{}
		ctr := NewSUD(cfg)
		correct := 0
		const n = 4000
		for i := 0; i < n; i++ {
			b := rng.Intn(3) > 0 // biased, like a real correctness stream
			if ctr.Predict() == b {
				correct++
			}
			ctr.Update(b)
			stream.Append(b)
		}
		got := tab.SimulatePacked(stream.Words(), stream.Len(), 0)
		if got.Total != n || got.Correct != correct {
			t.Fatalf("%v: blocked (%d/%d), counter (%d/%d)",
				cfg, got.Correct, got.Total, correct, n)
		}
	}
}

func TestCounterBoundsQuick(t *testing.T) {
	f := func(seed int64, maxRaw, decRaw uint8) bool {
		max := int(maxRaw%40) + 1
		dec := int(decRaw % 12)
		if dec == 0 {
			dec = FullReset
		}
		thr := max/2 + 1
		if thr > max {
			thr = max
		}
		c := NewSUD(SUDConfig{Max: max, Inc: 1, Dec: dec, Threshold: thr})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			c.Update(rng.Intn(2) == 1)
			if c.Value() < 0 || c.Value() > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPaperSweep(t *testing.T) {
	sweep := PaperSweep()
	if len(sweep) == 0 {
		t.Fatal("empty sweep")
	}
	// 4 max values x 5 penalties x 3 thresholds = 60 nominal points,
	// minus duplicates from threshold rounding at small max.
	if len(sweep) > 60 || len(sweep) < 50 {
		t.Errorf("sweep size = %d, want 50..60", len(sweep))
	}
	seen := map[SUDConfig]bool{}
	for _, cfg := range sweep {
		if err := cfg.Validate(); err != nil {
			t.Errorf("invalid sweep config %v: %v", cfg, err)
		}
		if seen[cfg] {
			t.Errorf("duplicate sweep config %v", cfg)
		}
		seen[cfg] = true
	}
	// The paper's largest counter must appear.
	if !seen[SUDConfig{Max: 40, Inc: 1, Dec: FullReset, Threshold: 36}] {
		t.Error("sweep missing max=40 full-reset 90%")
	}
}

func TestStatic(t *testing.T) {
	var p Predictor = Static(true)
	if !p.Predict() {
		t.Error("Static(true) should predict true")
	}
	p.Update(false)
	p.Reset()
	if !p.Predict() {
		t.Error("Static must ignore updates")
	}
}

func TestSUDImplementsPredictor(t *testing.T) {
	var _ Predictor = NewTwoBit()
}
