// Package counters implements the classic finite-state-machine predictors
// the paper compares against (§3.1): saturating up/down (SUD) counters —
// including the ubiquitous 2-bit branch counter — and resetting counters.
// All of them satisfy the Predictor interface shared with the generated
// FSM predictors, and can be converted to explicit fsm.Machine form for
// inspection, synthesis and area comparison.
package counters

import (
	"fmt"

	"fsmpredict/internal/fsm"
)

// Predictor is the common behaviour of every binary predictor in this
// module: predict the next outcome, then learn the actual outcome.
type Predictor interface {
	// Predict returns the predicted next outcome (taken / confident / 1).
	Predict() bool
	// Update advances the predictor with the observed outcome.
	Update(outcome bool)
	// Reset returns the predictor to its initial state.
	Reset()
}

// FullReset is the Dec value denoting the paper's "full" miss penalty: a
// wrong outcome resets the counter to zero (a resetting counter).
const FullReset = -1

// SUDConfig describes a saturating up/down counter per §3.1: four values —
// saturation threshold, correct increment, wrong decrement, prediction
// threshold.
type SUDConfig struct {
	// Max is the saturation value; the counter ranges over 0..Max, giving
	// Max+1 states.
	Max int
	// Inc is added on a 1 outcome (capped at Max).
	Inc int
	// Dec is subtracted on a 0 outcome (floored at 0), or FullReset to
	// reset the counter to zero.
	Dec int
	// Threshold: the counter predicts 1 while value >= Threshold.
	Threshold int
}

// Validate checks the configuration.
func (c SUDConfig) Validate() error {
	if c.Max < 1 {
		return fmt.Errorf("counters: max %d must be >= 1", c.Max)
	}
	if c.Inc < 1 {
		return fmt.Errorf("counters: inc %d must be >= 1", c.Inc)
	}
	if c.Dec < 1 && c.Dec != FullReset {
		return fmt.Errorf("counters: dec %d must be >= 1 or FullReset", c.Dec)
	}
	if c.Threshold < 1 || c.Threshold > c.Max {
		return fmt.Errorf("counters: threshold %d out of range [1,%d]", c.Threshold, c.Max)
	}
	return nil
}

// States returns the number of states of the counter (Max+1).
func (c SUDConfig) States() int { return c.Max + 1 }

// String names the configuration, e.g. "sud(max=40,inc=1,dec=full,thr=36)".
func (c SUDConfig) String() string {
	dec := fmt.Sprintf("%d", c.Dec)
	if c.Dec == FullReset {
		dec = "full"
	}
	return fmt.Sprintf("sud(max=%d,inc=%d,dec=%s,thr=%d)", c.Max, c.Inc, dec, c.Threshold)
}

// SUD is a saturating up/down counter instance.
type SUD struct {
	cfg   SUDConfig
	value int
	init  int
}

// NewSUD returns a counter with the given configuration, starting at 0.
// It panics on an invalid configuration (configurations are programmer
// input, not runtime data).
func NewSUD(cfg SUDConfig) *SUD {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &SUD{cfg: cfg}
}

// NewTwoBit returns the classic 2-bit saturating counter used by the
// XScale baseline: values 0..3, predict taken at 2 and above.
func NewTwoBit() *SUD {
	return NewSUD(SUDConfig{Max: 3, Inc: 1, Dec: 1, Threshold: 2})
}

// NewResetting returns a resetting counter (Jacobsen et al., §3.1): it
// counts up on correct outcomes and resets to zero on a wrong one.
func NewResetting(max, threshold int) *SUD {
	return NewSUD(SUDConfig{Max: max, Inc: 1, Dec: FullReset, Threshold: threshold})
}

// Config returns the counter's configuration.
func (s *SUD) Config() SUDConfig { return s.cfg }

// Value returns the current counter value.
func (s *SUD) Value() int { return s.value }

// SetValue positions the counter, clamping into range. Useful for
// initializing branch-table counters to weakly-taken.
func (s *SUD) SetValue(v int) {
	if v < 0 {
		v = 0
	}
	if v > s.cfg.Max {
		v = s.cfg.Max
	}
	s.value = v
	s.init = v
}

// Predict reports whether the counter is at or above its threshold.
func (s *SUD) Predict() bool { return s.value >= s.cfg.Threshold }

// Update applies one outcome.
func (s *SUD) Update(outcome bool) {
	if outcome {
		s.value += s.cfg.Inc
		if s.value > s.cfg.Max {
			s.value = s.cfg.Max
		}
		return
	}
	if s.cfg.Dec == FullReset {
		s.value = 0
		return
	}
	s.value -= s.cfg.Dec
	if s.value < 0 {
		s.value = 0
	}
}

// Reset returns the counter to its initial value.
func (s *SUD) Reset() { s.value = s.init }

// Machine expands the counter into an explicit Moore machine with Max+1
// states, enabling the same synthesis/area analysis as generated FSMs.
func (c SUDConfig) Machine() *fsm.Machine {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	n := c.Max + 1
	m := &fsm.Machine{
		Name:   c.String(),
		Output: make([]bool, n),
		Next:   make([][2]int, n),
		Start:  0,
	}
	for v := 0; v < n; v++ {
		m.Output[v] = v >= c.Threshold
		up := v + c.Inc
		if up > c.Max {
			up = c.Max
		}
		down := 0
		if c.Dec != FullReset {
			down = v - c.Dec
			if down < 0 {
				down = 0
			}
		}
		m.Next[v] = [2]int{down, up}
	}
	return m
}

// PaperSweep enumerates the SUD configurations evaluated in Figure 2 of
// the paper: maximum values 5, 10, 20 and 40; miss penalties 1, 2, 5, 10
// and full; and prediction thresholds at 50%, 80% and 90% of the maximum.
func PaperSweep() []SUDConfig {
	var out []SUDConfig
	for _, max := range []int{5, 10, 20, 40} {
		for _, dec := range []int{1, 2, 5, 10, FullReset} {
			for _, frac := range []float64{0.5, 0.8, 0.9} {
				thr := int(frac*float64(max) + 0.5)
				if thr < 1 {
					thr = 1
				}
				if thr > max {
					thr = max
				}
				cfg := SUDConfig{Max: max, Inc: 1, Dec: dec, Threshold: thr}
				out = append(out, cfg)
			}
		}
	}
	return dedupConfigs(out)
}

func dedupConfigs(in []SUDConfig) []SUDConfig {
	seen := map[SUDConfig]bool{}
	var out []SUDConfig
	for _, c := range in {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Static is a predictor that always predicts the same outcome; the
// degenerate baseline (predict-taken / never-confident).
type Static bool

// Predict returns the fixed prediction.
func (s Static) Predict() bool { return bool(s) }

// Update is a no-op.
func (Static) Update(bool) {}

// Reset is a no-op.
func (Static) Reset() {}
