package counters_test

import (
	"fmt"

	"fsmpredict/internal/counters"
)

// ExampleNewTwoBit walks the classic 2-bit saturating counter through a
// direction change.
func ExampleNewTwoBit() {
	c := counters.NewTwoBit()
	for _, taken := range []bool{true, true, false, true} {
		c.Update(taken)
	}
	fmt.Printf("value %d predicts taken: %v\n", c.Value(), c.Predict())
	// Output:
	// value 2 predicts taken: true
}

// ExampleSUDConfig_Machine expands a counter into an explicit Moore
// machine, making it comparable (and synthesizable) like a designed FSM.
func ExampleSUDConfig_Machine() {
	cfg := counters.SUDConfig{Max: 3, Inc: 1, Dec: 1, Threshold: 2}
	m := cfg.Machine()
	fmt.Printf("%d states, start predicts %v\n", m.NumStates(), m.Output[m.Start])
	// Output:
	// 4 states, start predicts false
}
