package trace

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"fsmpredict/internal/bitseq"
)

func randomBranches(seed int64, n int) []BranchEvent {
	rng := rand.New(rand.NewSource(seed))
	events := make([]BranchEvent, n)
	for i := range events {
		events[i] = BranchEvent{
			PC:    0x1200000 + uint64(rng.Intn(8))*4,
			Taken: rng.Intn(2) == 1,
		}
	}
	return events
}

func TestOutcomes(t *testing.T) {
	events := []BranchEvent{{1, true}, {2, false}, {3, true}}
	if got := Outcomes(events).String(); got != "101" {
		t.Fatalf("Outcomes = %q, want 101", got)
	}
}

func TestProfile(t *testing.T) {
	events := []BranchEvent{
		{10, true}, {20, false}, {10, true}, {10, false}, {20, false},
	}
	prof := Profile(events)
	if len(prof) != 2 {
		t.Fatalf("profile has %d entries, want 2", len(prof))
	}
	if prof[0].PC != 10 || prof[0].Count != 3 || prof[0].Taken != 2 {
		t.Errorf("top entry = %+v", prof[0])
	}
	if r := prof[0].TakenRate(); r < 0.66 || r > 0.67 {
		t.Errorf("TakenRate = %v", r)
	}
	if (BranchProfile{}).TakenRate() != 0 {
		t.Error("empty profile should have zero rate")
	}
}

// profileOracle is the original map-of-pointers implementation of
// Profile, kept as the differential oracle for the interned tally path.
func profileOracle(events []BranchEvent) []BranchProfile {
	byPC := map[uint64]*BranchProfile{}
	for _, e := range events {
		p := byPC[e.PC]
		if p == nil {
			p = &BranchProfile{PC: e.PC}
			byPC[e.PC] = p
		}
		p.Count++
		if e.Taken {
			p.Taken++
		}
	}
	out := make([]BranchProfile, 0, len(byPC))
	for _, p := range byPC {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// TestProfileMatchesOracle checks the rewritten Profile against the old
// implementation on random traces, including heavy tie scenarios.
func TestProfileMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		events := randomBranches(seed, 4000)
		got, want := Profile(events), profileOracle(events)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d entries, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d entry %d: %+v, want %+v", seed, i, got[i], want[i])
			}
		}
	}
	// All-ties: every branch executed exactly once, order must be by PC.
	var ties []BranchEvent
	for pc := uint64(100); pc > 0; pc-- {
		ties = append(ties, BranchEvent{PC: pc * 8, Taken: pc%2 == 0})
	}
	got, want := Profile(ties), profileOracle(ties)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ties entry %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if len(Profile(nil)) != 0 {
		t.Fatal("empty trace should produce empty profile")
	}
}

func TestProfileDeterministicOrder(t *testing.T) {
	events := []BranchEvent{{5, true}, {3, true}, {9, false}}
	p1, p2 := Profile(events), Profile(events)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Profile order not deterministic")
		}
	}
	// Equal counts break ties by PC.
	if p1[0].PC != 3 || p1[1].PC != 5 || p1[2].PC != 9 {
		t.Errorf("tie-break order wrong: %+v", p1)
	}
}

func TestGlobalMarkov(t *testing.T) {
	// Branch 100 is always the inverse of the previous branch outcome.
	var events []BranchEvent
	rng := rand.New(rand.NewSource(1))
	prev := false
	for i := 0; i < 200; i++ {
		b := rng.Intn(2) == 1
		events = append(events, BranchEvent{PC: 50, Taken: b})
		prev = b
		events = append(events, BranchEvent{PC: 100, Taken: !prev})
	}
	models := GlobalMarkov(events, map[uint64]bool{100: true}, 2)
	m := models[100]
	if m.Total() == 0 {
		t.Fatal("no observations for target branch")
	}
	// For every observed history the outcome is the inverse of bit 0.
	for _, h := range m.Histories() {
		c := m.Count(h)
		if h&1 == 1 && c.Ones > 0 {
			t.Errorf("history %s followed by taken %d times; expected inverse correlation",
				bitseq.HistoryString(h, 2), c.Ones)
		}
		if h&1 == 0 && c.Zeros > 0 {
			t.Errorf("history %s followed by not-taken %d times", bitseq.HistoryString(h, 2), c.Zeros)
		}
	}
}

func TestGlobalMarkovSkipsColdStart(t *testing.T) {
	events := []BranchEvent{{7, true}, {7, false}, {7, true}, {7, true}}
	models := GlobalMarkov(events, map[uint64]bool{7: true}, 3)
	// Only the fourth event has 3 bits of history.
	if got := models[7].Total(); got != 1 {
		t.Fatalf("observations = %d, want 1", got)
	}
}

func TestLocalMarkov(t *testing.T) {
	// Branch 100 alternates; branch 50 adds global noise between.
	var events []BranchEvent
	for i := 0; i < 100; i++ {
		events = append(events, BranchEvent{PC: 50, Taken: i%3 == 0})
		events = append(events, BranchEvent{PC: 100, Taken: i%2 == 0})
	}
	models := LocalMarkov(events, map[uint64]bool{100: true}, 1)
	m := models[100]
	// Locally the branch alternates perfectly: after 1 always 0, after 0
	// always 1.
	if c := m.Count(1); c.Ones != 0 || c.Zeros == 0 {
		t.Errorf("after local 1: %+v", c)
	}
	if c := m.Count(0); c.Zeros != 0 || c.Ones == 0 {
		t.Errorf("after local 0: %+v", c)
	}
}

func TestBranchBinaryRoundTrip(t *testing.T) {
	events := randomBranches(3, 5000)
	var buf bytes.Buffer
	if err := WriteBranches(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBranches(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("length %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestBranchTextRoundTrip(t *testing.T) {
	events := randomBranches(5, 100)
	var buf bytes.Buffer
	if err := WriteBranchesText(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBranchesText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("length %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestLoadBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := make([]LoadEvent, 3000)
	for i := range events {
		events[i] = LoadEvent{PC: rng.Uint64() >> 20, Value: rng.Uint64()}
	}
	var buf bytes.Buffer
	if err := WriteLoads(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLoads(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadBranches(bytes.NewBufferString("garbage")); err == nil {
		t.Error("expected branch header error")
	}
	if _, err := ReadLoads(bytes.NewBufferString("garbage")); err == nil {
		t.Error("expected load header error")
	}
	if _, err := ReadBranches(bytes.NewBufferString(branchMagic + " 5\n\x01")); err == nil {
		t.Error("expected truncation error")
	}
	if _, err := ReadBranchesText(bytes.NewBufferString("0x10 zz\n")); err == nil {
		t.Error("expected text parse error")
	}
}

func TestEmptyTraces(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBranches(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBranches(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestCanonicalBits(t *testing.T) {
	// Construction route and source formatting must not matter.
	a := bitseq.MustFromString("0000 1000_1011 1101")
	b := bitseq.FromBools(a.Bools())
	ca, cb := CanonicalBits(a), CanonicalBits(b)
	if !bytes.Equal(ca, cb) {
		t.Errorf("same bits, different canonical form: %q vs %q", ca, cb)
	}
	if !bytes.HasPrefix(ca, []byte("fsmp-bits-v1 16\n")) {
		t.Errorf("bad header: %q", ca)
	}

	// Different content, lengths, and trailing zeros must all be distinct.
	distinct := []string{
		"", "0", "1", "00", "01", "10", "0000", "00000000", "000000000",
		"0000 1000 1011 1101", "0000 1000 1011 1100", "1111 1111",
	}
	seen := map[string]string{}
	for _, s := range distinct {
		key := string(CanonicalBits(bitseq.MustFromString(s)))
		if prev, ok := seen[key]; ok {
			t.Errorf("traces %q and %q share canonical form %q", prev, s, key)
		}
		seen[key] = s
	}

	// Packing is LSB-first within each byte: "1000 0000" -> 0x01.
	c := CanonicalBits(bitseq.MustFromString("1000 0000"))
	if payload := c[len(c)-1]; payload != 0x01 {
		t.Errorf("payload byte = %#x, want 0x01", payload)
	}
}
