package trace

import (
	"math"
	"testing"
)

func TestGenBiasedDeterministic(t *testing.T) {
	a, err := GenBiased(5000, 0.9, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenBiased(5000, 0.9, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical seeds", i)
		}
	}
	c, _ := GenBiased(5000, 0.9, 32, 8)
	same := 0
	for i := range a {
		if a[i].Taken == c[i].Taken {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical outcome streams")
	}
}

func TestGenBiasedHitsBias(t *testing.T) {
	for _, tc := range []struct{ bias, runlen float64 }{
		{0.5, 0}, {0.75, 0}, {0.95, 0},
		{0.5, 16}, {0.9, 64}, {0.95, 64}, {0.99, 128},
	} {
		events, err := GenBiased(400_000, tc.bias, tc.runlen, 1)
		if err != nil {
			t.Fatal(err)
		}
		taken := 0
		for _, e := range events {
			if e.Taken {
				taken++
			}
		}
		got := float64(taken) / float64(len(events))
		// Run-structured streams have high variance: tolerance scales
		// with the standard error of ~n/runlen independent runs.
		tol := 0.01 + 0.05*math.Sqrt(math.Max(tc.runlen, 1)/float64(len(events)))*10
		if math.Abs(got-tc.bias) > tol {
			t.Errorf("bias %g runlen %g: measured %g (tol %g)", tc.bias, tc.runlen, got, tol)
		}
	}
}

func TestGenBiasedRunStructure(t *testing.T) {
	events, err := GenBiased(200_000, 0.95, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	runs, cur := 0, 0
	for i, e := range events {
		if i == 0 || e.Taken != events[i-1].Taken {
			runs++
		}
		_ = cur
	}
	meanRun := float64(len(events)) / float64(runs)
	if meanRun < 32 || meanRun > 128 {
		t.Fatalf("mean run %g, want near 64", meanRun)
	}
	iid, _ := GenBiased(200_000, 0.95, 0, 1)
	iidRuns := 0
	for i, e := range iid {
		if i == 0 || e.Taken != iid[i-1].Taken {
			iidRuns++
		}
	}
	if iidMean := float64(len(iid)) / float64(iidRuns); iidMean > 15 {
		t.Fatalf("iid mean run %g, expected short runs", iidMean)
	}
}

func TestGenBiasedErrors(t *testing.T) {
	for _, tc := range []struct {
		n      int
		bias   float64
		runlen float64
	}{
		{-1, 0.5, 0}, {10, 0, 0}, {10, 1, 0}, {10, -0.5, 0},
		{10, math.NaN(), 0}, {10, 0.5, -1}, {10, 0.5, math.Inf(1)},
	} {
		if _, err := GenBiased(tc.n, tc.bias, tc.runlen, 1); err == nil {
			t.Errorf("GenBiased(%d, %g, %g) accepted invalid input", tc.n, tc.bias, tc.runlen)
		}
	}
	if events, err := GenBiased(0, 0.5, 0, 1); err != nil || len(events) != 0 {
		t.Fatalf("empty trace: %v, %d events", err, len(events))
	}
}
