// Package trace defines the behavioural event records the design flow
// consumes — conditional branch outcomes and load values — together with
// compact binary and human-readable text encodings, and the profiling
// passes that turn event streams into Markov models (standing in for the
// ATOM instrumentation used in the paper, §5).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/markov"
)

// BranchEvent is one dynamic conditional branch: its static address and
// its resolved direction.
type BranchEvent struct {
	PC    uint64
	Taken bool
}

// LoadEvent is one dynamic load: its static address and the value loaded.
type LoadEvent struct {
	PC    uint64
	Value uint64
}

// Outcomes extracts the global direction stream from a branch trace.
func Outcomes(events []BranchEvent) *bitseq.Bits {
	b := &bitseq.Bits{}
	for _, e := range events {
		b.Append(e.Taken)
	}
	return b
}

// BranchProfile summarizes per-static-branch behaviour.
type BranchProfile struct {
	PC    uint64
	Count int
	Taken int
}

// TakenRate returns the fraction of executions that were taken.
func (p BranchProfile) TakenRate() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Taken) / float64(p.Count)
}

// Profile tallies the trace per static branch, ordered by descending
// execution count (ties by PC). Static branches are interned to dense
// indexes so the hot loop updates a flat tally slice — one map lookup
// per event, no per-branch pointer allocations — and the final ordering
// comes from sorting the values directly.
func Profile(events []BranchEvent) []BranchProfile {
	idByPC := map[uint64]int{}
	var out []BranchProfile
	for _, e := range events {
		id, ok := idByPC[e.PC]
		if !ok {
			id = len(out)
			idByPC[e.PC] = id
			out = append(out, BranchProfile{PC: e.PC})
		}
		out[id].Count++
		if e.Taken {
			out[id].Taken++
		}
	}
	slices.SortFunc(out, func(a, b BranchProfile) int {
		if a.Count != b.Count {
			if a.Count > b.Count {
				return -1
			}
			return 1
		}
		switch {
		case a.PC < b.PC:
			return -1
		case a.PC > b.PC:
			return 1
		}
		return 0
	})
	return out
}

// GlobalMarkov builds, for each requested branch, an order-N Markov model
// mapping the GLOBAL history (outcomes of the N most recent branches of
// any address, the newest in bit 0) to the branch's outcome — the §7.3
// training scheme for per-branch custom predictors. Branches executed
// before N global outcomes exist are skipped.
func GlobalMarkov(events []BranchEvent, targets map[uint64]bool, order int) map[uint64]*markov.Model {
	models := make(map[uint64]*markov.Model, len(targets))
	for pc := range targets {
		models[pc] = markov.New(order)
	}
	h := bitseq.NewHistory(order)
	for _, e := range events {
		if m, ok := models[e.PC]; ok && h.Warm() {
			m.Observe(h.Value(), e.Taken)
		}
		h.Push(e.Taken)
	}
	return models
}

// LocalMarkov builds, for each requested branch, an order-N Markov model
// over the branch's own (local) history — the alternative training input
// the paper examined and found less robust across inputs than global
// correlation (§7.3).
func LocalMarkov(events []BranchEvent, targets map[uint64]bool, order int) map[uint64]*markov.Model {
	models := make(map[uint64]*markov.Model, len(targets))
	hists := make(map[uint64]*bitseq.History, len(targets))
	for pc := range targets {
		models[pc] = markov.New(order)
		hists[pc] = bitseq.NewHistory(order)
	}
	for _, e := range events {
		h, ok := hists[e.PC]
		if !ok {
			continue
		}
		if h.Warm() {
			models[e.PC].Observe(h.Value(), e.Taken)
		}
		h.Push(e.Taken)
	}
	return models
}

// --- encodings ---

const (
	branchMagic = "fsmp-branch-v1"
	loadMagic   = "fsmp-load-v1"
	bitsMagic   = "fsmp-bits-v1"
)

// CanonicalBits renders a binary outcome sequence in its canonical byte
// form: a versioned header carrying the exact bit count, followed by the
// bits packed eight per byte (bit i of the sequence in bit i%8 of byte
// i/8). Two sequences produce the same bytes iff they contain the same
// bits in the same order, regardless of how they were built or what
// whitespace the textual source contained — which makes the encoding a
// sound input for content addressing (the design service hashes it to
// key its cache). The header's length field disambiguates sequences that
// differ only by trailing zero bits.
func CanonicalBits(b *bitseq.Bits) []byte {
	n := b.Len()
	header := fmt.Sprintf("%s %d\n", bitsMagic, n)
	out := make([]byte, len(header), len(header)+(n+7)/8)
	copy(out, header)
	var cur byte
	for i := 0; i < n; i++ {
		if b.At(i) {
			cur |= 1 << uint(i%8)
		}
		if i%8 == 7 {
			out = append(out, cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		out = append(out, cur)
	}
	return out
}

// WriteBranches streams the trace in a compact binary form: a magic
// header, the event count, then per event a uvarint PC and a direction
// byte.
func WriteBranches(w io.Writer, events []BranchEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %d\n", branchMagic, len(events)); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64 + 1]byte
	for _, e := range events {
		n := binary.PutUvarint(buf[:], e.PC)
		if e.Taken {
			buf[n] = 1
		} else {
			buf[n] = 0
		}
		if _, err := bw.Write(buf[:n+1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBranches reads a trace written by WriteBranches.
func ReadBranches(r io.Reader) ([]BranchEvent, error) {
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscanf(br, branchMagic+" %d\n", &n); err != nil {
		return nil, fmt.Errorf("trace: bad branch header: %v", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("trace: negative event count %d", n)
	}
	events := make([]BranchEvent, 0, n)
	for i := 0; i < n; i++ {
		pc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %v", i, err)
		}
		dir, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %v", i, err)
		}
		events = append(events, BranchEvent{PC: pc, Taken: dir != 0})
	}
	return events, nil
}

// WriteLoads streams a load-value trace in binary form.
func WriteLoads(w io.Writer, events []LoadEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %d\n", loadMagic, len(events)); err != nil {
		return err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	for _, e := range events {
		n := binary.PutUvarint(buf[:], e.PC)
		n += binary.PutUvarint(buf[n:], e.Value)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLoads reads a trace written by WriteLoads.
func ReadLoads(r io.Reader) ([]LoadEvent, error) {
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscanf(br, loadMagic+" %d\n", &n); err != nil {
		return nil, fmt.Errorf("trace: bad load header: %v", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("trace: negative event count %d", n)
	}
	events := make([]LoadEvent, 0, n)
	for i := 0; i < n; i++ {
		pc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %v", i, err)
		}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %v", i, err)
		}
		events = append(events, LoadEvent{PC: pc, Value: v})
	}
	return events, nil
}

// WriteBranchesText renders the trace one "pc direction" pair per line —
// the human-auditable form used by the command-line tools.
func WriteBranchesText(w io.Writer, events []BranchEvent) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		dir := 0
		if e.Taken {
			dir = 1
		}
		if _, err := fmt.Fprintf(bw, "%#x %d\n", e.PC, dir); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBranchesText parses the text form written by WriteBranchesText.
func ReadBranchesText(r io.Reader) ([]BranchEvent, error) {
	sc := bufio.NewScanner(r)
	var events []BranchEvent
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Text()) == 0 {
			continue
		}
		var pc uint64
		var dir int
		if _, err := fmt.Sscanf(sc.Text(), "%v %d", &pc, &dir); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		events = append(events, BranchEvent{PC: pc, Taken: dir != 0})
	}
	return events, sc.Err()
}
