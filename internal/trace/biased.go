package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Synthetic biased traces: the span kernel's characterization workload.
// Real branch streams mix bias (loop back-edges resolve one way almost
// always) with run structure (the repeats come in stretches, not iid
// coin flips), and the two knobs matter independently — an iid 95%-bias
// stream has mean run length ~20 events but only ~66% homogeneous
// bytes, while the same bias arranged in longer runs is nearly all
// skippable. GenBiased separates the knobs so throughput can be plotted
// against each.

// GenBiased returns n branch events whose direction stream is an
// alternating-run source with overall taken fraction bias and mean run
// length runlen events: taken runs draw from a geometric distribution
// with mean 2·runlen·bias, not-taken runs with mean 2·runlen·(1−bias),
// so long-run averages land on both targets at once. runlen ≤ 1 (or a
// bias so extreme the shorter run's mean floors at 1) degrades toward
// iid Bernoulli(bias) behaviour; runlen = 0 requests iid exactly. PCs
// cycle through a small synthetic set so the trace packs like a real
// workload. Deterministic in (n, bias, runlen, seed).
func GenBiased(n int, bias, runlen float64, seed int64) ([]BranchEvent, error) {
	if n < 0 {
		return nil, fmt.Errorf("trace: biased trace length %d is negative", n)
	}
	if bias <= 0 || bias >= 1 || math.IsNaN(bias) {
		return nil, fmt.Errorf("trace: bias %v outside (0,1)", bias)
	}
	if runlen < 0 || math.IsNaN(runlen) || math.IsInf(runlen, 0) {
		return nil, fmt.Errorf("trace: mean run length %v invalid", runlen)
	}
	rng := rand.New(rand.NewSource(seed))
	events := make([]BranchEvent, n)
	const pcs = 8
	if runlen <= 1 {
		for i := range events {
			events[i] = BranchEvent{PC: biasedPC(i % pcs), Taken: rng.Float64() < bias}
		}
		return events, nil
	}
	meanTaken := 2 * runlen * bias
	meanNot := 2 * runlen * (1 - bias)
	taken := rng.Float64() < bias // stationary start
	for i := 0; i < n; {
		mean := meanNot
		if taken {
			mean = meanTaken
		}
		k := geometric(rng, mean)
		for j := 0; j < k && i < n; j++ {
			events[i] = BranchEvent{PC: biasedPC(i % pcs), Taken: taken}
			i++
		}
		taken = !taken
	}
	return events, nil
}

// biasedPC maps a synthetic static-branch index to a plausible PC.
func biasedPC(i int) uint64 { return 0x40_0000 + uint64(i)*4 }

// geometric samples a run length ≥ 1 with the given mean (support
// {1,2,...}, success probability 1/mean; mean ≤ 1 pins the draw at 1).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	k := 1 + int(math.Floor(math.Log(u)/math.Log(1-1/mean)))
	if k < 1 {
		return 1
	}
	return k
}
