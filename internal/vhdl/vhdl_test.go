package vhdl

import (
	"math/rand"
	"strings"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/dfa"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/nfa"
	"fsmpredict/internal/regex"
)

func figure1Machine() *fsm.Machine {
	return &fsm.Machine{
		Name:   "figure1",
		Output: []bool{false, true, true},
		Next:   [][2]int{{0, 1}, {2, 1}, {0, 1}},
		Start:  0,
	}
}

func randomPipelineMachine(rng *rand.Rand, width int) *fsm.Machine {
	var cover []bitseq.Cube
	for i := 0; i < rng.Intn(3)+1; i++ {
		cover = append(cover, bitseq.NewCube(rng.Uint32(), rng.Uint32()|1, width))
	}
	d := dfa.FromNFA(nfa.Compile(regex.FromCover(cover))).Minimize().TrimStartup()
	return fsm.FromDFA(d)
}

func TestGenerateStructure(t *testing.T) {
	m := figure1Machine()
	src, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"entity figure1 is",
		"architecture behavioral of figure1 is",
		"type state_type is (s0, s1, s2);",
		"state <= s0;", // reset to start
		"when s0 =>",
		"when s1 =>",
		"when s2 =>",
		"prediction <= '1' when state = s1 or state = s2 else '0';",
		"rising_edge(clk)",
		"end behavioral;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("VHDL missing %q:\n%s", want, src)
		}
	}
	// Balanced processes.
	if strings.Count(src, "process") != 4 { // 2 process headers + 2 end process
		t.Errorf("expected 2 processes, got:\n%s", src)
	}
}

func TestGenerateConstantOutputs(t *testing.T) {
	all1 := &fsm.Machine{Output: []bool{true, true}, Next: [][2]int{{0, 1}, {0, 1}}, Start: 0}
	src, err := Generate(all1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "prediction <= '1';") {
		t.Error("all-accepting machine should emit constant 1")
	}
	all0 := &fsm.Machine{Output: []bool{false}, Next: [][2]int{{0, 0}}, Start: 0}
	src, err = Generate(all0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "prediction <= '0';") {
		t.Error("all-rejecting machine should emit constant 0")
	}
}

func TestGenerateMergedEdges(t *testing.T) {
	m := &fsm.Machine{Output: []bool{false, true}, Next: [][2]int{{1, 1}, {0, 0}}, Start: 0}
	src, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "outcome = '1'") {
		t.Error("states with identical successors should not test outcome")
	}
}

func TestGenerateDefaultNameAndSanitize(t *testing.T) {
	m := figure1Machine()
	m.Name = ""
	src, _ := Generate(m)
	if !strings.Contains(src, "entity predictor is") {
		t.Error("empty name should become 'predictor'")
	}
	m.Name = "branch@0x12003/2C"
	src, _ = Generate(m)
	if !strings.Contains(src, "entity branch0x120032C is") {
		t.Errorf("sanitized name wrong:\n%s", src)
	}
	m.Name = "0x12"
	src, _ = Generate(m)
	if !strings.Contains(src, "entity p0x12 is") {
		t.Errorf("digit-leading name should gain a prefix:\n%s", src)
	}
}

func TestGenerateInvalid(t *testing.T) {
	if _, err := Generate(&fsm.Machine{}); err == nil {
		t.Fatal("expected error for invalid machine")
	}
}

func TestSynthesizeFigure1(t *testing.T) {
	s, err := Synthesize(figure1Machine())
	if err != nil {
		t.Fatal(err)
	}
	if s.StateBits != 2 {
		t.Errorf("StateBits = %d, want 2", s.StateBits)
	}
	if len(s.NextCovers) != 2 {
		t.Errorf("NextCovers = %d functions, want 2", len(s.NextCovers))
	}
	if s.Area <= 0 {
		t.Errorf("Area = %v, want positive", s.Area)
	}
}

func TestSynthesizeConstantMachine(t *testing.T) {
	m := &fsm.Machine{Output: []bool{true}, Next: [][2]int{{0, 0}}, Start: 0}
	s, err := Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.StateBits != 0 || s.Gates != 0 || s.Area != geBase {
		t.Errorf("constant machine synthesis = %+v", s)
	}
}

// TestSynthesizedLogicImplementsMachine replays the covers as logic and
// checks they compute exactly the machine's transition and output
// functions — the synthesis model must be functionally faithful.
func TestSynthesizedLogicImplementsMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		m := randomPipelineMachine(rng, rng.Intn(4)+2)
		s, err := Synthesize(m)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumStates() == 1 {
			continue
		}
		for st := 0; st < m.NumStates(); st++ {
			for b := 0; b < 2; b++ {
				wantNext := m.Next[st][b]
				input := uint32(st)<<1 | uint32(b)
				var gotNext int
				for j, cover := range s.NextCovers {
					if bitseq.CoverMatches(cover, input) {
						gotNext |= 1 << uint(j)
					}
				}
				if gotNext != wantNext {
					t.Fatalf("trial %d: state %d outcome %d: logic next = %d, machine next = %d",
						trial, st, b, gotNext, wantNext)
				}
			}
			if got := bitseq.CoverMatches(s.OutputCover, uint32(st)); got != m.Output[st] {
				t.Fatalf("trial %d: state %d: logic output = %v, machine output = %v",
					trial, st, got, m.Output[st])
			}
		}
	}
}

// TestAreaGrowsWithStates checks the Figure 4 premise: larger machines
// cost more, roughly linearly, and area never exceeds a generous linear
// bound in the state count.
func TestAreaGrowsWithStates(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	type point struct {
		states int
		area   float64
	}
	var pts []point
	for trial := 0; trial < 40; trial++ {
		m := randomPipelineMachine(rng, rng.Intn(6)+2)
		a, err := EstimateArea(m)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{m.NumStates(), a})
	}
	for _, p := range pts {
		if p.area < geBase {
			t.Errorf("area %v below base cost", p.area)
		}
		bound := geBase + 8*geFlipFlop + 14*float64(p.states)*geGate
		if p.area > bound {
			t.Errorf("area %v for %d states exceeds linear bound %v", p.area, p.states, bound)
		}
	}
	// Average area of large machines must exceed that of small ones.
	var small, large []float64
	for _, p := range pts {
		if p.states <= 4 {
			small = append(small, p.area)
		} else if p.states >= 10 {
			large = append(large, p.area)
		}
	}
	if len(small) > 0 && len(large) > 0 {
		if mean(large) <= mean(small) {
			t.Errorf("mean area of large machines (%v) not above small ones (%v)",
				mean(large), mean(small))
		}
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestSynthesizeDeterministic(t *testing.T) {
	m := randomPipelineMachine(rand.New(rand.NewSource(5)), 5)
	a1, _ := EstimateArea(m)
	a2, _ := EstimateArea(m)
	if a1 != a2 {
		t.Fatalf("EstimateArea not deterministic: %v vs %v", a1, a2)
	}
}
