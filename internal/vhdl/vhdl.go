// Package vhdl performs the final step of the paper's design flow (§4.8):
// translating a Moore-machine predictor into synthesizable VHDL, and — in
// place of the Synopsys tool used in the paper — estimating the silicon
// area of the machine with a gate-level synthesis model.
//
// The synthesis model binary-encodes the states, extracts the next-state
// and output logic as two-level covers minimized by internal/logic, and
// counts gate equivalents (GE): AND trees for product terms, OR trees per
// function, and one flip-flop per state bit. The paper uses synthesis
// results only to fit a linear area-versus-states bound (Figure 4), which
// this model reproduces: area grows linearly with state count, while
// highly regular machines minimize well and fall below the line.
package vhdl

import (
	"fmt"
	"math/bits"
	"strings"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
)

// Gate-equivalent cost constants. The absolute values are arbitrary
// units; all experiments compare areas computed with the same constants.
const (
	geFlipFlop = 5.0 // one state register bit
	geGate     = 1.0 // one 2-input gate
	geBase     = 2.0 // clock/reset overhead of any machine
)

// Synthesis is the outcome of synthesizing one machine.
type Synthesis struct {
	// Encoding names the state encoding used ("binary" unless an
	// encoding exploration picked another; see SynthesizeBest).
	Encoding string
	// StateBits is the number of state register bits.
	StateBits int
	// NextCovers[j] is the minimized cover of next-state bit j over the
	// inputs (outcome bit, then state bits).
	NextCovers [][]bitseq.Cube
	// OutputCover is the minimized cover of the prediction output over
	// the state bits.
	OutputCover []bitseq.Cube
	// Gates is the total 2-input gate count of all covers.
	Gates int
	// Area is the estimated area in gate equivalents.
	Area float64
}

// Synthesize builds the gate-level model of the machine under the
// baseline binary state encoding. SynthesizeBest additionally explores
// alternative encodings.
func Synthesize(m *fsm.Machine) (*Synthesis, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.NumStates()
	if n == 1 {
		// Constant predictor: no state register, no logic.
		return &Synthesis{Encoding: "constant", StateBits: 0, Area: geBase}, nil
	}
	return SynthesizeWith(m, BinaryEncoding(n))
}

// countCover estimates the 2-input gate cost of a sum-of-products cover:
// an L-literal product term needs L-1 AND gates; a T-term function needs
// T-1 OR gates; complemented literals share one inverter per input
// actually used in complemented form.
func countCover(cover []bitseq.Cube) int {
	g := 0
	var invMask uint32
	for _, c := range cover {
		if l := c.Literals(); l > 1 {
			g += l - 1
		}
		invMask |= c.Care &^ c.Value
	}
	if len(cover) > 1 {
		g += len(cover) - 1
	}
	g += bits.OnesCount32(invMask)
	return g
}

// EstimateArea synthesizes the machine and returns its area in gate
// equivalents.
func EstimateArea(m *fsm.Machine) (float64, error) {
	s, err := Synthesize(m)
	if err != nil {
		return 0, err
	}
	return s.Area, nil
}

// Generate renders the machine as a synthesizable VHDL entity in the
// classic two-process style (synchronous state register plus combinational
// next-state logic), the form consumed by the Synopsys flow in the paper.
func Generate(m *fsm.Machine) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	name := sanitizeIdent(m.Name)
	if name == "" {
		name = "predictor"
	}
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }

	w("-- Automatically generated FSM predictor (%d states).\n", m.NumStates())
	w("library IEEE;\nuse IEEE.std_logic_1164.all;\n\n")
	w("entity %s is\n", name)
	w("  port (\n")
	w("    clk        : in  std_logic;\n")
	w("    reset      : in  std_logic;\n")
	w("    outcome    : in  std_logic;\n")
	w("    prediction : out std_logic\n")
	w("  );\nend %s;\n\n", name)
	w("architecture behavioral of %s is\n", name)
	w("  type state_type is (")
	for s := 0; s < m.NumStates(); s++ {
		if s > 0 {
			w(", ")
		}
		w("s%d", s)
	}
	w(");\n")
	w("  signal state, next_state : state_type;\nbegin\n\n")

	w("  sync_proc : process (clk, reset)\n  begin\n")
	w("    if reset = '1' then\n      state <= s%d;\n", m.Start)
	w("    elsif rising_edge(clk) then\n      state <= next_state;\n    end if;\n")
	w("  end process sync_proc;\n\n")

	w("  next_state_proc : process (state, outcome)\n  begin\n")
	w("    case state is\n")
	for s, row := range m.Next {
		w("      when s%d =>\n", s)
		if row[0] == row[1] {
			w("        next_state <= s%d;\n", row[0])
			continue
		}
		w("        if outcome = '1' then\n          next_state <= s%d;\n", row[1])
		w("        else\n          next_state <= s%d;\n        end if;\n", row[0])
	}
	w("    end case;\n  end process next_state_proc;\n\n")

	var ones []string
	for s, out := range m.Output {
		if out {
			ones = append(ones, fmt.Sprintf("state = s%d", s))
		}
	}
	switch {
	case len(ones) == 0:
		w("  prediction <= '0';\n")
	case len(ones) == m.NumStates():
		w("  prediction <= '1';\n")
	default:
		w("  prediction <= '1' when %s else '0';\n", strings.Join(ones, " or "))
	}
	w("\nend behavioral;\n")
	return sb.String(), nil
}

// sanitizeIdent turns an arbitrary name into a valid VHDL identifier.
func sanitizeIdent(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
			sb.WriteByte(c)
		case c >= '0' && c <= '9', c == '_':
			if sb.Len() == 0 {
				sb.WriteByte('p') // identifiers cannot start with digits
			}
			sb.WriteByte(c)
		}
	}
	return strings.Trim(sb.String(), "_")
}
