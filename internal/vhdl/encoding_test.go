package vhdl

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
)

func TestBinaryAndGrayEncodings(t *testing.T) {
	b := BinaryEncoding(5)
	if b.Bits != 3 || len(b.Code) != 5 || b.Code[4] != 4 {
		t.Errorf("binary encoding = %+v", b)
	}
	if err := b.Validate(5); err != nil {
		t.Error(err)
	}
	g := GrayEncoding(8)
	if err := g.Validate(8); err != nil {
		t.Error(err)
	}
	// Successive Gray codes differ in exactly one bit.
	for i := 1; i < 8; i++ {
		if d := g.Code[i] ^ g.Code[i-1]; d&(d-1) != 0 || d == 0 {
			t.Errorf("gray codes %d,%d differ in more than one bit", i-1, i)
		}
	}
}

func TestOutputEncoding(t *testing.T) {
	m := figure1Machine() // outputs: 0,1,1
	e := OutputEncoding(m)
	if err := e.Validate(3); err != nil {
		t.Fatal(err)
	}
	for s, out := range m.Output {
		if (e.Code[s]&1 == 1) != out {
			t.Errorf("state %d: code %#x bit0 should equal output %v", s, e.Code[s], out)
		}
	}
}

func TestEncodingValidate(t *testing.T) {
	bad := []*Encoding{
		{Name: "short", Code: []uint32{0}, Bits: 1},    // wrong count for 2 states
		{Name: "dup", Code: []uint32{1, 1}, Bits: 1},   // duplicate
		{Name: "wide", Code: []uint32{0, 2}, Bits: 1},  // code exceeds width
		{Name: "zero", Code: []uint32{0, 1}, Bits: 0},  // bad width
		{Name: "huge", Code: []uint32{0, 1}, Bits: 21}, // bad width
	}
	for _, e := range bad {
		if err := e.Validate(2); err == nil {
			t.Errorf("%s: expected validation error", e.Name)
		}
	}
}

// TestEncodingsAreFunctionallyEquivalent replays every encoding's covers
// and checks they implement the same machine.
func TestEncodingsAreFunctionallyEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		m := randomPipelineMachine(rng, rng.Intn(4)+2)
		if m.NumStates() == 1 {
			continue
		}
		for _, enc := range []*Encoding{
			BinaryEncoding(m.NumStates()),
			GrayEncoding(m.NumStates()),
			OutputEncoding(m),
		} {
			syn, err := SynthesizeWith(m, enc)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, enc.Name, err)
			}
			for st := 0; st < m.NumStates(); st++ {
				for b := 0; b < 2; b++ {
					input := enc.Code[st]<<1 | uint32(b)
					var got uint32
					for j, cover := range syn.NextCovers {
						if bitseq.CoverMatches(cover, input) {
							got |= 1 << uint(j)
						}
					}
					if want := enc.Code[m.Next[st][b]]; got != want {
						t.Fatalf("trial %d %s: state %d on %d: next code %#x, want %#x",
							trial, enc.Name, st, b, got, want)
					}
				}
				if got := bitseq.CoverMatches(syn.OutputCover, enc.Code[st]); got != m.Output[st] {
					t.Fatalf("trial %d %s: state %d output wrong", trial, enc.Name, st)
				}
			}
		}
	}
}

func TestSynthesizeBestNeverWorseThanBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	improved := 0
	for trial := 0; trial < 20; trial++ {
		m := randomPipelineMachine(rng, rng.Intn(5)+2)
		binary, err := Synthesize(m)
		if err != nil {
			t.Fatal(err)
		}
		best, err := SynthesizeBest(m)
		if err != nil {
			t.Fatal(err)
		}
		if best.Area > binary.Area {
			t.Errorf("trial %d: best (%s, %.1f) worse than binary (%.1f)",
				trial, best.Encoding, best.Area, binary.Area)
		}
		if best.Area < binary.Area {
			improved++
		}
	}
	if improved == 0 {
		t.Log("no machine improved over binary encoding in this sample (acceptable)")
	}
}

func TestSynthesizeBestConstant(t *testing.T) {
	m := &fsm.Machine{Output: []bool{true}, Next: [][2]int{{0, 0}}, Start: 0}
	s, err := SynthesizeBest(m)
	if err != nil || s.Encoding != "constant" || s.Area != geBase {
		t.Fatalf("constant synthesis = %+v, err %v", s, err)
	}
}

func TestOutputEncodingRemovesOutputLogic(t *testing.T) {
	// Under output encoding the prediction is register bit 0: the output
	// cover must be the single cube testing that bit.
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 10; trial++ {
		m := randomPipelineMachine(rng, 4)
		if m.NumStates() < 2 {
			continue
		}
		hasOne, hasZero := false, false
		for _, o := range m.Output {
			if o {
				hasOne = true
			} else {
				hasZero = true
			}
		}
		if !hasOne || !hasZero {
			continue
		}
		syn, err := SynthesizeWith(m, OutputEncoding(m))
		if err != nil {
			t.Fatal(err)
		}
		if len(syn.OutputCover) != 1 || syn.OutputCover[0].Literals() != 1 {
			t.Errorf("trial %d: output cover = %v, want a single 1-literal cube",
				trial, syn.OutputCover)
		}
	}
}
