package vhdl

import (
	"strings"
	"testing"

	"fsmpredict/internal/fsm"
)

func TestGenerateTestbench(t *testing.T) {
	m := figure1Machine()
	trace := []bool{true, true, false, false, true}
	tb, err := GenerateTestbench(m, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"entity figure1_tb is",
		"entity work.figure1",
		`OUTCOMES : std_logic_vector(0 to 4) := "11001";`,
		// Expected predictions: start 0 -> predict 0; after 1 -> 1;
		// after 1,1 -> 1; after 1,1,0 -> 1; after 1,1,0,0 -> 0.
		`EXPECTED : std_logic_vector(0 to 4) := "01110";`,
		"assert prediction = EXPECTED(i)",
		"severity failure",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q:\n%s", want, tb)
		}
	}
}

func TestGenerateTestbenchTruncates(t *testing.T) {
	m := figure1Machine()
	trace := make([]bool, 2000)
	tb, err := GenerateTestbench(m, trace, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb, "(0 to 99)") {
		t.Error("trace not truncated to maxVectors")
	}
}

func TestGenerateTestbenchErrors(t *testing.T) {
	if _, err := GenerateTestbench(figure1Machine(), nil, 0); err == nil {
		t.Error("expected error for empty trace")
	}
	if _, err := GenerateTestbench(&fsm.Machine{}, []bool{true}, 0); err == nil {
		t.Error("expected error for invalid machine")
	}
}
