package vhdl

import (
	"fmt"
	"math/bits"

	"fsmpredict/internal/fsm"
	"fsmpredict/internal/logic"
)

// Encoding assigns each state a binary code. The paper notes that
// synthesis "includes finding a good encoding for the states and their
// transitions" (§4.8); this file implements several classic encodings and
// a search that picks whichever synthesizes smallest.
type Encoding struct {
	// Name identifies the strategy ("binary", "gray", "output", ...).
	Name string
	// Code[s] is the register value representing state s. Codes must be
	// unique and fit in Bits.
	Code []uint32
	// Bits is the state register width.
	Bits int
}

// Validate checks the encoding is injective and within width.
func (e *Encoding) Validate(states int) error {
	if len(e.Code) != states {
		return fmt.Errorf("vhdl: encoding has %d codes for %d states", len(e.Code), states)
	}
	if e.Bits < 1 || e.Bits > 20 {
		return fmt.Errorf("vhdl: encoding width %d out of range", e.Bits)
	}
	seen := map[uint32]bool{}
	for s, c := range e.Code {
		if c >= 1<<uint(e.Bits) {
			return fmt.Errorf("vhdl: state %d code %#x exceeds %d bits", s, c, e.Bits)
		}
		if seen[c] {
			return fmt.Errorf("vhdl: duplicate code %#x", c)
		}
		seen[c] = true
	}
	return nil
}

// BinaryEncoding numbers states in order — the baseline Synthesize uses.
func BinaryEncoding(states int) *Encoding {
	e := &Encoding{Name: "binary", Bits: widthFor(states)}
	for s := 0; s < states; s++ {
		e.Code = append(e.Code, uint32(s))
	}
	return e
}

// GrayEncoding numbers states along a Gray code, so states adjacent in
// the numbering differ in one register bit.
func GrayEncoding(states int) *Encoding {
	e := &Encoding{Name: "gray", Bits: widthFor(states)}
	for s := 0; s < states; s++ {
		e.Code = append(e.Code, uint32(s)^uint32(s)>>1)
	}
	return e
}

// OutputEncoding dedicates register bit 0 to the machine's output, so
// the prediction needs no logic at all; remaining bits distinguish
// states within each output class.
func OutputEncoding(m *fsm.Machine) *Encoding {
	n := m.NumStates()
	ones, zeros := 0, 0
	for _, o := range m.Output {
		if o {
			ones++
		} else {
			zeros++
		}
	}
	classBits := widthFor(max(ones, zeros))
	e := &Encoding{Name: "output", Bits: classBits + 1}
	var i1, i0 uint32
	for s := 0; s < n; s++ {
		if m.Output[s] {
			e.Code = append(e.Code, i1<<1|1)
			i1++
		} else {
			e.Code = append(e.Code, i0<<1)
			i0++
		}
	}
	return e
}

func widthFor(states int) int {
	if states <= 1 {
		return 1
	}
	return bits.Len(uint(states - 1))
}

// SynthesizeWith builds the gate-level model under a specific encoding.
func SynthesizeWith(m *fsm.Machine, enc *Encoding) (*Synthesis, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.NumStates()
	if n == 1 {
		return &Synthesis{StateBits: 0, Area: geBase}, nil
	}
	if err := enc.Validate(n); err != nil {
		return nil, err
	}
	stateBits := enc.Bits
	inWidth := stateBits + 1

	s := &Synthesis{StateBits: stateBits, Encoding: enc.Name}

	// Codes not assigned to any state are don't cares everywhere.
	used := map[uint32]int{}
	for st, c := range enc.Code {
		used[c] = st
	}
	var freeCodes []uint32
	for c := uint32(0); c < 1<<uint(stateBits); c++ {
		if _, ok := used[c]; !ok {
			freeCodes = append(freeCodes, c)
		}
	}

	for j := 0; j < stateBits; j++ {
		p := logic.Problem{Width: inWidth}
		for st := 0; st < n; st++ {
			for b := 0; b < 2; b++ {
				next := enc.Code[m.Next[st][b]]
				minterm := enc.Code[st]<<1 | uint32(b)
				if next>>uint(j)&1 == 1 {
					p.On = append(p.On, minterm)
				}
			}
		}
		for _, c := range freeCodes {
			p.DC = append(p.DC, c<<1, c<<1|1)
		}
		cover, err := logic.Minimize(p)
		if err != nil {
			return nil, fmt.Errorf("vhdl: %s encoding, next-state bit %d: %v", enc.Name, j, err)
		}
		s.NextCovers = append(s.NextCovers, cover)
	}

	op := logic.Problem{Width: stateBits}
	for st := 0; st < n; st++ {
		if m.Output[st] {
			op.On = append(op.On, enc.Code[st])
		}
	}
	op.DC = freeCodes
	cover, err := logic.Minimize(op)
	if err != nil {
		return nil, fmt.Errorf("vhdl: %s encoding, output logic: %v", enc.Name, err)
	}
	s.OutputCover = cover

	for _, c := range s.NextCovers {
		s.Gates += countCover(c)
	}
	s.Gates += countCover(s.OutputCover)
	s.Area = geBase + float64(stateBits)*geFlipFlop + float64(s.Gates)*geGate
	return s, nil
}

// SynthesizeBest tries every implemented encoding and returns the
// cheapest synthesis — the encoding-exploration step of a real synthesis
// tool.
func SynthesizeBest(m *fsm.Machine) (*Synthesis, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.NumStates()
	if n == 1 {
		return &Synthesis{StateBits: 0, Area: geBase, Encoding: "constant"}, nil
	}
	encodings := []*Encoding{
		BinaryEncoding(n),
		GrayEncoding(n),
		OutputEncoding(m),
	}
	var best *Synthesis
	for _, enc := range encodings {
		syn, err := SynthesizeWith(m, enc)
		if err != nil {
			return nil, err
		}
		if best == nil || syn.Area < best.Area {
			best = syn
		}
	}
	return best, nil
}
