package vhdl

import (
	"fmt"
	"strings"

	"fsmpredict/internal/fsm"
)

// GenerateTestbench renders a self-checking VHDL testbench for the
// machine: it replays the given outcome trace through the entity produced
// by Generate and asserts, cycle by cycle, that the hardware's prediction
// matches the software model's. This is the hand-off artifact a hardware
// team needs to trust the generated predictor.
//
// The trace is truncated to maxVectors entries (default 512 when 0) to
// keep the file reviewable.
func GenerateTestbench(m *fsm.Machine, trace []bool, maxVectors int) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	if maxVectors <= 0 {
		maxVectors = 512
	}
	if len(trace) > maxVectors {
		trace = trace[:maxVectors]
	}
	if len(trace) == 0 {
		return "", fmt.Errorf("vhdl: testbench needs a non-empty trace")
	}
	name := sanitizeIdent(m.Name)
	if name == "" {
		name = "predictor"
	}

	// Compute the expected prediction BEFORE each outcome is applied,
	// mirroring the predict-then-update protocol.
	expected := make([]bool, len(trace))
	r := m.NewRunner()
	for i, outcome := range trace {
		expected[i] = r.Predict()
		r.Update(outcome)
	}

	bit := func(b bool) byte {
		if b {
			return '1'
		}
		return '0'
	}
	outcomes := make([]byte, len(trace))
	expects := make([]byte, len(trace))
	for i := range trace {
		outcomes[i] = bit(trace[i])
		expects[i] = bit(expected[i])
	}

	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }
	w("-- Self-checking testbench for %s (%d vectors).\n", name, len(trace))
	w("library IEEE;\nuse IEEE.std_logic_1164.all;\n\n")
	w("entity %s_tb is\nend %s_tb;\n\n", name, name)
	w("architecture sim of %s_tb is\n", name)
	w("  signal clk        : std_logic := '0';\n")
	w("  signal reset      : std_logic := '1';\n")
	w("  signal outcome    : std_logic := '0';\n")
	w("  signal prediction : std_logic;\n")
	w("  constant OUTCOMES : std_logic_vector(0 to %d) := \"%s\";\n", len(trace)-1, outcomes)
	w("  constant EXPECTED : std_logic_vector(0 to %d) := \"%s\";\n", len(trace)-1, expects)
	w("begin\n\n")
	w("  dut : entity work.%s\n", name)
	w("    port map (clk => clk, reset => reset, outcome => outcome, prediction => prediction);\n\n")
	w("  clk <= not clk after 5 ns;\n\n")
	w("  stimulus : process\n  begin\n")
	w("    wait until rising_edge(clk);\n")
	w("    reset <= '0';\n")
	w("    for i in OUTCOMES'range loop\n")
	w("      assert prediction = EXPECTED(i)\n")
	w("        report \"prediction mismatch at vector \" & integer'image(i)\n")
	w("        severity failure;\n")
	w("      outcome <= OUTCOMES(i);\n")
	w("      wait until rising_edge(clk);\n")
	w("    end loop;\n")
	w("    report \"%s testbench passed: %d vectors\" severity note;\n", name, len(trace))
	w("    wait;\n")
	w("  end process stimulus;\n\nend sim;\n")
	return sb.String(), nil
}
