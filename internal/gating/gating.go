// Package gating implements confidence-directed pipeline gating after
// Manne, Klauser and Grunwald, one of the FSM-predictor applications the
// paper motivates (§2.5): a confidence estimator watches the branch
// predictor, and when confidence in the current prediction is low the
// fetch unit is stalled until the branch resolves, avoiding wrong-path
// fetch energy.
//
// The estimator here is exactly the kind of predictor the design flow
// produces: it observes the branch predictor's correct/incorrect stream
// and predicts whether the NEXT prediction will be correct. Gating
// quality is measured as precision (how many stalls actually avoided a
// misprediction) and recall (how much wrong-path fetch was avoided).
package gating

import (
	"fsmpredict/internal/bpred"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/trace"
)

// Result tallies a gating simulation.
type Result struct {
	// Branches is the number of dynamic branches simulated.
	Branches int
	// Mispredicts counts branch predictor misses (wrong-path fetches
	// without gating).
	Mispredicts int
	// Gated counts low-confidence branches, i.e. fetch stalls.
	Gated int
	// GatedWrong counts gated branches that were indeed mispredicted —
	// stalls that paid for themselves.
	GatedWrong int
}

// Precision is the fraction of stalls that avoided a real misprediction.
// It returns 1 when nothing was gated.
func (r Result) Precision() float64 {
	if r.Gated == 0 {
		return 1
	}
	return float64(r.GatedWrong) / float64(r.Gated)
}

// Recall is the fraction of mispredictions whose wrong-path fetch was
// avoided by gating.
func (r Result) Recall() float64 {
	if r.Mispredicts == 0 {
		return 0
	}
	return float64(r.GatedWrong) / float64(r.Mispredicts)
}

// FalseStallRate is the fraction of all branches stalled unnecessarily
// (the performance cost of gating).
func (r Result) FalseStallRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Gated-r.GatedWrong) / float64(r.Branches)
}

// Simulate drives the branch predictor over the trace with the given
// confidence estimator watching its correctness stream. A branch is
// gated when the estimator is NOT confident. The estimator is updated
// with every branch's correctness, matching the §2.5 hardware.
func Simulate(p bpred.Predictor, est counters.Predictor, events []trace.BranchEvent) Result {
	var r Result
	for _, e := range events {
		r.Branches++
		predicted := p.Predict(e.PC)
		correct := predicted == e.Taken
		confident := est.Predict()
		if !correct {
			r.Mispredicts++
		}
		if !confident {
			r.Gated++
			if !correct {
				r.GatedWrong++
			}
		}
		est.Update(correct)
		p.Update(e.PC, e.Taken)
	}
	return r
}

// CorrectnessModel profiles the branch predictor's correctness stream on
// a training trace into an order-N Markov model — the input the design
// flow needs to build a gating confidence FSM.
func CorrectnessModel(p bpred.Predictor, events []trace.BranchEvent, order int) *markov.Model {
	m := markov.New(order)
	bits := make([]bool, 0, len(events))
	for _, e := range events {
		bits = append(bits, p.Predict(e.PC) == e.Taken)
		p.Update(e.PC, e.Taken)
	}
	m.AddBools(bits)
	return m
}
