package gating

import (
	"testing"

	"fsmpredict/internal/bpred"
	"fsmpredict/internal/core"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/workload"
)

func TestMetrics(t *testing.T) {
	r := Result{Branches: 100, Mispredicts: 20, Gated: 25, GatedWrong: 15}
	if r.Precision() != 0.6 {
		t.Errorf("Precision = %v, want 0.6", r.Precision())
	}
	if r.Recall() != 0.75 {
		t.Errorf("Recall = %v, want 0.75", r.Recall())
	}
	if r.FalseStallRate() != 0.1 {
		t.Errorf("FalseStallRate = %v, want 0.1", r.FalseStallRate())
	}
	empty := Result{}
	if empty.Precision() != 1 || empty.Recall() != 0 || empty.FalseStallRate() != 0 {
		t.Error("empty result metrics wrong")
	}
}

func TestSimulateNeverGate(t *testing.T) {
	prog, _ := workload.ByName("g721")
	events := prog.Generate(workload.Test, 20000)
	r := Simulate(bpred.NewXScale(), counters.Static(true), events)
	if r.Gated != 0 || r.GatedWrong != 0 {
		t.Error("always-confident estimator must never gate")
	}
	if r.Mispredicts == 0 || r.Branches != len(events) {
		t.Errorf("simulation counters wrong: %+v", r)
	}
}

func TestSimulateAlwaysGate(t *testing.T) {
	prog, _ := workload.ByName("g721")
	events := prog.Generate(workload.Test, 20000)
	r := Simulate(bpred.NewXScale(), counters.Static(false), events)
	if r.Gated != r.Branches {
		t.Error("never-confident estimator must gate everything")
	}
	if r.Recall() != 1 {
		t.Errorf("gating everything must catch every misprediction, recall = %v", r.Recall())
	}
}

func TestCorrectnessModelMatchesSimulation(t *testing.T) {
	prog, _ := workload.ByName("gs")
	events := prog.Generate(workload.Train, 30000)
	m := CorrectnessModel(bpred.NewXScale(), events, 4)
	if int(m.Total()) != len(events)-4 {
		t.Errorf("model has %d observations, want %d", m.Total(), len(events)-4)
	}
	// The model's overall correctness rate must equal 1 - baseline miss.
	var correct, total uint64
	for _, h := range m.Histories() {
		c := m.Count(h)
		correct += c.Ones
		total += c.Total()
	}
	res := bpred.Run(bpred.NewXScale(), events)
	modelRate := float64(correct) / float64(total)
	runRate := 1 - res.MissRate()
	if diff := modelRate - runRate; diff > 0.01 || diff < -0.01 {
		t.Errorf("model correctness %v far from measured %v", modelRate, runRate)
	}
}

// TestFSMGatingBeatsCounterGating is the §2.5 story: on a workload whose
// mispredictions cluster behind history patterns, a designed FSM
// estimator catches more wrong-path fetches (higher recall) than a
// resetting counter at a comparable or lower false-stall cost.
func TestFSMGatingBeatsCounterGating(t *testing.T) {
	prog, _ := workload.ByName("ijpeg")
	train := prog.Generate(workload.Train, 80000)
	test := prog.Generate(workload.Test, 80000)

	model := CorrectnessModel(bpred.NewXScale(), train, 8)
	design, err := core.FromModel(model, core.Options{BiasThreshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	fsmRes := Simulate(bpred.NewXScale(), design.Machine.NewRunner(), test)

	// Grunwald-style resetting counter baseline (confident at >= 4).
	ctrRes := Simulate(bpred.NewXScale(), counters.NewResetting(8, 4), test)

	if fsmRes.Recall() <= ctrRes.Recall() && fsmRes.Precision() <= ctrRes.Precision() {
		t.Errorf("FSM gating (recall %.3f, precision %.3f) should beat the counter (recall %.3f, precision %.3f) on at least one axis",
			fsmRes.Recall(), fsmRes.Precision(), ctrRes.Recall(), ctrRes.Precision())
	}
	// A meaningful share of wrong-path fetch must be avoided. (Rare
	// misses of strongly biased branches are fundamentally ungateable,
	// so recall well below 1 is expected.)
	if fsmRes.Recall() < 0.3 {
		t.Errorf("FSM gating recall %.3f too low to be useful", fsmRes.Recall())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	prog, _ := workload.ByName("gsm")
	events := prog.Generate(workload.Test, 20000)
	mk := func() Result {
		return Simulate(bpred.NewXScale(), counters.NewResetting(8, 6), events)
	}
	if mk() != mk() {
		t.Error("simulation not deterministic")
	}
}
