package regex

import "testing"

// FuzzParse checks that the parser never panics and that anything it
// accepts survives a print/re-parse round trip with a stable rendering.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"", "0", "1", ".", "0|1", "(0|1)*", ".*(1.|.1)",
		"{0|1}{1{0|1}|{0|1}1}", "1**", "((((0))))", "0x1x|0xx1x",
		"(", ")", "|", "}{", "0*|*", "\x00", "ε",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := Parse(s)
		if err != nil {
			return
		}
		printed := String(n)
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", s, printed, err)
		}
		if again := String(n2); again != printed {
			t.Fatalf("unstable rendering: %q -> %q", printed, again)
		}
	})
}
