package regex

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/bitseq"
)

func bitsOf(s string) []bool {
	return bitseq.MustFromString(s).Bools()
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		n    Node
		want string
	}{
		{Lit{true}, "1"},
		{Lit{false}, "0"},
		{Any{}, "."},
		{Empty{}, "ε"},
		{Alt{}, "∅"},
		{Concat{Parts: []Node{Lit{true}, Any{}}}, "1."},
		{Alt{Alts: []Node{Lit{false}, Lit{true}}}, "0|1"},
		{Star{Inner: Any{}}, ".*"},
		{Star{Inner: Alt{Alts: []Node{Lit{false}, Lit{true}}}}, "(0|1)*"},
		{Concat{Parts: []Node{
			Star{Inner: Any{}},
			Alt{Alts: []Node{
				Concat{Parts: []Node{Lit{true}, Any{}}},
				Concat{Parts: []Node{Any{}, Lit{true}}},
			}},
		}}, ".*(1.|.1)"},
	}
	for _, c := range cases {
		if got := String(c.n); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	for _, s := range []string{
		"1", "0", ".", "1.", "0|1", "(0|1)*", ".*(1.|.1)",
		"((0|1))*", "{0|1}{1{0|1}|{0|1}1}", "1**", "0x1x|0xx1x",
	} {
		n, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		printed := String(n)
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", printed, err)
		}
		if String(n2) != printed {
			t.Errorf("print not stable: %q -> %q", printed, String(n2))
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"(", "(0|1", "{0|1)", "2", "0)", "a", "|)"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	n, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(Empty); !ok {
		t.Fatalf("Parse(\"\") = %T, want Empty", n)
	}
	if !Matches(n, nil) {
		t.Error("Empty should match the empty string")
	}
	if Matches(n, bitsOf("0")) {
		t.Error("Empty should not match a nonempty string")
	}
}

func TestMatchesBasics(t *testing.T) {
	cases := []struct {
		expr string
		yes  []string
		no   []string
	}{
		{"1", []string{"1"}, []string{"0", "", "11"}},
		{"1.", []string{"10", "11"}, []string{"1", "01", "110"}},
		{"(0|1)*", []string{"", "0", "1", "0101"}, nil},
		{".*11", []string{"11", "011", "10101011"}, []string{"", "1", "10", "110"}},
		{".*(1.|.1)", []string{"10", "01", "11", "0010", "111"}, []string{"", "0", "1", "00", "000"}},
		{"0*1", []string{"1", "01", "0001"}, []string{"", "0", "10", "011"}},
		{"(01)*", []string{"", "01", "0101"}, []string{"0", "10", "011"}},
	}
	for _, c := range cases {
		n := MustParse(c.expr)
		for _, s := range c.yes {
			if !Matches(n, bitsOf(s)) {
				t.Errorf("%q should match %q", c.expr, s)
			}
		}
		for _, s := range c.no {
			if Matches(n, bitsOf(s)) {
				t.Errorf("%q should not match %q", c.expr, s)
			}
		}
	}
}

func TestNullableStarTerminates(t *testing.T) {
	// (ε|0)* and (.*)* must not loop forever.
	for _, s := range []string{"0**", "(0*)*", "(.*)*"} {
		n := MustParse(s)
		if !Matches(n, bitsOf("000")) {
			t.Errorf("%q should match 000", s)
		}
	}
	if Matches(MustParse("(1*)*"), bitsOf("0")) {
		t.Error("(1*)* should not match 0")
	}
}

func TestCubeExpr(t *testing.T) {
	c := bitseq.MustParseCube("1x0")
	if got := String(CubeExpr(c)); got != "1.0" {
		t.Fatalf("CubeExpr = %q, want 1.0", got)
	}
}

func TestFromCoverPaperExample(t *testing.T) {
	cover := []bitseq.Cube{
		bitseq.MustParseCube("x1"),
		bitseq.MustParseCube("1x"),
	}
	n := FromCover(cover)
	if got := String(n); got != ".*(.1|1.)" {
		t.Fatalf("FromCover = %q, want .*(.1|1.)", got)
	}
	// §4.5: language is any string whose last two bits are not 00.
	for s, want := range map[string]bool{
		"":      false,
		"0":     false,
		"1":     false,
		"00":    false,
		"01":    true,
		"10":    true,
		"11":    true,
		"0000":  false,
		"1100":  false,
		"0001":  true,
		"01010": true,
	} {
		if got := Matches(n, bitsOf(s)); got != want {
			t.Errorf("Matches(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestFromCoverEmpty(t *testing.T) {
	n := FromCover(nil)
	for _, s := range []string{"", "0", "1", "0101"} {
		if Matches(n, bitsOf(s)) {
			t.Errorf("empty cover should match nothing, matched %q", s)
		}
	}
}

// TestFromCoverSemanticsQuick checks the central language property: a
// string is in L(FromCover(cover)) iff it is at least Width long and its
// trailing Width bits match some cube.
func TestFromCoverSemanticsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		width := rng.Intn(4) + 1
		var cover []bitseq.Cube
		for i := 0; i < rng.Intn(3)+1; i++ {
			cover = append(cover, bitseq.NewCube(
				rng.Uint32(), rng.Uint32()|1, width))
		}
		n := FromCover(cover)
		for inputLen := 0; inputLen <= width+3; inputLen++ {
			for v := 0; v < 1<<uint(inputLen); v++ {
				input := make([]bool, inputLen)
				for i := range input {
					input[i] = v>>uint(inputLen-1-i)&1 == 1
				}
				want := false
				if inputLen >= width {
					var h uint32
					for _, b := range input[inputLen-width:] {
						h <<= 1
						if b {
							h |= 1
						}
					}
					want = bitseq.CoverMatches(cover, h)
				}
				if got := Matches(n, input); got != want {
					t.Fatalf("trial %d width %d input %v: Matches = %v, want %v (cover %v)",
						trial, width, input, got, want, cover)
				}
			}
		}
	}
}
