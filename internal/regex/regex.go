// Package regex implements regular expressions over the binary alphabet
// {0,1}, the intermediate form of §4.5 of the paper. A minimized cube
// cover is translated into the expression
//
//	(0|1)* ( cube₁ | cube₂ | … | cubeₖ )
//
// where each cube becomes a concatenation of 0, 1 and "." (don't care,
// printed as the paper's {0|1}). The expression denotes the language L of
// all input strings ending in a predict-1 history.
//
// The package also provides a parser for the same notation so expressions
// can be written by hand in tests and tools, and a direct semantic matcher
// used as an oracle against the NFA/DFA pipeline.
package regex

import (
	"fmt"
	"strings"

	"fsmpredict/internal/bitseq"
)

// Node is a regular expression AST node.
type Node interface {
	// writeTo renders the node, parenthesizing according to the parent
	// precedence: 0 = alternation context, 1 = concatenation, 2 = star.
	writeTo(sb *strings.Builder, prec int)
}

// Empty matches the empty string ε.
type Empty struct{}

// Lit matches a single input symbol.
type Lit struct{ Bit bool }

// Any matches either input symbol; it prints as ".".
type Any struct{}

// Concat matches its parts in sequence.
type Concat struct{ Parts []Node }

// Alt matches any one of its alternatives.
type Alt struct{ Alts []Node }

// Star matches zero or more repetitions of its inner expression.
type Star struct{ Inner Node }

func (Empty) writeTo(sb *strings.Builder, prec int) { sb.WriteString("ε") }

func (l Lit) writeTo(sb *strings.Builder, prec int) {
	if l.Bit {
		sb.WriteByte('1')
	} else {
		sb.WriteByte('0')
	}
}

func (Any) writeTo(sb *strings.Builder, prec int) { sb.WriteByte('.') }

func (c Concat) writeTo(sb *strings.Builder, prec int) {
	if len(c.Parts) == 0 {
		Empty{}.writeTo(sb, prec)
		return
	}
	if len(c.Parts) == 1 {
		c.Parts[0].writeTo(sb, prec)
		return
	}
	paren := prec >= 2
	if paren {
		sb.WriteByte('(')
	}
	for _, p := range c.Parts {
		p.writeTo(sb, 1)
	}
	if paren {
		sb.WriteByte(')')
	}
}

func (a Alt) writeTo(sb *strings.Builder, prec int) {
	if len(a.Alts) == 0 {
		sb.WriteString("∅")
		return
	}
	if len(a.Alts) == 1 {
		a.Alts[0].writeTo(sb, prec)
		return
	}
	paren := prec >= 1
	if paren {
		sb.WriteByte('(')
	}
	for i, alt := range a.Alts {
		if i > 0 {
			sb.WriteByte('|')
		}
		alt.writeTo(sb, 0)
	}
	if paren {
		sb.WriteByte(')')
	}
}

func (s Star) writeTo(sb *strings.Builder, prec int) {
	s.Inner.writeTo(sb, 2)
	sb.WriteByte('*')
}

// String renders any node in the package's canonical notation.
func String(n Node) string {
	var sb strings.Builder
	n.writeTo(&sb, 0)
	return sb.String()
}

// CubeExpr translates one cube into the concatenation of its positions,
// oldest first, with don't cares as Any.
func CubeExpr(c bitseq.Cube) Node {
	parts := make([]Node, 0, c.Width)
	for i := c.Width - 1; i >= 0; i-- {
		switch {
		case c.Care>>uint(i)&1 == 0:
			parts = append(parts, Any{})
		case c.Value>>uint(i)&1 == 1:
			parts = append(parts, Lit{Bit: true})
		default:
			parts = append(parts, Lit{Bit: false})
		}
	}
	return Concat{Parts: parts}
}

// FromCover builds the predictor language of §4.5 from a minimized cover:
// (0|1)* followed by the alternation of the cube patterns. An empty cover
// yields the empty language (Alt with no alternatives).
func FromCover(cover []bitseq.Cube) Node {
	if len(cover) == 0 {
		return Alt{}
	}
	alts := make([]Node, len(cover))
	for i, c := range cover {
		alts[i] = CubeExpr(c)
	}
	return Concat{Parts: []Node{
		Star{Inner: Any{}},
		Alt{Alts: alts},
	}}
}

// Parse reads an expression in the package notation. Accepted tokens:
// '0', '1', '.', 'x'/'X' (synonyms for '.'), '|', '*', both '()' and the
// paper's '{}' for grouping, plus the printer's "ε" (empty string) and
// "∅" (empty language). Whitespace is ignored. An empty input parses as
// Empty.
func Parse(s string) (Node, error) {
	p := &parser{src: s}
	n := p.alt()
	p.skipSpace()
	if p.err != nil {
		return nil, p.err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return n, nil
}

// MustParse is Parse but panics on error; intended for tests and literals.
func MustParse(s string) Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src string
	pos int
	err error
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() (byte, bool) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) alt() Node {
	parts := []Node{p.concat()}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			break
		}
		p.pos++
		parts = append(parts, p.concat())
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return Alt{Alts: parts}
}

func (p *parser) concat() Node {
	var parts []Node
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' || c == '}' {
			break
		}
		parts = append(parts, p.rep())
		if p.err != nil {
			return Empty{}
		}
	}
	switch len(parts) {
	case 0:
		return Empty{}
	case 1:
		return parts[0]
	}
	return Concat{Parts: parts}
}

func (p *parser) rep() Node {
	n := p.atom()
	for {
		c, ok := p.peek()
		if !ok || c != '*' {
			return n
		}
		p.pos++
		n = Star{Inner: n}
	}
}

func (p *parser) atom() Node {
	c, ok := p.peek()
	if !ok {
		p.fail("unexpected end of expression")
		return Empty{}
	}
	if strings.HasPrefix(p.src[p.pos:], "ε") {
		p.pos += len("ε")
		return Empty{}
	}
	if strings.HasPrefix(p.src[p.pos:], "∅") {
		p.pos += len("∅")
		return Alt{}
	}
	switch c {
	case '0':
		p.pos++
		return Lit{Bit: false}
	case '1':
		p.pos++
		return Lit{Bit: true}
	case '.', 'x', 'X':
		p.pos++
		return Any{}
	case '(', '{':
		open := c
		p.pos++
		n := p.alt()
		cl, ok := p.peek()
		want := byte(')')
		if open == '{' {
			want = '}'
		}
		if !ok || cl != want {
			p.fail(fmt.Sprintf("missing %q", want))
			return Empty{}
		}
		p.pos++
		return n
	default:
		p.fail(fmt.Sprintf("unexpected %q", c))
		return Empty{}
	}
}

func (p *parser) fail(msg string) {
	if p.err == nil {
		p.err = fmt.Errorf("regex: %s at offset %d", msg, p.pos)
	}
}

// Matches evaluates the expression against an input string by recursive
// descent over suffix positions. It is exponential in the worst case and
// exists as a small, obviously-correct oracle for testing the NFA and DFA
// construction; production matching goes through the compiled machines.
func Matches(n Node, input []bool) bool {
	return matchAt(n, input, 0, func(end int) bool { return end == len(input) })
}

// matchAt tries to match n starting at position i, invoking k on every
// possible end position until k returns true.
func matchAt(n Node, input []bool, i int, k func(int) bool) bool {
	switch t := n.(type) {
	case Empty:
		return k(i)
	case Lit:
		return i < len(input) && input[i] == t.Bit && k(i+1)
	case Any:
		return i < len(input) && k(i+1)
	case Concat:
		return matchSeq(t.Parts, input, i, k)
	case Alt:
		for _, alt := range t.Alts {
			if matchAt(alt, input, i, k) {
				return true
			}
		}
		return false
	case Star:
		// Match zero or more; bound depth by remaining input to avoid
		// infinite recursion on nullable inner expressions.
		if k(i) {
			return true
		}
		return matchAt(t.Inner, input, i, func(j int) bool {
			if j <= i {
				return false // no progress; stop
			}
			return matchAt(Star{Inner: t.Inner}, input, j, k)
		})
	default:
		panic(fmt.Sprintf("regex: unknown node type %T", n))
	}
}

func matchSeq(parts []Node, input []bool, i int, k func(int) bool) bool {
	if len(parts) == 0 {
		return k(i)
	}
	return matchAt(parts[0], input, i, func(j int) bool {
		return matchSeq(parts[1:], input, j, k)
	})
}
