package nfa

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/regex"
)

func bitsOf(s string) []bool {
	return bitseq.MustFromString(s).Bools()
}

func TestAcceptsBasics(t *testing.T) {
	cases := []struct {
		expr string
		yes  []string
		no   []string
	}{
		{"1", []string{"1"}, []string{"", "0", "11"}},
		{"0|1", []string{"0", "1"}, []string{"", "01"}},
		{"1.", []string{"10", "11"}, []string{"1", "01"}},
		{"(01)*", []string{"", "01", "0101"}, []string{"0", "10"}},
		{".*(1.|.1)", []string{"01", "10", "11", "001"}, []string{"", "0", "00", "100"}},
		{"", []string{""}, []string{"0"}},
	}
	for _, c := range cases {
		m := Compile(regex.MustParse(c.expr))
		for _, s := range c.yes {
			if !m.Accepts(bitsOf(s)) {
				t.Errorf("NFA(%q) should accept %q", c.expr, s)
			}
		}
		for _, s := range c.no {
			if m.Accepts(bitsOf(s)) {
				t.Errorf("NFA(%q) should reject %q", c.expr, s)
			}
		}
	}
}

func TestEmptyLanguage(t *testing.T) {
	m := Compile(regex.Alt{})
	for _, s := range []string{"", "0", "1", "01"} {
		if m.Accepts(bitsOf(s)) {
			t.Errorf("empty language accepted %q", s)
		}
	}
}

func TestEpsilonClosure(t *testing.T) {
	// a --ε--> b --ε--> c, a --0--> d
	b := &builder{}
	a := b.newState()
	s2 := b.newState()
	c := b.newState()
	d := b.newState()
	b.edge(a, s2, eps)
	b.edge(s2, c, eps)
	b.edge(a, d, 0)
	m := &b.nfa
	got := m.EpsilonClosure([]int{a})
	if len(got) != 3 || got[0] != a || got[1] != s2 || got[2] != c {
		t.Fatalf("EpsilonClosure = %v, want [%d %d %d]", got, a, s2, c)
	}
	if mv := m.Move([]int{a}, false); len(mv) != 1 || mv[0] != d {
		t.Fatalf("Move = %v, want [%d]", mv, d)
	}
	if mv := m.Move([]int{a}, true); len(mv) != 0 {
		t.Fatalf("Move on 1 = %v, want empty", mv)
	}
}

// randomExpr builds a random small regex for the agreement test.
func randomExpr(rng *rand.Rand, depth int) regex.Node {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return regex.Lit{Bit: rng.Intn(2) == 1}
		case 1:
			return regex.Any{}
		default:
			return regex.Empty{}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return regex.Concat{Parts: []regex.Node{
			randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	case 1:
		return regex.Alt{Alts: []regex.Node{
			randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	case 2:
		return regex.Star{Inner: randomExpr(rng, depth-1)}
	default:
		return randomExpr(rng, 0)
	}
}

// TestAgreesWithRegexOracle exhaustively compares the NFA against the
// recursive regex matcher on all inputs up to length 7.
func TestAgreesWithRegexOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		expr := randomExpr(rng, 3)
		m := Compile(expr)
		for n := 0; n <= 7; n++ {
			for v := 0; v < 1<<uint(n); v++ {
				input := make([]bool, n)
				for i := range input {
					input[i] = v>>uint(i)&1 == 1
				}
				want := regex.Matches(expr, input)
				if got := m.Accepts(input); got != want {
					t.Fatalf("trial %d expr %q input %v: NFA = %v, oracle = %v",
						trial, regex.String(expr), input, got, want)
				}
			}
		}
	}
}

func TestCompileStateCountLinear(t *testing.T) {
	// Thompson construction produces at most 2 states per AST node; check
	// the paper-scale expression stays small.
	cover := []bitseq.Cube{
		bitseq.MustParseCube("0x1x"),
		bitseq.MustParseCube("0xx1x"),
	}
	m := Compile(regex.FromCover(cover))
	if m.NumStates() > 60 {
		t.Fatalf("NFA has %d states; Thompson construction should be linear", m.NumStates())
	}
}
