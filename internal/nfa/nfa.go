// Package nfa builds non-deterministic finite automata from binary regular
// expressions using Thompson's construction — the first half of the FSM
// creation step (§4.6 of the paper). The automaton has a single start and
// a single accept state; transitions are labelled 0, 1, or ε.
package nfa

import (
	"fmt"
	"sort"

	"fsmpredict/internal/regex"
)

// NFA is a non-deterministic automaton over {0,1} with ε-transitions.
type NFA struct {
	// On0, On1 and Eps hold, per state, the target states reached on input
	// 0, input 1, and without consuming input.
	On0, On1, Eps [][]int
	Start         int
	Accept        int
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.Eps) }

type builder struct {
	nfa NFA
}

func (b *builder) newState() int {
	b.nfa.On0 = append(b.nfa.On0, nil)
	b.nfa.On1 = append(b.nfa.On1, nil)
	b.nfa.Eps = append(b.nfa.Eps, nil)
	return len(b.nfa.Eps) - 1
}

func (b *builder) edge(from, to int, sym int) {
	switch sym {
	case 0:
		b.nfa.On0[from] = append(b.nfa.On0[from], to)
	case 1:
		b.nfa.On1[from] = append(b.nfa.On1[from], to)
	default:
		b.nfa.Eps[from] = append(b.nfa.Eps[from], to)
	}
}

const eps = -1

// Compile translates a regular expression into an ε-NFA via Thompson's
// construction.
func Compile(n regex.Node) *NFA {
	b := &builder{}
	start, accept := b.compile(n)
	b.nfa.Start, b.nfa.Accept = start, accept
	return &b.nfa
}

// compile returns the (start, accept) fragment for node n.
func (b *builder) compile(n regex.Node) (int, int) {
	switch t := n.(type) {
	case regex.Empty:
		s := b.newState()
		a := b.newState()
		b.edge(s, a, eps)
		return s, a
	case regex.Lit:
		s := b.newState()
		a := b.newState()
		if t.Bit {
			b.edge(s, a, 1)
		} else {
			b.edge(s, a, 0)
		}
		return s, a
	case regex.Any:
		s := b.newState()
		a := b.newState()
		b.edge(s, a, 0)
		b.edge(s, a, 1)
		return s, a
	case regex.Concat:
		if len(t.Parts) == 0 {
			return b.compile(regex.Empty{})
		}
		start, accept := b.compile(t.Parts[0])
		for _, p := range t.Parts[1:] {
			s2, a2 := b.compile(p)
			b.edge(accept, s2, eps)
			accept = a2
		}
		return start, accept
	case regex.Alt:
		s := b.newState()
		a := b.newState()
		// An empty alternation denotes the empty language: accept is
		// unreachable, which subset construction handles naturally.
		for _, alt := range t.Alts {
			s2, a2 := b.compile(alt)
			b.edge(s, s2, eps)
			b.edge(a2, a, eps)
		}
		return s, a
	case regex.Star:
		s := b.newState()
		a := b.newState()
		is, ia := b.compile(t.Inner)
		b.edge(s, is, eps)
		b.edge(s, a, eps)
		b.edge(ia, is, eps)
		b.edge(ia, a, eps)
		return s, a
	default:
		panic(fmt.Sprintf("nfa: unknown regex node type %T", n))
	}
}

// EpsilonClosure expands a state set with everything reachable through
// ε-transitions. The input set (a sorted-unique slice) is not modified.
func (n *NFA) EpsilonClosure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for _, s := range states {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.Eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortInts(out)
	return out
}

// Move returns the states reachable from the set on the given input bit
// (before ε-closure).
func (n *NFA) Move(states []int, bit bool) []int {
	seen := map[int]bool{}
	table := n.On0
	if bit {
		table = n.On1
	}
	for _, s := range states {
		for _, t := range table[s] {
			seen[t] = true
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortInts(out)
	return out
}

// Accepts simulates the NFA on the input and reports acceptance. Used as
// a mid-pipeline oracle in tests.
func (n *NFA) Accepts(input []bool) bool {
	cur := n.EpsilonClosure([]int{n.Start})
	for _, b := range input {
		cur = n.EpsilonClosure(n.Move(cur, b))
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if s == n.Accept {
			return true
		}
	}
	return false
}

func sortInts(xs []int) { sort.Ints(xs) }
