package bpred

import (
	"fmt"
	"testing"

	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// benchEvents generates a deterministic benchmark trace for the
// differential tests.
func benchEvents(t testing.TB, program string, v workload.Variant, n int) []trace.BranchEvent {
	t.Helper()
	p, err := workload.ByName(program)
	if err != nil {
		t.Fatal(err)
	}
	return p.Generate(v, n)
}

// predictorMatrix returns factories covering every architecture,
// including a trained customized one under both update policies.
func predictorMatrix(t testing.TB, train []trace.BranchEvent) map[string]func() Predictor {
	t.Helper()
	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 4, Order: 5, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no custom entries trained")
	}
	return map[string]func() Predictor{
		"xscale":    func() Predictor { return NewXScale() },
		"gshare-8":  func() Predictor { return NewGshare(8) },
		"gshare-14": func() Predictor { return NewGshare(14) },
		"lgc-10":    func() Predictor { return NewLGC(10) },
		"ppm-6":     func() Predictor { return NewPPM(6) },
		"custom":    func() Predictor { return NewCustom(entries) },
		"custom-matched-only": func() Predictor {
			c := NewCustom(entries)
			c.UpdateMatchedOnly = true
			return c
		},
	}
}

// TestRunAllMatchesRun is the kernel's differential test: one batched
// pass over the packed trace must reproduce Run's per-predictor results
// exactly, for every architecture.
func TestRunAllMatchesRun(t *testing.T) {
	train := benchEvents(t, "gsm", workload.Train, 20_000)
	test := benchEvents(t, "gsm", workload.Test, 20_000)
	packed := tracestore.Pack(test)
	factories := predictorMatrix(t, train)

	var names []string
	var batch []Predictor
	for name, mk := range factories {
		names = append(names, name)
		batch = append(batch, mk())
	}
	got := RunAll(batch, packed)
	for i, name := range names {
		want := Run(factories[name](), test)
		if got[i] != want {
			t.Errorf("%s: RunAll = %+v, Run = %+v", name, got[i], want)
		}
	}
}

// TestRunAllSingletonBatches checks predictors do not interact: a batch
// of size one equals membership in a larger batch.
func TestRunAllSingletonBatches(t *testing.T) {
	test := benchEvents(t, "vortex", workload.Test, 10_000)
	packed := tracestore.Pack(test)
	batch := []Predictor{NewXScale(), NewGshare(10), NewLGC(8)}
	all := RunAll(batch, packed)
	singles := []Predictor{NewXScale(), NewGshare(10), NewLGC(8)}
	for i, p := range singles {
		if r := RunAll([]Predictor{p}, packed); r[0] != all[i] {
			t.Errorf("predictor %d: singleton %+v, batched %+v", i, r[0], all[i])
		}
	}
	if r := RunAll(nil, packed); len(r) != 0 {
		t.Errorf("empty batch returned %d results", len(r))
	}
}

// TestRunAllCustomUnknownBranches runs a Custom whose tags do not all
// occur in the simulated trace (the custom-diff scenario where the test
// input exercises different branches).
func TestRunAllCustomUnknownBranches(t *testing.T) {
	train := benchEvents(t, "ijpeg", workload.Train, 15_000)
	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 3, Order: 5, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Add an entry for a PC that never occurs.
	phantom := &CustomEntry{Tag: 0xdead0000, Machine: entries[0].Machine}
	entries = append(entries, phantom)
	test := benchEvents(t, "ijpeg", workload.Test, 15_000)
	packed := tracestore.Pack(test)
	got := RunAll([]Predictor{NewCustom(entries)}, packed)
	want := Run(NewCustom(entries), test)
	if got[0] != want {
		t.Fatalf("RunAll = %+v, Run = %+v", got[0], want)
	}
}

// TestRankByMissesPackedMatches checks the dense-tally ranking against
// the map-based event-slice implementation.
func TestRankByMissesPackedMatches(t *testing.T) {
	for _, prog := range []string{"compress", "gs", "gsm", "g721", "ijpeg", "vortex"} {
		events := benchEvents(t, prog, workload.Train, 25_000)
		want := RankByMisses(events)
		got := RankByMissesPacked(tracestore.Pack(events))
		if len(got) != len(want) {
			t.Fatalf("%s: %d ranked, want %d", prog, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: rank %d: %+v, want %+v", prog, i, got[i], want[i])
			}
		}
	}
}

// trainCustomOracle replicates the pre-packed TrainCustom pipeline —
// map-based ranking, trace.GlobalMarkov over the full event slice — as
// the differential oracle for the substream-driven path.
func trainCustomOracle(t *testing.T, events []trace.BranchEvent, opt TrainOptions) []*CustomEntry {
	t.Helper()
	ranked := RankByMisses(events)
	targets := map[uint64]bool{}
	var chosen []Ranked
	for _, r := range ranked {
		if len(chosen) >= opt.MaxEntries {
			break
		}
		if r.Execs < opt.MinExecutions {
			continue
		}
		targets[r.PC] = true
		chosen = append(chosen, r)
	}
	models := trace.GlobalMarkov(events, targets, opt.Order)
	out := make([]*CustomEntry, 0, len(chosen))
	for _, r := range chosen {
		design, err := core.FromModel(models[r.PC], core.Options{
			DontCareBudget: opt.DontCareBudget,
			Name:           fmt.Sprintf("branch_%#x", r.PC),
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, &CustomEntry{Tag: r.PC, Machine: design.Machine})
	}
	return out
}

// TestTrainCustomPackedMatchesOracle asserts the packed training path
// produces machine-for-machine identical custom entries.
func TestTrainCustomPackedMatchesOracle(t *testing.T) {
	for _, prog := range []string{"gsm", "vortex", "compress"} {
		events := benchEvents(t, prog, workload.Train, 30_000)
		opt := TrainOptions{MaxEntries: 6, Order: 9, MinExecutions: 64}
		got, err := TrainCustomPacked(tracestore.Pack(events), opt)
		if err != nil {
			t.Fatal(err)
		}
		want := trainCustomOracle(t, events, opt)
		if len(got) != len(want) {
			t.Fatalf("%s: %d entries, want %d", prog, len(got), len(want))
		}
		for i := range want {
			if got[i].Tag != want[i].Tag {
				t.Fatalf("%s entry %d: tag %#x, want %#x", prog, i, got[i].Tag, want[i].Tag)
			}
			if !fsm.Equal(got[i].Machine, want[i].Machine) {
				t.Fatalf("%s entry %d (%#x): machines differ:\n%s\nvs\n%s",
					prog, i, got[i].Tag, got[i].Machine, want[i].Machine)
			}
		}
	}
}

// TestRunAllInnerLoopAllocs guards the kernel's steady state: once the
// steppers are built, a full pass over the trace allocates nothing.
func TestRunAllInnerLoopAllocs(t *testing.T) {
	train := benchEvents(t, "gsm", workload.Train, 8_000)
	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 3, Order: 5, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}
	packed := tracestore.Pack(benchEvents(t, "gsm", workload.Test, 8_000))
	preds := []Predictor{NewXScale(), NewGshare(10), NewLGC(8), NewCustom(entries)}
	steppers := make([]traceStepper, len(preds))
	for j, p := range preds {
		if c, ok := p.(*Custom); ok {
			steppers[j] = newCustomStepper(c, packed)
		} else {
			steppers[j] = genericStepper{p}
		}
	}
	res := make([]Result, len(preds))
	if allocs := testing.AllocsPerRun(3, func() {
		for i := range res {
			res[i] = Result{}
		}
		runAllInto(steppers, packed, res)
	}); allocs != 0 {
		t.Fatalf("inner loop allocates %.1f objects per pass, want 0", allocs)
	}
}

// TestRunCustomPrefixesMatchesRun is the prefix-sweep kernel's
// differential test: one pass must reproduce, for every prefix length,
// the result of running that prefix's Custom instance over the events —
// including duplicate tags, where a longer prefix shadows an earlier
// entry for the same branch.
func TestRunCustomPrefixesMatchesRun(t *testing.T) {
	train := benchEvents(t, "gsm", workload.Train, 20_000)
	test := benchEvents(t, "gsm", workload.Test, 20_000)
	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 5, Order: 5, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatal("need at least two entries")
	}
	// Shadow the first entry's branch with a different machine, and add a
	// tag no branch has.
	entries = append(entries,
		&CustomEntry{Tag: entries[0].Tag, Machine: entries[1].Machine},
		&CustomEntry{Tag: 0xdead0000, Machine: entries[0].Machine},
	)
	packed := tracestore.Pack(test)
	got := RunCustomPrefixes(entries, packed)
	if len(got) != len(entries) {
		t.Fatalf("%d results, want %d", len(got), len(entries))
	}
	for k := 1; k <= len(entries); k++ {
		want := Run(NewCustom(entries[:k]), test)
		if got[k-1] != want {
			t.Errorf("prefix %d: single-pass %+v, per-prefix %+v", k, got[k-1], want)
		}
	}
	if r := RunCustomPrefixes(nil, packed); len(r) != 0 {
		t.Errorf("empty entry set returned %d results", len(r))
	}
}

// TestRunAllMatchesRunKernelOff repeats the RunAll differential with the
// block kernel disabled, covering the scalar stepper fallback.
func TestRunAllMatchesRunKernelOff(t *testing.T) {
	defer fsm.SetBlockKernel(fsm.SetBlockKernel(false))
	train := benchEvents(t, "gsm", workload.Train, 10_000)
	test := benchEvents(t, "gsm", workload.Test, 10_000)
	packed := tracestore.Pack(test)
	for name, mk := range predictorMatrix(t, train) {
		got := RunAll([]Predictor{mk()}, packed)
		want := Run(mk(), test)
		if got[0] != want {
			t.Errorf("%s: RunAll = %+v, Run = %+v", name, got[0], want)
		}
	}
}

// TestRunAllCustomStateful checks the blocked custom path preserves the
// scalar path's cross-call statefulness: a Custom instance keeps its
// runner and base state between RunAll calls, so a second pass over the
// same trace must match the scalar stepper's second pass exactly, under
// both update policies.
func TestRunAllCustomStateful(t *testing.T) {
	train := benchEvents(t, "gsm", workload.Train, 12_000)
	test := benchEvents(t, "gsm", workload.Test, 12_000)
	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 4, Order: 5, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}
	packed := tracestore.Pack(test)
	for _, matchedOnly := range []bool{false, true} {
		blocked, scalar := NewCustom(entries), NewCustom(entries)
		blocked.UpdateMatchedOnly = matchedOnly
		scalar.UpdateMatchedOnly = matchedOnly
		for pass := 0; pass < 3; pass++ {
			got := RunAll([]Predictor{blocked}, packed)
			want := Run(scalar, test)
			if got[0] != want {
				t.Fatalf("matchedOnly=%v pass %d: blocked %+v, scalar %+v",
					matchedOnly, pass, got[0], want)
			}
		}
	}
}

// TestRunCustomPrefixesParallelMatches checks the sharded prefix sweep is
// deterministic and worker-count independent: every worker setting must
// reproduce the scalar single-pass sweep exactly. Running it under
// -race also stress-tests the shared block-table cache, which all
// workers hit concurrently.
func TestRunCustomPrefixesParallelMatches(t *testing.T) {
	train := benchEvents(t, "vortex", workload.Train, 20_000)
	test := benchEvents(t, "vortex", workload.Test, 20_000)
	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 6, Order: 5, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) >= 2 {
		entries = append(entries, &CustomEntry{Tag: entries[0].Tag, Machine: entries[1].Machine})
	}
	packed := tracestore.Pack(test)
	want := runCustomPrefixesScalar(entries, packed)
	for _, workers := range []int{0, 1, 2, 7} {
		got := RunCustomPrefixesParallel(entries, packed, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("workers=%d prefix %d: blocked %+v, scalar %+v", workers, k, got[k], want[k])
			}
		}
	}
}

// benchBatch builds the standard benchmark batch: every table
// architecture plus a trained custom predictor.
func benchBatch(b *testing.B, train []trace.BranchEvent) []Predictor {
	b.Helper()
	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 6, Order: 7, MinExecutions: 64})
	if err != nil {
		b.Fatal(err)
	}
	return []Predictor{
		NewXScale(), NewGshare(8), NewGshare(11), NewGshare(14),
		NewLGC(8), NewLGC(11), NewCustom(entries),
	}
}

// BenchmarkRunAllKernel measures the batched single-pass kernel over a
// packed trace — the hot path of the Figure 4/5 sweeps.
func BenchmarkRunAllKernel(b *testing.B) {
	const n = 100_000
	train := benchEvents(b, "gsm", workload.Train, n)
	packed := tracestore.Pack(benchEvents(b, "gsm", workload.Test, n))
	preds := benchBatch(b, train)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunAll(preds, packed)
	}
}

// BenchmarkRunPerPredictor measures the pre-batching shape: one full
// event-slice pass per predictor, with per-event map dispatch in the
// custom predictor. Kept as the kernel's reference point.
func BenchmarkRunPerPredictor(b *testing.B) {
	const n = 100_000
	train := benchEvents(b, "gsm", workload.Train, n)
	test := benchEvents(b, "gsm", workload.Test, n)
	preds := benchBatch(b, train)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range preds {
			Run(p, test)
		}
	}
}
