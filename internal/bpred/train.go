package bpred

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"fsmpredict/internal/core"
	"fsmpredict/internal/par"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/tracestore"
)

// TrainOptions configures custom-predictor construction (§7.3).
type TrainOptions struct {
	// MaxEntries is the number of custom FSM slots to fill (ranked by
	// baseline mispredictions).
	MaxEntries int
	// Order is the global history length the per-branch Markov models
	// use; the paper uses 9 for all custom branch results.
	Order int
	// DontCareBudget is passed to the design flow (default 1%).
	DontCareBudget float64
	// MinExecutions skips branches executed fewer times in the profile,
	// avoiding machines built from statistically meaningless models.
	MinExecutions int
	// Workers bounds how many per-branch designs run concurrently; each
	// branch's design is independent, so the batch parallelizes freely.
	// 0 means GOMAXPROCS; the result is bit-identical for any value.
	Workers int
}

// DefaultTrainOptions mirror the paper's setup.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{MaxEntries: 16, Order: 9, MinExecutions: 64}
}

// Ranked is one profiled branch with its baseline misprediction count.
type Ranked struct {
	PC     uint64
	Misses int
	Execs  int
}

// rankOrder sorts by misprediction count descending, ties by PC
// ascending — the §7.3 ranking.
func rankOrder(a, b Ranked) int {
	if a.Misses != b.Misses {
		if a.Misses > b.Misses {
			return -1
		}
		return 1
	}
	switch {
	case a.PC < b.PC:
		return -1
	case a.PC > b.PC:
		return 1
	}
	return 0
}

// RankByMisses profiles the trace with the XScale baseline and returns
// branches ordered by how many mispredictions they caused — the first
// step of building the customized architecture (§7.3: "profile the
// application with our baseline predictor").
func RankByMisses(events []trace.BranchEvent) []Ranked {
	base := NewXScale()
	misses := map[uint64]*Ranked{}
	for _, e := range events {
		r := misses[e.PC]
		if r == nil {
			r = &Ranked{PC: e.PC}
			misses[e.PC] = r
		}
		r.Execs++
		if base.Predict(e.PC) != e.Taken {
			r.Misses++
		}
		base.Update(e.PC, e.Taken)
	}
	out := make([]Ranked, 0, len(misses))
	for _, r := range misses {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return rankOrder(out[i], out[j]) < 0 })
	return out
}

// RankByMissesPacked is RankByMisses on a packed trace: the per-branch
// tallies live in dense ID-indexed arrays instead of a map of pointers,
// and the sort runs over values. The output is identical to
// RankByMisses on the materialized events.
func RankByMissesPacked(tr *tracestore.Packed) []Ranked {
	base := NewXScale()
	execs := make([]int32, tr.NumStatics())
	miss := make([]int32, tr.NumStatics())
	n := tr.Len()
	for i := 0; i < n; i++ {
		id := tr.IDAt(i)
		pc := tr.PCOf(id)
		taken := tr.Taken(i)
		execs[id]++
		if base.Predict(pc) != taken {
			miss[id]++
		}
		base.Update(pc, taken)
	}
	out := make([]Ranked, tr.NumStatics())
	for id := range out {
		out[id] = Ranked{PC: tr.PCOf(int32(id)), Misses: int(miss[id]), Execs: int(execs[id])}
	}
	slices.SortFunc(out, rankOrder)
	return out
}

// TrainCustom builds custom FSM entries for the worst-predicted branches
// of the training trace: per-branch Markov models over the global history
// (§7.3) fed through the automated design flow (§4). Entries come back in
// rank order, so evaluating prefixes of the slice reproduces the paper's
// "add one more custom predictor" area sweep.
//
// It packs the events and delegates to TrainCustomPacked; callers that
// already hold a packed trace (the experiments, via tracestore) should
// call that directly and skip the conversion.
func TrainCustom(events []trace.BranchEvent, opt TrainOptions) ([]*CustomEntry, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return TrainCustomPacked(tracestore.Pack(events), opt)
}

func (opt TrainOptions) validate() error {
	if opt.MaxEntries < 1 {
		return fmt.Errorf("bpred: MaxEntries %d must be >= 1", opt.MaxEntries)
	}
	if opt.Order < 1 {
		return fmt.Errorf("bpred: Order %d must be >= 1", opt.Order)
	}
	return nil
}

// TrainCustomPacked is TrainCustom on the packed substrate: ranking runs
// over dense ID tallies, and each chosen branch's global-history Markov
// model is built from its precomputed substream (positions plus two-word
// history windows) instead of a scan of the full trace per model. The
// entries are bit-identical to the event-slice path.
func TrainCustomPacked(tr *tracestore.Packed, opt TrainOptions) ([]*CustomEntry, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ranked := RankByMissesPacked(tr)
	var chosen []Ranked
	var ids []int32
	for _, r := range ranked {
		if len(chosen) >= opt.MaxEntries {
			break
		}
		if r.Execs < opt.MinExecutions {
			continue
		}
		id, ok := tr.IDOf(r.PC)
		if !ok {
			return nil, fmt.Errorf("bpred: ranked PC %#x missing from trace", r.PC)
		}
		ids = append(ids, id)
		chosen = append(chosen, r)
	}
	models := tr.GlobalModels(ids, opt.Order)

	// Each branch's design is an independent run of the §4 pipeline, so
	// the batch fans out across workers; output order follows rank order
	// regardless of scheduling.
	return par.MapSlice(context.Background(), opt.Workers, chosen,
		func(i int, r Ranked) (*CustomEntry, error) {
			design, err := core.FromModel(models[i], core.Options{
				DontCareBudget: opt.DontCareBudget,
				Name:           fmt.Sprintf("branch_%#x", r.PC),
			})
			if err != nil {
				return nil, fmt.Errorf("bpred: designing FSM for %#x: %v", r.PC, err)
			}
			return &CustomEntry{Tag: r.PC, Machine: design.Machine}, nil
		})
}
