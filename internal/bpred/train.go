package bpred

import (
	"context"
	"fmt"
	"sort"

	"fsmpredict/internal/core"
	"fsmpredict/internal/par"
	"fsmpredict/internal/trace"
)

// TrainOptions configures custom-predictor construction (§7.3).
type TrainOptions struct {
	// MaxEntries is the number of custom FSM slots to fill (ranked by
	// baseline mispredictions).
	MaxEntries int
	// Order is the global history length the per-branch Markov models
	// use; the paper uses 9 for all custom branch results.
	Order int
	// DontCareBudget is passed to the design flow (default 1%).
	DontCareBudget float64
	// MinExecutions skips branches executed fewer times in the profile,
	// avoiding machines built from statistically meaningless models.
	MinExecutions int
	// Workers bounds how many per-branch designs run concurrently; each
	// branch's design is independent, so the batch parallelizes freely.
	// 0 means GOMAXPROCS; the result is bit-identical for any value.
	Workers int
}

// DefaultTrainOptions mirror the paper's setup.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{MaxEntries: 16, Order: 9, MinExecutions: 64}
}

// Ranked is one profiled branch with its baseline misprediction count.
type Ranked struct {
	PC     uint64
	Misses int
	Execs  int
}

// RankByMisses profiles the trace with the XScale baseline and returns
// branches ordered by how many mispredictions they caused — the first
// step of building the customized architecture (§7.3: "profile the
// application with our baseline predictor").
func RankByMisses(events []trace.BranchEvent) []Ranked {
	base := NewXScale()
	misses := map[uint64]*Ranked{}
	for _, e := range events {
		r := misses[e.PC]
		if r == nil {
			r = &Ranked{PC: e.PC}
			misses[e.PC] = r
		}
		r.Execs++
		if base.Predict(e.PC) != e.Taken {
			r.Misses++
		}
		base.Update(e.PC, e.Taken)
	}
	out := make([]Ranked, 0, len(misses))
	for _, r := range misses {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Misses != out[j].Misses {
			return out[i].Misses > out[j].Misses
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// TrainCustom builds custom FSM entries for the worst-predicted branches
// of the training trace: per-branch Markov models over the global history
// (§7.3) fed through the automated design flow (§4). Entries come back in
// rank order, so evaluating prefixes of the slice reproduces the paper's
// "add one more custom predictor" area sweep.
func TrainCustom(events []trace.BranchEvent, opt TrainOptions) ([]*CustomEntry, error) {
	if opt.MaxEntries < 1 {
		return nil, fmt.Errorf("bpred: MaxEntries %d must be >= 1", opt.MaxEntries)
	}
	if opt.Order < 1 {
		return nil, fmt.Errorf("bpred: Order %d must be >= 1", opt.Order)
	}
	ranked := RankByMisses(events)
	targets := map[uint64]bool{}
	var chosen []Ranked
	for _, r := range ranked {
		if len(chosen) >= opt.MaxEntries {
			break
		}
		if r.Execs < opt.MinExecutions {
			continue
		}
		targets[r.PC] = true
		chosen = append(chosen, r)
	}
	models := trace.GlobalMarkov(events, targets, opt.Order)

	// Each branch's design is an independent run of the §4 pipeline, so
	// the batch fans out across workers; output order follows rank order
	// regardless of scheduling.
	return par.MapSlice(context.Background(), opt.Workers, chosen,
		func(_ int, r Ranked) (*CustomEntry, error) {
			design, err := core.FromModel(models[r.PC], core.Options{
				DontCareBudget: opt.DontCareBudget,
				Name:           fmt.Sprintf("branch_%#x", r.PC),
			})
			if err != nil {
				return nil, fmt.Errorf("bpred: designing FSM for %#x: %v", r.PC, err)
			}
			return &CustomEntry{Tag: r.PC, Machine: design.Machine}, nil
		})
}
