package bpred

import "fmt"

// PPM implements Prediction by Partial Matching after Chen, Coffey and
// Mudge (§3.2 of the paper): M tables, one per history length 1..M, each
// entry holding frequency counts of the next bit. All tables are probed
// in parallel and the entry with the highest empirical probability makes
// the prediction, preferring longer histories on ties. It is one of the
// automated-predictor baselines the paper positions itself against.
type PPM struct {
	maxOrder int
	ghr      uint32
	tables   [][]ppmEntry // tables[k-1] has 2^k entries
}

type ppmEntry struct {
	n0, n1 uint16
}

func (e *ppmEntry) add(taken bool) {
	if taken {
		e.n1++
	} else {
		e.n0++
	}
	// Periodic halving keeps the counters adaptive and bounded.
	if e.n0+e.n1 >= 1024 {
		e.n0 /= 2
		e.n1 /= 2
	}
}

// NewPPM returns a PPM predictor with history lengths 1..maxOrder.
func NewPPM(maxOrder int) *PPM {
	if maxOrder < 1 || maxOrder > 20 {
		panic(fmt.Sprintf("bpred: ppm order %d out of range [1,20]", maxOrder))
	}
	p := &PPM{maxOrder: maxOrder}
	for k := 1; k <= maxOrder; k++ {
		p.tables = append(p.tables, make([]ppmEntry, 1<<uint(k)))
	}
	return p
}

// Name identifies the configuration.
func (p *PPM) Name() string { return fmt.Sprintf("ppm-%d", p.maxOrder) }

func (p *PPM) index(pc uint64, k int) uint32 {
	mask := uint32(1)<<uint(k) - 1
	return (p.ghr ^ uint32(pc>>2)) & mask
}

// Predict probes every history length and follows the most probable
// entry, preferring longer histories on ties (partial matching).
func (p *PPM) Predict(pc uint64) bool {
	bestProb := -1.0
	taken := false
	for k := p.maxOrder; k >= 1; k-- {
		e := p.tables[k-1][p.index(pc, k)]
		total := e.n0 + e.n1
		if total == 0 {
			continue
		}
		maxN := e.n0
		predict := false
		if e.n1 >= e.n0 {
			maxN = e.n1
			predict = true
		}
		prob := float64(maxN) / float64(total)
		if prob > bestProb {
			bestProb = prob
			taken = predict
		}
	}
	return taken
}

// Update trains every table and shifts the global history.
func (p *PPM) Update(pc uint64, taken bool) {
	for k := 1; k <= p.maxOrder; k++ {
		p.tables[k-1][p.index(pc, k)].add(taken)
	}
	p.ghr <<= 1
	if taken {
		p.ghr |= 1
	}
}

// Area sums the frequency tables (two 10-bit counters per entry) plus
// the shared BTB.
func (p *PPM) Area() float64 {
	var bits float64
	for k := 1; k <= p.maxOrder; k++ {
		bits += float64(uint64(1)<<uint(k)) * 20
	}
	return BTBArea() + bits*SRAMBit
}
