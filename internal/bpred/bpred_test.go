package bpred

import (
	"math/rand"
	"reflect"
	"testing"

	"fsmpredict/internal/fsm"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/workload"
)

func alternating(pc uint64, n int) []trace.BranchEvent {
	events := make([]trace.BranchEvent, n)
	for i := range events {
		events[i] = trace.BranchEvent{PC: pc, Taken: i%2 == 0}
	}
	return events
}

func steady(pc uint64, taken bool, n int) []trace.BranchEvent {
	events := make([]trace.BranchEvent, n)
	for i := range events {
		events[i] = trace.BranchEvent{PC: pc, Taken: taken}
	}
	return events
}

func TestXScaleBiasedBranch(t *testing.T) {
	x := NewXScale()
	res := Run(x, steady(0x100, true, 1000))
	// Misses only during warm-up (miss, allocate, then correct).
	if res.Misses > 2 {
		t.Errorf("always-taken misses = %d, want <= 2", res.Misses)
	}
	// Not-taken branch: BTB never allocates, predicted not-taken, 0 misses.
	x2 := NewXScale()
	res = Run(x2, steady(0x200, false, 1000))
	if res.Misses != 0 {
		t.Errorf("never-taken misses = %d, want 0", res.Misses)
	}
}

func TestXScaleBTBMissPredictsNotTaken(t *testing.T) {
	x := NewXScale()
	if x.Predict(0x1234) {
		t.Error("cold BTB should predict not-taken")
	}
	// Aliasing: two PCs mapping to the same set evict each other.
	a := uint64(0x1000)
	b := a + btbEntries*4
	x.Update(a, true)
	x.Update(b, true) // evicts a
	if x.Predict(a) {
		t.Error("evicted entry should predict not-taken")
	}
}

func TestGshareLearnsGlobalCorrelation(t *testing.T) {
	// Branch B repeats the outcome of branch A (lag 1): gshare with
	// enough history learns it; XScale cannot.
	rng := rand.New(rand.NewSource(5))
	var events []trace.BranchEvent
	for i := 0; i < 20000; i++ {
		a := rng.Intn(2) == 0
		events = append(events, trace.BranchEvent{PC: 0x100, Taken: a})
		events = append(events, trace.BranchEvent{PC: 0x200, Taken: a})
	}
	g := Run(NewGshare(12), events)
	x := Run(NewXScale(), events)
	if g.MissRate() > 0.30 {
		t.Errorf("gshare miss = %v, want < 0.30", g.MissRate())
	}
	if x.MissRate() < 0.45 {
		t.Errorf("xscale miss = %v, expected ~0.5 on random correlation", x.MissRate())
	}
}

func TestLGCLearnsLocalPattern(t *testing.T) {
	// A short repeating local pattern (period 6) that a 2-bit counter
	// cannot track: LGC's local component captures it.
	pattern := []bool{true, true, true, true, false, false}
	var events []trace.BranchEvent
	for i := 0; i < 30000; i++ {
		events = append(events, trace.BranchEvent{PC: 0x300, Taken: pattern[i%len(pattern)]})
	}
	l := Run(NewLGC(10), events)
	x := Run(NewXScale(), events)
	if l.MissRate() > 0.05 {
		t.Errorf("lgc miss = %v, want < 0.05", l.MissRate())
	}
	if x.MissRate() < 0.25 {
		t.Errorf("xscale miss = %v, expected >= 0.25 on period-6 pattern", x.MissRate())
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	prog, _ := workload.ByName("gs")
	events := prog.Generate(workload.Train, 20000)
	for _, mk := range []func() Predictor{
		func() Predictor { return NewXScale() },
		func() Predictor { return NewGshare(10) },
		func() Predictor { return NewLGC(8) },
	} {
		a := Run(mk(), events)
		b := Run(mk(), events)
		if a != b {
			t.Errorf("%s not deterministic: %+v vs %+v", mk().Name(), a, b)
		}
	}
}

func TestAreasOrdered(t *testing.T) {
	if NewGshare(10).Area() <= NewXScale().Area() {
		t.Error("gshare must cost more than the bare BTB")
	}
	if NewGshare(14).Area() <= NewGshare(10).Area() {
		t.Error("bigger gshare must cost more")
	}
	if NewLGC(12).Area() <= NewLGC(8).Area() {
		t.Error("bigger LGC must cost more")
	}
}

func TestGshareValidation(t *testing.T) {
	for _, bits := range []int{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGshare(%d): expected panic", bits)
				}
			}()
			NewGshare(bits)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewLGC(1): expected panic")
			}
		}()
		NewLGC(1)
	}()
}

func TestCustomUsesFSMOnTagMatch(t *testing.T) {
	// Machine that always predicts taken, assigned to branch 0x500.
	m := &fsm.Machine{Output: []bool{true}, Next: [][2]int{{0, 0}}, Start: 0}
	c := NewCustom([]*CustomEntry{{Tag: 0x500, Machine: m}})
	if !c.Predict(0x500) {
		t.Error("tag match should use the FSM")
	}
	if c.Predict(0x504) {
		t.Error("non-matching branch should fall back to cold XScale (not-taken)")
	}
}

func TestCustomUpdateAllPolicy(t *testing.T) {
	// The FSM predicts "repeat the last outcome of ANY branch" (lag-1
	// machine). Under update-all, an outcome on a different PC must move
	// the machine.
	lag1 := &fsm.Machine{
		Output: []bool{false, true},
		Next:   [][2]int{{0, 1}, {0, 1}},
		Start:  0,
	}
	c := NewCustom([]*CustomEntry{{Tag: 0x500, Machine: lag1}})
	c.Update(0x999, true) // different branch; FSM must still advance
	if !c.Predict(0x500) {
		t.Error("update-all policy: FSM should have advanced on foreign branch")
	}
	c.Update(0x777, false)
	if c.Predict(0x500) {
		t.Error("FSM should track the most recent global outcome")
	}
}

func TestCustomArea(t *testing.T) {
	m := &fsm.Machine{Output: []bool{true, false}, Next: [][2]int{{0, 1}, {0, 1}}, Start: 0}
	c := NewCustom([]*CustomEntry{{Tag: 1, Machine: m}, {Tag: 2, Machine: m}})
	base := NewXScale().Area()
	if c.Area() <= base {
		t.Error("custom entries must add area even without an FSM model")
	}
	c.FSMArea = func(states int) float64 { return float64(states) * 100 }
	withModel := c.Area()
	if withModel <= base+2*(btbTagBits*CAMBit+btbTargetBits*SRAMBit) {
		t.Error("FSM area model not applied")
	}
}

func TestRankByMisses(t *testing.T) {
	var events []trace.BranchEvent
	events = append(events, alternating(0xa0, 1000)...)  // ~50% miss
	events = append(events, steady(0xb0, true, 1000)...) // ~0 miss
	ranked := RankByMisses(events)
	if len(ranked) != 2 || ranked[0].PC != 0xa0 {
		t.Fatalf("ranking = %+v, want 0xa0 first", ranked)
	}
	if ranked[0].Misses < 400 {
		t.Errorf("alternating branch misses = %d, want ~500", ranked[0].Misses)
	}
	if ranked[1].Misses > 2 {
		t.Errorf("steady branch misses = %d, want <= 2", ranked[1].Misses)
	}
}

func TestTrainCustomImprovesCorrelatedBenchmark(t *testing.T) {
	prog, _ := workload.ByName("vortex")
	train := prog.Generate(workload.Train, 120000)
	test := prog.Generate(workload.Test, 120000)

	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 6, Order: 9, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no custom entries built")
	}

	base := Run(NewXScale(), test)
	custom := Run(NewCustom(entries), test)
	if custom.MissRate() >= base.MissRate() {
		t.Fatalf("custom (%.3f) should beat xscale (%.3f) on vortex",
			custom.MissRate(), base.MissRate())
	}
	// The paper's vortex result is a dramatic improvement; require at
	// least a 40%% relative reduction here.
	if custom.MissRate() > 0.6*base.MissRate() {
		t.Errorf("custom = %.3f, xscale = %.3f; expected a large reduction",
			custom.MissRate(), base.MissRate())
	}
}

func TestTrainCustomValidation(t *testing.T) {
	if _, err := TrainCustom(nil, TrainOptions{MaxEntries: 0, Order: 9}); err == nil {
		t.Error("expected MaxEntries error")
	}
	if _, err := TrainCustom(nil, TrainOptions{MaxEntries: 1, Order: 0}); err == nil {
		t.Error("expected Order error")
	}
}

func TestTrainCustomRespectsMinExecutions(t *testing.T) {
	var events []trace.BranchEvent
	events = append(events, alternating(0xa0, 10)...) // too rare
	events = append(events, alternating(0xb0, 2000)...)
	entries, err := TrainCustom(events, TrainOptions{MaxEntries: 4, Order: 3, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Tag == 0xa0 {
			t.Error("rare branch should have been skipped")
		}
	}
}

func TestResultMissRate(t *testing.T) {
	if (Result{}).MissRate() != 0 {
		t.Error("empty result should be 0")
	}
	if (Result{Total: 10, Misses: 3}).MissRate() != 0.3 {
		t.Error("miss rate arithmetic wrong")
	}
}

// TestTrainCustomParallelDeterministic pins the fan-out guarantee: the
// designed entry set must be bit-identical for any worker count, since
// per-branch designs are independent and ordered by rank.
func TestTrainCustomParallelDeterministic(t *testing.T) {
	prog, _ := workload.ByName("vortex")
	train := prog.Generate(workload.Train, 80000)

	var covers [][]*CustomEntry
	for _, workers := range []int{1, 4, 0} {
		entries, err := TrainCustom(train, TrainOptions{
			MaxEntries: 6, Order: 9, MinExecutions: 64, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		covers = append(covers, entries)
	}
	want := covers[0]
	for i, got := range covers[1:] {
		if len(got) != len(want) {
			t.Fatalf("run %d: %d entries, want %d", i+1, len(got), len(want))
		}
		for j := range want {
			if got[j].Tag != want[j].Tag {
				t.Fatalf("run %d entry %d: tag %#x, want %#x", i+1, j, got[j].Tag, want[j].Tag)
			}
			if !reflect.DeepEqual(got[j].Machine, want[j].Machine) {
				t.Fatalf("run %d entry %d (%#x): machines differ:\n%v\n%v",
					i+1, j, got[j].Tag, got[j].Machine, want[j].Machine)
			}
		}
	}
}
