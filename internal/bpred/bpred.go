// Package bpred implements the branch prediction architectures compared
// in §7.5 of the paper:
//
//   - XScale: a 128-entry coupled BTB whose entries carry 2-bit
//     saturating counters, predicting not-taken on a BTB miss (§7.2).
//   - gshare: McFarling's global-history predictor over a range of table
//     sizes.
//   - LGC: a local/global chooser in the style of the Alpha 21264 — a
//     two-level local predictor, a global predictor, and a meta chooser.
//   - Custom: the paper's customized architecture (Figure 3) — the
//     XScale baseline extended with a bank of per-branch custom FSM
//     predictors behind a fully associative tag match, all of which are
//     updated on every branch (§7.3).
//
// Every predictor reports its estimated area in gate equivalents so the
// area/miss-rate curves of Figure 5 can be regenerated.
package bpred

import (
	"fmt"

	"fsmpredict/internal/fsm"
	"fsmpredict/internal/trace"
)

// Area cost constants in gate equivalents (GE). SRAM bits are cheap and
// regular; CAM (fully associative tag) bits cost roughly double.
const (
	SRAMBit = 0.6
	CAMBit  = 1.2

	// btbEntries and the per-entry field widths model the XScale branch
	// target buffer (§7.2): tag, target, 2-bit counter.
	btbEntries    = 128
	btbTagBits    = 30
	btbTargetBits = 32
)

// Predictor is a dynamic conditional branch direction predictor.
type Predictor interface {
	// Name identifies the configuration (for reports).
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
	// Area estimates the implementation cost in gate equivalents,
	// including the BTB where the architecture has one.
	Area() float64
}

// Result summarizes running a predictor over a trace.
type Result struct {
	Total  int
	Misses int
}

// MissRate returns the misprediction rate.
func (r Result) MissRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Total)
}

// Run drives the predictor over the event stream, counting mispredictions.
func Run(p Predictor, events []trace.BranchEvent) Result {
	var r Result
	for _, e := range events {
		r.Total++
		if p.Predict(e.PC) != e.Taken {
			r.Misses++
		}
		p.Update(e.PC, e.Taken)
	}
	return r
}

// BTBArea is the gate-equivalent cost of the shared 128-entry BTB.
func BTBArea() float64 {
	return btbEntries * (btbTagBits + btbTargetBits + 2) * SRAMBit
}

// --- XScale ---

type btbEntry struct {
	valid   bool
	tag     uint64
	counter int // 2-bit saturating
}

// XScale is the baseline embedded predictor: BTB-coupled 2-bit counters,
// not-taken on a BTB miss.
type XScale struct {
	entries [btbEntries]btbEntry
}

// NewXScale returns an empty XScale predictor.
func NewXScale() *XScale { return &XScale{} }

// Name identifies the predictor.
func (x *XScale) Name() string { return "xscale" }

func btbIndex(pc uint64) int { return int(pc>>2) % btbEntries }

// Predict returns taken if the BTB hits and the counter is at least 2.
func (x *XScale) Predict(pc uint64) bool {
	e := &x.entries[btbIndex(pc)]
	return e.valid && e.tag == pc && e.counter >= 2
}

// Update trains the matching entry, allocating on a taken branch as
// classic coupled BTBs do.
func (x *XScale) Update(pc uint64, taken bool) {
	e := &x.entries[btbIndex(pc)]
	if e.valid && e.tag == pc {
		if taken {
			if e.counter < 3 {
				e.counter++
			}
		} else if e.counter > 0 {
			e.counter--
		}
		return
	}
	if taken {
		*e = btbEntry{valid: true, tag: pc, counter: 2}
	}
}

// Area reports the BTB cost (counters are part of the BTB entries).
func (x *XScale) Area() float64 { return BTBArea() }

// --- gshare ---

// Gshare is McFarling's global-history predictor: a 2^bits table of
// 2-bit counters indexed by PC XOR the global history register.
type Gshare struct {
	bits  int
	mask  uint32
	ghr   uint32
	table []int8
}

// NewGshare returns a gshare predictor with 2^bits counters and a
// bits-wide global history register.
func NewGshare(bits int) *Gshare {
	if bits < 1 || bits > 24 {
		panic(fmt.Sprintf("bpred: gshare bits %d out of range [1,24]", bits))
	}
	g := &Gshare{bits: bits, mask: uint32(1)<<uint(bits) - 1}
	g.table = make([]int8, 1<<uint(bits))
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

// Name identifies the configuration.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare-%d", g.bits) }

func (g *Gshare) index(pc uint64) uint32 {
	return (uint32(pc>>2) ^ g.ghr) & g.mask
}

// Predict consults the indexed counter.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the counter and shifts the global history.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.ghr = g.ghr << 1 & g.mask
	if taken {
		g.ghr |= 1
	}
}

// Area is the counter table plus the shared BTB.
func (g *Gshare) Area() float64 {
	return BTBArea() + float64(uint64(2)<<uint(g.bits))*SRAMBit
}

// --- LGC (local/global chooser) ---

// LGC is a 21264-style hybrid: a two-level local predictor (per-branch
// history into a pattern table), a global predictor, and a chooser that
// learns which component to trust per global history.
type LGC struct {
	bits      int // log2 size of the global, chooser and local-history tables
	histBits  int // local history length
	ghr       uint32
	mask      uint32
	localHist []uint32
	localPHT  []int8
	globalPHT []int8
	chooser   []int8
}

// NewLGC returns an LGC predictor; bits sizes the tables (2^bits entries
// each) and the local history length is min(bits, 12).
func NewLGC(bits int) *LGC {
	if bits < 2 || bits > 22 {
		panic(fmt.Sprintf("bpred: lgc bits %d out of range [2,22]", bits))
	}
	h := bits
	if h > 12 {
		h = 12
	}
	l := &LGC{
		bits:      bits,
		histBits:  h,
		mask:      uint32(1)<<uint(bits) - 1,
		localHist: make([]uint32, 1<<uint(bits)),
		localPHT:  make([]int8, 1<<uint(h)),
		globalPHT: make([]int8, 1<<uint(bits)),
		chooser:   make([]int8, 1<<uint(bits)),
	}
	for i := range l.localPHT {
		l.localPHT[i] = 1
	}
	for i := range l.globalPHT {
		l.globalPHT[i] = 1
	}
	for i := range l.chooser {
		l.chooser[i] = 2 // weakly prefer global, as the 21264 does
	}
	return l
}

// Name identifies the configuration.
func (l *LGC) Name() string { return fmt.Sprintf("lgc-%d", l.bits) }

func (l *LGC) localIndex(pc uint64) uint32 { return uint32(pc>>2) & l.mask }

func (l *LGC) components(pc uint64) (localTaken, globalTaken, useGlobal bool, li, gi, ci uint32) {
	li = l.localHist[l.localIndex(pc)] & (uint32(1)<<uint(l.histBits) - 1)
	gi = l.ghr & l.mask
	ci = l.ghr & l.mask
	localTaken = l.localPHT[li] >= 2
	globalTaken = l.globalPHT[gi] >= 2
	useGlobal = l.chooser[ci] >= 2
	return
}

// Predict combines the local and global components through the chooser.
func (l *LGC) Predict(pc uint64) bool {
	localTaken, globalTaken, useGlobal, _, _, _ := l.components(pc)
	if useGlobal {
		return globalTaken
	}
	return localTaken
}

// Update trains both components, the chooser (only when they disagree),
// the local history, and the global history register.
func (l *LGC) Update(pc uint64, taken bool) {
	localTaken, globalTaken, _, li, gi, ci := l.components(pc)

	bump := func(t []int8, i uint32, up bool) {
		if up {
			if t[i] < 3 {
				t[i]++
			}
		} else if t[i] > 0 {
			t[i]--
		}
	}
	bump(l.localPHT, li, taken)
	bump(l.globalPHT, gi, taken)
	if localTaken != globalTaken {
		bump(l.chooser, ci, globalTaken == taken)
	}

	lh := &l.localHist[l.localIndex(pc)]
	*lh = *lh << 1 & (uint32(1)<<uint(l.histBits) - 1)
	if taken {
		*lh |= 1
	}
	l.ghr = l.ghr << 1 & l.mask
	if taken {
		l.ghr |= 1
	}
}

// Area sums the local history table, both pattern tables, the chooser and
// the shared BTB.
func (l *LGC) Area() float64 {
	bitsTotal := float64(uint64(1)<<uint(l.bits))*float64(l.histBits) + // local histories
		float64(uint64(2)<<uint(l.histBits)) + // local PHT
		float64(uint64(2)<<uint(l.bits)) + // global PHT
		float64(uint64(2)<<uint(l.bits)) // chooser
	return BTBArea() + bitsTotal*SRAMBit
}

// --- customized architecture ---

// CustomEntry is one hard-wired predictor slot: a branch address tag and
// a custom FSM (Figure 3). Entries carry no mutable simulation state, so
// one trained entry set can back many Custom instances simulating
// concurrently (the Figure 5 area sweep fans out one instance per point).
type CustomEntry struct {
	Tag     uint64
	Machine *fsm.Machine
}

// Custom is the paper's customized branch architecture: the XScale
// baseline plus a fully associative bank of per-branch FSM predictors.
// All custom FSMs advance on every branch outcome (§7.3), relying on the
// machines' synchronization property (§7.6).
type Custom struct {
	base    *XScale
	entries []*CustomEntry
	// runners[i] is this instance's execution state for entries[i].
	runners []*fsm.Runner
	byTag   map[uint64]int // entry tag -> slot index
	// FSMArea estimates a machine's area from its state count; Figure 5
	// uses the linear model fitted in Figure 4. The default charges
	// nothing, so callers supply the fitted model for area studies.
	FSMArea func(states int) float64
	// UpdateMatchedOnly disables the paper's update-all policy (§7.3):
	// each custom FSM then advances only on its own branch's outcomes.
	// This exists as an ablation — it breaks the global-history semantics
	// the machines were designed for and performs measurably worse on
	// globally correlated workloads.
	UpdateMatchedOnly bool
}

// NewCustom assembles the architecture from per-branch machines.
func NewCustom(entries []*CustomEntry) *Custom {
	c := &Custom{
		base:    NewXScale(),
		entries: append([]*CustomEntry(nil), entries...),
		runners: make([]*fsm.Runner, len(entries)),
		byTag:   make(map[uint64]int, len(entries)),
	}
	for i, e := range c.entries {
		c.runners[i] = e.Machine.NewRunner()
		c.byTag[e.Tag] = i
	}
	return c
}

// Name identifies the configuration.
func (c *Custom) Name() string { return fmt.Sprintf("custom-%d", len(c.entries)) }

// Predict uses the custom FSM on a tag match, otherwise the XScale base.
func (c *Custom) Predict(pc uint64) bool {
	if i, ok := c.byTag[pc]; ok {
		return c.runners[i].Predict()
	}
	return c.base.Predict(pc)
}

// Update advances every custom FSM with the outcome (the update-all
// policy) and trains the base predictor.
func (c *Custom) Update(pc uint64, taken bool) {
	if c.UpdateMatchedOnly {
		if i, ok := c.byTag[pc]; ok {
			c.runners[i].Update(taken)
		}
	} else {
		for _, r := range c.runners {
			r.Update(taken)
		}
	}
	c.base.Update(pc, taken)
}

// Area sums the base BTB and, per custom entry, the CAM tag, the target,
// and the FSM's estimated area.
func (c *Custom) Area() float64 {
	a := c.base.Area()
	for _, e := range c.entries {
		a += btbTagBits*CAMBit + btbTargetBits*SRAMBit
		if c.FSMArea != nil {
			a += c.FSMArea(e.Machine.NumStates())
		}
	}
	return a
}

// Entries returns the custom entries in rank order.
func (c *Custom) Entries() []*CustomEntry { return c.entries }
