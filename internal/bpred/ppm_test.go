package bpred

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/trace"
	"fsmpredict/internal/workload"
)

func TestPPMLearnsCorrelation(t *testing.T) {
	// Branch B equals branch A's outcome (global lag 1): PPM's order-1
	// table suffices.
	rng := rand.New(rand.NewSource(3))
	var events []trace.BranchEvent
	for i := 0; i < 20000; i++ {
		a := rng.Intn(2) == 0
		events = append(events, trace.BranchEvent{PC: 0x100, Taken: a})
		events = append(events, trace.BranchEvent{PC: 0x200, Taken: a})
	}
	r := Run(NewPPM(6), events)
	if r.MissRate() > 0.30 {
		t.Errorf("ppm miss = %v, want < 0.30", r.MissRate())
	}
}

func TestPPMPrefersLongerHistoriesWhenNeeded(t *testing.T) {
	// A period-4 pattern needs more than one bit of history.
	pattern := []bool{true, true, false, false}
	var events []trace.BranchEvent
	for i := 0; i < 20000; i++ {
		events = append(events, trace.BranchEvent{PC: 0x80, Taken: pattern[i%4]})
	}
	long := Run(NewPPM(6), events)
	short := Run(NewPPM(1), events)
	if long.MissRate() > 0.10 {
		t.Errorf("ppm-6 miss = %v, want < 0.10 on period-4 pattern", long.MissRate())
	}
	if short.MissRate() < 0.30 {
		t.Errorf("ppm-1 miss = %v, expected to fail on period-4 pattern", short.MissRate())
	}
}

func TestPPMColdPredictsNotTaken(t *testing.T) {
	p := NewPPM(4)
	if p.Predict(0x40) {
		t.Error("cold PPM should default to not-taken")
	}
}

func TestPPMCounterHalving(t *testing.T) {
	var e ppmEntry
	for i := 0; i < 5000; i++ {
		e.add(true)
	}
	if e.n1 >= 1024 {
		t.Errorf("counter not halved: %d", e.n1)
	}
	e.add(false)
	if e.n0 == 0 {
		t.Error("counter lost the new observation")
	}
}

func TestPPMValidationAndArea(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for order 0")
		}
	}()
	if NewPPM(8).Area() <= NewPPM(4).Area() {
		t.Error("bigger PPM must cost more")
	}
	if NewPPM(4).Name() != "ppm-4" {
		t.Error("name wrong")
	}
	NewPPM(0)
}

func TestPPMOnBenchmark(t *testing.T) {
	prog, _ := workload.ByName("gsm")
	events := prog.Generate(workload.Test, 60000)
	ppm := Run(NewPPM(10), events)
	xscale := Run(NewXScale(), events)
	// PPM sees global history, so it must beat the per-branch baseline on
	// the correlation-heavy gsm workload.
	if ppm.MissRate() >= xscale.MissRate() {
		t.Errorf("ppm %.3f should beat xscale %.3f on gsm", ppm.MissRate(), xscale.MissRate())
	}
}

func TestUpdateMatchedOnlyAblation(t *testing.T) {
	// On a globally correlated benchmark, turning off update-all starves
	// the FSMs of the history they were designed around.
	prog, _ := workload.ByName("vortex")
	train := prog.Generate(workload.Train, 80000)
	test := prog.Generate(workload.Test, 80000)
	entries, err := TrainCustom(train, TrainOptions{MaxEntries: 6, Order: 9, MinExecutions: 64})
	if err != nil {
		t.Fatal(err)
	}

	all := NewCustom(entries)
	allRes := Run(all, test)

	matched := NewCustom(entries)
	matched.UpdateMatchedOnly = true
	matchedRes := Run(matched, test)

	if allRes.MissRate() >= matchedRes.MissRate() {
		t.Errorf("update-all (%.3f) should beat matched-only (%.3f)",
			allRes.MissRate(), matchedRes.MissRate())
	}
}
