package bpred

import (
	"context"

	"fsmpredict/internal/fsm"
	"fsmpredict/internal/par"
	"fsmpredict/internal/tracestore"
)

// traceStepper is one predictor bound to a packed trace for the batched
// kernel: step consumes one event (given both the dense branch ID and
// the PC) and reports whether the prediction missed.
type traceStepper interface {
	step(id int32, pc uint64, taken bool) bool
}

// genericStepper drives any Predictor through its public interface.
type genericStepper struct{ p Predictor }

func (s genericStepper) step(_ int32, pc uint64, taken bool) bool {
	miss := s.p.Predict(pc) != taken
	s.p.Update(pc, taken)
	return miss
}

// customStepper is the branch-ID dispatch path for the customized
// architecture: the per-trace slot table replaces the byTag map lookup
// the AoS path performs on every event.
type customStepper struct {
	c *Custom
	// slot maps dense branch ID to the custom entry index, -1 for
	// branches with no custom FSM.
	slot []int32
}

func newCustomStepper(c *Custom, tr *tracestore.Packed) customStepper {
	slot := make([]int32, tr.NumStatics())
	for id := range slot {
		slot[id] = -1
		if i, ok := c.byTag[tr.PCOf(int32(id))]; ok {
			slot[id] = int32(i)
		}
	}
	return customStepper{c: c, slot: slot}
}

func (s customStepper) step(id int32, pc uint64, taken bool) bool {
	c := s.c
	i := s.slot[id]
	var pred bool
	if i >= 0 {
		pred = c.runners[i].Predict()
	} else {
		pred = c.base.Predict(pc)
	}
	if c.UpdateMatchedOnly {
		if i >= 0 {
			c.runners[i].Update(taken)
		}
	} else {
		for _, r := range c.runners {
			r.Update(taken)
		}
	}
	c.base.Update(pc, taken)
	return pred != taken
}

// RunAll drives every predictor over the packed trace in ONE pass,
// equivalent to calling Run(p, tr.Events()) per predictor but reading
// the trace once: per event the kernel loads the dense branch ID, the
// PC and the packed outcome bit, then steps each predictor. Customized
// architectures dispatch on branch IDs through a precomputed slot table
// instead of a per-event map lookup. The inner loop allocates nothing;
// the per-call setup cost is one stepper per predictor.
func RunAll(preds []Predictor, tr *tracestore.Packed) []Result {
	res := make([]Result, len(preds))
	steppers := make([]traceStepper, 0, len(preds))
	idx := make([]int, 0, len(preds))
	for j, p := range preds {
		if c, ok := p.(*Custom); ok {
			if r, ok := runCustomBlocked(c, tr); ok {
				res[j] = r
				continue
			}
			steppers = append(steppers, newCustomStepper(c, tr))
		} else {
			steppers = append(steppers, genericStepper{p})
		}
		idx = append(idx, j)
	}
	if len(steppers) > 0 {
		tmp := make([]Result, len(steppers))
		runAllInto(steppers, tr, tmp)
		for k, j := range idx {
			res[j] = tmp[k]
		}
	}
	return res
}

// runCustomBlocked simulates one Custom instance over the whole packed
// trace through per-entry block tables instead of stepping runners bit
// by bit: under the update-all policy each entry's runner walks the
// GLOBAL outcome stream 8 events per table lookup, scoring only at its
// own branch's positions (fsm.BlockTable.RunSampled); under the
// matched-only ablation each matched runner walks just its branch's
// substream. The XScale base is a PC-indexed table, not an FSM, so it
// keeps its scalar pass — which also tallies base-predicted events
// (branches with no matching entry). Exit states are written back into
// the runners, so the instance's visible state afterwards is
// bit-identical to the scalar stepper's. Returns ok=false — caller
// falls back to the scalar kernel — when any machine has no block
// table (kernel disabled or over the state bound).
func runCustomBlocked(c *Custom, tr *tracestore.Packed) (Result, bool) {
	tabs := make([]*fsm.BlockTable, len(c.entries))
	for i, e := range c.entries {
		if tabs[i] = fsm.BlockTableFor(e.Machine); tabs[i] == nil {
			return Result{}, false
		}
	}
	// slot[id]: custom entry serving that static branch, -1 for none.
	// winner[i]: the static branch entry i serves in this trace, -1 if
	// its tag never occurs (tags are unique per entry in byTag, so an
	// entry serves at most one branch; on duplicate tags byTag keeps
	// the last entry, exactly like the scalar dispatch).
	slot := make([]int32, tr.NumStatics())
	winner := make([]int32, len(c.entries))
	for i := range winner {
		winner[i] = -1
	}
	for id := range slot {
		slot[id] = -1
		if i, ok := c.byTag[tr.PCOf(int32(id))]; ok {
			slot[id] = int32(i)
			winner[i] = int32(id)
		}
	}

	n := tr.Len()
	words := tr.Outcomes().Words()
	misses := 0
	for i := range c.entries {
		state := c.runners[i].State()
		if c.UpdateMatchedOnly {
			// The runner advances (and predicts) only on its branch's
			// own occurrences.
			if w := winner[i]; w >= 0 {
				sub := tr.SubOf(w)
				r, end := tabs[i].RunFrom(state, sub.Outcomes.Words(), sub.Outcomes.Len(), 0)
				misses += r.Total - r.Correct
				c.runners[i].SetState(end)
			}
			continue
		}
		// Update-all: advance on every global outcome; sample at the
		// served branch's positions (none for shadowed/unmatched
		// entries, which still advance).
		var pos []int32
		if w := winner[i]; w >= 0 {
			pos = tr.SubOf(w).Pos
		}
		m, end := tabs[i].RunSampledSpans(state, words, n, pos, tr.SpanIndex())
		misses += m
		c.runners[i].SetState(end)
	}
	// Scalar base pass: the base trains on every event and predicts
	// the events no custom entry serves.
	for i := 0; i < n; i++ {
		id := tr.IDAt(i)
		pc := tr.PCOf(id)
		taken := tr.Taken(i)
		if slot[id] < 0 && c.base.Predict(pc) != taken {
			misses++
		}
		c.base.Update(pc, taken)
	}
	return Result{Total: n, Misses: misses}, true
}

// runAllInto is the allocation-free inner kernel of RunAll; tests guard
// it with testing.AllocsPerRun.
func runAllInto(steppers []traceStepper, tr *tracestore.Packed, res []Result) {
	n := tr.Len()
	for i := 0; i < n; i++ {
		id := tr.IDAt(i)
		pc := tr.PCOf(id)
		taken := tr.Taken(i)
		for j, s := range steppers {
			res[j].Total++
			if s.step(id, pc, taken) {
				res[j].Misses++
			}
		}
	}
}

// RunCustomPrefixes simulates every prefix of one trained entry set —
// NewCustom(entries[:1]) through NewCustom(entries) — in a single trace
// pass, returning Result[k-1] for prefix length k. It is exact for the
// paper's update-all policy (§7.3), and only that policy: under
// update-all every custom FSM advances on every branch outcome and the
// XScale base trains on every branch, so neither the base state nor any
// runner state depends on which prefix it belongs to. The only
// per-prefix difference is arbitration — an event predicts with entry j
// exactly when j is the last matching entry below the prefix length —
// so one pass can charge each event's base or runner miss to the
// relevant range of prefix lengths through a difference array. This
// replaces the O(len(entries)²) runner-events of simulating each prefix
// separately (the Figure 5 area sweep) with O(len(entries)) per event.
//
// The replay itself runs on the blocked superstep kernel when every
// entry machine has a block table (see RunCustomPrefixesParallel);
// otherwise it falls back to the scalar single-pass sweep, which stays
// as the differential oracle.
func RunCustomPrefixes(entries []*CustomEntry, tr *tracestore.Packed) []Result {
	return RunCustomPrefixesParallel(entries, tr, 1)
}

// RunCustomPrefixesParallel is RunCustomPrefixes with the per-entry
// substream replay sharded across par workers (<= 0 means GOMAXPROCS).
// The arbitration ranges the diff array charges are static per branch
// — slots[id] never changes mid-trace — so each entry's miss total
// over its branch's positions is an independent RunSampled walk of the
// global stream; only the scalar XScale base pass is inherently
// sequential. Results are deterministic and identical for any worker
// count.
func RunCustomPrefixesParallel(entries []*CustomEntry, tr *tracestore.Packed, workers int) []Result {
	n := len(entries)
	res := make([]Result, n)
	if n == 0 {
		return res
	}
	tabs := make([]*fsm.BlockTable, n)
	for i, e := range entries {
		if tabs[i] = fsm.BlockTableFor(e.Machine); tabs[i] == nil {
			return runCustomPrefixesScalar(entries, tr)
		}
	}

	// slots[id] lists, in ascending order, the entry indexes whose tag
	// is that static branch's PC; prefix k predicts with the last index
	// below k.
	byTag := make(map[uint64][]int32, n)
	for i, e := range entries {
		byTag[e.Tag] = append(byTag[e.Tag], int32(i))
	}
	slots := make([][]int32, tr.NumStatics())
	for id := range slots {
		slots[id] = byTag[tr.PCOf(int32(id))]
	}

	// Scalar base pass: the base trains on every event; its misses are
	// tallied per branch so they can be charged to the prefix ranges
	// the base predicts for (aggregating per branch is exact because
	// the charge range depends only on the branch, not the event).
	base := NewXScale()
	baseMiss := make([]int, tr.NumStatics())
	allMisses := 0
	events := tr.Len()
	for i := 0; i < events; i++ {
		id := tr.IDAt(i)
		pc := tr.PCOf(id)
		taken := tr.Taken(i)
		if base.Predict(pc) != taken {
			if len(slots[id]) == 0 {
				allMisses++
			} else {
				baseMiss[id]++
			}
		}
		base.Update(pc, taken)
	}

	// Per-entry replay, the O(entries × events) bulk of the sweep:
	// every runner advances on the whole global stream from its start
	// state and is scored at its tag's positions. Entries whose tag
	// never occurs contribute nothing (and, under update-all, their
	// state is invisible), so they are skipped outright.
	words := tr.Outcomes().Words()
	entryMiss, _ := par.Map(context.Background(), workers, n, func(i int) (int, error) {
		id, ok := tr.IDOf(entries[i].Tag)
		if !ok {
			return 0, nil
		}
		m, _ := tabs[i].RunSampledSpans(tabs[i].StartState(), words, events, tr.SubOf(id).Pos, tr.SpanIndex())
		return m, nil
	})

	// Charge the aggregated misses through the same difference array
	// as the scalar sweep: per branch, the base covers prefixes up to
	// the first matching entry, and entry j covers prefixes from j+1
	// until the next matching entry takes over.
	diff := make([]int64, n+1)
	charge := func(lo, hi int32, miss int) {
		if miss != 0 && lo <= hi {
			diff[lo-1] += int64(miss)
			diff[hi] -= int64(miss)
		}
	}
	for id, list := range slots {
		if len(list) == 0 {
			continue
		}
		if first := list[0]; first > 0 {
			charge(1, first, baseMiss[id])
		}
		for m, j := range list {
			hi := int32(n)
			if m+1 < len(list) {
				hi = list[m+1]
			}
			charge(j+1, hi, entryMiss[j])
		}
	}
	var running int64
	for k := 0; k < n; k++ {
		running += diff[k]
		res[k] = Result{Total: events, Misses: allMisses + int(running)}
	}
	return res
}

// runCustomPrefixesScalar is the bit-at-a-time prefix sweep — the
// differential oracle for the blocked path above.
func runCustomPrefixesScalar(entries []*CustomEntry, tr *tracestore.Packed) []Result {
	n := len(entries)
	res := make([]Result, n)
	if n == 0 {
		return res
	}
	base := NewXScale()
	runners := make([]*fsm.Runner, n)
	for i, e := range entries {
		runners[i] = e.Machine.NewRunner()
	}
	// slots[id] lists, in ascending order, the entry indexes whose tag is
	// that static branch's PC; prefix k matches the last index below k.
	byTag := make(map[uint64][]int32, n)
	for i, e := range entries {
		byTag[e.Tag] = append(byTag[e.Tag], int32(i))
	}
	slots := make([][]int32, tr.NumStatics())
	for id := range slots {
		slots[id] = byTag[tr.PCOf(int32(id))]
	}

	// diff[k-1]..diff[hi-1] bracket miss charges for prefix lengths
	// [lo, hi]; allMisses counts events every prefix misses the same way
	// (no matching entry at any length, so the base predicts for all).
	diff := make([]int64, n+1)
	charge := func(lo, hi int32, miss bool) {
		if miss && lo <= hi {
			diff[lo-1]++
			diff[hi]--
		}
	}
	allMisses := 0
	events := tr.Len()
	for i := 0; i < events; i++ {
		id := tr.IDAt(i)
		pc := tr.PCOf(id)
		taken := tr.Taken(i)
		list := slots[id]
		if len(list) == 0 {
			if base.Predict(pc) != taken {
				allMisses++
			}
		} else {
			if first := list[0]; first > 0 {
				charge(1, first, base.Predict(pc) != taken)
			}
			for m, j := range list {
				hi := int32(n)
				if m+1 < len(list) {
					hi = list[m+1]
				}
				charge(j+1, hi, runners[j].Predict() != taken)
			}
		}
		for _, r := range runners {
			r.Update(taken)
		}
		base.Update(pc, taken)
	}

	var running int64
	for k := 0; k < n; k++ {
		running += diff[k]
		res[k] = Result{Total: events, Misses: allMisses + int(running)}
	}
	return res
}
