package bpred

import (
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/tracestore"
)

// traceStepper is one predictor bound to a packed trace for the batched
// kernel: step consumes one event (given both the dense branch ID and
// the PC) and reports whether the prediction missed.
type traceStepper interface {
	step(id int32, pc uint64, taken bool) bool
}

// genericStepper drives any Predictor through its public interface.
type genericStepper struct{ p Predictor }

func (s genericStepper) step(_ int32, pc uint64, taken bool) bool {
	miss := s.p.Predict(pc) != taken
	s.p.Update(pc, taken)
	return miss
}

// customStepper is the branch-ID dispatch path for the customized
// architecture: the per-trace slot table replaces the byTag map lookup
// the AoS path performs on every event.
type customStepper struct {
	c *Custom
	// slot maps dense branch ID to the custom entry index, -1 for
	// branches with no custom FSM.
	slot []int32
}

func newCustomStepper(c *Custom, tr *tracestore.Packed) customStepper {
	slot := make([]int32, tr.NumStatics())
	for id := range slot {
		slot[id] = -1
		if i, ok := c.byTag[tr.PCOf(int32(id))]; ok {
			slot[id] = int32(i)
		}
	}
	return customStepper{c: c, slot: slot}
}

func (s customStepper) step(id int32, pc uint64, taken bool) bool {
	c := s.c
	i := s.slot[id]
	var pred bool
	if i >= 0 {
		pred = c.runners[i].Predict()
	} else {
		pred = c.base.Predict(pc)
	}
	if c.UpdateMatchedOnly {
		if i >= 0 {
			c.runners[i].Update(taken)
		}
	} else {
		for _, r := range c.runners {
			r.Update(taken)
		}
	}
	c.base.Update(pc, taken)
	return pred != taken
}

// RunAll drives every predictor over the packed trace in ONE pass,
// equivalent to calling Run(p, tr.Events()) per predictor but reading
// the trace once: per event the kernel loads the dense branch ID, the
// PC and the packed outcome bit, then steps each predictor. Customized
// architectures dispatch on branch IDs through a precomputed slot table
// instead of a per-event map lookup. The inner loop allocates nothing;
// the per-call setup cost is one stepper per predictor.
func RunAll(preds []Predictor, tr *tracestore.Packed) []Result {
	res := make([]Result, len(preds))
	steppers := make([]traceStepper, len(preds))
	for j, p := range preds {
		if c, ok := p.(*Custom); ok {
			steppers[j] = newCustomStepper(c, tr)
		} else {
			steppers[j] = genericStepper{p}
		}
	}
	runAllInto(steppers, tr, res)
	return res
}

// runAllInto is the allocation-free inner kernel of RunAll; tests guard
// it with testing.AllocsPerRun.
func runAllInto(steppers []traceStepper, tr *tracestore.Packed, res []Result) {
	n := tr.Len()
	for i := 0; i < n; i++ {
		id := tr.IDAt(i)
		pc := tr.PCOf(id)
		taken := tr.Taken(i)
		for j, s := range steppers {
			res[j].Total++
			if s.step(id, pc, taken) {
				res[j].Misses++
			}
		}
	}
}

// RunCustomPrefixes simulates every prefix of one trained entry set —
// NewCustom(entries[:1]) through NewCustom(entries) — in a single trace
// pass, returning Result[k-1] for prefix length k. It is exact for the
// paper's update-all policy (§7.3), and only that policy: under
// update-all every custom FSM advances on every branch outcome and the
// XScale base trains on every branch, so neither the base state nor any
// runner state depends on which prefix it belongs to. The only
// per-prefix difference is arbitration — an event predicts with entry j
// exactly when j is the last matching entry below the prefix length —
// so one pass can charge each event's base or runner miss to the
// relevant range of prefix lengths through a difference array. This
// replaces the O(len(entries)²) runner-events of simulating each prefix
// separately (the Figure 5 area sweep) with O(len(entries)) per event.
func RunCustomPrefixes(entries []*CustomEntry, tr *tracestore.Packed) []Result {
	n := len(entries)
	res := make([]Result, n)
	if n == 0 {
		return res
	}
	base := NewXScale()
	runners := make([]*fsm.Runner, n)
	for i, e := range entries {
		runners[i] = e.Machine.NewRunner()
	}
	// slots[id] lists, in ascending order, the entry indexes whose tag is
	// that static branch's PC; prefix k matches the last index below k.
	byTag := make(map[uint64][]int32, n)
	for i, e := range entries {
		byTag[e.Tag] = append(byTag[e.Tag], int32(i))
	}
	slots := make([][]int32, tr.NumStatics())
	for id := range slots {
		slots[id] = byTag[tr.PCOf(int32(id))]
	}

	// diff[k-1]..diff[hi-1] bracket miss charges for prefix lengths
	// [lo, hi]; allMisses counts events every prefix misses the same way
	// (no matching entry at any length, so the base predicts for all).
	diff := make([]int64, n+1)
	charge := func(lo, hi int32, miss bool) {
		if miss && lo <= hi {
			diff[lo-1]++
			diff[hi]--
		}
	}
	allMisses := 0
	events := tr.Len()
	for i := 0; i < events; i++ {
		id := tr.IDAt(i)
		pc := tr.PCOf(id)
		taken := tr.Taken(i)
		list := slots[id]
		if len(list) == 0 {
			if base.Predict(pc) != taken {
				allMisses++
			}
		} else {
			if first := list[0]; first > 0 {
				charge(1, first, base.Predict(pc) != taken)
			}
			for m, j := range list {
				hi := int32(n)
				if m+1 < len(list) {
					hi = list[m+1]
				}
				charge(j+1, hi, runners[j].Predict() != taken)
			}
		}
		for _, r := range runners {
			r.Update(taken)
		}
		base.Update(pc, taken)
	}

	var running int64
	for k := 0; k < n; k++ {
		running += diff[k]
		res[k] = Result{Total: events, Misses: allMisses + int(running)}
	}
	return res
}
