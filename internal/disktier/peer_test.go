package disktier

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestManifestListsArtifacts(t *testing.T) {
	s := mustOpen(t, 0)
	s.Put("trace", 1, "aa", testPayload(100))
	s.Put("design", 2, "bb", testPayload(50))
	m := s.Manifest()
	if len(m) != 2 {
		t.Fatalf("manifest has %d entries, want 2", len(m))
	}
	byKind := map[string]ManifestEntry{}
	for _, e := range m {
		byKind[e.Kind] = e
	}
	if e := byKind["trace"]; e.Key != "aa" || e.Version != 1 || e.Size == 0 {
		t.Fatalf("trace entry = %+v", e)
	}
	if e := byKind["design"]; e.Key != "bb" || e.Version != 2 {
		t.Fatalf("design entry = %+v", e)
	}
}

func TestEncodedRoundTripRejectsTampering(t *testing.T) {
	s := mustOpen(t, 0)
	s.Put("trace", 1, "aa", testPayload(100))
	raw, ok := s.ReadEncoded("trace", "aa")
	if !ok {
		t.Fatal("ReadEncoded failed")
	}

	dst := mustOpen(t, 0)
	if !dst.PutEncoded("trace", "aa", raw) {
		t.Fatal("PutEncoded rejected a valid artifact")
	}
	got, ok := get(dst, "trace", 1, "aa")
	if !ok || !bytes.Equal(got, testPayload(100)) {
		t.Fatal("transferred artifact mismatch")
	}

	// Tampered bytes must be rejected before touching disk.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 1
	if dst.PutEncoded("trace", "cc", bad) {
		t.Fatal("PutEncoded accepted a corrupted artifact")
	}
	// Kind spoofing: valid trace bytes offered under another kind.
	if dst.PutEncoded("design", "dd", raw) {
		t.Fatal("PutEncoded accepted a kind-mismatched artifact")
	}
}

func TestPeerWarming(t *testing.T) {
	warm := mustOpen(t, 0)
	warm.Put("trace", 1, "aa", testPayload(300))
	warm.Put("blocktable", 1, "bb", testPayload(200))
	warm.Put("design", 1, "cc", testPayload(100))

	srv := httptest.NewServer(http.StripPrefix("/v1/cache", warm.Handler()))
	defer srv.Close()

	cold := mustOpen(t, 0)
	// Pre-seed one artifact: the pull must skip it.
	cold.Put("design", 1, "cc", testPayload(100))

	pulled, err := cold.PullFrom(context.Background(), srv.URL+"/v1/cache", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pulled != 2 {
		t.Fatalf("pulled %d artifacts, want 2", pulled)
	}
	for _, e := range []struct {
		kind, key string
		n         int
	}{{"trace", "aa", 300}, {"blocktable", "bb", 200}, {"design", "cc", 100}} {
		got, ok := get(cold, e.kind, 1, e.key)
		if !ok || !bytes.Equal(got, testPayload(e.n)) {
			t.Fatalf("artifact %s/%s wrong after warming", e.kind, e.key)
		}
	}
	if st := cold.Stats(); st.PeerPulled != 2 {
		t.Fatalf("peer_pulled = %d, want 2", st.PeerPulled)
	}
	// Warming is idempotent.
	pulled, err = cold.PullFrom(context.Background(), srv.URL+"/v1/cache", nil)
	if err != nil || pulled != 0 {
		t.Fatalf("second pull = (%d, %v), want (0, nil)", pulled, err)
	}
}

func TestPullFromUnreachablePeer(t *testing.T) {
	cold := mustOpen(t, 0)
	if _, err := cold.PullFrom(context.Background(), "http://127.0.0.1:1/v1/cache", nil); err == nil {
		t.Fatal("expected an error from an unreachable peer")
	}
}

func TestArtifactEndpointUnknown(t *testing.T) {
	warm := mustOpen(t, 0)
	srv := httptest.NewServer(warm.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/artifact?kind=trace&key=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}
