// Package disktier is the disk tier beneath the in-process caches: a
// content-addressed, versioned, checksummed artifact store that lets a
// fresh process reuse the expensive artifacts an earlier one computed —
// designed predictors, packed traces, block-closure tables, confidence
// bitstreams — instead of re-paying the regex→NFA→DFA/espresso/
// table-build cost on every restart.
//
// The store is deliberately dumb about artifact semantics: callers hand
// it opaque payload bytes under a (kind, key) address, where key is a
// content hash of the artifact's inputs, and read them back. Everything
// the tier itself guarantees is mechanical:
//
//   - Atomic publication. A payload is written to a temporary file in
//     the destination directory, fsynced and renamed into place, so a
//     reader never observes a half-written artifact and concurrent
//     writers of the same key are last-writer-wins with identical
//     content (the key is a content address).
//
//   - Self-describing, corruption-checked encoding. Every file carries a
//     magic, the artifact kind, a caller-supplied format-version byte
//     and a CRC-32C of the payload. A file that fails any check —
//     truncation, bit flips, a stale format version after an upgrade, a
//     foreign kind — is counted, deleted and treated as a miss, so the
//     worst corruption can do is force a clean recompute.
//
//   - Bounded size with LRU eviction. The store tracks total bytes and
//     evicts least-recently-used artifacts past the bound. Access
//     recency survives restarts approximately via file mtimes (touched
//     on every hit).
//
//   - mmap loads for large artifacts. Payloads past a threshold are
//     read through a read-only memory mapping (on platforms that have
//     one), so a 64 KiB block table or a megabyte packed trace is
//     CRC-verified and decoded straight out of the page cache without
//     an intermediate heap copy.
//
// Request-coalescing on miss is deliberately NOT re-implemented here:
// the tier plugs in behind memo.Cache (or the service's inflight map),
// whose singleflight already guarantees one fill per key per process.
package disktier

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// magic marks every artifact file. The trailing byte doubles as the
// on-disk container version: bump it and every older file reads as
// corrupt and is recomputed.
var magic = [4]byte{'F', 'S', 'M', '1'}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// headerLen is the fixed part of the header: magic, format-version
// byte, kind length byte, payload length (u64 LE), payload CRC-32C
// (u32 LE). The kind string sits between the kind-length byte and the
// payload length.
const fixedHeaderLen = 4 + 1 + 1 + 8 + 4

// mmapThreshold is the payload size past which loads go through a
// read-only mapping instead of a heap read. Small artifacts (designed
// machines, short tables) are cheaper to read than to map.
const mmapThreshold = 64 << 10

// DefaultMaxBytes bounds a store whose caller passed no bound.
const DefaultMaxBytes = 512 << 20

// Stats is a point-in-time snapshot of the tier's effectiveness.
type Stats struct {
	// Hits counts loads served from disk (CRC-verified).
	Hits uint64
	// Misses counts loads that found no (usable) artifact.
	Misses uint64
	// Bytes is the total size of all stored artifact files.
	Bytes uint64
	// Entries is the number of stored artifacts.
	Entries uint64
	// Evictions counts artifacts removed by the size bound.
	Evictions uint64
	// Corrupt counts artifacts dropped for failing verification:
	// truncation, checksum mismatch, stale format version, foreign kind.
	Corrupt uint64
	// PeerPulled counts artifacts installed by peer warming.
	PeerPulled uint64
}

type entryKey struct{ kind, key string }

type entryInfo struct {
	ek   entryKey
	size int64
}

// Store is one on-disk artifact tier rooted at a directory. All methods
// are safe for concurrent use; multiple processes may share a directory
// (publication is atomic and every read is verified).
type Store struct {
	dir string
	max int64

	mu      sync.Mutex
	byKey   map[entryKey]*list.Element
	order   *list.List // front = most recently used; values are *entryInfo
	total   int64
	stats   Stats
	touched map[entryKey]time.Time // last Chtimes, to rate-limit touching
}

// Open returns the store rooted at dir (created if absent), holding at
// most maxBytes of artifacts (0 or negative means DefaultMaxBytes).
// Existing artifacts are indexed by file mtime, so recency survives a
// restart approximately.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("disktier: empty directory")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disktier: %v", err)
	}
	s := &Store{
		dir:     dir,
		max:     maxBytes,
		byKey:   make(map[entryKey]*list.Element),
		order:   list.New(),
		touched: make(map[entryKey]time.Time),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan indexes the existing artifact files, oldest first so the LRU
// list ends up most-recent at the front.
func (s *Store) scan() error {
	type found struct {
		ek    entryKey
		size  int64
		mtime time.Time
	}
	var all []found
	kinds, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("disktier: %v", err)
	}
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, kd.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || strings.HasPrefix(f.Name(), tmpPrefix) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			all = append(all, found{
				ek:    entryKey{kind: kd.Name(), key: f.Name()},
				size:  info.Size(),
				mtime: info.ModTime(),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range all {
		s.byKey[f.ek] = s.order.PushFront(&entryInfo{ek: f.ek, size: f.size})
		s.total += f.size
	}
	s.evictLocked(entryKey{})
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the tier's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Bytes = uint64(s.total)
	st.Entries = uint64(s.order.Len())
	return st
}

// Len reports the number of stored artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// tmpPrefix marks in-progress writes; scan and eviction skip them.
const tmpPrefix = ".tmp-"

func (s *Store) path(ek entryKey) string {
	return filepath.Join(s.dir, ek.kind, ek.key)
}

// validAddress rejects kinds and keys that could escape the store's
// directory or collide with temporaries. Keys are expected to be hex
// content hashes; kinds short identifiers.
func validAddress(kind, key string) bool {
	ok := func(s string) bool {
		if s == "" || strings.HasPrefix(s, tmpPrefix) {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.' {
				continue
			}
			return false
		}
		return s != "." && s != ".."
	}
	return ok(kind) && ok(key)
}

// Get loads the artifact at (kind, key), verifying its kind, format
// version and checksum. The returned Blob's Data is valid until Close;
// callers decode and close promptly. A missing or unusable artifact
// returns ok=false — never an error: the tier's contract is that every
// failure degrades to a recompute.
func (s *Store) Get(kind string, version byte, key string) (*Blob, bool) {
	if !validAddress(kind, key) {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	ek := entryKey{kind: kind, key: key}
	f, err := os.Open(s.path(ek))
	if err != nil {
		// Also covers a file deleted between a caller's earlier stat (or
		// manifest read) and now: plain miss.
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	blob, err := readVerified(f, kind, version)
	f.Close()
	if err != nil {
		s.dropCorrupt(ek)
		return nil, false
	}
	s.touch(ek)
	s.count(func(st *Stats) { st.Hits++ })
	return blob, true
}

// Has reports whether an artifact file exists at (kind, key) without
// reading or verifying it — the peer-warming dedup check.
func (s *Store) Has(kind, key string) bool {
	if !validAddress(kind, key) {
		return false
	}
	s.mu.Lock()
	_, ok := s.byKey[entryKey{kind: kind, key: key}]
	s.mu.Unlock()
	if ok {
		return true
	}
	_, err := os.Stat(s.path(entryKey{kind: kind, key: key}))
	return err == nil
}

// readVerified parses and checks an artifact file opened by the caller,
// returning its payload blob (mmap-backed past the threshold).
func readVerified(f *os.File, kind string, version byte) (*Blob, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	fileSize := info.Size()
	hdrLen := int64(fixedHeaderLen + len(kind))
	if fileSize < hdrLen {
		return nil, fmt.Errorf("disktier: truncated header")
	}
	hdr := make([]byte, hdrLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	if [4]byte(hdr[0:4]) != magic {
		return nil, fmt.Errorf("disktier: bad magic")
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("disktier: format version %d, want %d", hdr[4], version)
	}
	if int(hdr[5]) != len(kind) || string(hdr[6:6+len(kind)]) != kind {
		return nil, fmt.Errorf("disktier: artifact kind mismatch")
	}
	rest := hdr[6+len(kind):]
	payloadLen := int64(binary.LittleEndian.Uint64(rest[0:8]))
	wantCRC := binary.LittleEndian.Uint32(rest[8:12])
	if payloadLen < 0 || hdrLen+payloadLen != fileSize {
		return nil, fmt.Errorf("disktier: payload length %d does not match file size %d", payloadLen, fileSize)
	}
	blob, err := loadPayload(f, hdrLen, payloadLen)
	if err != nil {
		return nil, err
	}
	if crc32.Checksum(blob.Data, castagnoli) != wantCRC {
		blob.Close()
		return nil, fmt.Errorf("disktier: checksum mismatch")
	}
	return blob, nil
}

// loadPayload reads or maps the payload region of an artifact file.
func loadPayload(f *os.File, off, n int64) (*Blob, error) {
	if n >= mmapThreshold {
		if b, ok := mapPayload(f, off, n); ok {
			return b, nil
		}
	}
	data := make([]byte, n)
	if _, err := f.ReadAt(data, off); err != nil {
		return nil, err
	}
	return &Blob{Data: data}, nil
}

// Put publishes a payload at (kind, key) atomically: temp file, fsync,
// rename. Failures are silent by design (a full or read-only disk must
// not break the compute path); the caller keeps its in-memory copy
// regardless.
func (s *Store) Put(kind string, version byte, key string, payload []byte) {
	if !validAddress(kind, key) {
		return
	}
	ek := entryKey{kind: kind, key: key}
	raw := make([]byte, 0, fixedHeaderLen+len(kind)+len(payload))
	raw = append(raw, magic[:]...)
	raw = append(raw, version, byte(len(kind)))
	raw = append(raw, kind...)
	raw = binary.LittleEndian.AppendUint64(raw, uint64(len(payload)))
	raw = binary.LittleEndian.AppendUint32(raw, crc32.Checksum(payload, castagnoli))
	raw = append(raw, payload...)
	s.publish(ek, raw)
}

// publish atomically writes a fully encoded artifact file and indexes it.
func (s *Store) publish(ek entryKey, raw []byte) {
	kindDir := filepath.Join(s.dir, ek.kind)
	if err := os.MkdirAll(kindDir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(kindDir, tmpPrefix+"*")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(raw)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil || os.Rename(tmpName, s.path(ek)) != nil {
		os.Remove(tmpName)
		return
	}
	size := int64(len(raw))
	s.mu.Lock()
	if el, ok := s.byKey[ek]; ok {
		e := el.Value.(*entryInfo)
		s.total += size - e.size
		e.size = size
		s.order.MoveToFront(el)
	} else {
		s.byKey[ek] = s.order.PushFront(&entryInfo{ek: ek, size: size})
		s.total += size
	}
	s.evictLocked(ek)
	s.mu.Unlock()
}

// evictLocked removes least-recently-used artifacts until the store is
// within bound, sparing keep (the entry just inserted).
func (s *Store) evictLocked(keep entryKey) {
	for s.total > s.max && s.order.Len() > 0 {
		el := s.order.Back()
		e := el.Value.(*entryInfo)
		if e.ek == keep {
			// The newest entry alone exceeds the bound; keep it anyway
			// (evicting what we just computed would thrash).
			if s.order.Len() == 1 {
				return
			}
			el = el.Prev()
			e = el.Value.(*entryInfo)
		}
		s.order.Remove(el)
		delete(s.byKey, e.ek)
		delete(s.touched, e.ek)
		s.total -= e.size
		s.stats.Evictions++
		os.Remove(s.path(e.ek))
	}
}

// dropCorrupt deletes an unusable artifact and records it.
func (s *Store) dropCorrupt(ek entryKey) {
	s.mu.Lock()
	if el, ok := s.byKey[ek]; ok {
		e := el.Value.(*entryInfo)
		s.order.Remove(el)
		delete(s.byKey, ek)
		delete(s.touched, ek)
		s.total -= e.size
	}
	s.stats.Corrupt++
	s.stats.Misses++
	s.mu.Unlock()
	os.Remove(s.path(ek))
}

// touch refreshes an artifact's recency in memory and (rate-limited) on
// disk, so LRU order approximately survives restarts.
func (s *Store) touch(ek entryKey) {
	now := time.Now()
	s.mu.Lock()
	el, ok := s.byKey[ek]
	if ok {
		s.order.MoveToFront(el)
	} else {
		// The file exists (we just read it) but was published by another
		// process or before this store opened; index it.
		if info, err := os.Stat(s.path(ek)); err == nil {
			s.byKey[ek] = s.order.PushFront(&entryInfo{ek: ek, size: info.Size()})
			s.total += info.Size()
		}
	}
	last := s.touched[ek]
	doTouch := now.Sub(last) > time.Minute
	if doTouch {
		s.touched[ek] = now
	}
	s.mu.Unlock()
	if doTouch {
		os.Chtimes(s.path(ek), now, now)
	}
}

// count applies a mutation to the stats under the lock.
func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Blob is one loaded payload. Data must not be mutated; Close releases
// the backing mapping (a no-op for heap-backed blobs) after which Data
// must not be touched. Close is safe to call more than once.
type Blob struct {
	Data    []byte
	unmap   func()
	mmapped bool
}

// Mmapped reports whether the blob reads straight from a file mapping.
func (b *Blob) Mmapped() bool { return b.mmapped }

// Close releases the mapping behind the blob, if any.
func (b *Blob) Close() {
	if b.unmap != nil {
		b.unmap()
		b.unmap = nil
		b.Data = nil
	}
}
