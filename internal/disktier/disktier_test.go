package disktier

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*131 + i>>8)
	}
	return p
}

func mustOpen(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get is Get plus an immediate copy-and-close, the way every real
// decoder uses blobs.
func get(s *Store, kind string, ver byte, key string) ([]byte, bool) {
	blob, ok := s.Get(kind, ver, key)
	if !ok {
		return nil, false
	}
	defer blob.Close()
	return append([]byte(nil), blob.Data...), true
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, 0)
	for _, n := range []int{0, 1, 7, 4096, mmapThreshold, mmapThreshold + 3, 1 << 20} {
		key := fmt.Sprintf("%016x", n)
		want := testPayload(n)
		s.Put("trace", 3, key, want)
		got, ok := get(s, "trace", 3, key)
		if !ok {
			t.Fatalf("n=%d: artifact missing after Put", n)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: payload mismatch", n)
		}
	}
	st := s.Stats()
	if st.Hits != 7 || st.Misses != 0 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 7 hits", st)
	}
}

func TestLargePayloadUsesMmap(t *testing.T) {
	s := mustOpen(t, 0)
	s.Put("trace", 1, "big", testPayload(mmapThreshold))
	blob, ok := s.Get("trace", 1, "big")
	if !ok {
		t.Fatal("missing")
	}
	defer blob.Close()
	if !blob.Mmapped() {
		t.Skip("platform without mmap support")
	}
	if !bytes.Equal(blob.Data, testPayload(mmapThreshold)) {
		t.Fatal("mmapped payload mismatch")
	}
	blob.Close()
	blob.Close() // double close must be safe
}

func TestMissOnAbsentKey(t *testing.T) {
	s := mustOpen(t, 0)
	if _, ok := get(s, "trace", 1, "absent"); ok {
		t.Fatal("hit on absent key")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testPayload(999)
	s.Put("design", 2, "abc123", want)

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := get(s2, "design", 2, "abc123")
	if !ok || !bytes.Equal(got, want) {
		t.Fatal("artifact did not survive reopen")
	}
	if st := s2.Stats(); st.Entries != 1 || st.Bytes == 0 {
		t.Fatalf("reopened stats = %+v", st)
	}
}

// artifactPath digs out the one artifact file of a single-entry store.
func artifactPath(t *testing.T, s *Store, kind, key string) string {
	t.Helper()
	p := filepath.Join(s.Dir(), kind, key)
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// The corruption-injection suite: every way an artifact can rot on disk
// must degrade to a clean miss (→ recompute), never a panic or wrong
// bytes.

func TestCorruptionTruncated(t *testing.T) {
	for _, keep := range []int{0, 3, fixedHeaderLen + 5, 100} {
		s := mustOpen(t, 0)
		s.Put("trace", 1, "k", testPayload(4096))
		p := artifactPath(t, s, "trace", "k")
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if keep > len(raw) {
			keep = len(raw) - 1
		}
		if err := os.WriteFile(p, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := get(s, "trace", 1, "k"); ok {
			t.Fatalf("keep=%d: truncated artifact served", keep)
		}
		if st := s.Stats(); st.Corrupt != 1 {
			t.Fatalf("keep=%d: corrupt = %d, want 1", keep, st.Corrupt)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("keep=%d: corrupt file not reaped", keep)
		}
	}
}

func TestCorruptionBitFlip(t *testing.T) {
	// Flip one bit at every region: magic, version, kind, length, CRC,
	// payload head, payload tail.
	for _, n := range []int{512, mmapThreshold + 11} { // heap and mmap loads
		s := mustOpen(t, 0)
		s.Put("trace", 1, "k", testPayload(n))
		p := artifactPath(t, s, "trace", "k")
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int{0, 4, 6, 11, 15, 20, len(raw) - 1} {
			bad := append([]byte(nil), raw...)
			bad[off] ^= 0x10
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := get(s, "trace", 1, "k"); ok {
				// A flip in a dead header byte could legitimately still
				// verify only if the payload bytes are intact AND the CRC
				// matches; with CRC covering the payload and every header
				// field checked, nothing may slip through.
				t.Fatalf("n=%d off=%d: corrupted artifact served (%d bytes)", n, off, len(got))
			}
			// Re-publish for the next offset (the corrupt file was reaped).
			s.Put("trace", 1, "k", testPayload(n))
			p = artifactPath(t, s, "trace", "k")
		}
	}
}

func TestCorruptionStaleFormatVersion(t *testing.T) {
	s := mustOpen(t, 0)
	s.Put("trace", 1, "k", testPayload(64))
	// A reader that has moved to version 2 must treat v1 files as
	// unusable and reap them.
	if _, ok := get(s, "trace", 2, "k"); ok {
		t.Fatal("stale-version artifact served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Corrupt)
	}
	// A subsequent same-version write works again.
	s.Put("trace", 2, "k", testPayload(64))
	if _, ok := get(s, "trace", 2, "k"); !ok {
		t.Fatal("re-published artifact missing")
	}
}

func TestCorruptionForeignKind(t *testing.T) {
	s := mustOpen(t, 0)
	s.Put("trace", 1, "k", testPayload(64))
	p := artifactPath(t, s, "trace", "k")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a trace-kind file under the design kind's name.
	if err := os.MkdirAll(filepath.Join(s.Dir(), "design"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "design", "k"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := get(s, "design", 1, "k"); ok {
		t.Fatal("foreign-kind artifact served")
	}
}

func TestDeletedBetweenManifestAndOpen(t *testing.T) {
	s := mustOpen(t, 0)
	s.Put("trace", 1, "k", testPayload(64))
	// The entry is indexed (a manifest would list it); delete the file
	// behind the store's back, as concurrent eviction by another process
	// would.
	if err := os.Remove(artifactPath(t, s, "trace", "k")); err != nil {
		t.Fatal(err)
	}
	if _, ok := get(s, "trace", 1, "k"); ok {
		t.Fatal("deleted artifact served")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func TestEvictionLRU(t *testing.T) {
	// Each artifact file is payload + header; size the bound for ~4.
	payload := testPayload(1000)
	fileSize := int64(fixedHeaderLen + len("k") + len(payload))
	s := mustOpen(t, 4*fileSize)
	for i := 0; i < 4; i++ {
		s.Put("k", 1, fmt.Sprintf("a%d", i), payload)
	}
	// Refresh a0 so a1 is the LRU victim.
	if _, ok := get(s, "k", 1, "a0"); !ok {
		t.Fatal("a0 missing")
	}
	s.Put("k", 1, "a4", payload)
	if _, ok := get(s, "k", 1, "a1"); ok {
		t.Fatal("LRU victim a1 still present")
	}
	for _, k := range []string{"a0", "a2", "a3", "a4"} {
		if _, ok := get(s, "k", 1, k); !ok {
			t.Fatalf("%s evicted, want a1 only", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > uint64(4*fileSize) {
		t.Fatalf("bytes = %d over bound %d", st.Bytes, 4*fileSize)
	}
}

func TestOversizedSingleEntryKept(t *testing.T) {
	s := mustOpen(t, 100)
	want := testPayload(5000)
	s.Put("k", 1, "huge", want)
	if got, ok := get(s, "k", 1, "huge"); !ok || !bytes.Equal(got, want) {
		t.Fatal("just-written oversized artifact must not self-evict")
	}
}

func TestInvalidAddressesRejected(t *testing.T) {
	s := mustOpen(t, 0)
	for _, bad := range [][2]string{
		{"", "k"}, {"k", ""}, {"../esc", "k"}, {"k", "../esc"},
		{"k", ".tmp-x"}, {"K", "k"}, {"k", "a/b"}, {"k", ".."},
	} {
		s.Put(bad[0], 1, bad[1], []byte("x"))
		if _, ok := get(s, bad[0], 1, bad[1]); ok {
			t.Fatalf("address %q/%q accepted", bad[0], bad[1])
		}
	}
	if s.Len() != 0 {
		t.Fatalf("store holds %d entries, want 0", s.Len())
	}
}

// TestConcurrentReadersWritersCorruption hammers one store from many
// goroutines while another goroutine keeps corrupting files in place —
// run under -race in CI. Every read must either produce the exact
// payload or a clean miss.
func TestConcurrentReadersWritersCorruption(t *testing.T) {
	s := mustOpen(t, 1<<20)
	const keys = 8
	payloadOf := func(i int) []byte {
		p := testPayload(2048)
		p[0] = byte(i)
		return p
	}
	keyOf := func(i int) string { return fmt.Sprintf("%02x", i) }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers re-publish constantly.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % keys
				s.Put("t", 1, keyOf(k), payloadOf(k))
			}
		}()
	}
	// A corrupter truncates files in place.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := filepath.Join(s.Dir(), "t", keyOf(i%keys))
			os.Truncate(p, int64(i%64))
		}
	}()
	// Readers must only ever see exact payloads or misses.
	errc := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % keys
				got, ok := get(s, "t", 1, keyOf(k))
				if ok && !bytes.Equal(got, payloadOf(k)) {
					select {
					case errc <- fmt.Errorf("key %d: wrong bytes served", k):
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s.Stats()
		s.Manifest()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

func TestReaderRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU32(b, 7)
	b = AppendU64(b, 1<<40)
	b = AppendU64s(b, []uint64{1, 2, 3})
	b = AppendU16s(b, []uint16{9, 8})
	b = AppendI32s(b, []int32{-1, 5})
	b = AppendBytes(b, []byte("hi"))
	r := NewReader(b)
	if r.U32() != 7 || r.U64() != 1<<40 {
		t.Fatal("scalar mismatch")
	}
	if u := r.U64s(); len(u) != 3 || u[2] != 3 {
		t.Fatal("u64s mismatch")
	}
	if u := r.U16s(); len(u) != 2 || u[1] != 8 {
		t.Fatal("u16s mismatch")
	}
	if u := r.I32s(); len(u) != 2 || u[0] != -1 {
		t.Fatal("i32s mismatch")
	}
	if string(r.Bytes()) != "hi" {
		t.Fatal("bytes mismatch")
	}
	if !r.Done() {
		t.Fatal("reader not done")
	}
	// Truncated reads must go sticky-bad, not panic.
	r2 := NewReader(b[:5])
	r2.U32()
	r2.U64()
	r2.U64s()
	if !r2.Err() || r2.Done() {
		t.Fatal("truncated reader must report error")
	}
}

func BenchmarkDiskTierLoad(b *testing.B) {
	s, err := Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	payload := testPayload(1 << 20)
	s.Put("trace", 1, "bench", payload)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, ok := s.Get("trace", 1, "bench")
		if !ok {
			b.Fatal("miss")
		}
		if len(blob.Data) != len(payload) {
			b.Fatal("short")
		}
		blob.Close()
	}
}
