//go:build !linux

package disktier

import "os"

// mapPayload reports no mapping support; the caller falls back to a
// plain heap read. Only linux carries the syscall.Mmap path — the
// production target — and every other platform stays correct through
// the same verified-read contract.
func mapPayload(f *os.File, off, n int64) (*Blob, bool) {
	return nil, false
}
