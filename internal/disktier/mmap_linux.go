//go:build linux

package disktier

import (
	"os"
	"syscall"
)

// mapPayload maps the payload region of an artifact file read-only. The
// mapping must start page-aligned, so the whole file is mapped and the
// blob's Data slices past the header; unmapping releases the full
// mapping. Returns ok=false to make the caller fall back to a heap
// read (mmap can fail on exotic filesystems).
func mapPayload(f *os.File, off, n int64) (*Blob, bool) {
	total := int(off + n)
	data, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return &Blob{
		Data:    data[off : off+n],
		unmap:   func() { syscall.Munmap(data) },
		mmapped: true,
	}, true
}
