package disktier

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"sort"
)

// Peer warming: a fresh replica joining a daemon fleet bulk-pulls the
// artifacts a warm peer already computed instead of recomputing them.
// The protocol is two GET endpoints served by the warm side —
//
//	GET <prefix>/manifest           → JSON list of {kind, key, version, size}
//	GET <prefix>/artifact?kind=&key= → the raw artifact file bytes
//
// — and PullFrom on the cold side, which fetches the manifest, skips
// artifacts it already holds, and installs the rest after verifying
// each one's header and checksum locally (a hostile or buggy peer can
// at worst feed bytes that fail verification and are dropped). The
// endpoints are mounted by fsmserved only when explicitly enabled.

// ManifestEntry describes one stored artifact.
type ManifestEntry struct {
	Kind    string `json:"kind"`
	Key     string `json:"key"`
	Version byte   `json:"version"`
	Size    int64  `json:"size"`
}

// maxPeerArtifactBytes bounds one pulled artifact (a packed 250k-event
// trace is ~2 MiB; 64 MiB leaves ample headroom).
const maxPeerArtifactBytes = 64 << 20

// Manifest lists the stored artifacts, most recently used first. The
// version is read from each file's header; unreadable files are
// skipped (the next Get will reap them).
func (s *Store) Manifest() []ManifestEntry {
	s.mu.Lock()
	infos := make([]entryInfo, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		infos = append(infos, *el.Value.(*entryInfo))
	}
	s.mu.Unlock()

	out := make([]ManifestEntry, 0, len(infos))
	for _, e := range infos {
		ver, ok := s.headerVersion(e.ek)
		if !ok {
			continue
		}
		out = append(out, ManifestEntry{Kind: e.ek.kind, Key: e.ek.key, Version: ver, Size: e.size})
	}
	return out
}

// headerVersion reads just the format-version byte of an artifact file.
func (s *Store) headerVersion(ek entryKey) (byte, bool) {
	f, err := os.Open(s.path(ek))
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var hdr [5]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || [4]byte(hdr[0:4]) != magic {
		return 0, false
	}
	return hdr[4], true
}

// ReadEncoded returns the raw artifact file bytes at (kind, key) — the
// transfer unit of peer warming. The container is verified (magic,
// kind, length, CRC) before serving so a peer never receives bytes its
// own verification would reject.
func (s *Store) ReadEncoded(kind, key string) ([]byte, bool) {
	if !validAddress(kind, key) {
		return nil, false
	}
	ek := entryKey{kind: kind, key: key}
	raw, err := os.ReadFile(s.path(ek))
	if err != nil {
		return nil, false
	}
	if !verifyEncoded(raw, kind) {
		s.dropCorrupt(ek)
		return nil, false
	}
	return raw, true
}

// PutEncoded installs a raw artifact file under (kind, key) after
// verifying its container. It returns false (and installs nothing) if
// the bytes are not a valid artifact of that kind.
func (s *Store) PutEncoded(kind, key string, raw []byte) bool {
	if !validAddress(kind, key) || !verifyEncoded(raw, kind) {
		return false
	}
	s.publish(entryKey{kind: kind, key: key}, raw)
	return true
}

// verifyEncoded checks a whole artifact file image: magic, kind,
// length, payload CRC. The format version is deliberately not pinned —
// the transfer side is version-agnostic; a version-skewed artifact is
// detected (and dropped) by the eventual Get.
func verifyEncoded(raw []byte, kind string) bool {
	hdrLen := fixedHeaderLen + len(kind)
	if len(raw) < hdrLen || [4]byte(raw[0:4]) != magic {
		return false
	}
	if int(raw[5]) != len(kind) || string(raw[6:6+len(kind)]) != kind {
		return false
	}
	r := NewReader(raw[6+len(kind) : hdrLen])
	payloadLen := r.U64()
	wantCRC := r.U32()
	if int(payloadLen) != len(raw)-hdrLen {
		return false
	}
	return crc32.Checksum(raw[hdrLen:], castagnoli) == wantCRC
}

// Handler serves the peer-warming endpoints for this store. Mount it
// under a prefix with http.StripPrefix.
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /manifest", func(w http.ResponseWriter, r *http.Request) {
		m := s.Manifest()
		sort.Slice(m, func(i, j int) bool {
			if m[i].Kind != m[j].Kind {
				return m[i].Kind < m[j].Kind
			}
			return m[i].Key < m[j].Key
		})
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(m)
	})
	mux.HandleFunc("GET /artifact", func(w http.ResponseWriter, r *http.Request) {
		kind, key := r.URL.Query().Get("kind"), r.URL.Query().Get("key")
		raw, ok := s.ReadEncoded(kind, key)
		if !ok {
			http.Error(w, "no such artifact", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(raw)
	})
	return mux
}

// PullFrom warms this store from a peer serving Handler at base (e.g.
// "http://peer:8080/v1/cache"). Artifacts already present locally are
// skipped; the rest are fetched, verified and installed. It returns the
// number installed and the first hard error (manifest unreachable);
// individual artifact failures are skipped, not fatal — warming is an
// optimization, never a correctness dependency.
func (s *Store) PullFrom(ctx context.Context, base string, client *http.Client) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/manifest", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("disktier: peer manifest: status %d", resp.StatusCode)
	}
	var manifest []ManifestEntry
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&manifest); err != nil {
		return 0, fmt.Errorf("disktier: peer manifest: %v", err)
	}

	pulled := 0
	for _, e := range manifest {
		if ctx.Err() != nil {
			return pulled, ctx.Err()
		}
		if !validAddress(e.Kind, e.Key) || e.Size > maxPeerArtifactBytes || s.Has(e.Kind, e.Key) {
			continue
		}
		url := fmt.Sprintf("%s/artifact?kind=%s&key=%s", base, e.Kind, e.Key)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerArtifactBytes+1))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || int64(len(raw)) > maxPeerArtifactBytes {
			continue
		}
		if s.PutEncoded(e.Kind, e.Key, raw) {
			pulled++
		}
	}
	s.count(func(st *Stats) { st.PeerPulled += uint64(pulled) })
	return pulled, nil
}
