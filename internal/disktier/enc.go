package disktier

import "encoding/binary"

// This file is the tiny codec vocabulary the artifact producers share:
// append-style little-endian writers and a cursor reader whose error
// state is sticky, so decoders read a whole layout linearly and check
// Err once at the end. Payload formats stay compact and self-contained;
// the surrounding file header (kind, version, CRC) is the store's job.

// AppendU32 appends a little-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendU64s appends a count-prefixed little-endian uint64 slice.
func AppendU64s(b []byte, vs []uint64) []byte {
	b = AppendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = AppendU64(b, v)
	}
	return b
}

// AppendU16s appends a count-prefixed little-endian uint16 slice.
func AppendU16s(b []byte, vs []uint16) []byte {
	b = AppendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = append(b, byte(v), byte(v>>8))
	}
	return b
}

// AppendI32s appends a count-prefixed little-endian int32 slice.
func AppendI32s(b []byte, vs []int32) []byte {
	b = AppendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = AppendU32(b, uint32(v))
	}
	return b
}

// AppendBytes appends a count-prefixed byte slice.
func AppendBytes(b []byte, vs []byte) []byte {
	b = AppendU32(b, uint32(len(vs)))
	return append(b, vs...)
}

// maxDecodeElems bounds any single count-prefixed slice a Reader will
// materialize (1 G elements): a corrupted count that survived the CRC
// cannot ask for an absurd allocation.
const maxDecodeElems = 1 << 30

// Reader is a sticky-error cursor over a payload. After any short read
// every further call returns zero values and Err reports failure.
type Reader struct {
	b   []byte
	off int
	bad bool
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err reports whether any read ran past the payload.
func (r *Reader) Err() bool { return r.bad }

// take returns the next n bytes, or marks the reader bad.
func (r *Reader) take(n int) []byte {
	if r.bad || n < 0 || len(r.b)-r.off < n {
		r.bad = true
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// count reads a slice length and sanity-bounds it.
func (r *Reader) count() int {
	n := int(r.U32())
	if n > maxDecodeElems {
		r.bad = true
		return 0
	}
	return n
}

// U64s reads a count-prefixed uint64 slice.
func (r *Reader) U64s() []uint64 {
	n := r.count()
	b := r.take(8 * n)
	if b == nil {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return vs
}

// U16s reads a count-prefixed uint16 slice.
func (r *Reader) U16s() []uint16 {
	n := r.count()
	b := r.take(2 * n)
	if b == nil {
		return nil
	}
	vs := make([]uint16, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return vs
}

// I32s reads a count-prefixed int32 slice.
func (r *Reader) I32s() []int32 {
	n := r.count()
	b := r.take(4 * n)
	if b == nil {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return vs
}

// Bytes reads a count-prefixed byte slice (copied out of the payload,
// so it stays valid after the blob closes).
func (r *Reader) Bytes() []byte {
	n := r.count()
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Done reports whether the payload was consumed exactly: no error and
// no trailing garbage.
func (r *Reader) Done() bool { return !r.bad && r.off == len(r.b) }
