package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fsmpredict/internal/fsm"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// newRefServer builds a service over a private trace store so test runs
// do not share state through tracestore.Shared.
func newRefServer(t *testing.T) (*Service, *tracestore.Store, *httptest.Server) {
	t.Helper()
	store := tracestore.NewStore()
	s := New(Config{Workers: 2, Traces: store})
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, store, srv
}

func TestResolveTraceMatchesGeneratedEvents(t *testing.T) {
	s, _, _ := newRefServer(t)
	const n = 6000
	prog, err := workload.ByName("gsm")
	if err != nil {
		t.Fatal(err)
	}
	events := prog.Generate(workload.Test, n)

	global, err := s.ResolveTrace(TraceRef{Program: "gsm", Variant: "test", Events: n})
	if err != nil {
		t.Fatal(err)
	}
	if global.Len() != n {
		t.Fatalf("global stream has %d bits, want %d", global.Len(), n)
	}
	for i, e := range events {
		if global.At(i) != e.Taken {
			t.Fatalf("global bit %d = %v, want %v", i, global.At(i), e.Taken)
		}
	}

	pc := events[0].PC
	sub, err := s.ResolveTrace(TraceRef{Program: "gsm", Variant: "test", Events: n, PC: pc})
	if err != nil {
		t.Fatal(err)
	}
	var want []bool
	for _, e := range events {
		if e.PC == pc {
			want = append(want, e.Taken)
		}
	}
	if sub.Len() != len(want) {
		t.Fatalf("substream has %d bits, want %d", sub.Len(), len(want))
	}
	for i, w := range want {
		if sub.At(i) != w {
			t.Fatalf("substream bit %d = %v, want %v", i, sub.At(i), w)
		}
	}
}

func TestResolveTraceErrors(t *testing.T) {
	s, _, _ := newRefServer(t)
	cases := []TraceRef{
		{Program: "no-such-program", Variant: "train", Events: 100},
		{Program: "gsm", Variant: "validation", Events: 100},
		{Program: "gsm", Variant: "train", Events: -5},
		{Program: "gsm", Variant: "train", Events: maxRefEvents + 1},
		{Program: "gsm", Variant: "train", Events: 100, PC: 0xdeadbeef},
	}
	for _, ref := range cases {
		if _, err := s.ResolveTrace(ref); !isInvalid(err) {
			t.Errorf("ResolveTrace(%+v) error = %v, want ErrInvalid", ref, err)
		}
	}
}

func isInvalid(err error) bool {
	return errors.Is(err, ErrInvalid)
}

func TestHTTPWorkloadRefDesign(t *testing.T) {
	s, _, srv := newRefServer(t)
	const n = 4000
	prog, err := workload.ByName("gsm")
	if err != nil {
		t.Fatal(err)
	}
	// Design on the hottest branch's substream so it has plenty of bits.
	pc := trace.Profile(prog.Generate(workload.Train, n))[0].PC
	ref := &TraceRefJSON{Program: "gsm", Variant: "train", Events: n, PC: fmt.Sprintf("%#x", pc)}

	resp := postJSON(t, srv.URL+"/v1/design", DesignRequest{
		Workload: ref,
		Options:  OptionsJSON{Order: 3, Name: "wl"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status = %d", resp.StatusCode)
	}
	first := decodeBody[DesignResponse](t, resp)
	if first.States <= 0 || first.CacheHit {
		t.Fatalf("first design: states=%d cache_hit=%v", first.States, first.CacheHit)
	}

	// The same reference again is a design-cache hit.
	repeat := decodeBody[DesignResponse](t, postJSON(t, srv.URL+"/v1/design", DesignRequest{
		Workload: ref,
		Options:  OptionsJSON{Order: 3, Name: "wl"},
	}))
	if !repeat.CacheHit || repeat.Key != first.Key {
		t.Errorf("repeat: cache_hit=%v key match=%v", repeat.CacheHit, repeat.Key == first.Key)
	}

	// Content addressing unifies the reference with the same bits sent
	// inline: identical key, served from cache.
	bits, err := s.ResolveTrace(TraceRef{Program: "gsm", Variant: "train", Events: n, PC: pc})
	if err != nil {
		t.Fatal(err)
	}
	inline := decodeBody[DesignResponse](t, postJSON(t, srv.URL+"/v1/design", DesignRequest{
		Trace:   bits.String(),
		Options: OptionsJSON{Order: 3, Name: "wl"},
	}))
	if !inline.CacheHit || inline.Key != first.Key {
		t.Errorf("inline equivalent: cache_hit=%v key match=%v", inline.CacheHit, inline.Key == first.Key)
	}

	// Supplying both forms is the client's error.
	both := postJSON(t, srv.URL+"/v1/design", DesignRequest{
		Trace:    "0101",
		Workload: ref,
		Options:  OptionsJSON{Order: 2},
	})
	both.Body.Close()
	if both.StatusCode != http.StatusBadRequest {
		t.Errorf("both trace and workload: status = %d, want 400", both.StatusCode)
	}
}

func TestHTTPWorkloadRefSimulate(t *testing.T) {
	s, _, srv := newRefServer(t)
	const n = 3000
	design := decodeBody[DesignResponse](t, postJSON(t, srv.URL+"/v1/design", DesignRequest{
		Workload: &TraceRefJSON{Program: "vortex", Variant: "train", Events: n},
		Options:  OptionsJSON{Order: 2},
	}))
	var m fsm.Machine
	if err := json.Unmarshal(design.Machine, &m); err != nil {
		t.Fatal(err)
	}

	byRef := decodeBody[SimulateResponse](t, postJSON(t, srv.URL+"/v1/simulate", SimulateRequest{
		Machine:  &m,
		Workload: &TraceRefJSON{Program: "vortex", Variant: "test", Events: n},
		Skip:     2,
	}))
	bits, err := s.ResolveTrace(TraceRef{Program: "vortex", Variant: "test", Events: n})
	if err != nil {
		t.Fatal(err)
	}
	inline := decodeBody[SimulateResponse](t, postJSON(t, srv.URL+"/v1/simulate", SimulateRequest{
		Machine: &m,
		Trace:   bits.String(),
		Skip:    2,
	}))
	if byRef != inline {
		t.Errorf("workload-ref simulate %+v != inline simulate %+v", byRef, inline)
	}
	if byRef.Total == 0 {
		t.Error("simulate scored no outcomes")
	}
}

func TestMetricsExposeTracestoreGauges(t *testing.T) {
	s, store, srv := newRefServer(t)

	scrape := func() string {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	before := scrape()
	for _, want := range []string{
		"fsmpredict_tracestore_hits 0\n",
		"fsmpredict_tracestore_misses 0\n",
		"fsmpredict_tracestore_bytes 0\n",
	} {
		if !strings.Contains(before, want) {
			t.Errorf("fresh exposition missing %q:\n%s", want, before)
		}
	}

	ref := TraceRef{Program: "gs", Variant: "train", Events: 2000}
	for i := 0; i < 3; i++ {
		if _, err := s.ResolveTrace(ref); err != nil {
			t.Fatal(err)
		}
	}
	after := scrape()
	if !strings.Contains(after, "fsmpredict_tracestore_misses 1\n") {
		t.Errorf("exposition missing miss count:\n%s", after)
	}
	if !strings.Contains(after, "fsmpredict_tracestore_hits 2\n") {
		t.Errorf("exposition missing hit count:\n%s", after)
	}
	if st := store.Stats(); st.Bytes == 0 {
		t.Error("store reports zero bytes after generation")
	} else if !strings.Contains(after, fmt.Sprintf("fsmpredict_tracestore_bytes %d\n", st.Bytes)) {
		t.Errorf("exposition missing byte gauge %d:\n%s", st.Bytes, after)
	}
}
