package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is
// a long trace (one byte per outcome in text form).
const maxBodyBytes = 64 << 20

// DesignRequest is the wire form of POST /v1/design.
type DesignRequest struct {
	// Trace is the outcome string ('0'/'1'; whitespace and underscores
	// are ignored).
	Trace string `json:"trace"`
	// Options selects the design parameters; see OptionsJSON.
	Options OptionsJSON `json:"options"`
}

// OptionsJSON is the wire form of core.Options. Zero values mean the
// paper defaults (bias threshold 0.5, 1% don't-care budget); a negative
// don't-care budget disables the budget, as in the library.
type OptionsJSON struct {
	Order          int     `json:"order"`
	BiasThreshold  float64 `json:"bias_threshold,omitempty"`
	DontCareBudget float64 `json:"dont_care_budget,omitempty"`
	KeepUnseen     bool    `json:"keep_unseen,omitempty"`
	KeepStartup    bool    `json:"keep_startup,omitempty"`
	Name           string  `json:"name,omitempty"`
}

// Options converts the wire form to core options.
func (o OptionsJSON) Options() core.Options {
	return core.Options{
		Order:          o.Order,
		BiasThreshold:  o.BiasThreshold,
		DontCareBudget: o.DontCareBudget,
		KeepUnseen:     o.KeepUnseen,
		KeepStartup:    o.KeepStartup,
		Name:           o.Name,
	}
}

// DesignResponse is the wire form of a successful design.
type DesignResponse struct {
	*Result
	CacheHit bool `json:"cache_hit"`
}

// SimulateRequest is the wire form of POST /v1/simulate.
type SimulateRequest struct {
	// Machine is a predictor in the canonical JSON encoding (as returned
	// by /v1/design).
	Machine *fsm.Machine `json:"machine"`
	// Trace is the outcome string to replay.
	Trace string `json:"trace"`
	// Skip is the number of warm-up outcomes consumed without scoring.
	Skip int `json:"skip,omitempty"`
}

// SimulateResponse is the wire form of a simulation result.
type SimulateResponse struct {
	Total    int     `json:"total"`
	Correct  int     `json:"correct"`
	Accuracy float64 `json:"accuracy"`
	MissRate float64 `json:"miss_rate"`
}

// errorResponse is the wire form of any failure.
type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler exposes the service over HTTP:
//
//	POST /v1/design   — trace + options → machine JSON, VHDL, area, stats
//	POST /v1/simulate — machine + trace → prediction accuracy
//	GET  /healthz     — liveness probe
//	GET  /metrics     — text metrics exposition
//
// Request bodies and responses are JSON except /healthz and /metrics.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/design", func(w http.ResponseWriter, r *http.Request) {
		var req DesignRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrInvalid, err))
			return
		}
		res, hit, err := s.DesignString(r.Context(), req.Trace, req.Options.Options())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, DesignResponse{Result: res, CacheHit: hit})
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req SimulateRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrInvalid, err))
			return
		}
		bits, err := bitseq.FromString(req.Trace)
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrInvalid, err))
			return
		}
		res, err := s.Simulate(req.Machine, bits, req.Skip)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, SimulateResponse{
			Total:    res.Total,
			Correct:  res.Correct,
			Accuracy: res.Accuracy(),
			MissRate: res.MissRate(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.Metrics().WriteTo(w)
	})
	return mux
}

// decodeJSON reads one JSON document from the body, rejecting oversized
// bodies and trailing garbage.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// writeError maps service errors onto HTTP statuses: invalid requests
// are the client's fault (400), shedding and shutdown are capacity
// signals (503), anything else is a server fault (500).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}
