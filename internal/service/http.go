package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/gasearch"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is
// a long trace (one byte per outcome in text form).
const maxBodyBytes = 64 << 20

// DesignRequest is the wire form of POST /v1/design. Exactly one of
// Trace and Workload supplies the outcome stream.
type DesignRequest struct {
	// Trace is the outcome string ('0'/'1'; whitespace and underscores
	// are ignored).
	Trace string `json:"trace,omitempty"`
	// Workload references a stored workload trace instead of carrying
	// the outcomes inline.
	Workload *TraceRefJSON `json:"workload,omitempty"`
	// Options selects the design parameters; see OptionsJSON.
	Options OptionsJSON `json:"options"`
}

// TraceRefJSON is the wire form of a stored-trace reference: a
// synthetic benchmark's branch trace held by the service's packed trace
// store, so repeated requests share one generated, packed copy.
type TraceRefJSON struct {
	// Program is a benchmark name (e.g. "gsm", "vortex").
	Program string `json:"program"`
	// Variant is "train" or "test".
	Variant string `json:"variant"`
	// Events is the dynamic branch count; 0 means the 250k default.
	Events int `json:"events,omitempty"`
	// PC selects one static branch's local outcome substream, in any
	// form strconv.ParseUint(s, 0, 64) accepts ("0x12001004", "4096").
	// Empty means the global outcome stream.
	PC string `json:"pc,omitempty"`
}

// OptionsJSON is the wire form of core.Options. Zero values mean the
// paper defaults (bias threshold 0.5, 1% don't-care budget); a negative
// don't-care budget disables the budget, as in the library.
type OptionsJSON struct {
	Order          int     `json:"order"`
	BiasThreshold  float64 `json:"bias_threshold,omitempty"`
	DontCareBudget float64 `json:"dont_care_budget,omitempty"`
	KeepUnseen     bool    `json:"keep_unseen,omitempty"`
	KeepStartup    bool    `json:"keep_startup,omitempty"`
	// Artifacts requests the full regex→NFA→DFA pipeline so the response
	// carries the intermediate sizes (nfa_states and friends); the
	// default is the direct construction, whose machine is identical.
	Artifacts bool   `json:"artifacts,omitempty"`
	Name      string `json:"name,omitempty"`
}

// Options converts the wire form to core options.
func (o OptionsJSON) Options() core.Options {
	return core.Options{
		Order:          o.Order,
		BiasThreshold:  o.BiasThreshold,
		DontCareBudget: o.DontCareBudget,
		KeepUnseen:     o.KeepUnseen,
		KeepStartup:    o.KeepStartup,
		Artifacts:      o.Artifacts,
		Name:           o.Name,
	}
}

// DesignResponse is the wire form of a successful design.
type DesignResponse struct {
	*Result
	CacheHit bool `json:"cache_hit"`
}

// SimulateRequest is the wire form of POST /v1/simulate. Exactly one of
// Trace and Workload supplies the outcome stream.
type SimulateRequest struct {
	// Machine is a predictor in the canonical JSON encoding (as returned
	// by /v1/design).
	Machine *fsm.Machine `json:"machine"`
	// Trace is the outcome string to replay.
	Trace string `json:"trace,omitempty"`
	// Workload references a stored workload trace to replay.
	Workload *TraceRefJSON `json:"workload,omitempty"`
	// Skip is the number of warm-up outcomes consumed without scoring.
	Skip int `json:"skip,omitempty"`
}

// SimulateResponse is the wire form of a simulation result.
type SimulateResponse struct {
	Total    int     `json:"total"`
	Correct  int     `json:"correct"`
	Accuracy float64 `json:"accuracy"`
	MissRate float64 `json:"miss_rate"`
}

// SearchRequest is the wire form of POST /v1/search: a genetic search
// for a small predictor FSM over the outcome stream, the measured
// baseline the paper's constructive flow is compared against. Exactly
// one of Trace and Workload supplies the stream.
type SearchRequest struct {
	// Trace is the outcome string to search against.
	Trace string `json:"trace,omitempty"`
	// Workload references a stored workload trace instead.
	Workload *TraceRefJSON `json:"workload,omitempty"`
	// Options selects the search parameters; see SearchOptionsJSON.
	Options SearchOptionsJSON `json:"options"`
}

// SearchOptionsJSON is the wire form of gasearch.Options. Zero values
// mean the library defaults; Mode is the search-mode knob.
type SearchOptionsJSON struct {
	// States is the fixed machine size (2..64). Required.
	States int `json:"states"`
	// Population and Generations size the evolution (defaults 64, 50;
	// capped server-side).
	Population  int `json:"population,omitempty"`
	Generations int `json:"generations,omitempty"`
	// Seed makes the search reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Warmup outcomes at the head of the trace are not scored.
	Warmup int `json:"warmup,omitempty"`
	// Mode selects the evaluator: "exact" (default) scores every genome
	// on the full trace; "adaptive" races cohorts through the fidelity
	// ladder with the persistent fitness memo. Best and miss_rate are
	// exact full-trace values in either mode.
	Mode string `json:"mode,omitempty"`
}

// Options converts the wire form to search options, resolving Mode.
func (o SearchOptionsJSON) Options() (gasearch.Options, error) {
	opt := gasearch.Options{
		States:      o.States,
		Population:  o.Population,
		Generations: o.Generations,
		Seed:        o.Seed,
		Warmup:      o.Warmup,
	}
	switch o.Mode {
	case "", "exact":
	case "adaptive":
		opt.Adaptive = true
	default:
		return opt, fmt.Errorf("%w: unknown search mode %q (want \"exact\" or \"adaptive\")", ErrInvalid, o.Mode)
	}
	return opt, nil
}

// SearchResponse is the wire form of a search result. The racing block
// reports the adaptive evaluator's activity (all zero in exact mode).
type SearchResponse struct {
	// Machine is the champion in the canonical JSON encoding.
	Machine *fsm.Machine `json:"machine"`
	// States is the champion's machine size.
	States int `json:"states"`
	// MissRate is its full-fidelity training miss rate.
	MissRate float64 `json:"miss_rate"`
	// Evaluations counts fitness evaluations requested.
	Evaluations int `json:"evaluations"`
	Racing      struct {
		LadderUsed bool `json:"ladder_used"`
		RungEvals  int  `json:"rung_evals"`
		Pruned     int  `json:"pruned"`
		Escalated  int  `json:"escalated"`
		MemoHits   int  `json:"memo_hits"`
		Deduped    int  `json:"deduped"`
	} `json:"racing"`
}

// errorResponse is the wire form of any failure.
type errorResponse struct {
	Error string `json:"error"`
}

// ref converts the wire form into a TraceRef, parsing the PC.
func (r *TraceRefJSON) ref() (TraceRef, error) {
	var pc uint64
	if r.PC != "" {
		var err error
		pc, err = strconv.ParseUint(r.PC, 0, 64)
		if err != nil {
			return TraceRef{}, fmt.Errorf("%w: bad pc %q: %v", ErrInvalid, r.PC, err)
		}
	}
	return TraceRef{Program: r.Program, Variant: r.Variant, Events: r.Events, PC: pc}, nil
}

// requestTrace resolves a request's outcome stream from whichever of
// the inline trace string and the stored-trace reference was supplied,
// rejecting requests that carry both.
func requestTrace(s *Service, inline string, ref *TraceRefJSON) (*bitseq.Bits, error) {
	bits, _, err := requestTraceGrouped(s, inline, ref)
	return bits, err
}

// requestTraceGrouped is requestTrace plus the coalescing group key the
// batch plane buckets the request under: the trace-store key for a
// stored-trace reference, a content hash for an inline trace.
func requestTraceGrouped(s *Service, inline string, ref *TraceRefJSON) (*bitseq.Bits, string, error) {
	if ref == nil {
		bits, err := bitseq.FromString(inline)
		if err != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		return bits, GroupKeyForTrace(bits), nil
	}
	if inline != "" {
		return nil, "", fmt.Errorf("%w: request carries both an inline trace and a workload reference", ErrInvalid)
	}
	r, err := ref.ref()
	if err != nil {
		return nil, "", err
	}
	bits, err := s.ResolveTrace(r)
	if err != nil {
		return nil, "", err
	}
	return bits, r.GroupKey(), nil
}

// NewHandler exposes the service over HTTP:
//
//	POST /v1/design         — trace + options → machine JSON, VHDL, area, stats
//	POST /v1/simulate       — machine + trace → prediction accuracy
//	POST /v1/search         — trace + options → evolved predictor (mode: exact|adaptive)
//	POST /v1/batch/design   — NDJSON stream of design requests, coalesced
//	POST /v1/batch/simulate — NDJSON stream of simulate requests, coalesced
//	GET  /healthz           — liveness probe
//	GET  /metrics           — text metrics exposition
//	GET  /v1/cache/manifest — disk-tier artifact listing (only with Config.CacheServe)
//	GET  /v1/cache/artifact — one verified artifact by kind+key (only with Config.CacheServe)
//
// Request bodies and responses are JSON except /healthz and /metrics.
// All POST endpoints accept either an inline "trace" string or a
// "workload" stored-trace reference (see TraceRefJSON). The batch
// endpoints stream one response line per request line, possibly out of
// order (see BatchDesignLine); they must be served without response
// buffering (http.TimeoutHandler breaks the streaming contract).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch/design", ndjsonHandler(s.processBatchDesign))
	mux.HandleFunc("POST /v1/batch/simulate", ndjsonHandler(s.processBatchSimulate))
	mux.HandleFunc("POST /v1/design", func(w http.ResponseWriter, r *http.Request) {
		var req DesignRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrInvalid, err))
			return
		}
		bits, err := requestTrace(s, req.Trace, req.Workload)
		if err != nil {
			writeError(w, err)
			return
		}
		res, hit, err := s.Design(r.Context(), bits, req.Options.Options())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, DesignResponse{Result: res, CacheHit: hit})
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req SimulateRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrInvalid, err))
			return
		}
		bits, err := requestTrace(s, req.Trace, req.Workload)
		if err != nil {
			writeError(w, err)
			return
		}
		res, err := s.Simulate(req.Machine, bits, req.Skip)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, SimulateResponse{
			Total:    res.Total,
			Correct:  res.Correct,
			Accuracy: res.Accuracy(),
			MissRate: res.MissRate(),
		})
	})
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		var req SearchRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrInvalid, err))
			return
		}
		bits, err := requestTrace(s, req.Trace, req.Workload)
		if err != nil {
			writeError(w, err)
			return
		}
		opt, err := req.Options.Options()
		if err != nil {
			writeError(w, err)
			return
		}
		res, err := s.Search(bits, opt)
		if err != nil {
			writeError(w, err)
			return
		}
		var resp SearchResponse
		resp.Machine = res.Best
		resp.States = res.Best.NumStates()
		resp.MissRate = res.BestMissRate
		resp.Evaluations = res.Evaluations
		resp.Racing.LadderUsed = res.Racing.LadderUsed
		resp.Racing.RungEvals = res.Racing.RungEvals
		resp.Racing.Pruned = res.Racing.Pruned
		resp.Racing.Escalated = res.Racing.Escalated
		resp.Racing.MemoHits = res.Racing.MemoHits
		resp.Racing.Deduped = res.Racing.Deduped
		writeJSON(w, http.StatusOK, resp)
	})
	if s.disk != nil && s.cacheServe {
		// Peer-warming plane (operator opt-in): a cold process lists this
		// one's artifacts and fetches them by content address, verifying
		// each locally before install.
		mux.Handle("GET /v1/cache/", http.StripPrefix("/v1/cache", s.disk.Handler()))
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.Metrics().WriteTo(w)
	})
	return mux
}

// decodeJSON reads one JSON document from the body, rejecting oversized
// bodies and trailing garbage.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// writeError maps service errors onto HTTP statuses: invalid requests
// are the client's fault (400), shedding and shutdown are capacity
// signals (503), anything else is a server fault (500).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}
