package service

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsCountersAndExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter("b_total").Add(3)
	m.Counter("a_total").Inc()
	if m.Counter("a_total") != m.Counter("a_total") {
		t.Error("repeated lookup returned a different counter")
	}
	m.Counter("a_total").Inc()

	h := m.Histogram("lat_seconds")
	h.Observe(50 * time.Microsecond)  // bucket le=0.0001
	h.Observe(500 * time.Millisecond) // bucket le=1
	h.Observe(2 * time.Hour)          // overflow bucket
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"a_total 2\n",
		"b_total 3\n",
		`lat_seconds_bucket{le="0.0001"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="60"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters come before histograms and both are name-sorted, so the
	// output is deterministic.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}

func TestSizeHistogramExposition(t *testing.T) {
	m := NewMetrics()
	sh := m.SizeHistogram("flush_size")
	if sh != m.SizeHistogram("flush_size") {
		t.Error("repeated lookup returned a different size histogram")
	}
	for _, v := range []uint64{1, 3, 3, 64, 1000} {
		sh.Observe(v)
	}
	if sh.Count() != 5 {
		t.Errorf("count = %d, want 5", sh.Count())
	}
	if sh.Sum() != 1071 {
		t.Errorf("sum = %d, want 1071", sh.Sum())
	}

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`flush_size_bucket{le="1"} 1`,
		`flush_size_bucket{le="2"} 1`,
		`flush_size_bucket{le="4"} 3`,
		`flush_size_bucket{le="64"} 4`,
		`flush_size_bucket{le="256"} 4`,
		`flush_size_bucket{le="+Inf"} 5`,
		"flush_size_sum 1071\n",
		"flush_size_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsConcurrentUse(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Counter("c_total").Inc()
				m.Histogram("h_seconds").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := m.Histogram("h_seconds").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
