package service

import (
	"fmt"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// defaultRefEvents is the trace length used when a TraceRef leaves
// Events zero — the same scale the experiment suite defaults to.
const defaultRefEvents = 250_000

// maxRefEvents bounds how long a trace a single request may ask the
// store to generate, so one request cannot balloon process memory.
const maxRefEvents = 16_000_000

// TraceRef names a stored workload trace instead of carrying outcomes
// inline: the branch trace of a synthetic benchmark at a given variant
// and length, read either as the global outcome stream or as one static
// branch's local substream. Because stored traces are content-addressed
// by (program, variant, events), repeated references resolve to the
// same packed trace without regeneration — the design cache and
// /v1/simulate reuse what experiments in the same process generated.
type TraceRef struct {
	// Program is a synthetic benchmark name (see workload.Suite).
	Program string
	// Variant selects the input set: "train" or "test".
	Variant string
	// Events is the dynamic branch count; 0 means defaultRefEvents.
	Events int
	// PC selects one static branch's substream; 0 means the global
	// outcome stream.
	PC uint64
}

// GroupKey is the coalescing group key of the referenced trace: the
// trace-store content address plus the substream selector. Batched
// requests over the same stored trace (or the same branch's local
// substream) share a group and therefore a kernel pass.
func (r TraceRef) GroupKey() string {
	events := r.Events
	if events == 0 {
		events = defaultRefEvents
	}
	key := tracestore.Key{Kind: "branch", Program: r.Program, Variant: r.Variant, Events: events}.String()
	if r.PC != 0 {
		key += fmt.Sprintf("/pc=%#x", r.PC)
	}
	return key
}

// ResolveTrace materializes a trace reference against the service's
// store. The returned bits alias the store's immutable packed trace and
// must not be mutated.
func (s *Service) ResolveTrace(ref TraceRef) (*bitseq.Bits, error) {
	prog, err := workload.ByName(ref.Program)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	var variant workload.Variant
	switch ref.Variant {
	case "train":
		variant = workload.Train
	case "test":
		variant = workload.Test
	default:
		return nil, fmt.Errorf("%w: variant %q is not \"train\" or \"test\"", ErrInvalid, ref.Variant)
	}
	events := ref.Events
	if events == 0 {
		events = defaultRefEvents
	}
	if events < 0 || events > maxRefEvents {
		return nil, fmt.Errorf("%w: events %d outside (0, %d]", ErrInvalid, ref.Events, maxRefEvents)
	}
	packed := s.traces.Branches(prog, variant, events)
	if ref.PC == 0 {
		return packed.Outcomes(), nil
	}
	id, ok := packed.IDOf(ref.PC)
	if !ok {
		return nil, fmt.Errorf("%w: branch %#x does not execute in %s/%s",
			ErrInvalid, ref.PC, ref.Program, ref.Variant)
	}
	return packed.SubOf(id).Outcomes, nil
}
