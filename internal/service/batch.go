package service

import (
	"context"
	"crypto/sha256"
	"fmt"
	"strconv"
	"sync"
	"time"

	"fsmpredict/internal/batch"
	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/trace"
)

// This file is the coalescing batch plane that sits in front of the
// worker pool: concurrent batched requests are grouped by trace-store
// key (internal/batch) so each flush runs ONE kernel pass for the
// whole group instead of one per request.
//
//   - Design flushes dedupe identical content addresses: N concurrent
//     requests for the same (trace, options) become one pipeline
//     submission, and distinct requests fan out to the worker pool
//     together. The pool's bounded queue still applies — a flush that
//     outruns it sheds the overflowing items with ErrOverloaded.
//   - Simulate flushes run every grouped machine over the shared trace
//     in one fsm.Fleet pass: the group's block tables are packed into
//     one contiguous fleet, structurally identical machines dedup to a
//     single walk, and the whole group advances through one trace read
//     (machines without a block table fall back to their own scalar
//     pass).
//
// The plane drains before the worker pool on Close: every batched
// request accepted before shutdown still flushes and completes.

// designItem is one queued batched design request.
type designItem struct {
	trace *bitseq.Bits
	opt   core.Options
	key   cacheKey // content address, the intra-flush dedup key
}

// designOut pairs a design result with its cache disposition.
type designOut struct {
	res *Result
	hit bool
}

// simItem is one queued batched simulate request. All items of a group
// carry content-identical traces (the group key hashes the trace), so
// a flush replays any one of them.
type simItem struct {
	m     *fsm.Machine
	trace *bitseq.Bits
	skip  int
}

// batchPlane owns the two batchers and their metric handles.
type batchPlane struct {
	design *batch.Batcher[string, designItem, designOut]
	sim    *batch.Batcher[string, simItem, fsm.SimResult]

	designCoalesced *Counter // design items folded into another item's run
	designPasses    *Counter // unique pipeline submissions from flushes
	simPasses       *Counter // simulation kernel passes from flushes

	fleetPasses   *Counter // fleet passes run by simulate flushes
	fleetMachines *Counter // machines scored across those passes
	fleetDeduped  *Counter // machines served by a structural twin's walk
	fleetBytes    *Counter // trace bytes simulated, summed per machine
}

// newBatchPlane wires the batchers and registers the batch metrics.
func newBatchPlane(s *Service, maxBatch int, maxWait time.Duration) *batchPlane {
	p := &batchPlane{
		designCoalesced: s.registry.Counter("fsmpredict_batch_design_coalesced_total"),
		designPasses:    s.registry.Counter("fsmpredict_batch_design_passes_total"),
		simPasses:       s.registry.Counter("fsmpredict_batch_simulate_passes_total"),
		fleetPasses:     s.registry.Counter("fsmpredict_fleet_passes_total"),
		fleetMachines:   s.registry.Counter("fsmpredict_fleet_machines_total"),
		fleetDeduped:    s.registry.Counter("fsmpredict_fleet_deduped_total"),
		fleetBytes:      s.registry.Counter("fsmpredict_fleet_simulated_bytes_total"),
	}
	cfg := func(kind string) batch.Config {
		size := s.registry.SizeHistogram("fsmpredict_batch_" + kind + "_flush_size")
		lat := s.registry.Histogram("fsmpredict_batch_" + kind + "_flush_seconds")
		return batch.Config{
			MaxBatch: maxBatch,
			MaxWait:  maxWait,
			OnFlush: func(n int, elapsed time.Duration) {
				size.Observe(uint64(n))
				lat.Observe(elapsed)
			},
		}
	}
	p.design = batch.New(cfg("design"), s.flushDesigns)
	p.sim = batch.New(cfg("simulate"), s.flushSimulations)

	expose := func(kind string, st func() batch.Stats, passes *Counter) {
		s.registry.Gauge("fsmpredict_batch_"+kind+"_queue_depth", func() uint64 { return uint64(st().Pending) })
		s.registry.Gauge("fsmpredict_batch_"+kind+"_items_total", func() uint64 { return st().Submitted })
		s.registry.Gauge("fsmpredict_batch_"+kind+"_flushes_total", func() uint64 { return st().Flushes })
		// Coalesce ratio — flushed items per kernel pass, fixed-point
		// ×1000 (the registry is integer-valued). 1000 means no
		// coalescing; 2000 means every pass served two requests.
		s.registry.Gauge("fsmpredict_batch_"+kind+"_coalesce_ratio_milli", func() uint64 {
			p := passes.Value()
			if p == 0 {
				return 0
			}
			return 1000 * st().Flushed / p
		})
	}
	expose("design", p.design.Stats, p.designPasses)
	expose("simulate", p.sim.Stats, p.simPasses)
	return p
}

// close drains both batchers: pending groups flush, in-flight flushes
// complete, and every accepted item receives its outcome.
func (p *batchPlane) close() {
	p.design.Close()
	p.sim.Close()
}

// GroupKeyForTrace derives the coalescing group key of an inline trace:
// the SHA-256 of its canonical bytes, so content-identical traces from
// different connections land in the same group. Stored-trace references
// use their trace-store key instead (see TraceRef.GroupKey).
func GroupKeyForTrace(bits *bitseq.Bits) string {
	sum := sha256.Sum256(trace.CanonicalBits(bits))
	return "sha256:" + fmt.Sprintf("%x", sum[:16])
}

// DesignBatch is Design through the coalescing batch plane: the request
// joins the group named by groupKey (requests over the same stored
// trace share one), waits at most the configured flush deadline, and is
// executed in one grouped flush — identical concurrent requests
// collapse into a single pipeline run. An empty groupKey derives one
// from the trace content. The returned boolean reports whether the
// result came from the design cache.
func (s *Service) DesignBatch(ctx context.Context, traceBits *bitseq.Bits, opt core.Options, groupKey string) (*Result, bool, error) {
	if err := validateDesign(traceBits, opt); err != nil {
		return nil, false, err
	}
	if groupKey == "" {
		groupKey = GroupKeyForTrace(traceBits)
	}
	it := designItem{trace: traceBits, opt: opt, key: requestKey(traceBits, opt)}
	out, err := s.batch.design.Submit(ctx, groupKey, it)
	if err != nil {
		if err == batch.ErrClosed {
			err = ErrClosed
		}
		return nil, false, err
	}
	return out.res, out.hit, nil
}

// SimulateBatch is Simulate through the coalescing batch plane:
// requests grouped on the same (trace, skip) replay in one
// multi-machine kernel pass. An empty groupKey derives one from the
// trace content.
func (s *Service) SimulateBatch(ctx context.Context, m *fsm.Machine, traceBits *bitseq.Bits, skip int, groupKey string) (fsm.SimResult, error) {
	if err := validateSimulate(m, traceBits, skip); err != nil {
		return fsm.SimResult{}, err
	}
	if groupKey == "" {
		groupKey = GroupKeyForTrace(traceBits)
	}
	// skip changes what a pass scores, so it is part of the group key.
	key := groupKey + "|skip=" + strconv.Itoa(skip)
	res, err := s.batch.sim.Submit(ctx, key, simItem{m: m, trace: traceBits, skip: skip})
	if err == batch.ErrClosed {
		err = ErrClosed
	}
	return res, err
}

// BatchStats snapshots the two batchers' counters (design, simulate) —
// the programmatic view of the fsmpredict_batch_* metrics.
func (s *Service) BatchStats() (design, simulate batch.Stats) {
	return s.batch.design.Stats(), s.batch.sim.Stats()
}

// flushDesigns executes one coalesced design group: items are deduped
// by content address, each unique request is submitted to the worker
// pool once, and duplicates share that submission's outcome.
func (s *Service) flushDesigns(groupKey string, items []designItem) []batch.Outcome[designOut] {
	outs := make([]batch.Outcome[designOut], len(items))
	order := make([]cacheKey, 0, len(items))
	dups := make(map[cacheKey][]int, len(items))
	for i, it := range items {
		if _, ok := dups[it.key]; !ok {
			order = append(order, it.key)
		}
		dups[it.key] = append(dups[it.key], i)
	}
	s.batch.designCoalesced.Add(uint64(len(items) - len(order)))
	s.batch.designPasses.Add(uint64(len(order)))

	// Unique requests fan out concurrently; the worker pool, not the
	// flush, bounds actual pipeline parallelism (and sheds overload).
	// The background context matches Design's semantics: a departed
	// waiter does not cancel the shared execution.
	var wg sync.WaitGroup
	for _, k := range order {
		idxs := dups[k]
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			it := items[idxs[0]]
			res, hit, err := s.Design(context.Background(), it.trace, it.opt)
			for _, i := range idxs {
				outs[i] = batch.Outcome[designOut]{Val: designOut{res: res, hit: hit}, Err: err}
			}
		}(idxs)
	}
	wg.Wait()
	return outs
}

// flushSimulations executes one coalesced simulate group: every grouped
// machine with a block table advances through ONE fleet pass over the
// group's trace, with structurally identical machines deduped to a
// single walk; machines over the block-table state bound fall back to
// their own scalar replay.
func (s *Service) flushSimulations(key string, items []simItem) []batch.Outcome[fsm.SimResult] {
	outs := make([]batch.Outcome[fsm.SimResult], len(items))
	tr, skip := items[0].trace, items[0].skip
	tabs := make([]*fsm.BlockTable, 0, len(items))
	idxs := make([]int, 0, len(items))
	for i, it := range items {
		s.met.simulations.Inc()
		if t := fsm.BlockTableFor(it.m); t != nil {
			tabs = append(tabs, t)
			idxs = append(idxs, i)
		} else {
			outs[i].Val = it.m.SimulateBits(tr, skip)
			s.batch.simPasses.Inc()
		}
	}
	if len(tabs) > 0 {
		fl := fsm.FleetOfTables(tabs)
		// One run scan per flush, amortized over every machine in the
		// group — the span kernel then skips each homogeneous stretch
		// once per unique machine instead of walking it byte by byte.
		runs := bitseq.Runs(tr.Words(), tr.Len(), bitseq.DefaultMinRunBytes)
		res := fl.RunSpans(tr.Words(), tr.Len(), skip, runs)
		for k, i := range idxs {
			outs[i].Val = res[k]
		}
		s.batch.simPasses.Inc()
		s.batch.fleetPasses.Inc()
		s.batch.fleetMachines.Add(uint64(fl.Len()))
		s.batch.fleetDeduped.Add(uint64(fl.Deduped()))
		s.batch.fleetBytes.Add(uint64(fl.Len()) * uint64((tr.Len()+7)/8))
	}
	return outs
}
