package service

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/trace"
)

// cacheKey is the content address of a design request: the SHA-256 of
// the canonical trace bytes plus a canonical rendering of the options
// that influence the result. Two requests share a key iff the design
// flow is guaranteed to produce the identical artifact for both.
type cacheKey [sha256.Size]byte

// String returns the key in hex, the form exposed on the wire.
func (k cacheKey) String() string { return fmt.Sprintf("%x", k[:]) }

// requestKey hashes a (trace, options) pair. Options are canonicalized
// first so that an explicit bias threshold of 0.5 and the zero-value
// default address the same entry; StageObserver is observational only
// and is deliberately excluded.
func requestKey(bits *bitseq.Bits, opt core.Options) cacheKey {
	opt = opt.Canonical()
	h := sha256.New()
	h.Write(trace.CanonicalBits(bits))
	// Artifacts is in the key because the response carries the pipeline's
	// intermediate sizes: a direct-construction result, though its machine
	// is identical, must not satisfy a request that asked for them.
	fmt.Fprintf(h, "order=%d bias=%v dc=%v keepUnseen=%t keepStartup=%t artifacts=%t name=%q\n",
		opt.Order, opt.BiasThreshold, opt.DontCareBudget,
		opt.KeepUnseen, opt.KeepStartup, opt.Artifacts, opt.Name)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// designCache is a bounded LRU of finished design results, keyed by
// content address. Results are immutable once inserted, so a cached
// *Result is shared by all readers.
type designCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *Result
}

func newDesignCache(max int) *designCache {
	return &designCache{
		max:   max,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached result for the key, refreshing its recency.
func (c *designCache) get(k cacheKey) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts a result, evicting the least recently used entry when the
// bound is exceeded.
func (c *designCache) put(k cacheKey, res *Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&cacheEntry{key: k, res: res})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached designs.
func (c *designCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
