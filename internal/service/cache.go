package service

import (
	"crypto/sha256"
	"fmt"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/memo"
	"fsmpredict/internal/trace"
)

// cacheKey is the content address of a design request: the SHA-256 of
// the canonical trace bytes plus a canonical rendering of the options
// that influence the result. Two requests share a key iff the design
// flow is guaranteed to produce the identical artifact for both.
type cacheKey [sha256.Size]byte

// String returns the key in hex, the form exposed on the wire.
func (k cacheKey) String() string { return fmt.Sprintf("%x", k[:]) }

// requestKey hashes a (trace, options) pair. Options are canonicalized
// first so that an explicit bias threshold of 0.5 and the zero-value
// default address the same entry; StageObserver is observational only
// and is deliberately excluded.
func requestKey(bits *bitseq.Bits, opt core.Options) cacheKey {
	opt = opt.Canonical()
	h := sha256.New()
	h.Write(trace.CanonicalBits(bits))
	// Artifacts is in the key because the response carries the pipeline's
	// intermediate sizes: a direct-construction result, though its machine
	// is identical, must not satisfy a request that asked for them.
	fmt.Fprintf(h, "order=%d bias=%v dc=%v keepUnseen=%t keepStartup=%t artifacts=%t name=%q\n",
		opt.Order, opt.BiasThreshold, opt.DontCareBudget,
		opt.KeepUnseen, opt.KeepStartup, opt.Artifacts, opt.Name)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// designCache is a bounded LRU of finished design results, keyed by
// content address — a thin wrapper over the shared memo.Cache (the same
// machinery backing the fsm block-table cache) that preserves the
// service's nil-receiver semantics for the caching-disabled mode.
// Results are immutable once inserted, so a cached *Result is shared by
// all readers. Request deduplication stays in the Service's inflight
// map: design execution must flow through the bounded worker pool, not
// memo's caller-side singleflight.
type designCache struct {
	c *memo.Cache[cacheKey, *Result]
}

// resultBytes approximates a cached result's retained size for the
// cache's Bytes stat: the dominant payloads are the canonical machine
// JSON and the VHDL source.
func resultBytes(r *Result) uint64 {
	if r == nil {
		return 0
	}
	return uint64(len(r.Machine) + len(r.VHDL) + len(r.Key))
}

func newDesignCache(max int) *designCache {
	return &designCache{c: memo.New[cacheKey, *Result](max, resultBytes)}
}

// get returns the cached result for the key, refreshing its recency.
func (c *designCache) get(k cacheKey) (*Result, bool) {
	if c == nil {
		return nil, false
	}
	return c.c.Get(k)
}

// put inserts a result, evicting the least recently used entry when the
// bound is exceeded.
func (c *designCache) put(k cacheKey, res *Result) {
	if c == nil {
		return
	}
	c.c.Put(k, res)
}

// clear drops every cached design, keeping statistics (the warm-start
// measurement hook behind Service.DropCaches).
func (c *designCache) clear() {
	if c == nil {
		return
	}
	c.c.Clear()
}

// len reports the number of cached designs.
func (c *designCache) len() int {
	if c == nil {
		return 0
	}
	return c.c.Len()
}

// stats reports the cache's hit/miss/size counters.
func (c *designCache) stats() memo.Stats {
	if c == nil {
		return memo.Stats{}
	}
	return c.c.Stats()
}
