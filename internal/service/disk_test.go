package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/disktier"
	"fsmpredict/internal/tracestore"
)

// TestDesignDiskTier proves the design warm-start path: a service
// fills the disk tier, a second service (fresh process stand-in, cold
// memory cache) serves the identical result from disk without running
// the pipeline, and a corrupted artifact falls back to a clean run.
func TestDesignDiskTier(t *testing.T) {
	dir := t.TempDir()
	disk, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	warm := New(Config{Workers: 2, Disk: disk, Traces: tracestore.NewStore()})
	want, hit, err := warm.DesignString(context.Background(), paperTrace, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request reported as hit")
	}
	warm.Close()
	if st := disk.Stats(); st.Entries == 0 {
		t.Fatal("design artifact not published to disk")
	}

	cold := New(Config{Workers: 2, Disk: disk, Traces: tracestore.NewStore()})
	defer cold.Close()
	ran := false
	inner := cold.designFn
	cold.designFn = func(b *bitseq.Bits, o core.Options) (*core.Design, error) {
		ran = true
		return inner(b, o)
	}
	got, hit, err := cold.DesignString(context.Background(), paperTrace, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("disk-tier serve not reported as hit")
	}
	if ran {
		t.Fatal("pipeline ran despite a warm disk tier")
	}
	if got.Key != want.Key || !bytes.Equal(got.Machine, want.Machine) ||
		got.VHDL != want.VHDL || got.AreaGE != want.AreaGE || got.States != want.States {
		t.Fatal("disk-tier result differs from the original")
	}
	if cold.met.cacheTierHits.Value() != 1 {
		t.Fatalf("tier hits = %d, want 1", cold.met.cacheTierHits.Value())
	}
	// Once installed in the memory tier, repeats hit there.
	if _, hit, _ := cold.DesignString(context.Background(), paperTrace, figure1Options()); !hit {
		t.Fatal("second request missed the memory tier")
	}
	if n := cold.met.cacheTierHits.Value(); n != 1 {
		t.Fatalf("tier hits after memory hit = %d, want still 1", n)
	}

	// DropCaches exposes the disk tier again.
	cold.DropCaches()
	if _, hit, _ := cold.DesignString(context.Background(), paperTrace, figure1Options()); !hit {
		t.Fatal("post-DropCaches request missed both tiers")
	}
	if n := cold.met.cacheTierHits.Value(); n != 2 {
		t.Fatalf("tier hits after DropCaches = %d, want 2", n)
	}

	// Corrupt the design artifact: a cold service must re-run the
	// pipeline and produce the identical result.
	ents, err := os.ReadDir(filepath.Join(dir, "design"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("design artifacts: %v %d", err, len(ents))
	}
	p := filepath.Join(dir, "design", ents[0].Name())
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x08
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	hurt := New(Config{Workers: 2, Disk: disk, Traces: tracestore.NewStore()})
	defer hurt.Close()
	redo, hit, err := hurt.DesignString(context.Background(), paperTrace, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("corrupted artifact served as a hit")
	}
	if !bytes.Equal(redo.Machine, want.Machine) || redo.VHDL != want.VHDL {
		t.Fatal("recomputed result differs from the original")
	}
	if st := disk.Stats(); st.Corrupt == 0 {
		t.Fatal("corruption not counted")
	}
}

// TestCacheEndpointsGated checks /v1/cache is absent by default and
// served only with CacheServe.
func TestCacheEndpointsGated(t *testing.T) {
	dir := t.TempDir()
	disk, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	disk.Put("design", 1, "aa", []byte("payload"))

	off := New(Config{Workers: 1, Disk: disk, Traces: tracestore.NewStore()})
	defer off.Close()
	srvOff := httptest.NewServer(NewHandler(off))
	defer srvOff.Close()
	resp, err := http.Get(srvOff.URL + "/v1/cache/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("cache endpoints served without CacheServe")
	}

	on := New(Config{Workers: 1, Disk: disk, Traces: tracestore.NewStore(), CacheServe: true})
	defer on.Close()
	srvOn := httptest.NewServer(NewHandler(on))
	defer srvOn.Close()
	resp, err = http.Get(srvOn.URL + "/v1/cache/manifest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest status = %d", resp.StatusCode)
	}
	var m []disktier.ManifestEntry
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[0].Kind != "design" || m[0].Key != "aa" {
		t.Fatalf("manifest = %+v", m)
	}
}

// TestDiskMetricsExposed checks the diskcache counters and the tier
// ratio gauges appear on /metrics when a disk tier is configured.
func TestDiskMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	disk, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Disk: disk, Traces: tracestore.NewStore()})
	defer s.Close()
	if _, _, err := s.DesignString(context.Background(), paperTrace, figure1Options()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"fsmpredict_diskcache_hits_total",
		"fsmpredict_diskcache_misses_total",
		"fsmpredict_diskcache_bytes_total",
		"fsmpredict_diskcache_evictions_total",
		"fsmpredict_diskcache_corrupt_total",
		"fsmpredict_design_cache_tier_hits_total",
		"fsmpredict_design_cache_l1_hit_permille",
		"fsmpredict_design_cache_l2_hit_permille",
		"fsmpredict_tracestore_tier_hits",
		"fsmpredict_blocktable_tier_hits",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("metric %s missing from exposition:\n%s", name, out)
		}
	}
}
