package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestHTTPDesignAndSimulate(t *testing.T) {
	_, srv := newTestServer(t)

	resp := postJSON(t, srv.URL+"/v1/design", DesignRequest{
		Trace:   paperTrace,
		Options: OptionsJSON{Order: 2, Name: "fig1"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("design status = %d", resp.StatusCode)
	}
	design := decodeBody[DesignResponse](t, resp)
	if design.States != 3 {
		t.Errorf("states = %d, want 3", design.States)
	}
	if design.CacheHit {
		t.Error("first design reported cache_hit")
	}
	if !strings.Contains(design.VHDL, "entity fig1 is") {
		t.Errorf("VHDL missing named entity:\n%s", design.VHDL)
	}
	if len(design.Key) != 64 {
		t.Errorf("key %q is not a hex SHA-256", design.Key)
	}

	// Repeat: cache hit with the same key and machine bytes.
	repeat := decodeBody[DesignResponse](t, postJSON(t, srv.URL+"/v1/design", DesignRequest{
		Trace:   paperTrace,
		Options: OptionsJSON{Order: 2, Name: "fig1"},
	}))
	if !repeat.CacheHit || repeat.Key != design.Key || !bytes.Equal(repeat.Machine, design.Machine) {
		t.Errorf("repeat design not served identically from cache")
	}

	// Feed the designed machine back through /v1/simulate.
	var machine json.RawMessage = design.Machine
	resp = postJSON(t, srv.URL+"/v1/simulate", map[string]any{
		"machine": machine, "trace": paperTrace, "skip": 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status = %d", resp.StatusCode)
	}
	sim := decodeBody[SimulateResponse](t, resp)
	if sim.Total != 22 || sim.Correct <= sim.Total/2 {
		t.Errorf("simulate = %+v", sim)
	}
	if want := sim.Accuracy + sim.MissRate; want < 0.999 || want > 1.001 {
		t.Errorf("accuracy %v + miss %v != 1", sim.Accuracy, sim.MissRate)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestServer(t)
	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"design bad json", "/v1/design", `{`, http.StatusBadRequest},
		{"design trailing garbage", "/v1/design", `{"trace":"0101","options":{"order":2}} junk`, http.StatusBadRequest},
		{"design bad trace", "/v1/design", `{"trace":"01012","options":{"order":2}}`, http.StatusBadRequest},
		{"design bad order", "/v1/design", `{"trace":"0101","options":{"order":99}}`, http.StatusBadRequest},
		{"simulate invalid machine", "/v1/simulate", `{"machine":{"start":0,"states":[[0,0,9]]},"trace":"01"}`, http.StatusBadRequest},
		{"simulate missing machine", "/v1/simulate", `{"trace":"01"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+c.path, "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != c.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, c.status)
			}
			e := decodeBody[struct {
				Error string `json:"error"`
			}](t, resp)
			if e.Error == "" {
				t.Error("error response has no error field")
			}
		})
	}

	// Wrong methods are rejected by the route patterns.
	resp, err := http.Get(srv.URL + "/v1/design")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/design status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPOverloadMapsTo503(t *testing.T) {
	g := &gateDesign{release: make(chan struct{})}
	var once sync.Once
	releaseGate := func() { once.Do(func() { close(g.release) }) }
	defer releaseGate()
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.designFn = g.fn
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})

	// Saturate: one running, one queued, then expect a 503.
	status := make(chan int, 3)
	post := func(i int) {
		go func() {
			resp := postJSON(t, srv.URL+"/v1/design", DesignRequest{
				Trace:   fmt.Sprintf("%08b 1111 0000 1111", i+1),
				Options: OptionsJSON{Order: 2},
			})
			resp.Body.Close()
			status <- resp.StatusCode
		}()
	}
	post(0)
	waitFor(t, "first design to start", func() bool { return g.count() >= 1 })
	post(1)
	waitFor(t, "second design to queue", func() bool { return s.met.designRequests.Value() >= 2 })
	time.Sleep(20 * time.Millisecond)
	post(2)
	if got := <-status; got != http.StatusServiceUnavailable {
		t.Errorf("saturated design status = %d, want 503", got)
	}
	releaseGate()
	for i := 0; i < 2; i++ {
		if got := <-status; got != http.StatusOK {
			t.Errorf("drained design status = %d, want 200", got)
		}
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHTTPSearchModes drives POST /v1/search through both evaluator
// modes on the same trace and seed: the adaptive racer must return the
// exact evaluator's champion and miss rate (the endpoint-level face of
// the gasearch differential contract), and the fidelity counters must
// land on /metrics.
func TestHTTPSearchModes(t *testing.T) {
	_, srv := newTestServer(t)

	trace := strings.Repeat("1101", 1024)
	search := func(mode string) SearchResponse {
		t.Helper()
		resp := postJSON(t, srv.URL+"/v1/search", SearchRequest{
			Trace: trace,
			Options: SearchOptionsJSON{
				States: 4, Population: 16, Generations: 4, Seed: 7, Mode: mode,
			},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search mode %q status = %d", mode, resp.StatusCode)
		}
		return decodeBody[SearchResponse](t, resp)
	}
	exact := search("exact")
	adaptive := search("adaptive")
	if exact.MissRate != adaptive.MissRate {
		t.Errorf("adaptive miss rate %v != exact %v", adaptive.MissRate, exact.MissRate)
	}
	ej, _ := json.Marshal(exact.Machine)
	aj, _ := json.Marshal(adaptive.Machine)
	if string(ej) != string(aj) {
		t.Errorf("adaptive champion differs from exact:\n%s\n%s", aj, ej)
	}
	if exact.States != 4 || adaptive.States != 4 {
		t.Errorf("champion states = %d/%d, want 4", exact.States, adaptive.States)
	}

	resp := postJSON(t, srv.URL+"/v1/search", SearchRequest{
		Trace:   trace,
		Options: SearchOptionsJSON{States: 4, Mode: "psychic"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown mode status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"fsmpredict_search_requests_total 2",
		"fsmpredict_search_fitness_hits_total",
		"fsmpredict_search_rung_evals_total",
		"fsmpredict_search_pruned_total",
		"fsmpredict_search_escalated_total",
		"fsmpredict_search_memo_bytes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	postJSON(t, srv.URL+"/v1/design", DesignRequest{Trace: paperTrace, Options: OptionsJSON{Order: 2}}).Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"fsmpredict_design_requests_total 1",
		"fsmpredict_designs_completed_total 1",
		"fsmpredict_design_cache_misses_total 1",
		"fsmpredict_design_seconds_count 1",
		"fsmpredict_stage_direct_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}
