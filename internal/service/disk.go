package service

import (
	"encoding/json"

	"fsmpredict/internal/disktier"
	"fsmpredict/internal/fsm"
)

// The design cache's disk tier. A Result is already content-addressed
// (Key is the hex SHA-256 of the request) and wire-encoded as JSON, so
// the artifact is simply that encoding under the key's own address; a
// loaded artifact is accepted only if it decodes, names the requested
// key, and carries a machine that validates — the same canonical JSON
// the design pipeline would emit, so a disk hit is byte-identical to a
// recompute for every field the pipeline determines (Stats timings are
// those of the original run, which is the point: they describe the run
// that produced the artifact).

const (
	designKind    = "design"
	designVersion = 1
)

// diskLoadDesign consults the disk tier for a finished design. Any
// decode failure, key mismatch, or invalid machine reads as a miss and
// the pipeline runs.
func (s *Service) diskLoadDesign(key cacheKey) *Result {
	blob, ok := s.disk.Get(designKind, designVersion, key.String())
	if !ok {
		return nil
	}
	defer blob.Close()
	var res Result
	if err := json.Unmarshal(blob.Data, &res); err != nil {
		return nil
	}
	if res.Key != key.String() {
		return nil
	}
	var m fsm.Machine
	if err := json.Unmarshal(res.Machine, &m); err != nil {
		return nil
	}
	if m.Validate() != nil || m.NumStates() != res.States {
		return nil
	}
	return &res
}

// diskStoreDesign publishes a finished design to the disk tier.
func (s *Service) diskStoreDesign(key cacheKey, res *Result) {
	enc, err := json.Marshal(res)
	if err != nil {
		return
	}
	s.disk.Put(designKind, designVersion, key.String(), enc)
}

// DropCaches clears every in-process cache tier the service reads —
// the design-result cache, the trace store, and the process-wide
// block-table cache — while keeping statistics and any disk tier
// attached beneath them. It is the warm-start measurement primitive:
// after DropCaches, the next requests run against a cold memory tier
// with only the disk tier (if configured) warm.
func (s *Service) DropCaches() {
	s.mu.Lock()
	s.cache.clear()
	s.mu.Unlock()
	s.traces.Clear()
	fsm.ResetBlockCache()
}

// Disk returns the disk store configured beneath the service's caches,
// or nil.
func (s *Service) Disk() *disktier.Store { return s.disk }

// registerDiskMetrics exposes the disk store's counters on the
// service's registry.
func registerDiskMetrics(reg *Metrics, d *disktier.Store) {
	reg.Gauge("fsmpredict_diskcache_hits_total", func() uint64 { return d.Stats().Hits })
	reg.Gauge("fsmpredict_diskcache_misses_total", func() uint64 { return d.Stats().Misses })
	reg.Gauge("fsmpredict_diskcache_bytes_total", func() uint64 { return uint64(d.Stats().Bytes) })
	reg.Gauge("fsmpredict_diskcache_evictions_total", func() uint64 { return d.Stats().Evictions })
	reg.Gauge("fsmpredict_diskcache_corrupt_total", func() uint64 { return d.Stats().Corrupt })
	reg.Gauge("fsmpredict_diskcache_peer_pulled_total", func() uint64 { return d.Stats().PeerPulled })
	reg.Gauge("fsmpredict_diskcache_entries", func() uint64 { return uint64(d.Len()) })
}

// permille renders part/whole in thousandths, the integer-gauge form of
// a hit ratio (the registry's gauges are uint64-valued).
func permille(part, whole uint64) uint64 {
	if whole == 0 {
		return 0
	}
	return part * 1000 / whole
}
