// Package service wraps the §4 design flow (internal/core) in a
// concurrent serving layer: a content-addressed result cache, request
// deduplication, a bounded worker pool with load shedding, and a small
// metrics registry. cmd/fsmserved exposes it over HTTP; the facade
// package re-exports it as fsmpredict.NewService.
//
// The paper reports that generating all FSM predictors for one program
// takes 20 seconds to 2 minutes (§5) — seconds-scale, pure, and fully
// deterministic given (trace, options). That profile is exactly what a
// serving layer exploits: identical requests are served from cache or
// coalesced into one pipeline execution, and distinct requests fan out
// across cores without unbounded queueing.
package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge exposes a value computed at exposition time. Unlike a Counter
// it holds no state of its own: the callback is invoked on every read,
// so the gauge always reflects the live value of whatever it observes
// (a cache size, a store's byte count) without the owner having to push
// updates into the registry.
type Gauge struct {
	fn func() uint64
}

// Value reads the gauge by invoking its callback.
func (g *Gauge) Value() uint64 { return g.fn() }

// defaultBuckets spans the design-latency range the paper reports:
// microseconds for cache-adjacent work up to minutes for deep orders.
var defaultBuckets = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
	time.Minute,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Buckets are cumulative at exposition time, Prometheus style.
type Histogram struct {
	bounds  []time.Duration
	buckets []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// defaultSizeBuckets span the coalescing group sizes the batch plane
// produces: singletons up to the largest configurable flush.
var defaultSizeBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// SizeHistogram is the count-valued sibling of Histogram: fixed
// power-of-two buckets over dimensionless sizes (flush group sizes,
// queue lengths) instead of durations. Buckets are cumulative at
// exposition time, Prometheus style. Safe for concurrent use.
type SizeHistogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Uint64
	sum     atomic.Uint64
}

func newSizeHistogram(bounds []uint64) *SizeHistogram {
	return &SizeHistogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one size.
func (h *SizeHistogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *SizeHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed sizes.
func (h *SizeHistogram) Sum() uint64 { return h.sum.Load() }

// Metrics is a registry of named counters and histograms. Lookups
// create-on-first-use; the returned pointers may be retained and updated
// with atomic cost only. The zero value is not usable; call NewMetrics.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	sizeHists  map[string]*SizeHistogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		sizeHists:  map[string]*SizeHistogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge registers a callback-backed gauge under the given name,
// replacing any previous registration, and returns it. The callback is
// invoked on every exposition and must be safe for concurrent use.
func (m *Metrics) Gauge(name string, fn func() uint64) *Gauge {
	g := &Gauge{fn: fn}
	m.mu.Lock()
	m.gauges[name] = g
	m.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it with the default
// latency buckets if needed.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.histograms[name]
	if h == nil {
		h = newHistogram(defaultBuckets)
		m.histograms[name] = h
	}
	return h
}

// SizeHistogram returns the named size histogram, creating it with the
// default power-of-two buckets if needed.
func (m *Metrics) SizeHistogram(name string) *SizeHistogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.sizeHists[name]
	if h == nil {
		h = newSizeHistogram(defaultSizeBuckets)
		m.sizeHists[name] = h
	}
	return h
}

// WriteTo renders the registry in the Prometheus text exposition format
// (counters and gauges as "<name> <value>", histograms as cumulative
// _bucket/_sum/_count series), with names in sorted order within each
// group so output is deterministic. Gauge callbacks run outside the
// registry lock so they may take their own locks freely.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	counterNames := make([]string, 0, len(m.counters))
	for name := range m.counters {
		counterNames = append(counterNames, name)
	}
	gaugeNames := make([]string, 0, len(m.gauges))
	for name := range m.gauges {
		gaugeNames = append(gaugeNames, name)
	}
	histNames := make([]string, 0, len(m.histograms))
	for name := range m.histograms {
		histNames = append(histNames, name)
	}
	sizeNames := make([]string, 0, len(m.sizeHists))
	for name := range m.sizeHists {
		sizeNames = append(sizeNames, name)
	}
	sort.Strings(counterNames)
	sort.Strings(gaugeNames)
	sort.Strings(histNames)
	sort.Strings(sizeNames)
	counters := make([]*Counter, len(counterNames))
	for i, name := range counterNames {
		counters[i] = m.counters[name]
	}
	gauges := make([]*Gauge, len(gaugeNames))
	for i, name := range gaugeNames {
		gauges[i] = m.gauges[name]
	}
	hists := make([]*Histogram, len(histNames))
	for i, name := range histNames {
		hists[i] = m.histograms[name]
	}
	sizeHists := make([]*SizeHistogram, len(sizeNames))
	for i, name := range sizeNames {
		sizeHists[i] = m.sizeHists[name]
	}
	m.mu.Unlock()

	var total int64
	for i, name := range counterNames {
		n, err := fmt.Fprintf(w, "%s %d\n", name, counters[i].Value())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for i, name := range gaugeNames {
		n, err := fmt.Fprintf(w, "%s %d\n", name, gauges[i].Value())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for i, name := range histNames {
		h := hists[i]
		var cum uint64
		for b, bound := range h.bounds {
			cum += h.buckets[b].Load()
			n, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatSeconds(bound.Seconds()), cum)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		n, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, formatSeconds(h.Sum().Seconds()), name, h.Count())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for i, name := range sizeNames {
		h := sizeHists[i]
		var cum uint64
		for b, bound := range h.bounds {
			cum += h.buckets[b].Load()
			n, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		n, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, cum, name, h.Sum(), name, h.Count())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// formatSeconds renders a seconds value compactly without exponent
// surprises for the bucket bounds in use.
func formatSeconds(s float64) string {
	if s == math.Trunc(s) {
		return fmt.Sprintf("%.0f", s)
	}
	return fmt.Sprintf("%g", s)
}
