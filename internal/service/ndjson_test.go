package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
)

// mustBits parses a trace string or fails the test.
func mustBits(t *testing.T, s string) *bitseq.Bits {
	t.Helper()
	bits, err := bitseq.FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return bits
}

// batchTestServer starts an HTTP server over a fresh service, handing
// back the base URL and tearing both down with the test.
func batchTestServer(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv.URL
}

// postNDJSON sends body to path and decodes every response line into a
// map keyed by the line's index.
func postNDJSON(t *testing.T, url, path, body string) map[int]BatchDesignLine {
	t.Helper()
	resp, err := http.Post(url+path, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	out := make(map[int]BatchDesignLine)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 8<<20)
	for sc.Scan() {
		var line BatchDesignLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		if _, dup := out[line.Index]; dup {
			t.Fatalf("index %d answered twice", line.Index)
		}
		out[line.Index] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchDesignNDJSON drives the happy path end to end: request
// lines with client ids come back correlated by index and id, with
// results matching the unary endpoint.
func TestBatchDesignNDJSON(t *testing.T) {
	s, url := batchTestServer(t, Config{Workers: 2, BatchMaxWait: time.Millisecond})
	var body bytes.Buffer
	const n = 5
	for i := 0; i < n; i++ {
		fmt.Fprintf(&body, `{"id":"req-%d","trace":%q,"options":{"order":2}}`+"\n", i, paperTrace)
	}
	lines := postNDJSON(t, url, "/v1/batch/design", body.String())
	if len(lines) != n {
		t.Fatalf("got %d response lines, want %d", len(lines), n)
	}
	bits := mustBits(t, paperTrace)
	want, _, err := s.Design(context.Background(), bits, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		line, ok := lines[i]
		if !ok {
			t.Fatalf("no response for index %d", i)
		}
		if line.ID != fmt.Sprintf("req-%d", i) {
			t.Errorf("index %d: id = %q", i, line.ID)
		}
		if line.Error != "" {
			t.Fatalf("index %d: unexpected error %q", i, line.Error)
		}
		if line.Result == nil || line.Result.States != want.States {
			t.Errorf("index %d: result %+v, want %d states", i, line.Result, want.States)
		}
	}
}

// TestBatchNDJSONMalformedLineIsolated puts a malformed JSON line and a
// semantically invalid line in the middle of valid ones: each failure
// stays on its own line and the rest of the stream still succeeds.
func TestBatchNDJSONMalformedLineIsolated(t *testing.T) {
	_, url := batchTestServer(t, Config{Workers: 2, BatchMaxWait: time.Millisecond})
	good := fmt.Sprintf(`{"trace":%q,"options":{"order":2}}`, paperTrace)
	body := strings.Join([]string{
		good,
		`{"trace": not-json`,
		"", // blank line: ignored, no index
		good + ` trailing-garbage`,
		`{"trace":"0011","workload":{"program":"gsm","variant":"train"},"options":{"order":2}}`,
		good,
	}, "\n") + "\n"
	lines := postNDJSON(t, url, "/v1/batch/design", body)
	if len(lines) != 5 {
		t.Fatalf("got %d response lines, want 5 (blank line consumes no index)", len(lines))
	}
	for _, i := range []int{0, 4} {
		if lines[i].Error != "" {
			t.Errorf("index %d: unexpected error %q", i, lines[i].Error)
		}
	}
	for _, i := range []int{1, 2, 3} {
		if lines[i].Error == "" {
			t.Errorf("index %d: expected a per-line error", i)
		}
		if lines[i].Result != nil {
			t.Errorf("index %d: error line carries a result", i)
		}
	}
	if !strings.Contains(lines[3].Error, "both an inline trace and a workload reference") {
		t.Errorf("index 3 error = %q", lines[3].Error)
	}
}

// TestBatchNDJSONOversizedLine sends one line past the per-line bound
// between two valid lines: the oversized line is rejected in-band and
// the reader recovers at the next newline.
func TestBatchNDJSONOversizedLine(t *testing.T) {
	_, url := batchTestServer(t, Config{Workers: 2, BatchMaxWait: time.Millisecond})
	good := fmt.Sprintf(`{"id":"ok","trace":%q,"options":{"order":2}}`, paperTrace)
	huge := `{"trace":"` + strings.Repeat("0", maxNDJSONLineBytes) + `"}`
	body := good + "\n" + huge + "\n" + good + "\n"
	lines := postNDJSON(t, url, "/v1/batch/design", body)
	if len(lines) != 3 {
		t.Fatalf("got %d response lines, want 3", len(lines))
	}
	if lines[0].Error != "" || lines[2].Error != "" {
		t.Errorf("valid neighbours failed: %q / %q", lines[0].Error, lines[2].Error)
	}
	if !strings.Contains(lines[1].Error, "exceeds") {
		t.Errorf("oversized line error = %q, want size rejection", lines[1].Error)
	}
}

// TestBatchSimulateNDJSON round-trips a designed machine through the
// batch simulate endpoint and checks the accuracy matches the unary
// path.
func TestBatchSimulateNDJSON(t *testing.T) {
	s, url := batchTestServer(t, Config{Workers: 2, BatchMaxWait: time.Millisecond})
	bits := mustBits(t, paperTrace)
	res, _, err := s.Design(context.Background(), bits, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	fmt.Fprintf(&body, `{"id":"s0","machine":%s,"trace":%q}`+"\n", res.Machine, paperTrace)
	fmt.Fprintf(&body, `{"id":"s1","machine":%s,"trace":%q,"skip":3}`+"\n", res.Machine, paperTrace)
	resp, err := http.Post(url+"/v1/batch/simulate", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := make(map[int]BatchSimulateLine)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line BatchSimulateLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		got[line.Index] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d lines, want 2", len(got))
	}
	var m fsm.Machine
	if err := json.Unmarshal(res.Machine, &m); err != nil {
		t.Fatal(err)
	}
	for i, skip := range []int{0, 3} {
		line := got[i]
		if line.Error != "" {
			t.Fatalf("index %d: %s", i, line.Error)
		}
		want, err := s.Simulate(&m, bits, skip)
		if err != nil {
			t.Fatal(err)
		}
		if line.Result.Correct != want.Correct || line.Result.Total != want.Total {
			t.Errorf("index %d: %+v, want %+v", i, line.Result, want)
		}
	}
}

// TestBatchNDJSONConcurrentClients is the race-detector stress: many
// clients stream batch requests over distinct traces concurrently, all
// coalescing through one service.
func TestBatchNDJSONConcurrentClients(t *testing.T) {
	_, url := batchTestServer(t, Config{Workers: 4, BatchMaxSize: 16, BatchMaxWait: 500 * time.Microsecond})
	const (
		clients = 8
		perReq  = 24
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var body bytes.Buffer
			for i := 0; i < perReq; i++ {
				// A few distinct traces per client so groups both coalesce
				// and interleave across connections.
				tr := fmt.Sprintf("%016b", 0b1011001110001011+(i%3)+c)
				fmt.Fprintf(&body, `{"id":"c%d-%d","trace":%q,"options":{"order":2}}`+"\n", c, i, tr)
			}
			resp, err := http.Post(url+"/v1/batch/design", "application/x-ndjson", &body)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			seen := 0
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var line BatchDesignLine
				if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
					errs <- err
					return
				}
				if line.Error != "" {
					errs <- fmt.Errorf("client %d index %d: %s", c, line.Index, line.Error)
					return
				}
				if wantID := fmt.Sprintf("c%d-%d", c, line.Index); line.ID != wantID {
					errs <- fmt.Errorf("client %d: id %q on index %d, want %q", c, line.ID, line.Index, wantID)
					return
				}
				seen++
			}
			if err := sc.Err(); err != nil {
				errs <- err
				return
			}
			if seen != perReq {
				errs <- fmt.Errorf("client %d: %d responses, want %d", c, seen, perReq)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
