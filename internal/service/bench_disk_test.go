package service

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fsmpredict/internal/core"
	"fsmpredict/internal/disktier"
	"fsmpredict/internal/tracestore"
)

// benchTraces builds a deterministic set of design inputs: correlated
// bit traces long enough that the design pipeline (model, cover,
// minimize, synthesize) dominates over request plumbing.
func benchTraces(n int) []string {
	rng := rand.New(rand.NewSource(42))
	traces := make([]string, n)
	for i := range traces {
		var sb strings.Builder
		lag := 2 + i%5
		bits := make([]byte, 8192)
		for j := range bits {
			if j < lag {
				bits[j] = byte(rng.Intn(2))
			} else if rng.Intn(10) == 0 {
				bits[j] = 1 - bits[j-lag]
			} else {
				bits[j] = bits[j-lag]
			}
			sb.WriteByte('0' + bits[j])
		}
		traces[i] = sb.String()
	}
	return traces
}

// BenchmarkWarmStartDesign compares a cold design pass (full pipeline
// every time) against a disk-warm pass (artifacts served from the
// persistent tier after the in-memory caches are dropped). The ratio of
// the two sub-benchmarks is the warm-start speedup the disk tier buys a
// freshly started process.
func BenchmarkWarmStartDesign(b *testing.B) {
	traces := benchTraces(16)
	// Order 8 makes the pipeline do real work (a 256-history model,
	// cover extraction, minimization, synthesis); the artifact it
	// produces stays a few KiB of JSON, which is the asymmetry the
	// disk tier exploits.
	opt := core.Options{Order: 8}
	drive := func(b *testing.B, s *Service, wantHit bool) {
		b.Helper()
		for _, tr := range traces {
			res, hit, err := s.DesignString(context.Background(), tr, opt)
			if err != nil {
				b.Fatal(err)
			}
			if res.States == 0 {
				b.Fatal("empty design")
			}
			if hit != wantHit {
				b.Fatalf("hit = %v, want %v", hit, wantHit)
			}
		}
	}

	b.Run("cold", func(b *testing.B) {
		s := New(Config{Workers: 1, Traces: tracestore.NewStore()})
		defer s.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.DropCaches()
			drive(b, s, false)
		}
		b.ReportMetric(float64(len(traces)*b.N)/b.Elapsed().Seconds(), "designs/s")
	})

	b.Run("warm", func(b *testing.B) {
		disk, err := disktier.Open(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		s := New(Config{Workers: 1, Disk: disk, Traces: tracestore.NewStore()})
		defer s.Close()
		drive(b, s, false) // fill the disk tier
		// Artifacts publish after the response (off the latency path);
		// wait for the last ones to land before timing the warm pass.
		for i := 0; disk.Len() < len(traces) && i < 5000; i++ {
			time.Sleep(time.Millisecond)
		}
		if disk.Len() < len(traces) {
			b.Fatalf("disk tier has %d artifacts, want %d", disk.Len(), len(traces))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.DropCaches()
			drive(b, s, true)
		}
		b.StopTimer()
		if n := s.met.cacheTierHits.Value(); n < uint64(len(traces)*b.N) {
			b.Fatalf("tier hits = %d, want >= %d", n, len(traces)*b.N)
		}
		b.ReportMetric(float64(len(traces)*b.N)/b.Elapsed().Seconds(), "designs/s")
	})
}
