package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// maxNDJSONLineBytes bounds one request line on the batch endpoints. A
// longer line is rejected with a per-line error and skipped; the stream
// itself survives, so one oversized request cannot sink its neighbours.
const maxNDJSONLineBytes = 4 << 20

// maxInflightLines bounds how many request lines one batch connection
// may have in flight at once. Beyond this the reader blocks, which
// backpressures the client through TCP rather than buffering an
// unbounded number of parsed requests.
const maxInflightLines = 256

// BatchDesignItem is one request line of POST /v1/batch/design: a
// DesignRequest plus an optional client correlation id echoed back on
// the matching response line.
type BatchDesignItem struct {
	ID string `json:"id,omitempty"`
	DesignRequest
}

// BatchDesignLine is one response line of POST /v1/batch/design.
// Exactly one of Result and Error is set. Index is the zero-based
// position of the request line this answers; responses may arrive out
// of order, so clients must correlate by Index (or their own ID), not
// by arrival order.
type BatchDesignLine struct {
	Index    int     `json:"index"`
	ID       string  `json:"id,omitempty"`
	Result   *Result `json:"result,omitempty"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// BatchSimulateItem is one request line of POST /v1/batch/simulate.
type BatchSimulateItem struct {
	ID string `json:"id,omitempty"`
	SimulateRequest
}

// BatchSimulateLine is one response line of POST /v1/batch/simulate,
// with the same correlation contract as BatchDesignLine.
type BatchSimulateLine struct {
	Index  int               `json:"index"`
	ID     string            `json:"id,omitempty"`
	Result *SimulateResponse `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// lineFunc turns one request line into its response line. A non-nil
// lineErr means the framing layer already rejected the line (too long,
// unreadable) and line is absent; the handler must still produce an
// in-band response so the client's index bookkeeping stays aligned.
type lineFunc func(ctx context.Context, index int, line []byte, lineErr error) any

// ndjsonHandler runs an NDJSON request/response stream: each request
// line is handed to process concurrently (bounded by maxInflightLines)
// and every line gets exactly one response line, written as soon as it
// is ready. Blank lines are ignored and do not consume an index.
func ndjsonHandler(process lineFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")

		// One writer goroutine owns the ResponseWriter; workers hand it
		// finished response lines. Encode errors mean the client went
		// away — keep draining so workers never block forever.
		results := make(chan any, maxInflightLines)
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			enc := json.NewEncoder(w)
			flusher, _ := w.(http.Flusher)
			broken := false
			for env := range results {
				if broken {
					continue
				}
				if err := enc.Encode(env); err != nil {
					broken = true
					continue
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
		}()

		br := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, maxBodyBytes), 64<<10)
		sem := make(chan struct{}, maxInflightLines)
		var wg sync.WaitGroup
		index := 0
		for {
			line, tooLong, err := readNDJSONLine(br, maxNDJSONLineBytes)
			if !tooLong && len(bytes.TrimSpace(line)) == 0 {
				if err != nil {
					break
				}
				continue
			}
			i := index
			index++
			var lineErr error
			if tooLong {
				lineErr = fmt.Errorf("%w: request line exceeds %d bytes", ErrInvalid, maxNDJSONLineBytes)
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, line []byte, lineErr error) {
				defer wg.Done()
				defer func() { <-sem }()
				results <- process(r.Context(), i, line, lineErr)
			}(i, line, lineErr)
			if err != nil {
				break
			}
		}
		wg.Wait()
		close(results)
		<-writerDone
	}
}

// readNDJSONLine reads one newline-terminated line of at most max
// bytes. When the line is longer it is consumed and discarded in full
// and tooLong is true, leaving the reader positioned at the next line.
// A final unterminated line is returned with err == io.EOF.
func readNDJSONLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		if !tooLong {
			buf = append(buf, chunk...)
			if len(buf) > max {
				tooLong = true
				buf = nil
			}
		}
		switch err {
		case nil:
			return bytes.TrimSuffix(buf, []byte("\n")), tooLong, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return buf, tooLong, err
		}
	}
}

// processBatchDesign is the per-line worker of /v1/batch/design: it
// parses the line, resolves the trace and its coalescing group, and
// submits to the batch plane, folding any failure into the line's own
// response instead of the stream's.
func (s *Service) processBatchDesign(ctx context.Context, index int, line []byte, lineErr error) any {
	out := BatchDesignLine{Index: index}
	if lineErr != nil {
		out.Error = lineErr.Error()
		return out
	}
	var item BatchDesignItem
	if err := strictUnmarshal(line, &item); err != nil {
		out.Error = fmt.Sprintf("invalid request: %v", err)
		return out
	}
	out.ID = item.ID
	bits, group, err := requestTraceGrouped(s, item.Trace, item.Workload)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	res, hit, err := s.DesignBatch(ctx, bits, item.Options.Options(), group)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Result, out.CacheHit = res, hit
	return out
}

// processBatchSimulate is the per-line worker of /v1/batch/simulate.
func (s *Service) processBatchSimulate(ctx context.Context, index int, line []byte, lineErr error) any {
	out := BatchSimulateLine{Index: index}
	if lineErr != nil {
		out.Error = lineErr.Error()
		return out
	}
	var item BatchSimulateItem
	if err := strictUnmarshal(line, &item); err != nil {
		out.Error = fmt.Sprintf("invalid request: %v", err)
		return out
	}
	out.ID = item.ID
	bits, group, err := requestTraceGrouped(s, item.Trace, item.Workload)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	res, err := s.SimulateBatch(ctx, item.Machine, bits, item.Skip, group)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Result = &SimulateResponse{
		Total:    res.Total,
		Correct:  res.Correct,
		Accuracy: res.Accuracy(),
		MissRate: res.MissRate(),
	}
	return out
}

// strictUnmarshal decodes one JSON document, rejecting trailing
// garbage on the line.
func strictUnmarshal(line []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}
