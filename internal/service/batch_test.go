package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
)

func TestDesignBatchMatchesDesign(t *testing.T) {
	s := New(Config{Workers: 2, BatchMaxWait: time.Millisecond})
	defer s.Close()
	bits, err := bitseq.FromString(paperTrace)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := s.Design(context.Background(), bits, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := s.DesignBatch(context.Background(), bits, figure1Options(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("batched repeat of a cached design missed the cache")
	}
	if !bytes.Equal(want.Machine, got.Machine) || want.Key != got.Key {
		t.Errorf("batched result differs from unary result")
	}
}

func TestDesignBatchValidatesBeforeQueueing(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, _, err := s.DesignBatch(context.Background(), &bitseq.Bits{}, figure1Options(), ""); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty trace: err = %v, want ErrInvalid", err)
	}
	st, _ := s.BatchStats()
	if st.Submitted != 0 {
		t.Errorf("invalid request was queued: %+v", st)
	}
}

// TestDesignBatchCoalesces fills one group with duplicates of a few
// distinct requests and checks a single flush dedupes them: one
// pipeline submission per distinct content address, every duplicate
// served from its twin's run.
func TestDesignBatchCoalesces(t *testing.T) {
	const (
		distinct = 3
		copies   = 8
		total    = distinct * copies
	)
	// The group can only flush by size, so exactly one flush sees all
	// total items together.
	s := New(Config{Workers: 4, BatchMaxSize: total, BatchMaxWait: time.Hour, CacheEntries: -1})
	defer s.Close()
	g := &gateDesign{}
	s.designFn = g.fn

	traces := make([]*bitseq.Bits, distinct)
	for i := range traces {
		var err error
		if traces[i], err = bitseq.FromString(fmt.Sprintf("%012b", 0b100010110+i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.DesignBatch(context.Background(), traces[i%distinct], figure1Options(), "shared-trace")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if got := g.count(); got != distinct {
		t.Errorf("pipeline ran %d times, want %d (dedup inside the flush)", got, distinct)
	}
	if c := s.registry.Counter("fsmpredict_batch_design_coalesced_total").Value(); c != total-distinct {
		t.Errorf("coalesced = %d, want %d", c, total-distinct)
	}
	if p := s.registry.Counter("fsmpredict_batch_design_passes_total").Value(); p != distinct {
		t.Errorf("passes = %d, want %d", p, distinct)
	}
	st, _ := s.BatchStats()
	if st.Flushes != 1 || st.Flushed != total {
		t.Errorf("batch stats = %+v, want one flush of %d", st, total)
	}
}

// counterMachine builds an n-state saturating up/down counter — a
// small valid machine to batch-simulate.
func counterMachine(n int) *fsm.Machine {
	m := &fsm.Machine{Output: make([]bool, n), Next: make([][2]int, n)}
	for s := 0; s < n; s++ {
		m.Output[s] = s >= n/2
		m.Next[s] = [2]int{max(s-1, 0), min(s+1, n-1)}
	}
	return m
}

func TestSimulateBatchMatchesSimulate(t *testing.T) {
	s := New(Config{Workers: 2, BatchMaxWait: time.Millisecond})
	defer s.Close()
	bits, err := bitseq.FromString(paperTrace)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := s.Design(context.Background(), bits, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	var m fsm.Machine
	if err := m.UnmarshalJSON(res.Machine); err != nil {
		t.Fatal(err)
	}
	for _, skip := range []int{0, 2, 7} {
		want, err := s.Simulate(&m, bits, skip)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.SimulateBatch(context.Background(), &m, bits, skip, "")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("skip %d: batch %+v, unary %+v", skip, got, want)
		}
	}
}

// TestSimulateBatchGroupedPass aims a full group of machines at one
// trace and checks they were all served by a single kernel pass.
func TestSimulateBatchGroupedPass(t *testing.T) {
	const machines = 6
	s := New(Config{Workers: 2, BatchMaxSize: machines, BatchMaxWait: time.Hour})
	defer s.Close()
	bits, err := bitseq.FromString(paperTrace + " " + paperTrace)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct machines: saturating counters of different depths.
	ms := make([]*fsm.Machine, machines)
	for i := range ms {
		ms[i] = counterMachine(2 + i)
	}
	var wg sync.WaitGroup
	got := make([]fsm.SimResult, machines)
	errs := make([]error, machines)
	for i := range ms {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.SimulateBatch(context.Background(), ms[i], bits, 0, "same-group")
		}(i)
	}
	wg.Wait()
	for i := range ms {
		if errs[i] != nil {
			t.Fatalf("machine %d: %v", i, errs[i])
		}
		want := ms[i].SimulateBits(bits, 0)
		if got[i] != want {
			t.Errorf("machine %d: batch %+v, direct %+v", i, got[i], want)
		}
	}
	if p := s.registry.Counter("fsmpredict_batch_simulate_passes_total").Value(); p != 1 {
		t.Errorf("kernel passes = %d, want 1 for the whole group", p)
	}
}

// TestSimulateBatchFleetDedup aims a group holding structural duplicates
// at one trace: every request still gets its own (correct) result, but
// the fleet walks each distinct machine once and the /metrics counters
// report the pass, its size, and how many machines rode a twin's walk.
func TestSimulateBatchFleetDedup(t *testing.T) {
	const machines = 6 // 3 distinct structures, each submitted twice
	s := New(Config{Workers: 2, BatchMaxSize: machines, BatchMaxWait: time.Hour})
	defer s.Close()
	bits, err := bitseq.FromString(paperTrace + " " + paperTrace)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*fsm.Machine, machines)
	for i := range ms {
		ms[i] = counterMachine(2 + i%3)
	}
	var wg sync.WaitGroup
	got := make([]fsm.SimResult, machines)
	errs := make([]error, machines)
	for i := range ms {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.SimulateBatch(context.Background(), ms[i], bits, 0, "dedup-group")
		}(i)
	}
	wg.Wait()
	for i := range ms {
		if errs[i] != nil {
			t.Fatalf("machine %d: %v", i, errs[i])
		}
		if want := ms[i].SimulateBits(bits, 0); got[i] != want {
			t.Errorf("machine %d: batch %+v, direct %+v", i, got[i], want)
		}
	}
	metric := func(name string) uint64 { return s.registry.Counter(name).Value() }
	if p := metric("fsmpredict_fleet_passes_total"); p != 1 {
		t.Errorf("fleet passes = %d, want 1", p)
	}
	if n := metric("fsmpredict_fleet_machines_total"); n != machines {
		t.Errorf("fleet machines = %d, want %d", n, machines)
	}
	if d := metric("fsmpredict_fleet_deduped_total"); d != machines-3 {
		t.Errorf("fleet deduped = %d, want %d", d, machines-3)
	}
	wantBytes := uint64(machines) * uint64((bits.Len()+7)/8)
	if b := metric("fsmpredict_fleet_simulated_bytes_total"); b != wantBytes {
		t.Errorf("fleet simulated bytes = %d, want %d", b, wantBytes)
	}
}

// TestCloseDrainsBatchedRequests is the shutdown guarantee: requests
// accepted by the batch plane before Close must flush and complete,
// not be dropped, even when neither flush trigger could fire on its
// own.
func TestCloseDrainsBatchedRequests(t *testing.T) {
	const n = 9
	s := New(Config{Workers: 2, BatchMaxSize: 1000, BatchMaxWait: time.Hour})
	bits, err := bitseq.FromString(paperTrace)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	states := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res *Result
			res, _, errs[i] = s.DesignBatch(context.Background(), bits, figure1Options(), fmt.Sprintf("g%d", i%3))
			if res != nil {
				states[i] = res.States
			}
		}(i)
	}
	// Wait until all n items are queued on the plane, then close.
	for deadline := time.Now().Add(10 * time.Second); ; {
		st, _ := s.BatchStats()
		if st.Pending == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batched items never queued: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Errorf("item %d dropped on Close: %v", i, errs[i])
		} else if states[i] != 3 {
			t.Errorf("item %d states = %d, want 3", i, states[i])
		}
	}
	// After the drain the plane is closed for new work.
	if _, _, err := s.DesignBatch(context.Background(), bits, figure1Options(), ""); !errors.Is(err, ErrClosed) {
		t.Errorf("DesignBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := s.SimulateBatch(context.Background(), counterMachine(2), bits, 0, ""); !errors.Is(err, ErrClosed) {
		t.Errorf("SimulateBatch after Close = %v, want ErrClosed", err)
	}
}
