package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/vhdl"
)

// ErrOverloaded is returned when the design queue is full: the request
// was shed immediately instead of queueing without bound. Callers should
// back off and retry.
var ErrOverloaded = errors.New("service: overloaded, design queue full")

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("service: closed")

// ErrInvalid wraps request validation failures so transports can map
// them to client errors (HTTP 400) rather than server faults.
var ErrInvalid = errors.New("invalid request")

// Config sizes a Service. The zero value picks sensible defaults.
type Config struct {
	// Workers is the number of design pipelines allowed to run
	// concurrently. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many accepted designs may wait for a worker.
	// A request arriving with the queue full fails fast with
	// ErrOverloaded. 0 means 8× Workers.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache. 0 means
	// 1024; negative disables caching (every request runs or joins an
	// in-flight run).
	CacheEntries int
	// Metrics receives the service's counters and histograms. Nil means
	// a fresh registry, retrievable via Metrics().
	Metrics *Metrics
}

// Stats carries the per-design pipeline record sent back on the wire:
// model size, intermediate machine sizes, and per-stage wall time.
type Stats struct {
	Observations      uint64      `json:"observations"`
	DistinctHistories int         `json:"distinct_histories"`
	CoverCubes        int         `json:"cover_cubes"`
	NFAStates         int         `json:"nfa_states"`
	DFAStates         int         `json:"dfa_states"`
	MinimizedStates   int         `json:"minimized_states"`
	Stages            []StageTime `json:"stages"`
	ElapsedNanos      int64       `json:"elapsed_nanos"`
}

// StageTime is one pipeline stage's wall-clock duration.
type StageTime struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// Result is the immutable outcome of one design: the machine in its
// canonical JSON encoding (byte-identical across cache hits), the VHDL,
// the estimated area, and the pipeline stats of the run that produced
// it. Results are shared between cache readers and must not be mutated.
type Result struct {
	// Key is the request's content address (hex SHA-256).
	Key string `json:"key"`
	// Machine is the canonical JSON encoding of the predictor.
	Machine json.RawMessage `json:"machine"`
	// States is the final machine size.
	States int `json:"states"`
	// VHDL is the synthesizable entity for the machine.
	VHDL string `json:"vhdl"`
	// AreaGE is the estimated area in gate equivalents.
	AreaGE float64 `json:"area_ge"`
	// Stats records the pipeline run that produced this result.
	Stats Stats `json:"stats"`
}

// call is one in-flight design execution that concurrent identical
// requests join instead of re-running the pipeline (singleflight).
type call struct {
	key   cacheKey
	trace *bitseq.Bits
	opt   core.Options
	done  chan struct{} // closed when res/err are final
	res   *Result
	err   error
}

// serviceMetrics resolves the service's metric handles once.
type serviceMetrics struct {
	designRequests *Counter // Design() calls accepted for processing
	started        *Counter // pipeline executions begun
	completed      *Counter // pipeline executions finished OK
	designErrors   *Counter // pipeline executions failed
	cacheHits      *Counter
	cacheMisses    *Counter
	dedupJoined    *Counter // requests that joined an in-flight run
	shed           *Counter // requests rejected with ErrOverloaded
	simulations    *Counter
	designSeconds  *Histogram
}

func newServiceMetrics(m *Metrics) serviceMetrics {
	return serviceMetrics{
		designRequests: m.Counter("fsmpredict_design_requests_total"),
		started:        m.Counter("fsmpredict_designs_started_total"),
		completed:      m.Counter("fsmpredict_designs_completed_total"),
		designErrors:   m.Counter("fsmpredict_design_errors_total"),
		cacheHits:      m.Counter("fsmpredict_design_cache_hits_total"),
		cacheMisses:    m.Counter("fsmpredict_design_cache_misses_total"),
		dedupJoined:    m.Counter("fsmpredict_design_dedup_joined_total"),
		shed:           m.Counter("fsmpredict_design_shed_total"),
		simulations:    m.Counter("fsmpredict_simulate_requests_total"),
		designSeconds:  m.Histogram("fsmpredict_design_seconds"),
	}
}

// Service runs the design flow behind a cache, request deduplication and
// a bounded worker pool. It is safe for concurrent use. Construct with
// New and release with Close.
type Service struct {
	registry *Metrics
	met      serviceMetrics
	cache    *designCache
	// designFn is the pipeline entry point; tests substitute it to
	// observe and gate executions.
	designFn func(*bitseq.Bits, core.Options) (*core.Design, error)

	mu       sync.Mutex
	closed   bool
	inflight map[cacheKey]*call

	work chan *call
	wg   sync.WaitGroup
}

// New starts a service with cfg's worker pool and cache.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8 * cfg.Workers
	}
	var cache *designCache
	if cfg.CacheEntries >= 0 {
		if cfg.CacheEntries == 0 {
			cfg.CacheEntries = 1024
		}
		cache = newDesignCache(cfg.CacheEntries)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = NewMetrics()
	}
	s := &Service{
		registry: reg,
		met:      newServiceMetrics(reg),
		cache:    cache,
		designFn: core.FromTrace,
		inflight: make(map[cacheKey]*call),
		work:     make(chan *call, cfg.QueueDepth),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Metrics returns the registry the service reports into.
func (s *Service) Metrics() *Metrics { return s.registry }

// CacheLen reports the number of cached designs.
func (s *Service) CacheLen() int { return s.cache.len() }

// Close stops accepting work, waits for queued and running designs to
// finish (their waiters still receive results), and releases the
// workers. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.work)
	s.mu.Unlock()
	s.wg.Wait()
}

// DesignString is Design on a textual 0/1 trace (whitespace and
// underscores ignored, as everywhere in the module).
func (s *Service) DesignString(ctx context.Context, trace string, opt core.Options) (*Result, bool, error) {
	bits, err := bitseq.FromString(trace)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return s.Design(ctx, bits, opt)
}

// Design returns the predictor for (trace, opt), running the §4 pipeline
// at most once per distinct request: a content-addressed cache serves
// repeats, concurrent identical requests coalesce onto one execution,
// and a full queue sheds the request with ErrOverloaded instead of
// blocking. The boolean reports whether the result came from cache. The
// context cancels the caller's wait, not the shared execution (its
// result still lands in the cache for future requests).
func (s *Service) Design(ctx context.Context, trace *bitseq.Bits, opt core.Options) (*Result, bool, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, false, fmt.Errorf("%w: empty trace", ErrInvalid)
	}
	if err := opt.Validate(); err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if trace.Len() <= opt.Order {
		return nil, false, fmt.Errorf("%w: trace of %d bits is too short for order %d",
			ErrInvalid, trace.Len(), opt.Order)
	}
	s.met.designRequests.Inc()
	key := requestKey(trace, opt)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if res, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		s.met.cacheHits.Inc()
		return res, true, nil
	}
	s.met.cacheMisses.Inc()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.met.dedupJoined.Inc()
		return s.wait(ctx, c)
	}
	c := &call{key: key, trace: trace, opt: opt, done: make(chan struct{})}
	select {
	case s.work <- c:
		s.inflight[key] = c
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.met.shed.Inc()
		return nil, false, ErrOverloaded
	}
	return s.wait(ctx, c)
}

// wait blocks until the call completes or the caller's context ends.
func (s *Service) wait(ctx context.Context, c *call) (*Result, bool, error) {
	select {
	case <-c.done:
		return c.res, false, c.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// worker drains the queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for c := range s.work {
		s.run(c)
	}
}

// run executes one design, publishes the result to the cache, and wakes
// every request waiting on the call.
func (s *Service) run(c *call) {
	s.met.started.Inc()
	start := time.Now()
	opt := c.opt
	var stages []StageTime
	caller := opt.StageObserver
	opt.StageObserver = func(stage string, d time.Duration) {
		stages = append(stages, StageTime{Stage: stage, Nanos: int64(d)})
		s.registry.Histogram("fsmpredict_stage_" + stage + "_seconds").Observe(d)
		if caller != nil {
			caller(stage, d)
		}
	}
	c.res, c.err = s.build(c, opt, &stages, start)
	if c.err != nil {
		s.met.designErrors.Inc()
	} else {
		s.met.completed.Inc()
	}
	s.met.designSeconds.Observe(time.Since(start))

	s.mu.Lock()
	if c.err == nil {
		s.cache.put(c.key, c.res)
	}
	delete(s.inflight, c.key)
	s.mu.Unlock()
	close(c.done)
}

// build runs the pipeline and assembles the immutable Result.
func (s *Service) build(c *call, opt core.Options, stages *[]StageTime, start time.Time) (*Result, error) {
	d, err := s.designFn(c.trace, opt)
	if err != nil {
		return nil, err
	}
	machineJSON, err := json.Marshal(d.Machine)
	if err != nil {
		return nil, fmt.Errorf("service: encoding machine: %v", err)
	}
	src, err := vhdl.Generate(d.Machine)
	if err != nil {
		return nil, fmt.Errorf("service: generating VHDL: %v", err)
	}
	area, err := vhdl.EstimateArea(d.Machine)
	if err != nil {
		return nil, fmt.Errorf("service: estimating area: %v", err)
	}
	return &Result{
		Key:     c.key.String(),
		Machine: machineJSON,
		States:  d.Machine.NumStates(),
		VHDL:    src,
		AreaGE:  area,
		Stats: Stats{
			Observations:      d.Model.Total(),
			DistinctHistories: d.Model.Distinct(),
			CoverCubes:        len(d.Cover),
			NFAStates:         d.NFAStates,
			DFAStates:         d.DFAStates,
			MinimizedStates:   d.MinimizedStates,
			Stages:            *stages,
			ElapsedNanos:      int64(time.Since(start)),
		},
	}, nil
}

// Simulate replays a trace through a machine and tallies prediction
// correctness — the serving-side counterpart of Machine.Simulate. It
// runs inline: simulation is a linear scan, orders of magnitude cheaper
// than a design, so it does not compete for design workers.
func (s *Service) Simulate(m *fsm.Machine, trace *bitseq.Bits, skip int) (fsm.SimResult, error) {
	if m == nil {
		return fsm.SimResult{}, fmt.Errorf("%w: missing machine", ErrInvalid)
	}
	if err := m.Validate(); err != nil {
		return fsm.SimResult{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if trace == nil || trace.Len() == 0 {
		return fsm.SimResult{}, fmt.Errorf("%w: empty trace", ErrInvalid)
	}
	if skip < 0 {
		return fsm.SimResult{}, fmt.Errorf("%w: negative skip %d", ErrInvalid, skip)
	}
	s.met.simulations.Inc()
	return m.Simulate(trace.Bools(), skip), nil
}
