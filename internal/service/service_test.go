package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
)

const paperTrace = "0000 1000 1011 1101 1110 1111"

func figure1Options() core.Options { return core.Options{Order: 2} }

func TestDesignPaperWorkedExample(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	res, hit, err := s.DesignString(context.Background(), paperTrace, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first request reported as cache hit")
	}
	if res.States != 3 {
		t.Errorf("states = %d, want the paper's 3", res.States)
	}
	var m fsm.Machine
	if err := m.UnmarshalJSON(res.Machine); err != nil {
		t.Fatalf("machine JSON invalid: %v", err)
	}
	if res.AreaGE <= 0 {
		t.Errorf("area = %v, want > 0", res.AreaGE)
	}
	if len(res.VHDL) == 0 {
		t.Error("empty VHDL")
	}
	if len(res.Stats.Stages) == 0 {
		t.Error("no stage timings recorded")
	}
	if res.Stats.Observations == 0 || res.Stats.CoverCubes == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}

	// Second identical request: cache hit, byte-identical machine JSON.
	res2, hit2, err := s.DesignString(context.Background(), paperTrace, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Error("repeat request missed the cache")
	}
	if !bytes.Equal(res.Machine, res2.Machine) {
		t.Errorf("cache hit returned different machine JSON: %s vs %s", res.Machine, res2.Machine)
	}
	if s.met.started.Value() != 1 {
		t.Errorf("pipeline ran %d times for identical sequential requests", s.met.started.Value())
	}
}

func TestDesignValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	cases := []struct {
		name  string
		trace string
		opt   core.Options
	}{
		{"empty trace", "", core.Options{Order: 2}},
		{"bad characters", "0102", core.Options{Order: 2}},
		{"order too small", "0101", core.Options{Order: 0}},
		{"order too large", "0101", core.Options{Order: 17}},
		{"trace shorter than order", "0101", core.Options{Order: 8}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := s.DesignString(ctx, c.trace, c.opt)
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("err = %v, want ErrInvalid", err)
			}
		})
	}
}

// gateDesign wraps the real pipeline so tests can hold executions open
// and count them.
type gateDesign struct {
	mu      sync.Mutex
	started int64
	release chan struct{}
}

func (g *gateDesign) fn(b *bitseq.Bits, opt core.Options) (*core.Design, error) {
	g.mu.Lock()
	g.started++
	g.mu.Unlock()
	if g.release != nil {
		<-g.release
	}
	return core.FromTrace(b, opt)
}

func (g *gateDesign) count() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.started
}

// TestConcurrentIdenticalRequestsRunOnce is the dedup guarantee: many
// goroutines asking for the same design while it is in flight must share
// exactly one pipeline execution and one result.
func TestConcurrentIdenticalRequestsRunOnce(t *testing.T) {
	g := &gateDesign{release: make(chan struct{})}
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Close()
	s.designFn = g.fn

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]*Result, waiters)
	errs := make([]error, waiters)
	var inFlight sync.WaitGroup
	inFlight.Add(waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inFlight.Done()
			results[i], _, errs[i] = s.DesignString(context.Background(), paperTrace, figure1Options())
		}(i)
	}
	// Release the single execution only after every request has had a
	// chance to be submitted; stragglers that arrive later still join the
	// in-flight call or hit the cache — neither re-runs the pipeline.
	inFlight.Wait()
	time.Sleep(10 * time.Millisecond)
	close(g.release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if n := g.count(); n != 1 {
		t.Errorf("pipeline executed %d times for %d identical concurrent requests", n, waiters)
	}
	for i := 1; i < waiters; i++ {
		if !bytes.Equal(results[0].Machine, results[i].Machine) {
			t.Errorf("request %d got different machine JSON", i)
		}
	}
}

// TestOverloadSheds is the queue-limit guarantee: once the pool and the
// queue are saturated, a new distinct request fails fast with
// ErrOverloaded instead of blocking.
func TestOverloadSheds(t *testing.T) {
	g := &gateDesign{release: make(chan struct{})}
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	s.designFn = g.fn

	traces := []string{"0000 1111 0000 1111", "0101 0101 0101 0101", "0011 0011 0011 0011", "0001 0001 0001 0001"}
	type outcome struct {
		i   int
		err error
	}
	outcomes := make(chan outcome, len(traces))
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr string) {
			defer wg.Done()
			_, _, err := s.DesignString(context.Background(), tr, figure1Options())
			outcomes <- outcome{i, err}
		}(i, tr)
		// Give each request time to claim its slot before the next, so
		// the saturation order is deterministic: one running, one queued,
		// the rest shed.
		time.Sleep(20 * time.Millisecond)
	}

	// With one worker holding one design open and one design queued, at
	// least the fourth request must have been shed already.
	var shedEarly int
	deadline := time.After(2 * time.Second)
	for shedEarly == 0 {
		select {
		case o := <-outcomes:
			if !errors.Is(o.err, ErrOverloaded) {
				t.Fatalf("request %d finished with %v while pool was blocked", o.i, o.err)
			}
			shedEarly++
		case <-deadline:
			t.Fatal("no request was shed: queue-full path is blocking")
		}
	}
	if got := s.met.shed.Value(); got == 0 {
		t.Error("shed counter not incremented")
	}
	close(g.release)
	wg.Wait()
	close(outcomes)
	for o := range outcomes {
		if o.err != nil && !errors.Is(o.err, ErrOverloaded) {
			t.Errorf("request %d: %v", o.i, o.err)
		}
	}
}

// TestServiceStress is the acceptance stress test: 8+ goroutines fire
// 100+ mixed requests each at a small pool. Every non-shed response must
// be correct and byte-identical per key, identical concurrent requests
// must coalesce, and the run must terminate (no deadlock) under -race.
func TestServiceStress(t *testing.T) {
	g := &gateDesign{}
	s := New(Config{Workers: 4, QueueDepth: 256, CacheEntries: 64})
	defer s.Close()
	s.designFn = g.fn

	// A mixed workload: 10 distinct (trace, options) requests.
	type req struct {
		trace string
		opt   core.Options
	}
	var reqs []req
	for i := 0; i < 5; i++ {
		tr := fmt.Sprintf("%04b %04b 1011 1101 1110 1111", i, 15-i)
		reqs = append(reqs, req{tr, core.Options{Order: 2}})
		reqs = append(reqs, req{tr, core.Options{Order: 3, BiasThreshold: 0.7}})
	}

	const goroutines = 8
	const perG = 100
	var shed, served atomic.Int64
	golden := make([]atomic.Pointer[Result], len(reqs))
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				which := (gi + i) % len(reqs)
				r := reqs[which]
				res, _, err := s.DesignString(context.Background(), r.trace, r.opt)
				if errors.Is(err, ErrOverloaded) {
					shed.Add(1)
					continue
				}
				if err != nil {
					t.Errorf("goroutine %d request %d: %v", gi, i, err)
					return
				}
				served.Add(1)
				if prev := golden[which].Swap(res); prev != nil && !bytes.Equal(prev.Machine, res.Machine) {
					t.Errorf("request class %d returned differing machine JSON", which)
					return
				}
			}
		}(gi)
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no requests served")
	}
	// The pipeline must have run at most once per distinct request: every
	// other request was a cache hit or joined an in-flight execution.
	if n := g.count(); n > int64(len(reqs)) {
		t.Errorf("pipeline executed %d times for %d distinct requests", n, len(reqs))
	}
	total := s.met.cacheHits.Value() + s.met.cacheMisses.Value()
	if want := uint64(goroutines * perG); total != want {
		t.Errorf("cache hit+miss = %d, want %d", total, want)
	}
	t.Logf("stress: %d served, %d shed, %d pipeline runs, %d cache hits",
		served.Load(), shed.Load(), g.count(), s.met.cacheHits.Value())
}

func TestCacheEviction(t *testing.T) {
	s := New(Config{Workers: 2, CacheEntries: 2})
	defer s.Close()
	ctx := context.Background()
	traces := []string{"0000 1111 0101", "1111 0000 1010", "0011 1100 0110"}
	for _, tr := range traces {
		if _, _, err := s.DesignString(ctx, tr, figure1Options()); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CacheLen(); got != 2 {
		t.Errorf("cache holds %d entries, want the bound 2", got)
	}
	// The oldest entry was evicted; re-requesting it must re-run the
	// pipeline (a miss), while the newest is still a hit.
	if _, hit, err := s.DesignString(ctx, traces[2], figure1Options()); err != nil || !hit {
		t.Errorf("newest entry: hit=%v err=%v, want cache hit", hit, err)
	}
	if _, hit, err := s.DesignString(ctx, traces[0], figure1Options()); err != nil || hit {
		t.Errorf("evicted entry: hit=%v err=%v, want miss", hit, err)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: -1})
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, hit, err := s.DesignString(ctx, paperTrace, figure1Options()); err != nil || hit {
			t.Fatalf("run %d: hit=%v err=%v, want uncached success", i, hit, err)
		}
	}
	if got := s.met.started.Value(); got != 2 {
		t.Errorf("pipeline ran %d times with cache disabled, want 2", got)
	}
	if s.CacheLen() != 0 {
		t.Errorf("disabled cache holds %d entries", s.CacheLen())
	}
}

func TestRequestKeyCanonicalization(t *testing.T) {
	a := bitseq.MustFromString("0000 1000 1011 1101")
	b := bitseq.MustFromString("0000100010111101")
	if requestKey(a, core.Options{Order: 2}) != requestKey(b, core.Options{Order: 2}) {
		t.Error("whitespace changed the content address")
	}
	// Defaulted and explicit paper parameters share an address.
	if requestKey(a, core.Options{Order: 2}) != requestKey(a, core.Options{Order: 2, BiasThreshold: 0.5, DontCareBudget: 0.01}) {
		t.Error("canonical defaults not applied to the content address")
	}
	distinct := []core.Options{
		{Order: 2},
		{Order: 3},
		{Order: 2, BiasThreshold: 0.9},
		{Order: 2, DontCareBudget: -1},
		{Order: 2, KeepUnseen: true},
		{Order: 2, KeepStartup: true},
		{Order: 2, Name: "x"},
	}
	seen := map[cacheKey]int{}
	for i, opt := range distinct {
		k := requestKey(a, opt)
		if j, ok := seen[k]; ok {
			t.Errorf("options %d and %d collide", j, i)
		}
		seen[k] = i
	}
	// The observer must not influence the address.
	withObs := core.Options{Order: 2, StageObserver: func(string, time.Duration) {}}
	if requestKey(a, withObs) != requestKey(a, core.Options{Order: 2}) {
		t.Error("StageObserver leaked into the content address")
	}
}

func TestContextCancellationDoesNotKillSharedRun(t *testing.T) {
	g := &gateDesign{release: make(chan struct{})}
	s := New(Config{Workers: 1})
	defer s.Close()
	s.designFn = g.fn

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.DesignString(ctx, paperTrace, figure1Options())
		errc <- err
	}()
	// Wait until the pipeline is actually running, then abandon the wait.
	for g.count() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(g.release)
	// The abandoned execution must still complete and populate the cache.
	deadline := time.Now().Add(2 * time.Second)
	for s.CacheLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned run never reached the cache")
		}
		time.Sleep(time.Millisecond)
	}
	res, hit, err := s.DesignString(context.Background(), paperTrace, figure1Options())
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v, want cache hit from abandoned run", hit, err)
	}
	if res.States != 3 {
		t.Errorf("states = %d, want 3", res.States)
	}
}

func TestDesignAfterClose(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	s.Close() // idempotent
	if _, _, err := s.DesignString(context.Background(), paperTrace, figure1Options()); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestSimulate(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	res, _, err := s.DesignString(context.Background(), paperTrace, figure1Options())
	if err != nil {
		t.Fatal(err)
	}
	var m fsm.Machine
	if err := m.UnmarshalJSON(res.Machine); err != nil {
		t.Fatal(err)
	}
	sim, err := s.Simulate(&m, bitseq.MustFromString(paperTrace), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Total != 22 {
		t.Errorf("scored %d outcomes, want 22", sim.Total)
	}
	if sim.Accuracy() <= 0.5 {
		t.Errorf("designed predictor scores %.2f on its training trace", sim.Accuracy())
	}
	if _, err := s.Simulate(nil, bitseq.MustFromString("01"), 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil machine: err = %v, want ErrInvalid", err)
	}
	bad := &fsm.Machine{Output: []bool{false}, Next: [][2]int{{0, 5}}}
	if _, err := s.Simulate(bad, bitseq.MustFromString("01"), 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("invalid machine: err = %v, want ErrInvalid", err)
	}
	if _, err := s.Simulate(&m, bitseq.MustFromString("01"), -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative skip: err = %v, want ErrInvalid", err)
	}
}

// TestConcurrentFastPathDesignsRace drives real design pipelines — not
// the stubbed designFn — through the worker pool from many goroutines
// with caching disabled, so concurrent runs genuinely share the pooled
// minimizer scratch (the QM cube tables and Hopcroft arrays behind the
// direct fast path). Run under -race it is the regression gate for that
// sharing. It also pins the artifacts contract: default requests leave
// the intermediate sizes zero, artifacts requests populate them, and
// both shapes coexist for the same trace.
func TestConcurrentFastPathDesignsRace(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 1024, CacheEntries: -1})
	defer s.Close()

	traces := []string{
		"0000 1000 1011 1101 1110 1111",
		"0101 0101 0101 0101 1101 0101",
		"0011 0011 0011 0011 0011 0011",
		"1110 1110 1110 0110 1110 1110",
	}
	const goroutines = 8
	const perG = 12
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr := traces[(gi+i)%len(traces)]
				opt := core.Options{Order: 2 + (gi+i)%2}
				artifacts := i%3 == 0
				opt.Artifacts = artifacts
				res, _, err := s.DesignString(context.Background(), tr, opt)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d request %d: %v", gi, i, err)
					return
				}
				if res.States == 0 {
					errc <- fmt.Errorf("goroutine %d request %d: empty machine", gi, i)
					return
				}
				if artifacts && res.Stats.NFAStates == 0 {
					errc <- fmt.Errorf("goroutine %d request %d: artifacts requested but nfa_states is 0", gi, i)
					return
				}
				if !artifacts && res.Stats.NFAStates != 0 {
					errc <- fmt.Errorf("goroutine %d request %d: fast path reported nfa_states %d", gi, i, res.Stats.NFAStates)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Same trace and order, differing only in Artifacts: distinct cache
	// keys, identical machines.
	fast, _, err := s.DesignString(context.Background(), paperTrace, core.Options{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := s.DesignString(context.Background(), paperTrace, core.Options{Order: 2, Artifacts: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Key == full.Key {
		t.Error("artifacts option does not separate cache keys")
	}
	if !bytes.Equal(fast.Machine, full.Machine) {
		t.Error("fast path and full pipeline produced different machine JSON")
	}
}
