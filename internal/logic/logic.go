// Package logic performs two-level logic minimization, standing in for the
// Espresso PLA minimizer the paper uses in its pattern-compression step
// (§4.4). Given the "predict 1" set as an on-set and the "don't care" set
// as a dc-set, it produces a compact sum-of-products cover: a list of
// cubes (product terms) that covers every on-set minterm, may absorb
// don't-care minterms, and never covers an off-set minterm.
//
// Two engines are provided:
//
//   - Quine–McCluskey (MinimizeQM): exact prime-implicant generation
//     followed by unate covering with essential-prime extraction, row and
//     column dominance, and exact branch-and-bound on small residual
//     tables (greedy beyond a size limit).
//   - Espresso-style heuristic (MinimizeHeuristic): the classic
//     EXPAND / IRREDUNDANT / REDUCE loop working directly on cubes, which
//     scales to wider inputs without enumerating all primes.
//
// Both engines are verified against each other and against the functional
// specification by the package tests.
package logic

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"fsmpredict/internal/bitseq"
)

// Problem is a single-output minimization instance over Width input bits.
// Minterm values use the bitseq history convention. Any minterm not in On
// or DC is in the off-set.
type Problem struct {
	Width int
	On    []uint32 // minterms that must evaluate to 1
	DC    []uint32 // minterms free to evaluate either way
}

// Validate checks structural invariants: width in range, minterms within
// width, and On/DC disjoint.
func (p Problem) Validate() error {
	if p.Width < 1 || p.Width > 24 {
		return fmt.Errorf("logic: width %d out of range [1,24]", p.Width)
	}
	mask := uint32(1)<<uint(p.Width) - 1
	seen := make(map[uint32]byte, len(p.On)+len(p.DC))
	for _, m := range p.On {
		if m&^mask != 0 {
			return fmt.Errorf("logic: on-set minterm %#x exceeds width %d", m, p.Width)
		}
		seen[m] |= 1
	}
	for _, m := range p.DC {
		if m&^mask != 0 {
			return fmt.Errorf("logic: dc-set minterm %#x exceeds width %d", m, p.Width)
		}
		if seen[m]&1 != 0 {
			return fmt.Errorf("logic: minterm %#x in both on-set and dc-set", m)
		}
		seen[m] |= 2
	}
	return nil
}

// FromPartition converts a markov-style partition (lists of minterm cubes)
// into a Problem. On and DC cubes must be minterms of the same width.
func FromPartition(width int, on, dc []bitseq.Cube) Problem {
	p := Problem{Width: width}
	for _, c := range on {
		p.On = append(p.On, c.Value)
	}
	for _, c := range dc {
		p.DC = append(p.DC, c.Value)
	}
	return p
}

// Cost summarizes the quality of a cover.
type Cost struct {
	Cubes    int
	Literals int
}

// CoverCost computes the cost of a cover.
func CoverCost(cover []bitseq.Cube) Cost {
	c := Cost{Cubes: len(cover)}
	for _, cu := range cover {
		c.Literals += cu.Literals()
	}
	return c
}

// Less orders costs by cube count, then literal count.
func (c Cost) Less(d Cost) bool {
	if c.Cubes != d.Cubes {
		return c.Cubes < d.Cubes
	}
	return c.Literals < d.Literals
}

// Verify checks that the cover implements the problem: every on-set
// minterm is covered and no off-set minterm is covered. It returns a
// descriptive error on the first violation.
func Verify(p Problem, cover []bitseq.Cube) error {
	if err := p.Validate(); err != nil {
		return err
	}
	kind := make(map[uint32]byte, len(p.On)+len(p.DC))
	for _, m := range p.On {
		kind[m] = 1
	}
	for _, m := range p.DC {
		kind[m] = 2
	}
	for _, c := range cover {
		if c.Width != p.Width {
			return fmt.Errorf("logic: cover cube %v has width %d, want %d", c, c.Width, p.Width)
		}
	}
	for _, m := range p.On {
		if !bitseq.CoverMatches(cover, m) {
			return fmt.Errorf("logic: on-set minterm %s not covered",
				bitseq.HistoryString(m, p.Width))
		}
	}
	// Off-set check: enumerate matches of each cube and ensure they are
	// on or dc minterms. This avoids enumerating the whole off-set.
	for _, c := range cover {
		for _, m := range c.Minterms() {
			if kind[m] == 0 {
				return fmt.Errorf("logic: cover cube %v wrongly covers off-set minterm %s",
					c, bitseq.HistoryString(m, p.Width))
			}
		}
	}
	return nil
}

// Minimize picks an engine appropriate for the problem size: QM when the
// combined on+dc set is small enough for prime enumeration, the heuristic
// engine otherwise. This mirrors how Espresso is used in the paper: exact
// quality on the small per-predictor tables, graceful degradation beyond.
func Minimize(p Problem) ([]bitseq.Cube, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Width <= 12 && len(p.On)+len(p.DC) <= 4096 {
		qm, err := MinimizeQM(p)
		if err != nil {
			return nil, err
		}
		// The heuristic occasionally beats pure QM-with-greedy-cover on
		// literal count; keep whichever is cheaper.
		he, err := MinimizeHeuristic(p)
		if err != nil {
			return qm, nil
		}
		if CoverCost(he).Less(CoverCost(qm)) {
			return he, nil
		}
		return qm, nil
	}
	return MinimizeHeuristic(p)
}

// MinimizeQM runs Quine–McCluskey prime generation over the on+dc set and
// then solves the covering problem for the on-set.
func MinimizeQM(p Problem) ([]bitseq.Cube, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.On) == 0 {
		return nil, nil
	}
	primes := PrimeImplicants(p)
	cover := solveCover(p.On, primes, p.Width)
	bitseq.SortCubes(cover)
	return cover, nil
}

// qmScratch holds the per-call working set of PrimeImplicants, pooled so
// the designer's steady state stops allocating the tabular method's
// level-by-level buffers.
type qmScratch struct {
	cur, next []bitseq.Cube
	used      []bool
}

var qmPool = sync.Pool{New: func() any { return new(qmScratch) }}

// sortDedupLevel orders one QM level by (care, value popcount, value) —
// the grouping key of the tabular method — and drops duplicate cubes.
func sortDedupLevel(cubes []bitseq.Cube) []bitseq.Cube {
	sort.Slice(cubes, func(i, j int) bool {
		a, b := cubes[i], cubes[j]
		if a.Care != b.Care {
			return a.Care < b.Care
		}
		pa, pb := bits.OnesCount32(a.Value), bits.OnesCount32(b.Value)
		if pa != pb {
			return pa < pb
		}
		return a.Value < b.Value
	})
	out := cubes[:0]
	for i, c := range cubes {
		if i == 0 || c.Value != cubes[i-1].Value || c.Care != cubes[i-1].Care {
			out = append(out, c)
		}
	}
	return out
}

// PrimeImplicants generates all prime implicants of the on+dc set using
// iterated pairwise combination (the tabular Quine–McCluskey method).
// Each level is a sorted, deduplicated slice; cubes sharing a care mask
// and value popcount form a contiguous run, and a run's only plausible
// combine partners are the next run when it has the same care mask and
// popcount one higher.
func PrimeImplicants(p Problem) []bitseq.Cube {
	s := qmPool.Get().(*qmScratch)
	cur := s.cur[:0]
	for _, m := range p.On {
		cur = append(cur, bitseq.Minterm(m, p.Width))
	}
	for _, m := range p.DC {
		cur = append(cur, bitseq.Minterm(m, p.Width))
	}

	var primes []bitseq.Cube
	next := s.next[:0]
	for len(cur) > 0 {
		cur = sortDedupLevel(cur)
		used := s.used[:0]
		for range cur {
			used = append(used, false)
		}
		next = next[:0]
		// Walk the (care, pop) runs; run = cur[start:end).
		for start := 0; start < len(cur); {
			care, pop := cur[start].Care, bits.OnesCount32(cur[start].Value)
			end := start + 1
			for end < len(cur) && cur[end].Care == care && bits.OnesCount32(cur[end].Value) == pop {
				end++
			}
			// Partner run: cubes with the same care mask and one more set
			// bit, which the ordering places immediately after.
			pEnd := end
			if end < len(cur) && cur[end].Care == care && bits.OnesCount32(cur[end].Value) == pop+1 {
				pEnd = end + 1
				for pEnd < len(cur) && cur[pEnd].Care == care && bits.OnesCount32(cur[pEnd].Value) == pop+1 {
					pEnd++
				}
			}
			for i := start; i < end; i++ {
				for j := end; j < pEnd; j++ {
					if m, ok := cur[i].Combine(cur[j]); ok {
						used[i], used[j] = true, true
						next = append(next, m)
					}
				}
			}
			start = end
		}
		for i, c := range cur {
			if !used[i] {
				primes = append(primes, c)
			}
		}
		s.used = used
		cur, next = next, cur[:0]
	}
	bitseq.SortCubes(primes)
	s.cur, s.next = cur[:0], next[:0]
	qmPool.Put(s)
	return primes
}

// coverLimit bounds the branch-and-bound search; above it the covering
// step falls back to pure greedy selection.
const coverLimit = 26

// solveCover selects a minimal (or near-minimal) subset of primes that
// covers all on-set minterms.
func solveCover(on []uint32, primes []bitseq.Cube, width int) []bitseq.Cube {
	// Deduplicate the on-set.
	onSet := make([]uint32, 0, len(on))
	seen := make(map[uint32]bool, len(on))
	for _, m := range on {
		if !seen[m] {
			seen[m] = true
			onSet = append(onSet, m)
		}
	}
	sort.Slice(onSet, func(i, j int) bool { return onSet[i] < onSet[j] })

	// Build the covering table.
	coversOf := make([][]int, len(onSet)) // minterm index -> prime indexes
	mintermsOf := make([][]int, len(primes))
	for mi, m := range onSet {
		for pi, c := range primes {
			if c.Matches(m) {
				coversOf[mi] = append(coversOf[mi], pi)
				mintermsOf[pi] = append(mintermsOf[pi], mi)
			}
		}
	}

	chosen := make([]bool, len(primes))
	covered := make([]bool, len(onSet))
	remaining := len(onSet)

	choose := func(pi int) {
		if chosen[pi] {
			return
		}
		chosen[pi] = true
		for _, mi := range mintermsOf[pi] {
			if !covered[mi] {
				covered[mi] = true
				remaining--
			}
		}
	}

	// Essential primes: a minterm covered by exactly one prime forces it.
	for mi := range onSet {
		if len(coversOf[mi]) == 1 {
			choose(coversOf[mi][0])
		}
	}

	// Residual problem.
	if remaining > 0 {
		var resM []int
		for mi := range onSet {
			if !covered[mi] {
				resM = append(resM, mi)
			}
		}
		var resP []int
		for pi := range primes {
			if chosen[pi] {
				continue
			}
			for _, mi := range mintermsOf[pi] {
				if !covered[mi] {
					resP = append(resP, pi)
					break
				}
			}
		}
		var picked []int
		if len(resM) <= coverLimit && len(resP) <= coverLimit {
			picked = exactCover(resM, resP, mintermsOf, covered, primes)
		} else {
			picked = greedyCover(resM, resP, mintermsOf, covered, primes)
		}
		for _, pi := range picked {
			choose(pi)
		}
	}

	var out []bitseq.Cube
	for pi, ok := range chosen {
		if ok {
			out = append(out, primes[pi])
		}
	}
	return out
}

// greedyCover repeatedly picks the prime covering the most uncovered
// residual minterms (ties: fewer literals, then deterministic order).
func greedyCover(resM, resP []int, mintermsOf [][]int, already []bool, primes []bitseq.Cube) []int {
	covered := append([]bool(nil), already...)
	need := 0
	for _, mi := range resM {
		if !covered[mi] {
			need++
		}
	}
	var out []int
	for need > 0 {
		best, bestGain := -1, 0
		for _, pi := range resP {
			gain := 0
			for _, mi := range mintermsOf[pi] {
				if !covered[mi] {
					gain++
				}
			}
			if gain > bestGain ||
				(gain == bestGain && gain > 0 && best >= 0 &&
					primes[pi].Literals() < primes[best].Literals()) {
				best, bestGain = pi, gain
			}
		}
		if best < 0 {
			break // unsatisfiable residual; caller's Verify will catch it
		}
		out = append(out, best)
		for _, mi := range mintermsOf[best] {
			if !covered[mi] {
				covered[mi] = true
				need--
			}
		}
	}
	return out
}

// exactCover performs branch and bound over the residual covering table.
// Residual sizes are bounded by coverLimit so bitmask state fits in uint32.
func exactCover(resM, resP []int, mintermsOf [][]int, already []bool, primes []bitseq.Cube) []int {
	idx := make(map[int]int, len(resM)) // minterm index -> bit
	for b, mi := range resM {
		idx[mi] = b
	}
	full := uint32(1)<<uint(len(resM)) - 1
	masks := make([]uint32, len(resP))
	for i, pi := range resP {
		for _, mi := range mintermsOf[pi] {
			if b, ok := idx[mi]; ok && !already[mi] {
				masks[i] |= 1 << uint(b)
			}
		}
	}
	var start uint32
	for _, mi := range resM {
		if already[mi] {
			start |= 1 << uint(idx[mi])
		}
	}

	best := append([]int(nil), greedyCover(resM, resP, mintermsOf, already, primes)...)
	bestN := len(best)

	var rec func(cov uint32, picked []int)
	rec = func(cov uint32, picked []int) {
		if cov == full {
			if len(picked) < bestN {
				bestN = len(picked)
				best = append([]int(nil), picked...)
			}
			return
		}
		if len(picked)+1 >= bestN {
			// Even one more pick cannot beat the incumbent unless it
			// finishes the cover; try only finishing picks.
			for i, m := range masks {
				if cov|m == full && len(picked)+1 < bestN {
					bestN = len(picked) + 1
					best = append(append([]int(nil), picked...), resP[i])
					return
				}
			}
			return
		}
		// Branch on the uncovered minterm with fewest candidate primes.
		bestBit, bestCnt := -1, len(resP)+1
		for b := 0; b < len(resM); b++ {
			if cov>>uint(b)&1 == 1 {
				continue
			}
			cnt := 0
			for _, m := range masks {
				if m>>uint(b)&1 == 1 {
					cnt++
				}
			}
			if cnt < bestCnt {
				bestBit, bestCnt = b, cnt
			}
		}
		if bestBit < 0 || bestCnt == 0 {
			return
		}
		for i, m := range masks {
			if m>>uint(bestBit)&1 == 1 {
				rec(cov|m, append(picked, resP[i]))
			}
		}
	}
	rec(start, nil)
	return best
}
