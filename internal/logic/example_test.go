package logic_test

import (
	"fmt"

	"fsmpredict/internal/logic"
)

// ExampleMinimize reproduces the paper's §4.4 Espresso step: the
// predict-1 set {01, 10, 11} compresses to two cubes.
func ExampleMinimize() {
	problem := logic.Problem{
		Width: 2,
		On:    []uint32{0b01, 0b10, 0b11},
	}
	cover, err := logic.Minimize(problem)
	if err != nil {
		panic(err)
	}
	fmt.Println(cover)
	fmt.Println(logic.Verify(problem, cover))
	// Output:
	// [x1 1x]
	// <nil>
}
