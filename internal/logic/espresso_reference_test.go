package logic

// The original map-of-minterm espresso kernels, kept verbatim as a
// differential oracle for the dense-bitset rewrite in espresso.go. The
// rewrite must produce cube-for-cube identical covers, because the covers
// feed the regex/FSM construction and the designed machines are golden.

import (
	"math/rand"
	"sort"
	"testing"

	"fsmpredict/internal/bitseq"
)

// minimizeHeuristicRef is the pre-bitset MinimizeHeuristic.
func minimizeHeuristicRef(p Problem) ([]bitseq.Cube, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.On) == 0 {
		return nil, nil
	}

	allowed := make(map[uint32]bool, len(p.On)+len(p.DC))
	onSet := make(map[uint32]bool, len(p.On))
	for _, m := range p.On {
		allowed[m] = true
		onSet[m] = true
	}
	for _, m := range p.DC {
		allowed[m] = true
	}

	cover := make([]bitseq.Cube, 0, len(onSet))
	for m := range onSet {
		cover = append(cover, bitseq.Minterm(m, p.Width))
	}
	bitseq.SortCubes(cover)

	cover = expandRef(cover, allowed, p.Width)
	cover = irredundantRef(cover, onSet)
	best := CoverCost(cover)

	for iter := 0; iter < 8; iter++ {
		reduced := reduceRef(cover, onSet, p.Width)
		candidate := expandRef(reduced, allowed, p.Width)
		candidate = irredundantRef(candidate, onSet)
		// Same coverage guard as the production kernel (the lost-coverage
		// bug predates the bitset rewrite and was fixed in both).
		if !coversAll(candidate, p.On) {
			break
		}
		cost := CoverCost(candidate)
		if !cost.Less(best) {
			break
		}
		cover, best = candidate, cost
	}
	bitseq.SortCubes(cover)
	return cover, nil
}

func fitsRef(c bitseq.Cube, allowed map[uint32]bool) bool {
	if c.Size() > uint64(len(allowed)) {
		return false
	}
	for _, m := range c.Minterms() {
		if !allowed[m] {
			return false
		}
	}
	return true
}

func expandRef(cover []bitseq.Cube, allowed map[uint32]bool, width int) []bitseq.Cube {
	out := make([]bitseq.Cube, 0, len(cover))
	for _, c := range cover {
		grown := true
		for grown {
			grown = false
			for b := 0; b < width; b++ {
				if c.Care>>uint(b)&1 == 0 {
					continue
				}
				cand := bitseq.NewCube(c.Value&^(1<<uint(b)), c.Care&^(1<<uint(b)), width)
				if fitsRef(cand, allowed) {
					c = cand
					grown = true
				}
			}
		}
		out = append(out, c)
	}
	return pruneContained(out)
}

func irredundantRef(cover []bitseq.Cube, onSet map[uint32]bool) []bitseq.Cube {
	order := make([]int, len(cover))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cover[order[a]], cover[order[b]]
		if ca.Literals() != cb.Literals() {
			return ca.Literals() > cb.Literals()
		}
		if ca.Care != cb.Care {
			return ca.Care < cb.Care
		}
		return ca.Value < cb.Value
	})
	removed := make([]bool, len(cover))
	for _, i := range order {
		needed := false
		for _, m := range cover[i].Minterms() {
			if !onSet[m] {
				continue
			}
			coveredElsewhere := false
			for j, c := range cover {
				if j == i || removed[j] {
					continue
				}
				if c.Matches(m) {
					coveredElsewhere = true
					break
				}
			}
			if !coveredElsewhere {
				needed = true
				break
			}
		}
		if !needed {
			removed[i] = true
		}
	}
	var out []bitseq.Cube
	for i, c := range cover {
		if !removed[i] {
			out = append(out, c)
		}
	}
	return out
}

func reduceRef(cover []bitseq.Cube, onSet map[uint32]bool, width int) []bitseq.Cube {
	var out []bitseq.Cube
	for i, c := range cover {
		var unique []uint32
		for _, m := range c.Minterms() {
			if !onSet[m] {
				continue
			}
			elsewhere := false
			for j, d := range cover {
				if j != i && d.Matches(m) {
					elsewhere = true
					break
				}
			}
			if !elsewhere {
				unique = append(unique, m)
			}
		}
		if len(unique) == 0 {
			continue
		}
		out = append(out, supercube(unique, width))
	}
	return out
}

// TestHeuristicDifferential checks the bitset espresso against the
// map-based oracle: covers must match cube for cube.
func TestHeuristicDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 400; round++ {
		p := randomProblem(rng, 1+rng.Intn(10))
		got, err := MinimizeHeuristic(p)
		if err != nil {
			t.Fatalf("round %d: MinimizeHeuristic: %v", round, err)
		}
		want, err := minimizeHeuristicRef(p)
		if err != nil {
			t.Fatalf("round %d: reference: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d (w=%d |on|=%d |dc|=%d): %d cubes, reference %d\ngot  %v\nwant %v",
				round, p.Width, len(p.On), len(p.DC), len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: cube %d = %v, reference %v", round, i, got[i], want[i])
			}
		}
		if err := Verify(p, got); err != nil {
			t.Fatalf("round %d: cover fails verification: %v", round, err)
		}
	}
}
