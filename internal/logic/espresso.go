package logic

import (
	"sort"

	"fsmpredict/internal/bitseq"
)

// MinimizeHeuristic minimizes the problem with the classic Espresso
// iteration: EXPAND grows each cube as far as the off-set allows,
// IRREDUNDANT drops cubes whose on-set contribution is covered by others,
// and REDUCE shrinks cubes to escape local minima before another EXPAND.
// The loop runs until the cover cost stops improving.
//
// The on-set and allowed-set (on ∪ dc) minterm tables are dense bitsets
// over the 2^Width history space (Width ≤ 24, so at most 2 MiB each):
// membership tests in the inner EXPAND/IRREDUNDANT/REDUCE loops are one
// shift and mask, and cube scans run through Cube.EachMinterm without
// materializing minterm slices.
func MinimizeHeuristic(p Problem) ([]bitseq.Cube, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.On) == 0 {
		return nil, nil
	}

	u := 1 << uint(p.Width)
	// allowed holds every minterm a cube may cover (on ∪ dc).
	allowed := bitseq.NewSet(u)
	onSet := bitseq.NewSet(u)
	for _, m := range p.On {
		allowed.Add(int(m))
		onSet.Add(int(m))
	}
	for _, m := range p.DC {
		allowed.Add(int(m))
	}
	allowedCount := uint64(allowed.Len())

	// Initial cover: the on-set minterms themselves.
	cover := make([]bitseq.Cube, 0, onSet.Len())
	onSet.ForEach(func(m int) {
		cover = append(cover, bitseq.Minterm(uint32(m), p.Width))
	})
	bitseq.SortCubes(cover)

	cover = expand(cover, allowed, allowedCount, p.Width)
	cover = irredundant(cover, onSet)
	best := CoverCost(cover)

	for iter := 0; iter < 8; iter++ {
		reduced := reduce(cover, onSet, p.Width)
		candidate := expand(reduced, allowed, allowedCount, p.Width)
		candidate = irredundant(candidate, onSet)
		// REDUCE shrinks every cube against the ORIGINAL cover, so two
		// cubes sharing a minterm can both drop it; if EXPAND did not win
		// it back, the candidate is not a cover — keep the last good one.
		if !coversAll(candidate, p.On) {
			break
		}
		cost := CoverCost(candidate)
		if !cost.Less(best) {
			break
		}
		cover, best = candidate, cost
	}
	bitseq.SortCubes(cover)
	return cover, nil
}

// coversAll reports whether every on-set minterm is matched by the cover.
func coversAll(cover []bitseq.Cube, on []uint32) bool {
	for _, m := range on {
		if !bitseq.CoverMatches(cover, m) {
			return false
		}
	}
	return true
}

// fits reports whether every minterm of c lies inside the allowed set.
// The early size check keeps enumeration bounded by |allowed|.
func fits(c bitseq.Cube, allowed *bitseq.Set, allowedCount uint64) bool {
	if c.Size() > allowedCount {
		return false
	}
	return c.EachMinterm(func(m uint32) bool {
		return allowed.Has(int(m))
	})
}

// expand grows every cube one freed literal at a time, greedily choosing
// the literal whose removal stays inside allowed, then prunes cubes
// contained in other cubes.
func expand(cover []bitseq.Cube, allowed *bitseq.Set, allowedCount uint64, width int) []bitseq.Cube {
	out := make([]bitseq.Cube, 0, len(cover))
	for _, c := range cover {
		grown := true
		for grown {
			grown = false
			// Greedy: free the first (deterministic order) bit that works.
			for b := 0; b < width; b++ {
				if c.Care>>uint(b)&1 == 0 {
					continue
				}
				cand := bitseq.NewCube(c.Value&^(1<<uint(b)), c.Care&^(1<<uint(b)), width)
				if fits(cand, allowed, allowedCount) {
					c = cand
					grown = true
				}
			}
		}
		out = append(out, c)
	}
	return pruneContained(out)
}

// pruneContained removes cubes contained in another cube of the cover.
func pruneContained(cover []bitseq.Cube) []bitseq.Cube {
	// Sort most-general first so containment scan is one pass.
	sorted := append([]bitseq.Cube(nil), cover...)
	bitseq.SortCubes(sorted)
	var out []bitseq.Cube
	for _, c := range sorted {
		contained := false
		for _, k := range out {
			if k.Contains(c) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, c)
		}
	}
	return out
}

// irredundant removes cubes whose on-set minterms are all covered by the
// remaining cubes, scanning the most specific cubes first.
func irredundant(cover []bitseq.Cube, onSet *bitseq.Set) []bitseq.Cube {
	order := make([]int, len(cover))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cover[order[a]], cover[order[b]]
		if ca.Literals() != cb.Literals() {
			return ca.Literals() > cb.Literals() // most specific first
		}
		if ca.Care != cb.Care {
			return ca.Care < cb.Care
		}
		return ca.Value < cb.Value
	})
	removed := make([]bool, len(cover))
	for _, i := range order {
		needed := false
		cover[i].EachMinterm(func(m uint32) bool {
			if !onSet.Has(int(m)) {
				return true
			}
			for j, c := range cover {
				if j == i || removed[j] {
					continue
				}
				if c.Matches(m) {
					return true // covered elsewhere; keep scanning
				}
			}
			needed = true
			return false
		})
		if !needed {
			removed[i] = true
		}
	}
	var out []bitseq.Cube
	for i, c := range cover {
		if !removed[i] {
			out = append(out, c)
		}
	}
	return out
}

// reduce shrinks each cube to the supercube of the on-set minterms only it
// covers, dropping cubes with no unique contribution. Shrinking within the
// original cube can never introduce off-set coverage.
func reduce(cover []bitseq.Cube, onSet *bitseq.Set, width int) []bitseq.Cube {
	var out []bitseq.Cube
	for i, c := range cover {
		var unique []uint32
		c.EachMinterm(func(m uint32) bool {
			if !onSet.Has(int(m)) {
				return true
			}
			for j, d := range cover {
				if j != i && d.Matches(m) {
					return true // covered elsewhere, not unique
				}
			}
			unique = append(unique, m)
			return true
		})
		if len(unique) == 0 {
			continue
		}
		out = append(out, supercube(unique, width))
	}
	return out
}

// supercube returns the smallest cube containing all the given minterms.
func supercube(minterms []uint32, width int) bitseq.Cube {
	mask := uint32(1)<<uint(width) - 1
	andV, orV := mask, uint32(0)
	for _, m := range minterms {
		andV &= m
		orV |= m
	}
	care := mask &^ (andV ^ orV) // positions where all minterms agree
	return bitseq.NewCube(andV&care, care, width)
}
