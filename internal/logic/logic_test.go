package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsmpredict/internal/bitseq"
)

func mustCubes(t *testing.T, ss ...string) []bitseq.Cube {
	t.Helper()
	out := make([]bitseq.Cube, len(ss))
	for i, s := range ss {
		out[i] = bitseq.MustParseCube(s)
	}
	return out
}

func coverSet(cover []bitseq.Cube) map[string]bool {
	m := map[string]bool{}
	for _, c := range cover {
		m[c.String()] = true
	}
	return m
}

func TestPaperExampleMinimization(t *testing.T) {
	// §4.4: predict1 = {01, 10, 11}, predict0 = {00}, dc = ∅
	// minimizes to ((x 1) ∨ (1 x)).
	p := Problem{Width: 2, On: []uint32{0b01, 0b10, 0b11}}
	for name, engine := range map[string]func(Problem) ([]bitseq.Cube, error){
		"qm": MinimizeQM, "heuristic": MinimizeHeuristic, "auto": Minimize,
	} {
		cover, err := engine(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := coverSet(cover)
		if len(got) != 2 || !got["x1"] || !got["1x"] {
			t.Errorf("%s: cover = %v, want {x1, 1x}", name, cover)
		}
		if err := Verify(p, cover); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFullOnSetCollapsesToTautology(t *testing.T) {
	p := Problem{Width: 4}
	for m := uint32(0); m < 16; m++ {
		p.On = append(p.On, m)
	}
	cover, err := Minimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 1 || cover[0].String() != "xxxx" {
		t.Fatalf("cover = %v, want [xxxx]", cover)
	}
}

func TestEmptyOnSet(t *testing.T) {
	cover, err := Minimize(Problem{Width: 3, DC: []uint32{1, 2}})
	if err != nil || len(cover) != 0 {
		t.Fatalf("cover = %v, err = %v; want empty, nil", cover, err)
	}
}

func TestDontCareAbsorption(t *testing.T) {
	// On = {0}, DC = {1}, width 1: the single cube "x" suffices.
	cover, err := Minimize(Problem{Width: 1, On: []uint32{0}, DC: []uint32{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 1 || cover[0].String() != "x" {
		t.Fatalf("cover = %v, want [x]", cover)
	}
}

func TestParityNeedsAllMinterms(t *testing.T) {
	// Odd parity of 3 bits admits no merging: minimal cover is 4 minterms.
	p := Problem{Width: 3, On: []uint32{0b001, 0b010, 0b100, 0b111}}
	for name, engine := range map[string]func(Problem) ([]bitseq.Cube, error){
		"qm": MinimizeQM, "heuristic": MinimizeHeuristic,
	} {
		cover, err := engine(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cover) != 4 {
			t.Errorf("%s: cover size = %d, want 4 (%v)", name, len(cover), cover)
		}
		if err := Verify(p, cover); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVerifyRejectsBadCovers(t *testing.T) {
	p := Problem{Width: 2, On: []uint32{0b01, 0b10}}
	// Missing on-set minterm.
	if err := Verify(p, mustCubes(t, "1x")); err == nil {
		t.Error("expected uncovered on-set error")
	}
	// Covers the off-set minterm 11.
	if err := Verify(p, mustCubes(t, "x1", "1x")); err == nil {
		t.Error("expected off-set coverage error")
	}
	// Wrong width.
	if err := Verify(p, mustCubes(t, "x1x")); err == nil {
		t.Error("expected width error")
	}
}

func TestProblemValidate(t *testing.T) {
	if err := (Problem{Width: 0}).Validate(); err == nil {
		t.Error("expected width error")
	}
	if err := (Problem{Width: 2, On: []uint32{4}}).Validate(); err == nil {
		t.Error("expected out-of-width minterm error")
	}
	if err := (Problem{Width: 2, On: []uint32{1}, DC: []uint32{1}}).Validate(); err == nil {
		t.Error("expected overlap error")
	}
	if err := (Problem{Width: 2, On: []uint32{1}, DC: []uint32{2}}).Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFromPartition(t *testing.T) {
	on := mustCubes(t, "01", "11")
	dc := mustCubes(t, "10")
	p := FromPartition(2, on, dc)
	if len(p.On) != 2 || len(p.DC) != 1 || p.Width != 2 {
		t.Fatalf("FromPartition = %+v", p)
	}
}

func TestCoverCost(t *testing.T) {
	c := CoverCost(mustCubes(t, "1x", "x11"))
	if c.Cubes != 2 || c.Literals != 3 {
		t.Fatalf("cost = %+v, want {2 3}", c)
	}
	if !(Cost{1, 5}).Less(Cost{2, 1}) {
		t.Error("fewer cubes should win")
	}
	if !(Cost{2, 1}).Less(Cost{2, 3}) {
		t.Error("fewer literals should break ties")
	}
}

func randomProblem(rng *rand.Rand, width int) Problem {
	p := Problem{Width: width}
	for m := uint32(0); m < 1<<uint(width); m++ {
		switch rng.Intn(3) {
		case 0:
			p.On = append(p.On, m)
		case 1:
			p.DC = append(p.DC, m)
		}
	}
	return p
}

func TestEnginesProduceValidCoversQuick(t *testing.T) {
	f := func(seed int64, widthRaw uint8) bool {
		width := int(widthRaw%7) + 2
		p := randomProblem(rand.New(rand.NewSource(seed)), width)
		for _, engine := range []func(Problem) ([]bitseq.Cube, error){
			MinimizeQM, MinimizeHeuristic, Minimize,
		} {
			cover, err := engine(p)
			if err != nil {
				return false
			}
			if err := Verify(p, cover); err != nil {
				t.Logf("seed %d width %d: %v", seed, width, err)
				return false
			}
			if len(cover) > len(p.On) {
				return false // never worse than the raw minterm list
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// bruteForceMinCubes finds the true minimum number of cubes for tiny
// problems by exhaustive search over all valid cubes.
func bruteForceMinCubes(p Problem) int {
	allowed := map[uint32]bool{}
	for _, m := range p.On {
		allowed[m] = true
	}
	for _, m := range p.DC {
		allowed[m] = true
	}
	var valid []bitseq.Cube
	mask := uint32(1)<<uint(p.Width) - 1
	for care := uint32(0); care <= mask; care++ {
		for value := uint32(0); value <= mask; value++ {
			if value&^care != 0 {
				continue
			}
			c := bitseq.NewCube(value, care, p.Width)
			ok := true
			for _, m := range c.Minterms() {
				if !allowed[m] {
					ok = false
					break
				}
			}
			if ok {
				valid = append(valid, c)
			}
		}
	}
	if len(p.On) == 0 {
		return 0
	}
	best := len(p.On)
	var rec func(uncovered []uint32, used int)
	rec = func(uncovered []uint32, used int) {
		if len(uncovered) == 0 {
			if used < best {
				best = used
			}
			return
		}
		if used+1 > best {
			return
		}
		m := uncovered[0]
		for _, c := range valid {
			if !c.Matches(m) {
				continue
			}
			var rest []uint32
			for _, u := range uncovered {
				if !c.Matches(u) {
					rest = append(rest, u)
				}
			}
			rec(rest, used+1)
		}
	}
	rec(p.On, 0)
	return best
}

func TestQMFindsMinimumCubeCountWidth3(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 3)
		cover, err := MinimizeQM(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(p, cover); err != nil {
			t.Fatal(err)
		}
		want := bruteForceMinCubes(p)
		if len(cover) != want {
			t.Errorf("trial %d: QM found %d cubes, optimum is %d (on=%v dc=%v)",
				trial, len(cover), want, p.On, p.DC)
		}
	}
}

func TestPrimeImplicantsAreMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		p := randomProblem(rng, 4)
		if len(p.On) == 0 {
			continue
		}
		allowed := map[uint32]bool{}
		for _, m := range p.On {
			allowed[m] = true
		}
		for _, m := range p.DC {
			allowed[m] = true
		}
		primes := PrimeImplicants(p)
		for _, c := range primes {
			// Valid: covers only allowed minterms.
			for _, m := range c.Minterms() {
				if !allowed[m] {
					t.Fatalf("prime %v covers off-set minterm %d", c, m)
				}
			}
			// Maximal: freeing any cared bit breaks validity.
			for b := 0; b < p.Width; b++ {
				if c.Care>>uint(b)&1 == 0 {
					continue
				}
				bigger := bitseq.NewCube(c.Value&^(1<<uint(b)), c.Care&^(1<<uint(b)), p.Width)
				ok := true
				for _, m := range bigger.Minterms() {
					if !allowed[m] {
						ok = false
						break
					}
				}
				if ok {
					t.Fatalf("prime %v is not maximal: %v also valid", c, bigger)
				}
			}
		}
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(5)), 6)
	a, err := Minimize(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic cover size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic cover at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkMinimizeQMWidth8(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(11)), 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeQM(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizeHeuristicWidth10(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(11)), 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeHeuristic(p); err != nil {
			b.Fatal(err)
		}
	}
}
