package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoFlush doubles every item, recording the groups it saw.
type echoFlush struct {
	mu     sync.Mutex
	groups [][]int
	keys   []string
}

func (f *echoFlush) fn(key string, items []int) []Outcome[int] {
	f.mu.Lock()
	f.groups = append(f.groups, append([]int(nil), items...))
	f.keys = append(f.keys, key)
	f.mu.Unlock()
	outs := make([]Outcome[int], len(items))
	for i, v := range items {
		outs[i] = Outcome[int]{Val: 2 * v}
	}
	return outs
}

// submitN submits 0..n-1 under key from n goroutines and returns the
// results (index-aligned) once all have completed.
func submitN(t *testing.T, b *Batcher[string, int, int], key string, n int) []int {
	t.Helper()
	res := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i], errs[i] = b.Submit(context.Background(), key, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
	}
	return res
}

func TestFlushBySize(t *testing.T) {
	var f echoFlush
	// MaxWait far away: only the size trigger can flush.
	b := New(Config{MaxBatch: 4, MaxWait: time.Hour}, f.fn)
	res := submitN(t, b, "k", 8)
	for i, v := range res {
		if v != 2*i {
			t.Errorf("result[%d] = %d, want %d", i, v, 2*i)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.groups) != 2 {
		t.Fatalf("flushes = %d, want 2 groups of 4", len(f.groups))
	}
	for _, g := range f.groups {
		if len(g) != 4 {
			t.Errorf("group size = %d, want 4", len(g))
		}
	}
	st := b.Stats()
	if st.Submitted != 8 || st.Flushed != 8 || st.Flushes != 2 || st.Pending != 0 {
		t.Errorf("stats = %+v", st)
	}
	b.Close()
}

func TestFlushByTimer(t *testing.T) {
	var f echoFlush
	b := New(Config{MaxBatch: 1000, MaxWait: 5 * time.Millisecond}, f.fn)
	defer b.Close()
	if got, err := b.Submit(context.Background(), "k", 21); err != nil || got != 42 {
		t.Fatalf("Submit = %d, %v; want 42", got, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.groups) != 1 || len(f.groups[0]) != 1 {
		t.Fatalf("groups = %v, want one group of one item", f.groups)
	}
}

func TestGroupsByKey(t *testing.T) {
	var f echoFlush
	b := New(Config{MaxBatch: 100, MaxWait: 5 * time.Millisecond}, f.fn)
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i%3)
			if _, err := b.Submit(context.Background(), key, i); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	// Every flushed group must be pure: all items congruent mod 3, and
	// matching the group's key.
	for gi, g := range f.groups {
		want := fmt.Sprintf("key-%d", g[0]%3)
		if f.keys[gi] != want {
			t.Errorf("group %d under key %q, items %v", gi, f.keys[gi], g)
		}
		for _, v := range g {
			if v%3 != g[0]%3 {
				t.Errorf("group %d mixes keys: %v", gi, g)
			}
		}
	}
}

func TestPanicFailsGroupOnly(t *testing.T) {
	b := New(Config{MaxBatch: 4, MaxWait: 10 * time.Millisecond}, func(key string, items []int) []Outcome[int] {
		if key == "boom" {
			panic("kernel exploded")
		}
		outs := make([]Outcome[int], len(items))
		for i, v := range items {
			outs[i].Val = v
		}
		return outs
	})
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), "boom", i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || err.Error() != "batch: flush panicked: kernel exploded" {
			t.Errorf("item %d error = %v, want flush panic error", i, err)
		}
	}
	// The batcher must still work for other groups.
	if got, err := b.Submit(context.Background(), "ok", 7); err != nil || got != 7 {
		t.Errorf("post-panic Submit = %d, %v", got, err)
	}
}

func TestMiscountedFlushFailsGroup(t *testing.T) {
	b := New(Config{MaxBatch: 2, MaxWait: time.Hour}, func(key string, items []int) []Outcome[int] {
		return make([]Outcome[int], 1) // wrong length
	})
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), "k", i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("item %d: nil error from miscounted flush", i)
		}
	}
}

func TestCloseDrainsPending(t *testing.T) {
	var f echoFlush
	// Neither trigger can fire on its own: MaxWait is an hour, and the
	// batch never fills. Close must flush the stragglers.
	b := New(Config{MaxBatch: 1000, MaxWait: time.Hour}, f.fn)
	const n = 17
	res := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i], errs[i] = b.Submit(context.Background(), fmt.Sprintf("key-%d", i%5), i)
		}(i)
	}
	// Wait until all n items are pending, then close.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if b.Stats().Pending == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("items never queued: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	wg.Wait()
	for i := range res {
		if errs[i] != nil {
			t.Errorf("item %d dropped by Close: %v", i, errs[i])
		} else if res[i] != 2*i {
			t.Errorf("item %d = %d, want %d", i, res[i], 2*i)
		}
	}
	if st := b.Stats(); st.Flushed != n || st.Pending != 0 {
		t.Errorf("stats after Close = %+v", st)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	var f echoFlush
	b := New(Config{}, f.fn)
	b.Close()
	if _, err := b.Submit(context.Background(), "k", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestContextCancelAbandonsWaitNotItem(t *testing.T) {
	flushed := make(chan []int, 1)
	b := New(Config{MaxBatch: 1000, MaxWait: 20 * time.Millisecond}, func(key string, items []int) []Outcome[int] {
		flushed <- append([]int(nil), items...)
		return make([]Outcome[int], len(items))
	})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Submit(ctx, "k", 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with dead ctx = %v, want context.Canceled", err)
	}
	// The abandoned item still flushes.
	select {
	case items := <-flushed:
		if len(items) != 1 || items[0] != 5 {
			t.Errorf("flushed %v, want [5]", items)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned item never flushed")
	}
}

// TestBatcherStress hammers one batcher from many goroutines across
// many keys with both triggers active, checking under -race that every
// item gets exactly its own result.
func TestBatcherStress(t *testing.T) {
	var f echoFlush
	b := New(Config{MaxBatch: 8, MaxWait: 500 * time.Microsecond}, f.fn)
	const (
		workers = 16
		perW    = 200
	)
	var wrong atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				v := w*perW + i
				got, err := b.Submit(context.Background(), fmt.Sprintf("key-%d", v%7), v)
				if err != nil || got != 2*v {
					wrong.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	if wrong.Load() != 0 {
		t.Fatalf("%d submissions returned the wrong result", wrong.Load())
	}
	st := b.Stats()
	if st.Submitted != workers*perW || st.Flushed != workers*perW || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Flushes == 0 || st.Flushes > st.Flushed {
		t.Fatalf("implausible flush count: %+v", st)
	}
}
