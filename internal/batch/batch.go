// Package batch implements a generic coalescing micro-batcher: the
// building block that turns a stream of independent requests into
// grouped kernel passes.
//
// Callers Submit items under a grouping key; the batcher accumulates
// items per key and hands each group to a single flush callback when
// the group reaches MaxBatch items or MaxWait after the group's first
// item arrived, whichever comes first. Every submitter blocks on its
// own result channel, so from the caller's point of view Submit looks
// exactly like a synchronous call — the batching is invisible except
// for the bounded added latency.
//
// The serving layer uses this to aim concurrent /v1/batch requests at
// the single-pass simulation kernels (bpred.RunAll, fsm.BlockTable):
// requests grouped by trace-store key collapse into one pass over the
// shared trace instead of one pass per request.
//
// A Batcher makes these guarantees:
//
//   - Every item accepted by Submit receives exactly one outcome, even
//     if the flush callback panics (the panic is recovered and reported
//     as that group's error) and even if Close runs concurrently
//     (pending groups are flushed during Close, not dropped).
//   - Flush runs at most once per accepted item.
//   - A caller whose context ends stops waiting but its item still
//     flushes; the outcome is discarded.
package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Submit after Close has begun: the item was
// not accepted and will not be flushed.
var ErrClosed = errors.New("batch: batcher closed")

// DefaultMaxBatch bounds a group when Config.MaxBatch is zero.
const DefaultMaxBatch = 64

// DefaultMaxWait is the flush deadline when Config.MaxWait is zero.
const DefaultMaxWait = 2 * time.Millisecond

// Config sizes a Batcher. The zero value picks the defaults above.
type Config struct {
	// MaxBatch flushes a group as soon as it holds this many items.
	MaxBatch int
	// MaxWait flushes a non-full group this long after its first item
	// arrived, bounding the latency batching can add.
	MaxWait time.Duration
	// OnFlush, if set, observes every flush: the group's item count and
	// the flush callback's wall time. It runs on the flushing goroutine
	// and must be safe for concurrent use.
	OnFlush func(size int, elapsed time.Duration)
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c Config) maxWait() time.Duration {
	if c.MaxWait <= 0 {
		return DefaultMaxWait
	}
	return c.MaxWait
}

// Outcome is one item's result from a flush.
type Outcome[R any] struct {
	Val R
	Err error
}

// FlushFunc processes one group in a single pass and returns one
// outcome per item, index-aligned with items. Returning a slice of any
// other length fails the whole group (a flush bug must not strand or
// misdeliver results).
type FlushFunc[K comparable, T, R any] func(key K, items []T) []Outcome[R]

// Stats is a snapshot of a batcher's counters.
type Stats struct {
	// Submitted counts items accepted by Submit.
	Submitted uint64
	// Flushed counts items delivered through completed flushes.
	Flushed uint64
	// Flushes counts flush callback invocations (groups processed).
	Flushes uint64
	// Pending counts accepted items still waiting to flush.
	Pending int
}

// group is one key's accumulating batch. The timer belongs to the
// group, not the key: a key whose group flushed by size can start a
// fresh group (with a fresh timer) while the old flush still runs.
type group[T, R any] struct {
	items []T
	outs  []chan Outcome[R]
	timer *time.Timer
}

// Batcher coalesces submitted items into per-key groups and flushes
// each group in one callback invocation. Construct with New; release
// with Close. Safe for concurrent use.
type Batcher[K comparable, T, R any] struct {
	cfg   Config
	flush FlushFunc[K, T, R]

	mu      sync.Mutex
	closed  bool
	groups  map[K]*group[T, R]
	pending int
	wg      sync.WaitGroup // in-flight flushes

	submitted atomic.Uint64
	flushed   atomic.Uint64
	flushes   atomic.Uint64
}

// New returns a Batcher that groups items with cfg's flush policy and
// processes each group with flush.
func New[K comparable, T, R any](cfg Config, flush FlushFunc[K, T, R]) *Batcher[K, T, R] {
	if flush == nil {
		panic("batch: nil flush func")
	}
	return &Batcher[K, T, R]{
		cfg:    cfg,
		flush:  flush,
		groups: make(map[K]*group[T, R]),
	}
}

// Stats snapshots the batcher's counters.
func (b *Batcher[K, T, R]) Stats() Stats {
	b.mu.Lock()
	pending := b.pending
	b.mu.Unlock()
	return Stats{
		Submitted: b.submitted.Load(),
		Flushed:   b.flushed.Load(),
		Flushes:   b.flushes.Load(),
		Pending:   pending,
	}
}

// Submit queues item under key and blocks until the group it joined is
// flushed (returning this item's outcome) or ctx ends (returning
// ctx.Err(); the item still flushes, its outcome is discarded). After
// Close has begun it returns ErrClosed without accepting the item.
func (b *Batcher[K, T, R]) Submit(ctx context.Context, key K, item T) (R, error) {
	ch := make(chan Outcome[R], 1)

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		var zero R
		return zero, ErrClosed
	}
	b.submitted.Add(1)
	b.pending++
	g := b.groups[key]
	if g == nil {
		g = &group[T, R]{}
		b.groups[key] = g
		// The timer closure identifies the group by pointer: if the
		// group flushes by size (or Close detaches it) before the timer
		// fires, the fire finds a different (or no) group under the key
		// and does nothing.
		g.timer = time.AfterFunc(b.cfg.maxWait(), func() { b.flushByTimer(key, g) })
	}
	g.items = append(g.items, item)
	g.outs = append(g.outs, ch)
	if len(g.items) >= b.cfg.maxBatch() {
		b.detachLocked(key, g)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.runFlush(key, g)
		}()
	}
	b.mu.Unlock()

	select {
	case out := <-ch:
		return out.Val, out.Err
	case <-ctx.Done():
		var zero R
		return zero, ctx.Err()
	}
}

// flushByTimer is the MaxWait path, running on the timer goroutine.
func (b *Batcher[K, T, R]) flushByTimer(key K, g *group[T, R]) {
	b.mu.Lock()
	if b.groups[key] != g {
		// Already flushed by size, or detached by Close (which flushes
		// it itself).
		b.mu.Unlock()
		return
	}
	b.detachLocked(key, g)
	b.wg.Add(1)
	b.mu.Unlock()
	defer b.wg.Done()
	b.runFlush(key, g)
}

// detachLocked removes a group from the pending set so a flush can run
// on it outside the lock. Callers hold b.mu.
func (b *Batcher[K, T, R]) detachLocked(key K, g *group[T, R]) {
	delete(b.groups, key)
	b.pending -= len(g.items)
	g.timer.Stop()
}

// Close stops accepting submissions, flushes every pending group, and
// waits for all in-flight flushes to complete, so every item accepted
// before Close receives its outcome. Close is idempotent; concurrent
// and repeated calls all block until the drain finishes.
func (b *Batcher[K, T, R]) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for key, g := range b.groups {
			b.detachLocked(key, g)
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.runFlush(key, g)
			}()
		}
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// runFlush invokes the flush callback on one detached group and
// delivers each item's outcome. The result channels are buffered, so
// delivery never blocks on a departed waiter.
func (b *Batcher[K, T, R]) runFlush(key K, g *group[T, R]) {
	start := time.Now()
	outs := b.safeFlush(key, g.items)
	elapsed := time.Since(start)
	b.flushes.Add(1)
	b.flushed.Add(uint64(len(g.items)))
	if b.cfg.OnFlush != nil {
		b.cfg.OnFlush(len(g.items), elapsed)
	}
	for i, ch := range g.outs {
		ch <- outs[i]
	}
}

// safeFlush runs the callback with panic containment: a panicking
// flush fails its group (every item gets the error) instead of killing
// the process and stranding the group's waiters.
func (b *Batcher[K, T, R]) safeFlush(key K, items []T) (outs []Outcome[R]) {
	defer func() {
		if p := recover(); p != nil {
			outs = errOutcomes[R](len(items), fmt.Errorf("batch: flush panicked: %v", p))
		}
	}()
	outs = b.flush(key, items)
	if len(outs) != len(items) {
		outs = errOutcomes[R](len(items),
			fmt.Errorf("batch: flush returned %d outcomes for %d items", len(outs), len(items)))
	}
	return outs
}

// errOutcomes fails a whole group with one error.
func errOutcomes[R any](n int, err error) []Outcome[R] {
	outs := make([]Outcome[R], n)
	for i := range outs {
		outs[i].Err = err
	}
	return outs
}
