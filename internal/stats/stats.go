// Package stats provides the small numerical and reporting helpers the
// experiment harness uses: least-squares line fitting (the Figure 4 area
// model), Pareto frontier extraction (the Figure 2 tradeoff curves), and
// plain-text table/series rendering for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is a 2-D sample.
type Point struct {
	X, Y float64
}

// Series is a named list of points, e.g. one predictor's area/miss curve.
type Series struct {
	Name   string
	Points []Point
}

// Sort orders the series by X ascending (stable for equal X).
func (s *Series) Sort() {
	sort.SliceStable(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Fit is a least-squares line y = Intercept + Slope*x.
type Fit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// At evaluates the fitted line.
func (f Fit) At(x float64) float64 { return f.Intercept + f.Slope*x }

// LinearFit computes the least-squares line through the points. It
// returns an error with fewer than two distinct X values.
func LinearFit(pts []Point) (Fit, error) {
	if len(pts) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, have %d", len(pts))
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for _, p := range pts {
		dx, dy := p.X-mx, p.Y-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: all points share one x value")
	}
	f := Fit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy > 0 {
		var ssRes float64
		for _, p := range pts {
			r := p.Y - f.At(p.X)
			ssRes += r * r
		}
		f.R2 = 1 - ssRes/syy
	} else {
		f.R2 = 1
	}
	return f, nil
}

// TheilSen computes the robust Theil–Sen line: the median of all
// pairwise slopes, with the median residual as intercept. It tolerates a
// large minority of outliers (the "highly regular machines" of Figure 4)
// that would drag an ordinary least-squares fit. R2 is reported against
// the full point set.
func TheilSen(pts []Point) (Fit, error) {
	if len(pts) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, have %d", len(pts))
	}
	var slopes []float64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			dx := pts[j].X - pts[i].X
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (pts[j].Y-pts[i].Y)/dx)
		}
	}
	if len(slopes) == 0 {
		return Fit{}, fmt.Errorf("stats: all points share one x value")
	}
	f := Fit{Slope: median(slopes)}
	residuals := make([]float64, len(pts))
	for i, p := range pts {
		residuals[i] = p.Y - f.Slope*p.X
	}
	f.Intercept = median(residuals)

	var my float64
	for _, p := range pts {
		my += p.Y
	}
	my /= float64(len(pts))
	var ssRes, ssTot float64
	for _, p := range pts {
		r := p.Y - f.At(p.X)
		ssRes += r * r
		d := p.Y - my
		ssTot += d * d
	}
	if ssTot > 0 {
		f.R2 = 1 - ssRes/ssTot
	} else {
		f.R2 = 1
	}
	return f, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// ParetoMax extracts the Pareto-optimal subset of points where larger X
// and larger Y are both better (the accuracy/coverage frontier). The
// result is sorted by X ascending.
func ParetoMax(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X > sorted[j].X
		}
		return sorted[i].Y > sorted[j].Y
	})
	var out []Point
	best := math.Inf(-1)
	for _, p := range sorted {
		if p.Y > best {
			out = append(out, p)
			best = p.Y
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// ParetoMinX extracts the frontier where smaller X (area) and smaller Y
// (miss rate) are both better. The result is sorted by X ascending.
func ParetoMinX(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	var out []Point
	best := math.Inf(1)
	for _, p := range sorted {
		if p.Y < best {
			out = append(out, p)
			best = p.Y
		}
	}
	return out
}

// Table is a simple aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", width[i]-len(cell)))
		}
		sb.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range width {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
		sb.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders series as comma-separated values with a name column,
// suitable for external plotting.
func CSV(series []Series) string {
	var sb strings.Builder
	sb.WriteString("series,x,y\n")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%s,%g,%g\n", s.Name, p.X, p.Y)
		}
	}
	return sb.String()
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
