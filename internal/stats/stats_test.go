package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	pts := []Point{{0, 2}, {1, 5}, {2, 8}, {3, 11}}
	f, err := LinearFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-3) > 1e-12 || math.Abs(f.Intercept-2) > 1e-12 {
		t.Errorf("fit = %+v, want slope 3 intercept 2", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
	if f.At(10) != 32 {
		t.Errorf("At(10) = %v, want 32", f.At(10))
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	for i := 0; i < 200; i++ {
		x := float64(i)
		pts = append(pts, Point{x, 4 + 2.5*x + rng.NormFloat64()*3})
	}
	f, err := LinearFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2.5) > 0.05 {
		t.Errorf("slope = %v, want ~2.5", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]Point{{1, 1}}); err == nil {
		t.Error("expected error for a single point")
	}
	if _, err := LinearFit([]Point{{1, 1}, {1, 2}}); err == nil {
		t.Error("expected error for degenerate x")
	}
}

func TestLinearFitResidualOrthogonalityQuick(t *testing.T) {
	// Least squares: residuals sum to ~0 and are orthogonal to x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 3
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		fit, err := LinearFit(pts)
		if err != nil {
			return true // degenerate draw
		}
		var sum, dot float64
		for _, p := range pts {
			r := p.Y - fit.At(p.X)
			sum += r
			dot += r * p.X
		}
		return math.Abs(sum) < 1e-6*float64(n)*100 && math.Abs(dot) < 1e-4*float64(n)*10000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParetoMax(t *testing.T) {
	pts := []Point{
		{0.9, 0.2}, {0.8, 0.5}, {0.7, 0.4}, {0.6, 0.9}, {0.95, 0.1}, {0.8, 0.45},
	}
	front := ParetoMax(pts)
	want := []Point{{0.6, 0.9}, {0.8, 0.5}, {0.9, 0.2}, {0.95, 0.1}}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
}

func TestParetoMinX(t *testing.T) {
	pts := []Point{
		{100, 0.2}, {200, 0.15}, {150, 0.25}, {300, 0.05}, {250, 0.3},
	}
	front := ParetoMinX(pts)
	want := []Point{{100, 0.2}, {200, 0.15}, {300, 0.05}}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
}

func TestParetoEmpty(t *testing.T) {
	if ParetoMax(nil) != nil || ParetoMinX(nil) != nil {
		t.Error("empty input should give empty frontier")
	}
}

func TestParetoFrontierDominanceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, rng.Intn(40)+1)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		front := ParetoMax(pts)
		// No frontier point is dominated by any input point.
		for _, fp := range front {
			for _, p := range pts {
				if p.X > fp.X && p.Y > fp.Y {
					return false
				}
			}
		}
		return len(front) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSeriesSort(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{3, 1}, {1, 2}, {2, 3}}}
	s.Sort()
	if s.Points[0].X != 1 || s.Points[2].X != 3 {
		t.Errorf("Sort = %v", s.Points)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Headers: []string{"name", "value"}}
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", 100)
	out := tb.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "alpha") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table should have 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator:\n%s", out)
	}
	// float formatting
	if !strings.Contains(out, "3.142") {
		t.Errorf("float not formatted:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]Series{
		{Name: "a", Points: []Point{{1, 2}}},
		{Name: "b", Points: []Point{{3, 4.5}}},
	})
	want := "series,x,y\na,1,2\nb,3,4.5\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}
