package stats

import (
	"fmt"
	"math"
	"strings"
)

// ScatterOptions controls ASCII scatter rendering.
type ScatterOptions struct {
	// Width and Height are the plot dimensions in characters
	// (defaults 64x20).
	Width, Height int
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Line, when non-nil, is drawn over the points (Figure 4's trend).
	Line *Fit
}

// Scatter renders points (and optionally a fitted line) as a plain-text
// plot, for terminal output from the cmd tools.
func Scatter(pts []Point, opt ScatterOptions) string {
	if len(pts) == 0 {
		return "(no points)\n"
	}
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 20
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(opt.Width-1))
		return clampInt(c, 0, opt.Width-1)
	}
	row := func(y float64) int {
		r := int((maxY - y) / (maxY - minY) * float64(opt.Height-1))
		return clampInt(r, 0, opt.Height-1)
	}

	if opt.Line != nil {
		for c := 0; c < opt.Width; c++ {
			x := minX + (maxX-minX)*float64(c)/float64(opt.Width-1)
			y := opt.Line.At(x)
			if y < minY || y > maxY {
				continue
			}
			grid[row(y)][c] = '-'
		}
	}
	for _, p := range pts {
		grid[row(p.Y)][col(p.X)] = '*'
	}

	var sb strings.Builder
	if opt.YLabel != "" {
		fmt.Fprintf(&sb, "%s\n", opt.YLabel)
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.4g ", maxY)
		case opt.Height - 1:
			label = fmt.Sprintf("%7.4g ", minY)
		}
		sb.WriteString(label)
		sb.WriteString("|")
		sb.Write(line)
		sb.WriteString("\n")
	}
	sb.WriteString("        +")
	sb.WriteString(strings.Repeat("-", opt.Width))
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "        %-.4g%s%.4g\n", minX,
		strings.Repeat(" ", maxInt(1, opt.Width-len(fmt.Sprintf("%.4g", minX))-len(fmt.Sprintf("%.4g", maxX)))),
		maxX)
	if opt.XLabel != "" {
		fmt.Fprintf(&sb, "        %s\n", opt.XLabel)
	}
	return sb.String()
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
