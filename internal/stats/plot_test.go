package stats

import (
	"strings"
	"testing"
)

func TestScatterRendersPoints(t *testing.T) {
	pts := []Point{{0, 0}, {10, 100}, {5, 50}}
	out := Scatter(pts, ScatterOptions{Width: 40, Height: 10, XLabel: "states", YLabel: "area"})
	if !strings.Contains(out, "*") {
		t.Fatal("no points rendered")
	}
	if !strings.Contains(out, "states") || !strings.Contains(out, "area") {
		t.Error("labels missing")
	}
	lines := strings.Split(out, "\n")
	// Corner points: first grid row has the max-Y point, last has min-Y.
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 10 {
		t.Fatalf("grid has %d rows, want 10", len(gridLines))
	}
	if !strings.Contains(gridLines[0], "*") || !strings.Contains(gridLines[9], "*") {
		t.Error("extreme points not on the first/last rows")
	}
	if !strings.HasPrefix(gridLines[0], "    100 ") {
		t.Errorf("max-Y label wrong: %q", gridLines[0])
	}
}

func TestScatterWithLine(t *testing.T) {
	var pts []Point
	for i := 0; i <= 10; i++ {
		pts = append(pts, Point{float64(i), float64(2 * i)})
	}
	fit, err := LinearFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	out := Scatter(pts, ScatterOptions{Width: 30, Height: 8, Line: &fit})
	if !strings.Contains(out, "-") {
		t.Error("fitted line not drawn")
	}
}

func TestScatterEmptyAndDegenerate(t *testing.T) {
	if out := Scatter(nil, ScatterOptions{}); !strings.Contains(out, "no points") {
		t.Error("empty plot message missing")
	}
	// Single point (degenerate ranges) must not panic.
	out := Scatter([]Point{{3, 4}}, ScatterOptions{Width: 10, Height: 5})
	if !strings.Contains(out, "*") {
		t.Error("single point not rendered")
	}
}
