package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestTheilSenExactLine(t *testing.T) {
	pts := []Point{{0, 1}, {1, 3}, {2, 5}, {5, 11}}
	f, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", f)
	}
	if f.R2 < 0.999 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestTheilSenRobustToOutliers(t *testing.T) {
	// A clean line plus 25% wild low outliers (the regular machines of
	// Figure 4): least squares bends, Theil–Sen should not.
	var pts []Point
	for i := 1; i <= 40; i++ {
		x := float64(i * 5)
		pts = append(pts, Point{x, 10 + 13*x})
	}
	for i := 0; i < 12; i++ {
		pts = append(pts, Point{float64(100 + i*20), 30}) // far below
	}
	robust, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(robust.Slope-13) > 1.0 {
		t.Errorf("Theil-Sen slope = %v, want ~13 despite outliers", robust.Slope)
	}
	ls, err := LinearFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ls.Slope-13) < math.Abs(robust.Slope-13) {
		t.Errorf("least squares (%v) should be more biased than Theil-Sen (%v)",
			ls.Slope, robust.Slope)
	}
}

func TestTheilSenErrors(t *testing.T) {
	if _, err := TheilSen([]Point{{1, 1}}); err == nil {
		t.Error("expected error for one point")
	}
	if _, err := TheilSen([]Point{{2, 1}, {2, 5}}); err == nil {
		t.Error("expected error for degenerate x")
	}
}

func TestTheilSenMatchesLeastSquaresOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var pts []Point
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 50
		pts = append(pts, Point{x, 2 + 3*x + rng.NormFloat64()*0.5})
	}
	ts, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := LinearFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts.Slope-ls.Slope) > 0.1 || math.Abs(ts.Intercept-ls.Intercept) > 1 {
		t.Errorf("clean data: Theil-Sen %+v vs least squares %+v", ts, ls)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
}
