package fidelity

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/disktier"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/trace"
)

func twoBit() *fsm.Machine { return counters.NewTwoBit().Config().Machine() }

// lastOutcome is the 1-bit last-outcome predictor.
func lastOutcome() *fsm.Machine {
	return &fsm.Machine{
		Output: []bool{false, true},
		Next:   [][2]int{{0, 1}, {0, 1}},
	}
}

func randomMachine(rng *rand.Rand, n int) *fsm.Machine {
	m := &fsm.Machine{Output: make([]bool, n), Next: make([][2]int, n)}
	for s := 0; s < n; s++ {
		m.Output[s] = rng.Intn(2) == 1
		m.Next[s][0] = rng.Intn(n)
		m.Next[s][1] = rng.Intn(n)
	}
	return m
}

// driftingTrace builds a phase-shifted outcome stream: alternating
// strongly-taken and strongly-not-taken biased segments, the regime
// simpoint windowing exists for (a plain prefix sees only the first
// phase and misestimates badly).
func driftingTrace(t *testing.T, segs int, segLen int) []bool {
	t.Helper()
	out := make([]bool, 0, segs*segLen)
	for s := 0; s < segs; s++ {
		bias, runlen := 0.92, 12.0
		if s%2 == 1 {
			bias, runlen = 0.15, 3.0
		}
		evs, err := trace.GenBiased(segLen, bias, runlen, int64(101+s))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evs {
			out = append(out, e.Taken)
		}
	}
	return out
}

func packed(tr []bool) ([]uint64, int) {
	b := bitseq.FromBools(tr)
	return b.Words(), b.Len()
}

func TestTraceDigestMasksTail(t *testing.T) {
	a := []uint64{0x0123456789abcdef, 0x00000000000000ff}
	b := []uint64{0x0123456789abcdef, 0xdeadbeef000000ff}
	if TraceDigest(a, 72) != TraceDigest(b, 72) {
		t.Fatal("digest depends on bits past n")
	}
	if TraceDigest(a, 72) == TraceDigest(a, 71) {
		t.Fatal("digest ignores n")
	}
	if TraceDigest(a, 64) != TraceDigest(a[:1], 64) {
		t.Fatal("digest depends on unused trailing words")
	}
}

func TestFitnessKeyStructural(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMachine(rng, 8)
	tr := TraceDigest([]uint64{42}, 64)

	renamed := m.Clone()
	renamed.Name = "other-name"
	if FitnessKey(m, tr, 16) != FitnessKey(renamed, tr, 16) {
		t.Fatal("renamed copy got a different fitness key")
	}
	mut := m.Clone()
	mut.Output[3] = !mut.Output[3]
	if FitnessKey(m, tr, 16) == FitnessKey(mut, tr, 16) {
		t.Fatal("structurally different machines share a fitness key")
	}
	if FitnessKey(m, tr, 16) == FitnessKey(m, tr, 17) {
		t.Fatal("warmup not part of the fitness key")
	}
}

func TestMemoDiskTierAndCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	SetDiskTier(store)
	defer SetDiskTier(nil)
	ResetMemo()

	k := DigestKey("test-fitness", []byte("a"))
	MemoPut(k, 0.3125)
	if v, ok := MemoGet(k); !ok || v != 0.3125 {
		t.Fatalf("RAM-tier get = %v,%v", v, ok)
	}

	// Drop the RAM tier: the next lookup must be served from disk.
	before := Snapshot()
	ResetMemo()
	if v, ok := MemoGet(k); !ok || v != 0.3125 {
		t.Fatalf("disk-tier get = %v,%v", v, ok)
	}
	after := Snapshot()
	if after.DiskHits != before.DiskHits+1 {
		t.Fatalf("disk hits %d -> %d, want +1", before.DiskHits, after.DiskHits)
	}

	// Bit-flip the artifact: the CRC (or payload validation) must turn
	// the next cold lookup into a plain miss, never a wrong value.
	ents, err := os.ReadDir(filepath.Join(dir, fitnessKind))
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected one fitness artifact: %v %d", err, len(ents))
	}
	p := filepath.Join(dir, fitnessKind, ents[0].Name())
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x10
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ResetMemo()
	if _, ok := MemoGet(k); ok {
		t.Fatal("corrupted artifact served as a hit")
	}

	// Truncation must likewise read as a miss.
	MemoPut(k, 0.25)
	ResetMemo()
	ents, _ = os.ReadDir(filepath.Join(dir, fitnessKind))
	if len(ents) != 1 {
		t.Fatalf("expected one rewritten artifact, got %d", len(ents))
	}
	p = filepath.Join(dir, fitnessKind, ents[0].Name())
	raw, _ = os.ReadFile(p)
	if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := MemoGet(k); ok {
		t.Fatal("truncated artifact served as a hit")
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, ok := decodeFitness(encodeFitness(math.NaN())); ok {
		t.Fatal("NaN decoded as a valid miss rate")
	}
	if _, ok := decodeFitness(encodeFitness(1.5)); ok {
		t.Fatal("out-of-range miss rate decoded as valid")
	}
	if _, ok := decodeFitness(append(encodeFitness(0.5), 0)); ok {
		t.Fatal("trailing bytes accepted")
	}
	v := []fsm.SimResult{{Total: 100, Correct: 93}, {Total: 7, Correct: 0}}
	got, ok := decodeSweep(encodeSweep(v))
	if !ok || len(got) != 2 || got[0] != v[0] || got[1] != v[1] {
		t.Fatalf("sweep round-trip = %v,%v", got, ok)
	}
	bad := encodeSweep([]fsm.SimResult{{Total: 5, Correct: 9}})
	if _, ok := decodeSweep(bad); ok {
		t.Fatal("correct > total accepted")
	}
	if _, ok := decodeSweep(encodeSweep(v)[:10]); ok {
		t.Fatal("truncated sweep accepted")
	}
}

func TestSweepRoundTripDiskTier(t *testing.T) {
	dir := t.TempDir()
	store, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	SetDiskTier(store)
	defer SetDiskTier(nil)
	ResetMemo()

	k := DigestKey("test-sweep", []byte("trace"), []byte("entries"))
	v := []fsm.SimResult{{Total: 1000, Correct: 900}, {Total: 1000, Correct: 950}}
	SweepPut(k, v)
	ResetMemo()
	got, ok := SweepGet(k)
	if !ok || len(got) != 2 || got[0] != v[0] || got[1] != v[1] {
		t.Fatalf("disk-tier sweep get = %v,%v", got, ok)
	}
}

// TestMemoConcurrency hammers the memo from many goroutines (run under
// -race in CI): concurrent Put/Get/Snapshot/Reset on overlapping keys
// must stay data-race free and every hit must return a value some Put
// stored.
func TestMemoConcurrency(t *testing.T) {
	dir := t.TempDir()
	store, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	SetDiskTier(store)
	defer SetDiskTier(nil)
	ResetMemo()

	keys := make([]Key, 32)
	vals := make([]float64, len(keys))
	for i := range keys {
		keys[i] = DigestKey("race", []byte{byte(i)})
		vals[i] = float64(i) / float64(len(keys))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < 400; it++ {
				i := rng.Intn(len(keys))
				switch rng.Intn(10) {
				case 0:
					ResetMemo()
				case 1:
					Snapshot()
				case 2, 3, 4:
					MemoPut(keys[i], vals[i])
				default:
					if v, ok := MemoGet(keys[i]); ok && v != vals[i] {
						t.Errorf("key %d read %v, want %v", i, v, vals[i])
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func compile(t *testing.T, ms []*fsm.Machine) []*fsm.BlockTable {
	t.Helper()
	tabs := make([]*fsm.BlockTable, len(ms))
	for i, m := range ms {
		tab, err := fsm.CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		tabs[i] = tab
	}
	return tabs
}

// TestLadderRaceExactness is the ladder's core contract: with pruning
// disabled every candidate escalates to the final rung and the verdicts
// are bit-identical to a direct full pass AND to the scalar simulator.
func TestLadderRaceExactness(t *testing.T) {
	tr := driftingTrace(t, 8, 1<<14)
	words, n := packed(tr)
	runs := bitseq.Runs(words, n, bitseq.DefaultMinRunBytes)
	const warmup = 100
	l := NewLadder(words, n, runs, LadderConfig{Warmup: warmup, Seed: 7})
	if l == nil {
		t.Fatal("ladder declined a 128k-event trace")
	}

	rng := rand.New(rand.NewSource(9))
	ms := make([]*fsm.Machine, 12)
	for i := range ms {
		ms[i] = randomMachine(rng, 2+rng.Intn(14))
	}
	tabs := compile(t, ms)

	vs := l.Race(tabs, -1)
	exact := l.ScoreExact(tabs)
	for i, v := range vs {
		if !v.Exact {
			t.Fatalf("candidate %d not exact with pruning disabled", i)
		}
		if v.Miss != exact[i] {
			t.Fatalf("candidate %d: race %v != full pass %v", i, v.Miss, exact[i])
		}
		want := ms[i].Simulate(tr, warmup).MissRate()
		if v.Miss != want {
			t.Fatalf("candidate %d: race %v != scalar %v", i, v.Miss, want)
		}
	}
}

// TestLadderPruning checks the racing behaviour on a cohort with a
// clear quality spread: hopeless candidates are pruned early, anything
// at or under the incumbent bar survives to an exact verdict, and
// pruned estimates never masquerade as exact.
func TestLadderPruning(t *testing.T) {
	tr := driftingTrace(t, 8, 1<<14)
	words, n := packed(tr)
	runs := bitseq.Runs(words, n, bitseq.DefaultMinRunBytes)
	const warmup = 100
	l := NewLadder(words, n, runs, LadderConfig{Warmup: warmup, Seed: 7})
	if l == nil {
		t.Fatal("ladder declined the trace")
	}

	good := twoBit()
	// An anti-predictor: predict the opposite of a 2-bit counter —
	// reliably terrible on a run-heavy trace.
	bad := twoBit()
	for s := range bad.Output {
		bad.Output[s] = !bad.Output[s]
	}
	rng := rand.New(rand.NewSource(4))
	ms := []*fsm.Machine{good, bad}
	for i := 0; i < 10; i++ {
		ms = append(ms, randomMachine(rng, 4))
	}
	tabs := compile(t, ms)
	incumbent := good.Simulate(tr, warmup).MissRate()

	vs := l.Race(tabs, incumbent)
	if l.Stats().Pruned == 0 {
		t.Fatal("no candidate pruned on a cohort full of anti-predictors")
	}
	for i, v := range vs {
		ex := ms[i].Simulate(tr, warmup).MissRate()
		if v.Exact && v.Miss != ex {
			t.Fatalf("candidate %d: exact verdict %v != scalar %v", i, v.Miss, ex)
		}
		if !v.Exact && ex <= incumbent {
			t.Fatalf("candidate %d (miss %v <= incumbent %v) was pruned", i, ex, incumbent)
		}
	}
	if !vs[0].Exact {
		t.Fatal("the incumbent-quality candidate did not reach the exact rung")
	}
}

// TestWindowEstimatesWithinRadius pins the ladder's statistical
// assumption on a drifting, phase-shifted trace: the simpoint-weighted
// window estimate of every candidate stays within the slack-inflated
// radius of the true full-trace miss rate — the bound rung-0 pruning
// relies on. A plain prefix of the same total coverage fails this badly
// on such traces, which is why the ladder clusters first.
func TestWindowEstimatesWithinRadius(t *testing.T) {
	tr := driftingTrace(t, 10, 1<<13)
	words, n := packed(tr)
	runs := bitseq.Runs(words, n, bitseq.DefaultMinRunBytes)
	l := NewLadder(words, n, runs, LadderConfig{Seed: 11})
	if l == nil {
		t.Fatal("ladder declined the trace")
	}

	rng := rand.New(rand.NewSource(21))
	ms := []*fsm.Machine{twoBit(), lastOutcome()}
	for i := 0; i < 8; i++ {
		ms = append(ms, randomMachine(rng, 2+rng.Intn(6)))
	}
	tabs := compile(t, ms)
	est := l.WindowEstimates(tabs)
	exact := l.ScoreExact(tabs)
	for i := range ms {
		r := l.WindowRadius(est[i])
		if d := math.Abs(est[i] - exact[i]); d > r {
			t.Errorf("machine %d: window estimate %.4f vs exact %.4f, |err| %.4f > radius %.4f",
				i, est[i], exact[i], d, r)
		}
	}
}

// TestLadderDeclinesShortTraces: below the staging threshold NewLadder
// must return nil so callers fall back to plain exact scoring.
func TestLadderDeclinesShortTraces(t *testing.T) {
	tr := driftingTrace(t, 1, 2000)
	words, n := packed(tr)
	if l := NewLadder(words, n, nil, LadderConfig{}); l != nil {
		t.Fatalf("ladder accepted a %d-event trace", n)
	}
}
