// Package fidelity is the adaptive-fidelity evaluation engine behind
// the candidate-scoring loops: a staged evaluation ladder (ladder.go)
// that screens predictor cohorts on simpoint-selected representative
// windows and escalates statistical survivors through widening window
// tiers — clustered representatives first, then a strided uniform gate
// — to an exact full-trace rung, and a persistent fitness memo (this
// file) that remembers every exact full-fidelity measurement by
// content — structurally identical machine, identical trace, identical
// warm-up — across cohorts, generations, searches, and, through the
// disk tier, process restarts.
//
// The contract that keeps reported results exact: ONLY exact
// full-fidelity miss rates enter the memo, and pruning is only ever a
// skip-ahead — a pruned candidate keeps its estimate as a fitness
// value, but anything a caller reports (a search champion, a figure
// point) is re-scored at full fidelity first. DESIGN.md §Adaptive
// fidelity spells out why that makes the ladder unable to change any
// figure output.
package fidelity

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync/atomic"

	"fsmpredict/internal/disktier"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/memo"
)

// Key addresses one exact fitness measurement: a SHA-256 over the
// machine's canonical structure, the trace digest, and the warm-up
// length. At 256 bits the key IS the content for all practical
// purposes, so no structural re-verification is needed on a hit (the
// disk tier still CRC-checks and shape-validates its payloads).
type Key [sha256.Size]byte

func (k Key) hex() string { return hex.EncodeToString(k[:]) }

const (
	// fitnessKind addresses single miss-rate artifacts in the disk tier.
	fitnessKind = "fitness"
	// sweepKind addresses exact result-vector artifacts (the figure
	// prefix sweeps and sampled-miss batches).
	sweepKind = "fitsweep"
	// fitnessVersion / sweepVersion are the artifact format versions;
	// bump on any layout change and stale files recompute cleanly.
	fitnessVersion = 1
	sweepVersion   = 1

	// memoEntries bounds the in-process fitness tier: a full GA run
	// touches a few thousand distinct machines, so 64k entries hold
	// many searches' worth of exact scores.
	memoEntries = 1 << 16
	// memoEntryBytes is the accounted footprint of one fitness entry
	// (key + value + LRU bookkeeping), for the memo_bytes metric.
	memoEntryBytes = 120
	// sweepEntries bounds the in-process sweep tier; sweep vectors are
	// per-(figure, program, trace), so a handful suffice.
	sweepEntries = 64
)

var (
	fitnessCache = memo.New[Key, float64](memoEntries, func(float64) uint64 { return memoEntryBytes })
	sweepCache   = memo.New[Key, []fsm.SimResult](sweepEntries, func(v []fsm.SimResult) uint64 {
		return uint64(16*len(v)) + 64
	})
	disk atomic.Pointer[disktier.Store]

	hits      atomic.Uint64
	diskHits  atomic.Uint64
	misses    atomic.Uint64
	rungEvals atomic.Uint64
	pruned    atomic.Uint64
	escalated atomic.Uint64
)

// Stats is a point-in-time snapshot of the engine's counters — the
// source of the fsmpredict_search_* gauges.
type Stats struct {
	// Hits counts fitness-memo lookups served, from either tier.
	Hits uint64
	// DiskHits counts the subset of Hits served by the disk tier.
	DiskHits uint64
	// Misses counts fitness-memo lookups that found nothing.
	Misses uint64
	// RungEvals counts candidate·rung evaluations the ladder ran.
	RungEvals uint64
	// Pruned counts candidates dismissed on a confidence bound.
	Pruned uint64
	// Escalated counts candidates promoted past the window rung.
	Escalated uint64
	// Entries and Bytes describe the in-process fitness tier.
	Entries uint64
	Bytes   uint64
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	cs := fitnessCache.Stats()
	return Stats{
		Hits:      hits.Load(),
		DiskHits:  diskHits.Load(),
		Misses:    misses.Load(),
		RungEvals: rungEvals.Load(),
		Pruned:    pruned.Load(),
		Escalated: escalated.Load(),
		Entries:   cs.Entries,
		Bytes:     cs.Bytes,
	}
}

// SetDiskTier attaches a disk store beneath the fitness and sweep memos
// (nil detaches). Intended to be called once at startup via
// cachewire.Setup, alongside the block-table and trace tiers.
func SetDiskTier(d *disktier.Store) { disk.Store(d) }

// ResetMemo drops both in-process tiers (counters and any disk tier
// remain). Warm-start measurement uses it to force the next lookups
// through the disk tier, exactly like fsm.ResetBlockCache.
func ResetMemo() {
	fitnessCache.Clear()
	sweepCache.Clear()
}

// TraceDigest fingerprints the first n events of a packed outcome
// stream. Bits past n in the final word are masked out, so streams that
// agree on their first n outcomes digest identically regardless of
// buffer tails.
func TraceDigest(words []uint64, n int) Key {
	if max := len(words) << 6; n > max {
		n = max
	}
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	full := n >> 6
	for _, w := range words[:full] {
		binary.LittleEndian.PutUint64(buf[:], w)
		h.Write(buf[:])
	}
	if rem := n & 63; rem != 0 {
		binary.LittleEndian.PutUint64(buf[:], words[full]&(1<<uint(rem)-1))
		h.Write(buf[:])
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// FitnessKey derives the memo address of (machine, trace, warmup). The
// machine contributes its canonical structural bytes (Name excluded),
// so renamed or separately-allocated copies of one structure share an
// address.
func FitnessKey(m *fsm.Machine, trace Key, warmup int) Key {
	h := sha256.New()
	h.Write([]byte("fitness\x00"))
	h.Write(trace[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(warmup))
	h.Write(buf[:])
	h.Write(m.AppendCanonical(nil))
	var k Key
	h.Sum(k[:0])
	return k
}

// DigestKey derives a memo address for an arbitrary exact-result
// artifact from a domain tag and its content parts — the figure sweeps
// use it to key on (kind, trace content, entry set).
func DigestKey(domain string, parts ...[]byte) Key {
	h := sha256.New()
	h.Write([]byte(domain))
	h.Write([]byte{0})
	var buf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// MemoGet returns the memoized exact miss rate for a key. On an
// in-process miss it consults the disk tier, installing (and counting)
// a validated artifact before returning it.
func MemoGet(k Key) (float64, bool) {
	if v, ok := fitnessCache.Get(k); ok {
		hits.Add(1)
		return v, true
	}
	if d := disk.Load(); d != nil {
		if blob, ok := d.Get(fitnessKind, fitnessVersion, k.hex()); ok {
			v, ok2 := decodeFitness(blob.Data)
			blob.Close()
			if ok2 {
				fitnessCache.Put(k, v)
				hits.Add(1)
				diskHits.Add(1)
				return v, true
			}
		}
	}
	misses.Add(1)
	return 0, false
}

// MemoPut records an exact full-fidelity miss rate. Callers must never
// store estimates — the memo's whole guarantee is that a hit is
// indistinguishable from re-running the full simulation.
func MemoPut(k Key, miss float64) {
	fitnessCache.Put(k, miss)
	if d := disk.Load(); d != nil {
		d.Put(fitnessKind, fitnessVersion, k.hex(), encodeFitness(miss))
	}
}

// SweepGet returns a memoized exact result vector (figure sweep or
// sampled-miss batch), consulting the disk tier on an in-process miss.
func SweepGet(k Key) ([]fsm.SimResult, bool) {
	if v, ok := sweepCache.Get(k); ok {
		hits.Add(1)
		return v, true
	}
	if d := disk.Load(); d != nil {
		if blob, ok := d.Get(sweepKind, sweepVersion, k.hex()); ok {
			v, ok2 := decodeSweep(blob.Data)
			blob.Close()
			if ok2 {
				sweepCache.Put(k, v)
				hits.Add(1)
				diskHits.Add(1)
				return v, true
			}
		}
	}
	misses.Add(1)
	return nil, false
}

// SweepPut records an exact result vector. Like MemoPut, estimates must
// never be stored.
func SweepPut(k Key, v []fsm.SimResult) {
	sweepCache.Put(k, v)
	if d := disk.Load(); d != nil {
		d.Put(sweepKind, sweepVersion, k.hex(), encodeSweep(v))
	}
}

// encodeFitness renders a miss rate as its exact IEEE-754 bits.
func encodeFitness(miss float64) []byte {
	return disktier.AppendU64(nil, math.Float64bits(miss))
}

// decodeFitness parses and sanity-checks a fitness payload; anything
// that is not a plausible miss rate reads as a miss (the caller
// recomputes), so a corrupted artifact that slipped past the CRC can
// never poison a search.
func decodeFitness(payload []byte) (float64, bool) {
	r := disktier.NewReader(payload)
	v := math.Float64frombits(r.U64())
	if !r.Done() || math.IsNaN(v) || v < 0 || v > 1 {
		return 0, false
	}
	return v, true
}

// encodeSweep renders a result vector as count-prefixed (total,
// correct) pairs.
func encodeSweep(v []fsm.SimResult) []byte {
	b := make([]byte, 0, 4+16*len(v))
	b = disktier.AppendU32(b, uint32(len(v)))
	for _, r := range v {
		b = disktier.AppendU64(b, uint64(r.Total))
		b = disktier.AppendU64(b, uint64(r.Correct))
	}
	return b
}

// decodeSweep parses a result vector, validating every pair; any
// inconsistency reads as a miss.
func decodeSweep(payload []byte) ([]fsm.SimResult, bool) {
	r := disktier.NewReader(payload)
	n := int(r.U32())
	if n < 0 || n > 1<<20 {
		return nil, false
	}
	v := make([]fsm.SimResult, n)
	for i := range v {
		total, correct := r.U64(), r.U64()
		if total > 1<<40 || correct > total {
			return nil, false
		}
		v[i] = fsm.SimResult{Total: int(total), Correct: int(correct)}
	}
	if !r.Done() {
		return nil, false
	}
	return v, true
}
