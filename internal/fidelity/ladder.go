package fidelity

import (
	"math"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/simpoint"
)

// The staged evaluation ladder. Rung 0 scores a whole cohort on a few
// simpoint-selected representative windows of the trace — one fleet
// pass per window, each window a zero-copy word subslice of the packed
// stream — and prunes candidates whose miss-rate lower confidence bound
// cannot reach the slots the caller is racing for. Survivors escalate
// to a denser window tier (4x the windows, re-clustered at the same
// length, so coverage grows geometrically while staying representative
// under phase drift — a contiguous prefix of equal coverage measurably
// violates the bound on drifting traces), and finally to the exact
// full-trace rung. Pruned candidates keep their last estimate as a
// fitness value; only final-rung results are exact, and only those may
// enter the fitness memo.
//
// The confidence bounds are empirical-Bernstein radii inflated by a
// slack factor: trace windows are not i.i.d. samples of the stream
// (branch behaviour drifts in phases), so the textbook bound is treated
// as a heuristic screen, never as a correctness argument. Exactness of
// anything reported is guaranteed structurally instead: see the package
// comment.

// LadderConfig configures a ladder. The zero value of every field picks
// a sensible default at construction.
type LadderConfig struct {
	// Warmup outcomes at the head of the trace are not scored (the
	// search's warm-up convention).
	Warmup int
	// Workers bounds each fleet pass's parallel shards (<= 0 means
	// GOMAXPROCS); results are bit-identical for any setting.
	Workers int
	// WindowLen is the rung-0 window length in events, rounded up to a
	// multiple of 64 so windows stay word-aligned. Default: the largest
	// power of two at most a 1/64 share of the scored trace, clamped to
	// [512, 1024] — screening cost stays flat as traces grow; longer
	// traces just get proportionally cheaper screens.
	WindowLen int
	// Windows is the number of representative windows (simpoint K).
	// Default 4.
	Windows int
	// Delta is the per-decision confidence parameter. Default 0.05.
	Delta float64
	// Slack inflates every radius to account for non-i.i.d. sampling.
	// Default 2.
	Slack float64
	// Seed drives the deterministic window clustering.
	Seed int64
}

// Verdict is one candidate's racing outcome.
type Verdict struct {
	// Miss is the exact full-trace miss rate when Exact, else the last
	// rung's estimate.
	Miss float64
	// Exact reports whether Miss came from a full-fidelity pass.
	Exact bool
	// Rung is the highest rung the candidate reached (0 = windows).
	Rung int
}

// LadderStats tallies one ladder's activity (the process-wide Snapshot
// counters aggregate the same events across all ladders).
type LadderStats struct {
	// RungEvals counts candidate·rung evaluations run.
	RungEvals int
	// Pruned counts candidates dismissed on a confidence bound.
	Pruned int
	// Escalated counts candidate promotions to a higher rung.
	Escalated int
}

type window struct {
	off    int // event offset, a multiple of 64
	skip   int // unscored warm-up events at the window head
	weight float64
}

// tier is one windowed rung: a set of representative windows and the
// per-candidate scored-event count behind its confidence radius.
type tier struct {
	wins   []window
	scored int
}

// Ladder is a staged evaluator bound to one packed trace. Build one per
// search with NewLadder; methods are not safe for concurrent use on the
// same Ladder (each search owns its own), though the underlying fleet
// passes parallelize internally.
type Ladder struct {
	words  []uint64
	n      int
	runs   []bitseq.Run
	cfg    LadderConfig
	winLen int
	// tiers are the windowed rungs in escalation order; the exact
	// full-trace rung always follows them.
	tiers []tier

	stats LadderStats
}

// NewLadder analyzes the trace and builds the rung structure. It
// returns nil when staging cannot pay for itself — the trace is too
// short for representative windows plus prefix rungs to undercut a
// plain full pass — and callers then score at full fidelity directly.
func NewLadder(words []uint64, n int, runs []bitseq.Run, cfg LadderConfig) *Ladder {
	if cfg.Windows <= 0 {
		cfg.Windows = 4
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 0.05
	}
	if cfg.Slack <= 0 {
		cfg.Slack = 2
	}
	if max := len(words) << 6; n > max {
		n = max
	}
	scored := n - cfg.Warmup
	winLen := cfg.WindowLen
	if winLen <= 0 {
		winLen = 512
		for winLen*2 <= scored/64 && winLen < 1024 {
			winLen *= 2
		}
	} else {
		winLen = (winLen + 63) &^ 63
	}
	// Below ~16 windows' worth of scored trace the ladder's overhead
	// (two window tiers for survivors) rivals the full pass.
	if winLen < 64 || scored < 16*winLen {
		return nil
	}

	l := &Ladder{words: words, n: n, runs: runs, cfg: cfg, winLen: winLen}

	// Escalation structure: two clustered tiers (K representatives,
	// then 4K — coverage grows geometrically, every tier clustered so
	// it stays representative under phase drift), then one strided gate
	// tier of 16K evenly-spaced windows. The gate exists for bar
	// stragglers — candidates whose tier-1 interval still straddles the
	// racing bar — and a uniform stride is an unbiased estimator at 4x
	// tier-1 coverage without a K=16K clustering bill. Tiers that would
	// cover most of the trace anyway are skipped (the exact rung
	// follows regardless). The whole-trace window-vector pass is shared
	// across the clustered tiers; only the clustering reruns per K.
	vectors, err := simpoint.OutcomeVectors(words, n, winLen)
	if err != nil {
		return nil
	}
	for _, k := range []int{cfg.Windows, 4 * cfg.Windows} {
		if k*winLen > n/2 {
			break
		}
		ti, ok := l.buildTier(vectors, k)
		if !ok {
			break
		}
		l.tiers = append(l.tiers, ti)
	}
	if k := 16 * cfg.Windows; len(l.tiers) == 2 && k*winLen <= n/2 {
		if ti, ok := l.buildStridedTier(len(vectors), k); ok {
			l.tiers = append(l.tiers, ti)
		}
	}
	if len(l.tiers) == 0 {
		return nil
	}
	return l
}

// buildTier clusters the precomputed window vectors into k
// representative windows.
func (l *Ladder) buildTier(vectors [][]float64, k int) (tier, bool) {
	sp, err := simpoint.ClusterOutcomeVectors(vectors, simpoint.Options{
		IntervalLen: l.winLen,
		K:           k,
		Seed:        l.cfg.Seed,
	})
	if err != nil {
		return tier{}, false
	}
	var ti tier
	minWarm := l.winLen / 8
	var wsum float64
	for i, rep := range sp.Representatives {
		off := rep * l.winLen
		skip := minWarm
		if off < l.cfg.Warmup {
			if s := l.cfg.Warmup - off; s > skip {
				skip = s
			}
		}
		if skip >= l.winLen {
			continue // window swallowed by the global warm-up
		}
		ti.wins = append(ti.wins, window{off: off, skip: skip, weight: sp.Weights[i]})
		ti.scored += l.winLen - skip
		wsum += sp.Weights[i]
	}
	if len(ti.wins) == 0 || wsum <= 0 {
		return tier{}, false
	}
	for i := range ti.wins {
		ti.wins[i].weight /= wsum
	}
	return ti, true
}

// buildStridedTier picks k evenly-spaced windows out of nw with uniform
// weights — an unbiased whole-trace estimator that needs no clustering.
func (l *Ladder) buildStridedTier(nw, k int) (tier, bool) {
	if k > nw {
		k = nw
	}
	var ti tier
	minWarm := l.winLen / 8
	for i := 0; i < k; i++ {
		off := (i * nw / k) * l.winLen
		skip := minWarm
		if off < l.cfg.Warmup {
			if s := l.cfg.Warmup - off; s > skip {
				skip = s
			}
		}
		if skip >= l.winLen {
			continue
		}
		ti.wins = append(ti.wins, window{off: off, skip: skip, weight: 1})
		ti.scored += l.winLen - skip
	}
	if len(ti.wins) == 0 {
		return tier{}, false
	}
	for i := range ti.wins {
		ti.wins[i].weight = 1 / float64(len(ti.wins))
	}
	return ti, true
}

// Stats returns this ladder's local tallies.
func (l *Ladder) Stats() LadderStats { return l.stats }

// tierEstimates scores a cohort on one window tier: one fleet pass per
// representative window, weighted into a miss-rate estimate per
// candidate.
func (l *Ladder) tierEstimates(ti tier, tabs []*fsm.BlockTable) []float64 {
	est := make([]float64, len(tabs))
	if len(tabs) == 0 {
		return est
	}
	fl := fsm.FleetOfTables(tabs)
	for _, w := range ti.wins {
		rs := fl.RunParallelSpans(l.cfg.Workers, l.words[w.off>>6:], l.winLen, w.skip, nil)
		for i, r := range rs {
			est[i] += w.weight * r.MissRate()
		}
	}
	l.stats.RungEvals += len(tabs)
	rungEvals.Add(uint64(len(tabs)))
	return est
}

// WindowEstimates runs rung 0 alone, returning each candidate's
// weighted windowed miss-rate estimate. Exposed for the
// window-weighting tests; Race and RaceTop use it as their first stage.
func (l *Ladder) WindowEstimates(tabs []*fsm.BlockTable) []float64 {
	return l.tierEstimates(l.tiers[0], tabs)
}

// WindowRadius is the slack-inflated empirical-Bernstein radius of a
// rung-0 estimate — the deviation the ladder assumes windowed estimates
// stay within.
func (l *Ladder) WindowRadius(p float64) float64 {
	return l.cfg.Slack * bernsteinRadius(p, l.tiers[0].scored, l.cfg.Delta)
}

// race is the shared rung driver: it walks the window tiers, calling
// keepFn after each tier to decide which candidates stay alive (keepFn
// sees the tier's estimates already written into verdicts and each
// candidate's radius), then scores the survivors on the exact
// full-trace rung. Verdicts are positional with tabs.
func (l *Ladder) race(tabs []*fsm.BlockTable, keep func(alive []int, verdicts []Verdict, radius func(p float64) float64) []int) []Verdict {
	verdicts := make([]Verdict, len(tabs))
	if len(tabs) == 0 {
		return verdicts
	}
	alive := make([]int, len(tabs))
	for i := range tabs {
		alive[i] = i
	}
	for ri, ti := range l.tiers {
		sub := make([]*fsm.BlockTable, len(alive))
		for j, i := range alive {
			sub[j] = tabs[i]
		}
		if ri > 0 {
			l.stats.Escalated += len(alive)
			escalated.Add(uint64(len(alive)))
		}
		est := l.tierEstimates(ti, sub)
		for j, i := range alive {
			verdicts[i] = Verdict{Miss: est[j], Rung: ri}
		}
		scored := ti.scored
		wasAlive := len(alive)
		alive = keep(alive, verdicts, func(p float64) float64 {
			return l.cfg.Slack * bernsteinRadius(p, scored, l.cfg.Delta)
		})
		if d := wasAlive - len(alive); d > 0 {
			l.stats.Pruned += d
			pruned.Add(uint64(d))
		}
		if len(alive) == 0 {
			return verdicts
		}
	}
	l.stats.Escalated += len(alive)
	escalated.Add(uint64(len(alive)))
	sub := make([]*fsm.BlockTable, len(alive))
	for j, i := range alive {
		sub[j] = tabs[i]
	}
	fl := fsm.FleetOfTables(sub)
	rs := fl.RunParallelSpans(l.cfg.Workers, l.words, l.n, l.cfg.Warmup, l.runs)
	l.stats.RungEvals += len(alive)
	rungEvals.Add(uint64(len(alive)))
	for j, i := range alive {
		verdicts[i] = Verdict{Miss: rs[j].MissRate(), Exact: true, Rung: len(l.tiers)}
	}
	return verdicts
}

// Race scores a cohort through the ladder. incumbent is the exact miss
// rate a candidate must plausibly beat to stay alive (the worst current
// elite); pass a negative value to disable pruning, which escalates
// every candidate to the exact final rung. Verdicts are positional with
// tabs.
func (l *Ladder) Race(tabs []*fsm.BlockTable, incumbent float64) []Verdict {
	return l.race(tabs, func(alive []int, verdicts []Verdict, radius func(p float64) float64) []int {
		if incumbent < 0 {
			return alive
		}
		next := alive[:0]
		for _, i := range alive {
			if verdicts[i].Miss-radius(verdicts[i].Miss) > incumbent {
				continue
			}
			next = append(next, i)
		}
		return next
	})
}

// RaceTop races a cohort whose consumers only care about the top `keep`
// candidates (a truncation-selection parent pool): at every rung the
// pruning bar is the keep-th smallest upper confidence bound across the
// cohort and the anchors (already-exact incumbents competing for the
// same slots, e.g. carried elites), so any candidate that plausibly
// belongs in the top set escalates to the exact final rung while
// confident losers stop at cheap rungs. If the bounds hold, every true
// top-keep candidate reaches an exact verdict; estimates only ever rank
// losers among themselves. Verdicts are positional with tabs.
func (l *Ladder) RaceTop(tabs []*fsm.BlockTable, keep int, anchors []float64) []Verdict {
	if keep < 1 {
		keep = 1
	}
	// kthSmallest returns the keep-th smallest of xs (insertion into a
	// bounded best-list; cohorts are small).
	kthSmallest := func(xs []float64) float64 {
		if len(xs) < keep {
			return math.Inf(1)
		}
		best := make([]float64, 0, keep)
		for _, x := range xs {
			if len(best) < keep {
				best = append(best, x)
			} else if x < best[keep-1] {
				best[keep-1] = x
			} else {
				continue
			}
			for j := len(best) - 1; j > 0 && best[j] < best[j-1]; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
		}
		return best[keep-1]
	}
	return l.race(tabs, func(alive []int, verdicts []Verdict, radius func(p float64) float64) []int {
		ucbs := append([]float64(nil), anchors...)
		for _, i := range alive {
			ucbs = append(ucbs, verdicts[i].Miss+radius(verdicts[i].Miss))
		}
		bar := kthSmallest(ucbs)
		next := alive[:0]
		for _, i := range alive {
			if verdicts[i].Miss-radius(verdicts[i].Miss) > bar {
				continue
			}
			next = append(next, i)
		}
		return next
	})
}

// ScoreExact runs one full-fidelity pass over the cohort — the final
// rung directly, used for elite re-scoring and for cohorts where
// pruning has shown no traction.
func (l *Ladder) ScoreExact(tabs []*fsm.BlockTable) []float64 {
	out := make([]float64, len(tabs))
	if len(tabs) == 0 {
		return out
	}
	fl := fsm.FleetOfTables(tabs)
	rs := fl.RunParallelSpans(l.cfg.Workers, l.words, l.n, l.cfg.Warmup, l.runs)
	for i, r := range rs {
		out[i] = r.MissRate()
	}
	l.stats.RungEvals += len(tabs)
	rungEvals.Add(uint64(len(tabs)))
	return out
}

// bernsteinRadius is the empirical-Bernstein deviation bound for a
// [0,1]-valued mean estimate p over m samples at confidence 1-delta:
// sqrt(2 p(1-p) ln(3/δ)/m) + 3 ln(3/δ)/m.
func bernsteinRadius(p float64, m int, delta float64) float64 {
	if m <= 0 {
		return 1
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	ln := math.Log(3 / delta)
	return math.Sqrt(2*p*(1-p)*ln/float64(m)) + 3*ln/float64(m)
}
