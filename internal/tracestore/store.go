package tracestore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fsmpredict/internal/disktier"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/workload"
)

// Key is the content address of a generated trace. The synthetic
// workloads are pure functions of these fields — the variant selects the
// derived seed and parameter jitter — so equal keys guarantee equal
// traces.
type Key struct {
	// Kind separates the two event spaces ("branch" or "load").
	Kind string
	// Program is the benchmark name (e.g. "vortex").
	Program string
	// Variant is the input data set ("train" or "test").
	Variant string
	// Events is the requested event count.
	Events int
}

// String renders the key in its canonical one-line form — the content
// address the serving layer's batch plane groups coalesced requests by.
func (k Key) String() string {
	return fmt.Sprintf("%s:%s/%s/%d", k.Kind, k.Program, k.Variant, k.Events)
}

// BranchKey addresses a branch trace.
func BranchKey(program string, v workload.Variant, events int) Key {
	return Key{Kind: "branch", Program: program, Variant: v.String(), Events: events}
}

// LoadKey addresses a load-value trace.
func LoadKey(program string, v workload.Variant, events int) Key {
	return Key{Kind: "load", Program: program, Variant: v.String(), Events: events}
}

// flight is one singleflight slot: the first requester generates, every
// later requester blocks on done and shares the result.
type flight[T any] struct {
	done chan struct{}
	val  T
}

// Stats is a snapshot of a store's counters.
type Stats struct {
	// Hits counts lookups served from an existing (or in-flight) entry.
	Hits uint64
	// TierHits counts lookups served by the disk tier instead of a
	// regeneration.
	TierHits uint64
	// Misses counts lookups that had to generate.
	Misses uint64
	// Bytes is the estimated retained size of all stored traces.
	Bytes uint64
}

// Store is a process-wide content-addressed trace cache with
// singleflight generation. The zero value is not usable; call NewStore.
// Entries live for the life of the store — the workload suite is a small
// closed set, so there is no eviction.
type Store struct {
	mu       sync.Mutex
	branches map[Key]*flight[*Packed]
	loads    map[Key]*flight[[]trace.LoadEvent]
	confs    map[confKey]*flight[*ConfStreams] // lazily allocated
	disk     *disktier.Store                   // optional second tier

	hits     atomic.Uint64
	tierHits atomic.Uint64
	misses   atomic.Uint64
	bytes    atomic.Uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		branches: make(map[Key]*flight[*Packed]),
		loads:    make(map[Key]*flight[[]trace.LoadEvent]),
	}
}

// Shared is the process-wide store the experiments and the serving layer
// use, so repeated runs in one process share generated traces.
var Shared = NewStore()

// Stats snapshots the hit/miss/bytes counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:     s.hits.Load(),
		TierHits: s.tierHits.Load(),
		Misses:   s.misses.Load(),
		Bytes:    s.bytes.Load(),
	}
}

// Len reports how many traces the store holds (including in-flight
// generations).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.branches) + len(s.loads) + len(s.confs)
}

// Branches returns the packed branch trace of (program, variant, n),
// generating and packing it on first request. Concurrent requests for
// the same key share one generation.
func (s *Store) Branches(p *workload.Program, v workload.Variant, n int) *Packed {
	key := BranchKey(p.Name, v, n)
	s.mu.Lock()
	if f, ok := s.branches[key]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		<-f.done
		return f.val
	}
	f := &flight[*Packed]{done: make(chan struct{})}
	s.branches[key] = f
	disk := s.disk
	s.mu.Unlock()

	if packed, ok := s.diskLoadPacked(disk, key); ok {
		s.tierHits.Add(1)
		f.val = packed
	} else {
		s.misses.Add(1)
		f.val = Pack(p.Generate(v, n))
		if disk != nil {
			disk.Put(traceKind, traceVersion, branchAddress(key), encodePacked(f.val))
		}
	}
	if disk != nil {
		// The run index rides the same singleflight slot: loaded (and
		// validated against the trace words) from the tier when present,
		// otherwise scanned once here and persisted for the next process.
		if runs, ok := s.diskLoadSpans(disk, key, f.val); ok {
			f.val.seedSpanIndex(runs)
		} else {
			disk.Put(spanKind, spanVersion, spanAddress(key), encodeSpanIndex(f.val.SpanIndex()))
		}
	}
	s.bytes.Add(f.val.Bytes())
	close(f.done)
	return f.val
}

// BranchesByName is Branches for a benchmark looked up in the suite.
func (s *Store) BranchesByName(program string, v workload.Variant, n int) (*Packed, error) {
	p, err := workload.ByName(program)
	if err != nil {
		return nil, err
	}
	return s.Branches(p, v, n), nil
}

// Loads returns the load-value trace of (program, variant, n),
// generating it on first request. The returned slice is shared and must
// be treated as immutable.
func (s *Store) Loads(p *workload.LoadProgram, v workload.Variant, n int) []trace.LoadEvent {
	key := LoadKey(p.Name, v, n)
	s.mu.Lock()
	if f, ok := s.loads[key]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		<-f.done
		return f.val
	}
	f := &flight[[]trace.LoadEvent]{done: make(chan struct{})}
	s.loads[key] = f
	s.mu.Unlock()
	s.misses.Add(1)

	f.val = p.Generate(v, n)
	s.bytes.Add(uint64(16 * len(f.val)))
	close(f.done)
	return f.val
}
