package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/disktier"
	"fsmpredict/internal/trace"
)

// The trace store's disk tier. Synthetic traces are pure functions of
// their Key, but generating and packing a 10M-event trace takes long
// enough to dominate a cold bench run; the packed struct-of-arrays form
// (and the stride-predictor correctness streams derived from load
// traces) serialize compactly, so a restarted process reloads them
// instead of regenerating. Artifacts are validated on decode — length
// against the key's event count, IDs against the PC table, implication
// invariants on the confidence bits — so corruption or key collisions
// degrade to regeneration, never to wrong bits.

const (
	traceKind    = "trace"
	traceVersion = 1

	confKind    = "confstream"
	confVersion = 1

	spanKind    = "spanidx"
	spanVersion = 1
)

// SetDisk attaches a disk store beneath the trace cache (nil detaches).
// Loads/stores run inside the per-key singleflight slot, so each
// artifact is read or written at most once per process even under
// concurrent demand.
func (s *Store) SetDisk(d *disktier.Store) {
	s.mu.Lock()
	s.disk = d
	s.mu.Unlock()
}

// Clear drops every cached trace while keeping the statistics and the
// disk hookup — the warm-start measurement primitive: after Clear, the
// next lookups expose the disk tier (or regeneration) underneath.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.branches = make(map[Key]*flight[*Packed])
	s.loads = make(map[Key]*flight[[]trace.LoadEvent])
	s.confs = nil
	s.bytes.Store(0)
}

// diskAddress renders a store key as a disk-tier address. Key strings
// contain ':' and '/', which the tier's address grammar rejects, so the
// address is the SHA-256 of the canonical string — collision-free in
// practice and validated structurally on decode regardless.
func diskAddress(canonical string) string {
	h := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(h[:])
}

func branchAddress(k Key) string { return diskAddress(k.String()) }

func confAddress(k confKey) string {
	return diskAddress(fmt.Sprintf("%s|conf|%d", k.Key.String(), k.TableLog2))
}

func spanAddress(k Key) string {
	return diskAddress(fmt.Sprintf("%s|spanidx|%d", k.String(), bitseq.DefaultMinRunBytes))
}

// encodePacked renders a packed trace: event count, PC table, per-event
// ID stream, then the packed outcome words. The substream views and the
// PC index are derived data and rebuilt on decode.
func encodePacked(p *Packed) []byte {
	words := p.outcomes.Words()
	b := make([]byte, 0, 20+8*len(p.pcs)+4*len(p.ids)+8*len(words))
	b = disktier.AppendU32(b, uint32(len(p.ids)))
	b = disktier.AppendU64s(b, p.pcs)
	b = disktier.AppendI32s(b, p.ids)
	b = disktier.AppendU64s(b, words)
	return b
}

// decodePacked parses a payload back into a packed trace, rebuilding
// the substream views and the PC index exactly as Pack would. Any
// structural inconsistency — ID out of range, duplicate PC, unused ID,
// word count mismatch — reads as a miss.
func decodePacked(payload []byte) (*Packed, bool) {
	r := disktier.NewReader(payload)
	n := int(r.U32())
	pcs := r.U64s()
	ids := r.I32s()
	words := r.U64s()
	if !r.Done() || n < 0 || len(ids) != n || len(words) != (n+63)/64 {
		return nil, false
	}
	counts := make([]int, len(pcs))
	for _, id := range ids {
		if id < 0 || int(id) >= len(pcs) {
			return nil, false
		}
		counts[id]++
	}
	byPC := make(map[uint64]int32, len(pcs))
	for i, pc := range pcs {
		if _, dup := byPC[pc]; dup {
			return nil, false
		}
		if counts[i] == 0 {
			return nil, false // interned PC with no events: not a Pack output
		}
		byPC[pc] = int32(i)
	}
	p := &Packed{
		ids:      ids,
		pcs:      pcs,
		outcomes: bitseq.FromWords(words, n),
		subs:     make([]Sub, len(pcs)),
		byPC:     byPC,
	}
	for i := range p.subs {
		p.subs[i].Outcomes = &bitseq.Bits{}
		p.subs[i].Pos = make([]int32, 0, counts[i])
	}
	for i, id := range p.ids {
		s := &p.subs[id]
		s.Outcomes.Append(p.outcomes.At(i))
		s.Pos = append(s.Pos, int32(i))
	}
	return p, true
}

// encodeConfStreams renders the global valid/correct streams followed
// by each segment's length and streams.
func encodeConfStreams(cs *ConfStreams) []byte {
	n := cs.Valid.Len()
	b := make([]byte, 0, 24+2*(n/8)+24*len(cs.Segments)+2*(n/8))
	b = disktier.AppendU32(b, uint32(n))
	b = disktier.AppendU64s(b, cs.Valid.Words())
	b = disktier.AppendU64s(b, cs.Correct.Words())
	b = disktier.AppendU32(b, uint32(len(cs.Segments)))
	for _, seg := range cs.Segments {
		b = disktier.AppendU32(b, uint32(seg.Valid.Len()))
		b = disktier.AppendU64s(b, seg.Valid.Words())
		b = disktier.AppendU64s(b, seg.Correct.Words())
	}
	return b
}

// decodeConfStreams parses confidence streams, enforcing the harness
// invariants: Correct implies Valid bit-for-bit, and the segment
// lengths partition the load count.
func decodeConfStreams(payload []byte) (*ConfStreams, bool) {
	r := disktier.NewReader(payload)
	n := int(r.U32())
	valid, ok := readStream(r, n)
	if !ok {
		return nil, false
	}
	correct, ok := readStream(r, n)
	if !ok {
		return nil, false
	}
	if !impliesBitwise(correct, valid) {
		return nil, false
	}
	nseg := int(r.U32())
	if r.Err() || nseg < 0 || nseg > n {
		return nil, false
	}
	cs := &ConfStreams{Valid: valid, Correct: correct}
	total := 0
	for i := 0; i < nseg; i++ {
		sl := int(r.U32())
		sv, ok := readStream(r, sl)
		if !ok {
			return nil, false
		}
		sc, ok := readStream(r, sl)
		if !ok || !impliesBitwise(sc, sv) {
			return nil, false
		}
		total += sl
		cs.Segments = append(cs.Segments, ConfSegment{Valid: sv, Correct: sc})
	}
	if !r.Done() || total != n {
		return nil, false
	}
	// Span indexes are derived data, never persisted: rederive them so a
	// decoded artifact is structurally identical to a fresh build.
	cs.indexSpans()
	return cs, true
}

// readStream decodes one count-prefixed word slice as an n-bit stream,
// rejecting length mismatches and set padding bits.
func readStream(r *disktier.Reader, n int) (*bitseq.Bits, bool) {
	words := r.U64s()
	if r.Err() || n < 0 || len(words) != (n+63)/64 {
		return nil, false
	}
	if rem := uint(n % 64); rem != 0 && len(words) > 0 && words[len(words)-1]>>rem != 0 {
		return nil, false
	}
	return bitseq.FromWords(words, n), true
}

// impliesBitwise reports whether every set bit of a is also set in b.
// Both streams have clean padding, so the word-level check suffices.
func impliesBitwise(a, b *bitseq.Bits) bool {
	aw, bw := a.Words(), b.Words()
	if len(aw) != len(bw) {
		return false
	}
	for i := range aw {
		if aw[i]&^bw[i] != 0 {
			return false
		}
	}
	return true
}

// encodeSpanIndex renders a trace's run index: the run count, then each
// run's start position, byte length, and repeated bit.
func encodeSpanIndex(runs []bitseq.Run) []byte {
	b := make([]byte, 0, 4+9*len(runs))
	b = disktier.AppendU32(b, uint32(len(runs)))
	for _, r := range runs {
		b = disktier.AppendU32(b, uint32(r.Start))
		b = disktier.AppendU32(b, uint32(r.Bytes))
		var one uint8
		if r.One {
			one = 1
		}
		b = append(b, one)
	}
	return b
}

// decodeSpanIndex parses a run index and validates it against the trace
// it claims to describe: runs must be byte-aligned, in-bounds, ascending
// and non-overlapping, at least the default granularity, and — the part
// that makes corruption harmless — every covered word of the outcome
// stream must actually be homogeneous with the claimed bit. A stale or
// corrupt index reads as a miss and the store rescans; it can never make
// a span kernel skip a mixed region. Non-maximal runs are accepted (they
// only cost speed), so the check is pure word compares, no rescan.
func decodeSpanIndex(payload []byte, p *Packed) ([]bitseq.Run, bool) {
	r := disktier.NewReader(payload)
	count := int(r.U32())
	words, n := p.Outcomes().Words(), p.Outcomes().Len()
	if r.Err() || count < 0 || count > n/8+1 {
		return nil, false
	}
	// nil for an empty index, matching a fresh scan exactly.
	var runs []bitseq.Run
	if count > 0 {
		runs = make([]bitseq.Run, 0, count)
	}
	prevEnd := 0
	for i := 0; i < count; i++ {
		start, nbytes := int(r.U32()), int(r.U32())
		one := r.U8() != 0
		if r.Err() || start&7 != 0 || start < prevEnd || nbytes < bitseq.DefaultMinRunBytes {
			return nil, false
		}
		end := start + nbytes<<3
		if end > n&^7 {
			return nil, false
		}
		var want uint64
		if one {
			want = ^uint64(0)
		}
		for j := start >> 3; j < end>>3; j++ {
			if uint8(words[j>>3]>>uint((j&7)<<3)) != uint8(want) {
				return nil, false
			}
		}
		runs = append(runs, bitseq.Run{Start: int32(start), Bytes: int32(nbytes), One: one})
		prevEnd = end
	}
	if !r.Done() {
		return nil, false
	}
	return runs, true
}

// diskLoadSpans consults the disk tier for a trace's run index,
// validating it against the already-loaded trace words.
func (s *Store) diskLoadSpans(d *disktier.Store, k Key, p *Packed) ([]bitseq.Run, bool) {
	if d == nil {
		return nil, false
	}
	blob, ok := d.Get(spanKind, spanVersion, spanAddress(k))
	if !ok {
		return nil, false
	}
	defer blob.Close()
	return decodeSpanIndex(blob.Data, p)
}

// diskLoadPacked consults the disk tier for a branch trace. Generation
// completes whole program iterations, so a trace carries at least —
// not exactly — the key's event count; a shorter artifact cannot be
// the key's trace and reads as a miss.
func (s *Store) diskLoadPacked(d *disktier.Store, k Key) (*Packed, bool) {
	if d == nil {
		return nil, false
	}
	blob, ok := d.Get(traceKind, traceVersion, branchAddress(k))
	if !ok {
		return nil, false
	}
	defer blob.Close()
	p, ok := decodePacked(blob.Data)
	if !ok || p.Len() < k.Events {
		return nil, false
	}
	return p, true
}

// diskLoadConf consults the disk tier for confidence streams; like
// branch traces, the underlying load generation rounds up to whole
// iterations, so the streams must cover at least the key's load count.
func (s *Store) diskLoadConf(d *disktier.Store, k confKey) (*ConfStreams, bool) {
	if d == nil {
		return nil, false
	}
	blob, ok := d.Get(confKind, confVersion, confAddress(k))
	if !ok {
		return nil, false
	}
	defer blob.Close()
	cs, ok := decodeConfStreams(blob.Data)
	if !ok || cs.Loads() < k.Events {
		return nil, false
	}
	return cs, true
}
