package tracestore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/disktier"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/workload"
)

// biasedEvents builds a run-heavy branch trace — the workload whose span
// index is actually populated.
func biasedEvents(t *testing.T, n int) []trace.BranchEvent {
	t.Helper()
	events, err := trace.GenBiased(n, 0.95, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestSpanIndexMatchesScan(t *testing.T) {
	prog, err := workload.ByName("gsm")
	if err != nil {
		t.Fatal(err)
	}
	p := Pack(prog.Generate(workload.Train, 5000))
	want := bitseq.Runs(p.Outcomes().Words(), p.Outcomes().Len(), bitseq.DefaultMinRunBytes)
	got := p.SpanIndex()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("SpanIndex differs from a direct scan")
	}
	// Idempotent and cached: same slice back.
	if again := p.SpanIndex(); len(got) > 0 && &again[0] != &got[0] {
		t.Fatal("SpanIndex recomputed instead of caching")
	}
	// A seeded index wins over a scan when installed first.
	seeded := Pack(prog.Generate(workload.Train, 5000))
	fake := []bitseq.Run{}
	seeded.seedSpanIndex(fake)
	if idx := seeded.SpanIndex(); len(idx) != 0 {
		t.Fatal("seeded index was rescanned")
	}
}

func TestSpanIndexDiskCodecRoundTrip(t *testing.T) {
	p := Pack(biasedEvents(t, 4000))
	want := p.SpanIndex()
	if len(want) == 0 {
		t.Fatal("biased trace produced no runs")
	}
	got, ok := decodeSpanIndex(encodeSpanIndex(want), p)
	if !ok {
		t.Fatal("decode failed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("decoded index differs")
	}
	if got, ok := decodeSpanIndex(encodeSpanIndex(nil), p); !ok || len(got) != 0 {
		t.Fatal("empty index did not round-trip")
	}
}

// TestSpanIndexDecodeRejectsLies is the content-validation guarantee: an
// index claiming a run over a mixed region — the one corruption that
// could make the span kernel produce wrong bits — must read as a miss.
func TestSpanIndexDecodeRejectsLies(t *testing.T) {
	p := Pack(biasedEvents(t, 4000))
	good := p.SpanIndex()
	if len(good) == 0 {
		t.Fatal("biased trace produced no runs")
	}

	for name, mutate := range map[string]func([]bitseq.Run) []bitseq.Run{
		"flipped polarity": func(rs []bitseq.Run) []bitseq.Run {
			rs[0].One = !rs[0].One
			return rs
		},
		"run past stream": func(rs []bitseq.Run) []bitseq.Run {
			rs[len(rs)-1].Bytes += 1 << 20
			return rs
		},
		"unaligned start": func(rs []bitseq.Run) []bitseq.Run {
			rs[0].Start += 3
			return rs
		},
		"out of order": func(rs []bitseq.Run) []bitseq.Run {
			if len(rs) < 2 {
				return append(rs, rs[0])
			}
			rs[0], rs[1] = rs[1], rs[0]
			return rs
		},
		"below min length": func(rs []bitseq.Run) []bitseq.Run {
			rs[0].Bytes = 1
			return rs
		},
	} {
		bad := mutate(append([]bitseq.Run(nil), good...))
		if _, ok := decodeSpanIndex(encodeSpanIndex(bad), p); ok {
			t.Errorf("%s accepted", name)
		}
	}
	for _, raw := range [][]byte{nil, {1}, encodeSpanIndex(good)[:5]} {
		if _, ok := decodeSpanIndex(raw, p); ok {
			t.Errorf("truncated payload (%d bytes) accepted", len(raw))
		}
	}
	// A non-maximal but truthful index is acceptable: it only skips less.
	partial := []bitseq.Run{good[0]}
	if len(good) > 1 {
		if _, ok := decodeSpanIndex(encodeSpanIndex(partial), p); !ok {
			t.Error("truthful partial index rejected")
		}
	}
}

// TestStoreSpanIndexTier proves the cached index travels with the trace:
// a warm store persists it, a cold store loads and validates it inside
// the same singleflight slot, and a corrupted artifact degrades to a
// rescan with identical results.
func TestStoreSpanIndexTier(t *testing.T) {
	dir := t.TempDir()
	disk, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewStore()
	warm.SetDisk(disk)
	prog, _ := workload.ByName("gs")
	want := warm.Branches(prog, workload.Train, 3000).SpanIndex()

	ents, err := os.ReadDir(filepath.Join(dir, spanKind))
	if err != nil || len(ents) == 0 {
		t.Fatalf("no %s artifacts persisted (err %v)", spanKind, err)
	}

	cold := NewStore()
	cold.SetDisk(disk)
	if got := cold.Branches(prog, workload.Train, 3000).SpanIndex(); !reflect.DeepEqual(got, want) {
		t.Fatal("disk-tier span index differs from scanned")
	}

	for _, e := range ents {
		p := filepath.Join(dir, spanKind, e.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	hurt := NewStore()
	hurt.SetDisk(disk)
	if got := hurt.Branches(prog, workload.Train, 3000).SpanIndex(); !reflect.DeepEqual(got, want) {
		t.Fatal("post-corruption span index differs")
	}
}

// TestConfSegmentSpans checks every built and decoded segment carries a
// truthful run index over its correctness stream.
func TestConfSegmentSpans(t *testing.T) {
	lp, err := workload.LoadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cs := BuildConfStreams(lp.Generate(workload.Train, 3000), 4)
	check := func(label string, cs *ConfStreams) {
		for i, seg := range cs.Segments {
			want := bitseq.Runs(seg.Correct.Words(), seg.Correct.Len(), bitseq.DefaultMinRunBytes)
			if !reflect.DeepEqual(seg.Spans, want) {
				t.Fatalf("%s segment %d: spans differ from scan", label, i)
			}
		}
	}
	check("built", cs)
	dec, ok := decodeConfStreams(encodeConfStreams(cs))
	if !ok {
		t.Fatal("decode failed")
	}
	check("decoded", dec)
}
