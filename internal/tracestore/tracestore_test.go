package tracestore

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/workload"
)

// randomEvents builds a deterministic pseudo-random trace over a small
// set of static branches.
func randomEvents(seed int64, n, statics int) []trace.BranchEvent {
	rng := rand.New(rand.NewSource(seed))
	events := make([]trace.BranchEvent, n)
	for i := range events {
		events[i] = trace.BranchEvent{
			PC:    0x4000 + uint64(rng.Intn(statics))*4,
			Taken: rng.Intn(2) == 1,
		}
	}
	return events
}

func TestPackRoundTrip(t *testing.T) {
	events := randomEvents(1, 5000, 7)
	p := Pack(events)
	if p.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(events))
	}
	back := p.Events()
	for i, e := range events {
		if back[i] != e {
			t.Fatalf("event %d: got %+v, want %+v", i, back[i], e)
		}
		if p.PCAt(i) != e.PC || p.Taken(i) != e.Taken {
			t.Fatalf("accessor mismatch at %d", i)
		}
		if p.PCOf(p.IDAt(i)) != e.PC {
			t.Fatalf("ID interning broken at %d", i)
		}
	}
}

func TestPackInterningDeterministic(t *testing.T) {
	events := randomEvents(2, 2000, 5)
	a, b := Pack(events), Pack(events)
	if a.NumStatics() != b.NumStatics() {
		t.Fatalf("statics differ: %d vs %d", a.NumStatics(), b.NumStatics())
	}
	for id := int32(0); id < int32(a.NumStatics()); id++ {
		if a.PCOf(id) != b.PCOf(id) {
			t.Fatalf("ID %d interned differently: %#x vs %#x", id, a.PCOf(id), b.PCOf(id))
		}
	}
	// IDs are assigned in first-appearance order.
	seen := map[uint64]bool{}
	var next int32
	for _, e := range events {
		if !seen[e.PC] {
			seen[e.PC] = true
			if id, _ := a.IDOf(e.PC); id != next {
				t.Fatalf("PC %#x interned as %d, want %d", e.PC, id, next)
			}
			next++
		}
	}
}

// TestSubstreamsMatchScan checks each branch's substream view against a
// direct scan of the event slice.
func TestSubstreamsMatchScan(t *testing.T) {
	events := randomEvents(3, 5000, 9)
	p := Pack(events)
	for id := int32(0); id < int32(p.NumStatics()); id++ {
		pc := p.PCOf(id)
		sub := p.SubOf(id)
		k := 0
		for i, e := range events {
			if e.PC != pc {
				continue
			}
			if k >= len(sub.Pos) || sub.Pos[k] != int32(i) {
				t.Fatalf("branch %#x occurrence %d: wrong position", pc, k)
			}
			if sub.Outcomes.At(k) != e.Taken {
				t.Fatalf("branch %#x occurrence %d: wrong outcome", pc, k)
			}
			k++
		}
		if k != len(sub.Pos) || k != sub.Outcomes.Len() {
			t.Fatalf("branch %#x: substream length %d/%d, want %d", pc, len(sub.Pos), sub.Outcomes.Len(), k)
		}
	}
}

// TestGlobalHistoryMatchesHistoryRegister checks the packed window
// extraction against the bitseq.History push semantics it must mirror.
func TestGlobalHistoryMatchesHistoryRegister(t *testing.T) {
	events := randomEvents(4, 3000, 4)
	p := Pack(events)
	for _, order := range []int{1, 2, 5, 9, 13, 31, 32} {
		h := bitseq.NewHistory(order)
		for i, e := range events {
			if h.Warm() {
				if got, want := p.GlobalHistory(i, order), h.Value(); got != want {
					t.Fatalf("order %d pos %d: history %#x, want %#x", order, i, got, want)
				}
			}
			h.Push(e.Taken)
		}
	}
}

// TestGlobalModelsMatchGlobalMarkov is the differential test for the
// packed training substrate: models built from substream views must be
// identical to trace.GlobalMarkov over the event slice.
func TestGlobalModelsMatchGlobalMarkov(t *testing.T) {
	events := randomEvents(5, 8000, 6)
	p := Pack(events)
	for _, order := range []int{1, 4, 9, 12} {
		ids := make([]int32, p.NumStatics())
		targets := map[uint64]bool{}
		for id := range ids {
			ids[id] = int32(id)
			targets[p.PCOf(int32(id))] = true
		}
		want := trace.GlobalMarkov(events, targets, order)
		got := p.GlobalModels(ids, order)
		for i, id := range ids {
			assertModelsEqual(t, got[i], want[p.PCOf(id)])
		}
	}
}

func assertModelsEqual(t *testing.T, got, want *markov.Model) {
	t.Helper()
	if got.Order() != want.Order() || got.Total() != want.Total() || got.Distinct() != want.Distinct() {
		t.Fatalf("model shape differs: order %d/%d total %d/%d distinct %d/%d",
			got.Order(), want.Order(), got.Total(), want.Total(), got.Distinct(), want.Distinct())
	}
	want.Each(func(h uint32, c markov.Count) {
		if got.Count(h) != c {
			t.Fatalf("history %#x: count %+v, want %+v", h, got.Count(h), c)
		}
	})
}

func TestStoreBranchesMatchesGenerate(t *testing.T) {
	s := NewStore()
	prog, err := workload.ByName("gsm")
	if err != nil {
		t.Fatal(err)
	}
	p := s.Branches(prog, workload.Train, 4000)
	want := prog.Generate(workload.Train, 4000)
	got := p.Events()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestStoreDedupAndStats(t *testing.T) {
	s := NewStore()
	prog, _ := workload.ByName("gs")
	lp, err := workload.LoadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	a := s.Branches(prog, workload.Train, 2000)
	b := s.Branches(prog, workload.Train, 2000)
	if a != b {
		t.Fatal("same key returned distinct packed traces")
	}
	if c := s.Branches(prog, workload.Test, 2000); c == a {
		t.Fatal("different variant shared a trace")
	}
	l1 := s.Loads(lp, workload.Train, 1000)
	l2 := s.Loads(lp, workload.Train, 1000)
	if &l1[0] != &l2[0] {
		t.Fatal("same load key returned distinct slices")
	}
	st := s.Stats()
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3", st.Misses)
	}
	if st.Hits != 2 {
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
	if st.Bytes == 0 {
		t.Fatal("bytes not accounted")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

// TestStoreSingleflightStress hammers one store from many goroutines and
// checks every requester of a key observes the same trace, with exactly
// one generation per distinct key. Run under -race in CI.
func TestStoreSingleflightStress(t *testing.T) {
	s := NewStore()
	suite := workload.BranchSuite()
	const goroutines = 16
	const rounds = 8

	var wg sync.WaitGroup
	results := make([][]*Packed, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, prog := range suite {
					results[g] = append(results[g], s.Branches(prog, workload.Train, 1500))
				}
			}
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d result %d is a distinct generation", g, i)
			}
		}
	}
	st := s.Stats()
	if st.Misses != uint64(len(suite)) {
		t.Fatalf("misses = %d, want %d (one generation per program)", st.Misses, len(suite))
	}
	if want := uint64(goroutines*rounds*len(suite)) - st.Misses; st.Hits != want {
		t.Fatalf("hits = %d, want %d", st.Hits, want)
	}
}

// TestSharedStoreConcurrentMixedKinds exercises hit/miss accounting with
// branch and load lookups racing on a fresh store.
func TestSharedStoreConcurrentMixedKinds(t *testing.T) {
	s := NewStore()
	lp, err := workload.LoadByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := workload.ByName("vortex")
	var total atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				s.Branches(prog, workload.Test, 1000)
				s.Loads(lp, workload.Test, 1000)
				total.Add(2)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses != total.Load() {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, total.Load())
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}

func TestGlobalHistoryPanics(t *testing.T) {
	p := Pack(randomEvents(6, 100, 2))
	for _, tc := range []struct{ pos, order int }{{0, 1}, {3, 9}, {10, 0}, {50, 33}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GlobalHistory(%d, %d) did not panic", tc.pos, tc.order)
				}
			}()
			p.GlobalHistory(tc.pos, tc.order)
		}()
	}
}
