package tracestore

import (
	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/vpred"
	"fsmpredict/internal/workload"
)

// ConfSegment is one confidence-estimator lifetime in the §6 harness:
// the span of loads mapped to one value-predictor table entry while the
// entry belonged to one static load. Per-entry estimators (counters or
// FSM runners) are created at the segment start and see exactly this
// correctness stream, so any estimator can be evaluated by replaying
// segments — no stride-predictor re-simulation needed.
type ConfSegment struct {
	// Valid marks loads whose access produced a value prediction (tag
	// hit); only these are scored.
	Valid *bitseq.Bits
	// Correct marks loads that were validly predicted AND correct — the
	// bit estimators train on (Correct implies Valid).
	Correct *bitseq.Bits
	// Spans indexes the homogeneous byte runs of Correct (bitseq.Runs)
	// for the fsm span kernel's gated replay. Derived data: computed
	// once at build/decode time, deterministic per Correct stream.
	Spans []bitseq.Run
}

// ConfStreams is the order-independent residue of one (load trace,
// table size) stride-predictor simulation: the global per-load valid and
// correctness streams in trace order, plus the same bits re-cut into
// per-entry estimator segments. Both the counter sweep and every
// (history length, bias threshold) FSM evaluation of Figure 2 replay
// these packed bits instead of re-running the two-delta predictor.
type ConfStreams struct {
	// Segments lists estimator lifetimes in order of first load.
	Segments []ConfSegment
	// Valid and Correct are the whole-trace streams, in load order,
	// driving the global (§6.3-literal) evaluation protocol.
	Valid   *bitseq.Bits
	Correct *bitseq.Bits
}

// Loads returns the number of load events the streams were built from.
func (c *ConfStreams) Loads() int { return c.Valid.Len() }

// BuildConfStreams runs the two-delta stride predictor once over the
// load trace and packs the resulting correctness bits. The segmentation
// matches the confidence harness exactly: a new segment opens when an
// entry is first touched or reallocated to a different load PC.
func BuildConfStreams(loads []trace.LoadEvent, tableLog2 int) *ConfStreams {
	sp := vpred.New(tableLog2)
	open := make([]int, sp.Size())
	for i := range open {
		open[i] = -1
	}
	owners := make([]uint64, sp.Size())
	cs := &ConfStreams{Valid: &bitseq.Bits{}, Correct: &bitseq.Bits{}}
	for _, ld := range loads {
		acc := sp.Access(ld.PC, ld.Value)
		if open[acc.Entry] < 0 || owners[acc.Entry] != ld.PC {
			cs.Segments = append(cs.Segments, ConfSegment{Valid: &bitseq.Bits{}, Correct: &bitseq.Bits{}})
			open[acc.Entry] = len(cs.Segments) - 1
			owners[acc.Entry] = ld.PC
		}
		seg := &cs.Segments[open[acc.Entry]]
		correct := acc.Valid && acc.Correct
		seg.Valid.Append(acc.Valid)
		seg.Correct.Append(correct)
		cs.Valid.Append(acc.Valid)
		cs.Correct.Append(correct)
	}
	cs.indexSpans()
	return cs
}

// indexSpans (re)derives every segment's run index from its correctness
// stream — after building, after decoding from the disk tier, and after
// any other construction path, so the two are always consistent.
func (c *ConfStreams) indexSpans() {
	for i := range c.Segments {
		seg := &c.Segments[i]
		seg.Spans = bitseq.Runs(seg.Correct.Words(), seg.Correct.Len(), bitseq.DefaultMinRunBytes)
	}
}

// confKey addresses one simulated confidence-stream set: the load trace
// plus the value-predictor table size the streams depend on.
type confKey struct {
	Key
	TableLog2 int
}

// ConfStreams returns the packed correctness streams of (program,
// variant, n) under a 2^tableLog2-entry stride predictor, simulating
// them on first request. Concurrent requests for the same key share one
// simulation; the underlying load trace comes from (and is retained by)
// the same store.
func (s *Store) ConfStreams(p *workload.LoadProgram, v workload.Variant, n, tableLog2 int) *ConfStreams {
	key := confKey{Key: LoadKey(p.Name, v, n), TableLog2: tableLog2}
	s.mu.Lock()
	if s.confs == nil {
		s.confs = make(map[confKey]*flight[*ConfStreams])
	}
	if f, ok := s.confs[key]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		<-f.done
		return f.val
	}
	f := &flight[*ConfStreams]{done: make(chan struct{})}
	s.confs[key] = f
	disk := s.disk
	s.mu.Unlock()

	if cs, ok := s.diskLoadConf(disk, key); ok {
		// A disk hit skips not only the stride-predictor simulation but
		// the load-trace generation feeding it.
		s.tierHits.Add(1)
		f.val = cs
	} else {
		s.misses.Add(1)
		f.val = BuildConfStreams(s.Loads(p, v, n), tableLog2)
		if disk != nil {
			disk.Put(confKind, confVersion, confAddress(key), encodeConfStreams(f.val))
		}
	}
	// Four bit streams cover every load twice (global + segment view).
	s.bytes.Add(uint64(4 * f.val.Loads() / 8))
	close(f.done)
	return f.val
}

// ConfStreamsByName is ConfStreams for a benchmark looked up in the
// load suite.
func (s *Store) ConfStreamsByName(program string, v workload.Variant, n, tableLog2 int) (*ConfStreams, error) {
	p, err := workload.LoadByName(program)
	if err != nil {
		return nil, err
	}
	return s.ConfStreams(p, v, n, tableLog2), nil
}
