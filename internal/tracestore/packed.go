// Package tracestore holds the behavioural traces every experiment and
// serving request reads, in two roles:
//
//   - Packed is the struct-of-arrays trace representation: static
//     branches are interned to dense IDs, the per-event PC stream becomes
//     an []int32 of IDs, outcomes become one bit-packed global stream,
//     and each static branch carries a precomputed substream view (its
//     own outcome bitstream plus the global positions it occupied).
//     Training and evaluation read dense bitstreams and integer tables
//     instead of rescanning a 16-byte-per-event record slice.
//
//   - Store is a process-wide content-addressed cache of generated
//     traces. Synthetic workloads are deterministic functions of
//     (program, variant, event count) — the variant folds in the seed
//     jitter — so that tuple is the content address, and generation runs
//     at most once per address (singleflight): concurrent requesters for
//     the same trace block on the one in-flight generation instead of
//     duplicating it.
//
// Packed traces and cached event slices are immutable after
// construction; readers share them freely without copying.
package tracestore

import (
	"fmt"
	"math/bits"
	"sync"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/trace"
)

// Sub is one static branch's view of the trace: its own outcomes in
// execution order and the global event positions they occurred at. Both
// slices/streams are indexed by occurrence number, so occurrence k of
// the branch happened at global position Pos[k] with outcome
// Outcomes.At(k).
type Sub struct {
	// Outcomes is the branch's local direction stream.
	Outcomes *bitseq.Bits
	// Pos maps occurrence number to global event index, ascending.
	Pos []int32
}

// Packed is an immutable struct-of-arrays branch trace. Construct with
// Pack; all accessors are safe for concurrent use.
type Packed struct {
	ids      []int32      // per-event static-branch ID
	pcs      []uint64     // PC by ID, in first-appearance order
	outcomes *bitseq.Bits // bit i = direction of event i
	subs     []Sub        // per-ID substream views
	byPC     map[uint64]int32

	spanOnce sync.Once
	spanIdx  []bitseq.Run // homogeneous-byte run index of outcomes
}

// Pack converts an event slice into the packed form. Static branches are
// assigned dense IDs in order of first appearance, so packing is
// deterministic: identical event slices produce identical Packed traces.
func Pack(events []trace.BranchEvent) *Packed {
	p := &Packed{
		ids:      make([]int32, len(events)),
		outcomes: &bitseq.Bits{},
		byPC:     make(map[uint64]int32),
	}
	for i, e := range events {
		id, ok := p.byPC[e.PC]
		if !ok {
			id = int32(len(p.pcs))
			p.byPC[e.PC] = id
			p.pcs = append(p.pcs, e.PC)
		}
		p.ids[i] = id
		p.outcomes.Append(e.Taken)
	}
	p.subs = make([]Sub, len(p.pcs))
	for id := range p.subs {
		p.subs[id].Outcomes = &bitseq.Bits{}
	}
	for i, id := range p.ids {
		s := &p.subs[id]
		s.Outcomes.Append(events[i].Taken)
		s.Pos = append(s.Pos, int32(i))
	}
	return p
}

// Len is the number of events.
func (p *Packed) Len() int { return len(p.ids) }

// NumStatics is the number of distinct static branches.
func (p *Packed) NumStatics() int { return len(p.pcs) }

// IDAt returns the dense static-branch ID of event i.
func (p *Packed) IDAt(i int) int32 { return p.ids[i] }

// PCAt returns the PC of event i.
func (p *Packed) PCAt(i int) uint64 { return p.pcs[p.ids[i]] }

// Taken returns the direction of event i.
func (p *Packed) Taken(i int) bool { return p.outcomes.At(i) }

// PCOf returns the PC interned as the given ID.
func (p *Packed) PCOf(id int32) uint64 { return p.pcs[id] }

// IDOf returns the dense ID of a static branch, if it occurs.
func (p *Packed) IDOf(pc uint64) (int32, bool) {
	id, ok := p.byPC[pc]
	return id, ok
}

// Outcomes returns the global direction stream (bit i = event i).
// Callers must not append to it.
func (p *Packed) Outcomes() *bitseq.Bits { return p.outcomes }

// SubOf returns the substream view of one static branch.
func (p *Packed) SubOf(id int32) Sub { return p.subs[id] }

// SpanIndex returns the homogeneous-byte run index of the global outcome
// stream (bitseq.Runs at the default granularity), computing it on first
// request. The scan is one pass over the packed words and the result is
// immutable and shared — the span kernels walk it on every replay of this
// trace. Callers must not mutate the returned slice.
func (p *Packed) SpanIndex() []bitseq.Run {
	p.spanOnce.Do(func() {
		p.spanIdx = bitseq.Runs(p.outcomes.Words(), p.outcomes.Len(), bitseq.DefaultMinRunBytes)
	})
	return p.spanIdx
}

// seedSpanIndex installs a precomputed run index (a validated disk-tier
// artifact), short-circuiting the first SpanIndex scan. Must be called
// before the trace is shared, i.e. inside the store's singleflight slot.
func (p *Packed) seedSpanIndex(runs []bitseq.Run) {
	p.spanOnce.Do(func() { p.spanIdx = runs })
}

// Events materializes the trace back into a fresh event slice — the
// compatibility bridge to the []trace.BranchEvent APIs and the
// differential oracle in tests.
func (p *Packed) Events() []trace.BranchEvent {
	events := make([]trace.BranchEvent, len(p.ids))
	for i, id := range p.ids {
		events[i] = trace.BranchEvent{PC: p.pcs[id], Taken: p.outcomes.At(i)}
	}
	return events
}

// Bytes estimates the retained size of the packed trace (the store's
// bytes metric): the ID stream, the PC table, the outcome streams and
// the position indexes.
func (p *Packed) Bytes() uint64 {
	b := uint64(4*len(p.ids)) + uint64(8*len(p.pcs)) + uint64(p.outcomes.Len()+7)/8
	for _, s := range p.subs {
		b += uint64(s.Outcomes.Len()+7)/8 + uint64(4*len(s.Pos))
	}
	return b
}

// GlobalHistory returns the order-N global history register value as it
// stood immediately before event pos: the direction of event pos-1 in
// bit 0, pos-2 in bit 1, and so on — exactly the value a
// bitseq.History of that width holds after pushing events [0, pos).
// It panics unless order is in [1,32] and pos >= order (the warm-up
// region has no defined history).
func (p *Packed) GlobalHistory(pos, order int) uint32 {
	if order < 1 || order > 32 {
		panic(fmt.Sprintf("tracestore: history order %d out of range [1,32]", order))
	}
	if pos < order {
		panic(fmt.Sprintf("tracestore: position %d precedes warm-up of order %d", pos, order))
	}
	// The packed window has event pos-order in bit 0; the history register
	// wants event pos-1 there, i.e. the window bit-reversed.
	raw := p.outcomes.Uint64At(pos-order, order)
	return uint32(bits.Reverse64(raw) >> (64 - uint(order)))
}

// GlobalModels builds, for each requested static branch, the order-N
// Markov model over the GLOBAL history — the §7.3 training input —
// reading only the branch's own substream positions plus two-word
// history windows, instead of rescanning the full trace per model. The
// models are identical to trace.GlobalMarkov on the materialized events:
// occurrences before the order-N warm-up are skipped.
func (p *Packed) GlobalModels(ids []int32, order int) []*markov.Model {
	models := make([]*markov.Model, len(ids))
	for i, id := range ids {
		m := markov.New(order)
		sub := p.subs[id]
		for k, pos := range sub.Pos {
			if int(pos) < order {
				continue
			}
			m.Observe(p.GlobalHistory(int(pos), order), sub.Outcomes.At(k))
		}
		models[i] = m
	}
	return models
}
