package tracestore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fsmpredict/internal/disktier"
	"fsmpredict/internal/workload"
)

func packedEqual(a, b *Packed) bool {
	if a.Len() != b.Len() || a.NumStatics() != b.NumStatics() {
		return false
	}
	if !reflect.DeepEqual(a.ids, b.ids) || !reflect.DeepEqual(a.pcs, b.pcs) {
		return false
	}
	if !reflect.DeepEqual(a.outcomes.Words(), b.outcomes.Words()) {
		return false
	}
	for id := range a.subs {
		sa, sb := a.subs[id], b.subs[id]
		if !reflect.DeepEqual(sa.Pos, sb.Pos) ||
			sa.Outcomes.Len() != sb.Outcomes.Len() ||
			!reflect.DeepEqual(sa.Outcomes.Words(), sb.Outcomes.Words()) {
			return false
		}
	}
	return reflect.DeepEqual(a.byPC, b.byPC)
}

func confEqual(a, b *ConfStreams) bool {
	eq := func(x, y interface {
		Len() int
		Words() []uint64
	}) bool {
		return x.Len() == y.Len() && reflect.DeepEqual(x.Words(), y.Words())
	}
	if !eq(a.Valid, b.Valid) || !eq(a.Correct, b.Correct) || len(a.Segments) != len(b.Segments) {
		return false
	}
	for i := range a.Segments {
		if !eq(a.Segments[i].Valid, b.Segments[i].Valid) ||
			!eq(a.Segments[i].Correct, b.Segments[i].Correct) {
			return false
		}
	}
	return true
}

func TestPackedDiskCodecRoundTrip(t *testing.T) {
	prog, err := workload.ByName("gsm")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 63, 64, 65, 4000} {
		want := Pack(prog.Generate(workload.Train, n))
		got, ok := decodePacked(encodePacked(want))
		if !ok {
			t.Fatalf("n=%d: decode failed", n)
		}
		if !packedEqual(got, want) {
			t.Fatalf("n=%d: decoded trace differs", n)
		}
	}
}

func TestPackedDecodeRejectsMalformed(t *testing.T) {
	prog, _ := workload.ByName("gsm")
	good := encodePacked(Pack(prog.Generate(workload.Train, 500)))
	for _, bad := range [][]byte{
		nil,
		good[:len(good)-1],
		append(append([]byte(nil), good...), 7),
		good[:5],
	} {
		if _, ok := decodePacked(bad); ok {
			t.Fatalf("malformed payload (%d bytes) accepted", len(bad))
		}
	}
	// An out-of-range static ID must be rejected.
	p := Pack(prog.Generate(workload.Train, 500))
	p.ids[3] = int32(len(p.pcs)) + 5
	if _, ok := decodePacked(encodePacked(p)); ok {
		t.Fatal("out-of-range static ID accepted")
	}
}

func TestConfStreamsDiskCodecRoundTrip(t *testing.T) {
	lp, err := workload.LoadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	want := BuildConfStreams(lp.Generate(workload.Train, 3000), 4)
	got, ok := decodeConfStreams(encodeConfStreams(want))
	if !ok {
		t.Fatal("decode failed")
	}
	if !confEqual(got, want) {
		t.Fatal("decoded streams differ")
	}

	// A Correct bit outside Valid violates the harness invariant.
	evil := BuildConfStreams(lp.Generate(workload.Train, 3000), 4)
	for i := 0; i < evil.Valid.Len(); i++ {
		if !evil.Valid.At(i) {
			w := evil.Correct.Words()
			w[i/64] |= 1 << uint(i%64)
			break
		}
	}
	if _, ok := decodeConfStreams(encodeConfStreams(evil)); ok {
		t.Fatal("Correct-without-Valid accepted")
	}
}

// TestStoreDiskTier proves the warm-start path end to end: a store
// fills the disk tier, a cold store (or a cleared one) serves the same
// bits from disk without regenerating, and a corrupted artifact
// regenerates cleanly.
func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	disk, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewStore()
	warm.SetDisk(disk)

	prog, _ := workload.ByName("gs")
	lp, _ := workload.LoadByName("perl")
	wantBranch := warm.Branches(prog, workload.Train, 2500)
	wantConf := warm.ConfStreams(lp, workload.Train, 2000, 4)
	if st := warm.Stats(); st.TierHits != 0 || st.Misses == 0 {
		t.Fatalf("warm fill stats = %+v", st)
	}

	cold := NewStore()
	cold.SetDisk(disk)
	if got := cold.Branches(prog, workload.Train, 2500); !packedEqual(got, wantBranch) {
		t.Fatal("disk-tier branch trace differs from generated")
	}
	if got := cold.ConfStreams(lp, workload.Train, 2000, 4); !confEqual(got, wantConf) {
		t.Fatal("disk-tier conf streams differ from simulated")
	}
	if st := cold.Stats(); st.TierHits != 2 || st.Misses != 0 {
		t.Fatalf("cold stats = %+v, want 2 tier hits and no generation", st)
	}

	// Clear exposes the disk tier again on the same store.
	cold.Clear()
	if cold.Len() != 0 {
		t.Fatalf("Len after Clear = %d", cold.Len())
	}
	cold.Branches(prog, workload.Train, 2500)
	if st := cold.Stats(); st.TierHits != 3 || st.Misses != 0 {
		t.Fatalf("post-Clear stats = %+v", st)
	}

	// Corrupt every artifact: a fresh store must regenerate identical
	// bits and count no tier hit.
	for _, kind := range []string{"trace", "confstream"} {
		ents, err := os.ReadDir(filepath.Join(dir, kind))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			p := filepath.Join(dir, kind, e.Name())
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x10
			if err := os.WriteFile(p, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	hurt := NewStore()
	hurt.SetDisk(disk)
	if got := hurt.Branches(prog, workload.Train, 2500); !packedEqual(got, wantBranch) {
		t.Fatal("post-corruption branch trace differs")
	}
	if got := hurt.ConfStreams(lp, workload.Train, 2000, 4); !confEqual(got, wantConf) {
		t.Fatal("post-corruption conf streams differ")
	}
	if st := hurt.Stats(); st.TierHits != 0 || st.Misses == 0 {
		t.Fatalf("post-corruption stats = %+v, want clean regeneration", st)
	}
	if st := disk.Stats(); st.Corrupt == 0 {
		t.Fatal("disk store did not flag the corrupted artifacts")
	}
}
