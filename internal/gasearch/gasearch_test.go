package gasearch

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/core"
)

func alternatingTrace(n int) []bool {
	t := make([]bool, n)
	for i := range t {
		t[i] = i%2 == 0
	}
	return t
}

func TestSearchFindsAlternation(t *testing.T) {
	res, err := Search(alternatingTrace(500), Options{
		States: 2, Population: 40, Generations: 30, Seed: 1, Warmup: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMissRate > 0.01 {
		t.Errorf("best miss = %v, want ~0 on alternating trace", res.BestMissRate)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("best machine invalid: %v", err)
	}
}

func TestSearchMonotoneUnderElitism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trace := make([]bool, 2000)
	for i := range trace {
		trace[i] = i%7 < 4 || rng.Intn(5) == 0
	}
	res, err := Search(trace, Options{States: 8, Population: 50, Generations: 40, Seed: 2, Warmup: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.PerGeneration); i++ {
		if res.PerGeneration[i] > res.PerGeneration[i-1]+1e-12 {
			t.Fatalf("fitness regressed at generation %d: %v -> %v",
				i, res.PerGeneration[i-1], res.PerGeneration[i])
		}
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations counted")
	}
}

func TestSearchDeterministic(t *testing.T) {
	trace := alternatingTrace(300)
	opt := Options{States: 4, Population: 30, Generations: 10, Seed: 7, Warmup: 2}
	a, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestMissRate != b.BestMissRate || a.Evaluations != b.Evaluations {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			a.BestMissRate, a.Evaluations, b.BestMissRate, b.Evaluations)
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(alternatingTrace(100), Options{States: 1}); err == nil {
		t.Error("expected states error")
	}
	if _, err := Search(alternatingTrace(100), Options{States: 99}); err == nil {
		t.Error("expected states error")
	}
	if _, err := Search(nil, Options{States: 4}); err == nil {
		t.Error("expected trace error")
	}
	if _, err := Search(alternatingTrace(100), Options{States: 4, Elite: 64, Population: 64}); err == nil {
		t.Error("expected elite error")
	}
}

// TestDesignerMatchesSearchQuality is the paper's §3.2 comparison: on a
// globally patterned trace, the constructive design flow must reach the
// quality of an evolutionary search (it is provably model-optimal on the
// training trace) at a fraction of the evaluations.
func TestDesignerMatchesSearchQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Outcome = outcome three steps back, with 5% noise.
	trace := make([]bool, 4000)
	for i := range trace {
		if i < 3 {
			trace[i] = rng.Intn(2) == 1
		} else {
			trace[i] = trace[i-3] != (rng.Intn(20) == 0)
		}
	}
	design, err := core.FromBools(trace, core.Options{Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	designed := design.Machine.Simulate(trace, 3).MissRate()

	res, err := Search(trace, Options{
		States: design.Machine.NumStates(), Population: 60, Generations: 60,
		Seed: 3, Warmup: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if designed > res.BestMissRate+0.01 {
		t.Errorf("designed machine (%.4f) should match GA search (%.4f)",
			designed, res.BestMissRate)
	}
	t.Logf("designed %.4f in 1 construction vs GA %.4f in %d evaluations",
		designed, res.BestMissRate, res.Evaluations)
}
