package gasearch

import (
	"math/rand"
	"reflect"
	"testing"

	"fsmpredict/internal/core"
	"fsmpredict/internal/fsm"
)

func alternatingTrace(n int) []bool {
	t := make([]bool, n)
	for i := range t {
		t[i] = i%2 == 0
	}
	return t
}

func TestSearchFindsAlternation(t *testing.T) {
	res, err := Search(alternatingTrace(500), Options{
		States: 2, Population: 40, Generations: 30, Seed: 1, Warmup: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMissRate > 0.01 {
		t.Errorf("best miss = %v, want ~0 on alternating trace", res.BestMissRate)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("best machine invalid: %v", err)
	}
}

func TestSearchMonotoneUnderElitism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trace := make([]bool, 2000)
	for i := range trace {
		trace[i] = i%7 < 4 || rng.Intn(5) == 0
	}
	res, err := Search(trace, Options{States: 8, Population: 50, Generations: 40, Seed: 2, Warmup: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.PerGeneration); i++ {
		if res.PerGeneration[i] > res.PerGeneration[i-1]+1e-12 {
			t.Fatalf("fitness regressed at generation %d: %v -> %v",
				i, res.PerGeneration[i-1], res.PerGeneration[i])
		}
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations counted")
	}
}

func TestSearchDeterministic(t *testing.T) {
	trace := alternatingTrace(300)
	opt := Options{States: 4, Population: 30, Generations: 10, Seed: 7, Warmup: 2}
	a, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestMissRate != b.BestMissRate || a.Evaluations != b.Evaluations {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			a.BestMissRate, a.Evaluations, b.BestMissRate, b.Evaluations)
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(alternatingTrace(100), Options{States: 1}); err == nil {
		t.Error("expected states error")
	}
	if _, err := Search(alternatingTrace(100), Options{States: 99}); err == nil {
		t.Error("expected states error")
	}
	if _, err := Search(nil, Options{States: 4}); err == nil {
		t.Error("expected trace error")
	}
	if _, err := Search(alternatingTrace(100), Options{States: 4, Elite: 64, Population: 64}); err == nil {
		t.Error("expected elite error")
	}
}

// TestDesignerMatchesSearchQuality is the paper's §3.2 comparison: on a
// globally patterned trace, the constructive design flow must reach the
// quality of an evolutionary search (it is provably model-optimal on the
// training trace) at a fraction of the evaluations.
func TestDesignerMatchesSearchQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Outcome = outcome three steps back, with 5% noise.
	trace := make([]bool, 4000)
	for i := range trace {
		if i < 3 {
			trace[i] = rng.Intn(2) == 1
		} else {
			trace[i] = trace[i-3] != (rng.Intn(20) == 0)
		}
	}
	design, err := core.FromBools(trace, core.Options{Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	designed := design.Machine.Simulate(trace, 3).MissRate()

	res, err := Search(trace, Options{
		States: design.Machine.NumStates(), Population: 60, Generations: 60,
		Seed: 3, Warmup: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if designed > res.BestMissRate+0.01 {
		t.Errorf("designed machine (%.4f) should match GA search (%.4f)",
			designed, res.BestMissRate)
	}
	t.Logf("designed %.4f in 1 construction vs GA %.4f in %d evaluations",
		designed, res.BestMissRate, res.Evaluations)
}

// TestSearchKernelOnOffIdentical pins the fleet-batched evaluation path
// to the scalar per-genome oracle: the search trajectory — every
// generation's best, the final machine, the evaluation count — must be
// bit-identical with the block kernel on and off.
func TestSearchKernelOnOffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	trace := make([]bool, 1500)
	for i := range trace {
		trace[i] = i%5 < 3 || rng.Intn(4) == 0
	}
	opt := Options{States: 6, Population: 24, Generations: 12, Seed: 9, Warmup: 5}

	was := fsm.SetBlockKernel(true)
	defer fsm.SetBlockKernel(was)
	on, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	fsm.SetBlockKernel(false)
	off, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(on.PerGeneration, off.PerGeneration) {
		t.Fatalf("per-generation curves diverge:\non:  %v\noff: %v", on.PerGeneration, off.PerGeneration)
	}
	if on.BestMissRate != off.BestMissRate || on.Evaluations != off.Evaluations {
		t.Fatalf("kernel on %v/%d, off %v/%d",
			on.BestMissRate, on.Evaluations, off.BestMissRate, off.Evaluations)
	}
	if !reflect.DeepEqual(on.Best, off.Best) {
		t.Fatal("best machines diverge")
	}
}

// TestSearchWorkersInvariant checks that sharding the fleet evaluation
// across goroutines does not change the search trajectory.
func TestSearchWorkersInvariant(t *testing.T) {
	trace := alternatingTrace(800)
	base := Options{States: 4, Population: 20, Generations: 8, Seed: 13, Warmup: 2}
	seq, err := Search(trace, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = 4
	got, err := Search(trace, par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.BestMissRate != got.BestMissRate || !reflect.DeepEqual(seq.PerGeneration, got.PerGeneration) {
		t.Fatalf("workers changed the trajectory: %v vs %v", seq.PerGeneration, got.PerGeneration)
	}
}

// BenchmarkGASearch measures a full search with population-batched
// fleet evaluation against the scalar per-genome path — the wall-clock
// headline for the search side of the fleet kernel.
func BenchmarkGASearch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	trace := make([]bool, 1<<15)
	for i := range trace {
		if i < 3 {
			trace[i] = rng.Intn(2) == 1
		} else {
			trace[i] = trace[i-3] != (rng.Intn(20) == 0)
		}
	}
	opt := Options{States: 8, Population: 64, Generations: 20, Seed: 3, Warmup: 3}
	bytes := int64(opt.Population*(opt.Generations+1)) * int64(len(trace)) / 8
	b.Run("fleet", func(b *testing.B) {
		was := fsm.SetBlockKernel(true)
		defer fsm.SetBlockKernel(was)
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			if _, err := Search(trace, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		was := fsm.SetBlockKernel(false)
		defer fsm.SetBlockKernel(was)
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			if _, err := Search(trace, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
