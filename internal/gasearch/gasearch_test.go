package gasearch

import (
	"math/rand"
	"reflect"
	"testing"

	"fsmpredict/internal/core"
	"fsmpredict/internal/fidelity"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/workload"
)

func alternatingTrace(n int) []bool {
	t := make([]bool, n)
	for i := range t {
		t[i] = i%2 == 0
	}
	return t
}

func TestSearchFindsAlternation(t *testing.T) {
	res, err := Search(alternatingTrace(500), Options{
		States: 2, Population: 40, Generations: 30, Seed: 1, Warmup: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMissRate > 0.01 {
		t.Errorf("best miss = %v, want ~0 on alternating trace", res.BestMissRate)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("best machine invalid: %v", err)
	}
}

func TestSearchMonotoneUnderElitism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trace := make([]bool, 2000)
	for i := range trace {
		trace[i] = i%7 < 4 || rng.Intn(5) == 0
	}
	res, err := Search(trace, Options{States: 8, Population: 50, Generations: 40, Seed: 2, Warmup: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.PerGeneration); i++ {
		if res.PerGeneration[i] > res.PerGeneration[i-1]+1e-12 {
			t.Fatalf("fitness regressed at generation %d: %v -> %v",
				i, res.PerGeneration[i-1], res.PerGeneration[i])
		}
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations counted")
	}
}

func TestSearchDeterministic(t *testing.T) {
	trace := alternatingTrace(300)
	opt := Options{States: 4, Population: 30, Generations: 10, Seed: 7, Warmup: 2}
	a, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestMissRate != b.BestMissRate || a.Evaluations != b.Evaluations {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			a.BestMissRate, a.Evaluations, b.BestMissRate, b.Evaluations)
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(alternatingTrace(100), Options{States: 1}); err == nil {
		t.Error("expected states error")
	}
	if _, err := Search(alternatingTrace(100), Options{States: 99}); err == nil {
		t.Error("expected states error")
	}
	if _, err := Search(nil, Options{States: 4}); err == nil {
		t.Error("expected trace error")
	}
	if _, err := Search(alternatingTrace(100), Options{States: 4, Elite: 64, Population: 64}); err == nil {
		t.Error("expected elite error")
	}
}

// TestDesignerMatchesSearchQuality is the paper's §3.2 comparison: on a
// globally patterned trace, the constructive design flow must reach the
// quality of an evolutionary search (it is provably model-optimal on the
// training trace) at a fraction of the evaluations.
func TestDesignerMatchesSearchQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Outcome = outcome three steps back, with 5% noise.
	trace := make([]bool, 4000)
	for i := range trace {
		if i < 3 {
			trace[i] = rng.Intn(2) == 1
		} else {
			trace[i] = trace[i-3] != (rng.Intn(20) == 0)
		}
	}
	design, err := core.FromBools(trace, core.Options{Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	designed := design.Machine.Simulate(trace, 3).MissRate()

	res, err := Search(trace, Options{
		States: design.Machine.NumStates(), Population: 60, Generations: 60,
		Seed: 3, Warmup: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if designed > res.BestMissRate+0.01 {
		t.Errorf("designed machine (%.4f) should match GA search (%.4f)",
			designed, res.BestMissRate)
	}
	t.Logf("designed %.4f in 1 construction vs GA %.4f in %d evaluations",
		designed, res.BestMissRate, res.Evaluations)
}

// TestSearchKernelOnOffIdentical pins the fleet-batched evaluation path
// to the scalar per-genome oracle: the search trajectory — every
// generation's best, the final machine, the evaluation count — must be
// bit-identical with the block kernel on and off.
func TestSearchKernelOnOffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	trace := make([]bool, 1500)
	for i := range trace {
		trace[i] = i%5 < 3 || rng.Intn(4) == 0
	}
	opt := Options{States: 6, Population: 24, Generations: 12, Seed: 9, Warmup: 5}

	was := fsm.SetBlockKernel(true)
	defer fsm.SetBlockKernel(was)
	on, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	fsm.SetBlockKernel(false)
	off, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(on.PerGeneration, off.PerGeneration) {
		t.Fatalf("per-generation curves diverge:\non:  %v\noff: %v", on.PerGeneration, off.PerGeneration)
	}
	if on.BestMissRate != off.BestMissRate || on.Evaluations != off.Evaluations {
		t.Fatalf("kernel on %v/%d, off %v/%d",
			on.BestMissRate, on.Evaluations, off.BestMissRate, off.Evaluations)
	}
	if !reflect.DeepEqual(on.Best, off.Best) {
		t.Fatal("best machines diverge")
	}
}

// TestSearchWorkersInvariant checks that sharding the fleet evaluation
// across goroutines does not change the search trajectory.
func TestSearchWorkersInvariant(t *testing.T) {
	trace := alternatingTrace(800)
	base := Options{States: 4, Population: 20, Generations: 8, Seed: 13, Warmup: 2}
	seq, err := Search(trace, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = 4
	got, err := Search(trace, par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.BestMissRate != got.BestMissRate || !reflect.DeepEqual(seq.PerGeneration, got.PerGeneration) {
		t.Fatalf("workers changed the trajectory: %v vs %v", seq.PerGeneration, got.PerGeneration)
	}
}

// BenchmarkGASearch measures a full search with population-batched
// fleet evaluation against the scalar per-genome path — the wall-clock
// headline for the search side of the fleet kernel.
func BenchmarkGASearch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	trace := make([]bool, 1<<15)
	for i := range trace {
		if i < 3 {
			trace[i] = rng.Intn(2) == 1
		} else {
			trace[i] = trace[i-3] != (rng.Intn(20) == 0)
		}
	}
	opt := Options{States: 8, Population: 64, Generations: 20, Seed: 3, Warmup: 3}
	bytes := int64(opt.Population*(opt.Generations+1)) * int64(len(trace)) / 8
	b.Run("fleet", func(b *testing.B) {
		was := fsm.SetBlockKernel(true)
		defer fsm.SetBlockKernel(was)
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			if _, err := Search(trace, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		was := fsm.SetBlockKernel(false)
		defer fsm.SetBlockKernel(was)
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			if _, err := Search(trace, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// workloadTrace renders a named branch benchmark's interleaved outcome
// stream — the "real workload" shape the adaptive ladder is judged on.
func workloadTrace(tb testing.TB, name string, n int) []bool {
	tb.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	evs := p.Generate(workload.Train, n)
	out := make([]bool, len(evs))
	for i, e := range evs {
		out[i] = e.Taken
	}
	return out
}

// TestSearchAdaptiveChampionIdentity is the headline acceptance check:
// on representative workloads the adaptive racer must return the SAME
// champion machine at the SAME exact miss rate as the exact search —
// pruning may only skip work, never change the answer we report. This
// is an empirical property (a bound violation at the pool boundary can
// shift tournament pressure), so it is pinned here on the workloads the
// seed sweep showed identical on 10/10 seeds, and the full per-workload
// picture is reported honestly in EXPERIMENTS.md.
func TestSearchAdaptiveChampionIdentity(t *testing.T) {
	for _, name := range []string{"ijpeg", "vortex"} {
		t.Run(name, func(t *testing.T) {
			trace := workloadTrace(t, name, 1<<16)
			opt := Options{States: 8, Population: 48, Generations: 20, Seed: 17, Warmup: 64}

			fidelity.ResetMemo()
			exact, err := Search(trace, opt)
			if err != nil {
				t.Fatal(err)
			}
			aopt := opt
			aopt.Adaptive = true
			fidelity.ResetMemo()
			adaptive, err := Search(trace, aopt)
			if err != nil {
				t.Fatal(err)
			}

			if fsm.CompareStructural(exact.Best, adaptive.Best) != 0 {
				t.Fatalf("champions diverge: exact miss %v, adaptive miss %v",
					exact.BestMissRate, adaptive.BestMissRate)
			}
			if exact.BestMissRate != adaptive.BestMissRate {
				t.Fatalf("champion miss diverges: %v vs %v", exact.BestMissRate, adaptive.BestMissRate)
			}
			// The reported rate must be a true full-fidelity measurement.
			if want := adaptive.Best.Simulate(trace, opt.Warmup).MissRate(); adaptive.BestMissRate != want {
				t.Fatalf("reported %v, full re-simulation %v", adaptive.BestMissRate, want)
			}
			if !adaptive.Racing.LadderUsed {
				t.Fatal("ladder not used on a 64k-event workload")
			}
			t.Logf("%s: miss %.4f, rung evals %d, pruned %d, escalated %d, memo hits %d, deduped %d",
				name, adaptive.BestMissRate, adaptive.Racing.RungEvals, adaptive.Racing.Pruned,
				adaptive.Racing.Escalated, adaptive.Racing.MemoHits, adaptive.Racing.Deduped)
		})
	}
}

// TestSearchAdaptiveMonotoneAndExact: elitism monotonicity and the
// exactness of every reported per-generation best survive the racer.
func TestSearchAdaptiveMonotoneAndExact(t *testing.T) {
	trace := workloadTrace(t, "gsm", 1<<16)
	fidelity.ResetMemo()
	res, err := Search(trace, Options{
		States: 8, Population: 40, Generations: 15, Seed: 5, Warmup: 64, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.PerGeneration); i++ {
		if res.PerGeneration[i] > res.PerGeneration[i-1]+1e-12 {
			t.Fatalf("fitness regressed at generation %d: %v -> %v",
				i, res.PerGeneration[i-1], res.PerGeneration[i])
		}
	}
	if want := res.Best.Simulate(trace, 64).MissRate(); res.BestMissRate != want {
		t.Fatalf("BestMissRate %v != full re-simulation %v", res.BestMissRate, want)
	}
}

// TestSearchAdaptiveShortTraceTrajectoryIdentical: when the trace is too
// short to stage, adaptive mode degenerates to exact scoring through the
// memo and the trajectory must be bit-identical to the exact oracle.
func TestSearchAdaptiveShortTraceTrajectoryIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trace := make([]bool, 2000)
	for i := range trace {
		trace[i] = i%6 < 4 || rng.Intn(3) == 0
	}
	opt := Options{States: 6, Population: 24, Generations: 10, Seed: 3, Warmup: 4}
	exact, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	aopt := opt
	aopt.Adaptive = true
	fidelity.ResetMemo()
	adaptive, err := Search(trace, aopt)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Racing.LadderUsed {
		t.Fatal("ladder accepted a 2000-event trace")
	}
	if !reflect.DeepEqual(exact.PerGeneration, adaptive.PerGeneration) {
		t.Fatalf("trajectories diverge:\nexact:    %v\nadaptive: %v",
			exact.PerGeneration, adaptive.PerGeneration)
	}
	if fsm.CompareStructural(exact.Best, adaptive.Best) != 0 ||
		exact.BestMissRate != adaptive.BestMissRate ||
		exact.Evaluations != adaptive.Evaluations {
		t.Fatal("short-trace adaptive run diverges from the exact oracle")
	}
}

// TestSearchAdaptiveMemoWarm: a repeat search over the same trace must
// draw on the fitness memo (the whole point of persisting exact scores)
// and still return the identical result.
func TestSearchAdaptiveMemoWarm(t *testing.T) {
	trace := workloadTrace(t, "gsm", 1<<16)
	opt := Options{States: 8, Population: 40, Generations: 12, Seed: 29, Warmup: 64, Adaptive: true}
	fidelity.ResetMemo()
	cold, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Search(trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Racing.MemoHits == 0 {
		t.Fatal("repeat search hit the memo zero times")
	}
	if warm.Racing.MemoHits <= cold.Racing.MemoHits {
		t.Fatalf("warm memo hits %d not above cold %d", warm.Racing.MemoHits, cold.Racing.MemoHits)
	}
	if fsm.CompareStructural(cold.Best, warm.Best) != 0 || cold.BestMissRate != warm.BestMissRate {
		t.Fatal("memo warm-start changed the result")
	}
}

// TestSortByFitnessStructuralTieBreak: equal-fitness genomes must sort
// into the structural total order regardless of input permutation.
func TestSortByFitnessStructuralTieBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := make([]*genome, 8)
	for i := range base {
		base[i] = &genome{m: randomMachine(rng, 4), miss: 0.25}
	}
	a := append([]*genome(nil), base...)
	b := make([]*genome, len(base))
	for i, j := range rng.Perm(len(base)) {
		b[i] = base[j]
	}
	sortByFitness(a)
	sortByFitness(b)
	for i := range a {
		if fsm.CompareStructural(a[i].m, b[i].m) != 0 {
			t.Fatalf("tie-break order depends on input permutation at slot %d", i)
		}
		if i > 0 && fsm.CompareStructural(a[i-1].m, a[i].m) > 0 {
			t.Fatalf("slots %d,%d out of structural order", i-1, i)
		}
	}
}

// TestSearchDedupSharesEvaluations: structurally identical cohort
// members must share one evaluation in the adaptive path.
func TestSearchDedupSharesEvaluations(t *testing.T) {
	trace := workloadTrace(t, "gsm", 1<<16)
	fidelity.ResetMemo()
	res, err := Search(trace, Options{
		// A tiny state space with heavy elitism converges to duplicate
		// genomes quickly.
		States: 2, Population: 32, Generations: 10, Seed: 2, Warmup: 64, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Racing.Deduped == 0 && res.Racing.MemoHits == 0 {
		t.Fatal("no dedup and no memo hits on a 2-state search")
	}
}

// BenchmarkSearchAdaptive races the adaptive evaluator against the
// exact oracle on a real workload trace — the PR's headline speedup.
// Both arms reset the fitness memo every iteration so the measurement
// isolates the ladder, not cross-run memoization.
func BenchmarkSearchAdaptive(b *testing.B) {
	trace := workloadTrace(b, "vortex", 1<<20)
	opt := Options{States: 8, Population: 128, Generations: 25, Seed: 17, Warmup: 64}
	bytes := int64(opt.Population*(opt.Generations+1)) * int64(len(trace)) / 8
	b.Run("exact", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			if _, err := Search(trace, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		aopt := opt
		aopt.Adaptive = true
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			fidelity.ResetMemo()
			if _, err := Search(trace, aopt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSearchMemoWarm measures the repeat-search win: an identical
// search over a warm fitness memo against a cold one.
func BenchmarkSearchMemoWarm(b *testing.B) {
	trace := workloadTrace(b, "vortex", 1<<19)
	opt := Options{States: 8, Population: 64, Generations: 15, Seed: 17, Warmup: 64, Adaptive: true}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fidelity.ResetMemo()
			if _, err := Search(trace, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		fidelity.ResetMemo()
		if _, err := Search(trace, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Search(trace, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
