// Package gasearch implements a genetic-programming search over small
// Moore-machine predictors, in the spirit of Emer and Gloy's
// feedback-driven predictor synthesis — the closest prior work the paper
// compares itself against (§3.2). The paper's argument is that its
// constructive design flow builds good small FSMs directly from a
// behavioural model, where a search must evaluate thousands of candidate
// machines against the trace; this package provides that baseline so the
// claim can be measured (see the BenchmarkSearchVsDesigner ablation).
package gasearch

import (
	"fmt"
	"math/rand"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
)

// Options configures a search run.
type Options struct {
	// States is the fixed machine size of every genome (2..64).
	States int
	// Population is the number of genomes per generation (default 64).
	Population int
	// Generations is the number of evolution steps (default 50).
	Generations int
	// MutationRate is the per-gene mutation probability (default 0.02).
	MutationRate float64
	// Elite is how many top genomes survive unchanged (default 2).
	Elite int
	// TournamentK is the tournament selection size (default 3).
	TournamentK int
	// Seed makes the search reproducible.
	Seed int64
	// Warmup outcomes at the head of the trace are not scored.
	Warmup int
	// Workers bounds the goroutines the fleet evaluation pass shards
	// machine chunks over (<= 0 means GOMAXPROCS). Fleet chunks are
	// independent, so results are bit-identical for any setting.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Population <= 0 {
		o.Population = 64
	}
	if o.Generations <= 0 {
		o.Generations = 50
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.02
	}
	if o.Elite <= 0 {
		o.Elite = 2
	}
	if o.TournamentK <= 0 {
		o.TournamentK = 3
	}
	return o
}

func (o Options) validate() error {
	if o.States < 2 || o.States > 64 {
		return fmt.Errorf("gasearch: states %d out of range [2,64]", o.States)
	}
	if o.Elite >= o.Population {
		return fmt.Errorf("gasearch: elite %d must be below population %d", o.Elite, o.Population)
	}
	return nil
}

// Result reports the outcome of a search.
type Result struct {
	// Best is the fittest machine found.
	Best *fsm.Machine
	// BestMissRate is its misprediction rate on the training trace.
	BestMissRate float64
	// PerGeneration records the best miss rate after each generation
	// (non-increasing thanks to elitism).
	PerGeneration []float64
	// Evaluations counts fitness evaluations performed.
	Evaluations int
}

type genome struct {
	m    *fsm.Machine
	miss float64
}

// Search evolves Moore machines of the configured size to minimize the
// misprediction rate on the trace.
func Search(trace []bool, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(trace) <= opt.Warmup {
		return nil, fmt.Errorf("gasearch: trace of %d outcomes too short", len(trace))
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{}

	// The trace is packed once; every generation is then scored in ONE
	// fleet pass over the packed words instead of a scalar walk per
	// genome. This batching is legal because fitness evaluation consumes
	// no randomness: generating a whole cohort first and scoring it
	// afterwards leaves the RNG stream — and therefore every machine the
	// search constructs — identical to interleaved evaluation, and the
	// fleet kernel itself is bit-identical to Machine.Simulate, so the
	// search trajectory does not change, only its wall clock.
	bits := bitseq.FromBools(trace)
	words, n := bits.Words(), bits.Len()
	// One run scan serves every cohort of the search: the trace never
	// changes, so the span kernel's index is hoisted out of the loop.
	runs := bitseq.Runs(words, n, bitseq.DefaultMinRunBytes)

	evaluateAll := func(batch []*genome) {
		res.Evaluations += len(batch)
		if fsm.BlockKernelEnabled() {
			// Compile directly rather than through the shared block
			// cache: a search burns through thousands of transient
			// machines that would evict the serving workload's entries.
			tabs := make([]*fsm.BlockTable, len(batch))
			ok := true
			for i, g := range batch {
				t, err := fsm.CompileBlockTable(g.m)
				if err != nil {
					ok = false
					break
				}
				tabs[i] = t
			}
			if ok {
				fl := fsm.FleetOfTables(tabs)
				rs := fl.RunParallelSpans(opt.Workers, words, n, opt.Warmup, runs)
				for i, g := range batch {
					g.miss = rs[i].MissRate()
				}
				return
			}
		}
		// Scalar oracle: per-genome bit-at-a-time simulation. The
		// kernel on/off differential test pins the two paths together.
		for _, g := range batch {
			g.miss = g.m.Simulate(trace, opt.Warmup).MissRate()
		}
	}

	pop := make([]*genome, opt.Population)
	for i := range pop {
		pop[i] = &genome{m: randomMachine(rng, opt.States)}
	}
	evaluateAll(pop)
	sortByFitness(pop)

	for gen := 0; gen < opt.Generations; gen++ {
		next := make([]*genome, 0, opt.Population)
		for i := 0; i < opt.Elite; i++ {
			next = append(next, pop[i])
		}
		// Children's fitness is first read by the NEXT generation's
		// tournaments, so the whole cohort can be generated up front and
		// scored by one fleet pass.
		for len(next) < opt.Population {
			a := tournament(rng, pop, opt.TournamentK)
			b := tournament(rng, pop, opt.TournamentK)
			child := &genome{m: crossover(rng, a.m, b.m)}
			mutate(rng, child.m, opt.MutationRate)
			next = append(next, child)
		}
		evaluateAll(next[opt.Elite:])
		pop = next
		sortByFitness(pop)
		res.PerGeneration = append(res.PerGeneration, pop[0].miss)
	}
	res.Best = pop[0].m
	res.BestMissRate = pop[0].miss
	return res, nil
}

// randomMachine draws a uniform random Moore machine of n states.
func randomMachine(rng *rand.Rand, n int) *fsm.Machine {
	m := &fsm.Machine{
		Output: make([]bool, n),
		Next:   make([][2]int, n),
		Start:  0,
	}
	for s := 0; s < n; s++ {
		m.Output[s] = rng.Intn(2) == 1
		m.Next[s][0] = rng.Intn(n)
		m.Next[s][1] = rng.Intn(n)
	}
	return m
}

// crossover mixes two parents state by state (uniform crossover over
// whole state rows, which keeps rows internally consistent).
func crossover(rng *rand.Rand, a, b *fsm.Machine) *fsm.Machine {
	n := a.NumStates()
	child := &fsm.Machine{
		Output: make([]bool, n),
		Next:   make([][2]int, n),
		Start:  0,
	}
	for s := 0; s < n; s++ {
		src := a
		if rng.Intn(2) == 1 {
			src = b
		}
		child.Output[s] = src.Output[s]
		child.Next[s] = src.Next[s]
	}
	return child
}

// mutate flips outputs and rewires transitions with the given per-gene
// probability.
func mutate(rng *rand.Rand, m *fsm.Machine, rate float64) {
	n := m.NumStates()
	for s := 0; s < n; s++ {
		if rng.Float64() < rate {
			m.Output[s] = !m.Output[s]
		}
		for b := 0; b < 2; b++ {
			if rng.Float64() < rate {
				m.Next[s][b] = rng.Intn(n)
			}
		}
	}
}

func tournament(rng *rand.Rand, pop []*genome, k int) *genome {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.miss < best.miss {
			best = c
		}
	}
	return best
}

// sortByFitness orders genomes best-first, breaking ties by a stable
// structural key so runs are reproducible.
func sortByFitness(pop []*genome) {
	// Insertion sort: populations are small and mostly sorted after the
	// first generation.
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].miss < pop[j-1].miss; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}
