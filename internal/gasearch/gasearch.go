// Package gasearch implements a genetic-programming search over small
// Moore-machine predictors, in the spirit of Emer and Gloy's
// feedback-driven predictor synthesis — the closest prior work the paper
// compares itself against (§3.2). The paper's argument is that its
// constructive design flow builds good small FSMs directly from a
// behavioural model, where a search must evaluate thousands of candidate
// machines against the trace; this package provides that baseline so the
// claim can be measured (see the BenchmarkSearchVsDesigner ablation).
//
// Two evaluators share the search loop. The exact evaluator scores
// every genome on the full trace in one fleet pass per cohort and is
// the differential oracle. The adaptive evaluator (Options.Adaptive)
// races cohorts through the fidelity ladder — representative windows
// first, escalating statistical survivors to exact full-trace scoring —
// and memoizes every exact score by machine structure, so duplicate
// cohort members, re-emitted children, and repeat searches over the
// same trace never re-simulate. Estimates only ever steer selection
// pressure: every elite slot, and therefore the reported Best and
// BestMissRate, is re-scored at full fidelity before it is trusted.
package gasearch

import (
	"fmt"
	"math/rand"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fidelity"
	"fsmpredict/internal/fsm"
)

// Options configures a search run.
type Options struct {
	// States is the fixed machine size of every genome (2..64).
	States int
	// Population is the number of genomes per generation (default 64).
	Population int
	// Generations is the number of evolution steps (default 50).
	Generations int
	// MutationRate is the per-gene mutation probability (default 0.02).
	MutationRate float64
	// Elite is how many top genomes survive unchanged (default 2).
	Elite int
	// Pool is the parent-pool size: each generation's children are bred
	// by tournaments within the top-Pool genomes (truncation selection,
	// the successive-halving shape). Keeping breeding inside an
	// exactly-scored top set is what lets the adaptive racer prune
	// losers on estimates without touching the trajectory: a pruned
	// candidate's fitness is only ever compared against other losers.
	// Default max(Elite, Population/8).
	Pool int
	// TournamentK is the tournament selection size within the parent
	// pool (default 3).
	TournamentK int
	// Seed makes the search reproducible.
	Seed int64
	// Warmup outcomes at the head of the trace are not scored.
	Warmup int
	// Workers bounds the goroutines the fleet evaluation pass shards
	// machine chunks over (<= 0 means GOMAXPROCS). Fleet chunks are
	// independent, so results are bit-identical for any setting.
	Workers int
	// Adaptive enables staged-fidelity candidate racing with the
	// persistent fitness memo (internal/fidelity). Default off — the
	// exact evaluator is the differential oracle the adaptive path is
	// tested against. Adaptive requires the block kernel; with the
	// kernel disabled the search silently runs exact. Best and
	// BestMissRate are always exact full-trace values in either mode.
	Adaptive bool
}

func (o Options) withDefaults() Options {
	if o.Population <= 0 {
		o.Population = 64
	}
	if o.Generations <= 0 {
		o.Generations = 50
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.02
	}
	if o.Elite <= 0 {
		o.Elite = 2
	}
	if o.Pool <= 0 {
		// P/8 parents, capped at 8: past that, tournaments of K within
		// the pool almost never reach the extra members, and every pool
		// slot is a full-fidelity evaluation the adaptive ladder cannot
		// skip.
		o.Pool = o.Population / 8
		if o.Pool > 8 {
			o.Pool = 8
		}
		if o.Pool < o.Elite {
			o.Pool = o.Elite
		}
	}
	if o.TournamentK <= 0 {
		o.TournamentK = 3
	}
	return o
}

func (o Options) validate() error {
	if o.States < 2 || o.States > 64 {
		return fmt.Errorf("gasearch: states %d out of range [2,64]", o.States)
	}
	if o.Elite >= o.Population {
		return fmt.Errorf("gasearch: elite %d must be below population %d", o.Elite, o.Population)
	}
	if o.Pool < o.Elite || o.Pool >= o.Population {
		return fmt.Errorf("gasearch: pool %d out of range [elite %d, population %d)",
			o.Pool, o.Elite, o.Population)
	}
	return nil
}

// RacingStats reports the adaptive evaluator's activity for one search
// (all zero when Adaptive is off).
type RacingStats struct {
	// LadderUsed reports whether the trace was long enough for the
	// staged ladder (short traces score exact even in adaptive mode).
	LadderUsed bool
	// RungEvals, Pruned and Escalated are the ladder's tallies.
	RungEvals int
	Pruned    int
	Escalated int
	// MemoHits counts genomes scored from the fitness memo.
	MemoHits int
	// Deduped counts genomes that shared a structurally identical
	// cohort member's single evaluation.
	Deduped int
}

// Result reports the outcome of a search.
type Result struct {
	// Best is the fittest machine found.
	Best *fsm.Machine
	// BestMissRate is its misprediction rate on the training trace,
	// always measured at full fidelity.
	BestMissRate float64
	// PerGeneration records the best miss rate after each generation
	// (non-increasing thanks to elitism; always full-fidelity values).
	PerGeneration []float64
	// Evaluations counts fitness evaluations requested, including those
	// served by the memo or folded into a duplicate's score.
	Evaluations int
	// Racing describes the adaptive evaluator's work.
	Racing RacingStats
}

type genome struct {
	m    *fsm.Machine
	miss float64
	// exact reports whether miss is a full-fidelity measurement rather
	// than a ladder estimate. The exact evaluator always sets it.
	exact bool
}

// tractionPatience is how many consecutive low-pruning generations the
// adaptive evaluator tolerates before abandoning the ladder for the
// rest of the search (the memo and cohort dedup keep working): on
// workloads where the confidence bounds never separate candidates,
// racing is pure overhead and the honest move is to stop.
const tractionPatience = 2

// Search evolves Moore machines of the configured size to minimize the
// misprediction rate on the trace.
func Search(trace []bool, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(trace) <= opt.Warmup {
		return nil, fmt.Errorf("gasearch: trace of %d outcomes too short", len(trace))
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{}

	// The trace is packed once; every generation is then scored in ONE
	// fleet pass over the packed words instead of a scalar walk per
	// genome. This batching is legal because fitness evaluation consumes
	// no randomness: generating a whole cohort first and scoring it
	// afterwards leaves the RNG stream — and therefore every machine the
	// search constructs — identical to interleaved evaluation, and the
	// fleet kernel itself is bit-identical to Machine.Simulate, so the
	// search trajectory does not change, only its wall clock.
	bits := bitseq.FromBools(trace)
	words, n := bits.Words(), bits.Len()
	// One run scan serves every cohort of the search: the trace never
	// changes, so the span kernel's index is hoisted out of the loop.
	runs := bitseq.Runs(words, n, bitseq.DefaultMinRunBytes)

	// compileBatch builds each genome's closure table, compiling every
	// distinct structure once: duplicate cohort members (crossover
	// copies, re-converged mutants) share a table by canonical-bytes
	// identity, and the fleet pass then also walks them once.
	var keyBuf []byte
	compileBatch := func(batch []*genome) ([]*fsm.BlockTable, bool) {
		tabs := make([]*fsm.BlockTable, len(batch))
		byKey := make(map[string]*fsm.BlockTable, len(batch))
		for i, g := range batch {
			keyBuf = g.m.AppendCanonical(keyBuf[:0])
			if t, ok := byKey[string(keyBuf)]; ok {
				tabs[i] = t
				continue
			}
			t, err := fsm.CompileBlockTable(g.m)
			if err != nil {
				return nil, false
			}
			byKey[string(keyBuf)] = t
			tabs[i] = t
		}
		return tabs, true
	}

	// evaluateAll is the exact evaluator and the differential oracle:
	// every genome's fitness is its full-trace miss rate.
	evaluateAll := func(batch []*genome) {
		res.Evaluations += len(batch)
		if fsm.BlockKernelEnabled() {
			// Compile directly rather than through the shared block
			// cache: a search burns through thousands of transient
			// machines that would evict the serving workload's entries.
			if tabs, ok := compileBatch(batch); ok {
				fl := fsm.FleetOfTables(tabs)
				rs := fl.RunParallelSpans(opt.Workers, words, n, opt.Warmup, runs)
				for i, g := range batch {
					g.miss, g.exact = rs[i].MissRate(), true
				}
				return
			}
		}
		// Scalar oracle: per-genome bit-at-a-time simulation. The
		// kernel on/off differential test pins the two paths together.
		for _, g := range batch {
			g.miss, g.exact = g.m.Simulate(trace, opt.Warmup).MissRate(), true
		}
	}

	// Adaptive plumbing. The ladder is nil when the trace is too short
	// to stage, in which case adaptive mode degenerates to exact
	// scoring through the memo — same fitness values, same trajectory.
	adaptive := opt.Adaptive && fsm.BlockKernelEnabled()
	var (
		ladder *fidelity.Ladder
		digest fidelity.Key
	)
	if adaptive {
		digest = fidelity.TraceDigest(words, n)
		ladder = fidelity.NewLadder(words, n, runs, fidelity.LadderConfig{
			Warmup:  opt.Warmup,
			Workers: opt.Workers,
			Seed:    opt.Seed,
		})
		res.Racing.LadderUsed = ladder != nil
	}

	// evaluateAdaptive scores a cohort through memo, dedup, and — when
	// useLadder — the staged ladder, racing for the cohort's top-Pool
	// slots against the anchors (the carried elites' exact misses, which
	// compete for the same slots). With useLadder false everything
	// scores at full fidelity. It returns how many distinct machines
	// were raced and how many of those were pruned, for the traction
	// tracker. Only exact misses enter the memo.
	evaluateAdaptive := func(batch []*genome, anchors []float64, useLadder bool) (raced, prunedN int) {
		res.Evaluations += len(batch)
		type slot struct {
			key fidelity.Key
			gs  []*genome
		}
		var slots []*slot
		index := make(map[fidelity.Key]*slot, len(batch))
		// Full-capacity clamp: appends below copy rather than scribbling
		// on the caller's backing array.
		anchors = anchors[:len(anchors):len(anchors)]
		for _, g := range batch {
			k := fidelity.FitnessKey(g.m, digest, opt.Warmup)
			if s, ok := index[k]; ok {
				s.gs = append(s.gs, g)
				res.Racing.Deduped++
				continue
			}
			if miss, ok := fidelity.MemoGet(k); ok {
				g.miss, g.exact = miss, true
				res.Racing.MemoHits++
				// Memo hits are cohort members with exact scores: they
				// compete for the same top-Pool slots, so their values
				// anchor (tighten) the racing bar for free.
				anchors = append(anchors, miss)
				continue
			}
			s := &slot{key: k, gs: []*genome{g}}
			index[k] = s
			slots = append(slots, s)
		}
		if len(slots) == 0 {
			return 0, 0
		}
		tabs := make([]*fsm.BlockTable, len(slots))
		for i, s := range slots {
			t, err := fsm.CompileBlockTable(s.gs[0].m)
			if err != nil {
				// Unreachable for generated genomes (<= 64 valid
				// states); fall back to the scalar oracle defensively.
				for _, sl := range slots {
					for _, g := range sl.gs {
						g.miss, g.exact = g.m.Simulate(trace, opt.Warmup).MissRate(), true
						fidelity.MemoPut(sl.key, g.miss)
					}
				}
				return 0, 0
			}
			tabs[i] = t
		}
		if useLadder && ladder != nil {
			// keep = Pool exactly: the racing bar is the Pool-th smallest
			// UCB, which (bounds holding) upper-bounds the Pool-th best
			// true value, so nothing prunable can belong in the pool. The
			// slack-inflated radii are the safety margin for the windows'
			// non-iid reality.
			vs := ladder.RaceTop(tabs, opt.Pool, anchors)
			for i, s := range slots {
				v := vs[i]
				if v.Exact {
					fidelity.MemoPut(s.key, v.Miss)
				} else {
					prunedN++
				}
				for _, g := range s.gs {
					g.miss, g.exact = v.Miss, v.Exact
				}
			}
			return len(slots), prunedN
		}
		var misses []float64
		if ladder != nil {
			misses = ladder.ScoreExact(tabs)
		} else {
			fl := fsm.FleetOfTables(tabs)
			rs := fl.RunParallelSpans(opt.Workers, words, n, opt.Warmup, runs)
			misses = make([]float64, len(rs))
			for i, r := range rs {
				misses[i] = r.MissRate()
			}
		}
		for i, s := range slots {
			fidelity.MemoPut(s.key, misses[i])
			for _, g := range s.gs {
				g.miss, g.exact = misses[i], true
			}
		}
		return 0, 0
	}

	// ensureTopExact upgrades every estimate in the sorted population's
	// top k slots to a full-fidelity measurement and re-sorts, repeating
	// until the band is stable. This is what makes pruning a pure
	// skip-ahead: estimates can rank losers among themselves, but
	// nothing inexact can enter the parent pool, become an elite, a
	// reported per-generation best, or the champion. It terminates
	// because genomes only ever move from estimate to exact.
	ensureTopExact := func(pop []*genome, k int) {
		for {
			var inexact []*genome
			for _, g := range pop[:k] {
				if !g.exact {
					inexact = append(inexact, g)
				}
			}
			if len(inexact) == 0 {
				return
			}
			evaluateAdaptive(inexact, nil, false)
			sortByFitness(pop)
		}
	}

	pop := make([]*genome, opt.Population)
	for i := range pop {
		pop[i] = &genome{m: randomMachine(rng, opt.States)}
	}
	// The initial cohort races like any other: it competes only for the
	// first parent pool, so losers can keep windowed estimates, and a
	// random population's spread dwarfs the window radius — this is where
	// pruning bites hardest. ensureTopExact then settles the pool.
	if adaptive {
		evaluateAdaptive(pop, nil, ladder != nil)
		sortByFitness(pop)
		ensureTopExact(pop, opt.Pool)
	} else {
		evaluateAll(pop)
		sortByFitness(pop)
	}

	lowTraction := 0
	for gen := 0; gen < opt.Generations; gen++ {
		next := make([]*genome, 0, opt.Population)
		for i := 0; i < opt.Elite; i++ {
			next = append(next, pop[i])
		}
		// Children are bred by tournaments within the exactly-scored
		// top-Pool parent pool. Their fitness is first read by the NEXT
		// generation's pool selection, so the whole cohort can be
		// generated up front and scored by one fleet pass.
		pool := pop[:opt.Pool]
		for len(next) < opt.Population {
			a := tournament(rng, pool, opt.TournamentK)
			b := tournament(rng, pool, opt.TournamentK)
			child := &genome{m: crossover(rng, a.m, b.m)}
			mutate(rng, child.m, opt.MutationRate)
			next = append(next, child)
		}
		if adaptive {
			// The carried elites anchor the racing bar (they hold pool
			// slots with exact scores), and the ladder is dropped for
			// good once pruning shows no traction for a few generations.
			useLadder := ladder != nil && lowTraction < tractionPatience
			anchors := make([]float64, opt.Elite)
			for i := 0; i < opt.Elite; i++ {
				anchors[i] = pop[i].miss
			}
			raced, prunedN := evaluateAdaptive(next[opt.Elite:], anchors, useLadder)
			if useLadder && raced > 0 {
				if prunedN*5 < raced {
					lowTraction++
				} else {
					lowTraction = 0
				}
			}
			pop = next
			sortByFitness(pop)
			// The whole next parent pool must be exact before anything
			// reads it: racing already escalated every plausible member,
			// so this loop converges immediately unless a confidence
			// bound was violated.
			ensureTopExact(pop, opt.Pool)
		} else {
			evaluateAll(next[opt.Elite:])
			pop = next
			sortByFitness(pop)
		}
		res.PerGeneration = append(res.PerGeneration, pop[0].miss)
	}
	res.Best = pop[0].m
	res.BestMissRate = pop[0].miss
	if ladder != nil {
		st := ladder.Stats()
		res.Racing.RungEvals = st.RungEvals
		res.Racing.Pruned = st.Pruned
		res.Racing.Escalated = st.Escalated
	}
	return res, nil
}

// randomMachine draws a uniform random Moore machine of n states.
func randomMachine(rng *rand.Rand, n int) *fsm.Machine {
	m := &fsm.Machine{
		Output: make([]bool, n),
		Next:   make([][2]int, n),
		Start:  0,
	}
	for s := 0; s < n; s++ {
		m.Output[s] = rng.Intn(2) == 1
		m.Next[s][0] = rng.Intn(n)
		m.Next[s][1] = rng.Intn(n)
	}
	return m
}

// crossover mixes two parents state by state (uniform crossover over
// whole state rows, which keeps rows internally consistent).
func crossover(rng *rand.Rand, a, b *fsm.Machine) *fsm.Machine {
	n := a.NumStates()
	child := &fsm.Machine{
		Output: make([]bool, n),
		Next:   make([][2]int, n),
		Start:  0,
	}
	for s := 0; s < n; s++ {
		src := a
		if rng.Intn(2) == 1 {
			src = b
		}
		child.Output[s] = src.Output[s]
		child.Next[s] = src.Next[s]
	}
	return child
}

// mutate flips outputs and rewires transitions with the given per-gene
// probability.
func mutate(rng *rand.Rand, m *fsm.Machine, rate float64) {
	n := m.NumStates()
	for s := 0; s < n; s++ {
		if rng.Float64() < rate {
			m.Output[s] = !m.Output[s]
		}
		for b := 0; b < 2; b++ {
			if rng.Float64() < rate {
				m.Next[s][b] = rng.Intn(n)
			}
		}
	}
}

func tournament(rng *rand.Rand, pop []*genome, k int) *genome {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.miss < best.miss {
			best = c
		}
	}
	return best
}

// lessFit orders genomes best-first: by miss rate, ties broken by the
// structural total order so equal-fitness populations sort identically
// no matter how they were generated.
func lessFit(a, b *genome) bool {
	if a.miss != b.miss {
		return a.miss < b.miss
	}
	return fsm.CompareStructural(a.m, b.m) < 0
}

// sortByFitness orders genomes best-first, breaking ties by the stable
// structural key so runs are reproducible.
func sortByFitness(pop []*genome) {
	// Insertion sort: populations are small and mostly sorted after the
	// first generation.
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && lessFit(pop[j], pop[j-1]); j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}
