package dfa

// The original map-of-int-set kernels, kept verbatim as differential
// oracles for the dense-bitset rewrite in dfa.go. They must produce
// bit-for-bit identical automata — not just isomorphic ones — because the
// designed machines are part of the repo's golden outputs.

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"fsmpredict/internal/nfa"
)

// fromNFARef is the pre-bitset subset construction.
func fromNFARef(m *nfa.NFA) *DFA {
	d := &DFA{}
	ids := map[string]int{}

	key := func(set []int) string {
		var sb strings.Builder
		for i, s := range set {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(s))
		}
		return sb.String()
	}
	accepts := func(set []int) bool {
		for _, s := range set {
			if s == m.Accept {
				return true
			}
		}
		return false
	}

	var sets [][]int
	intern := func(set []int) int {
		k := key(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(sets)
		ids[k] = id
		sets = append(sets, set)
		d.Next = append(d.Next, [2]int{})
		d.Accept = append(d.Accept, accepts(set))
		return id
	}

	start := intern(m.EpsilonClosure([]int{m.Start}))
	d.Start = start
	for work := []int{start}; len(work) > 0; {
		id := work[0]
		work = work[1:]
		set := sets[id]
		for b := 0; b < 2; b++ {
			succ := m.EpsilonClosure(m.Move(set, b == 1))
			before := len(sets)
			sid := intern(succ)
			if sid == before {
				work = append(work, sid)
			}
			d.Next[id][b] = sid
		}
	}
	return d
}

// minimizeRef is the pre-bitset Hopcroft minimization.
func minimizeRef(d *DFA) *DFA {
	t := d.trimUnreachable()
	n := t.NumStates()

	block := make([]int, n)
	var blocks [][]int
	var accSt, rejSt []int
	for s := 0; s < n; s++ {
		if t.Accept[s] {
			accSt = append(accSt, s)
		} else {
			rejSt = append(rejSt, s)
		}
	}
	addBlock := func(states []int) int {
		id := len(blocks)
		blocks = append(blocks, states)
		for _, s := range states {
			block[s] = id
		}
		return id
	}
	if len(rejSt) > 0 {
		addBlock(rejSt)
	}
	if len(accSt) > 0 {
		addBlock(accSt)
	}

	var rev [2][][]int
	for b := 0; b < 2; b++ {
		rev[b] = make([][]int, n)
	}
	for s := 0; s < n; s++ {
		for b := 0; b < 2; b++ {
			tgt := t.Next[s][b]
			rev[b][tgt] = append(rev[b][tgt], s)
		}
	}

	type work struct{ blk, sym int }
	var wl []work
	inWL := map[work]bool{}
	push := func(blk, sym int) {
		w := work{blk, sym}
		if !inWL[w] {
			inWL[w] = true
			wl = append(wl, w)
		}
	}
	for b := range blocks {
		push(b, 0)
		push(b, 1)
	}

	for len(wl) > 0 {
		w := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		inWL[w] = false

		inX := map[int]bool{}
		for _, s := range blocks[w.blk] {
			for _, p := range rev[w.sym][s] {
				inX[p] = true
			}
		}
		if len(inX) == 0 {
			continue
		}
		touched := map[int]bool{}
		for p := range inX {
			touched[block[p]] = true
		}
		for blk := range touched {
			var inside, outside []int
			for _, s := range blocks[blk] {
				if inX[s] {
					inside = append(inside, s)
				} else {
					outside = append(outside, s)
				}
			}
			if len(inside) == 0 || len(outside) == 0 {
				continue
			}
			small, large := inside, outside
			if len(small) > len(large) {
				small, large = large, small
			}
			blocks[blk] = large
			newID := addBlock(small)
			for sym := 0; sym < 2; sym++ {
				push(newID, sym)
			}
		}
	}

	minOf := func(xs []int) int {
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	}
	sort.Slice(blocks, func(i, j int) bool {
		return minOf(blocks[i]) < minOf(blocks[j])
	})
	for id, states := range blocks {
		for _, s := range states {
			block[s] = id
		}
	}
	out := &DFA{
		Next:   make([][2]int, len(blocks)),
		Accept: make([]bool, len(blocks)),
		Start:  block[t.Start],
	}
	for id, states := range blocks {
		rep := states[0]
		out.Accept[id] = t.Accept[rep]
		out.Next[id][0] = block[t.Next[rep][0]]
		out.Next[id][1] = block[t.Next[rep][1]]
	}
	return out.trimUnreachable()
}

// recurrentStatesRef is the pre-bitset steady-state search.
func recurrentStatesRef(d *DFA) []int {
	setKey := func(set map[int]bool) string {
		xs := make([]int, 0, len(set))
		for s := range set {
			xs = append(xs, s)
		}
		sort.Ints(xs)
		var sb strings.Builder
		for i, s := range xs {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(s))
		}
		return sb.String()
	}

	cur := map[int]bool{d.Start: true}
	seen := map[string]int{}
	var history []map[int]bool
	for {
		k := setKey(cur)
		if at, ok := seen[k]; ok {
			union := map[int]bool{}
			for _, set := range history[at:] {
				for s := range set {
					union[s] = true
				}
			}
			out := make([]int, 0, len(union))
			for s := range union {
				out = append(out, s)
			}
			sort.Ints(out)
			return out
		}
		seen[k] = len(history)
		history = append(history, cur)
		next := map[int]bool{}
		for s := range cur {
			next[d.Next[s][0]] = true
			next[d.Next[s][1]] = true
		}
		cur = next
	}
}

// randomNFA builds a random ε-NFA with n states and a sprinkling of 0-, 1-
// and ε-edges, dense enough that subsets overlap and closures chain.
func randomNFA(rng *rand.Rand, n int) *nfa.NFA {
	m := &nfa.NFA{
		On0:    make([][]int, n),
		On1:    make([][]int, n),
		Eps:    make([][]int, n),
		Start:  rng.Intn(n),
		Accept: rng.Intn(n),
	}
	edges := 2*n + rng.Intn(3*n)
	for e := 0; e < edges; e++ {
		from, to := rng.Intn(n), rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			m.On0[from] = append(m.On0[from], to)
		case 1:
			m.On1[from] = append(m.On1[from], to)
		default:
			m.Eps[from] = append(m.Eps[from], to)
		}
	}
	return m
}

func sameDFA(a, b *DFA) bool {
	if len(a.Next) != len(b.Next) || a.Start != b.Start {
		return false
	}
	for s := range a.Next {
		if a.Next[s] != b.Next[s] || a.Accept[s] != b.Accept[s] {
			return false
		}
	}
	return true
}

// TestFromNFADifferential checks the bitset subset construction produces
// byte-identical automata to the map-based oracle on random NFAs.
func TestFromNFADifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 300; round++ {
		m := randomNFA(rng, 2+rng.Intn(30))
		got := FromNFA(m)
		want := fromNFARef(m)
		if !sameDFA(got, want) {
			t.Fatalf("round %d: FromNFA diverges from reference\ngot  start=%d next=%v acc=%v\nwant start=%d next=%v acc=%v",
				round, got.Start, got.Next, got.Accept, want.Start, want.Next, want.Accept)
		}
	}
}

// TestMinimizeDifferential checks the dense Hopcroft kernel against the
// map-based oracle, including the full FromNFA → Minimize chain.
func TestMinimizeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 300; round++ {
		d := FromNFA(randomNFA(rng, 2+rng.Intn(30)))
		got := d.Minimize()
		want := minimizeRef(d)
		if !sameDFA(got, want) {
			t.Fatalf("round %d: Minimize diverges from reference\ngot  start=%d next=%v acc=%v\nwant start=%d next=%v acc=%v",
				round, got.Start, got.Next, got.Accept, want.Start, want.Next, want.Accept)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("round %d: minimized automaton invalid: %v", round, err)
		}
	}
}

// TestRecurrentStatesDifferential checks the bitset steady-state search and
// the TrimStartup built on it against the map-based oracle.
func TestRecurrentStatesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 300; round++ {
		d := FromNFA(randomNFA(rng, 2+rng.Intn(30))).Minimize()
		got := d.RecurrentStates()
		want := recurrentStatesRef(d)
		if len(got) != len(want) {
			t.Fatalf("round %d: RecurrentStates = %v, want %v", round, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: RecurrentStates = %v, want %v", round, got, want)
			}
		}
		if err := d.TrimStartup().Validate(); err != nil {
			t.Fatalf("round %d: TrimStartup invalid: %v", round, err)
		}
	}
}
