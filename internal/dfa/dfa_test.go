package dfa

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/nfa"
	"fsmpredict/internal/regex"
)

func bitsOf(s string) []bool {
	return bitseq.MustFromString(s).Bools()
}

func compile(expr string) *DFA {
	return FromNFA(nfa.Compile(regex.MustParse(expr)))
}

func TestSubsetConstructionBasics(t *testing.T) {
	cases := []struct {
		expr string
		yes  []string
		no   []string
	}{
		{"1", []string{"1"}, []string{"", "0", "11"}},
		{".*11", []string{"11", "011", "111"}, []string{"", "1", "10"}},
		{".*(.1|1.)", []string{"01", "10", "11", "001"}, []string{"", "0", "00", "100"}},
		{"(01)*", []string{"", "01", "0101"}, []string{"0", "011"}},
	}
	for _, c := range cases {
		d := compile(c.expr)
		if err := d.Validate(); err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		for _, s := range c.yes {
			if !d.Run(bitsOf(s)) {
				t.Errorf("DFA(%q) should accept %q", c.expr, s)
			}
		}
		for _, s := range c.no {
			if d.Run(bitsOf(s)) {
				t.Errorf("DFA(%q) should reject %q", c.expr, s)
			}
		}
	}
}

// randomExpr mirrors the generator in the nfa tests.
func randomExpr(rng *rand.Rand, depth int) regex.Node {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return regex.Lit{Bit: rng.Intn(2) == 1}
		case 1:
			return regex.Any{}
		default:
			return regex.Empty{}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return regex.Concat{Parts: []regex.Node{
			randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	case 1:
		return regex.Alt{Alts: []regex.Node{
			randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	case 2:
		return regex.Star{Inner: randomExpr(rng, depth-1)}
	default:
		return randomExpr(rng, 0)
	}
}

func forAllInputs(maxLen int, f func(input []bool) bool) bool {
	for n := 0; n <= maxLen; n++ {
		for v := 0; v < 1<<uint(n); v++ {
			input := make([]bool, n)
			for i := range input {
				input[i] = v>>uint(i)&1 == 1
			}
			if !f(input) {
				return false
			}
		}
	}
	return true
}

func TestSubsetAndMinimizeAgreeWithNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		expr := randomExpr(rng, 3)
		m := nfa.Compile(expr)
		d := FromNFA(m)
		dm := d.Minimize()
		if err := dm.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ok := forAllInputs(7, func(input []bool) bool {
			want := m.Accepts(input)
			return d.Run(input) == want && dm.Run(input) == want
		})
		if !ok {
			t.Fatalf("trial %d expr %q: DFA disagrees with NFA", trial, regex.String(expr))
		}
		if !Equal(d, dm) {
			t.Fatalf("trial %d: Minimize changed the language", trial)
		}
		if dm.NumStates() > d.trimUnreachable().NumStates() {
			t.Fatalf("trial %d: Minimize grew the automaton", trial)
		}
	}
}

// naiveMinimalCount computes the minimal state count by Moore's iterative
// partition refinement — an independent oracle for Hopcroft.
func naiveMinimalCount(d *DFA) int {
	r := d.trimUnreachable()
	n := r.NumStates()
	class := make([]int, n)
	for s := 0; s < n; s++ {
		if r.Accept[s] {
			class[s] = 1
		}
	}
	for {
		type sig struct{ c, c0, c1 int }
		next := make([]int, n)
		ids := map[sig]int{}
		for s := 0; s < n; s++ {
			g := sig{class[s], class[r.Next[s][0]], class[r.Next[s][1]]}
			id, ok := ids[g]
			if !ok {
				id = len(ids)
				ids[g] = id
			}
			next[s] = id
		}
		same := true
		for s := range class {
			if class[s] != next[s] {
				same = false
			}
		}
		copy(class, next)
		if same {
			return len(ids)
		}
	}
}

func TestHopcroftMatchesNaiveMinimization(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		// Random complete DFA.
		n := rng.Intn(30) + 2
		d := &DFA{
			Next:   make([][2]int, n),
			Accept: make([]bool, n),
			Start:  rng.Intn(n),
		}
		for s := 0; s < n; s++ {
			d.Next[s][0] = rng.Intn(n)
			d.Next[s][1] = rng.Intn(n)
			d.Accept[s] = rng.Intn(2) == 1
		}
		dm := d.Minimize()
		if want := naiveMinimalCount(d); dm.NumStates() != want {
			t.Fatalf("trial %d: Hopcroft -> %d states, naive -> %d", trial, dm.NumStates(), want)
		}
		if !Equal(d, dm) {
			t.Fatalf("trial %d: minimization changed the language", trial)
		}
	}
}

func TestFigure1Pipeline(t *testing.T) {
	// §4: trace t yields cover {x1, 1x}; the minimized machine has 5
	// states including start-up states (Figure 1 left) and 3 states after
	// start-state reduction (Figure 1 right), one of which predicts 0.
	d := compile(".*(.1|1.)").Minimize()
	if d.NumStates() != 5 {
		t.Fatalf("minimized machine has %d states, want 5 (Figure 1 left)", d.NumStates())
	}
	tr := d.TrimStartup()
	if tr.NumStates() != 3 {
		t.Fatalf("after start-state reduction: %d states, want 3 (Figure 1 right)", tr.NumStates())
	}
	acc := 0
	for _, a := range tr.Accept {
		if a {
			acc++
		}
	}
	if acc != 2 {
		t.Fatalf("trimmed machine has %d predict-1 states, want 2", acc)
	}
	// Steady-state behaviour: patterns ending in 01, 10, 11 predict 1 and
	// 00 predicts 0, from any state.
	for s := 0; s < tr.NumStates(); s++ {
		for h := uint32(0); h < 4; h++ {
			cur := s
			cur = tr.Step(cur, h>>1&1 == 1)
			cur = tr.Step(cur, h&1 == 1)
			want := h != 0
			if tr.Accept[cur] != want {
				t.Errorf("from state %d history %s: predict %v, want %v",
					s, bitseq.HistoryString(h, 2), tr.Accept[cur], want)
			}
		}
	}
}

func TestTrimStartupPreservesSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		// Build a pipeline-style machine from a random cover.
		width := rng.Intn(4) + 2
		var cover []bitseq.Cube
		for i := 0; i < rng.Intn(3)+1; i++ {
			cover = append(cover, bitseq.NewCube(rng.Uint32(), rng.Uint32()|1, width))
		}
		d := FromNFA(nfa.Compile(regex.FromCover(cover))).Minimize()
		tr := d.TrimStartup()
		if tr.NumStates() > d.NumStates() {
			t.Fatalf("trial %d: TrimStartup grew the machine", trial)
		}
		// After the warm-up prefix both machines agree step by step.
		warm := width + d.NumStates()
		input := make([]bool, warm+40)
		for i := range input {
			input[i] = rng.Intn(2) == 1
		}
		s1, s2 := d.Start, tr.Start
		for i, b := range input {
			s1, s2 = d.Step(s1, b), tr.Step(s2, b)
			if i >= warm && d.Accept[s1] != tr.Accept[s2] {
				t.Fatalf("trial %d: steady-state mismatch at step %d", trial, i)
			}
		}
	}
}

func TestRecurrentStatesSimple(t *testing.T) {
	// start -> a -> b -> a (cycle a,b); start transient.
	d := &DFA{
		Next:   [][2]int{{1, 1}, {2, 2}, {1, 1}},
		Accept: []bool{false, true, false},
		Start:  0,
	}
	rec := d.RecurrentStates()
	if len(rec) != 2 || rec[0] != 1 || rec[1] != 2 {
		t.Fatalf("RecurrentStates = %v, want [1 2]", rec)
	}
	tr := d.TrimStartup()
	if tr.NumStates() != 2 {
		t.Fatalf("TrimStartup -> %d states, want 2", tr.NumStates())
	}
}

func TestRecurrentStatesSelfLoop(t *testing.T) {
	d := &DFA{Next: [][2]int{{0, 0}}, Accept: []bool{true}, Start: 0}
	rec := d.RecurrentStates()
	if len(rec) != 1 || rec[0] != 0 {
		t.Fatalf("RecurrentStates = %v, want [0]", rec)
	}
}

func TestEqualAndIsomorphic(t *testing.T) {
	a := compile(".*11").Minimize()
	b := compile(".*1 1").Minimize()
	c := compile(".*00").Minimize()
	if !Equal(a, b) || !Isomorphic(a, b) {
		t.Error("identical languages should be Equal and Isomorphic")
	}
	if Equal(a, c) || Isomorphic(a, c) {
		t.Error("different languages should not be Equal or Isomorphic")
	}
	// Renumbered copy is isomorphic.
	perm := &DFA{
		Next:   make([][2]int, a.NumStates()),
		Accept: make([]bool, a.NumStates()),
	}
	n := a.NumStates()
	for s := 0; s < n; s++ {
		p := (s + 1) % n
		perm.Next[p][0] = (a.Next[s][0] + 1) % n
		perm.Next[p][1] = (a.Next[s][1] + 1) % n
		perm.Accept[p] = a.Accept[s]
	}
	perm.Start = (a.Start + 1) % n
	if !Isomorphic(a, perm) {
		t.Error("renumbered machine should be isomorphic")
	}
}

func TestValidate(t *testing.T) {
	bad := []*DFA{
		{},
		{Next: [][2]int{{0, 0}}, Accept: []bool{}, Start: 0},
		{Next: [][2]int{{0, 5}}, Accept: []bool{true}, Start: 0},
		{Next: [][2]int{{0, 0}}, Accept: []bool{true}, Start: 3},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	d := compile(".*(0.1.|0..1.)").Minimize()
	again := d.Minimize()
	if !Isomorphic(d, again) || d.NumStates() != again.NumStates() {
		t.Fatal("Minimize should be idempotent")
	}
}
