// Package dfa implements deterministic finite automata over {0,1} and the
// three reduction steps of §4.6–§4.7 of the paper: subset construction
// from an NFA, Hopcroft's partition-refinement minimization, and
// start-state (transient state) reduction, which removes the states only
// used while the input history is still undefined.
//
// The kernels run on dense bitsets (bitseq.Set) rather than map-of-int
// sets: subsets are interned by their packed-word key, the Hopcroft
// splitter sets are word-wise unions, and the recurrent-state iteration
// unions whole sets at once. The original map-based implementations are
// kept in the package tests as differential oracles.
package dfa

import (
	"fmt"
	"sort"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/nfa"
)

// DFA is a complete deterministic automaton: every state has exactly one
// successor for each input bit. Accept doubles as the Moore output (a
// predict-1 state accepts).
type DFA struct {
	// Next[s][b] is the successor of state s on input bit b.
	Next [][2]int
	// Accept[s] reports whether state s is accepting (predicts 1).
	Accept []bool
	// Start is the initial state.
	Start int
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.Next) }

// Validate checks structural invariants.
func (d *DFA) Validate() error {
	n := len(d.Next)
	if len(d.Accept) != n {
		return fmt.Errorf("dfa: %d transition rows but %d accept flags", n, len(d.Accept))
	}
	if n == 0 {
		return fmt.Errorf("dfa: no states")
	}
	if d.Start < 0 || d.Start >= n {
		return fmt.Errorf("dfa: start state %d out of range", d.Start)
	}
	for s, row := range d.Next {
		for b := 0; b < 2; b++ {
			if row[b] < 0 || row[b] >= n {
				return fmt.Errorf("dfa: state %d has invalid successor %d on %d", s, row[b], b)
			}
		}
	}
	return nil
}

// Run feeds the input through the automaton and reports whether it ends in
// an accepting state.
func (d *DFA) Run(input []bool) bool {
	s := d.Start
	for _, b := range input {
		if b {
			s = d.Next[s][1]
		} else {
			s = d.Next[s][0]
		}
	}
	return d.Accept[s]
}

// Step returns the successor of state s on the given input bit.
func (d *DFA) Step(s int, bit bool) int {
	if bit {
		return d.Next[s][1]
	}
	return d.Next[s][0]
}

// FromNFA performs subset construction. The resulting DFA is complete: a
// dead state is materialized if some subset has no successor. Subsets are
// bitsets over the NFA states, interned by their packed-word key; the
// ε-closure runs in place on the bitset with a reused stack.
func FromNFA(m *nfa.NFA) *DFA {
	nn := m.NumStates()
	d := &DFA{}
	ids := map[string]int{}
	var sets []*bitseq.Set

	stack := make([]int, 0, nn)
	// closure expands s in place with everything ε-reachable.
	closure := func(s *bitseq.Set) {
		stack = stack[:0]
		s.ForEach(func(u int) { stack = append(stack, u) })
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range m.Eps[u] {
				if !s.Has(t) {
					s.Add(t)
					stack = append(stack, t)
				}
			}
		}
	}
	intern := func(s *bitseq.Set) int {
		k := s.Key()
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(sets)
		ids[k] = id
		sets = append(sets, s.Clone())
		d.Next = append(d.Next, [2]int{})
		d.Accept = append(d.Accept, s.Has(m.Accept))
		return id
	}

	cur := bitseq.NewSet(nn)
	cur.Add(m.Start)
	closure(cur)
	d.Start = intern(cur)
	for work := []int{d.Start}; len(work) > 0; {
		id := work[0]
		work = work[1:]
		set := sets[id]
		for b := 0; b < 2; b++ {
			table := m.On0
			if b == 1 {
				table = m.On1
			}
			cur.Reset(nn)
			set.ForEach(func(u int) {
				for _, t := range table[u] {
					cur.Add(t)
				}
			})
			closure(cur)
			before := len(sets)
			sid := intern(cur)
			if sid == before {
				work = append(work, sid)
			}
			d.Next[id][b] = sid
		}
	}
	return d
}

// trimUnreachable drops states not reachable from Start and renumbers the
// remainder in BFS order (0-edge before 1-edge), giving a canonical
// numbering for a fixed reachable structure.
func (d *DFA) trimUnreachable() *DFA {
	order := make([]int, 0, len(d.Next))
	newID := make([]int, len(d.Next))
	for i := range newID {
		newID[i] = -1
	}
	newID[d.Start] = 0
	order = append(order, d.Start)
	for i := 0; i < len(order); i++ {
		s := order[i]
		for b := 0; b < 2; b++ {
			t := d.Next[s][b]
			if newID[t] < 0 {
				newID[t] = len(order)
				order = append(order, t)
			}
		}
	}
	out := &DFA{
		Next:   make([][2]int, len(order)),
		Accept: make([]bool, len(order)),
		Start:  0,
	}
	for _, s := range order {
		id := newID[s]
		out.Accept[id] = d.Accept[s]
		out.Next[id][0] = newID[d.Next[s][0]]
		out.Next[id][1] = newID[d.Next[s][1]]
	}
	return out
}

// Canonicalize renumbers the reachable part of the automaton in BFS order.
// Two minimized automata recognize the same language from their start
// states iff their canonical forms are identical.
func (d *DFA) Canonicalize() *DFA { return d.trimUnreachable() }

// Minimize removes unreachable states and merges equivalent ones using
// Hopcroft's partition-refinement algorithm, then renumbers canonically.
func (d *DFA) Minimize() *DFA {
	t := d.trimUnreachable()
	n := t.NumStates()

	// Initial partition: accepting vs non-accepting. Blocks hold their
	// states in ascending order (splits preserve it), so blocks[i][0] is
	// the block minimum used for the final canonical ordering.
	block := make([]int, n)
	var blocks [][]int
	var accSt, rejSt []int
	for s := 0; s < n; s++ {
		if t.Accept[s] {
			accSt = append(accSt, s)
		} else {
			rejSt = append(rejSt, s)
		}
	}
	addBlock := func(states []int) int {
		id := len(blocks)
		blocks = append(blocks, states)
		for _, s := range states {
			block[s] = id
		}
		return id
	}
	if len(rejSt) > 0 {
		addBlock(rejSt)
	}
	if len(accSt) > 0 {
		addBlock(accSt)
	}

	// Precompute reverse edges in CSR form: after the counting pass and
	// prefix sum, the predecessors of tgt on symbol b land in
	// revList[b][revEnd[b][tgt-1]:revEnd[b][tgt]] (0 for tgt == 0). The
	// fill pass bumps revEnd[b][tgt] past each insertion, leaving it as
	// the end offset — two flat arrays per symbol instead of n slices.
	var revEnd, revList [2][]int
	for b := 0; b < 2; b++ {
		revEnd[b] = make([]int, n)
		revList[b] = make([]int, n)
	}
	for s := 0; s < n; s++ {
		for b := 0; b < 2; b++ {
			revEnd[b][t.Next[s][b]]++
		}
	}
	for b := 0; b < 2; b++ {
		sum := 0
		for i := 0; i < n; i++ {
			sum += revEnd[b][i]
			revEnd[b][i] = sum - revEnd[b][i]
		}
	}
	for s := 0; s < n; s++ {
		for b := 0; b < 2; b++ {
			tgt := t.Next[s][b]
			revList[b][revEnd[b][tgt]] = s
			revEnd[b][tgt]++
		}
	}
	revPreds := func(b, tgt int) []int {
		start := 0
		if tgt > 0 {
			start = revEnd[b][tgt-1]
		}
		return revList[b][start:revEnd[b][tgt]]
	}

	// Worklist of (block id, symbol); membership tracked per symbol in a
	// dense array (block ids never exceed the state count).
	type work struct{ blk, sym int }
	var wl []work
	var inWL [2][]bool
	inWL[0] = make([]bool, n)
	inWL[1] = make([]bool, n)
	push := func(blk, sym int) {
		if !inWL[sym][blk] {
			inWL[sym][blk] = true
			wl = append(wl, work{blk, sym})
		}
	}
	for b := range blocks {
		push(b, 0)
		push(b, 1)
	}

	inX := bitseq.NewSet(n)     // states with a w.sym-edge into w.blk
	touched := bitseq.NewSet(n) // block ids crossed by inX
	for len(wl) > 0 {
		w := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		inWL[w.sym][w.blk] = false

		inX.Reset(n)
		for _, s := range blocks[w.blk] {
			for _, p := range revPreds(w.sym, s) {
				inX.Add(p)
			}
		}
		if inX.Empty() {
			continue
		}
		// Split every block crossed by inX.
		touched.Reset(n)
		inX.ForEach(func(p int) { touched.Add(block[p]) })
		touched.ForEach(func(blk int) {
			var inside, outside []int
			for _, s := range blocks[blk] {
				if inX.Has(s) {
					inside = append(inside, s)
				} else {
					outside = append(outside, s)
				}
			}
			if len(inside) == 0 || len(outside) == 0 {
				return
			}
			// Keep the larger part in place, move the smaller to a new
			// block (Hopcroft's trick).
			small, large := inside, outside
			if len(small) > len(large) {
				small, large = large, small
			}
			blocks[blk] = large
			newID := addBlock(small)
			// If (blk, sym) is already pending, refining against the new
			// part is enough; otherwise push the smaller part.
			for sym := 0; sym < 2; sym++ {
				push(newID, sym)
			}
		})
	}

	// Build the quotient automaton, blocks ordered by their least state.
	sort.Slice(blocks, func(i, j int) bool {
		return blocks[i][0] < blocks[j][0]
	})
	for id, states := range blocks {
		for _, s := range states {
			block[s] = id
		}
	}
	out := &DFA{
		Next:   make([][2]int, len(blocks)),
		Accept: make([]bool, len(blocks)),
		Start:  block[t.Start],
	}
	for id, states := range blocks {
		rep := states[0]
		out.Accept[id] = t.Accept[rep]
		out.Next[id][0] = block[t.Next[rep][0]]
		out.Next[id][1] = block[t.Next[rep][1]]
	}
	return out.trimUnreachable()
}

// RecurrentStates returns the steady-state set of §4.7: the states the
// machine can occupy after arbitrarily many inputs. It iterates the image
// of the reachable set until the set sequence cycles and returns the union
// over the cycle. Sets are bitsets keyed by their packed words, so one
// iteration is two table lookups per member and the cycle union is a
// word-wise OR.
func (d *DFA) RecurrentStates() []int {
	n := len(d.Next)
	cur := bitseq.NewSet(n)
	cur.Add(d.Start)
	seen := map[string]int{}
	var history []*bitseq.Set
	for {
		k := cur.Key()
		if at, ok := seen[k]; ok {
			// Union of the cycle's sets.
			union := bitseq.NewSet(n)
			for _, set := range history[at:] {
				union.UnionWith(set)
			}
			return union.AppendTo(make([]int, 0, union.Len()))
		}
		seen[k] = len(history)
		history = append(history, cur)
		next := bitseq.NewSet(n)
		cur.ForEach(func(s int) {
			next.Add(d.Next[s][0])
			next.Add(d.Next[s][1])
		})
		cur = next
	}
}

// TrimStartup performs the start-state reduction of §4.7: it restricts the
// automaton to its recurrent (steady-state) set, choosing as the new start
// the first recurrent state reachable from the old start (BFS, 0-edge
// first), then renumbers canonically. The steady-state behaviour — the
// output after any sufficiently long input — is unchanged.
func (d *DFA) TrimStartup() *DFA {
	n := len(d.Next)
	rec := bitseq.NewSet(n)
	for _, s := range d.RecurrentStates() {
		rec.Add(s)
	}
	// BFS from the old start to find the nearest recurrent state.
	start := -1
	visited := bitseq.NewSet(n)
	visited.Add(d.Start)
	queue := []int{d.Start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if rec.Has(s) {
			start = s
			break
		}
		for b := 0; b < 2; b++ {
			t := d.Next[s][b]
			if !visited.Has(t) {
				visited.Add(t)
				queue = append(queue, t)
			}
		}
	}
	if start < 0 {
		// Cannot happen for a complete automaton, but fall back safely.
		return d.trimUnreachable()
	}
	out := &DFA{Next: d.Next, Accept: d.Accept, Start: start}
	return out.trimUnreachable()
}

// Equal reports whether two automata accept exactly the same language from
// their start states, via product-construction BFS over a dense pair set.
func Equal(a, b *DFA) bool {
	na, nb := len(a.Next), len(b.Next)
	seen := bitseq.NewSet(na * nb)
	type pair struct{ x, y int }
	queue := []pair{{a.Start, b.Start}}
	seen.Add(a.Start*nb + b.Start)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if a.Accept[p.x] != b.Accept[p.y] {
			return false
		}
		for bit := 0; bit < 2; bit++ {
			nx, ny := a.Next[p.x][bit], b.Next[p.y][bit]
			if id := nx*nb + ny; !seen.Has(id) {
				seen.Add(id)
				queue = append(queue, pair{nx, ny})
			}
		}
	}
	return true
}

// Isomorphic reports whether the reachable parts of two automata are
// identical up to state renumbering.
func Isomorphic(a, b *DFA) bool {
	ca, cb := a.Canonicalize(), b.Canonicalize()
	if ca.NumStates() != cb.NumStates() || ca.Start != cb.Start {
		return false
	}
	for s := range ca.Next {
		if ca.Next[s] != cb.Next[s] || ca.Accept[s] != cb.Accept[s] {
			return false
		}
	}
	return true
}
