// Package dfa implements deterministic finite automata over {0,1} and the
// three reduction steps of §4.6–§4.7 of the paper: subset construction
// from an NFA, Hopcroft's partition-refinement minimization, and
// start-state (transient state) reduction, which removes the states only
// used while the input history is still undefined.
package dfa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fsmpredict/internal/nfa"
)

// DFA is a complete deterministic automaton: every state has exactly one
// successor for each input bit. Accept doubles as the Moore output (a
// predict-1 state accepts).
type DFA struct {
	// Next[s][b] is the successor of state s on input bit b.
	Next [][2]int
	// Accept[s] reports whether state s is accepting (predicts 1).
	Accept []bool
	// Start is the initial state.
	Start int
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.Next) }

// Validate checks structural invariants.
func (d *DFA) Validate() error {
	n := len(d.Next)
	if len(d.Accept) != n {
		return fmt.Errorf("dfa: %d transition rows but %d accept flags", n, len(d.Accept))
	}
	if n == 0 {
		return fmt.Errorf("dfa: no states")
	}
	if d.Start < 0 || d.Start >= n {
		return fmt.Errorf("dfa: start state %d out of range", d.Start)
	}
	for s, row := range d.Next {
		for b := 0; b < 2; b++ {
			if row[b] < 0 || row[b] >= n {
				return fmt.Errorf("dfa: state %d has invalid successor %d on %d", s, row[b], b)
			}
		}
	}
	return nil
}

// Run feeds the input through the automaton and reports whether it ends in
// an accepting state.
func (d *DFA) Run(input []bool) bool {
	s := d.Start
	for _, b := range input {
		if b {
			s = d.Next[s][1]
		} else {
			s = d.Next[s][0]
		}
	}
	return d.Accept[s]
}

// Step returns the successor of state s on the given input bit.
func (d *DFA) Step(s int, bit bool) int {
	if bit {
		return d.Next[s][1]
	}
	return d.Next[s][0]
}

// FromNFA performs subset construction. The resulting DFA is complete: a
// dead state is materialized if some subset has no successor.
func FromNFA(m *nfa.NFA) *DFA {
	d := &DFA{}
	ids := map[string]int{}

	key := func(set []int) string {
		var sb strings.Builder
		for i, s := range set {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(s))
		}
		return sb.String()
	}
	accepts := func(set []int) bool {
		for _, s := range set {
			if s == m.Accept {
				return true
			}
		}
		return false
	}

	var sets [][]int
	intern := func(set []int) int {
		k := key(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(sets)
		ids[k] = id
		sets = append(sets, set)
		d.Next = append(d.Next, [2]int{})
		d.Accept = append(d.Accept, accepts(set))
		return id
	}

	start := intern(m.EpsilonClosure([]int{m.Start}))
	d.Start = start
	for work := []int{start}; len(work) > 0; {
		id := work[0]
		work = work[1:]
		set := sets[id]
		for b := 0; b < 2; b++ {
			succ := m.EpsilonClosure(m.Move(set, b == 1))
			before := len(sets)
			sid := intern(succ)
			if sid == before {
				work = append(work, sid)
			}
			d.Next[id][b] = sid
		}
	}
	return d
}

// trimUnreachable drops states not reachable from Start and renumbers the
// remainder in BFS order (0-edge before 1-edge), giving a canonical
// numbering for a fixed reachable structure.
func (d *DFA) trimUnreachable() *DFA {
	order := make([]int, 0, len(d.Next))
	newID := make([]int, len(d.Next))
	for i := range newID {
		newID[i] = -1
	}
	newID[d.Start] = 0
	order = append(order, d.Start)
	for i := 0; i < len(order); i++ {
		s := order[i]
		for b := 0; b < 2; b++ {
			t := d.Next[s][b]
			if newID[t] < 0 {
				newID[t] = len(order)
				order = append(order, t)
			}
		}
	}
	out := &DFA{
		Next:   make([][2]int, len(order)),
		Accept: make([]bool, len(order)),
		Start:  0,
	}
	for _, s := range order {
		id := newID[s]
		out.Accept[id] = d.Accept[s]
		out.Next[id][0] = newID[d.Next[s][0]]
		out.Next[id][1] = newID[d.Next[s][1]]
	}
	return out
}

// Canonicalize renumbers the reachable part of the automaton in BFS order.
// Two minimized automata recognize the same language from their start
// states iff their canonical forms are identical.
func (d *DFA) Canonicalize() *DFA { return d.trimUnreachable() }

// Minimize removes unreachable states and merges equivalent ones using
// Hopcroft's partition-refinement algorithm, then renumbers canonically.
func (d *DFA) Minimize() *DFA {
	t := d.trimUnreachable()
	n := t.NumStates()

	// Initial partition: accepting vs non-accepting.
	block := make([]int, n)
	var blocks [][]int
	var accSt, rejSt []int
	for s := 0; s < n; s++ {
		if t.Accept[s] {
			accSt = append(accSt, s)
		} else {
			rejSt = append(rejSt, s)
		}
	}
	addBlock := func(states []int) int {
		id := len(blocks)
		blocks = append(blocks, states)
		for _, s := range states {
			block[s] = id
		}
		return id
	}
	if len(rejSt) > 0 {
		addBlock(rejSt)
	}
	if len(accSt) > 0 {
		addBlock(accSt)
	}

	// Precompute reverse edges.
	var rev [2][][]int
	for b := 0; b < 2; b++ {
		rev[b] = make([][]int, n)
	}
	for s := 0; s < n; s++ {
		for b := 0; b < 2; b++ {
			tgt := t.Next[s][b]
			rev[b][tgt] = append(rev[b][tgt], s)
		}
	}

	// Worklist of (block id, symbol).
	type work struct{ blk, sym int }
	var wl []work
	inWL := map[work]bool{}
	push := func(blk, sym int) {
		w := work{blk, sym}
		if !inWL[w] {
			inWL[w] = true
			wl = append(wl, w)
		}
	}
	for b := range blocks {
		push(b, 0)
		push(b, 1)
	}

	for len(wl) > 0 {
		w := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		inWL[w] = false

		// X = states with a transition on w.sym into block w.blk.
		inX := map[int]bool{}
		for _, s := range blocks[w.blk] {
			for _, p := range rev[w.sym][s] {
				inX[p] = true
			}
		}
		if len(inX) == 0 {
			continue
		}
		// Split every block crossed by X.
		touched := map[int]bool{}
		for p := range inX {
			touched[block[p]] = true
		}
		for blk := range touched {
			var inside, outside []int
			for _, s := range blocks[blk] {
				if inX[s] {
					inside = append(inside, s)
				} else {
					outside = append(outside, s)
				}
			}
			if len(inside) == 0 || len(outside) == 0 {
				continue
			}
			// Keep the larger part in place, move the smaller to a new
			// block (Hopcroft's trick).
			small, large := inside, outside
			if len(small) > len(large) {
				small, large = large, small
			}
			blocks[blk] = large
			newID := addBlock(small)
			// If (blk, sym) is already pending, refining against the new
			// part is enough; otherwise push the smaller part.
			for sym := 0; sym < 2; sym++ {
				push(newID, sym)
			}
		}
	}

	// Build the quotient automaton.
	sort.Slice(blocks, func(i, j int) bool {
		return minOf(blocks[i]) < minOf(blocks[j])
	})
	for id, states := range blocks {
		for _, s := range states {
			block[s] = id
		}
	}
	out := &DFA{
		Next:   make([][2]int, len(blocks)),
		Accept: make([]bool, len(blocks)),
		Start:  block[t.Start],
	}
	for id, states := range blocks {
		rep := states[0]
		out.Accept[id] = t.Accept[rep]
		out.Next[id][0] = block[t.Next[rep][0]]
		out.Next[id][1] = block[t.Next[rep][1]]
	}
	return out.trimUnreachable()
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// RecurrentStates returns the steady-state set of §4.7: the states the
// machine can occupy after arbitrarily many inputs. It iterates the image
// of the reachable set until the set sequence cycles and returns the union
// over the cycle.
func (d *DFA) RecurrentStates() []int {
	cur := map[int]bool{d.Start: true}
	seen := map[string]int{}
	var history []map[int]bool
	for {
		k := setKey(cur)
		if at, ok := seen[k]; ok {
			// Union of the cycle's sets.
			union := map[int]bool{}
			for _, set := range history[at:] {
				for s := range set {
					union[s] = true
				}
			}
			out := make([]int, 0, len(union))
			for s := range union {
				out = append(out, s)
			}
			sort.Ints(out)
			return out
		}
		seen[k] = len(history)
		history = append(history, cur)
		next := map[int]bool{}
		for s := range cur {
			next[d.Next[s][0]] = true
			next[d.Next[s][1]] = true
		}
		cur = next
	}
}

func setKey(set map[int]bool) string {
	xs := make([]int, 0, len(set))
	for s := range set {
		xs = append(xs, s)
	}
	sort.Ints(xs)
	var sb strings.Builder
	for i, s := range xs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(s))
	}
	return sb.String()
}

// TrimStartup performs the start-state reduction of §4.7: it restricts the
// automaton to its recurrent (steady-state) set, choosing as the new start
// the first recurrent state reachable from the old start (BFS, 0-edge
// first), then renumbers canonically. The steady-state behaviour — the
// output after any sufficiently long input — is unchanged.
func (d *DFA) TrimStartup() *DFA {
	rec := map[int]bool{}
	for _, s := range d.RecurrentStates() {
		rec[s] = true
	}
	// BFS from the old start to find the nearest recurrent state.
	start := -1
	visited := map[int]bool{d.Start: true}
	queue := []int{d.Start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if rec[s] {
			start = s
			break
		}
		for b := 0; b < 2; b++ {
			t := d.Next[s][b]
			if !visited[t] {
				visited[t] = true
				queue = append(queue, t)
			}
		}
	}
	if start < 0 {
		// Cannot happen for a complete automaton, but fall back safely.
		return d.trimUnreachable()
	}
	out := &DFA{Next: d.Next, Accept: d.Accept, Start: start}
	return out.trimUnreachable()
}

// Equal reports whether two automata accept exactly the same language from
// their start states, via product-construction BFS.
func Equal(a, b *DFA) bool {
	type pair struct{ x, y int }
	seen := map[pair]bool{}
	queue := []pair{{a.Start, b.Start}}
	seen[queue[0]] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if a.Accept[p.x] != b.Accept[p.y] {
			return false
		}
		for bit := 0; bit < 2; bit++ {
			n := pair{a.Next[p.x][bit], b.Next[p.y][bit]}
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return true
}

// Isomorphic reports whether the reachable parts of two automata are
// identical up to state renumbering.
func Isomorphic(a, b *DFA) bool {
	ca, cb := a.Canonicalize(), b.Canonicalize()
	if ca.NumStates() != cb.NumStates() || ca.Start != cb.Start {
		return false
	}
	for s := range ca.Next {
		if ca.Next[s] != cb.Next[s] || ca.Accept[s] != cb.Accept[s] {
			return false
		}
	}
	return true
}
