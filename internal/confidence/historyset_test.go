package confidence

import (
	"testing"

	"fsmpredict/internal/core"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/workload"
)

func TestHistorySetBasics(t *testing.T) {
	m := markov.New(3)
	m.ObserveN(0b101, true, 90)
	m.ObserveN(0b101, false, 10) // 90% accurate -> in at 0.85, out at 0.95
	m.ObserveN(0b010, false, 50) // 0% accurate
	s, err := NewHistorySet(m, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Confident(0b101) || s.Confident(0b010) || s.Confident(0b111) {
		t.Error("confidence set wrong")
	}
	if s.Size() != 1 || s.Width() != 3 || s.TableBits() != 8 {
		t.Errorf("Size/Width/TableBits = %d/%d/%d", s.Size(), s.Width(), s.TableBits())
	}
	strict, err := NewHistorySet(m, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Confident(0b101) {
		t.Error("0.95 threshold should exclude the 90% history")
	}
}

func TestHistorySetValidation(t *testing.T) {
	if _, err := NewHistorySet(markov.New(3), 0); err == nil {
		t.Error("expected accuracy range error")
	}
	if _, err := NewHistorySet(markov.New(3), 1.5); err == nil {
		t.Error("expected accuracy range error")
	}
}

func TestHistorySetRunnerWarmup(t *testing.T) {
	m := markov.New(2)
	m.ObserveN(0b00, true, 10) // history 00 is confident
	s, err := NewHistorySet(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Instance()
	if r.Predict() {
		t.Error("cold runner must not be confident")
	}
	r.Update(false)
	if r.Predict() {
		t.Error("half-warm runner must not be confident")
	}
	r.Update(false)
	if !r.Predict() {
		t.Error("history 00 should be confident")
	}
	r.Reset()
	if r.Predict() {
		t.Error("reset runner must not be confident")
	}
}

// TestHistorySetEquivalentToStartupFSM is the oracle property: an FSM
// designed from the same model at the same threshold, with don't cares
// disabled, unseen histories forced to predict 0, and start-up states
// kept, must make EXACTLY the same confidence decisions as the history
// set table — the compilation changes representation, not behaviour.
func TestHistorySetEquivalentToStartupFSM(t *testing.T) {
	for _, program := range []string{"gcc", "li"} {
		prog, err := workload.LoadByName(program)
		if err != nil {
			t.Fatal(err)
		}
		train := prog.Generate(workload.Train, 40000)
		test := prog.Generate(workload.Test, 30000)
		for _, thr := range []float64{0.5, 0.8, 0.95} {
			model := PerEntryCorrectnessModel(train, 11, 5)
			set, err := NewHistorySet(model, thr)
			if err != nil {
				t.Fatal(err)
			}
			design, err := core.FromModel(model, core.Options{
				BiasThreshold:  thr,
				DontCareBudget: -1,
				KeepUnseen:     true,
				KeepStartup:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			machine := design.Machine
			setRes := Evaluate(test, 11, set.Instance)
			fsmRes := Evaluate(test, 11, func() counters.Predictor {
				return machine.NewRunner()
			})
			if setRes != fsmRes {
				t.Errorf("%s thr %v: history set %+v != FSM %+v",
					program, thr, setRes, fsmRes)
			}
			// And the compiled form is radically smaller than the table.
			if machine.NumStates() >= set.TableBits() {
				t.Errorf("%s thr %v: FSM has %d states vs %d table bits",
					program, thr, machine.NumStates(), set.TableBits())
			}
		}
	}
}

func TestHistorySetAsEstimator(t *testing.T) {
	prog, _ := workload.LoadByName("perl")
	train := prog.Generate(workload.Train, 30000)
	test := prog.Generate(workload.Test, 30000)
	model := PerEntryCorrectnessModel(train, 11, 6)
	set, err := NewHistorySet(model, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	r := Evaluate(test, 11, set.Instance)
	if r.Flagged == 0 {
		t.Fatal("history set flagged nothing")
	}
	if r.Accuracy() < 0.8 {
		t.Errorf("accuracy %.3f below profile target", r.Accuracy())
	}
}
