package confidence

import (
	"fsmpredict/internal/counters"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/vpred"
)

// EvaluateValue generalizes Evaluate to any value predictor family
// (two-delta stride, last value, FCM, hybrid — §6.1): one confidence
// estimator per table entry, re-created when the entry is reallocated.
func EvaluateValue(p vpred.ValuePredictor, loads []trace.LoadEvent, newEstimator func() counters.Predictor) Result {
	estimators := map[int]counters.Predictor{}
	owners := map[int]uint64{}
	var r Result
	for _, ld := range loads {
		acc := p.Access(ld.PC, ld.Value)
		est := estimators[acc.Entry]
		if est == nil || owners[acc.Entry] != ld.PC {
			est = newEstimator()
			estimators[acc.Entry] = est
			owners[acc.Entry] = ld.PC
		}
		if acc.Valid {
			r.Accesses++
			confident := est.Predict()
			if acc.Correct {
				r.Correct++
			}
			if confident {
				r.Flagged++
				if acc.Correct {
					r.FlaggedCorrect++
				}
			}
		}
		est.Update(acc.Valid && acc.Correct)
	}
	return r
}

// RecoveryModel captures the §6.2 cost structure of using a value
// prediction: a correct used prediction saves CorrectBenefit cycles of
// load latency; a wrong used prediction costs MissPenalty cycles of
// recovery. The paper's observation: squash recovery has a large penalty
// and therefore needs a very accurate confidence estimator, while
// re-execution recovery has a small penalty and prefers coverage.
type RecoveryModel struct {
	// Name identifies the mechanism.
	Name string
	// CorrectBenefit is the cycles saved per correct used prediction.
	CorrectBenefit float64
	// MissPenalty is the cycles lost per wrong used prediction.
	MissPenalty float64
}

// SquashRecovery models pipeline-squash recovery: mispredictions flush
// in-flight work, so they are expensive.
func SquashRecovery() RecoveryModel {
	return RecoveryModel{Name: "squash", CorrectBenefit: 2, MissPenalty: 9}
}

// ReexecRecovery models selective re-execution: only dependent
// instructions replay, so mispredictions are cheap.
func ReexecRecovery() RecoveryModel {
	return RecoveryModel{Name: "reexec", CorrectBenefit: 2, MissPenalty: 1}
}

// Benefit computes the expected cycles saved per predicted access when
// value prediction is used exactly on the confident predictions of r.
func (m RecoveryModel) Benefit(r Result) float64 {
	if r.Accesses == 0 {
		return 0
	}
	wrongUsed := r.Flagged - r.FlaggedCorrect
	saved := float64(r.FlaggedCorrect)*m.CorrectBenefit - float64(wrongUsed)*m.MissPenalty
	return saved / float64(r.Accesses)
}

// BestOperatingPoint returns the index of the result whose Benefit is
// highest under the model (-1 for an empty slice).
func (m RecoveryModel) BestOperatingPoint(results []Result) int {
	best, bestVal := -1, 0.0
	for i, r := range results {
		if v := m.Benefit(r); best < 0 || v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}
