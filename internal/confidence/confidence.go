// Package confidence implements the value-prediction confidence
// estimation harness of §6: per-table-entry confidence predictors sit in
// front of a two-delta stride value predictor and decide which value
// predictions the processor should trust. It computes the accuracy and
// coverage metrics plotted in Figure 2 and evaluates both the classic
// saturating up/down counters and the automatically designed FSM
// predictors (cross-trained across the benchmark suite, §6.3).
package confidence

import (
	"fmt"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/core"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/vpred"
)

// Result tallies a confidence estimator over a load trace.
type Result struct {
	// Accesses counts loads that produced a value prediction (tag hits).
	Accesses int
	// Correct counts value predictions that were correct.
	Correct int
	// Flagged counts predictions the estimator marked confident.
	Flagged int
	// FlaggedCorrect counts confident predictions that were correct.
	FlaggedCorrect int
}

// Accuracy is the fraction of confident predictions that were correct
// (the x-axis of Figure 2). With nothing flagged it reports 1 — a
// vacuously accurate, zero-coverage estimator.
func (r Result) Accuracy() float64 {
	if r.Flagged == 0 {
		return 1
	}
	return float64(r.FlaggedCorrect) / float64(r.Flagged)
}

// Coverage is the fraction of correct predictions that were flagged
// confident (the y-axis of Figure 2).
func (r Result) Coverage() float64 {
	if r.Correct == 0 {
		return 0
	}
	return float64(r.FlaggedCorrect) / float64(r.Correct)
}

// Evaluate drives the load trace through a stride predictor with one
// confidence estimator per table entry, created by newEstimator. The
// estimator sees and learns from every prediction's correctness, exactly
// like the per-entry counters of §6.1. Estimators are re-created when
// their entry is reallocated to a different load.
func Evaluate(loads []trace.LoadEvent, tableLog2 int, newEstimator func() counters.Predictor) Result {
	sp := vpred.New(tableLog2)
	estimators := make([]counters.Predictor, sp.Size())
	owners := make([]uint64, sp.Size())

	var r Result
	for _, ld := range loads {
		acc := sp.Access(ld.PC, ld.Value)
		est := estimators[acc.Entry]
		if est == nil || owners[acc.Entry] != ld.PC {
			est = newEstimator()
			estimators[acc.Entry] = est
			owners[acc.Entry] = ld.PC
		}
		if acc.Valid {
			r.Accesses++
			confident := est.Predict()
			if acc.Correct {
				r.Correct++
			}
			if confident {
				r.Flagged++
				if acc.Correct {
					r.FlaggedCorrect++
				}
			}
		}
		// Confidence counters train on every executed load's correctness
		// (§6.3), including allocation misses (not correct).
		est.Update(acc.Valid && acc.Correct)
	}
	return r
}

// CorrectnessTrace runs the load trace through a fresh stride predictor
// and returns the per-load correctness bit stream — the §6.3 profile fed
// to the FSM design flow ("each time a load was executed, we put into
// the trace whether the load was correctly value predicted").
func CorrectnessTrace(loads []trace.LoadEvent, tableLog2 int) []bool {
	sp := vpred.New(tableLog2)
	bits := make([]bool, 0, len(loads))
	for _, ld := range loads {
		acc := sp.Access(ld.PC, ld.Value)
		bits = append(bits, acc.Valid && acc.Correct)
	}
	return bits
}

// CorrectnessModel profiles the global correctness stream into an
// order-N Markov model — the literal §6.3 protocol, paired with
// EvaluateGlobal/FSMCurveGlobal (one FSM watching every load).
func CorrectnessModel(loads []trace.LoadEvent, tableLog2, order int) *markov.Model {
	m := markov.New(order)
	m.AddBools(CorrectnessTrace(loads, tableLog2))
	return m
}

// PerEntryCorrectnessModel profiles each table entry's own correctness
// stream into one merged order-N Markov model. This is the training view
// matching the per-entry deployment of Evaluate/FSMCurve, where each of
// the 2K confidence slots holds its own FSM instance and sees only its
// own load's history — a drop-in replacement for the per-entry counters
// of §6.1.
func PerEntryCorrectnessModel(loads []trace.LoadEvent, tableLog2, order int) *markov.Model {
	sp := vpred.New(tableLog2)
	m := markov.New(order)
	hists := make([]*bitseq.History, sp.Size())
	owners := make([]uint64, sp.Size())
	for _, ld := range loads {
		acc := sp.Access(ld.PC, ld.Value)
		h := hists[acc.Entry]
		if h == nil || owners[acc.Entry] != ld.PC {
			h = bitseq.NewHistory(order)
			hists[acc.Entry] = h
			owners[acc.Entry] = ld.PC
		}
		correct := acc.Valid && acc.Correct
		if h.Warm() {
			m.Observe(h.Value(), correct)
		}
		h.Push(correct)
	}
	return m
}

// EvaluateGlobal drives the load trace with a single confidence estimator
// shared across all loads, matching training on the global correctness
// stream (CorrectnessModel).
func EvaluateGlobal(loads []trace.LoadEvent, tableLog2 int, est counters.Predictor) Result {
	sp := vpred.New(tableLog2)
	var r Result
	for _, ld := range loads {
		acc := sp.Access(ld.PC, ld.Value)
		if acc.Valid {
			r.Accesses++
			confident := est.Predict()
			if acc.Correct {
				r.Correct++
			}
			if confident {
				r.Flagged++
				if acc.Correct {
					r.FlaggedCorrect++
				}
			}
		}
		est.Update(acc.Valid && acc.Correct)
	}
	return r
}

// SUDPoint is one saturating-counter configuration's accuracy/coverage.
type SUDPoint struct {
	Config counters.SUDConfig
	Result Result
}

// SUDSweep evaluates the paper's Figure 2 counter configurations.
func SUDSweep(loads []trace.LoadEvent, tableLog2 int) []SUDPoint {
	var out []SUDPoint
	for _, cfg := range counters.PaperSweep() {
		cfg := cfg
		res := Evaluate(loads, tableLog2, func() counters.Predictor {
			return counters.NewSUD(cfg)
		})
		out = append(out, SUDPoint{Config: cfg, Result: res})
	}
	return out
}

// FSMPoint is one automatically designed confidence FSM's operating
// point: the bias threshold it was designed for, the machine, and its
// accuracy/coverage on the evaluation trace.
type FSMPoint struct {
	Threshold float64
	Machine   *fsm.Machine
	Result    Result
}

// DefaultThresholds is the bias-threshold sweep tracing each history
// length's coverage/accuracy curve in Figure 2.
func DefaultThresholds() []float64 {
	return []float64{0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99}
}

// FSMCurve designs one confidence FSM per bias threshold from the given
// (typically cross-trained) PER-ENTRY correctness model (see
// PerEntryCorrectnessModel) and evaluates each on the load trace. Each
// table entry gets its own runner of the shared machine, mirroring the
// per-entry counters it replaces.
func FSMCurve(model *markov.Model, thresholds []float64, loads []trace.LoadEvent, tableLog2 int) ([]FSMPoint, error) {
	return fsmCurve(model, thresholds, func(machine *fsm.Machine) Result {
		return Evaluate(loads, tableLog2, func() counters.Predictor {
			return machine.NewRunner()
		})
	})
}

// FSMCurveGlobal designs one confidence FSM per bias threshold from a
// GLOBAL correctness model (see CorrectnessModel) and evaluates each as a
// single shared estimator — the paper-literal §6.3 protocol.
func FSMCurveGlobal(model *markov.Model, thresholds []float64, loads []trace.LoadEvent, tableLog2 int) ([]FSMPoint, error) {
	return fsmCurve(model, thresholds, func(machine *fsm.Machine) Result {
		return EvaluateGlobal(loads, tableLog2, machine.NewRunner())
	})
}

func fsmCurve(model *markov.Model, thresholds []float64, eval func(*fsm.Machine) Result) ([]FSMPoint, error) {
	out, err := designCurve(model, thresholds)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i].Result = eval(out[i].Machine)
	}
	return out, nil
}

// designCurve designs the threshold sweep's machines without evaluating
// them, so batch evaluators (FSMCurveStreams' fleet pass) can score the
// whole sweep in one trace read.
func designCurve(model *markov.Model, thresholds []float64) ([]FSMPoint, error) {
	if len(thresholds) == 0 {
		thresholds = DefaultThresholds()
	}
	out := make([]FSMPoint, 0, len(thresholds))
	for _, thr := range thresholds {
		design, err := core.FromModel(model, core.Options{
			BiasThreshold: thr,
			Name:          fmt.Sprintf("conf_h%d_t%02.0f", model.Order(), thr*100),
		})
		if err != nil {
			return nil, fmt.Errorf("confidence: threshold %v: %v", thr, err)
		}
		out = append(out, FSMPoint{Threshold: thr, Machine: design.Machine})
	}
	return out, nil
}
