package confidence

import (
	"fmt"
	"math/bits"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/markov"
)

// HistorySet implements the confidence scheme of Burtscher and Zorn
// (§3.2 of the paper): from a profile, select the N-bit prediction-
// outcome histories whose empirical accuracy meets a target, and at run
// time flag a prediction as confident exactly when the current history is
// in the selected set.
//
// Functionally this is the un-minimized table form of what the design
// flow compiles into an FSM: a 2^N-entry lookup instead of a handful of
// states. The package tests exploit that equivalence — a start-up-
// preserving FSM designed from the same model at the same threshold must
// make identical decisions — making HistorySet an end-to-end oracle for
// the whole pipeline.
type HistorySet struct {
	width     int
	confident []uint64 // bitset over 2^width histories
}

// NewHistorySet selects the histories of the model whose P[correct]
// meets minAccuracy. Unseen histories are never confident.
func NewHistorySet(model *markov.Model, minAccuracy float64) (*HistorySet, error) {
	if model.Order() > 20 {
		return nil, fmt.Errorf("confidence: history set of order %d too large", model.Order())
	}
	if minAccuracy <= 0 || minAccuracy > 1 {
		return nil, fmt.Errorf("confidence: min accuracy %v out of range (0,1]", minAccuracy)
	}
	s := &HistorySet{
		width:     model.Order(),
		confident: make([]uint64, (1<<uint(model.Order())+63)/64),
	}
	for _, h := range model.Histories() {
		if model.Count(h).P1() >= minAccuracy {
			s.confident[h/64] |= 1 << (h % 64)
		}
	}
	return s, nil
}

// Width returns the history length.
func (s *HistorySet) Width() int { return s.width }

// Confident reports whether history h is in the selected set.
func (s *HistorySet) Confident(h uint32) bool {
	h &= uint32(1)<<uint(s.width) - 1
	return s.confident[h/64]>>(h%64)&1 == 1
}

// Size returns the number of confident histories (the table population).
func (s *HistorySet) Size() int {
	n := 0
	for _, w := range s.confident {
		n += bits.OnesCount64(w)
	}
	return n
}

// TableBits returns the storage cost of the scheme: one bit per possible
// history — what the FSM compilation saves.
func (s *HistorySet) TableBits() int { return 1 << uint(s.width) }

// Instance returns a fresh runtime instance (its own history register)
// sharing the selected set; it satisfies counters.Predictor, so it plugs
// into Evaluate like any estimator.
func (s *HistorySet) Instance() counters.Predictor {
	return &historySetRunner{set: s, hist: bitseq.NewHistory(s.width)}
}

type historySetRunner struct {
	set  *HistorySet
	hist *bitseq.History
}

// Predict flags confidence when the (fully warmed) history is selected.
func (r *historySetRunner) Predict() bool {
	return r.hist.Warm() && r.set.Confident(r.hist.Value())
}

// Update shifts in the correctness outcome.
func (r *historySetRunner) Update(correct bool) { r.hist.Push(correct) }

// Reset clears the history register.
func (r *historySetRunner) Reset() { r.hist.Reset() }
