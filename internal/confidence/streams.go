package confidence

import (
	"math/bits"

	"fsmpredict/internal/counters"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/tracestore"
)

// This file is the stream-replay half of the harness: every evaluation
// and profiling entry point of confidence.go re-expressed over the
// packed correctness streams of tracestore.ConfStreams, so one stride
// predictor simulation serves the whole Figure 2 fan-out (9 thresholds ×
// 9 history lengths × 60 counter configurations per panel). Each
// replay-based function is verified bit-identical to its load-trace
// counterpart by the package's differential tests; the load-trace
// versions remain the oracle.

// EvaluateStreams replays the per-entry segments through fresh
// estimators, one per segment — exactly what Evaluate computes by
// re-simulating the stride predictor.
func EvaluateStreams(cs *tracestore.ConfStreams, newEstimator func() counters.Predictor) Result {
	var r Result
	for _, seg := range cs.Segments {
		est := newEstimator()
		n := seg.Valid.Len()
		for i := 0; i < n; i++ {
			correct := seg.Correct.At(i)
			if seg.Valid.At(i) {
				r.Accesses++
				confident := est.Predict()
				if correct {
					r.Correct++
				}
				if confident {
					r.Flagged++
					if correct {
						r.FlaggedCorrect++
					}
				}
			}
			est.Update(correct)
		}
	}
	return r
}

// EvaluateGlobalStreams replays the whole-trace streams through a single
// shared estimator, matching EvaluateGlobal.
func EvaluateGlobalStreams(cs *tracestore.ConfStreams, est counters.Predictor) Result {
	var r Result
	n := cs.Valid.Len()
	for i := 0; i < n; i++ {
		correct := cs.Correct.At(i)
		if cs.Valid.At(i) {
			r.Accesses++
			confident := est.Predict()
			if correct {
				r.Correct++
			}
			if confident {
				r.Flagged++
				if correct {
					r.FlaggedCorrect++
				}
			}
		}
		est.Update(correct)
	}
	return r
}

// EvaluateStreamsMachine is EvaluateStreams for a machine-backed
// estimator, replayed through the machine's block table: per segment,
// one ReplayGated pass scores flagged/flagged-correct 8 events per
// lookup, and accesses/correct reduce to word popcounts over the
// packed valid and correct streams. Falls back to the generic
// bit-at-a-time replay — the differential oracle — when the block
// kernel is unavailable.
func EvaluateStreamsMachine(cs *tracestore.ConfStreams, m *fsm.Machine) Result {
	t := fsm.BlockTableFor(m)
	if t == nil {
		return EvaluateStreams(cs, func() counters.Predictor { return m.NewRunner() })
	}
	var r Result
	for _, seg := range cs.Segments {
		n := seg.Valid.Len()
		cw, vw := seg.Correct.Words(), seg.Valid.Words()
		flagged, flaggedCorrect, err := t.ReplayGatedSpans(cw, vw, n, seg.Spans)
		if err != nil {
			return EvaluateStreams(cs, func() counters.Predictor { return m.NewRunner() })
		}
		r.Flagged += flagged
		r.FlaggedCorrect += flaggedCorrect
		r.Accesses += seg.Valid.Ones()
		r.Correct += onesAnd(vw, cw)
	}
	return r
}

// EvaluateStreamsFleet is EvaluateStreamsMachine batched across
// machines: the whole set replays each segment in one Fleet.ReplayGated
// pass (structurally identical machines dedup to one walk), and the
// segment popcounts for Accesses/Correct — the same for every machine —
// are computed once and shared. Falls back to per-machine evaluation
// when the block kernel is off or a machine will not compile; both
// paths are pinned together by the package's differential tests.
func EvaluateStreamsFleet(cs *tracestore.ConfStreams, machines []*fsm.Machine) []Result {
	out := make([]Result, len(machines))
	if len(machines) == 0 {
		return out
	}
	var fl *fsm.Fleet
	if fsm.BlockKernelEnabled() {
		fl, _ = fsm.NewFleet(machines)
	}
	if fl == nil {
		for i, m := range machines {
			out[i] = EvaluateStreamsMachine(cs, m)
		}
		return out
	}
	for _, seg := range cs.Segments {
		n := seg.Valid.Len()
		cw, vw := seg.Correct.Words(), seg.Valid.Words()
		flagged, flaggedCorrect, err := fl.ReplayGatedSpans(cw, vw, n, seg.Spans)
		if err != nil {
			for i, m := range machines {
				out[i] = EvaluateStreamsMachine(cs, m)
			}
			return out
		}
		accesses := seg.Valid.Ones()
		correct := onesAnd(vw, cw)
		for i := range out {
			out[i].Flagged += flagged[i]
			out[i].FlaggedCorrect += flaggedCorrect[i]
			out[i].Accesses += accesses
			out[i].Correct += correct
		}
	}
	return out
}

// onesAnd counts positions set in both packed streams (valid AND
// correct accesses; the streams have equal bit length).
func onesAnd(a, b []uint64) int {
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}

// SUDSweepStreams evaluates the Figure 2 counter configurations by
// stream replay, matching SUDSweep. Each counter is expanded into its
// explicit Moore machine (counters.SUDConfig.Machine — a saturating
// counter is just a small FSM) so the sweep rides the blocked kernel.
func SUDSweepStreams(cs *tracestore.ConfStreams) []SUDPoint {
	var out []SUDPoint
	for _, cfg := range counters.PaperSweep() {
		res := EvaluateStreamsMachine(cs, cfg.Machine())
		out = append(out, SUDPoint{Config: cfg, Result: res})
	}
	return out
}

// PerEntryModel profiles the per-entry correctness segments into one
// merged order-N Markov model, matching PerEntryCorrectnessModel's
// counts. Profiling goes through markov.Model.AddTrace, so the model
// also records each segment's warm-up prefix and therefore folds
// exactly: PerEntryModel(cs, K).FoldTo(h) equals PerEntryModel(cs, h)
// for any h ≤ K — the algebra Figure 2 uses to profile once at the
// maximum history length.
func PerEntryModel(cs *tracestore.ConfStreams, order int) *markov.Model {
	m := markov.New(order)
	for _, seg := range cs.Segments {
		m.AddTrace(seg.Correct)
	}
	return m
}

// GlobalModel profiles the whole-trace correctness stream, matching
// CorrectnessModel's counts (and foldable, like PerEntryModel).
func GlobalModel(cs *tracestore.ConfStreams, order int) *markov.Model {
	m := markov.New(order)
	m.AddTrace(cs.Correct)
	return m
}

// FSMCurveStreams designs one confidence FSM per bias threshold from the
// given per-entry correctness model and evaluates each by segment
// replay, matching FSMCurve. The whole threshold sweep is designed
// first, then scored in a single fleet pass — one trace read for the
// curve instead of one per point.
func FSMCurveStreams(model *markov.Model, thresholds []float64, cs *tracestore.ConfStreams) ([]FSMPoint, error) {
	points, err := designCurve(model, thresholds)
	if err != nil {
		return nil, err
	}
	machines := make([]*fsm.Machine, len(points))
	for i := range points {
		machines[i] = points[i].Machine
	}
	results := EvaluateStreamsFleet(cs, machines)
	for i := range points {
		points[i].Result = results[i]
	}
	return points, nil
}
