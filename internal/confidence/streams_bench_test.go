package confidence

import (
	"fmt"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/counters"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

// BenchmarkReplayGatedSpans measures the span kernel on the gated
// replay path over real load-trace correctness streams — the traffic
// EvaluateStreamsMachine drives for every Figure 2 point. Correctness
// streams are where run structure appears organically: a stride
// predictor locked onto a pattern is correct for long stretches, so
// the streams carry 25–38% coverage by ≥4-byte homogeneous runs even
// when the underlying value stream has none. The "coverage" metric
// reports the fraction of events inside indexed runs.
func BenchmarkReplayGatedSpans(b *testing.B) {
	m := counters.SUDConfig{Max: 3, Inc: 1, Dec: 1, Threshold: 2}.Machine()
	for _, name := range []string{"gcc", "go"} {
		lp, err := workload.LoadByName(name)
		if err != nil {
			b.Fatal(err)
		}
		cs := tracestore.BuildConfStreams(lp.Generate(workload.Train, 1_000_000), 4)
		var covered, total int
		for _, seg := range cs.Segments {
			covered += bitseq.RunsCovered(seg.Spans)
			total += seg.Correct.Len()
		}
		for _, span := range []bool{false, true} {
			label := "off"
			if span {
				label = "on"
			}
			b.Run(fmt.Sprintf("%s/span=%s", name, label), func(b *testing.B) {
				prev := fsm.SetSpanKernel(span)
				defer fsm.SetSpanKernel(prev)
				b.SetBytes(int64(total) / 8)
				b.ReportMetric(float64(covered)/float64(total), "coverage")
				for i := 0; i < b.N; i++ {
					EvaluateStreamsMachine(cs, m)
				}
			})
		}
	}
}
