package confidence

import (
	"testing"

	"fsmpredict/internal/counters"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/vpred"
	"fsmpredict/internal/workload"
)

func loadTrace(t *testing.T, name string, v workload.Variant, n int) []trace.LoadEvent {
	t.Helper()
	p, err := workload.LoadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.Generate(v, n)
}

func TestResultMetrics(t *testing.T) {
	r := Result{Accesses: 100, Correct: 50, Flagged: 40, FlaggedCorrect: 36}
	if r.Accuracy() != 0.9 {
		t.Errorf("Accuracy = %v, want 0.9", r.Accuracy())
	}
	if r.Coverage() != 0.72 {
		t.Errorf("Coverage = %v, want 0.72", r.Coverage())
	}
	empty := Result{}
	if empty.Accuracy() != 1 || empty.Coverage() != 0 {
		t.Error("empty result should be vacuously accurate with zero coverage")
	}
}

func TestEvaluateAlwaysConfident(t *testing.T) {
	loads := loadTrace(t, "gcc", workload.Train, 20000)
	r := Evaluate(loads, vpred.TableLog2Default, func() counters.Predictor {
		return counters.Static(true)
	})
	if r.Flagged != r.Accesses {
		t.Errorf("always-confident flagged %d of %d", r.Flagged, r.Accesses)
	}
	if r.Coverage() != 1 {
		t.Errorf("always-confident coverage = %v, want 1", r.Coverage())
	}
	// Its accuracy equals the raw value-prediction correctness rate.
	want := float64(r.Correct) / float64(r.Accesses)
	if r.Accuracy() != want {
		t.Errorf("accuracy = %v, want %v", r.Accuracy(), want)
	}
}

func TestEvaluateNeverConfident(t *testing.T) {
	loads := loadTrace(t, "gcc", workload.Train, 5000)
	r := Evaluate(loads, 11, func() counters.Predictor {
		return counters.Static(false)
	})
	if r.Flagged != 0 || r.Coverage() != 0 || r.Accuracy() != 1 {
		t.Errorf("never-confident result = %+v", r)
	}
}

func TestCorrectnessTraceMatchesEvaluate(t *testing.T) {
	loads := loadTrace(t, "perl", workload.Train, 20000)
	bits := CorrectnessTrace(loads, 11)
	if len(bits) != len(loads) {
		t.Fatalf("trace length %d, want %d", len(bits), len(loads))
	}
	correct := 0
	for _, b := range bits {
		if b {
			correct++
		}
	}
	r := Evaluate(loads, 11, func() counters.Predictor {
		return counters.Static(true)
	})
	if correct != r.Correct {
		t.Errorf("correctness trace has %d corrects, Evaluate saw %d", correct, r.Correct)
	}
}

func TestSUDSweepTradeoff(t *testing.T) {
	loads := loadTrace(t, "gcc", workload.Train, 40000)
	points := SUDSweep(loads, 11)
	if len(points) < 50 {
		t.Fatalf("sweep produced %d points", len(points))
	}
	// The sweep must span a real tradeoff: some high-coverage points and
	// some high-accuracy points.
	var maxCov, maxAcc float64
	for _, p := range points {
		if c := p.Result.Coverage(); c > maxCov {
			maxCov = c
		}
		if a := p.Result.Accuracy(); a > maxAcc {
			maxAcc = a
		}
	}
	if maxCov < 0.5 {
		t.Errorf("max coverage = %v, want >= 0.5", maxCov)
	}
	if maxAcc < 0.8 {
		t.Errorf("max accuracy = %v, want >= 0.8", maxAcc)
	}
}

func TestFSMCurveThresholdTradeoff(t *testing.T) {
	train := loadTrace(t, "gcc", workload.Train, 60000)
	test := loadTrace(t, "gcc", workload.Test, 40000)
	model := PerEntryCorrectnessModel(train, 11, 6)
	points, err := FSMCurve(model, []float64{0.5, 0.9, 0.99}, test, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("curve has %d points", len(points))
	}
	// Raising the threshold must not increase coverage and must not
	// decrease accuracy (within noise allow equality).
	for i := 1; i < len(points); i++ {
		if points[i].Result.Coverage() > points[i-1].Result.Coverage()+0.02 {
			t.Errorf("coverage increased with threshold: %v -> %v",
				points[i-1].Result.Coverage(), points[i].Result.Coverage())
		}
	}
	if points[2].Result.Accuracy() < points[0].Result.Accuracy()-0.02 {
		t.Errorf("accuracy fell with threshold: %v -> %v",
			points[0].Result.Accuracy(), points[2].Result.Accuracy())
	}
}

// TestFSMBeatsSUDOnPatternedLoads is the Figure 2 headline claim at small
// scale: on pattern-structured correctness the cross-trained FSM reaches
// coverage no saturating counter can match at comparable accuracy.
func TestFSMBeatsSUDOnPatternedLoads(t *testing.T) {
	// Cross-training: model from the other four programs, evaluate gcc.
	suite := workload.LoadSuite()
	crossModel := markov.New(6)
	var evalLoads []trace.LoadEvent
	for _, p := range suite {
		loads := p.Generate(workload.Train, 50000)
		if p.Name == "gcc" {
			evalLoads = p.Generate(workload.Test, 50000)
			continue
		}
		if err := crossModel.Merge(PerEntryCorrectnessModel(loads, 11, 6)); err != nil {
			t.Fatal(err)
		}
	}

	fsmPoints, err := FSMCurve(crossModel, DefaultThresholds(), evalLoads, 11)
	if err != nil {
		t.Fatal(err)
	}
	sudPoints := SUDSweep(evalLoads, 11)

	// For a mid-range accuracy target, compare best coverages.
	const target = 0.75
	bestAt := func(cov func(Result) float64, results []Result) float64 {
		best := -1.0
		for _, r := range results {
			if r.Accuracy() >= target && cov(r) > best {
				best = cov(r)
			}
		}
		return best
	}
	var fsmResults, sudResults []Result
	for _, p := range fsmPoints {
		fsmResults = append(fsmResults, p.Result)
	}
	for _, p := range sudPoints {
		sudResults = append(sudResults, p.Result)
	}
	fsmCov := bestAt(Result.Coverage, fsmResults)
	sudCov := bestAt(Result.Coverage, sudResults)
	if fsmCov < 0 {
		t.Fatal("no FSM point reaches the target accuracy")
	}
	if sudCov >= 0 && fsmCov <= sudCov {
		t.Errorf("FSM coverage %v should beat SUD coverage %v at accuracy >= %v",
			fsmCov, sudCov, target)
	}
}

func TestFSMCurveDefaultThresholds(t *testing.T) {
	loads := loadTrace(t, "li", workload.Train, 20000)
	model := PerEntryCorrectnessModel(loads, 11, 4)
	points, err := FSMCurve(model, nil, loads, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultThresholds()) {
		t.Fatalf("points = %d, want %d", len(points), len(DefaultThresholds()))
	}
	for _, p := range points {
		if p.Machine == nil || p.Machine.NumStates() == 0 {
			t.Error("missing machine in FSM point")
		}
	}
}

func TestCorrectnessModelOrder(t *testing.T) {
	loads := loadTrace(t, "go", workload.Train, 5000)
	m := CorrectnessModel(loads, 11, 7)
	if m.Order() != 7 {
		t.Errorf("order = %d, want 7", m.Order())
	}
	if m.Total() == 0 {
		t.Error("empty model")
	}
}

func TestFSMCurveGlobalProtocol(t *testing.T) {
	// The paper-literal protocol: one FSM trained on the global
	// interleaved correctness stream, deployed as a single shared
	// estimator. Training and deployment views match, so the curve must
	// show a real coverage/accuracy tradeoff.
	train := loadTrace(t, "perl", workload.Train, 50000)
	test := loadTrace(t, "perl", workload.Test, 40000)
	model := CorrectnessModel(train, 11, 6)
	points, err := FSMCurveGlobal(model, []float64{0.5, 0.8, 0.95}, test, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	base := EvaluateGlobal(test, 11, counters.Static(true))
	mid := points[0].Result
	if mid.Flagged == 0 {
		t.Fatal("global FSM flagged nothing at threshold 0.5")
	}
	if mid.Accuracy() < base.Accuracy()-1e-9 {
		t.Errorf("global FSM accuracy %.3f below the base correctness rate %.3f",
			mid.Accuracy(), base.Accuracy())
	}
	for i := 1; i < len(points); i++ {
		if points[i].Result.Coverage() > points[i-1].Result.Coverage()+0.02 {
			t.Errorf("coverage should not rise with threshold: %.3f -> %.3f",
				points[i-1].Result.Coverage(), points[i].Result.Coverage())
		}
	}
}

func TestEvaluateGlobalCounts(t *testing.T) {
	loads := loadTrace(t, "li", workload.Train, 10000)
	r := EvaluateGlobal(loads, 11, counters.Static(true))
	if r.Flagged != r.Accesses || r.Coverage() != 1 {
		t.Errorf("always-confident global result wrong: %+v", r)
	}
}
