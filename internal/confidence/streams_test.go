package confidence

import (
	"testing"

	"fsmpredict/internal/counters"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/trace"
	"fsmpredict/internal/tracestore"
	"fsmpredict/internal/workload"
)

const (
	streamTestEvents = 20000
	streamTestLog2   = 6
)

func streamFixtures(t *testing.T) ([]trace.LoadEvent, *tracestore.ConfStreams) {
	t.Helper()
	p, err := workload.LoadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	loads := tracestore.Shared.Loads(p, workload.Test, streamTestEvents)
	cs := tracestore.Shared.ConfStreams(p, workload.Test, streamTestEvents, streamTestLog2)
	return loads, cs
}

// TestStreamsMatchTrace checks the packed streams reproduce the trace
// simulation exactly: same load count, and global bits matching a fresh
// correctness trace.
func TestStreamsMatchTrace(t *testing.T) {
	loads, cs := streamFixtures(t)
	if cs.Loads() != len(loads) {
		t.Fatalf("streams cover %d loads, trace has %d", cs.Loads(), len(loads))
	}
	want := CorrectnessTrace(loads, streamTestLog2)
	for i, w := range want {
		if cs.Correct.At(i) != w {
			t.Fatalf("global correctness bit %d = %v, want %v", i, cs.Correct.At(i), w)
		}
	}
	var segLoads int
	for _, seg := range cs.Segments {
		if seg.Valid.Len() != seg.Correct.Len() {
			t.Fatal("segment valid/correct length mismatch")
		}
		for i := 0; i < seg.Correct.Len(); i++ {
			if seg.Correct.At(i) && !seg.Valid.At(i) {
				t.Fatal("correct bit set on invalid access")
			}
		}
		segLoads += seg.Valid.Len()
	}
	if segLoads != len(loads) {
		t.Fatalf("segments cover %d loads, trace has %d", segLoads, len(loads))
	}
}

// TestEvaluateStreamsMatchesEvaluate is the central differential test:
// per-entry stream replay must be tally-for-tally identical to the
// stride-predictor re-simulation for both counter estimators and FSM
// runners.
func TestEvaluateStreamsMatchesEvaluate(t *testing.T) {
	loads, cs := streamFixtures(t)
	for _, cfg := range counters.PaperSweep()[:8] {
		cfg := cfg
		mk := func() counters.Predictor { return counters.NewSUD(cfg) }
		want := Evaluate(loads, streamTestLog2, mk)
		got := EvaluateStreams(cs, mk)
		if got != want {
			t.Fatalf("config %+v: stream result %+v, trace result %+v", cfg, got, want)
		}
	}
}

// TestSUDSweepStreamsMatches covers the full counter sweep.
func TestSUDSweepStreamsMatches(t *testing.T) {
	loads, cs := streamFixtures(t)
	want := SUDSweep(loads, streamTestLog2)
	got := SUDSweepStreams(cs)
	if len(got) != len(want) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Config != want[i].Config || got[i].Result != want[i].Result {
			t.Fatalf("sweep point %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestEvaluateStreamsMachineMatches is the block-kernel differential
// test: the gated byte-blocked replay must be tally-for-tally
// identical to the generic per-bit estimator replay, for both counter
// machines and the scalar fallback with the kernel disabled.
func TestEvaluateStreamsMachineMatches(t *testing.T) {
	_, cs := streamFixtures(t)
	for _, cfg := range counters.PaperSweep()[:12] {
		cfg := cfg
		m := cfg.Machine()
		want := EvaluateStreams(cs, func() counters.Predictor { return m.NewRunner() })
		if got := EvaluateStreamsMachine(cs, m); got != want {
			t.Fatalf("config %v: blocked %+v, generic %+v", cfg, got, want)
		}
		// The counter itself and its machine expansion must agree too.
		asCounter := EvaluateStreams(cs, func() counters.Predictor { return counters.NewSUD(cfg) })
		if asCounter != want {
			t.Fatalf("config %v: SUD %+v, machine runner %+v", cfg, asCounter, want)
		}
	}
	prev := fsm.SetBlockKernel(false)
	defer fsm.SetBlockKernel(prev)
	cfg := counters.PaperSweep()[0]
	m := cfg.Machine()
	want := EvaluateStreams(cs, func() counters.Predictor { return m.NewRunner() })
	if got := EvaluateStreamsMachine(cs, m); got != want {
		t.Fatalf("kernel off: %+v, want %+v", got, want)
	}
}

// TestEvaluateStreamsFleetMatches pins the batched fleet replay to the
// per-machine path: every machine of a mixed set (counter machines,
// including structural duplicates) must score exactly as it does alone,
// with the kernel on and off.
func TestEvaluateStreamsFleetMatches(t *testing.T) {
	_, cs := streamFixtures(t)
	var machines []*fsm.Machine
	for _, cfg := range counters.PaperSweep()[:6] {
		machines = append(machines, cfg.Machine())
	}
	// A structural duplicate: dedup must not change its result.
	machines = append(machines, counters.PaperSweep()[0].Machine())
	check := func(label string) {
		t.Helper()
		got := EvaluateStreamsFleet(cs, machines)
		if len(got) != len(machines) {
			t.Fatalf("%s: %d results for %d machines", label, len(got), len(machines))
		}
		for i, m := range machines {
			if want := EvaluateStreamsMachine(cs, m); got[i] != want {
				t.Fatalf("%s: machine %d fleet %+v, solo %+v", label, i, got[i], want)
			}
		}
		if got[0] != got[len(got)-1] {
			t.Fatalf("%s: duplicate machines disagree: %+v vs %+v", label, got[0], got[len(got)-1])
		}
	}
	check("kernel on")
	prev := fsm.SetBlockKernel(false)
	defer fsm.SetBlockKernel(prev)
	check("kernel off")
}

// TestEvaluateStreamsMachineAllocs guards the blocked replay's
// steady-state loop: after the table is cached, a full evaluation
// allocates nothing.
func TestEvaluateStreamsMachineAllocs(t *testing.T) {
	_, cs := streamFixtures(t)
	m := counters.PaperSweep()[0].Machine()
	EvaluateStreamsMachine(cs, m) // warm the table cache
	if avg := testing.AllocsPerRun(10, func() { EvaluateStreamsMachine(cs, m) }); avg != 0 {
		t.Errorf("EvaluateStreamsMachine allocates %.1f per run, want 0", avg)
	}
}

// TestEvaluateGlobalStreamsMatches checks the shared-estimator replay.
func TestEvaluateGlobalStreamsMatches(t *testing.T) {
	loads, cs := streamFixtures(t)
	cfg := counters.PaperSweep()[0]
	want := EvaluateGlobal(loads, streamTestLog2, counters.NewSUD(cfg))
	got := EvaluateGlobalStreams(cs, counters.NewSUD(cfg))
	if got != want {
		t.Fatalf("global stream result %+v, trace result %+v", got, want)
	}
}

// modelCountsEqual compares two models' tallies, ignoring warm-up
// records (the legacy trace-walking profilers do not keep them).
func modelCountsEqual(a, b *markov.Model) bool {
	if a.Order() != b.Order() || a.Distinct() != b.Distinct() {
		return false
	}
	equal := true
	a.Each(func(h uint32, c markov.Count) {
		if b.Count(h) != c {
			equal = false
		}
	})
	return equal
}

// TestPerEntryModelMatches checks stream profiling reproduces the
// per-entry correctness model at several orders, and that the folded
// wide model matches direct profiling at every shorter order — the
// identity Figure 2's fold-once pipeline rests on.
func TestPerEntryModelMatches(t *testing.T) {
	loads, cs := streamFixtures(t)
	const maxOrder = 10
	wide := PerEntryModel(cs, maxOrder)
	for _, order := range []int{1, 3, 6, maxOrder} {
		want := PerEntryCorrectnessModel(loads, streamTestLog2, order)
		direct := PerEntryModel(cs, order)
		if !modelCountsEqual(direct, want) {
			t.Fatalf("order %d: stream model counts differ from trace model", order)
		}
		folded, err := wide.FoldTo(order)
		if err != nil {
			t.Fatal(err)
		}
		if !modelCountsEqual(folded, want) {
			t.Fatalf("order %d: folded order-%d model differs from direct profiling", order, maxOrder)
		}
	}
	want := CorrectnessModel(loads, streamTestLog2, 4)
	if !modelCountsEqual(GlobalModel(cs, 4), want) {
		t.Fatal("global stream model counts differ from trace model")
	}
}

// TestFSMCurveStreamsMatches checks the FSM curve — the expensive inner
// loop of Figure 2 — point for point.
func TestFSMCurveStreamsMatches(t *testing.T) {
	loads, cs := streamFixtures(t)
	model := PerEntryCorrectnessModel(loads, streamTestLog2, 4)
	thresholds := []float64{0.5, 0.8, 0.99}
	want, err := FSMCurve(model, thresholds, loads, streamTestLog2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FSMCurveStreams(model, thresholds, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("curve lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Threshold != want[i].Threshold || got[i].Result != want[i].Result {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, got[i].Result, want[i].Result)
		}
		if got[i].Machine.NumStates() != want[i].Machine.NumStates() {
			t.Fatalf("curve point %d machine sizes differ", i)
		}
	}
}
