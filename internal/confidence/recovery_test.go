package confidence

import (
	"testing"

	"fsmpredict/internal/counters"
	"fsmpredict/internal/vpred"
	"fsmpredict/internal/workload"
)

func TestEvaluateValueMatchesEvaluateForStride(t *testing.T) {
	prog, _ := workload.LoadByName("gcc")
	loads := prog.Generate(workload.Train, 30000)
	mk := func() counters.Predictor { return counters.NewTwoBit() }
	a := Evaluate(loads, 11, mk)
	b := EvaluateValue(vpred.New(11), loads, mk)
	if a != b {
		t.Fatalf("EvaluateValue(stride) = %+v, Evaluate = %+v", b, a)
	}
}

func TestEvaluateValueOtherFamilies(t *testing.T) {
	prog, _ := workload.LoadByName("perl")
	loads := prog.Generate(workload.Train, 30000)
	for _, p := range []vpred.ValuePredictor{
		vpred.NewLastValue(11),
		vpred.NewContext(11, 3),
		vpred.NewHybrid(11, 3),
	} {
		r := EvaluateValue(p, loads, func() counters.Predictor {
			return counters.NewResetting(8, 6)
		})
		if r.Accesses == 0 {
			t.Errorf("%s: no accesses evaluated", p.Name())
		}
		if r.Accuracy() < float64(r.Correct)/float64(r.Accesses)-1e-9 {
			t.Errorf("%s: confidence should not reduce accuracy below base rate", p.Name())
		}
	}
}

func TestRecoveryBenefitArithmetic(t *testing.T) {
	r := Result{Accesses: 100, Correct: 60, Flagged: 50, FlaggedCorrect: 45}
	squash := SquashRecovery()
	// 45*2 - 5*9 = 45 cycles over 100 accesses.
	if got := squash.Benefit(r); got != 0.45 {
		t.Errorf("squash benefit = %v, want 0.45", got)
	}
	reexec := ReexecRecovery()
	// 45*2 - 5*1 = 85 over 100.
	if got := reexec.Benefit(r); got != 0.85 {
		t.Errorf("reexec benefit = %v, want 0.85", got)
	}
	if (RecoveryModel{}).Benefit(Result{}) != 0 {
		t.Error("empty result should have zero benefit")
	}
}

// TestRecoveryModelsPreferDifferentOperatingPoints encodes §6.2: across
// a confidence threshold sweep, squash recovery's best operating point
// is at least as accurate (and typically less covering) than
// re-execution's.
func TestRecoveryModelsPreferDifferentOperatingPoints(t *testing.T) {
	prog, _ := workload.LoadByName("gcc")
	train := prog.Generate(workload.Train, 60000)
	test := prog.Generate(workload.Test, 40000)
	model := PerEntryCorrectnessModel(train, 11, 6)
	points, err := FSMCurve(model, DefaultThresholds(), test, 11)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]Result, len(points))
	for i, p := range points {
		results[i] = p.Result
	}
	si := SquashRecovery().BestOperatingPoint(results)
	ri := ReexecRecovery().BestOperatingPoint(results)
	if si < 0 || ri < 0 {
		t.Fatal("no operating points")
	}
	if results[si].Accuracy() < results[ri].Accuracy()-1e-9 {
		t.Errorf("squash best accuracy %.3f below reexec best accuracy %.3f",
			results[si].Accuracy(), results[ri].Accuracy())
	}
	if results[si].Coverage() > results[ri].Coverage()+1e-9 {
		t.Errorf("squash best coverage %.3f above reexec best %.3f",
			results[si].Coverage(), results[ri].Coverage())
	}
	// Both mechanisms should profit from value prediction at their best
	// operating points.
	if SquashRecovery().Benefit(results[si]) <= 0 {
		t.Error("squash recovery best point should be profitable")
	}
	if ReexecRecovery().Benefit(results[ri]) <= 0 {
		t.Error("reexec recovery best point should be profitable")
	}
}

func TestBestOperatingPointEmpty(t *testing.T) {
	if SquashRecovery().BestOperatingPoint(nil) != -1 {
		t.Error("empty slice should give -1")
	}
}
