// Package bitseq provides the basic bit-level vocabulary shared by the FSM
// predictor design flow: compact binary sequences (Bits), fixed-width
// sliding history registers (History), and three-valued 0/1/x patterns
// (Cube).
//
// Conventions used throughout the module:
//
//   - A history of width W is stored in the low W bits of an unsigned
//     integer with the MOST RECENT input in bit 0 (the LSB). Pushing a new
//     input b therefore computes h' = ((h << 1) | b) & mask.
//   - The string form of histories and cubes is written OLDEST FIRST, the
//     way the paper writes patterns such as "1x" (a one, then anything).
//     String index 0 corresponds to integer bit W-1.
package bitseq

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bits is an append-only sequence of bits, stored packed. The zero value is
// an empty, ready-to-use sequence.
type Bits struct {
	words []uint64
	n     int
}

// FromString parses a sequence such as "0000 1000 1011"; spaces, tabs and
// underscores are ignored. It returns an error on any other character.
func FromString(s string) (*Bits, error) {
	b := &Bits{}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			b.Append(false)
		case '1':
			b.Append(true)
		case ' ', '\t', '\n', '\r', '_':
		default:
			return nil, fmt.Errorf("bitseq: invalid character %q at offset %d", s[i], i)
		}
	}
	return b, nil
}

// MustFromString is FromString but panics on error. Intended for tests and
// literals.
func MustFromString(s string) *Bits {
	b, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return b
}

// FromWords builds a sequence of n bits over a packed word slice (bit i
// of the sequence in bit i%64 of words[i/64], the layout Words exposes).
// The slice is adopted, not copied — the caller must not reuse it — and
// bits at n and beyond are cleared, restoring the zero-padding invariant
// the packed kernels rely on. It panics if words is too short for n.
func FromWords(words []uint64, n int) *Bits {
	if n < 0 || (n+63)/64 > len(words) {
		panic(fmt.Sprintf("bitseq: %d words cannot hold %d bits", len(words), n))
	}
	words = words[:(n+63)/64]
	if rem := uint(n % 64); rem != 0 {
		words[len(words)-1] &= (1 << rem) - 1
	}
	return &Bits{words: words, n: n}
}

// FromBools builds a sequence from a slice of booleans.
func FromBools(vs []bool) *Bits {
	b := &Bits{}
	for _, v := range vs {
		b.Append(v)
	}
	return b
}

// Append adds one bit to the end of the sequence.
func (b *Bits) Append(v bool) {
	w, off := b.n/64, uint(b.n%64)
	if w == len(b.words) {
		b.words = append(b.words, 0)
	}
	if v {
		b.words[w] |= 1 << off
	}
	b.n++
}

// AppendBit adds 0 or 1; any nonzero value counts as 1.
func (b *Bits) AppendBit(v int) { b.Append(v != 0) }

// Len reports the number of bits in the sequence.
func (b *Bits) Len() int { return b.n }

// At returns bit i (0 = first appended). It panics if i is out of range.
func (b *Bits) At(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitseq: index %d out of range [0,%d)", i, b.n))
	}
	return b.words[i/64]>>(uint(i%64))&1 == 1
}

// Bit returns bit i as 0 or 1.
func (b *Bits) Bit(i int) int {
	if b.At(i) {
		return 1
	}
	return 0
}

// Uint64At returns w bits starting at position i as an integer, with bit
// i of the sequence in bit 0 of the result. It panics unless
// 0 <= i <= i+w <= Len() and 0 <= w <= 64. Window reads are the packed
// counterpart of re-scanning a trace: extracting an order-N history is
// two word reads instead of N appends.
func (b *Bits) Uint64At(i, w int) uint64 {
	if w < 0 || w > 64 {
		panic(fmt.Sprintf("bitseq: window width %d out of range [0,64]", w))
	}
	if i < 0 || i+w > b.n {
		panic(fmt.Sprintf("bitseq: window [%d,%d) out of range [0,%d)", i, i+w, b.n))
	}
	if w == 0 {
		return 0
	}
	word, off := i/64, uint(i%64)
	v := b.words[word] >> off
	if rem := 64 - int(off); rem < w {
		v |= b.words[word+1] << uint(rem)
	}
	if w == 64 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

// Ones counts the set bits. Append never sets bits past Len, so the
// count is a word-level popcount rather than a per-bit scan.
func (b *Bits) Ones() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Words exposes the packed backing store: bit i of the sequence is
// words()[i/64] >> (i%64) & 1, and every bit at position Len() or above
// is zero. The slice is shared, not copied — callers must treat it as
// read-only. It is the input format of the fsm block-table kernels,
// which consume the sequence a byte at a time.
func (b *Bits) Words() []uint64 { return b.words }

// String renders the sequence as a string of '0' and '1' in append order.
func (b *Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.At(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Bools returns the sequence as a fresh slice of booleans.
func (b *Bits) Bools() []bool {
	out := make([]bool, b.n)
	for i := range out {
		out[i] = b.At(i)
	}
	return out
}

// Clone returns an independent copy of the sequence.
func (b *Bits) Clone() *Bits {
	return &Bits{words: append([]uint64(nil), b.words...), n: b.n}
}

// History is a fixed-width sliding register over {0,1}. The most recent
// input occupies bit 0. Seen reports how many inputs have been pushed so
// far, which lets callers distinguish the undefined start-up period.
type History struct {
	Width int
	value uint32
	seen  int
}

// NewHistory returns a history register of the given width (1..32).
func NewHistory(width int) *History {
	if width < 1 || width > 32 {
		panic(fmt.Sprintf("bitseq: history width %d out of range [1,32]", width))
	}
	return &History{Width: width}
}

// Push shifts in one input bit and returns the new register value.
func (h *History) Push(b bool) uint32 {
	h.value = (h.value<<1 | boolBit(b)) & h.Mask()
	h.seen++
	return h.value
}

// Value returns the current register contents (low Width bits).
func (h *History) Value() uint32 { return h.value }

// Seen reports how many bits have been pushed since creation or Reset.
func (h *History) Seen() int { return h.seen }

// Warm reports whether at least Width bits have been pushed, i.e. the
// register no longer contains undefined start-up zeros.
func (h *History) Warm() bool { return h.seen >= h.Width }

// Mask returns the bit mask covering the register width.
func (h *History) Mask() uint32 {
	return uint32(1)<<uint(h.Width) - 1
}

// Reset clears the register and the seen counter.
func (h *History) Reset() { h.value, h.seen = 0, 0 }

// String renders the register oldest-first ("x" for positions not yet
// pushed).
func (h *History) String() string {
	var sb strings.Builder
	for i := h.Width - 1; i >= 0; i-- {
		switch {
		case i >= h.seen && h.seen < h.Width:
			sb.WriteByte('x')
		case h.value>>uint(i)&1 == 1:
			sb.WriteByte('1')
		default:
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// HistoryString renders a W-bit history value oldest-first, e.g.
// HistoryString(0b10, 2) == "10" (a 1 followed by a 0, the 0 most recent).
func HistoryString(h uint32, width int) string {
	var sb strings.Builder
	for i := width - 1; i >= 0; i-- {
		if h>>uint(i)&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParseHistory parses an oldest-first history string of '0'/'1' into its
// integer value.
func ParseHistory(s string) (uint32, error) {
	if len(s) == 0 || len(s) > 32 {
		return 0, fmt.Errorf("bitseq: history length %d out of range [1,32]", len(s))
	}
	var v uint32
	for i := 0; i < len(s); i++ {
		v <<= 1
		switch s[i] {
		case '1':
			v |= 1
		case '0':
		default:
			return 0, fmt.Errorf("bitseq: invalid history character %q", s[i])
		}
	}
	return v, nil
}
