package bitseq

// Run scanning: the span kernel's view of a packed stream. Real branch
// streams are massively biased — loop back-edges and guard branches
// emit long homogeneous stretches of taken/not-taken — and an FSM's
// transition functions form a monoid, so a run of k identical outcome
// bytes can be closed over in O(log k) composed lookups instead of k.
// This file finds those runs: maximal stretches of 0x00/0xFF bytes in a
// packed word stream, byte-aligned so the fsm kernels can hand them to
// their power tables without re-examining the words. Scanning is
// word-level (one comparison per 64 events on homogeneous stretches)
// and runs once per trace; the index is tiny next to the stream for any
// realistically biased input.

// DefaultMinRunBytes is the shortest run worth indexing: below four
// bytes the power-table walk saves at most two lookups over the plain
// byte loop, not worth a run entry's index-walk overhead or its 12
// bytes of index memory on near-random streams.
const DefaultMinRunBytes = 4

// Run is one maximal homogeneous stretch of a packed outcome stream.
type Run struct {
	// Start is the stretch's first event position, always a multiple
	// of 8 (runs are whole-byte stretches).
	Start int32
	// Bytes is the stretch length in whole 8-event bytes.
	Bytes int32
	// One reports the repeated outcome bit (true = every event taken).
	One bool
}

// End returns the event position just past the run.
func (r Run) End() int { return int(r.Start) + int(r.Bytes)<<3 }

// Runs scans the first n events of a packed word stream (bit i of the
// sequence in words[i/64]>>(i%64), the Bits.Words layout) and returns
// every maximal run of homogeneous bytes at least minBytes long, in
// ascending position order. Only whole bytes are scanned — a ragged
// sub-byte tail past n&^7 never joins a run — so every returned run
// lies within [0, n&^7). minBytes below one is treated as one.
func Runs(words []uint64, n, minBytes int) []Run {
	if minBytes < 1 {
		minBytes = 1
	}
	nb := n >> 3
	if max := len(words) << 3; nb > max {
		nb = max
	}
	var out []Run
	start, length := 0, 0 // current stretch, in bytes
	var one bool
	flush := func() {
		if length >= minBytes {
			out = append(out, Run{Start: int32(start << 3), Bytes: int32(length), One: one})
		}
		length = 0
	}
	extend := func(j int, v bool) {
		if length > 0 && one != v {
			flush()
		}
		if length == 0 {
			start, one = j, v
		}
	}
	for j := 0; j < nb; {
		if j&7 == 0 && j+8 <= nb {
			switch w := words[j>>3]; w {
			case 0:
				extend(j, false)
				length += 8
				j += 8
				continue
			case ^uint64(0):
				extend(j, true)
				length += 8
				j += 8
				continue
			}
		}
		switch b := uint8(words[j>>3] >> uint((j&7)<<3)); b {
		case 0x00, 0xFF:
			extend(j, b == 0xFF)
			length++
		default:
			flush()
		}
		j++
	}
	flush()
	return out
}

// RunAt reports the maximal homogeneous byte run starting at event
// position i of the packed stream: the run length in whole bytes (zero
// when the byte at i is mixed or no whole byte remains below n) and the
// repeated bit value. i must be byte-aligned and non-negative.
func RunAt(words []uint64, i, n int) (bytes int, one bool) {
	if i < 0 || i&7 != 0 {
		panic("bitseq: RunAt position must be byte-aligned and non-negative")
	}
	nb := n >> 3
	if max := len(words) << 3; nb > max {
		nb = max
	}
	j := i >> 3
	if j >= nb {
		return 0, false
	}
	b := uint8(words[j>>3] >> uint((j&7)<<3))
	if b != 0x00 && b != 0xFF {
		return 0, false
	}
	one = b == 0xFF
	var want uint64
	if one {
		want = ^uint64(0)
	}
	k := j + 1
	for k < nb {
		if k&7 == 0 && k+8 <= nb && words[k>>3] == want {
			k += 8
			continue
		}
		if uint8(words[k>>3]>>uint((k&7)<<3)) != uint8(want) {
			break
		}
		k++
	}
	return k - j, one
}

// RunsCovered sums the events the runs span — the numerator of a skip
// ratio against the stream length.
func RunsCovered(runs []Run) int {
	c := 0
	for _, r := range runs {
		c += int(r.Bytes) << 3
	}
	return c
}
