package bitseq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromStringRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", ""},
		{"0", "0"},
		{"1", "1"},
		{"0000 1000 1011 1101 1110 1111", "000010001011110111101111"},
		{"01_10", "0110"},
	}
	for _, c := range cases {
		b, err := FromString(c.in)
		if err != nil {
			t.Fatalf("FromString(%q): %v", c.in, err)
		}
		if got := b.String(); got != c.want {
			t.Errorf("FromString(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFromStringInvalid(t *testing.T) {
	for _, s := range []string{"2", "01a", "0,1"} {
		if _, err := FromString(s); err == nil {
			t.Errorf("FromString(%q): expected error", s)
		}
	}
}

func TestBitsAppendAt(t *testing.T) {
	b := &Bits{}
	// Cross the word boundary to exercise packing.
	want := make([]bool, 200)
	for i := range want {
		want[i] = i%3 == 0 || i%7 == 0
		b.Append(want[i])
	}
	if b.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(want))
	}
	for i, w := range want {
		if b.At(i) != w {
			t.Fatalf("At(%d) = %v, want %v", i, b.At(i), w)
		}
	}
}

func TestBitsOnes(t *testing.T) {
	b := MustFromString("10110001")
	if got := b.Ones(); got != 4 {
		t.Errorf("Ones = %d, want 4", got)
	}
	if got := b.Bit(0); got != 1 {
		t.Errorf("Bit(0) = %d, want 1", got)
	}
	if got := b.Bit(1); got != 0 {
		t.Errorf("Bit(1) = %d, want 0", got)
	}
}

func TestBitsClone(t *testing.T) {
	b := MustFromString("1010")
	c := b.Clone()
	c.Append(true)
	if b.Len() != 4 || c.Len() != 5 {
		t.Fatalf("clone not independent: %d vs %d", b.Len(), c.Len())
	}
}

func TestBitsAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range At")
		}
	}()
	MustFromString("1").At(1)
}

func TestBitsRoundTripQuick(t *testing.T) {
	f := func(vs []bool) bool {
		b := FromBools(vs)
		got := b.Bools()
		if len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistoryPush(t *testing.T) {
	h := NewHistory(3)
	if h.Warm() {
		t.Fatal("new history should not be warm")
	}
	// Push 1,0,1 -> oldest-first "101" -> value 0b101.
	h.Push(true)
	h.Push(false)
	v := h.Push(true)
	if v != 0b101 {
		t.Fatalf("value = %03b, want 101", v)
	}
	if !h.Warm() {
		t.Fatal("history should be warm after Width pushes")
	}
	// Push 1 -> window slides to "011".
	if v := h.Push(true); v != 0b011 {
		t.Fatalf("value = %03b, want 011", v)
	}
	if got := h.String(); got != "011" {
		t.Fatalf("String = %q, want 011", got)
	}
}

func TestHistoryStartupString(t *testing.T) {
	h := NewHistory(4)
	h.Push(true)
	if got := h.String(); got != "xxx1" {
		t.Fatalf("String = %q, want xxx1", got)
	}
}

func TestHistoryReset(t *testing.T) {
	h := NewHistory(2)
	h.Push(true)
	h.Push(true)
	h.Reset()
	if h.Value() != 0 || h.Seen() != 0 || h.Warm() {
		t.Fatal("Reset did not clear state")
	}
}

func TestHistoryWidthPanics(t *testing.T) {
	for _, w := range []int{0, 33, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistory(%d): expected panic", w)
				}
			}()
			NewHistory(w)
		}()
	}
}

func TestHistoryStringRoundTrip(t *testing.T) {
	f := func(v uint32, wraw uint8) bool {
		w := int(wraw%32) + 1
		v &= uint32(1)<<uint(w) - 1
		s := HistoryString(v, w)
		got, err := ParseHistory(s)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseHistoryErrors(t *testing.T) {
	for _, s := range []string{"", "012", "abc", "111111111111111111111111111111111"} {
		if _, err := ParseHistory(s); err == nil {
			t.Errorf("ParseHistory(%q): expected error", s)
		}
	}
}

func TestCubeParseString(t *testing.T) {
	cases := []string{"1x", "0x1x", "0xx1x", "0", "1", "xxxx", "101", "x-X"}
	wants := []string{"1x", "0x1x", "0xx1x", "0", "1", "xxxx", "101", "xxx"}
	for i, s := range cases {
		c, err := ParseCube(s)
		if err != nil {
			t.Fatalf("ParseCube(%q): %v", s, err)
		}
		if got := c.String(); got != wants[i] {
			t.Errorf("ParseCube(%q).String() = %q, want %q", s, got, wants[i])
		}
	}
}

func TestCubeMatches(t *testing.T) {
	// "1x": oldest bit is 1. Width 2, so histories 10 (0b10) and 11 (0b11).
	c := MustParseCube("1x")
	for h, want := range map[uint32]bool{0b00: false, 0b01: false, 0b10: true, 0b11: true} {
		if got := c.Matches(h); got != want {
			t.Errorf("1x matches %02b = %v, want %v", h, got, want)
		}
	}
}

func TestCubeMinterms(t *testing.T) {
	c := MustParseCube("x1x")
	got := c.Minterms()
	want := []uint32{0b010, 0b011, 0b110, 0b111}
	if len(got) != len(want) {
		t.Fatalf("Minterms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Minterms = %v, want %v", got, want)
		}
	}
	if c.Size() != 4 || c.FreeCount() != 2 || c.Literals() != 1 {
		t.Errorf("Size/FreeCount/Literals = %d/%d/%d, want 4/2/1",
			c.Size(), c.FreeCount(), c.Literals())
	}
}

func TestCubeContains(t *testing.T) {
	big := MustParseCube("1xx")
	small := MustParseCube("10x")
	if !big.Contains(small) {
		t.Error("1xx should contain 10x")
	}
	if small.Contains(big) {
		t.Error("10x should not contain 1xx")
	}
	if !big.Contains(big) {
		t.Error("cube should contain itself")
	}
	other := MustParseCube("0xx")
	if big.Contains(other) || big.Intersects(other) {
		t.Error("1xx should not contain or intersect 0xx")
	}
}

func TestCubeIntersection(t *testing.T) {
	a := MustParseCube("1xx")
	b := MustParseCube("x0x")
	got, ok := a.Intersection(b)
	if !ok || got.String() != "10x" {
		t.Fatalf("Intersection = %v/%v, want 10x", got, ok)
	}
	if _, ok := MustParseCube("1x").Intersection(MustParseCube("0x")); ok {
		t.Error("disjoint cubes should not intersect")
	}
}

func TestCubeCombine(t *testing.T) {
	a := MustParseCube("101")
	b := MustParseCube("111")
	got, ok := a.Combine(b)
	if !ok || got.String() != "1x1" {
		t.Fatalf("Combine = %v/%v, want 1x1", got, ok)
	}
	// Differ in two bits: no combine.
	if _, ok := MustParseCube("00").Combine(MustParseCube("11")); ok {
		t.Error("cubes differing in two bits must not combine")
	}
	// Different care masks: no combine.
	if _, ok := MustParseCube("0x").Combine(MustParseCube("x0")); ok {
		t.Error("cubes with different care masks must not combine")
	}
}

func TestCubeCombineCoversUnionQuick(t *testing.T) {
	// Whenever Combine succeeds, the result covers exactly the union of the
	// two inputs' minterms.
	f := func(v1, v2, care uint32, wraw uint8) bool {
		w := int(wraw%10) + 2
		a := NewCube(v1, care|1, w)
		b := NewCube(v2, care|1, w)
		m, ok := a.Combine(b)
		if !ok {
			return true
		}
		seen := map[uint32]bool{}
		for _, x := range a.Minterms() {
			seen[x] = true
		}
		for _, x := range b.Minterms() {
			seen[x] = true
		}
		ms := m.Minterms()
		if uint64(len(seen)) != m.Size() {
			return false
		}
		for _, x := range ms {
			if !seen[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinterm(t *testing.T) {
	m := Minterm(0b101, 3)
	if !m.IsMinterm() || m.String() != "101" || m.Size() != 1 {
		t.Fatalf("Minterm(101) = %v", m)
	}
}

func TestCoverMatches(t *testing.T) {
	cover := []Cube{MustParseCube("1x"), MustParseCube("x1")}
	for h, want := range map[uint32]bool{0b00: false, 0b01: true, 0b10: true, 0b11: true} {
		if got := CoverMatches(cover, h); got != want {
			t.Errorf("CoverMatches(%02b) = %v, want %v", h, got, want)
		}
	}
}

func TestSortCubesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cubes := make([]Cube, 50)
	for i := range cubes {
		cubes[i] = NewCube(rng.Uint32(), rng.Uint32(), 6)
	}
	a := append([]Cube(nil), cubes...)
	b := append([]Cube(nil), cubes...)
	// Shuffle b, sort both, expect identical order.
	rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	SortCubes(a)
	SortCubes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SortCubes not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCubeWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	NewCube(0, 0, 0)
}

func TestFromWords(t *testing.T) {
	src := MustFromString("1011 0010 1110 0001 1")
	words := append([]uint64(nil), src.Words()...)
	got := FromWords(words, src.Len())
	if got.Len() != src.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), src.Len())
	}
	for i := 0; i < src.Len(); i++ {
		if got.At(i) != src.At(i) {
			t.Fatalf("bit %d differs", i)
		}
	}
	// Dirty padding beyond n must be cleared so appends and window reads
	// stay exact.
	dirty := []uint64{0xFFFFFFFFFFFFFFFF}
	b := FromWords(dirty, 3)
	if b.Len() != 3 || b.Words()[0] != 0b111 {
		t.Fatalf("padding not cleared: %#x", b.Words()[0])
	}
	b.Append(false)
	b.Append(true)
	if b.Len() != 5 || !b.At(4) || b.At(3) {
		t.Fatal("append after FromWords broken")
	}
	// Too-short word slices must panic, not read garbage.
	defer func() {
		if recover() == nil {
			t.Fatal("FromWords(1 word, 65 bits) did not panic")
		}
	}()
	FromWords(make([]uint64, 1), 65)
}
