package bitseq

import (
	"math/bits"
	"unsafe"
)

// Set is a dense bitset over the fixed universe [0, n). It replaces the
// map[int]bool sets the automaton kernels (subset construction, Hopcroft
// refinement, recurrent-state search) and the espresso minterm tables
// were originally built on: membership is one shift and mask, union is a
// word-wise OR, and the packed words double as a canonical map key, so
// interning a set costs no per-element string formatting.
//
// The zero Set is empty with an empty universe; use NewSet or Reset to
// size it. Methods panic on out-of-range indices only via the slice
// bounds check, keeping the hot paths branch-free.
type Set struct {
	words []uint64
	n     int
}

// NewSet returns an empty set over the universe [0, n).
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Universe returns the universe size n the set was created with.
func (s *Set) Universe() int { return s.n }

// Reset clears the set and, if needed, regrows it for a universe of n.
// It reuses the existing backing array when large enough, so a scratch
// set can serve many rounds without reallocating.
func (s *Set) Reset(n int) {
	w := (n + 63) / 64
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.words[i>>6] |= 1 << uint(i&63)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	return s.words[i>>6]>>uint(i&63)&1 == 1
}

// Len returns the number of elements (population count).
func (s *Set) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// Copy overwrites s with the contents of other (universes must match in
// word count; Reset first if not).
func (s *Set) Copy(other *Set) {
	copy(s.words, other.words)
}

// UnionWith adds every element of other to s.
func (s *Set) UnionWith(other *Set) {
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// IntersectWith removes every element of s not in other.
func (s *Set) IntersectWith(other *Set) {
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// Equal reports whether two sets over the same universe hold the same
// elements.
func (s *Set) Equal(other *Set) bool {
	if len(s.words) != len(other.words) {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// AppendTo appends the elements in ascending order and returns the
// extended slice, letting callers reuse one scratch buffer.
func (s *Set) AppendTo(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi<<6+b)
			w &= w - 1
		}
	}
	return dst
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Key returns the packed words as a string, a canonical map key for sets
// over the same universe: two sets collide iff they are equal, and
// building the key is one allocation (the string copy) instead of the
// per-element integer formatting the kernels used before.
func (s *Set) Key() string {
	if len(s.words) == 0 {
		return ""
	}
	p := (*byte)(unsafe.Pointer(&s.words[0]))
	return string(unsafe.Slice(p, 8*len(s.words)))
}
