package bitseq

import "testing"

// FuzzParseCube checks the cube parser never panics and accepted cubes
// round-trip through String.
func FuzzParseCube(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "x", "1x", "0x1x", "0xx1x", "zz", "111111111111111111111111111111111"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCube(s)
		if err != nil {
			return
		}
		back, err := ParseCube(c.String())
		if err != nil || back != c {
			t.Fatalf("round trip: %q -> %v -> %v (%v)", s, c, back, err)
		}
	})
}

// FuzzFromString checks the bit-string parser never panics and that
// parsed sequences render to the input stripped of separators.
func FuzzFromString(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "0000 1000 1011", "01_10", "2", "abc"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := FromString(s)
		if err != nil {
			return
		}
		want := ""
		for _, ch := range s {
			if ch == '0' || ch == '1' {
				want += string(ch)
			}
		}
		if got := b.String(); got != want {
			t.Fatalf("FromString(%q) = %q, want %q", s, got, want)
		}
	})
}
