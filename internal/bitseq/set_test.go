package bitseq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(200)
	if !s.Empty() || s.Len() != 0 || s.Universe() != 200 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Add(i)
	}
	if s.Empty() || s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	if !s.Has(64) || s.Has(66) {
		t.Fatal("membership wrong")
	}
	if s.Min() != 0 {
		t.Fatalf("Min = %d, want 0", s.Min())
	}
	s.Remove(0)
	if s.Has(0) || s.Min() != 1 {
		t.Fatalf("after Remove(0): Has(0)=%v Min=%d", s.Has(0), s.Min())
	}
	want := []int{1, 63, 64, 65, 127, 128, 199}
	got := s.AppendTo(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendTo = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendTo = %v, want %v", got, want)
		}
	}
	var walked []int
	s.ForEach(func(i int) { walked = append(walked, i) })
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", walked, want)
		}
	}
}

func TestSetUnionIntersect(t *testing.T) {
	a, b := NewSet(130), NewSet(130)
	a.Add(1)
	a.Add(100)
	b.Add(100)
	b.Add(129)
	u := a.Clone()
	u.UnionWith(b)
	if u.Len() != 3 || !u.Has(1) || !u.Has(100) || !u.Has(129) {
		t.Fatalf("union wrong: %v", u.AppendTo(nil))
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Len() != 1 || !i.Has(100) {
		t.Fatalf("intersection wrong: %v", i.AppendTo(nil))
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Fatal("Equal wrong")
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet(100)
	s.Add(99)
	s.Reset(50)
	if !s.Empty() || s.Universe() != 50 {
		t.Fatal("Reset(50) did not clear")
	}
	s.Add(49)
	s.Reset(1000)
	if !s.Empty() || s.Universe() != 1000 {
		t.Fatal("Reset(1000) did not clear/grow")
	}
	s.Add(999)
	if !s.Has(999) {
		t.Fatal("grown set lost Add")
	}
}

func TestSetKeyCanonical(t *testing.T) {
	a, b := NewSet(192), NewSet(192)
	keys := map[string]bool{}
	for _, i := range []int{5, 64, 191} {
		a.Add(i)
		b.Add(i)
	}
	if a.Key() != b.Key() {
		t.Fatal("equal sets have different keys")
	}
	keys[a.Key()] = true
	b.Add(0)
	if keys[b.Key()] {
		t.Fatal("different sets share a key")
	}
	// Key survives later mutation of the set (it must be a copy).
	k := a.Key()
	a.Add(7)
	if a.Key() == k {
		t.Fatal("key did not change after mutation")
	}
	if !NewSet(0).Empty() || NewSet(0).Key() != "" {
		t.Fatal("empty-universe set wrong")
	}
}

// TestSetAgainstMap cross-checks the bitset against a map[int]bool model
// under a random operation stream.
func TestSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 300
	s := NewSet(n)
	model := map[int]bool{}
	for op := 0; op < 5000; op++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(i)
			model[i] = true
		case 1:
			s.Remove(i)
			delete(model, i)
		default:
			if s.Has(i) != model[i] {
				t.Fatalf("op %d: Has(%d) = %v, model %v", op, i, s.Has(i), model[i])
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	var want []int
	for i := range model {
		want = append(want, i)
	}
	sort.Ints(want)
	got := s.AppendTo(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elements diverge: %v vs %v", got, want)
		}
	}
}

func TestCubeEachMinterm(t *testing.T) {
	for _, spec := range []string{"1x0x", "xxx", "101", "x", "1111", "0x1x0x"} {
		c := MustParseCube(spec)
		want := c.Minterms()
		var got []uint32
		c.EachMinterm(func(m uint32) bool {
			got = append(got, m)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%s: %d minterms, want %d", spec, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: EachMinterm order %v, want %v", spec, got, want)
			}
		}
		// Early stop.
		n := 0
		c.EachMinterm(func(uint32) bool { n++; return n < 2 })
		if len(want) >= 2 && n != 2 {
			t.Fatalf("%s: early stop visited %d", spec, n)
		}
	}
}
