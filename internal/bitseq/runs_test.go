package bitseq

import (
	"math/rand"
	"testing"
)

// naiveRuns is the byte-at-a-time reference for the word-level scanner.
func naiveRuns(words []uint64, n, minBytes int) []Run {
	if minBytes < 1 {
		minBytes = 1
	}
	nb := n >> 3
	if max := len(words) << 3; nb > max {
		nb = max
	}
	byteAt := func(j int) uint8 { return uint8(words[j>>3] >> uint((j&7)<<3)) }
	var out []Run
	for j := 0; j < nb; {
		b := byteAt(j)
		if b != 0x00 && b != 0xFF {
			j++
			continue
		}
		k := j + 1
		for k < nb && byteAt(k) == b {
			k++
		}
		if k-j >= minBytes {
			out = append(out, Run{Start: int32(j << 3), Bytes: int32(k - j), One: b == 0xFF})
		}
		j = k
	}
	return out
}

// runnyWords builds a packed stream with geometric run structure.
func runnyWords(rng *rand.Rand, n int, bias, meanRun float64) *Bits {
	b := &Bits{}
	one := rng.Float64() < bias
	for b.Len() < n {
		mean := 2 * meanRun * (1 - bias)
		if one {
			mean = 2 * meanRun * bias
		}
		k := 1
		for mean > 1 && rng.Float64() < 1-1/mean {
			k++
		}
		for j := 0; j < k && b.Len() < n; j++ {
			b.Append(one)
		}
		one = !one
	}
	return b
}

func TestRunsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(3000)
		var bits *Bits
		switch trial % 3 {
		case 0:
			bits = runnyWords(rng, n, 0.5+rng.Float64()*0.49, float64(1+rng.Intn(200)))
		case 1: // iid coin flips: few runs, lots of mixed bytes
			bits = runnyWords(rng, n, 0.5, 1)
		default: // near-solid stream
			bits = runnyWords(rng, n, 0.999, 500)
		}
		minBytes := rng.Intn(10)
		got := Runs(bits.Words(), bits.Len(), minBytes)
		want := naiveRuns(bits.Words(), bits.Len(), minBytes)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d runs, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d run %d: %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRunsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(5000)
		bits := runnyWords(rng, n, 0.9, 60)
		runs := Runs(bits.Words(), bits.Len(), DefaultMinRunBytes)
		prevEnd := 0
		for i, r := range runs {
			if r.Start&7 != 0 {
				t.Fatalf("trial %d run %d: unaligned start %d", trial, i, r.Start)
			}
			if int(r.Bytes) < DefaultMinRunBytes {
				t.Fatalf("trial %d run %d: short run %d bytes", trial, i, r.Bytes)
			}
			// Adjacent opposite-polarity runs may touch; never overlap.
			if int(r.Start) < prevEnd {
				t.Fatalf("trial %d run %d: out of order or overlapping", trial, i)
			}
			if r.End() > n&^7 {
				t.Fatalf("trial %d run %d: end %d past whole-byte region %d", trial, i, r.End(), n&^7)
			}
			for p := int(r.Start); p < r.End(); p++ {
				if bits.At(p) != r.One {
					t.Fatalf("trial %d run %d: bit %d is %v inside a %v-run", trial, i, p, bits.At(p), r.One)
				}
			}
			prevEnd = r.End()
		}
		if c := RunsCovered(runs); c > n {
			t.Fatalf("trial %d: covered %d of %d", trial, c, n)
		}
	}
}

func TestRunAt(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(2000)
		bits := runnyWords(rng, n, 0.9, 40)
		words := bits.Words()
		for probe := 0; probe < 20; probe++ {
			i := rng.Intn(n/8+1) * 8
			bytes, one := RunAt(words, i, n)
			ref := naiveRuns(words, n, 1)
			wantBytes, wantOne := 0, false
			for _, r := range ref {
				if int(r.Start) == i {
					wantBytes, wantOne = int(r.Bytes), r.One
				}
			}
			// RunAt reports the run FROM i, which for a position inside a
			// maximal run is its remainder.
			for _, r := range ref {
				if int(r.Start) < i && r.End() > i {
					wantBytes, wantOne = (r.End()-i)>>3, r.One
				}
			}
			if bytes != wantBytes || (bytes > 0 && one != wantOne) {
				t.Fatalf("trial %d i=%d: RunAt (%d,%v), want (%d,%v)", trial, i, bytes, one, wantBytes, wantOne)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RunAt accepted an unaligned position")
		}
	}()
	RunAt([]uint64{0}, 3, 64)
}
