package bitseq

import (
	"math/rand"
	"testing"
)

// TestUint64AtMatchesAt cross-checks window extraction against the
// bit-at-a-time accessor over random sequences and window shapes,
// including windows straddling word boundaries.
func TestUint64AtMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := &Bits{}
	for i := 0; i < 500; i++ {
		b.Append(rng.Intn(2) == 1)
	}
	for trial := 0; trial < 5000; trial++ {
		w := rng.Intn(65)
		i := rng.Intn(b.Len() - w + 1)
		got := b.Uint64At(i, w)
		var want uint64
		for k := 0; k < w; k++ {
			if b.At(i + k) {
				want |= 1 << uint(k)
			}
		}
		if got != want {
			t.Fatalf("Uint64At(%d, %d) = %#x, want %#x", i, w, got, want)
		}
	}
}

func TestUint64AtEdges(t *testing.T) {
	b := &Bits{}
	for i := 0; i < 128; i++ {
		b.Append(i%3 == 0)
	}
	if got := b.Uint64At(0, 0); got != 0 {
		t.Fatalf("empty window = %#x, want 0", got)
	}
	if got := b.Uint64At(64, 64); got != b.Uint64At(64, 64) {
		t.Fatal("full-word window unstable")
	}
	// Word-aligned full-width window equals the raw word content.
	var want uint64
	for k := 0; k < 64; k++ {
		if b.At(k) {
			want |= 1 << uint(k)
		}
	}
	if got := b.Uint64At(0, 64); got != want {
		t.Fatalf("aligned 64-bit window = %#x, want %#x", got, want)
	}
	for _, tc := range []struct{ i, w int }{{-1, 4}, {0, 65}, {0, -1}, {120, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Uint64At(%d, %d) did not panic", tc.i, tc.w)
				}
			}()
			b.Uint64At(tc.i, tc.w)
		}()
	}
}
