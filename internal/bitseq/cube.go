package bitseq

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Cube is a three-valued pattern over a W-bit history: each position is 0,
// 1, or x (don't care). Positions follow the history convention: bit 0 is
// the most recent input; the string form is written oldest-first.
//
// A cube with Care == full mask is a minterm (a single concrete history).
type Cube struct {
	// Value holds the required bit values at positions where Care is set.
	// Bits of Value outside Care must be zero (canonical form).
	Value uint32
	// Care marks the positions that are constrained (1 = must match).
	Care uint32
	// Width is the pattern width in bits (1..32).
	Width int
}

// NewCube returns a canonicalized cube, masking Value to Care and Care to
// the width.
func NewCube(value, care uint32, width int) Cube {
	if width < 1 || width > 32 {
		panic(fmt.Sprintf("bitseq: cube width %d out of range [1,32]", width))
	}
	m := uint32(1)<<uint(width) - 1
	care &= m
	return Cube{Value: value & care, Care: care, Width: width}
}

// Minterm returns the cube matching exactly the history h.
func Minterm(h uint32, width int) Cube {
	m := uint32(1)<<uint(width) - 1
	return Cube{Value: h & m, Care: m, Width: width}
}

// ParseCube parses an oldest-first pattern such as "1x" or "0x1x". Valid
// characters are '0', '1', 'x', 'X', and '-'.
func ParseCube(s string) (Cube, error) {
	if len(s) == 0 || len(s) > 32 {
		return Cube{}, fmt.Errorf("bitseq: cube length %d out of range [1,32]", len(s))
	}
	var value, care uint32
	for i := 0; i < len(s); i++ {
		value <<= 1
		care <<= 1
		switch s[i] {
		case '1':
			value |= 1
			care |= 1
		case '0':
			care |= 1
		case 'x', 'X', '-':
		default:
			return Cube{}, fmt.Errorf("bitseq: invalid cube character %q", s[i])
		}
	}
	return Cube{Value: value, Care: care, Width: len(s)}, nil
}

// MustParseCube is ParseCube but panics on error.
func MustParseCube(s string) Cube {
	c, err := ParseCube(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the cube oldest-first using '0', '1' and 'x'.
func (c Cube) String() string {
	var sb strings.Builder
	for i := c.Width - 1; i >= 0; i-- {
		switch {
		case c.Care>>uint(i)&1 == 0:
			sb.WriteByte('x')
		case c.Value>>uint(i)&1 == 1:
			sb.WriteByte('1')
		default:
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Matches reports whether history h satisfies the cube.
func (c Cube) Matches(h uint32) bool {
	return (h^c.Value)&c.Care == 0
}

// IsMinterm reports whether every position is constrained.
func (c Cube) IsMinterm() bool {
	return c.Care == uint32(1)<<uint(c.Width)-1
}

// FreeCount returns the number of don't-care positions.
func (c Cube) FreeCount() int {
	m := uint32(1)<<uint(c.Width) - 1
	return bits.OnesCount32(m &^ c.Care)
}

// Size returns the number of minterms the cube covers (2^FreeCount).
func (c Cube) Size() uint64 {
	return 1 << uint(c.FreeCount())
}

// Literals returns the number of constrained positions (the cost of the
// cube as a product term).
func (c Cube) Literals() int {
	return bits.OnesCount32(c.Care)
}

// Contains reports whether every minterm of d is also a minterm of c.
func (c Cube) Contains(d Cube) bool {
	if c.Width != d.Width {
		return false
	}
	// c's constrained positions must be constrained identically in d.
	if c.Care&^d.Care != 0 {
		return false
	}
	return (c.Value^d.Value)&c.Care == 0
}

// Intersects reports whether c and d share at least one minterm.
func (c Cube) Intersects(d Cube) bool {
	if c.Width != d.Width {
		return false
	}
	common := c.Care & d.Care
	return (c.Value^d.Value)&common == 0
}

// Intersection returns the largest cube contained in both c and d, and
// whether it exists.
func (c Cube) Intersection(d Cube) (Cube, bool) {
	if !c.Intersects(d) {
		return Cube{}, false
	}
	return Cube{
		Value: c.Value | d.Value,
		Care:  c.Care | d.Care,
		Width: c.Width,
	}, true
}

// Minterms enumerates every history the cube matches, in ascending order.
// It allocates 2^FreeCount entries; callers must keep widths small.
func (c Cube) Minterms() []uint32 {
	free := make([]int, 0, c.FreeCount())
	for i := 0; i < c.Width; i++ {
		if c.Care>>uint(i)&1 == 0 {
			free = append(free, i)
		}
	}
	out := make([]uint32, 0, 1<<uint(len(free)))
	for k := uint32(0); k < 1<<uint(len(free)); k++ {
		h := c.Value
		for j, pos := range free {
			if k>>uint(j)&1 == 1 {
				h |= 1 << uint(pos)
			}
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachMinterm calls fn for every history the cube matches, in ascending
// order, stopping early (and returning false) if fn returns false. It is
// the allocation-free counterpart of Minterms for hot paths that only
// need to scan.
func (c Cube) EachMinterm(fn func(m uint32) bool) bool {
	mask := uint32(1)<<uint(c.Width) - 1
	freeMask := mask &^ c.Care
	count := uint32(1) << uint(c.FreeCount())
	for k := uint32(0); k < count; k++ {
		// Deposit k's bits into the free positions, lowest first; the
		// mapping is monotonic, so enumeration is ascending.
		h := c.Value
		rem := freeMask
		for kk := k; kk != 0; kk >>= 1 {
			pos := rem & -rem // lowest remaining free position
			rem &^= pos
			if kk&1 == 1 {
				h |= pos
			}
		}
		if !fn(h) {
			return false
		}
	}
	return true
}

// Combine attempts the Quine–McCluskey merge: if c and d constrain the same
// positions and differ in exactly one bit value, the merged cube with that
// bit freed is returned.
func (c Cube) Combine(d Cube) (Cube, bool) {
	if c.Width != d.Width || c.Care != d.Care {
		return Cube{}, false
	}
	diff := c.Value ^ d.Value
	if bits.OnesCount32(diff) != 1 {
		return Cube{}, false
	}
	return Cube{
		Value: c.Value &^ diff,
		Care:  c.Care &^ diff,
		Width: c.Width,
	}, true
}

// SortCubes orders cubes deterministically: by descending size (more
// general first), then ascending care mask, then ascending value.
func SortCubes(cs []Cube) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.Care != b.Care {
			return bits.OnesCount32(a.Care) < bits.OnesCount32(b.Care) ||
				(bits.OnesCount32(a.Care) == bits.OnesCount32(b.Care) && a.Care < b.Care)
		}
		return a.Value < b.Value
	})
}

// CoverMatches reports whether any cube in the cover matches h.
func CoverMatches(cover []Cube, h uint32) bool {
	for _, c := range cover {
		if c.Matches(h) {
			return true
		}
	}
	return false
}
