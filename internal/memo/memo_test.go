package memo

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPutLRU(t *testing.T) {
	c := New[int, string](2, func(s string) uint64 { return uint64(len(s)) })
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "a")
	c.Put(2, "bb")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	// 2 is now least recently used; inserting 3 must evict it.
	c.Put(3, "ccc")
	if _, ok := c.Get(2); ok {
		t.Fatal("expected 2 evicted")
	}
	if v, ok := c.Get(3); !ok || v != "ccc" {
		t.Fatalf("Get(3) = %q, %v", v, ok)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	st := c.Stats()
	if st.Bytes != uint64(len("a")+len("ccc")) {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, len("a")+len("ccc"))
	}
	if st.Entries != 2 {
		t.Fatalf("Entries = %d, want 2", st.Entries)
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New[int, string](4, func(s string) uint64 { return uint64(len(s)) })
	c.Put(1, "aaaa")
	c.Put(1, "b")
	if st := c.Stats(); st.Bytes != 1 || st.Entries != 1 {
		t.Fatalf("after replace: %+v", st)
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New[string, int](8, nil)
	calls := 0
	compute := func() int { calls++; return 42 }
	if v := c.Do("k", nil, compute); v != 42 {
		t.Fatalf("Do = %d", v)
	}
	if v := c.Do("k", nil, compute); v != 42 {
		t.Fatalf("Do = %d", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", st)
	}
}

func TestDoValidationDropsStaleEntry(t *testing.T) {
	c := New[int, int](8, nil)
	c.Put(7, 100)
	got := c.Do(7, func(v int) bool { return v == 200 }, func() int { return 200 })
	if got != 200 {
		t.Fatalf("Do = %d, want recomputed 200", got)
	}
	// The recomputed value now validates and is served from cache.
	calls := 0
	got = c.Do(7, func(v int) bool { return v == 200 }, func() int { calls++; return 200 })
	if got != 200 || calls != 0 {
		t.Fatalf("Do = %d (calls %d), want cached 200", got, calls)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[int, int](8, nil)
	const goroutines = 32
	var (
		calls   atomic.Int32
		release = make(chan struct{})
		wg      sync.WaitGroup
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			v := c.Do(1, nil, func() int {
				calls.Add(1)
				<-release
				return 9
			})
			if v != 9 {
				t.Errorf("Do = %d, want 9", v)
			}
		}()
	}
	// Let the flight start, then release it; every waiter shares it.
	for c.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses != goroutines {
		t.Fatalf("hits %d + misses %d != %d goroutines", st.Hits, st.Misses, goroutines)
	}
}

func TestBoundNeverExceeded(t *testing.T) {
	c := New[int, int](3, nil)
	for i := 0; i < 100; i++ {
		c.Put(i, i)
		if c.Len() > 3 {
			t.Fatalf("Len = %d after %d inserts, bound 3", c.Len(), i+1)
		}
	}
}

func TestTier2HitDistinguishedFromRecompute(t *testing.T) {
	disk := map[int]int{7: 70}
	var loads, stores, computes int
	c := New[int, int](4, nil)
	c.SetTier2(
		func(k int) (int, bool) { loads++; v, ok := disk[k]; return v, ok },
		func(k, v int) { stores++; disk[k] = v },
	)

	// Key 7 is on "disk": served by tier 2, not recomputed.
	if v := c.Do(7, nil, func() int { computes++; return -1 }); v != 70 {
		t.Fatalf("Do(7) = %d, want 70 from tier 2", v)
	}
	// Key 8 is nowhere: recomputed and published to tier 2.
	if v := c.Do(8, nil, func() int { computes++; return 80 }); v != 80 {
		t.Fatalf("Do(8) = %d, want 80", v)
	}
	// Both now hit tier 1.
	c.Do(7, nil, func() int { computes++; return -1 })
	c.Do(8, nil, func() int { computes++; return -1 })

	st := c.Stats()
	if st.Hits != 2 || st.TierHits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want hits=2 tierHits=1 misses=1", st)
	}
	if computes != 1 || loads != 2 || stores != 1 {
		t.Fatalf("computes=%d loads=%d stores=%d, want 1/2/1", computes, loads, stores)
	}
	if disk[8] != 80 {
		t.Fatalf("tier 2 not filled after compute: %v", disk)
	}
}

func TestTier2ValueValidated(t *testing.T) {
	c := New[int, int](4, nil)
	c.SetTier2(
		func(k int) (int, bool) { return 666, true }, // corrupt/stale tier-2 value
		nil,
	)
	v := c.Do(1, func(v int) bool { return v == 42 }, func() int { return 42 })
	if v != 42 {
		t.Fatalf("Do = %d; invalid tier-2 value must fall through to compute", v)
	}
	st := c.Stats()
	if st.TierHits != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want the rejected tier-2 load counted as a recompute", st)
	}
}

func TestClearDropsEntriesKeepsStats(t *testing.T) {
	c := New[int, int](4, func(int) uint64 { return 1 })
	c.Do(1, nil, func() int { return 10 })
	c.Do(1, nil, func() int { return -1 })
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear", c.Len())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 0 {
		t.Fatalf("stats after Clear = %+v", st)
	}
	// Cleared key recomputes.
	var again bool
	c.Do(1, nil, func() int { again = true; return 10 })
	if !again {
		t.Fatal("cleared entry still served")
	}
}
