// Package memo provides the bounded content-addressed cache primitive
// shared by the serving layer and the simulation kernels: an LRU map
// with singleflight request coalescing and hit/miss/byte statistics.
//
// It generalizes the two caches that grew independently in earlier
// revisions — the service's design-result LRU and the trace store's
// singleflight table — into one type: values are immutable once
// inserted and shared by all readers, concurrent requests for a missing
// key block on the one in-flight computation instead of duplicating
// it, and an optional validator lets callers content-verify a hit when
// the key is a lossy digest of the source (the fsm block-table cache
// keys on a 64-bit machine hash and re-checks the machine itself).
package memo

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts lookups served from the in-process tier, including
	// requests coalesced onto another caller's in-flight computation.
	Hits uint64
	// TierHits counts lookups served by the second tier (disk) instead
	// of a recompute. Before the tiered stats split, these were
	// indistinguishable from Misses.
	TierHits uint64
	// Misses counts computations actually run.
	Misses uint64
	// Entries is the current number of cached values.
	Entries uint64
	// Bytes is the retained size of the cached values, as reported by
	// the size function (0 when no size function was given).
	Bytes uint64
}

// Cache is a bounded LRU keyed by K. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	max      int
	size     func(V) uint64
	order    *list.List // front = most recently used; values are *entry[K, V]
	byKey    map[K]*list.Element
	flight   map[K]*flight[V]
	hits     uint64
	tierHits uint64
	misses   uint64
	bytes    uint64

	// Optional second tier, consulted inside the singleflight slot on a
	// miss before compute runs, and filled after a compute. Both calls
	// happen outside the cache lock — they are expected to do disk IO.
	tier2Load  func(K) (V, bool)
	tier2Store func(K, V)
}

type entry[K comparable, V any] struct {
	key K
	val V
}

type flight[V any] struct {
	done chan struct{}
	val  V
}

// New returns a cache holding at most max entries (max < 1 is treated
// as 1). size, if non-nil, reports the retained bytes of a value for
// the Stats accounting; it is called once per insertion and eviction.
func New[K comparable, V any](max int, size func(V) uint64) *Cache[K, V] {
	if max < 1 {
		max = 1
	}
	return &Cache[K, V]{
		max:    max,
		size:   size,
		order:  list.New(),
		byKey:  make(map[K]*list.Element),
		flight: make(map[K]*flight[V]),
	}
}

// Get returns the cached value for the key, refreshing its recency.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts a value, replacing any existing entry for the key and
// evicting the least recently used entries beyond the bound.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, v)
}

func (c *Cache[K, V]) putLocked(k K, v V) {
	if el, ok := c.byKey[k]; ok {
		e := el.Value.(*entry[K, V])
		if c.size != nil {
			c.bytes += c.size(v) - c.size(e.val)
		}
		e.val = v
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&entry[K, V]{key: k, val: v})
	if c.size != nil {
		c.bytes += c.size(v)
	}
	for c.order.Len() > c.max {
		c.removeLocked(c.order.Back())
	}
}

func (c *Cache[K, V]) removeLocked(el *list.Element) {
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.byKey, e.key)
	if c.size != nil {
		c.bytes -= c.size(e.val)
	}
}

// SetTier2 attaches (or, with nils, detaches) a second cache tier —
// in practice a disk store. On a miss the owning Do call consults load
// before computing; a validated tier-2 value is installed in the
// in-process tier and counted in Stats.TierHits, distinguishable from
// a recompute (Stats.Misses). After an actual compute, store publishes
// the fresh value to the tier. Both functions run outside the cache
// lock and must be safe for concurrent use.
func (c *Cache[K, V]) SetTier2(load func(K) (V, bool), store func(K, V)) {
	c.mu.Lock()
	c.tier2Load, c.tier2Store = load, store
	c.mu.Unlock()
}

// Clear drops every cached entry (statistics and the tier-2 hookup are
// retained, and in-flight computations complete normally). It exists
// for warm-start measurement: dropping the in-process tier exposes the
// disk tier underneath.
func (c *Cache[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.order.Len() > 0 {
		c.removeLocked(c.order.Back())
	}
}

// Do returns the value for the key, computing and inserting it on a
// miss. Concurrent Do calls for the same key coalesce: one runs
// compute, the rest block and share its result (counted as hits).
//
// valid, if non-nil, content-verifies a candidate value before it is
// returned; a cached entry that fails validation is dropped and
// recomputed. This is the guard for lossy keys — when K is a hash of
// the value's source, a collision (or a caller mutating the source
// after insertion) yields a stale entry that validation catches. The
// same validation is applied to values surfacing from the second tier,
// so a disk artifact can never be weaker-checked than a memory hit.
func (c *Cache[K, V]) Do(k K, valid func(V) bool, compute func() V) V {
	for {
		c.mu.Lock()
		if el, ok := c.byKey[k]; ok {
			e := el.Value.(*entry[K, V])
			if valid == nil || valid(e.val) {
				c.order.MoveToFront(el)
				c.hits++
				c.mu.Unlock()
				return e.val
			}
			c.removeLocked(el)
		}
		if f, ok := c.flight[k]; ok {
			c.mu.Unlock()
			<-f.done
			// The in-flight computation may have been for a colliding
			// source; re-validate before sharing, else retry as the
			// computing caller.
			if valid == nil || valid(f.val) {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return f.val
			}
			continue
		}
		f := &flight[V]{done: make(chan struct{})}
		c.flight[k] = f
		t2load, t2store := c.tier2Load, c.tier2Store
		c.mu.Unlock()

		// Always release waiters and clear the flight, even if compute
		// panics (waiters then see the zero value, fail validation and
		// recompute for themselves).
		computed := false
		defer func() {
			close(f.done)
			c.mu.Lock()
			delete(c.flight, k)
			if computed {
				c.putLocked(k, f.val)
			}
			c.mu.Unlock()
		}()
		if t2load != nil {
			if v, ok := t2load(k); ok && (valid == nil || valid(v)) {
				c.mu.Lock()
				c.tierHits++
				c.mu.Unlock()
				f.val = v
				computed = true
				return f.val
			}
		}
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		f.val = compute()
		computed = true
		if t2store != nil {
			t2store(k, f.val)
		}
		return f.val
	}
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:     c.hits,
		TierHits: c.tierHits,
		Misses:   c.misses,
		Entries:  uint64(c.order.Len()),
		Bytes:    c.bytes,
	}
}
