// Package cachewire is the one-call startup path for the persistent
// artifact tier: it opens the disk store and attaches it beneath every
// process-wide in-memory cache (the fsm block-table cache and the
// shared trace store), returning the store so callers can also hand it
// to service.Config.Disk and the peer-warming endpoints. The CLIs that
// expose -cache-dir/-cache-size all funnel through here, so the four
// artifact producers always agree on one store.
package cachewire

import (
	"fmt"
	"strconv"
	"strings"

	"fsmpredict/internal/disktier"
	"fsmpredict/internal/fidelity"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/tracestore"
)

// Setup opens (creating if needed) the disk store at dir, bounded to
// maxBytes (0 means disktier.DefaultMaxBytes), and wires it beneath the
// process-wide caches. An empty dir means "no disk tier" and returns
// (nil, nil), so callers can pass a flag value through unconditionally.
func Setup(dir string, maxBytes int64) (*disktier.Store, error) {
	if dir == "" {
		return nil, nil
	}
	d, err := disktier.Open(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	fsm.SetDiskTier(d)
	tracestore.Shared.SetDisk(d)
	fidelity.SetDiskTier(d)
	return d, nil
}

// SetupSized is the flag-value form of Setup: it parses the -cache-size
// string and rejects a size without a directory, so every CLI's flag
// validation is one call.
func SetupSized(dir, size string) (*disktier.Store, error) {
	maxBytes, err := ParseSize(size)
	if err != nil {
		return nil, err
	}
	if dir == "" && size != "" {
		return nil, fmt.Errorf("cachewire: -cache-size requires -cache-dir")
	}
	return Setup(dir, maxBytes)
}

// ParseSize parses a human byte size for the -cache-size flag: a plain
// integer is bytes; K/M/G suffixes (optionally KiB/MiB/GiB or KB/MB/GB)
// are binary multiples. Empty means 0 (the store default).
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, suf := range []struct {
		tail string
		mult int64
	}{
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(upper, suf.tail) {
			mult = suf.mult
			s = s[:len(s)-len(suf.tail)]
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cachewire: bad size %q: %v", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("cachewire: negative size %q", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("cachewire: size %q overflows", s)
	}
	return n * mult, nil
}
