package cachewire

import (
	"testing"

	"fsmpredict/internal/fsm"
	"fsmpredict/internal/tracestore"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		bad  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1024", 1024, false},
		{"4K", 4 << 10, false},
		{"4KiB", 4 << 10, false},
		{"512M", 512 << 20, false},
		{"512MB", 512 << 20, false},
		{"2G", 2 << 30, false},
		{"2gib", 2 << 30, false},
		{" 16 M ", 16 << 20, false},
		{"-1", 0, true},
		{"x", 0, true},
		{"1T", 0, true}, // unknown suffix leaves "1T" unparsable
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSize(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseSize(%q) = (%d, %v), want %d", c.in, got, err, c.want)
		}
	}
}

func TestSetupWiresGlobalCaches(t *testing.T) {
	if d, err := Setup("", 0); d != nil || err != nil {
		t.Fatalf("Setup(\"\") = (%v, %v), want nil store", d, err)
	}
	d, err := Setup(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("Setup returned nil store")
	}
	// Detach the globals so other tests see a clean process.
	defer func() {
		fsm.SetDiskTier(nil)
		tracestore.Shared.SetDisk(nil)
	}()
	if d.Dir() == "" {
		t.Fatal("store has no directory")
	}
}
