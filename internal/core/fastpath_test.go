package core

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/markov"
)

// randomModel builds a model with skewed history popularity so don't-care
// budgets have something to absorb.
func randomModel(rng *rand.Rand, order int) *markov.Model {
	m := markov.New(order)
	hot := rng.Uint32()
	for i := 0; i < rng.Intn(600)+50; i++ {
		h := rng.Uint32()
		if rng.Intn(3) == 0 {
			h = hot
		}
		m.Observe(h, rng.Intn(2) == 0)
	}
	return m
}

// TestFastPathEqualsPipeline is the differential oracle for the default
// design path: over random models — including don't-care budgets and
// every KeepUnseen/KeepStartup combination — the direct construction
// must produce a machine identical in behaviour (fsm.Equal) and in its
// state tables (fsm.Isomorphic on canonical machines means array
// equality) to the full regex→NFA→DFA pipeline, so every figure metric
// computed from fast-path machines is bit-identical to the pipeline's.
func TestFastPathEqualsPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(rng, rng.Intn(6)+1)
		opt := Options{
			DontCareBudget: []float64{0, 0.01, 0.1, -1}[rng.Intn(4)],
			BiasThreshold:  []float64{0, 0.5, 0.7, 0.9}[rng.Intn(4)],
			KeepUnseen:     rng.Intn(2) == 0,
			KeepStartup:    rng.Intn(2) == 0,
		}
		fast, err := FromModel(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		pipeOpt := opt
		pipeOpt.Artifacts = true
		pipe, err := FromModel(m, pipeOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !fsm.Equal(fast.Machine, pipe.Machine) {
			t.Fatalf("trial %d (%+v): fast path machine differs in behaviour\nfast: %s\npipe: %s",
				trial, opt, fast.Machine, pipe.Machine)
		}
		if !fsm.Isomorphic(fast.Machine, pipe.Machine) {
			t.Fatalf("trial %d (%+v): fast path machine not state-identical\nfast: %s\npipe: %s",
				trial, opt, fast.Machine, pipe.Machine)
		}
		if fast.Machine.NumStates() != pipe.Machine.NumStates() {
			t.Fatalf("trial %d: state counts differ: %d vs %d",
				trial, fast.Machine.NumStates(), pipe.Machine.NumStates())
		}
	}
}

// TestFromModelFoldsDown checks the "fold" entry: designing at a lower
// order than the model was profiled at must equal designing from a model
// trained at that order directly.
func TestFromModelFoldsDown(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	trace := &bitseq.Bits{}
	for i := 0; i < 5000; i++ {
		trace.Append(i%7 < 3 || rng.Intn(12) == 0)
	}
	wide := markov.New(10)
	wide.AddTrace(trace)
	for _, order := range []int{2, 5, 9} {
		folded, err := FromModel(wide, Options{Order: order})
		if err != nil {
			t.Fatal(err)
		}
		narrow := markov.New(order)
		narrow.AddTrace(trace)
		direct, err := FromModel(narrow, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !fsm.Isomorphic(folded.Machine, direct.Machine) {
			t.Fatalf("order %d: design from folded model differs from direct training", order)
		}
	}
}

// TestFromModelOrderAboveModel checks the error path for requesting a
// longer history than the model recorded.
func TestFromModelOrderAboveModel(t *testing.T) {
	m := markov.New(3)
	if _, err := FromModel(m, Options{Order: 4}); err == nil {
		t.Fatal("expected error designing above the model order")
	}
}

// TestCrossTrainMatchesMergeOfOthers is the O(P) cross-training
// property at the core layer: aggregate-minus-self must equal the
// explicit merge of the other programs' models, for a dense order and a
// sparse one (beyond the markov dense-table boundary).
func TestCrossTrainMatchesMergeOfOthers(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	for _, order := range []int{6, 13} {
		suite := map[string]*markov.Model{}
		for _, name := range []string{"gcc", "go", "groff", "li", "perl"} {
			m := markov.New(order)
			for s := 0; s < 4; s++ {
				bits := &bitseq.Bits{}
				for i := 0; i < rng.Intn(300)+10; i++ {
					bits.Append(rng.Intn(2) == 0)
				}
				m.AddTrace(bits)
			}
			suite[name] = m
		}
		ct, err := CrossTrain(suite)
		if err != nil {
			t.Fatal(err)
		}
		for name := range suite {
			want := markov.New(order)
			for other, om := range suite {
				if other == name {
					continue
				}
				if err := want.Merge(om); err != nil {
					t.Fatal(err)
				}
			}
			if !ct[name].Equal(want) {
				t.Fatalf("order %d: cross-trained model for %s differs from merge of others", order, name)
			}
		}
	}
}

// TestCrossTrainOrderMismatch checks the subtract error path surfaces
// through CrossTrain.
func TestCrossTrainOrderMismatch(t *testing.T) {
	suite := map[string]*markov.Model{
		"a": markov.New(3),
		"b": markov.New(4),
	}
	suite["a"].Observe(1, true)
	suite["b"].Observe(1, true)
	if _, err := CrossTrain(suite); err == nil {
		t.Fatal("expected error for mixed-order suite")
	}
}
