// Package core implements the paper's primary contribution: the automated
// design flow that turns a behavioural trace into a small finite state
// machine predictor (§4).
//
// The flow chains the substrate packages:
//
//	trace            (internal/bitseq)
//	  → Markov model (internal/markov, §4.2)
//	  → pattern sets (markov.Partition, §4.3)
//	  → minimized cover (internal/logic, §4.4 — the Espresso step)
//	  → regular expression (internal/regex, §4.5)
//	  → NFA (internal/nfa, Thompson construction, §4.6)
//	  → DFA (internal/dfa, subset construction + Hopcroft, §4.6)
//	  → start-state reduction (dfa.TrimStartup, §4.7)
//	  → predictor machine (internal/fsm) and VHDL/area (internal/vhdl, §4.8)
//
// DirectMachine builds the same predictor by a completely different route
// (explicit history-register automaton, then Hopcroft); the two paths
// producing isomorphic machines is the package's central invariant and is
// enforced by its tests.
package core

import (
	"fmt"
	"time"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/dfa"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/logic"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/nfa"
	"fsmpredict/internal/regex"
)

// Options configures a design run.
type Options struct {
	// Order is the history length N (1..16 for the full-enumeration
	// design flow; the paper never exceeds 10).
	Order int
	// BiasThreshold is the minimum P[1|h] for a history to enter the
	// predict-1 set. 0 means the paper's default of 0.5. Confidence
	// estimators sweep this upward to trade coverage for accuracy (§6).
	BiasThreshold float64
	// DontCareBudget is the cumulative frequency of rare histories moved
	// to the don't-care set. Negative disables it; 0 means the paper's
	// default of 1% (§4.3).
	DontCareBudget float64
	// KeepUnseen forces never-observed histories to predict 0 instead of
	// don't care.
	KeepUnseen bool
	// KeepStartup skips start-state reduction (§4.7), retaining the
	// machine of Figure 1 (left).
	KeepStartup bool
	// Name is attached to the resulting machine.
	Name string
	// Artifacts requests the full regex→NFA→DFA pipeline so every
	// intermediate artifact (Expr, NFAStates, DFAStates,
	// MinimizedStates) is populated. When false — the default — the
	// machine is built by the direct history-register construction,
	// which skips those stages entirely; the result is bit-identical
	// (the differential oracle tests enforce it), only the intermediate
	// artifact fields stay zero.
	Artifacts bool
	// StageObserver, when non-nil, is called once per pipeline stage
	// with the stage name and its wall-clock duration, in execution
	// order (see StageNames): "profile" (trace → Markov model, trace
	// entry points only), "fold" (designing below the model's order),
	// "partition" (§4.3), "minimize" (§4.4), then either the direct
	// fast path's "direct" stage or — with Artifacts — "regex" (§4.5),
	// "nfa" (§4.6), "dfa" (§4.6), "hopcroft", and "reduce" (§4.7 plus
	// machine construction). It must not retain the design; it exists
	// so servers and verbose CLIs can report where design time goes.
	// Nil means no observation and no overhead.
	StageObserver func(stage string, d time.Duration) `json:"-"`
}

// StageNames lists every stage name a design run can report to
// Options.StageObserver, in execution order. "profile" is emitted only
// by the trace entry points, "fold" only when designing below the
// model's order; then "partition" and "minimize" always run, followed by
// "direct" (the default fast path) or the "regex" … "reduce" pipeline
// (Artifacts). The list is part of the API: the stage-observer tests
// assert emissions match it.
var StageNames = []string{
	"profile", "fold", "partition", "minimize",
	"regex", "nfa", "dfa", "hopcroft", "reduce",
	"direct",
}

// observe reports one finished stage to the observer, if any.
func (o *Options) observe(stage string, start time.Time) {
	if o.StageObserver != nil {
		o.StageObserver(stage, time.Since(start))
	}
}

// now returns the current time only when someone is observing, avoiding
// clock reads on the common unobserved path.
func (o *Options) now() (t time.Time) {
	if o.StageObserver != nil {
		t = time.Now()
	}
	return
}

// withDefaults fills in the paper's default parameters. It is idempotent:
// a negative DontCareBudget continues to mean "disabled" (it is clamped to
// zero only where the partition is built).
func (o Options) withDefaults() Options {
	if o.BiasThreshold == 0 {
		o.BiasThreshold = 0.5
	}
	if o.DontCareBudget == 0 {
		o.DontCareBudget = 0.01
	}
	return o
}

func (o Options) validate() error {
	if o.Order < 1 || o.Order > 16 {
		return fmt.Errorf("core: order %d out of range [1,16]", o.Order)
	}
	return nil
}

// Canonical returns the options with the paper's defaults filled in —
// the form under which two option values describe the same design. The
// serving layer hashes this so a request with an explicit 0.5 bias
// threshold and one relying on the default share a cache entry.
func (o Options) Canonical() Options { return o.withDefaults() }

// Validate reports whether the options describe a runnable design
// (currently: the order must be in [1,16]).
func (o Options) Validate() error { return o.validate() }

// Design records every artifact of one run of the flow, so tools and
// experiments can inspect intermediate stages.
type Design struct {
	Options   Options
	Model     *markov.Model
	Partition *markov.Partition
	// Cover is the minimized sum-of-products description of the
	// predict-1 set.
	Cover []bitseq.Cube
	// Expr is the regular expression for the language L of §4.1.
	Expr regex.Node
	// NFAStates, DFAStates and MinimizedStates record the sizes of the
	// intermediate machines; Machine.NumStates() is the final size after
	// start-state reduction.
	NFAStates       int
	DFAStates       int
	MinimizedStates int
	// Machine is the finished predictor.
	Machine *fsm.Machine
}

// FromModel runs the design flow on an existing Markov model. A zero
// opt.Order designs at the model's own order; a smaller order first
// folds the model down exactly (markov.Model.FoldTo — the "fold"
// stage); a larger order is an error, since the model never recorded
// the statistics a longer window needs.
//
// By default the machine is built by the direct history-register
// construction (the "direct" stage) — set opt.Artifacts to run the full
// regex→NFA→DFA pipeline and populate the intermediate artifact fields.
func FromModel(m *markov.Model, opt Options) (*Design, error) {
	if opt.Order == 0 {
		opt.Order = m.Order()
	}
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Order > m.Order() {
		return nil, fmt.Errorf("core: cannot design at order %d from an order-%d model", opt.Order, m.Order())
	}
	if opt.Order < m.Order() {
		start := opt.now()
		folded, err := m.FoldTo(opt.Order)
		if err != nil {
			return nil, err
		}
		m = folded
		opt.observe("fold", start)
	}
	dcBudget := opt.DontCareBudget
	if dcBudget < 0 {
		dcBudget = 0
	}
	start := opt.now()
	part, err := m.Partition(markov.PartitionOptions{
		BiasThreshold:  opt.BiasThreshold,
		DontCareBudget: dcBudget,
		KeepUnseen:     opt.KeepUnseen,
	})
	if err != nil {
		return nil, err
	}
	opt.observe("partition", start)
	start = opt.now()
	cover, err := logic.Minimize(logic.FromPartition(m.Order(), part.PredictOne, part.DontCare))
	if err != nil {
		return nil, err
	}
	opt.observe("minimize", start)
	d := &Design{
		Options:   opt,
		Model:     m,
		Partition: part,
		Cover:     cover,
	}
	if !opt.Artifacts {
		start = opt.now()
		final, err := directDFA(cover, opt.Order, opt.KeepStartup)
		if err != nil {
			return nil, err
		}
		d.Machine = fsm.FromDFA(final)
		d.Machine.Name = opt.Name
		opt.observe("direct", start)
		fsm.BlockTableFor(d.Machine) // warm the superstep table cache
		return d, nil
	}
	start = opt.now()
	d.Expr = regex.FromCover(cover)
	opt.observe("regex", start)
	start = opt.now()
	n := nfa.Compile(d.Expr)
	d.NFAStates = n.NumStates()
	opt.observe("nfa", start)
	start = opt.now()
	raw := dfa.FromNFA(n)
	d.DFAStates = raw.NumStates()
	opt.observe("dfa", start)
	start = opt.now()
	min := raw.Minimize()
	d.MinimizedStates = min.NumStates()
	opt.observe("hopcroft", start)
	start = opt.now()
	final := min
	if !opt.KeepStartup {
		final = normalizeStart(min.TrimStartup(), opt.Order)
	}
	d.Machine = fsm.FromDFA(final)
	d.Machine.Name = opt.Name
	opt.observe("reduce", start)
	fsm.BlockTableFor(d.Machine) // warm the superstep table cache
	return d, nil
}

// FromTrace profiles a binary trace into an Order-length Markov model and
// runs the design flow on it.
func FromTrace(trace *bitseq.Bits, opt Options) (*Design, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	start := opt.now()
	m := markov.New(opt.Order)
	m.AddTrace(trace)
	opt.observe("profile", start)
	return FromModel(m, opt)
}

// FromBools is FromTrace for a boolean slice.
func FromBools(trace []bool, opt Options) (*Design, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	start := opt.now()
	m := markov.New(opt.Order)
	m.AddBools(trace)
	opt.observe("profile", start)
	return FromModel(m, opt)
}

// DirectMachine builds the predictor for a cover without going through
// regular expressions: the 2^order history-register automaton (state =
// last order bits, output = cover match) minimized with Hopcroft. It must
// produce a machine isomorphic to the design flow's (after start-state
// reduction); the tests enforce this. It also serves as a fast path for
// wide covers.
func DirectMachine(cover []bitseq.Cube, order int) (*fsm.Machine, error) {
	d, err := directDFA(cover, order, false)
	if err != nil {
		return nil, err
	}
	return fsm.FromDFA(d), nil
}

// directDFA builds the minimal predictor DFA for a cover without the
// regex→NFA→subset-construction detour: the explicit history-register
// automaton (state = last order bits, output = cover match), minimized
// with Hopcroft. With keepStartup the automaton additionally carries one
// state per partial history (a prefix tree), so — exactly like the
// un-reduced pipeline machine — it outputs 0 until order bits have been
// seen. Either way the result is bit-identical to the pipeline's: both
// recognize the same language, the minimal automaton is unique, and
// Minimize renumbers canonically. The differential oracle tests enforce
// this state for state.
func directDFA(cover []bitseq.Cube, order int, keepStartup bool) (*dfa.DFA, error) {
	if order < 1 || order > 22 {
		return nil, fmt.Errorf("core: order %d out of range [1,22]", order)
	}
	n := 1 << uint(order)
	mask := uint32(n - 1)
	if !keepStartup {
		d := &dfa.DFA{
			Next:   make([][2]int, n),
			Accept: make([]bool, n),
			Start:  0,
		}
		for h := 0; h < n; h++ {
			d.Accept[h] = bitseq.CoverMatches(cover, uint32(h))
			d.Next[h][0] = int(uint32(h) << 1 & mask)
			d.Next[h][1] = int((uint32(h)<<1 | 1) & mask)
		}
		return normalizeStart(d.Minimize(), order), nil
	}
	// Startup variant: a prefix tree over partial histories (the state
	// for the l most recent bits v sits at index 2^l−1+v), flowing into
	// the full-history states at offset n−1. Partial-history states
	// never accept, matching the pipeline's `.*(cubes)` language whose
	// words are all at least order bits long.
	d := &dfa.DFA{
		Next:   make([][2]int, 2*n-1),
		Accept: make([]bool, 2*n-1),
		Start:  0,
	}
	for l := 0; l < order; l++ {
		base, nextBase := 1<<uint(l)-1, 1<<uint(l+1)-1
		if l+1 == order {
			nextBase = n - 1
		}
		for v := 0; v < 1<<uint(l); v++ {
			d.Next[base+v][0] = nextBase + v<<1
			d.Next[base+v][1] = nextBase + v<<1 + 1
		}
	}
	for h := 0; h < n; h++ {
		s := n - 1 + h
		d.Accept[s] = bitseq.CoverMatches(cover, uint32(h))
		d.Next[s][0] = n - 1 + int(uint32(h)<<1&mask)
		d.Next[s][1] = n - 1 + int((uint32(h)<<1|1)&mask)
	}
	return d.Minimize(), nil
}

// normalizeStart moves the start state to the state reached after feeding
// `order` zeros. Machines whose state is a function of the last `order`
// inputs (everything the flow produces) end up with the canonical
// "history 00…0" start regardless of how they were constructed, which
// makes the two construction paths directly comparable. The automaton is
// renumbered canonically afterwards.
func normalizeStart(d *dfa.DFA, order int) *dfa.DFA {
	s := d.Start
	for i := 0; i < order; i++ {
		s = d.Next[s][0]
	}
	return (&dfa.DFA{Next: d.Next, Accept: d.Accept, Start: s}).Canonicalize()
}

// CrossTrain builds, for every model in the suite, an aggregate of all the
// OTHER models — the cross-training protocol of §6.3 used so a
// general-purpose predictor is never trained on the program it is
// evaluated on. The returned map has the same keys as the input.
//
// Rather than re-merging P−1 models for each of the P programs (O(P²)
// count traffic), it merges the whole suite once and subtracts each
// program's own model back out; counts are integer tallies, so
// Aggregate-then-Subtract is exact (markov.Model.Subtract inverts
// Merge), which the cross-training property tests enforce.
func CrossTrain(suite map[string]*markov.Model) (map[string]*markov.Model, error) {
	if len(suite) < 2 {
		return nil, fmt.Errorf("core: cross-training needs at least two models")
	}
	agg, err := Aggregate(suite)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*markov.Model, len(suite))
	for name, m := range suite {
		cross := agg.Clone()
		if err := cross.Subtract(m); err != nil {
			return nil, fmt.Errorf("core: cross-training %s: %v", name, err)
		}
		out[name] = cross
	}
	return out, nil
}

// Aggregate merges all models into one, the whole-suite training of §6.
func Aggregate(suite map[string]*markov.Model) (*markov.Model, error) {
	var agg *markov.Model
	for _, m := range suite {
		if agg == nil {
			agg = m.Clone()
			continue
		}
		if err := agg.Merge(m); err != nil {
			return nil, err
		}
	}
	if agg == nil {
		return nil, fmt.Errorf("core: empty suite")
	}
	return agg, nil
}
