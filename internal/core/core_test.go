package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/fsm"
	"fsmpredict/internal/markov"
	"fsmpredict/internal/regex"
)

const paperTrace = "0000 1000 1011 1101 1110 1111"

func TestPaperWorkedExample(t *testing.T) {
	d, err := FromTrace(bitseq.MustFromString(paperTrace), Options{Order: 2, Name: "t", Artifacts: true})
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: predict-1 histories {01, 10, 11}.
	if got := len(d.Partition.PredictOne); got != 3 {
		t.Errorf("predict-1 set size = %d, want 3", got)
	}
	// §4.4: cover minimizes to (x1)|(1x).
	if len(d.Cover) != 2 {
		t.Fatalf("cover = %v, want two cubes", d.Cover)
	}
	seen := map[string]bool{}
	for _, c := range d.Cover {
		seen[c.String()] = true
	}
	if !seen["x1"] || !seen["1x"] {
		t.Errorf("cover = %v, want {x1, 1x}", d.Cover)
	}
	// §4.5: regular expression (0|1)*( 1(0|1) | (0|1)1 ) in our notation.
	if got := regex.String(d.Expr); got != ".*(x1|1x)" && got != ".*(.1|1.)" {
		t.Errorf("regex = %q", got)
	}
	// Figure 1: 5 states minimized, 3 after start-state reduction.
	if d.MinimizedStates != 5 {
		t.Errorf("minimized states = %d, want 5", d.MinimizedStates)
	}
	if d.Machine.NumStates() != 3 {
		t.Errorf("final machine states = %d, want 3", d.Machine.NumStates())
	}
	// Steady-state behaviour check: histories ending 01/10/11 predict 1.
	for h := uint32(0); h < 4; h++ {
		s := d.Machine.Start
		s = d.Machine.Step(s, h>>1&1 == 1)
		s = d.Machine.Step(s, h&1 == 1)
		if want := h != 0; d.Machine.Output[s] != want {
			t.Errorf("history %s predicts %v, want %v",
				bitseq.HistoryString(h, 2), d.Machine.Output[s], want)
		}
	}
}

func TestKeepStartup(t *testing.T) {
	d, err := FromTrace(bitseq.MustFromString(paperTrace), Options{Order: 2, KeepStartup: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Machine.NumStates() != 5 {
		t.Errorf("startup machine states = %d, want 5 (Figure 1 left)", d.Machine.NumStates())
	}
	// The startup machine predicts 0 until it has seen two bits.
	r := d.Machine.NewRunner()
	if r.Predict() {
		t.Error("undefined history should predict 0")
	}
	r.Update(true)
	if r.Predict() {
		t.Error("one bit of history should still predict 0")
	}
	r.Update(true)
	if !r.Predict() {
		t.Error("history 11 should predict 1")
	}
}

// TestTwoConstructionPathsAgree is the package's central oracle: the
// regex → NFA → DFA → Hopcroft → trim pipeline and the direct
// history-automaton construction must produce isomorphic machines.
func TestTwoConstructionPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		order := rng.Intn(6) + 1
		m := markov.New(order)
		for i := 0; i < rng.Intn(400)+20; i++ {
			m.Observe(rng.Uint32(), rng.Intn(2) == 0)
		}
		d, err := FromModel(m, Options{Artifacts: true})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := DirectMachine(d.Cover, order)
		if err != nil {
			t.Fatal(err)
		}
		if !fsm.Isomorphic(d.Machine, direct) {
			t.Fatalf("trial %d (order %d, cover %v):\npipeline: %s\ndirect:   %s",
				trial, order, d.Cover, d.Machine, direct)
		}
	}
}

// TestMachineMatchesCoverSemantics: after warm-up, the machine's
// prediction equals the cover's match on the trailing history.
func TestMachineMatchesCoverSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 30; trial++ {
		order := rng.Intn(5) + 2
		m := markov.New(order)
		for i := 0; i < 300; i++ {
			m.Observe(rng.Uint32(), rng.Intn(3) == 0)
		}
		d, err := FromModel(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := d.Machine.NewRunner()
		h := bitseq.NewHistory(order)
		for i := 0; i < 500; i++ {
			b := rng.Intn(2) == 1
			r.Update(b)
			h.Push(b)
			if h.Warm() {
				want := bitseq.CoverMatches(d.Cover, h.Value())
				if got := r.Predict(); got != want {
					t.Fatalf("trial %d step %d: predict %v, cover says %v (history %s)",
						trial, i, got, want, h)
				}
			}
		}
	}
}

func TestAlwaysTakenTraceGivesTinyMachine(t *testing.T) {
	trace := &bitseq.Bits{}
	for i := 0; i < 100; i++ {
		trace.Append(true)
	}
	d, err := FromTrace(trace, Options{Order: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Unseen histories are don't cares, so everything collapses to a
	// single always-predict-1 state.
	if d.Machine.NumStates() != 1 || !d.Machine.Output[0] {
		t.Fatalf("machine = %s, want single predict-1 state", d.Machine)
	}
}

func TestAlternatingTrace(t *testing.T) {
	trace := &bitseq.Bits{}
	for i := 0; i < 100; i++ {
		trace.Append(i%2 == 0)
	}
	d, err := FromTrace(trace, Options{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The machine must track the alternation perfectly after warm-up.
	res := d.Machine.Simulate(trace.Bools(), 2)
	if res.MissRate() != 0 {
		t.Fatalf("alternating trace miss rate = %v, want 0 (machine %s)",
			res.MissRate(), d.Machine)
	}
}

func TestBiasThresholdSweepMonotonic(t *testing.T) {
	// Higher thresholds must never enlarge the predict-1 set.
	rng := rand.New(rand.NewSource(131))
	m := markov.New(5)
	for i := 0; i < 3000; i++ {
		m.Observe(rng.Uint32(), rng.Intn(4) != 0)
	}
	prev := -1
	for _, thr := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99} {
		d, err := FromModel(m, Options{BiasThreshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		n := len(d.Partition.PredictOne)
		if prev >= 0 && n > prev {
			t.Errorf("threshold %v grew predict-1 set: %d > %d", thr, n, prev)
		}
		prev = n
	}
}

func TestEmptyModelProducesConstantZero(t *testing.T) {
	m := markov.New(3)
	d, err := FromModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Machine.NumStates() != 1 || d.Machine.Output[0] {
		t.Fatalf("machine = %s, want single predict-0 state", d.Machine)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := FromBools([]bool{true, false}, Options{Order: 0}); err == nil {
		t.Error("expected order validation error")
	}
	if _, err := FromBools([]bool{true, false}, Options{Order: 17}); err == nil {
		t.Error("expected order validation error")
	}
	if _, err := DirectMachine(nil, 0); err == nil {
		t.Error("expected DirectMachine order error")
	}
}

func TestDontCareBudgetShrinksMachines(t *testing.T) {
	// The paper reports don't cares can halve predictor size (§4.3). At
	// minimum they must never make the machine bigger on average.
	rng := rand.New(rand.NewSource(137))
	totalWith, totalWithout := 0, 0
	for trial := 0; trial < 15; trial++ {
		m := markov.New(6)
		// Skewed history popularity: some histories dominate.
		for i := 0; i < 4000; i++ {
			h := uint32(rng.Intn(8))
			if rng.Intn(10) == 0 {
				h = rng.Uint32()
			}
			m.Observe(h, rng.Intn(2) == 0)
		}
		with, err := FromModel(m, Options{DontCareBudget: 0.01, KeepUnseen: true})
		if err != nil {
			t.Fatal(err)
		}
		without, err := FromModel(m, Options{DontCareBudget: -1, KeepUnseen: true})
		if err != nil {
			t.Fatal(err)
		}
		totalWith += with.Machine.NumStates()
		totalWithout += without.Machine.NumStates()
	}
	if totalWith > totalWithout {
		t.Errorf("don't cares grew machines: %d with vs %d without", totalWith, totalWithout)
	}
}

func TestCrossTrainExcludesTarget(t *testing.T) {
	suite := map[string]*markov.Model{}
	for i, name := range []string{"a", "b", "c"} {
		m := markov.New(2)
		m.ObserveN(uint32(i), true, 100) // distinctive signature per program
		suite[name] = m
	}
	ct, err := CrossTrain(suite)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range ct {
		// The target's own signature history must be absent.
		sig := map[string]uint32{"a": 0, "b": 1, "c": 2}[name]
		if m.Seen(sig) {
			t.Errorf("cross-trained model for %s contains its own data", name)
		}
		if m.Total() != 200 {
			t.Errorf("cross-trained model for %s has %d observations, want 200", name, m.Total())
		}
	}
}

func TestCrossTrainNeedsTwo(t *testing.T) {
	if _, err := CrossTrain(map[string]*markov.Model{"solo": markov.New(2)}); err == nil {
		t.Error("expected error for single-model suite")
	}
}

func TestAggregate(t *testing.T) {
	suite := map[string]*markov.Model{}
	for i := 0; i < 3; i++ {
		m := markov.New(2)
		m.ObserveN(uint32(i), true, 10)
		suite[string(rune('a'+i))] = m
	}
	agg, err := Aggregate(suite)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Total() != 30 {
		t.Fatalf("aggregate total = %d, want 30", agg.Total())
	}
	if _, err := Aggregate(nil); err == nil {
		t.Error("expected error for empty suite")
	}
}

func TestStageSizesRecorded(t *testing.T) {
	d, err := FromTrace(bitseq.MustFromString(paperTrace), Options{Order: 2, Artifacts: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.NFAStates == 0 || d.DFAStates == 0 || d.MinimizedStates == 0 {
		t.Errorf("stage sizes missing: %d/%d/%d", d.NFAStates, d.DFAStates, d.MinimizedStates)
	}
	if d.NFAStates < d.DFAStates && d.DFAStates < d.MinimizedStates {
		t.Error("suspicious stage size ordering")
	}
}

// TestDesignIsModelOptimal: on the training trace, the designed machine's
// steady-state misprediction count must match the information-theoretic
// optimum of the Markov model — sum over histories of the minority count
// — up to the observations the don't-care budget may sacrifice.
func TestDesignIsModelOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	for trial := 0; trial < 10; trial++ {
		order := rng.Intn(4) + 2
		n := 4000
		trace := make([]bool, n)
		// A mix of pattern and noise so the optimum is nontrivial.
		period := rng.Intn(5) + order
		for i := range trace {
			trace[i] = i%period < period/2 || rng.Intn(10) == 0
		}
		d, err := FromBools(trace, Options{Order: order, DontCareBudget: -1})
		if err != nil {
			t.Fatal(err)
		}
		var optimalMisses uint64
		for _, h := range d.Model.Histories() {
			c := d.Model.Count(h)
			if c.Zeros < c.Ones {
				optimalMisses += c.Zeros
			} else {
				optimalMisses += c.Ones
			}
		}
		res := d.Machine.Simulate(trace, order)
		got := uint64(res.Total - res.Correct)
		if got != optimalMisses {
			t.Errorf("trial %d (order %d): machine misses %d, model optimum %d",
				trial, order, got, optimalMisses)
		}
	}
}

// TestWideOrderDesign exercises the flow beyond the paper's N=10 at
// order 12, where the partition enumerates 4096 histories and the logic
// minimizer may switch engines: the pipeline and direct paths must still
// agree and the machine must still be model-optimal on its trace.
func TestWideOrderDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-order design is slow")
	}
	rng := rand.New(rand.NewSource(151))
	trace := make([]bool, 20000)
	for i := range trace {
		switch {
		case i < 12:
			trace[i] = rng.Intn(2) == 1
		case rng.Intn(25) == 0:
			trace[i] = rng.Intn(2) == 1
		default:
			trace[i] = trace[i-5] != trace[i-11]
		}
	}
	d, err := FromBools(trace, Options{Order: 12, DontCareBudget: -1, Artifacts: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := DirectMachine(d.Cover, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !fsm.Isomorphic(d.Machine, direct) {
		t.Fatalf("order-12 pipeline and direct machines differ: %d vs %d states",
			d.Machine.NumStates(), direct.NumStates())
	}
	var optimal uint64
	for _, h := range d.Model.Histories() {
		c := d.Model.Count(h)
		if c.Zeros < c.Ones {
			optimal += c.Zeros
		} else {
			optimal += c.Ones
		}
	}
	res := d.Machine.Simulate(trace, 12)
	if got := uint64(res.Total - res.Correct); got != optimal {
		t.Errorf("order-12 machine misses %d, model optimum %d", got, optimal)
	}
}

func TestStageObserver(t *testing.T) {
	// Every (entry point, options) combination must emit exactly the
	// documented stages, in the documented order.
	cases := []struct {
		name string
		run  func(obs func(string, time.Duration)) (*Design, error)
		want []string
	}{
		{
			name: "trace fast path",
			run: func(obs func(string, time.Duration)) (*Design, error) {
				return FromTrace(bitseq.MustFromString(paperTrace), Options{Order: 2, StageObserver: obs})
			},
			want: []string{"profile", "partition", "minimize", "direct"},
		},
		{
			name: "trace full pipeline",
			run: func(obs func(string, time.Duration)) (*Design, error) {
				return FromTrace(bitseq.MustFromString(paperTrace), Options{Order: 2, Artifacts: true, StageObserver: obs})
			},
			want: []string{"profile", "partition", "minimize", "regex", "nfa", "dfa", "hopcroft", "reduce"},
		},
		{
			name: "model fold then fast path",
			run: func(obs func(string, time.Duration)) (*Design, error) {
				m := markov.New(4)
				m.AddTrace(bitseq.MustFromString(paperTrace))
				return FromModel(m, Options{Order: 2, StageObserver: obs})
			},
			want: []string{"fold", "partition", "minimize", "direct"},
		},
		{
			name: "model fold then pipeline",
			run: func(obs func(string, time.Duration)) (*Design, error) {
				m := markov.New(4)
				m.AddTrace(bitseq.MustFromString(paperTrace))
				return FromModel(m, Options{Order: 2, Artifacts: true, StageObserver: obs})
			},
			want: []string{"fold", "partition", "minimize", "regex", "nfa", "dfa", "hopcroft", "reduce"},
		},
	}
	documented := make(map[string]bool, len(StageNames))
	for _, s := range StageNames {
		documented[s] = true
	}
	var emitted []string
	for _, tc := range cases {
		var stages []string
		d, err := tc.run(func(stage string, dur time.Duration) {
			if dur < 0 {
				t.Errorf("%s: stage %s reported negative duration %v", tc.name, stage, dur)
			}
			stages = append(stages, stage)
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(stages, tc.want) {
			t.Errorf("%s: observed stages %v, want %v", tc.name, stages, tc.want)
		}
		for _, s := range stages {
			if !documented[s] {
				t.Errorf("%s: stage %q is not in StageNames %v", tc.name, s, StageNames)
			}
		}
		if d.Machine.NumStates() != 3 {
			t.Errorf("%s: observer changed the design: %s", tc.name, d.Machine)
		}
		emitted = append(emitted, stages...)
	}
	// Conversely, every documented stage must be reachable: the union of
	// the cases above covers StageNames exactly.
	seen := make(map[string]bool, len(emitted))
	for _, s := range emitted {
		seen[s] = true
	}
	for _, s := range StageNames {
		if !seen[s] {
			t.Errorf("documented stage %q never emitted by the covered paths", s)
		}
	}

	// Nil observer must be safe and produce the identical machine.
	d, err := FromTrace(bitseq.MustFromString(paperTrace), Options{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := FromTrace(bitseq.MustFromString(paperTrace), Options{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !fsm.Isomorphic(d.Machine, plain.Machine) {
		t.Errorf("observed and unobserved designs differ")
	}
}
