package vpred

import "fmt"

// This file implements the other value predictor families the paper
// surveys in §6.1 before settling on two-delta stride: last-value
// prediction (Lipasti et al.), context-based prediction (the finite
// context method of Sazeides & Smith), and a hybrid that combines them
// with per-component selection (Wang & Franklin style). They exist so
// confidence estimation can be studied against the full §6.1 design
// space, not only the stride predictor.

// ValuePredictor is the common interface of all load value predictors.
type ValuePredictor interface {
	// Name identifies the configuration.
	Name() string
	// Access predicts for the load at pc, checks against the actual
	// value, trains, and reports what happened.
	Access(pc, actual uint64) Access
}

// Access implementations for the families. StridePredictor (two-delta)
// already satisfies ValuePredictor via its Access method.

// Name identifies the two-delta stride predictor.
func (p *StridePredictor) Name() string {
	return fmt.Sprintf("stride2d-%d", len(p.entries))
}

// LastValuePredictor predicts that a load returns the same value it
// returned last time (Lipasti, Wilkerson & Shen).
type LastValuePredictor struct {
	entries []lvEntry
	mask    uint64
}

type lvEntry struct {
	valid bool
	tag   uint64
	value uint64
}

// NewLastValue returns a last-value predictor with 2^log2Size entries.
func NewLastValue(log2Size int) *LastValuePredictor {
	if log2Size < 1 || log2Size > 24 {
		panic(fmt.Sprintf("vpred: table size 2^%d out of range", log2Size))
	}
	return &LastValuePredictor{
		entries: make([]lvEntry, 1<<uint(log2Size)),
		mask:    uint64(1)<<uint(log2Size) - 1,
	}
}

// Name identifies the predictor.
func (p *LastValuePredictor) Name() string {
	return fmt.Sprintf("lastvalue-%d", len(p.entries))
}

// Access predicts the previously seen value.
func (p *LastValuePredictor) Access(pc, actual uint64) Access {
	idx := int((pc >> 2) & p.mask)
	e := &p.entries[idx]
	if !e.valid || e.tag != pc {
		*e = lvEntry{valid: true, tag: pc, value: actual}
		return Access{Entry: idx}
	}
	acc := Access{Entry: idx, Valid: true, Predicted: e.value}
	acc.Correct = e.value == actual
	e.value = actual
	return acc
}

// ContextPredictor is a finite context method (FCM) predictor: a
// first-level table records each load's recent value history (hashed);
// a second-level table maps that context to the predicted next value
// (Sazeides & Smith).
type ContextPredictor struct {
	order  int
	level1 []fcmEntry
	level2 []fcmValue
	l1Mask uint64
	l2Mask uint64
}

type fcmEntry struct {
	valid bool
	tag   uint64
	hash  uint64
}

type fcmValue struct {
	valid bool
	value uint64
}

// NewContext returns an order-N FCM predictor with 2^log2Size entries in
// each level.
func NewContext(log2Size, order int) *ContextPredictor {
	if log2Size < 1 || log2Size > 24 {
		panic(fmt.Sprintf("vpred: table size 2^%d out of range", log2Size))
	}
	if order < 1 || order > 8 {
		panic(fmt.Sprintf("vpred: fcm order %d out of range [1,8]", order))
	}
	return &ContextPredictor{
		order:  order,
		level1: make([]fcmEntry, 1<<uint(log2Size)),
		level2: make([]fcmValue, 1<<uint(log2Size)),
		l1Mask: uint64(1)<<uint(log2Size) - 1,
		l2Mask: uint64(1)<<uint(log2Size) - 1,
	}
}

// Name identifies the configuration.
func (p *ContextPredictor) Name() string {
	return fmt.Sprintf("fcm%d-%d", p.order, len(p.level1))
}

// bitsPerValue is how many hashed bits of each recent value the context
// keeps; older values shift out after `order` updates (select-fold-shift
// hashing with a finite window).
func (p *ContextPredictor) bitsPerValue() uint {
	b := uint(48 / p.order)
	if b > 16 {
		b = 16
	}
	return b
}

// foldValue shifts a hashed fingerprint of v into the bounded context.
func (p *ContextPredictor) foldValue(hash, v uint64) uint64 {
	b := p.bitsPerValue()
	fp := (v * 0x9e3779b97f4a7c15) >> (64 - b)
	window := uint64(1)<<(b*uint(p.order)) - 1
	return (hash<<b | fp) & window
}

func (p *ContextPredictor) l2Index(pc, hash uint64) uint64 {
	return (hash*0x2545f4914f6cdd1d ^ pc>>2) & p.l2Mask
}

// Access predicts the value that last followed the current context.
func (p *ContextPredictor) Access(pc, actual uint64) Access {
	idx := int((pc >> 2) & p.l1Mask)
	e := &p.level1[idx]
	if !e.valid || e.tag != pc {
		*e = fcmEntry{valid: true, tag: pc, hash: p.foldValue(0, actual)}
		return Access{Entry: idx}
	}
	l2 := &p.level2[p.l2Index(pc, e.hash)]
	acc := Access{Entry: idx}
	if l2.valid {
		acc.Valid = true
		acc.Predicted = l2.value
		acc.Correct = l2.value == actual
	}
	// Train: current context now predicts this value; fold the value
	// into the context.
	*l2 = fcmValue{valid: true, value: actual}
	e.hash = p.foldValue(e.hash, actual)
	return acc
}

// HybridPredictor combines stride, last-value and context components
// with per-component saturating selectors, in the spirit of the hybrid
// schemes of §6.1: the component with the highest selector confidence
// makes the prediction; all components train on every access.
type HybridPredictor struct {
	stride  *StridePredictor
	last    *LastValuePredictor
	context *ContextPredictor
	// sel[i] scores component i per table entry.
	sel  [3][]int8
	mask uint64
}

// NewHybrid builds a hybrid over 2^log2Size-entry components.
func NewHybrid(log2Size, fcmOrder int) *HybridPredictor {
	h := &HybridPredictor{
		stride:  New(log2Size),
		last:    NewLastValue(log2Size),
		context: NewContext(log2Size, fcmOrder),
		mask:    uint64(1)<<uint(log2Size) - 1,
	}
	for i := range h.sel {
		h.sel[i] = make([]int8, 1<<uint(log2Size))
	}
	return h
}

// Name identifies the configuration.
func (h *HybridPredictor) Name() string {
	return fmt.Sprintf("hybrid-%d", len(h.sel[0]))
}

// Access asks every component, predicts with the best-scoring one, and
// trains all selectors with each component's correctness.
func (h *HybridPredictor) Access(pc, actual uint64) Access {
	idx := int((pc >> 2) & h.mask)
	accs := [3]Access{
		h.stride.Access(pc, actual),
		h.last.Access(pc, actual),
		h.context.Access(pc, actual),
	}
	best, bestScore := -1, int8(-1)
	for i, a := range accs {
		if a.Valid && h.sel[i][idx] > bestScore {
			best, bestScore = i, h.sel[i][idx]
		}
	}
	out := Access{Entry: idx}
	if best >= 0 {
		out.Valid = true
		out.Predicted = accs[best].Predicted
		out.Correct = accs[best].Correct
	}
	for i, a := range accs {
		if !a.Valid {
			continue
		}
		if a.Correct {
			if h.sel[i][idx] < 7 {
				h.sel[i][idx]++
			}
		} else if h.sel[i][idx] > 0 {
			h.sel[i][idx]--
		}
	}
	return out
}

// CorrectRate runs a predictor over (pc, value) pairs and returns the
// fraction of accesses with correct predictions — the quick comparison
// metric used by tests and benchmarks.
func CorrectRate(p ValuePredictor, pcs, values []uint64) float64 {
	if len(pcs) != len(values) || len(pcs) == 0 {
		return 0
	}
	correct := 0
	for i := range pcs {
		if p.Access(pcs[i], values[i]).Correct {
			correct++
		}
	}
	return float64(correct) / float64(len(pcs))
}
