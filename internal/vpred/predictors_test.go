package vpred

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/trace"
	"fsmpredict/internal/workload"
)

func seq(pc uint64, values []uint64) (pcs, vals []uint64) {
	pcs = make([]uint64, len(values))
	for i := range pcs {
		pcs[i] = pc
	}
	return pcs, values
}

func repeating(pattern []uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

func TestLastValuePredictor(t *testing.T) {
	p := NewLastValue(4)
	pcs, vals := seq(0x40, repeating([]uint64{7}, 50))
	if rate := CorrectRate(p, pcs, vals); rate < 0.95 {
		t.Errorf("constant value rate = %v, want ~1", rate)
	}
	// Strided values defeat last-value prediction.
	var strided []uint64
	for i := 0; i < 50; i++ {
		strided = append(strided, uint64(i*8))
	}
	pcs, vals = seq(0x80, strided)
	if rate := CorrectRate(NewLastValue(4), pcs, vals); rate > 0.05 {
		t.Errorf("strided rate = %v, want ~0 for last-value", rate)
	}
}

func TestContextPredictorLearnsValueCycle(t *testing.T) {
	// Values cycling A,B,C are invisible to stride and last-value but
	// trivial for an FCM with order >= 1.
	p := NewContext(8, 3)
	pcs, vals := seq(0x40, repeating([]uint64{100, 250, 999}, 400))
	if rate := CorrectRate(p, pcs, vals); rate < 0.9 {
		t.Errorf("fcm rate on value cycle = %v, want > 0.9", rate)
	}
	pcs, vals = seq(0x40, repeating([]uint64{100, 250, 999}, 400))
	if rate := CorrectRate(New(8), pcs, vals); rate > 0.2 {
		t.Errorf("stride rate on value cycle = %v, expected low", rate)
	}
}

func TestHybridCombinesStrengths(t *testing.T) {
	// A workload mixing a strided load, a constant load and a cyclic
	// load: the hybrid must approach the best component on each.
	type site struct {
		pc   uint64
		vals []uint64
	}
	var strided []uint64
	for i := 0; i < 600; i++ {
		strided = append(strided, uint64(i*16))
	}
	sites := []site{
		{0x100, strided},
		{0x200, repeating([]uint64{42}, 600)},
		{0x300, repeating([]uint64{5, 17, 99, 3}, 600)},
	}
	h := NewHybrid(8, 3)
	correct, total := 0, 0
	for i := 0; i < 600; i++ {
		for _, s := range sites {
			acc := h.Access(s.pc, s.vals[i])
			total++
			if acc.Correct {
				correct++
			}
		}
	}
	if rate := float64(correct) / float64(total); rate < 0.85 {
		t.Errorf("hybrid rate = %v, want > 0.85 across mixed sites", rate)
	}
}

func TestHybridBeatsComponentsOnMixedWorkload(t *testing.T) {
	prog, _ := workload.LoadByName("gcc")
	events := prog.Generate(workload.Train, 40000)
	run := func(p ValuePredictor) float64 {
		correct := 0
		for _, e := range events {
			if p.Access(e.PC, e.Value).Correct {
				correct++
			}
		}
		return float64(correct) / float64(len(events))
	}
	hybrid := run(NewHybrid(11, 3))
	stride := run(New(11))
	last := run(NewLastValue(11))
	if hybrid < stride-0.02 || hybrid < last-0.02 {
		t.Errorf("hybrid %.3f should not trail components (stride %.3f, last %.3f)",
			hybrid, stride, last)
	}
}

func TestPredictorNames(t *testing.T) {
	for _, c := range []struct {
		p    ValuePredictor
		want string
	}{
		{New(4), "stride2d-16"},
		{NewLastValue(4), "lastvalue-16"},
		{NewContext(4, 2), "fcm2-16"},
		{NewHybrid(4, 2), "hybrid-16"},
	} {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestPredictorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLastValue(0) },
		func() { NewContext(0, 2) },
		func() { NewContext(8, 0) },
		func() { NewContext(8, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCorrectRateEdgeCases(t *testing.T) {
	if CorrectRate(New(4), nil, nil) != 0 {
		t.Error("empty input should give 0")
	}
	if CorrectRate(New(4), []uint64{1}, []uint64{1, 2}) != 0 {
		t.Error("mismatched input should give 0")
	}
}

func TestAllPredictorsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	events := make([]trace.LoadEvent, 5000)
	for i := range events {
		events[i] = trace.LoadEvent{
			PC:    0x100 + uint64(rng.Intn(16))*4,
			Value: rng.Uint64() >> 32,
		}
	}
	for _, mk := range []func() ValuePredictor{
		func() ValuePredictor { return New(6) },
		func() ValuePredictor { return NewLastValue(6) },
		func() ValuePredictor { return NewContext(6, 3) },
		func() ValuePredictor { return NewHybrid(6, 3) },
	} {
		run := func(p ValuePredictor) int {
			c := 0
			for _, e := range events {
				if p.Access(e.PC, e.Value).Correct {
					c++
				}
			}
			return c
		}
		if run(mk()) != run(mk()) {
			t.Errorf("%s not deterministic", mk().Name())
		}
	}
}
