// Package vpred implements the value-prediction substrate of §6.1: a
// tagged two-delta stride value predictor for load instructions. The
// paper uses a 2K-entry table; each access produces a prediction whose
// correctness feeds the confidence estimators of §6.2–6.4.
package vpred

import "fmt"

// Access describes the outcome of one load passing through the predictor.
type Access struct {
	// Entry is the table index the load mapped to; confidence counters
	// are maintained per entry (§6.1).
	Entry int
	// Valid reports whether a prediction was made (tag hit). A missing
	// entry makes no prediction; the access allocates and trains.
	Valid bool
	// Predicted is the predicted value (meaningful when Valid).
	Predicted uint64
	// Correct reports Valid && Predicted == actual.
	Correct bool
}

type entry struct {
	valid      bool
	tag        uint64
	lastValue  uint64
	stride     uint64
	lastStride uint64
}

// StridePredictor is a two-delta stride value predictor: the predicted
// stride is replaced only after the same new stride is observed twice in
// a row (§6.1, Eickemeyer & Vassiliadis / Sazeides & Smith).
type StridePredictor struct {
	entries []entry
	mask    uint64
}

// TableLog2Default is the paper's table size: 2K entries.
const TableLog2Default = 11

// New returns a predictor with 2^log2Size entries.
func New(log2Size int) *StridePredictor {
	if log2Size < 1 || log2Size > 24 {
		panic(fmt.Sprintf("vpred: table size 2^%d out of range", log2Size))
	}
	return &StridePredictor{
		entries: make([]entry, 1<<uint(log2Size)),
		mask:    uint64(1)<<uint(log2Size) - 1,
	}
}

// Size returns the number of table entries.
func (p *StridePredictor) Size() int { return len(p.entries) }

// Access performs one load: predicts (on a tag hit), checks against the
// actual value, and trains the entry. On a tag miss the entry is
// reallocated for this PC with no prediction made.
func (p *StridePredictor) Access(pc, actual uint64) Access {
	idx := int((pc >> 2) & p.mask)
	e := &p.entries[idx]
	if !e.valid || e.tag != pc {
		*e = entry{valid: true, tag: pc, lastValue: actual}
		return Access{Entry: idx}
	}
	acc := Access{
		Entry:     idx,
		Valid:     true,
		Predicted: e.lastValue + e.stride,
	}
	acc.Correct = acc.Predicted == actual

	newStride := actual - e.lastValue
	if newStride == e.lastStride {
		e.stride = newStride
	}
	e.lastStride = newStride
	e.lastValue = actual
	return acc
}
