package vpred

import (
	"testing"

	"fsmpredict/internal/workload"
)

func TestLinearStrideLocksOn(t *testing.T) {
	p := New(4)
	pc := uint64(0x40)
	// Values 0, 8, 16, 24, ...: first access allocates, second trains the
	// stride once, third confirms it (two-delta), fourth predicts right.
	var results []Access
	for i := 0; i < 10; i++ {
		results = append(results, p.Access(pc, uint64(i*8)))
	}
	if results[0].Valid {
		t.Error("first access should be a table miss")
	}
	for i := 3; i < 10; i++ {
		if !results[i].Correct {
			t.Errorf("access %d should be correct (predicted %d)", i, results[i].Predicted)
		}
	}
}

func TestTwoDeltaResistsOneOffStride(t *testing.T) {
	p := New(4)
	pc := uint64(0x40)
	vals := []uint64{0, 8, 16, 24, 1000, 1008, 1016}
	var accs []Access
	for _, v := range vals {
		accs = append(accs, p.Access(pc, v))
	}
	// The jump to 1000 is wrong, but the predicted stride must stay 8
	// (976 was seen only once), so 1008 predicts correctly.
	if accs[4].Correct {
		t.Error("jump access should mispredict")
	}
	if !accs[5].Correct {
		t.Errorf("post-jump access should still use stride 8 (predicted %d)", accs[5].Predicted)
	}
}

func TestTwoDeltaAdoptsRepeatedStride(t *testing.T) {
	p := New(4)
	pc := uint64(0x40)
	// Stride 8 twice, then stride 16 repeatedly: after two 16s the
	// predictor must switch.
	vals := []uint64{0, 8, 16, 32, 48, 64, 80}
	var accs []Access
	for _, v := range vals {
		accs = append(accs, p.Access(pc, v))
	}
	if !accs[5].Correct || !accs[6].Correct {
		t.Errorf("predictor failed to adopt the repeated stride: %+v", accs[4:])
	}
}

func TestConstantLoadCorrectAfterWarmup(t *testing.T) {
	p := New(4)
	for i := 0; i < 5; i++ {
		acc := p.Access(0x80, 42)
		if i >= 1 && !acc.Correct {
			t.Errorf("access %d: constant value should predict correctly", i)
		}
	}
}

func TestTagConflictEvicts(t *testing.T) {
	p := New(2) // 4 entries; PCs 0x10 and 0x50 collide (index bits 2..3)
	a, b := uint64(0x10), uint64(0x10+4*4)
	p.Access(a, 0)
	p.Access(a, 8)
	p.Access(a, 16)
	if acc := p.Access(b, 5); acc.Valid {
		t.Error("conflicting PC should miss and reallocate")
	}
	if acc := p.Access(a, 24); acc.Valid {
		t.Error("evicted PC should miss on return")
	}
}

func TestSizeAndValidation(t *testing.T) {
	if New(TableLog2Default).Size() != 2048 {
		t.Error("default table should have 2K entries")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad size")
		}
	}()
	New(0)
}

func TestStridePatternCorrectnessCycle(t *testing.T) {
	// Strides 8,8,40: after warm-up the correctness stream follows a
	// strict period-3 pattern with exactly two corrects per period.
	prog := &workload.StridePattern{Addr: 0x100, Strides: []uint64{8, 8, 40}}
	env := &workload.LoadEnv{}
	p := New(4)
	var bits []bool
	for i := 0; i < 300; i++ {
		acc := p.Access(0x100, prog.NextValue(env))
		bits = append(bits, acc.Valid && acc.Correct)
	}
	warm := 12
	correct := 0
	for i := warm; i < len(bits); i++ {
		if bits[i] {
			correct++
		}
		if bits[i] != bits[i-3] {
			t.Fatalf("correctness not period-3 at %d", i)
		}
	}
	want := (len(bits) - warm) * 2 / 3
	if correct < want-2 || correct > want+2 {
		t.Errorf("correct = %d, want ~%d (2 of every 3)", correct, want)
	}
}
