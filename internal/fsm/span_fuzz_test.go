package fsm

import (
	"math/rand"
	"testing"

	"fsmpredict/internal/bitseq"
)

// FuzzSpanKernel differentially fuzzes the span kernel against both the
// block kernel and the scalar machine walk: arbitrary stream bytes
// (which the fuzzer will steer toward run-boundary edge cases), a seeded
// machine, and arbitrary skip. Any divergence — misses, exit state, or a
// panic in the index walk — is a finding.
func FuzzSpanKernel(f *testing.F) {
	f.Add(int64(1), 10, []byte{0x00, 0x00, 0xFF, 0xFF, 0xA5, 0xFF, 0xFF, 0xFF, 0x00})
	f.Add(int64(2), 0, []byte{0xFF})
	f.Add(int64(3), 100, make([]byte, 64))
	f.Fuzz(func(t *testing.T, seed int64, skip int, stream []byte) {
		if len(stream) > 1<<12 {
			stream = stream[:1<<12]
		}
		if skip < 0 {
			skip = 0
		}
		rng := rand.New(rand.NewSource(seed))
		m := randomMachine(rng, 1+rng.Intn(maxBlockStates))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		bits := &bitseq.Bits{}
		for _, b := range stream {
			for k := 0; k < 8; k++ {
				bits.Append(b>>uint(k)&1 == 1)
			}
		}
		// A ragged tail exercises the scalar phases.
		for k := 0; k < int(seed&7); k++ {
			bits.Append(rng.Intn(2) == 1)
		}
		n := bits.Len()
		if skip > n {
			skip = skip % (n + 1)
		}
		words := bits.Words()
		runs := bitseq.Runs(words, n, bitseq.DefaultMinRunBytes)

		want := tab.SimulatePacked(words, n, skip)
		got := tab.SimulatePackedSpans(words, n, skip, runs)
		if got != want {
			t.Fatalf("span %+v, block %+v (n=%d skip=%d runs=%d)", got, want, n, skip, len(runs))
		}
		scalar := m.SimulateScalar(bits.Bools(), skip)
		if got != scalar {
			t.Fatalf("span %+v, scalar %+v (n=%d skip=%d)", got, scalar, n, skip)
		}
		// Index-robustness: a coarser index (longer minimum run) must not
		// change results, only skip less.
		coarse := bitseq.Runs(words, n, 32)
		if got2 := tab.SimulatePackedSpans(words, n, skip, coarse); got2 != want {
			t.Fatalf("coarse-index span %+v, block %+v", got2, want)
		}
	})
}
