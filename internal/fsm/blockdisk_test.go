package fsm

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fsmpredict/internal/disktier"
)

func TestBlockTableDiskCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 5, 41, 256} {
		m := randomMachine(rng, n)
		want, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := decodeBlockTable(encodeBlockTable(want))
		if !ok {
			t.Fatalf("n=%d: decode failed", n)
		}
		if !reflect.DeepEqual(got.tab, want.tab) ||
			!reflect.DeepEqual(got.step, want.step) ||
			!reflect.DeepEqual(got.out, want.out) || got.start != want.start {
			t.Fatalf("n=%d: decoded table differs", n)
		}
		if !got.compiledFrom(m) {
			t.Fatalf("n=%d: decoded table fails structural verification", n)
		}
	}
}

func TestBlockTableDecodeRejectsMalformed(t *testing.T) {
	m := randomMachine(rand.New(rand.NewSource(7)), 5)
	tbl, err := CompileBlockTable(m)
	if err != nil {
		t.Fatal(err)
	}
	good := encodeBlockTable(tbl)
	for _, bad := range [][]byte{
		nil,
		good[:len(good)-2],            // truncated table
		append(good, 0, 0),            // trailing garbage
		good[:3],                      // truncated header
		append([]byte{}, good...)[:8], // header only
	} {
		if _, ok := decodeBlockTable(bad); ok {
			t.Fatalf("malformed payload (%d bytes) accepted", len(bad))
		}
	}
	// An out-of-range successor must be rejected even if lengths match.
	evil := append([]byte(nil), good...)
	// step slice starts after u32 n, start byte, and the count-prefixed
	// out slice (4 bytes count + n entries).
	stepOff := 4 + 1 + 4 + 5 + 4
	evil[stepOff] = 200 // successor 200 in a 5-state machine
	if _, ok := decodeBlockTable(evil); ok {
		t.Fatal("out-of-range successor accepted")
	}
}

// TestBlockTableDiskTier proves the full tier path: a cold in-process
// cache backed by a warm disk store serves byte-identical simulations
// without recompiling, and a corrupted artifact falls back to a clean
// recompile.
func TestBlockTableDiskTier(t *testing.T) {
	dir := t.TempDir()
	store, err := disktier.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	SetDiskTier(store)
	defer SetDiskTier(nil)
	ResetBlockCache()

	rng := rand.New(rand.NewSource(3))
	m := randomMachine(rng, 17)
	trace := make([]bool, 4003)
	for i := range trace {
		trace[i] = rng.Intn(2) == 1
	}
	want := m.Simulate(trace, 5)

	before := BlockStats()
	// Drop the in-process tier: the next lookup must come from disk.
	ResetBlockCache()
	got := m.Simulate(trace, 5)
	if got != want {
		t.Fatalf("disk-tier simulate = %+v, want %+v", got, want)
	}
	after := BlockStats()
	if after.TierHits != before.TierHits+1 {
		t.Fatalf("tier hits %d -> %d, want +1 (served from disk)", before.TierHits, after.TierHits)
	}
	if after.Misses != before.Misses {
		t.Fatalf("misses %d -> %d, want unchanged (no recompile)", before.Misses, after.Misses)
	}

	// Corrupt the artifact on disk: the next cold lookup must recompile
	// cleanly and still be bit-identical.
	ents, err := os.ReadDir(filepath.Join(dir, "blocktable"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected one artifact: %v %d", err, len(ents))
	}
	p := filepath.Join(dir, "blocktable", ents[0].Name())
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ResetBlockCache()
	if got := m.Simulate(trace, 5); got != want {
		t.Fatalf("post-corruption simulate = %+v, want %+v", got, want)
	}
	if st := BlockStats(); st.Misses != after.Misses+1 {
		t.Fatalf("misses = %d, want %d (clean recompile)", st.Misses, after.Misses+1)
	}
	if st := store.Stats(); st.Corrupt == 0 {
		t.Fatal("store did not count the corrupted artifact")
	}
}
