package fsm

import (
	"encoding/json"
	"fmt"
)

// machineJSON is the wire form of a Machine: each state is a compact
// [output, next0, next1] triple, so the paper's 3-state worked example
// serializes to {"start":0,"states":[[1,1,2],[0,1,2],[1,1,0]]}-style
// JSON. The encoding is deterministic (field order and number formatting
// are fixed), which lets the design service cache and compare machines
// byte-for-byte.
type machineJSON struct {
	Name   string  `json:"name,omitempty"`
	Start  int     `json:"start"`
	States [][]int `json:"states"`
}

// MarshalJSON encodes the machine in the compact states-triple form.
// Marshalling an invalid machine is an error, so malformed machines can
// never reach the wire.
func (m *Machine) MarshalJSON() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	enc := machineJSON{
		Name:   m.Name,
		Start:  m.Start,
		States: make([][]int, len(m.Next)),
	}
	for s, row := range m.Next {
		out := 0
		if m.Output[s] {
			out = 1
		}
		enc.States[s] = []int{out, row[0], row[1]}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes the compact form and validates the result: state
// outputs must be 0 or 1, successors must be in range, and the machine
// must be structurally sound. A failed decode leaves the receiver
// unmodified.
func (m *Machine) UnmarshalJSON(data []byte) error {
	var enc machineJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	dec := Machine{
		Name:   enc.Name,
		Start:  enc.Start,
		Output: make([]bool, len(enc.States)),
		Next:   make([][2]int, len(enc.States)),
	}
	for s, st := range enc.States {
		if len(st) != 3 {
			return fmt.Errorf("fsm: state %d has %d fields, want [output, next0, next1]", s, len(st))
		}
		if st[0] != 0 && st[0] != 1 {
			return fmt.Errorf("fsm: state %d output %d is not 0 or 1", s, st[0])
		}
		dec.Output[s] = st[0] == 1
		dec.Next[s] = [2]int{st[1], st[2]}
	}
	if err := dec.Validate(); err != nil {
		return err
	}
	*m = dec
	return nil
}
