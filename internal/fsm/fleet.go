package fsm

import (
	"context"
	"fmt"
	"math/bits"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/par"
)

// This file is the fleet kernel: the multi-machine superstep scaled
// from a serving-sized group (RunManyPacked's handful of block tables)
// to hundreds of candidate machines scored against one trace — the GA
// search over machine encodings, Figure 4's synthesis batch, Figure 2's
// per-history threshold curves, and coalesced batch-simulate flushes.
//
// Three structural changes over RunManyPacked:
//
//   - Structure of arrays with absolute state indexing. All machines'
//     8-bit transition-closure tables live in ONE contiguous []uint16
//     buffer, and each lane tracks its ABSOLUTE state (slot offset +
//     machine-local state), so the hot loop carries one slice, one
//     loop-invariant base and one integer per machine — no per-machine
//     table pointers or bounds-check registers — and a state
//     transition is a shift-or-load-add chain into the shared table.
//     Entries keep the compact 2-byte next|predMask<<8 layout of
//     BlockTable so eight lanes' tables stay cache-resident.
//   - Loop inversion + lane tiling. RunManyPacked walks machines
//     INSIDE the per-byte loop: every trace byte touches N distinct
//     tables, so at fleet scale each lookup is a fresh cache line. The
//     fleet kernel tiles machine × trace-segment instead: the trace is
//     cut into L1-sized segments, and within a segment machines run in
//     lanes of eight — eight independent state chains advanced per
//     byte, so the out-of-order core overlaps their table-load
//     latencies (a single chain is serially dependent: each lookup's
//     index needs the previous lookup's result) while only eight
//     tables compete for cache across the whole segment.
//   - Structural dedup. Identical machines inside a fleet (converged
//     GA populations, duplicate batch requests) are detected by
//     content hash with full structural verification and simulated
//     once; results fan out to every input slot.
//
// Chunking bounds the working set: machines are grouped into chunks
// whose closure tables total at most fleetChunkBytes, so a chunk's
// tables plus one trace segment stay L2-resident no matter how large
// the fleet grows, and chunks shard across cores via internal/par.
// Every kernel here is bit-identical to per-machine SimulatePacked by
// construction (same event sequence, same closure entries); the
// package's differential and fuzz tests enforce it.

// fleetSegEvents is the trace tile: 1<<15 events = 4 KiB of packed
// words, comfortably L1-resident alongside one lane group's tables.
const fleetSegEvents = 1 << 15

// fleetChunkBytes bounds the summed closure-table bytes of one machine
// chunk (~half an L2), the unit of parallel sharding.
const fleetChunkBytes = 128 << 10

// Fleet is a compiled multi-machine batch: N machines packed
// side-by-side for single-pass scoring against a shared trace. It is
// immutable after construction and safe for concurrent use.
type Fleet struct {
	// tab is the concatenated closure table of the unique machines:
	// unique machine u owns absolute states [off[u], off[u+1]), and the
	// entry for absolute state g = off[u]+s on byte b is
	// tab[g<<blockShift|b] = localNext | predMask<<8, BlockTable's
	// entry layout verbatim.
	tab []uint16
	// step/out are the per-machine 2-symbol step tables and per-state
	// outputs in machine-local coordinates, for the ragged scalar
	// phases; machine u's slices are step[off[u]<<1:off[u+1]<<1] and
	// out[off[u]:off[u+1]].
	step []uint8
	out  []uint8
	// start[u] is unique machine u's start state (machine-local).
	start []uint8
	// spans[u] is unique machine u's span power tables, shared with the
	// source BlockTable so levels built anywhere serve everywhere.
	spans []*SpanTable
	// off is the cumulative state count, len(unique)+1 (padding slots
	// included).
	off []uint32
	// idx maps each input machine to its unique slot: idx[i] == idx[j]
	// iff machines i and j are structurally identical.
	idx []int32
	// nuniq is the number of real unique machines; slots beyond it are
	// lane padding (copies of the last unique table) that round the
	// packed slot count up to an eight-lane group so the whole pass runs
	// in the wide spanOct loop. No idx entry maps to a padding slot.
	nuniq int
}

// NewFleet compiles a fleet from machines. Every machine must be valid
// and within the block-table state bound (256); otherwise an error
// names the offending index and callers fall back to per-machine
// simulation. Compilation reuses the shared block-table cache when the
// block kernel is enabled, so recurring machines (GA elites, repeated
// batch requests) cost one table build process-wide.
func NewFleet(machines []*Machine) (*Fleet, error) {
	tabs := make([]*BlockTable, len(machines))
	for i, m := range machines {
		if m == nil {
			return nil, fmt.Errorf("fsm: fleet machine %d is nil", i)
		}
		if t := BlockTableFor(m); t != nil {
			tabs[i] = t
			continue
		}
		t, err := CompileBlockTable(m)
		if err != nil {
			return nil, fmt.Errorf("fsm: fleet machine %d: %v", i, err)
		}
		tabs[i] = t
	}
	return FleetOfTables(tabs), nil
}

// FleetOfTables packs already-compiled block tables into a fleet — the
// entry point for callers that hold tables (the batch-simulate flush).
// Structurally identical machines collapse into one packed slot.
func FleetOfTables(tabs []*BlockTable) *Fleet {
	f := &Fleet{idx: make([]int32, len(tabs))}
	// Dedup by content hash, verified structurally so a collision can
	// never alias two distinct machines.
	seen := make(map[uint64][]int32, len(tabs))
	var uniq []*BlockTable
	for i, t := range tabs {
		h := t.src.blockHash()
		slot := int32(-1)
		for _, u := range seen[h] {
			if uniq[u].compiledFrom(t.src) {
				slot = u
				break
			}
		}
		if slot < 0 {
			slot = int32(len(uniq))
			uniq = append(uniq, t)
			seen[h] = append(seen[h], slot)
		}
		f.idx[i] = slot
	}
	f.nuniq = len(uniq)
	// Pad the packed slots to an eight-lane group: the single-lane span
	// walker costs ~4x a spanOct lane per machine (one serially-dependent
	// chain exposes the full table-load latency every byte), so whenever
	// the tail would put three or more machines on it, duplicating the
	// last table into the spare lanes is cheaper than walking the tail
	// serially. Padding slots produce no results (idx never points at
	// them) and two or fewer tail machines stay on the scalar path, where
	// padding would cost more than it saves.
	if tail := len(uniq) % 8; tail >= 3 {
		for len(uniq)%8 != 0 {
			uniq = append(uniq, uniq[len(uniq)-1])
		}
	}
	f.off = make([]uint32, len(uniq)+1)
	total := 0
	for u, t := range uniq {
		total += t.NumStates()
		f.off[u+1] = uint32(total)
	}
	f.tab = make([]uint16, total<<blockShift)
	f.step = make([]uint8, total<<1)
	f.out = make([]uint8, total)
	f.start = make([]uint8, len(uniq))
	f.spans = make([]*SpanTable, len(uniq))
	for u, t := range uniq {
		o := int(f.off[u])
		copy(f.tab[o<<blockShift:], t.tab)
		copy(f.step[o<<1:], t.step)
		copy(f.out[o:], t.out)
		f.start[u] = t.start
		f.spans[u] = t.span
	}
	return f
}

// Len returns the number of input machines (fleet result slots).
func (f *Fleet) Len() int { return len(f.idx) }

// Unique returns the number of structurally distinct machines — the
// number of state walks whose results a fleet pass actually uses.
func (f *Fleet) Unique() int { return f.nuniq }

// slots returns the packed slot count including lane padding — the walk
// width of the superstep kernels.
func (f *Fleet) slots() int { return len(f.off) - 1 }

// Deduped returns how many input machines were folded into another
// slot's walk.
func (f *Fleet) Deduped() int { return f.Len() - f.Unique() }

// TableBytes returns the packed closure-table footprint.
func (f *Fleet) TableBytes() uint64 {
	n := uint64(f.off[len(f.off)-1])
	return 2*(n<<blockShift) + 3*n
}

// Run replays n events of the packed outcome stream through every
// fleet machine in one tiled pass, the first skip events as unscored
// warm-up. Result i is bit-identical to machines[i].SimulatePacked
// (n over-long streams are clamped to the words' capacity). Sequential;
// use RunParallel to shard chunks across cores.
func (f *Fleet) Run(words []uint64, n, skip int) []SimResult {
	return f.RunParallelSpans(1, words, n, skip, nil)
}

// RunSpans is Run walking a run index (bitseq.Runs over the same
// words): homogeneous runs advance every lane through its machine's
// span power tables in O(log run) lookups, mixed stretches through the
// interleaved byte loop. Bit-identical to Run for any index.
func (f *Fleet) RunSpans(words []uint64, n, skip int, runs []bitseq.Run) []SimResult {
	return f.RunParallelSpans(1, words, n, skip, runs)
}

// RunParallel is Run with the machine chunks sharded over at most
// workers goroutines (<= 0 means GOMAXPROCS). Chunks are independent —
// each owns a disjoint range of unique machines and only reads the
// trace — so results are bit-identical for any worker count.
func (f *Fleet) RunParallel(workers int, words []uint64, n, skip int) []SimResult {
	return f.RunParallelSpans(workers, words, n, skip, nil)
}

// RunParallelSpans is RunSpans with the machine chunks sharded over at
// most workers goroutines; each chunk walks the shared run index with
// its own cursor, so results stay bit-identical for any worker count.
func (f *Fleet) RunParallelSpans(workers int, words []uint64, n, skip int, runs []bitseq.Run) []SimResult {
	res := make([]SimResult, len(f.idx))
	if len(f.idx) == 0 {
		return res
	}
	if !SpanKernelEnabled() {
		runs = nil
	}
	n, skip = clampSpan(words, n, skip)
	nu := f.slots()
	states := make([]uint8, nu)
	correct := make([]int, nu)
	chunks := f.chunks()
	// The error is structurally impossible (the fn never fails and the
	// context is never cancelled), so the result is always complete.
	par.MapSlice(context.Background(), workers, chunks, func(_ int, c [2]int32) (struct{}, error) {
		var tally spanTally
		f.runChunk(int(c[0]), int(c[1]), words, n, skip, states, correct, runs, &tally)
		tally.flush()
		return struct{}{}, nil
	})
	for i, u := range f.idx {
		res[i] = SimResult{Total: n - skip, Correct: correct[u]}
	}
	return res
}

// chunks cuts the unique machines into contiguous ranges whose closure
// tables total roughly fleetChunkBytes. Cuts land only on lane-group
// (eight-machine) boundaries so every chunk but the fleet's last runs
// entirely in the wide spanOct loop — a mid-chunk remainder would put
// up to seven machines per chunk on the serial single-lane path, which
// profiling shows dominates the whole pass. A chunk is never smaller
// than one lane group, which is also the kernel's irreducible cache
// unit.
func (f *Fleet) chunks() [][2]int32 {
	nu := f.slots()
	var out [][2]int32
	lo, bytes := 0, 0
	for u := 0; u < nu; u++ {
		sz := int(f.off[u+1]-f.off[u]) << (blockShift + 1)
		if u > lo && (u-lo)&7 == 0 && bytes+sz > fleetChunkBytes {
			out = append(out, [2]int32{int32(lo), int32(u)})
			lo, bytes = u, 0
		}
		bytes += sz
	}
	if lo < nu {
		out = append(out, [2]int32{int32(lo), int32(nu)})
	}
	return out
}

// runChunk advances unique machines [lo, hi) over the whole stream,
// trace-segment outer / machine inner: per segment each lane group runs
// the tight interleaved byte loop, so its table entries and the
// segment's words stay cache-hot. With a run index, each segment is cut
// at its run boundaries — mixed sub-ranges keep the lane-group loops,
// homogeneous runs advance every machine through its power tables
// (runSkipLane) — and a nil index degenerates to the one-region walk.
func (f *Fleet) runChunk(lo, hi int, words []uint64, n, skip int, states []uint8, correct []int, runs []bitseq.Run, tally *spanTally) {
	for u := lo; u < hi; u++ {
		states[u] = f.start[u]
	}
	r := 0
	for segLo := 0; segLo < n; segLo += fleetSegEvents {
		segHi := segLo + fleetSegEvents
		if segHi > n {
			segHi = n
		}
		i := segLo
		for i < segHi {
			for r < len(runs) && runs[r].End() <= i {
				r++
			}
			rs, re := segHi, segHi
			if r < len(runs) {
				rs, re = int(runs[r].Start), runs[r].End()
				if rs < i {
					rs = i
				}
				if rs > segHi {
					rs = segHi
				}
				if re > segHi {
					re = segHi
				}
			}
			if i < rs {
				u := lo
				for ; u+8 <= hi; u += 8 {
					f.spanOct(u, words, i, rs, skip, states, correct)
				}
				for ; u < hi; u++ {
					s, c := f.span(u, states[u], words, i, rs, skip)
					states[u] = s
					correct[u] += c
				}
				i = rs
			}
			if i < re {
				b := 0
				if runs[r].One {
					b = 1
				}
				for u := lo; u < hi; u++ {
					f.runSkipLane(u, words, i, re, skip, b, states, correct)
				}
				tally.runs += hi - lo
				tally.skipped += (re - i) * (hi - lo)
				i = re
			}
		}
	}
}

// runSkipLane advances one lane across a homogeneous run [lo, hi) — all
// events the repeated bit b, both bounds byte-aligned — scoring events
// at or after scoreFrom. A run straddling the warm-up boundary splits
// there: whole warm-up bytes walk unscored, the ragged boundary byte
// routes through the single-lane scalar walker (span) exactly as the
// byte loops would, and the scored remainder walks with miss counts.
func (f *Fleet) runSkipLane(u int, words []uint64, lo, hi, scoreFrom, b int, states []uint8, correct []int) {
	st := f.spans[u]
	s := states[u]
	switch {
	case scoreFrom <= lo:
		s2, m := st.walk(s, (hi-lo)>>3, b)
		states[u] = s2
		correct[u] += (hi - lo) - m
		return
	case scoreFrom >= hi:
		s2, _ := st.walk(s, (hi-lo)>>3, b)
		states[u] = s2
		return
	}
	wEnd := scoreFrom &^ 7
	if wEnd > lo {
		s, _ = st.walk(s, (wEnd-lo)>>3, b)
		states[u] = s
	}
	head := (scoreFrom + 7) &^ 7
	if head > hi {
		head = hi
	}
	if head > wEnd {
		s2, c := f.span(u, s, words, wEnd, head, scoreFrom)
		s = s2
		states[u] = s2
		correct[u] += c
	}
	if hi > head {
		s2, m := st.walk(s, (hi-head)>>3, b)
		states[u] = s2
		correct[u] += (hi - head) - m
	}
}

// span advances one machine over events [lo, hi) of the packed stream
// from machine-local state s, scoring events at or after scoreFrom. lo
// must be a multiple of 8, so byte extraction never crosses a word. The
// event sequence is RunFrom's (unscored bytes, ragged warm-up tail,
// scored scalar head, scored bytes, scored scalar tail), which is what
// makes the fleet bit-identical to per-machine SimulatePacked.
func (f *Fleet) span(u int, s uint8, words []uint64, lo, hi, scoreFrom int) (uint8, int) {
	o := int(f.off[u])
	tab := f.tab
	step := f.step[o<<1 : int(f.off[u+1])<<1]
	out := f.out[o:f.off[u+1]]
	if scoreFrom < lo {
		scoreFrom = lo
	}
	if scoreFrom > hi {
		scoreFrom = hi
	}
	g := o + int(s)
	i := lo
	for ; i+8 <= scoreFrom; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		g = o + int(uint8(tab[g<<blockShift|int(b)]))
	}
	s = uint8(g - o)
	for ; i < scoreFrom; i++ {
		b := words[i>>6] >> uint(i&63) & 1
		s = step[int(s)<<1|int(b)]
	}
	correct := 0
	for ; i < hi && i&7 != 0; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if out[s] == b {
			correct++
		}
		s = step[int(s)<<1|int(b)]
	}
	g = o + int(s)
	for ; i+8 <= hi; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		e := tab[g<<blockShift|int(b)]
		correct += 8 - bits.OnesCount8(uint8(e>>8)^b)
		g = o + int(uint8(e))
	}
	s = uint8(g - o)
	for ; i < hi; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if out[s] == b {
			correct++
		}
		s = step[int(s)<<1|int(b)]
	}
	return s, correct
}

// spanOct advances unique machines u..u+7 over events [lo, hi) in
// lockstep, scoring at or after scoreFrom — the fleet's throughput
// engine. Eight independent transition chains share each trace byte, so
// the out-of-order core overlaps their table-load latencies (a single
// chain is serially dependent: each lookup's index needs the previous
// lookup's result); absolute state indexing keeps the whole loop on one
// slice and eight integers. Each lane executes exactly span's event
// sequence, so results stay bit-identical to the single-lane walk.
func (f *Fleet) spanOct(u int, words []uint64, lo, hi, scoreFrom int, states []uint8, correct []int) {
	tab := f.tab
	o0, o1, o2, o3 := int(f.off[u]), int(f.off[u+1]), int(f.off[u+2]), int(f.off[u+3])
	o4, o5, o6, o7 := int(f.off[u+4]), int(f.off[u+5]), int(f.off[u+6]), int(f.off[u+7])
	g0, g1, g2, g3 := o0+int(states[u]), o1+int(states[u+1]), o2+int(states[u+2]), o3+int(states[u+3])
	g4, g5, g6, g7 := o4+int(states[u+4]), o5+int(states[u+5]), o6+int(states[u+6]), o7+int(states[u+7])
	var c0, c1, c2, c3, c4, c5, c6, c7 int
	if scoreFrom < lo {
		scoreFrom = lo
	}
	if scoreFrom > hi {
		scoreFrom = hi
	}
	i := lo
	for ; i+8 <= scoreFrom; i += 8 {
		b := int(uint8(words[i>>6] >> uint(i&63)))
		g0 = o0 + int(uint8(tab[g0<<blockShift|b]))
		g1 = o1 + int(uint8(tab[g1<<blockShift|b]))
		g2 = o2 + int(uint8(tab[g2<<blockShift|b]))
		g3 = o3 + int(uint8(tab[g3<<blockShift|b]))
		g4 = o4 + int(uint8(tab[g4<<blockShift|b]))
		g5 = o5 + int(uint8(tab[g5<<blockShift|b]))
		g6 = o6 + int(uint8(tab[g6<<blockShift|b]))
		g7 = o7 + int(uint8(tab[g7<<blockShift|b]))
	}
	if i < scoreFrom {
		// Ragged warm-up (at most seven events): route each lane
		// through the single-lane walker up to the next byte boundary,
		// then resume the wide loop.
		head := (scoreFrom + 7) &^ 7
		if head > hi {
			head = hi
		}
		writeOctStates(states, f.off, u, g0, g1, g2, g3, g4, g5, g6, g7)
		for l := 0; l < 8; l++ {
			s, c := f.span(u+l, states[u+l], words, i, head, scoreFrom)
			states[u+l] = s
			correct[u+l] += c
		}
		if head == hi {
			return
		}
		i = head
		g0, g1, g2, g3 = o0+int(states[u]), o1+int(states[u+1]), o2+int(states[u+2]), o3+int(states[u+3])
		g4, g5, g6, g7 = o4+int(states[u+4]), o5+int(states[u+5]), o6+int(states[u+6]), o7+int(states[u+7])
	}
	// Scored body: count MISSES (xor-popcount per lane) and convert to
	// correct counts once at the end — one fewer arithmetic op per lane
	// per byte. Trace bytes come from shifting a word-local register,
	// one word load per 64 events.
	scored := 0
	for ; i+8 <= hi && i&63 != 0; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		e0 := tab[g0<<blockShift|int(b)]
		e1 := tab[g1<<blockShift|int(b)]
		e2 := tab[g2<<blockShift|int(b)]
		e3 := tab[g3<<blockShift|int(b)]
		e4 := tab[g4<<blockShift|int(b)]
		e5 := tab[g5<<blockShift|int(b)]
		e6 := tab[g6<<blockShift|int(b)]
		e7 := tab[g7<<blockShift|int(b)]
		c0 += bits.OnesCount8(uint8(e0>>8) ^ b)
		c1 += bits.OnesCount8(uint8(e1>>8) ^ b)
		c2 += bits.OnesCount8(uint8(e2>>8) ^ b)
		c3 += bits.OnesCount8(uint8(e3>>8) ^ b)
		c4 += bits.OnesCount8(uint8(e4>>8) ^ b)
		c5 += bits.OnesCount8(uint8(e5>>8) ^ b)
		c6 += bits.OnesCount8(uint8(e6>>8) ^ b)
		c7 += bits.OnesCount8(uint8(e7>>8) ^ b)
		g0, g1, g2, g3 = o0+int(uint8(e0)), o1+int(uint8(e1)), o2+int(uint8(e2)), o3+int(uint8(e3))
		g4, g5, g6, g7 = o4+int(uint8(e4)), o5+int(uint8(e5)), o6+int(uint8(e6)), o7+int(uint8(e7))
		scored += 8
	}
	for ; i+64 <= hi; i += 64 {
		w := words[i>>6]
		for k := 0; k < 8; k++ {
			b := uint8(w)
			w >>= 8
			e0 := tab[g0<<blockShift|int(b)]
			e1 := tab[g1<<blockShift|int(b)]
			e2 := tab[g2<<blockShift|int(b)]
			e3 := tab[g3<<blockShift|int(b)]
			e4 := tab[g4<<blockShift|int(b)]
			e5 := tab[g5<<blockShift|int(b)]
			e6 := tab[g6<<blockShift|int(b)]
			e7 := tab[g7<<blockShift|int(b)]
			c0 += bits.OnesCount8(uint8(e0>>8) ^ b)
			c1 += bits.OnesCount8(uint8(e1>>8) ^ b)
			c2 += bits.OnesCount8(uint8(e2>>8) ^ b)
			c3 += bits.OnesCount8(uint8(e3>>8) ^ b)
			c4 += bits.OnesCount8(uint8(e4>>8) ^ b)
			c5 += bits.OnesCount8(uint8(e5>>8) ^ b)
			c6 += bits.OnesCount8(uint8(e6>>8) ^ b)
			c7 += bits.OnesCount8(uint8(e7>>8) ^ b)
			g0, g1, g2, g3 = o0+int(uint8(e0)), o1+int(uint8(e1)), o2+int(uint8(e2)), o3+int(uint8(e3))
			g4, g5, g6, g7 = o4+int(uint8(e4)), o5+int(uint8(e5)), o6+int(uint8(e6)), o7+int(uint8(e7))
		}
		scored += 64
	}
	for ; i+8 <= hi; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		e0 := tab[g0<<blockShift|int(b)]
		e1 := tab[g1<<blockShift|int(b)]
		e2 := tab[g2<<blockShift|int(b)]
		e3 := tab[g3<<blockShift|int(b)]
		e4 := tab[g4<<blockShift|int(b)]
		e5 := tab[g5<<blockShift|int(b)]
		e6 := tab[g6<<blockShift|int(b)]
		e7 := tab[g7<<blockShift|int(b)]
		c0 += bits.OnesCount8(uint8(e0>>8) ^ b)
		c1 += bits.OnesCount8(uint8(e1>>8) ^ b)
		c2 += bits.OnesCount8(uint8(e2>>8) ^ b)
		c3 += bits.OnesCount8(uint8(e3>>8) ^ b)
		c4 += bits.OnesCount8(uint8(e4>>8) ^ b)
		c5 += bits.OnesCount8(uint8(e5>>8) ^ b)
		c6 += bits.OnesCount8(uint8(e6>>8) ^ b)
		c7 += bits.OnesCount8(uint8(e7>>8) ^ b)
		g0, g1, g2, g3 = o0+int(uint8(e0)), o1+int(uint8(e1)), o2+int(uint8(e2)), o3+int(uint8(e3))
		g4, g5, g6, g7 = o4+int(uint8(e4)), o5+int(uint8(e5)), o6+int(uint8(e6)), o7+int(uint8(e7))
		scored += 8
	}
	writeOctStates(states, f.off, u, g0, g1, g2, g3, g4, g5, g6, g7)
	correct[u] += scored - c0
	correct[u+1] += scored - c1
	correct[u+2] += scored - c2
	correct[u+3] += scored - c3
	correct[u+4] += scored - c4
	correct[u+5] += scored - c5
	correct[u+6] += scored - c6
	correct[u+7] += scored - c7
	if i < hi {
		// Ragged tail (at most seven events), scored scalar per lane.
		for l := 0; l < 8; l++ {
			s, c := f.span(u+l, states[u+l], words, i, hi, scoreFrom)
			states[u+l] = s
			correct[u+l] += c
		}
	}
}

// writeOctStates converts eight absolute states back to machine-local
// and stores them.
func writeOctStates(states []uint8, off []uint32, u, g0, g1, g2, g3, g4, g5, g6, g7 int) {
	states[u] = uint8(g0 - int(off[u]))
	states[u+1] = uint8(g1 - int(off[u+1]))
	states[u+2] = uint8(g2 - int(off[u+2]))
	states[u+3] = uint8(g3 - int(off[u+3]))
	states[u+4] = uint8(g4 - int(off[u+4]))
	states[u+5] = uint8(g5 - int(off[u+5]))
	states[u+6] = uint8(g6 - int(off[u+6]))
	states[u+7] = uint8(g7 - int(off[u+7]))
}

// RunSampled advances every fleet machine through all n events of the
// shared stream and scores machine i only at positions pos[i] (strictly
// ascending, each in [0, n)) — the §7.3 update-all replay batched
// across a candidate set, one trace read for the whole fleet. It
// returns per-input misprediction counts, each bit-identical to the
// per-machine BlockTable.RunSampled walk. Positions differ per input,
// so duplicate machines keep their own slots here (the walk is cheap
// next to the shared trace traversal the fleet amortizes).
func (f *Fleet) RunSampled(words []uint64, n int, pos [][]int32) []int {
	misses := make([]int, len(f.idx))
	n, _ = clampSpan(words, n, 0)
	for j, u := range f.idx {
		misses[j] = f.sampled(int(u), words, n, pos[j])
	}
	return misses
}

// sampled is BlockTable.RunSampled's loop over the fleet's packed
// table.
func (f *Fleet) sampled(u int, words []uint64, n int, pos []int32) int {
	o := int(f.off[u])
	tab := f.tab
	step := f.step[o<<1 : int(f.off[u+1])<<1]
	out := f.out[o:f.off[u+1]]
	g := o + int(f.start[u])
	misses, c := 0, 0
	i := 0
	for ; i+8 <= n; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		e := tab[g<<blockShift|int(b)]
		if c < len(pos) && int(pos[c]) < i+8 {
			x := uint8(e>>8) ^ b
			for ; c < len(pos) && int(pos[c]) < i+8; c++ {
				misses += int(x >> uint(int(pos[c])-i) & 1)
			}
		}
		g = o + int(uint8(e))
	}
	s := uint8(g - o)
	for ; i < n; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if c < len(pos) && int(pos[c]) == i {
			if out[s] != b {
				misses++
			}
			c++
		}
		s = step[int(s)<<1|int(b)]
	}
	return misses
}

// ReplayGated is the confidence-estimator replay batched across the
// fleet: every machine steps on all n bits of the packed correctness
// stream from its start state, and valid positions where the machine
// predicts confident count toward its flagged / flaggedCorrect tallies
// — BlockTable.ReplayGated for N machines in one trace pass, with
// structurally identical machines walked once and fanned out.
// Mismatched stream lengths (or n beyond their capacity) are an
// explicit error, never a silent truncation.
func (f *Fleet) ReplayGated(correct, valid []uint64, n int) (flagged, flaggedCorrect []int, err error) {
	return f.ReplayGatedSpans(correct, valid, n, nil)
}

// ReplayGatedSpans is ReplayGated walking a run index over the correct
// stream: per unique machine, homogeneous correct runs whose valid bits
// are saturated advance through the span power tables (the
// BlockTable.ReplayGatedSpans closure identities), everything else
// through the gated byte loop. Bit-identical to ReplayGated.
func (f *Fleet) ReplayGatedSpans(correct, valid []uint64, n int, runs []bitseq.Run) (flagged, flaggedCorrect []int, err error) {
	n, err = checkGatedStreams(correct, valid, n)
	if err != nil {
		return nil, nil, err
	}
	if !SpanKernelEnabled() {
		runs = nil
	}
	flagged = make([]int, len(f.idx))
	flaggedCorrect = make([]int, len(f.idx))
	nu := f.Unique()
	uf := make([]int, nu)
	ufc := make([]int, nu)
	var tally spanTally
	for u := 0; u < nu; u++ {
		if len(runs) > 0 {
			uf[u], ufc[u] = f.gatedSpans(u, correct, valid, n, runs, &tally)
		} else {
			uf[u], ufc[u] = f.gated(u, correct, valid, n)
		}
	}
	tally.flush()
	for i, u := range f.idx {
		flagged[i], flaggedCorrect[i] = uf[u], ufc[u]
	}
	return flagged, flaggedCorrect, nil
}

// gated is BlockTable.ReplayGated's loop over the fleet's packed table.
func (f *Fleet) gated(u int, correct, valid []uint64, n int) (flagged, flaggedCorrect int) {
	o := int(f.off[u])
	tab := f.tab
	step := f.step[o<<1 : int(f.off[u+1])<<1]
	out := f.out[o:f.off[u+1]]
	g := o + int(f.start[u])
	i := 0
	for ; i+8 <= n; i += 8 {
		w, off := i>>6, uint(i&63)
		cb := uint8(correct[w] >> off)
		vb := uint8(valid[w] >> off)
		e := tab[g<<blockShift|int(cb)]
		pm := uint8(e >> 8)
		flagged += bits.OnesCount8(vb & pm)
		flaggedCorrect += bits.OnesCount8(vb & pm & cb)
		g = o + int(uint8(e))
	}
	s := uint8(g - o)
	for ; i < n; i++ {
		w, off := i>>6, uint(i&63)
		cb := uint8(correct[w] >> off & 1)
		if valid[w]>>off&1 == 1 && out[s] == 1 {
			flagged++
			flaggedCorrect += int(cb)
		}
		s = step[int(s)<<1|int(cb)]
	}
	return flagged, flaggedCorrect
}

// gatedSpans is gated walking a run index over the correct stream — the
// fleet counterpart of BlockTable.ReplayGatedSpans, on the packed
// table with absolute state indexing.
func (f *Fleet) gatedSpans(u int, correct, valid []uint64, n int, runs []bitseq.Run, tally *spanTally) (flagged, flaggedCorrect int) {
	o := int(f.off[u])
	tab := f.tab
	st := f.spans[u]
	step := f.step[o<<1 : int(f.off[u+1])<<1]
	out := f.out[o:f.off[u+1]]
	g := o + int(f.start[u])
	i, r := 0, 0
	bodyEnd := n &^ 7
	for i < bodyEnd {
		for r < len(runs) && runs[r].End() <= i {
			r++
		}
		rs, re := bodyEnd, bodyEnd
		if r < len(runs) {
			rs, re = int(runs[r].Start), runs[r].End()
			if rs < i {
				rs = i
			}
			if rs > bodyEnd {
				rs = bodyEnd
			}
			if re > bodyEnd {
				re = bodyEnd
			}
		}
		for ; i < rs; i += 8 {
			w, off := i>>6, uint(i&63)
			cb := uint8(correct[w] >> off)
			vb := uint8(valid[w] >> off)
			e := tab[g<<blockShift|int(cb)]
			pm := uint8(e >> 8)
			flagged += bits.OnesCount8(vb & pm)
			flaggedCorrect += bits.OnesCount8(vb & pm & cb)
			g = o + int(uint8(e))
		}
		for i < re {
			if j := allOnesTo(valid, i, re); j > i {
				k := (j - i) >> 3
				b := 0
				if runs[r].One {
					b = 1
				}
				s2, m := st.walk(uint8(g-o), k, b)
				g = o + int(s2)
				if b == 1 {
					fl := k<<3 - m
					flagged += fl
					flaggedCorrect += fl
				} else {
					flagged += m
				}
				tally.runs++
				tally.skipped += k << 3
				i = j
			} else {
				w, off := i>>6, uint(i&63)
				cb := uint8(correct[w] >> off)
				vb := uint8(valid[w] >> off)
				e := tab[g<<blockShift|int(cb)]
				pm := uint8(e >> 8)
				flagged += bits.OnesCount8(vb & pm)
				flaggedCorrect += bits.OnesCount8(vb & pm & cb)
				g = o + int(uint8(e))
				i += 8
			}
		}
	}
	s := uint8(g - o)
	for ; i < n; i++ {
		w, off := i>>6, uint(i&63)
		cb := uint8(correct[w] >> off & 1)
		if valid[w]>>off&1 == 1 && out[s] == 1 {
			flagged++
			flaggedCorrect += int(cb)
		}
		s = step[int(s)<<1|int(cb)]
	}
	return flagged, flaggedCorrect
}

// clampSpan normalizes (n, skip) against the packed stream's capacity:
// negative values floor at zero, n is clamped to the events the words
// can hold, and skip is clamped to n.
func clampSpan(words []uint64, n, skip int) (int, int) {
	if n < 0 {
		n = 0
	}
	if max := len(words) << 6; n > max {
		n = max
	}
	if skip < 0 {
		skip = 0
	}
	if skip > n {
		skip = n
	}
	return n, skip
}
