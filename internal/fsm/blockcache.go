package fsm

import (
	"sync/atomic"

	"fsmpredict/internal/memo"
)

// The process-wide block-table cache, content-addressed by a 64-bit
// machine hash with full structural verification on every hit (memo's
// validator), so a hash collision or a caller mutating a machine after
// its table was compiled can never serve stale superstep results. The
// bound comfortably covers every machine a full figure regeneration
// touches (counter sweeps, per-threshold confidence FSMs, per-branch
// custom predictors); a designed predictor compiled once — during
// Figure 4 training, say — is found again by Figure 5's replay and by
// /v1/simulate, because the address is the machine's content, not its
// identity.
const blockCacheEntries = 512

var blockCache = memo.New[uint64, *BlockTable](blockCacheEntries, (*BlockTable).Bytes)

// blockKernelOff gates the blocked kernels; the zero value (enabled)
// is the default. Figure-level oracle tests flip it to assert the
// whole flow is byte-identical with and without the superstep path.
var blockKernelOff atomic.Bool

// SetBlockKernel enables or disables the blocked superstep kernels
// process-wide and returns the previous setting. With the kernel off,
// BlockTableFor returns nil and every caller falls back to the scalar
// bit-at-a-time oracle.
func SetBlockKernel(on bool) (was bool) {
	return !blockKernelOff.Swap(!on)
}

// BlockKernelEnabled reports whether the blocked kernels are in use.
func BlockKernelEnabled() bool { return !blockKernelOff.Load() }

// BlockTableFor returns the shared closure table for a machine,
// compiling and caching it on first use. It returns nil — callers then
// fall back to the scalar path — when the kernel is disabled or the
// machine is unrepresentable (invalid, or over 256 states). Safe for
// concurrent use; steady-state lookups allocate nothing.
func BlockTableFor(m *Machine) *BlockTable {
	if m == nil || blockKernelOff.Load() {
		return nil
	}
	if n := m.NumStates(); n == 0 || n > maxBlockStates {
		return nil
	}
	if m.Validate() != nil {
		return nil
	}
	return blockCache.Do(m.blockHash(),
		func(t *BlockTable) bool { return t.compiledFrom(m) },
		func() *BlockTable {
			t, err := CompileBlockTable(m)
			if err != nil {
				// Unreachable: the machine was validated above.
				panic(err)
			}
			return t
		})
}

// BlockStats snapshots the shared block-table cache counters — the
// source of the fsmpredict_blocktable_* gauges and the -v stats lines
// of the bench commands.
func BlockStats() memo.Stats { return blockCache.Stats() }

// blockHash is the cache address of a machine's simulation-relevant
// content (Name excluded): an FNV-1a fold over the state count, start
// state and transition/output rows. Collisions are tolerable — the
// cache verifies structurally on every hit — so 64 bits suffice.
func (m *Machine) blockHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(len(m.Next)))
	mix(uint64(m.Start))
	for s, row := range m.Next {
		b := uint64(0)
		if m.Output[s] {
			b = 1
		}
		mix(b<<62 | uint64(row[0])<<31 | uint64(row[1]))
	}
	return h
}
