package fsm

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"fsmpredict/internal/bitseq"
)

// This file is the run-length span kernel, the content-aware rung above
// the byte-blocked superstep: the block kernel pays one table lookup
// per 8 events regardless of what the events are, but a machine's
// response to a HOMOGENEOUS byte (0x00 or 0xFF) is one of only two
// transition functions, and transition functions compose. A SpanTable
// closes those two functions over themselves by doubling — power tables
// tab^(2^j) mapping state → (exit state, misprediction count) for 2^j
// consecutive homogeneous bytes — so a k-byte run advances in
// popcount(k) ≤ log2(k)+1 lookups with exact per-state miss
// accumulation, instead of k byte lookups. The span kernels walk a
// precomputed run index (bitseq.Runs) and fall back to the byte loop on
// mixed segments; they are bit-identical to the block kernels by
// construction — same event sequence, tables composed from the same
// 2-symbol step function — and the block and scalar kernels stay on as
// differential oracles behind the SetSpanKernel toggle, the PR 5/7
// pattern.

// spanKernelOff gates the span kernels; the zero value (enabled) is the
// default. Figure-level oracle tests flip it to assert the whole flow
// is byte-identical with and without run skipping.
var spanKernelOff atomic.Bool

// SetSpanKernel enables or disables run skipping process-wide and
// returns the previous setting. With the kernel off every *Spans entry
// point ignores its run index and runs the plain block kernel.
func SetSpanKernel(on bool) (was bool) {
	return !spanKernelOff.Swap(!on)
}

// SpanKernelEnabled reports whether run skipping is in use.
func SpanKernelEnabled() bool { return !spanKernelOff.Load() }

// SpanKernelStats is a snapshot of the process-wide span-kernel
// counters — the source of the fsmpredict_span_* metrics.
type SpanKernelStats struct {
	// Runs counts homogeneous runs advanced through the power tables.
	Runs uint64
	// SkippedEvents counts events those runs covered (each one scored
	// exactly, but without a per-byte table lookup).
	SkippedEvents uint64
	// TableBytes is the memory retained by all built power-table
	// levels.
	TableBytes uint64
}

var (
	spanRunsTotal    atomic.Uint64
	spanSkippedTotal atomic.Uint64
	spanTableBytes   atomic.Uint64
)

// SpanStats snapshots the span-kernel counters.
func SpanStats() SpanKernelStats {
	return SpanKernelStats{
		Runs:          spanRunsTotal.Load(),
		SkippedEvents: spanSkippedTotal.Load(),
		TableBytes:    spanTableBytes.Load(),
	}
}

// spanTally accumulates span counters locally during one kernel call
// and publishes them in a single atomic round, keeping the hot loops
// free of shared-cacheline traffic.
type spanTally struct {
	runs    int
	skipped int
}

func (t *spanTally) flush() {
	if t.runs > 0 {
		spanRunsTotal.Add(uint64(t.runs))
		spanSkippedTotal.Add(uint64(t.skipped))
	}
}

// spanEntry is one power-table cell: the state reached after a block of
// homogeneous bytes and the mispredictions accumulated on the way. The
// count is 32-bit because a 2^j-byte block can miss up to 2^(j+3)
// times.
type spanEntry struct {
	next uint8
	miss uint32
}

// spanEntryBytes is spanEntry's aligned in-memory size, the unit of the
// TableBytes accounting.
const spanEntryBytes = 8

// SpanTable holds the lazily built power tables of one machine over
// homogeneous bytes. Level j, when built, maps (byte value, entry
// state) to the response to 2^j consecutive 0x00 or 0xFF bytes. The
// shell is cheap (two slice headers); levels grow on demand under a
// mutex and are published through an atomic pointer, so concurrent
// walks never lock once the levels they need exist. Safe for
// concurrent use.
type SpanTable struct {
	n    int
	step []uint8 // 2-symbol step, machine-local: step[s<<1|b]
	out  []uint8 // out[s]: state s's prediction bit

	mu     sync.Mutex
	levels atomic.Pointer[[][]spanEntry] // levels[j][b*n+s]
}

// newSpanTable wraps a machine's 2-symbol tables (BlockTable layout)
// without building any levels.
func newSpanTable(step, out []uint8) *SpanTable {
	return &SpanTable{n: len(out), step: step, out: out}
}

// ensure returns the level slice with levels 0..lv present, building
// the missing ones. Level 0 replays eight scalar steps per (byte value,
// state); level j composes level j-1 with itself — exit states chain,
// miss counts add — so every level is exact by induction.
func (st *SpanTable) ensure(lv int) [][]spanEntry {
	if p := st.levels.Load(); p != nil && len(*p) > lv {
		return *p
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var cur [][]spanEntry
	if p := st.levels.Load(); p != nil {
		cur = *p
		if len(cur) > lv {
			return cur
		}
	}
	n := st.n
	grown := append(make([][]spanEntry, 0, lv+1), cur...)
	for j := len(grown); j <= lv; j++ {
		l := make([]spanEntry, 2*n)
		if j == 0 {
			for b := 0; b < 2; b++ {
				for s := 0; s < n; s++ {
					e := spanEntry{next: uint8(s)}
					for k := 0; k < 8; k++ {
						if int(st.out[e.next]) != b {
							e.miss++
						}
						e.next = st.step[int(e.next)<<1|b]
					}
					l[b*n+s] = e
				}
			}
		} else {
			prev := grown[j-1]
			for b := 0; b < 2; b++ {
				for s := 0; s < n; s++ {
					e1 := prev[b*n+s]
					e2 := prev[b*n+int(e1.next)]
					l[b*n+s] = spanEntry{next: e2.next, miss: e1.miss + e2.miss}
				}
			}
		}
		grown = append(grown, l)
		spanTableBytes.Add(uint64(2*n) * spanEntryBytes)
	}
	st.levels.Store(&grown)
	return grown
}

// walk advances state s through k consecutive homogeneous bytes of bit
// value b (0 or 1), returning the exit state and the exact
// misprediction count over the 8k events — the binary decomposition of
// k through the power tables. Powers of one function commute, so the
// ascending-level order is exact.
func (st *SpanTable) walk(s uint8, k, b int) (uint8, int) {
	lv := st.ensure(bits.Len(uint(k)) - 1)
	base := b * st.n
	miss := 0
	for j := 0; k != 0; j++ {
		if k&1 != 0 {
			e := lv[j][base+int(s)]
			miss += int(e.miss)
			s = e.next
		}
		k >>= 1
	}
	return s, miss
}

// Spans returns the machine's span power tables.
func (t *BlockTable) Spans() *SpanTable { return t.span }

// SimulatePackedSpans is SimulatePacked walking a run index: runs from
// bitseq.Runs over the same words advance through the power tables,
// mixed stretches through the byte loop. Bit-identical to
// SimulatePacked for any index (including one built with a different
// minimum run length); an empty index or a disabled span kernel falls
// through to the block kernel unchanged.
func (t *BlockTable) SimulatePackedSpans(words []uint64, n, skip int, runs []bitseq.Run) SimResult {
	res, _ := t.RunFromSpans(t.StartState(), words, n, skip, runs)
	return res
}

// RunFromSpans is RunFrom walking a run index — the stateful span
// kernel entry point. The event sequence is RunFrom's exactly (warm-up
// bytes, ragged warm-up tail, scored scalar head, scored byte body,
// scored scalar tail); homogeneous runs inside the two byte phases
// advance in O(log run) power-table lookups, with warm-up runs
// discarding their miss counts.
func (t *BlockTable) RunFromSpans(state int, words []uint64, n, skip int, runs []bitseq.Run) (SimResult, int) {
	if len(runs) == 0 || !SpanKernelEnabled() {
		return t.RunFrom(state, words, n, skip)
	}
	n, skip = clampSpan(words, n, skip)
	var tally spanTally
	s := uint8(state)
	i, r := 0, 0
	i, s, _ = t.spanBytes(words, i, skip&^7, s, runs, &r, &tally)
	for ; i < skip; i++ {
		b := words[i>>6] >> uint(i&63) & 1
		s = t.step[int(s)<<1|int(b)]
	}
	res := SimResult{Total: n - skip}
	correct := 0
	for ; i < n && i&7 != 0; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if t.out[s] == b {
			correct++
		}
		s = t.step[int(s)<<1|int(b)]
	}
	lo := i
	var miss int
	i, s, miss = t.spanBytes(words, i, n&^7, s, runs, &r, &tally)
	correct += (i - lo) - miss
	for ; i < n; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if t.out[s] == b {
			correct++
		}
		s = t.step[int(s)<<1|int(b)]
	}
	res.Correct = correct
	tally.flush()
	return res, int(s)
}

// spanBytes advances through the byte-aligned events [i, end) — both
// multiples of 8 — mixed bytes through the closure table, homogeneous
// runs through the power tables, returning the position reached, the
// exit state and the misprediction count over the region. r is the
// caller's cursor into the run index and only moves forward, so one
// cursor serves a whole multi-region walk.
func (t *BlockTable) spanBytes(words []uint64, i, end int, s uint8, runs []bitseq.Run, r *int, tally *spanTally) (int, uint8, int) {
	miss := 0
	for i < end {
		for *r < len(runs) && runs[*r].End() <= i {
			*r++
		}
		rs, re := end, end
		if *r < len(runs) {
			rs, re = int(runs[*r].Start), runs[*r].End()
			if rs < i {
				rs = i
			}
			if rs > end {
				rs = end
			}
			if re > end {
				re = end
			}
		}
		for ; i < rs; i += 8 {
			b := uint8(words[i>>6] >> uint(i&63))
			e := t.tab[int(s)<<blockShift|int(b)]
			miss += bits.OnesCount8(uint8(e>>8) ^ b)
			s = uint8(e)
		}
		if k := (re - i) >> 3; k > 0 {
			b := 0
			if runs[*r].One {
				b = 1
			}
			var m int
			s, m = t.span.walk(s, k, b)
			miss += m
			tally.runs++
			tally.skipped += k << 3
			i = re
		}
	}
	return i, s, miss
}

// RunSampledSpans is RunSampled walking a run index: stretches of a
// homogeneous run holding no sampled position advance through the power
// tables (their misses are irrelevant — only sampled positions score),
// and the byte containing a sampled position goes through the closure
// table so its per-event predictions are available. Bit-identical to
// RunSampled.
func (t *BlockTable) RunSampledSpans(state int, words []uint64, n int, pos []int32, runs []bitseq.Run) (misses, end int) {
	if len(runs) == 0 || !SpanKernelEnabled() {
		return t.RunSampled(state, words, n, pos)
	}
	n, _ = clampSpan(words, n, 0)
	var tally spanTally
	s := uint8(state)
	c := 0
	i, r := 0, 0
	bodyEnd := n &^ 7
	for i < bodyEnd {
		for r < len(runs) && runs[r].End() <= i {
			r++
		}
		rs, re := bodyEnd, bodyEnd
		if r < len(runs) {
			rs, re = int(runs[r].Start), runs[r].End()
			if rs < i {
				rs = i
			}
			if rs > bodyEnd {
				rs = bodyEnd
			}
			if re > bodyEnd {
				re = bodyEnd
			}
		}
		for ; i < rs; i += 8 {
			b := uint8(words[i>>6] >> uint(i&63))
			e := t.tab[int(s)<<blockShift|int(b)]
			if c < len(pos) && int(pos[c]) < i+8 {
				x := uint8(e>>8) ^ b
				for ; c < len(pos) && int(pos[c]) < i+8; c++ {
					misses += int(x >> uint(int(pos[c])-i) & 1)
				}
			}
			s = uint8(e)
		}
		for i < re {
			stop := re
			if c < len(pos) && int(pos[c]) < re {
				stop = int(pos[c]) &^ 7
			}
			if k := (stop - i) >> 3; k > 0 {
				b := 0
				if runs[r].One {
					b = 1
				}
				s, _ = t.span.walk(s, k, b)
				tally.runs++
				tally.skipped += k << 3
				i = stop
			}
			if i < re && c < len(pos) && int(pos[c]) < i+8 {
				b := uint8(words[i>>6] >> uint(i&63))
				e := t.tab[int(s)<<blockShift|int(b)]
				x := uint8(e>>8) ^ b
				for ; c < len(pos) && int(pos[c]) < i+8; c++ {
					misses += int(x >> uint(int(pos[c])-i) & 1)
				}
				s = uint8(e)
				i += 8
			}
		}
	}
	for ; i < n; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if c < len(pos) && int(pos[c]) == i {
			if t.out[s] != b {
				misses++
			}
			c++
		}
		s = t.step[int(s)<<1|int(b)]
	}
	tally.flush()
	return misses, int(s)
}

// ReplayGatedSpans is ReplayGated walking a run index over the correct
// stream. Flagged counts need the valid bits, so a run is skipped only
// across stretches where the valid stream is saturated (all ones) —
// there the tallies are pure functions of the machine path: on a ones
// run every predict-taken step is flagged AND correct, on a zeros run
// every predict-taken step is flagged and none correct, and the power
// tables' miss counts are exactly those step counts. Elsewhere the run
// falls back to the gated byte loop. Bit-identical to ReplayGated, and
// like it errors on mismatched stream lengths.
func (t *BlockTable) ReplayGatedSpans(correct, valid []uint64, n int, runs []bitseq.Run) (flagged, flaggedCorrect int, err error) {
	if len(runs) == 0 || !SpanKernelEnabled() {
		return t.ReplayGated(correct, valid, n)
	}
	n, err = checkGatedStreams(correct, valid, n)
	if err != nil {
		return 0, 0, err
	}
	var tally spanTally
	s := t.start
	i, r := 0, 0
	bodyEnd := n &^ 7
	for i < bodyEnd {
		for r < len(runs) && runs[r].End() <= i {
			r++
		}
		rs, re := bodyEnd, bodyEnd
		if r < len(runs) {
			rs, re = int(runs[r].Start), runs[r].End()
			if rs < i {
				rs = i
			}
			if rs > bodyEnd {
				rs = bodyEnd
			}
			if re > bodyEnd {
				re = bodyEnd
			}
		}
		for ; i < rs; i += 8 {
			w, off := i>>6, uint(i&63)
			cb := uint8(correct[w] >> off)
			vb := uint8(valid[w] >> off)
			e := t.tab[int(s)<<blockShift|int(cb)]
			pm := uint8(e >> 8)
			flagged += bits.OnesCount8(vb & pm)
			flaggedCorrect += bits.OnesCount8(vb & pm & cb)
			s = uint8(e)
		}
		for i < re {
			if j := allOnesTo(valid, i, re); j > i {
				k := (j - i) >> 3
				b := 0
				if runs[r].One {
					b = 1
				}
				s2, m := t.span.walk(s, k, b)
				s = s2
				if b == 1 {
					f := k<<3 - m
					flagged += f
					flaggedCorrect += f
				} else {
					flagged += m
				}
				tally.runs++
				tally.skipped += k << 3
				i = j
			} else {
				w, off := i>>6, uint(i&63)
				cb := uint8(correct[w] >> off)
				vb := uint8(valid[w] >> off)
				e := t.tab[int(s)<<blockShift|int(cb)]
				pm := uint8(e >> 8)
				flagged += bits.OnesCount8(vb & pm)
				flaggedCorrect += bits.OnesCount8(vb & pm & cb)
				s = uint8(e)
				i += 8
			}
		}
	}
	for ; i < n; i++ {
		w, off := i>>6, uint(i&63)
		cb := uint8(correct[w] >> off & 1)
		if valid[w]>>off&1 == 1 && t.out[s] == 1 {
			flagged++
			flaggedCorrect += int(cb)
		}
		s = t.step[int(s)<<1|int(cb)]
	}
	tally.flush()
	return flagged, flaggedCorrect, nil
}

// allOnesTo returns the largest byte-aligned position j in [i, end]
// such that bits [i, j) of the packed stream are all ones, scanning a
// word at a time on aligned stretches. i and end must be byte-aligned.
func allOnesTo(words []uint64, i, end int) int {
	j := i
	for j < end {
		if j&63 == 0 && j+64 <= end && words[j>>6] == ^uint64(0) {
			j += 64
			continue
		}
		if uint8(words[j>>6]>>uint(j&63)) != 0xFF {
			break
		}
		j += 8
	}
	return j
}

// checkGatedStreams validates a gated replay's inputs: the two packed
// streams must have the same word length and hold at least n bits.
// Mismatched streams are a caller bug — silently truncating to the
// shorter one would misattribute confidence tallies — so they are an
// explicit error rather than a clamp.
func checkGatedStreams(correct, valid []uint64, n int) (int, error) {
	if n < 0 {
		n = 0
	}
	if len(correct) != len(valid) {
		return 0, fmt.Errorf("fsm: gated replay streams differ: %d correct words vs %d valid words", len(correct), len(valid))
	}
	if max := len(correct) << 6; n > max {
		return 0, fmt.Errorf("fsm: gated replay of %d events exceeds the streams' %d-bit capacity", n, max)
	}
	return n, nil
}
