package fsm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fsmpredict/internal/bitseq"
)

// runnyBits generates a biased stream with geometric run structure — the
// workload the span kernel exists for. Alternating taken/not-taken runs
// with means 2·meanRun·bias and 2·meanRun·(1−bias) give overall bias
// `bias` and mean run length meanRun.
func runnyBits(rng *rand.Rand, n int, bias, meanRun float64) *bitseq.Bits {
	b := &bitseq.Bits{}
	one := rng.Float64() < bias
	for b.Len() < n {
		mean := 2 * meanRun * (1 - bias)
		if one {
			mean = 2 * meanRun * bias
		}
		k := 1
		if mean > 1 {
			for rng.Float64() < 1-1/mean {
				k++
			}
		}
		for j := 0; j < k && b.Len() < n; j++ {
			b.Append(one)
		}
		one = !one
	}
	return b
}

// spanIndexOf is the tests' run-index shorthand.
func spanIndexOf(bits *bitseq.Bits) []bitseq.Run {
	return bitseq.Runs(bits.Words(), bits.Len(), bitseq.DefaultMinRunBytes)
}

// TestSpanWalkMatchesScalar checks every power-table walk against 8k
// scalar steps, for both byte values and run lengths crossing several
// level boundaries.
func TestSpanWalkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		m := randomMachine(rng, 1+rng.Intn(maxBlockStates))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		st := tab.Spans()
		for _, k := range []int{1, 2, 3, 5, 8, 13, 31, 64, 100} {
			for b := 0; b < 2; b++ {
				s0 := rng.Intn(len(m.Output))
				wantS, wantMiss := s0, 0
				for e := 0; e < 8*k; e++ {
					if m.Output[wantS] != (b == 1) {
						wantMiss++
					}
					wantS = m.Step(wantS, b == 1)
				}
				gotS, gotMiss := st.walk(uint8(s0), k, b)
				if int(gotS) != wantS || gotMiss != wantMiss {
					t.Fatalf("trial %d k=%d b=%d: walk (%d,%d), scalar (%d,%d)",
						trial, k, b, gotS, gotMiss, wantS, wantMiss)
				}
			}
		}
	}
}

// TestRunFromSpansMatchesRunFrom sweeps biased runny streams with random
// skips — every ragged alignment of run boundaries against the kernel's
// warm-up/head/body/tail phases — against the block kernel.
func TestRunFromSpansMatchesRunFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 60; trial++ {
		m := randomMachine(rng, 1+rng.Intn(40))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(2000)
		bias := 0.5 + rng.Float64()*0.49
		bits := runnyBits(rng, n, bias, float64(1+rng.Intn(200)))
		words := bits.Words()
		runs := spanIndexOf(bits)
		skip := rng.Intn(n + 2)
		state := rng.Intn(len(m.Output))

		wantRes, wantEnd := tab.RunFrom(state, words, n, skip)
		gotRes, gotEnd := tab.RunFromSpans(state, words, n, skip, runs)
		if gotRes != wantRes || gotEnd != wantEnd {
			t.Fatalf("trial %d (n=%d skip=%d runs=%d): spans (%+v,%d), block (%+v,%d)",
				trial, n, skip, len(runs), gotRes, gotEnd, wantRes, wantEnd)
		}
	}
}

// TestSimulatePackedSpansMatchesScalar pins the span kernel directly to
// the scalar oracle, not just to the block kernel.
func TestSimulatePackedSpansMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		m := randomMachine(rng, 1+rng.Intn(30))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(1500)
		bits := runnyBits(rng, n, 0.9, 40)
		skip := rng.Intn(n + 2)
		want := m.SimulateScalar(bits.Bools(), skip)
		got := tab.SimulatePackedSpans(bits.Words(), n, skip, spanIndexOf(bits))
		if got != want {
			t.Fatalf("trial %d: spans %+v, scalar %+v", trial, got, want)
		}
	}
}

// TestRunSampledSpansMatchesRunSampled sweeps random sampled-position
// subsets — empty, sparse, dense, clustered inside runs — against the
// block kernel.
func TestRunSampledSpansMatchesRunSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 60; trial++ {
		m := randomMachine(rng, 1+rng.Intn(40))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(2000)
		bits := runnyBits(rng, n, 0.5+rng.Float64()*0.49, float64(1+rng.Intn(150)))
		words := bits.Words()
		runs := spanIndexOf(bits)
		var pos []int32
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.05 {
				pos = append(pos, int32(i))
			}
		}
		state := rng.Intn(len(m.Output))

		wantM, wantEnd := tab.RunSampled(state, words, n, pos)
		gotM, gotEnd := tab.RunSampledSpans(state, words, n, pos, runs)
		if gotM != wantM || gotEnd != wantEnd {
			t.Fatalf("trial %d (n=%d pos=%d): spans (%d,%d), block (%d,%d)",
				trial, n, len(pos), gotM, gotEnd, wantM, wantEnd)
		}
	}
}

// TestReplayGatedSpansMatchesReplayGated sweeps gated replays whose
// valid stream mixes saturated stretches (where runs skip) with sparse
// gating (where they fall back), against the block kernel.
func TestReplayGatedSpansMatchesReplayGated(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 60; trial++ {
		m := randomMachine(rng, 1+rng.Intn(40))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(2000)
		correct := runnyBits(rng, n, 0.5+rng.Float64()*0.49, float64(1+rng.Intn(150)))
		// Valid saturates in long stretches, like a warm predictor table.
		valid := runnyBits(rng, n, 0.95, 200)
		runs := spanIndexOf(correct)

		wantF, wantFC, err := tab.ReplayGated(correct.Words(), valid.Words(), n)
		if err != nil {
			t.Fatal(err)
		}
		gotF, gotFC, err := tab.ReplayGatedSpans(correct.Words(), valid.Words(), n, runs)
		if err != nil {
			t.Fatal(err)
		}
		if gotF != wantF || gotFC != wantFC {
			t.Fatalf("trial %d (n=%d runs=%d): spans (%d,%d), block (%d,%d)",
				trial, n, len(runs), gotF, gotFC, wantF, wantFC)
		}
	}
}

// TestGatedStreamsMismatchError pins the satellite fix: mismatched
// gated streams are an explicit error, not a silent truncation — on the
// single-machine kernel, the fleet, and the span variants.
func TestGatedStreamsMismatchError(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	m := randomMachine(rng, 8)
	tab, err := CompileBlockTable(m)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFleet([]*Machine{m})
	if err != nil {
		t.Fatal(err)
	}
	short, long := make([]uint64, 2), make([]uint64, 3)

	if _, _, err := tab.ReplayGated(short, long, 100); err == nil {
		t.Fatal("BlockTable.ReplayGated accepted mismatched streams")
	}
	if _, _, err := tab.ReplayGatedSpans(long, short, 100, nil); err == nil {
		t.Fatal("BlockTable.ReplayGatedSpans accepted mismatched streams")
	}
	if _, _, err := fl.ReplayGated(short, long, 100); err == nil {
		t.Fatal("Fleet.ReplayGated accepted mismatched streams")
	}
	if _, _, err := fl.ReplayGatedSpans(long, short, 100, nil); err == nil {
		t.Fatal("Fleet.ReplayGatedSpans accepted mismatched streams")
	}
	if _, _, err := tab.ReplayGated(short, short, 129); err == nil {
		t.Fatal("ReplayGated accepted n beyond the streams' capacity")
	}
	if _, _, err := tab.ReplayGated(short, short, 128); err != nil {
		t.Fatalf("ReplayGated rejected an exactly-full stream: %v", err)
	}
	if f, fc, err := tab.ReplayGated(short, short, -5); err != nil || f != 0 || fc != 0 {
		t.Fatalf("ReplayGated on negative n: (%d,%d,%v), want zeros", f, fc, err)
	}
}

// TestFleetRunSpansMatchesRun checks the fleet span path — run-boundary
// segment cutting, per-lane power walks, the scoreFrom straddle — against
// the plain fleet and the single-machine kernel, including deduped twins.
func TestFleetRunSpansMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		count := 1 + rng.Intn(12)
		machines := make([]*Machine, count)
		for j := range machines {
			if j > 0 && rng.Intn(3) == 0 {
				machines[j] = machines[rng.Intn(j)]
			} else {
				machines[j] = randomMachine(rng, 1+rng.Intn(25))
			}
		}
		fl, err := NewFleet(machines)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(4000)
		bits := runnyBits(rng, n, 0.5+rng.Float64()*0.49, float64(1+rng.Intn(300)))
		words := bits.Words()
		runs := spanIndexOf(bits)
		skip := rng.Intn(n + 2)

		want := fl.RunParallelSpans(1, words, n, skip, nil)
		got := fl.RunSpans(words, n, skip, runs)
		gotPar := fl.RunParallelSpans(3, words, n, skip, runs)
		for j := range machines {
			if got[j] != want[j] || gotPar[j] != want[j] {
				t.Fatalf("trial %d machine %d: spans %+v par %+v, plain %+v",
					trial, j, got[j], gotPar[j], want[j])
			}
		}
	}
}

// TestFleetReplayGatedSpansMatchesBlockTable checks the fleet's gated
// span replay against the single-machine span kernel.
func TestFleetReplayGatedSpansMatchesBlockTable(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 25; trial++ {
		count := 1 + rng.Intn(8)
		machines := make([]*Machine, count)
		for j := range machines {
			machines[j] = randomMachine(rng, 1+rng.Intn(20))
		}
		fl, err := NewFleet(machines)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(2000)
		correct := runnyBits(rng, n, 0.9, 100)
		valid := runnyBits(rng, n, 0.97, 300)
		runs := spanIndexOf(correct)

		gf, gfc, err := fl.ReplayGatedSpans(correct.Words(), valid.Words(), n, runs)
		if err != nil {
			t.Fatal(err)
		}
		for j, m := range machines {
			tab, err := CompileBlockTable(m)
			if err != nil {
				t.Fatal(err)
			}
			wf, wfc, err := tab.ReplayGated(correct.Words(), valid.Words(), n)
			if err != nil {
				t.Fatal(err)
			}
			if gf[j] != wf || gfc[j] != wfc {
				t.Fatalf("trial %d machine %d: fleet (%d,%d), single (%d,%d)",
					trial, j, gf[j], gfc[j], wf, wfc)
			}
		}
	}
}

// TestSpanKernelToggle proves the toggle routes around the span path and
// that both settings produce identical results.
func TestSpanKernelToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	m := randomMachine(rng, 12)
	tab, err := CompileBlockTable(m)
	if err != nil {
		t.Fatal(err)
	}
	bits := runnyBits(rng, 3000, 0.95, 80)
	runs := spanIndexOf(bits)
	on := tab.SimulatePackedSpans(bits.Words(), bits.Len(), 16, runs)

	was := SetSpanKernel(false)
	defer SetSpanKernel(was)
	if !was {
		t.Fatal("span kernel should default to enabled")
	}
	if SpanKernelEnabled() {
		t.Fatal("SetSpanKernel(false) left the kernel enabled")
	}
	off := tab.SimulatePackedSpans(bits.Words(), bits.Len(), 16, runs)
	if on != off {
		t.Fatalf("toggle changed results: on %+v, off %+v", on, off)
	}
}

// TestSpanStatsAdvance checks the metrics counters actually move when
// runs are skipped.
func TestSpanStatsAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	m := randomMachine(rng, 10)
	tab, err := CompileBlockTable(m)
	if err != nil {
		t.Fatal(err)
	}
	bits := runnyBits(rng, 8000, 0.97, 200)
	runs := spanIndexOf(bits)
	if len(runs) == 0 {
		t.Fatal("runny stream produced no runs")
	}
	before := SpanStats()
	tab.SimulatePackedSpans(bits.Words(), bits.Len(), 0, runs)
	after := SpanStats()
	if after.Runs <= before.Runs || after.SkippedEvents <= before.SkippedEvents {
		t.Fatalf("span counters did not advance: before %+v, after %+v", before, after)
	}
	if after.TableBytes == 0 {
		t.Fatal("power-table bytes unaccounted")
	}
}

// TestSpanTableConcurrent hammers one shared span table from many
// goroutines demanding ascending levels concurrently — the -race stress
// for the lazy level growth.
func TestSpanTableConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	m := randomMachine(rng, 30)
	tab, err := CompileBlockTable(m)
	if err != nil {
		t.Fatal(err)
	}
	bits := runnyBits(rng, 20000, 0.96, 150)
	words, n := bits.Words(), bits.Len()
	runs := spanIndexOf(bits)
	want := tab.SimulatePacked(words, n, 5)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				if got := tab.SimulatePackedSpans(words, n, 5, runs); got != want {
					t.Errorf("goroutine %d iter %d: %+v, want %+v", g, it, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkSpanKernel measures the span kernel against the block kernel
// on 95%-bias streams across run-length regimes — short blips (runlen
// 64: runs barely clear the index threshold) up to loop-dominated
// structure (runlen 512+: a back-edge resolving the same way for
// hundreds of iterations, the behaviour the paper's gcc/go traces
// show). The span/512 case carries the ≥3× acceptance bar.
func BenchmarkSpanKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := randomMachine(rng, 16)
	tab, err := CompileBlockTable(m)
	if err != nil {
		b.Fatal(err)
	}
	n := 1 << 22
	bytes := int64(n) / 8

	for _, runlen := range []int{64, 512, 4096} {
		bits := runnyBits(rng, n, 0.95, float64(runlen))
		words := bits.Words()
		runs := spanIndexOf(bits)
		b.Run(fmt.Sprintf("block/runlen=%d", runlen), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				tab.SimulatePacked(words, n, 0)
			}
		})
		b.Run(fmt.Sprintf("span/runlen=%d", runlen), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				tab.SimulatePackedSpans(words, n, 0, runs)
			}
		})
		b.Run(fmt.Sprintf("index/runlen=%d", runlen), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				bitseq.Runs(words, n, bitseq.DefaultMinRunBytes)
			}
		})
	}
}

// BenchmarkSpanBias sweeps the stream bias at fixed run structure
// (mean run 256 events) — the source of the EXPERIMENTS.md bias-scaling
// table. At bias 0.5 runs split evenly between the two values; toward
// 0.99 the stream approaches one solid run per index entry.
func BenchmarkSpanBias(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := randomMachine(rng, 16)
	tab, err := CompileBlockTable(m)
	if err != nil {
		b.Fatal(err)
	}
	n := 1 << 22
	bytes := int64(n) / 8
	for _, bias := range []float64{0.5, 0.75, 0.9, 0.95, 0.99} {
		bits := runnyBits(rng, n, bias, 256)
		words := bits.Words()
		runs := spanIndexOf(bits)
		b.Run(fmt.Sprintf("off/bias=%g", bias), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				tab.SimulatePacked(words, n, 0)
			}
		})
		b.Run(fmt.Sprintf("on/bias=%g", bias), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				tab.SimulatePackedSpans(words, n, 0, runs)
			}
		})
	}
}
