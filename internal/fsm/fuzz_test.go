package fsm

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the deserializer never panics, never returns an
// invalid machine, and that accepted machines survive a write/read round
// trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	m := &Machine{
		Name:   "seed",
		Output: []bool{false, true, true},
		Next:   [][2]int{{0, 1}, {2, 1}, {0, 1}},
		Start:  0,
	}
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("fsm 1 0\n1 0 0\n")
	f.Add("fsm 2 0 name with spaces\n0 1 1\n1 0 0\n")
	f.Add("fsm 99999999 0 x\n")
	f.Add("fsm -1 -1\n")
	f.Add("fsm 1 0\n1 99 0\n")

	f.Fuzz(func(t *testing.T, s string) {
		m, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Read returned invalid machine: %v", err)
		}
		var out bytes.Buffer
		if _, err := m.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumStates() != m.NumStates() || back.Start != m.Start {
			t.Fatal("round trip changed the machine")
		}
	})
}
