package fsm

import (
	"bytes"
	"strings"
	"testing"

	"fsmpredict/internal/bitseq"
)

// FuzzRead checks that the deserializer never panics, never returns an
// invalid machine, and that accepted machines survive a write/read round
// trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	m := &Machine{
		Name:   "seed",
		Output: []bool{false, true, true},
		Next:   [][2]int{{0, 1}, {2, 1}, {0, 1}},
		Start:  0,
	}
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("fsm 1 0\n1 0 0\n")
	f.Add("fsm 2 0 name with spaces\n0 1 1\n1 0 0\n")
	f.Add("fsm 99999999 0 x\n")
	f.Add("fsm -1 -1\n")
	f.Add("fsm 1 0\n1 99 0\n")

	f.Fuzz(func(t *testing.T, s string) {
		m, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Read returned invalid machine: %v", err)
		}
		var out bytes.Buffer
		if _, err := m.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumStates() != m.NumStates() || back.Start != m.Start {
			t.Fatal("round trip changed the machine")
		}
	})
}

// FuzzBlockTable derives a machine and a packed stream from raw fuzz
// bytes and asserts the blocked kernels — whole-stream, ragged skip,
// sampled replay and the chunked BlockRunner — are bit-identical to
// the scalar oracle.
func FuzzBlockTable(f *testing.F) {
	f.Add(uint8(3), uint8(0), uint8(2), []byte{0xa5, 0x5a, 0xff, 0x00, 0x13})
	f.Add(uint8(1), uint8(0), uint8(0), []byte{})
	f.Add(uint8(40), uint8(39), uint8(200), bytes.Repeat([]byte{0xcc}, 33))
	f.Add(uint8(255), uint8(7), uint8(9), bytes.Repeat([]byte{0x0f, 0xf0}, 17))

	f.Fuzz(func(t *testing.T, states, start, skip8 uint8, raw []byte) {
		n := int(states)
		if n == 0 {
			n = 1
		}
		m := &Machine{
			Output: make([]bool, n),
			Next:   make([][2]int, n),
			Start:  int(start) % n,
		}
		// Derive transitions and outputs from the stream bytes so the
		// fuzzer explores machine structure and input together.
		at := func(i int) byte {
			if len(raw) == 0 {
				return 0
			}
			return raw[i%len(raw)]
		}
		for s := 0; s < n; s++ {
			m.Output[s] = at(3*s)&1 == 1
			m.Next[s] = [2]int{int(at(3*s+1)) % n, int(at(3*s+2)) % n}
		}
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatalf("valid machine rejected: %v", err)
		}

		stream := &bitseq.Bits{}
		for _, b := range raw {
			for j := 0; j < 8; j++ {
				stream.AppendBit(int(b >> uint(j) & 1))
			}
		}
		// Ragged tail: drop up to 7 bits so the stream length is not a
		// byte multiple.
		length := stream.Len()
		if length > 0 {
			length -= int(start) % 8 % (length + 1)
		}
		bools := stream.Bools()[:length]
		skip := int(skip8)

		want := m.SimulateScalar(bools, skip)
		if got := tab.SimulatePacked(stream.Words(), length, skip); got != want {
			t.Fatalf("SimulatePacked %+v, scalar %+v (n=%d skip=%d)", got, want, length, skip)
		}
		if got := m.Simulate(bools, skip); got != want {
			t.Fatalf("Simulate %+v, scalar %+v", got, want)
		}

		r := NewBlockRunner(tab, skip)
		for i := 0; i < length; {
			chunk := 1 + int(at(i))%11
			if i+chunk > length {
				chunk = length - i
			}
			r.FeedBools(bools[i : i+chunk])
			i += chunk
		}
		if got := r.Result(); got != want {
			t.Fatalf("BlockRunner %+v, scalar %+v", got, want)
		}

		// Sampled replay at positions derived from the stream itself.
		var pos []int32
		for i := 0; i < length; i++ {
			if at(i)%3 == 0 {
				pos = append(pos, int32(i))
			}
		}
		state := m.Start
		wantMiss := 0
		c := 0
		for i := 0; i < length; i++ {
			b := bools[i]
			if c < len(pos) && int(pos[c]) == i {
				if m.Output[state] != b {
					wantMiss++
				}
				c++
			}
			state = m.Step(state, b)
		}
		miss, end := tab.RunSampled(m.Start, stream.Words(), length, pos)
		if miss != wantMiss || end != state {
			t.Fatalf("RunSampled (%d,%d), scalar (%d,%d)", miss, end, wantMiss, state)
		}
	})
}
