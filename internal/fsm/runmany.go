package fsm

import "math/bits"

// RunManyPacked replays ONE packed outcome stream through MANY block
// tables in a single pass: per 8-event block the kernel extracts the
// byte once and advances every machine's state through its own closure
// table, so the trace words are read len(tabs) times fewer than
// running SimulatePacked per machine. It returns one SimResult per
// table, each bit-identical to tabs[j].SimulatePacked(words, n, skip)
// — the loop structure (byte warm-up, ragged head, aligned body,
// ragged tail) is RunFrom's with the machine loop innermost.
//
// This was the serving-side kernel behind coalesced /v1/batch/simulate
// flushes before the fleet kernel (fleet.go) superseded it: flushes now
// pack their tables into a Fleet, whose tiled loop keeps each machine's
// table cache-hot instead of touching every table per byte as this loop
// does. RunManyPacked stays as the fleet's baseline in BenchmarkFleet
// and as an independent multi-machine implementation the differential
// tests cross-check. n beyond the words' bit capacity is clamped.
func RunManyPacked(tabs []*BlockTable, words []uint64, n, skip int) []SimResult {
	res := make([]SimResult, len(tabs))
	if len(tabs) == 0 {
		return res
	}
	n, skip = clampSpan(words, n, skip)
	states := make([]uint8, len(tabs))
	correct := make([]int, len(tabs))
	for j, t := range tabs {
		states[j] = t.start
	}
	i := 0
	// Warm-up: advance without scoring, whole bytes then the ragged
	// remainder. i starts byte-aligned, so extraction stays in-word.
	for ; i+8 <= skip; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		for j, t := range tabs {
			states[j] = uint8(t.tab[int(states[j])<<blockShift|int(b)])
		}
	}
	for ; i < skip; i++ {
		b := words[i>>6] >> uint(i&63) & 1
		for j, t := range tabs {
			states[j] = t.step[int(states[j])<<1|int(b)]
		}
	}
	// Scalar-step to the next byte boundary, then run aligned bytes,
	// then the scalar tail.
	for ; i < n && i&7 != 0; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		for j, t := range tabs {
			if t.out[states[j]] == b {
				correct[j]++
			}
			states[j] = t.step[int(states[j])<<1|int(b)]
		}
	}
	for ; i+8 <= n; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		for j, t := range tabs {
			e := t.tab[int(states[j])<<blockShift|int(b)]
			correct[j] += 8 - bits.OnesCount8(uint8(e>>8)^b)
			states[j] = uint8(e)
		}
	}
	for ; i < n; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		for j, t := range tabs {
			if t.out[states[j]] == b {
				correct[j]++
			}
			states[j] = t.step[int(states[j])<<1|int(b)]
		}
	}
	for j := range res {
		res[j] = SimResult{Total: n - skip, Correct: correct[j]}
	}
	return res
}
