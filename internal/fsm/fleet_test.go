package fsm

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"fsmpredict/internal/bitseq"
)

// TestFleetMatchesSimulatePacked is the fleet's primary differential:
// mixed machine sizes (including deliberate duplicates), every ragged
// head/tail combination, a sweep of skips, and both the sequential and
// the sharded pass must all be bit-identical to per-machine
// SimulatePacked.
func TestFleetMatchesSimulatePacked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		count := 1 + rng.Intn(20)
		machines := make([]*Machine, count)
		for j := range machines {
			if j > 0 && rng.Intn(3) == 0 {
				machines[j] = machines[rng.Intn(j)] // force dedup coverage
			} else {
				machines[j] = randomMachine(rng, 1+rng.Intn(40))
			}
		}
		fl, err := NewFleet(machines)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 7, 8, 9, 64, 65, 200, fleetSegEvents - 3, fleetSegEvents, fleetSegEvents + 11} {
			bits := randomBits(rng, n)
			for _, skip := range []int{0, 1, 3, 8, 17, n / 2, n, n + 5} {
				for _, workers := range []int{1, 4} {
					got := fl.RunParallel(workers, bits.Words(), n, skip)
					if len(got) != count {
						t.Fatalf("len = %d, want %d", len(got), count)
					}
					for j, m := range machines {
						tab, err := CompileBlockTable(m)
						if err != nil {
							t.Fatal(err)
						}
						want := tab.SimulatePacked(bits.Words(), n, skip)
						if got[j] != want {
							t.Fatalf("machines=%d n=%d skip=%d workers=%d machine %d: fleet %+v, single %+v",
								count, n, skip, workers, j, got[j], want)
						}
					}
				}
			}
		}
	}
}

// TestFleetDedup checks that structural duplicates collapse into one
// walk and still receive independent (correct) results.
func TestFleetDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMachine(rng, 6)
	b := randomMachine(rng, 11)
	aCopy := a.Clone()
	aCopy.Name = "renamed" // Name must not defeat dedup
	fl, err := NewFleet([]*Machine{a, b, aCopy, a, b})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Len() != 5 || fl.Unique() != 2 || fl.Deduped() != 3 {
		t.Fatalf("Len=%d Unique=%d Deduped=%d, want 5/2/3", fl.Len(), fl.Unique(), fl.Deduped())
	}
	bits := randomBits(rng, 777)
	res := fl.Run(bits.Words(), bits.Len(), 13)
	if res[0] != res[2] || res[0] != res[3] || res[1] != res[4] {
		t.Fatalf("duplicate slots disagree: %+v", res)
	}
	if want := a.SimulateBits(bits, 13); res[0] != want {
		t.Fatalf("fleet %+v, machine %+v", res[0], want)
	}
}

// TestFleetEmpty covers the zero-machine and zero-trace edges.
func TestFleetEmpty(t *testing.T) {
	fl, err := NewFleet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := fl.Run(nil, 100, 0); len(res) != 0 {
		t.Fatalf("empty fleet returned %v", res)
	}
	rng := rand.New(rand.NewSource(3))
	fl, err = NewFleet([]*Machine{randomMachine(rng, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if res := fl.Run(nil, 0, 0); res[0] != (SimResult{}) {
		t.Fatalf("empty trace returned %+v", res[0])
	}
}

// TestFleetRejectsInvalid checks the error path for machines the block
// kernel cannot represent.
func TestFleetRejectsInvalid(t *testing.T) {
	if _, err := NewFleet([]*Machine{nil}); err == nil {
		t.Fatal("nil machine accepted")
	}
	bad := &Machine{Output: []bool{false}, Next: [][2]int{{0, 7}}}
	if _, err := NewFleet([]*Machine{bad}); err == nil {
		t.Fatal("invalid machine accepted")
	}
	big := &Machine{Output: make([]bool, 300), Next: make([][2]int, 300)}
	if _, err := NewFleet([]*Machine{big}); err == nil {
		t.Fatal("300-state machine accepted")
	}
}

// TestPackedEntryPointsClampOverlongN is the bounds-guard regression:
// every packed entry point must clamp an event count beyond the words'
// capacity instead of reading out of range, and the clamped run must
// equal the run at the true length.
func TestPackedEntryPointsClampOverlongN(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomMachine(rng, 9)
	tab, err := CompileBlockTable(m)
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(rng, 130)
	words, n := bits.Words(), bits.Len()
	over := len(words)*64 + 129 // far past capacity
	capEvents := len(words) * 64

	wantSingle := tab.SimulatePacked(words, capEvents, 5)
	if got := tab.SimulatePacked(words, over, 5); got != wantSingle {
		t.Fatalf("SimulatePacked over-long: %+v, want %+v", got, wantSingle)
	}
	wantMany := RunManyPacked([]*BlockTable{tab}, words, capEvents, 5)
	if got := RunManyPacked([]*BlockTable{tab}, words, over, 5); !reflect.DeepEqual(got, wantMany) {
		t.Fatalf("RunManyPacked over-long: %+v, want %+v", got, wantMany)
	}
	fl := FleetOfTables([]*BlockTable{tab})
	if got := fl.Run(words, over, 5); !reflect.DeepEqual(got, wantMany) {
		t.Fatalf("Fleet.Run over-long: %+v, want %+v", got, wantMany)
	}
	var pos []int32
	for i := 0; i < n; i += 3 {
		pos = append(pos, int32(i))
	}
	wm, we := tab.RunSampled(m.Start, words, capEvents, pos)
	if gm, ge := tab.RunSampled(m.Start, words, over, pos); gm != wm || ge != we {
		t.Fatalf("RunSampled over-long: (%d,%d), want (%d,%d)", gm, ge, wm, we)
	}
	if gm, ge := m.RunSampledScalar(m.Start, words, over, pos); gm != wm || ge != we {
		t.Fatalf("RunSampledScalar over-long: (%d,%d), want (%d,%d)", gm, ge, wm, we)
	}
}

// TestFleetRunSampledMatchesBlockTable checks the batched update-all
// replay against the per-machine kernel and the scalar oracle.
func TestFleetRunSampledMatchesBlockTable(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		count := 1 + rng.Intn(10)
		machines := make([]*Machine, count)
		for j := range machines {
			machines[j] = randomMachine(rng, 1+rng.Intn(30))
		}
		fl, err := NewFleet(machines)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(400)
		bits := randomBits(rng, n)
		pos := make([][]int32, count)
		for j := range pos {
			for i := 0; i < n; i++ {
				if rng.Intn(4) == 0 {
					pos[j] = append(pos[j], int32(i))
				}
			}
		}
		got := fl.RunSampled(bits.Words(), n, pos)
		for j, m := range machines {
			tab, err := CompileBlockTable(m)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := tab.RunSampled(m.Start, bits.Words(), n, pos[j])
			if got[j] != want {
				t.Fatalf("trial %d machine %d: fleet %d, single %d", trial, j, got[j], want)
			}
			scalar, _ := m.RunSampledScalar(m.Start, bits.Words(), n, pos[j])
			if got[j] != scalar {
				t.Fatalf("trial %d machine %d: fleet %d, scalar %d", trial, j, got[j], scalar)
			}
		}
	}
}

// TestFleetReplayGatedMatchesBlockTable checks the batched confidence
// replay (including dedup fan-out) against the per-machine kernel.
func TestFleetReplayGatedMatchesBlockTable(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		count := 1 + rng.Intn(8)
		machines := make([]*Machine, count)
		for j := range machines {
			if j > 0 && rng.Intn(3) == 0 {
				machines[j] = machines[rng.Intn(j)]
			} else {
				machines[j] = randomMachine(rng, 1+rng.Intn(20))
			}
		}
		fl, err := NewFleet(machines)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(300)
		correct, valid := randomBits(rng, n), randomBits(rng, n)
		gf, gfc, err := fl.ReplayGated(correct.Words(), valid.Words(), n)
		if err != nil {
			t.Fatal(err)
		}
		for j, m := range machines {
			tab, err := CompileBlockTable(m)
			if err != nil {
				t.Fatal(err)
			}
			wf, wfc, err := tab.ReplayGated(correct.Words(), valid.Words(), n)
			if err != nil {
				t.Fatal(err)
			}
			if gf[j] != wf || gfc[j] != wfc {
				t.Fatalf("trial %d machine %d: fleet (%d,%d), single (%d,%d)",
					trial, j, gf[j], gfc[j], wf, wfc)
			}
		}
	}
}

// TestFleetConcurrent hammers one shared fleet from many goroutines
// mixing sequential and sharded passes — the -race stress for the
// kernel's immutability claim.
func TestFleetConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	machines := make([]*Machine, 24)
	for j := range machines {
		machines[j] = randomMachine(rng, 2+rng.Intn(20))
	}
	fl, err := NewFleet(machines)
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(rng, 5000)
	words, n := bits.Words(), bits.Len()
	want := fl.Run(words, n, 7)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got := fl.RunParallel(1+g%4, words, n, 7)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d iter %d: results diverged", g, iter)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// FuzzFleet drives a small mixed fleet from fuzzed machine bytes and
// stream content, asserting against per-machine SimulatePacked.
func FuzzFleet(f *testing.F) {
	f.Add([]byte{3, 1, 0, 2, 9}, []byte{0xAA, 0x0F}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0x01, 0xFF, 0x3C}, uint8(5))
	f.Fuzz(func(t *testing.T, genes, stream []byte, skip8 uint8) {
		if len(genes) == 0 {
			return
		}
		at := func(i int) int { return int(genes[i%len(genes)]) }
		count := 1 + at(0)%6
		machines := make([]*Machine, count)
		g := 1
		for j := range machines {
			states := 1 + at(g)%12
			g++
			m := &Machine{
				Output: make([]bool, states),
				Next:   make([][2]int, states),
				Start:  at(g) % states,
			}
			g++
			for s := 0; s < states; s++ {
				m.Output[s] = at(g)%2 == 1
				m.Next[s] = [2]int{at(g+1) % states, at(g+2) % states}
				g += 3
			}
			machines[j] = m
		}
		bits := &bitseq.Bits{}
		for _, b := range stream {
			for k := 0; k < 8; k++ {
				bits.AppendBit(int(b >> uint(k) & 1))
			}
		}
		n := bits.Len()
		if len(genes) > 2 {
			n -= at(2) % (n + 1)
		}
		skip := int(skip8)
		fl, err := NewFleet(machines)
		if err != nil {
			t.Fatal(err)
		}
		got := fl.RunParallel(1+at(0)%3, bits.Words(), n, skip)
		for j, m := range machines {
			tab, err := CompileBlockTable(m)
			if err != nil {
				t.Fatal(err)
			}
			if want := tab.SimulatePacked(bits.Words(), n, skip); got[j] != want {
				t.Fatalf("machine %d: fleet %+v, single %+v (n=%d skip=%d)", j, got[j], want, n, skip)
			}
		}
	})
}

// BenchmarkFleet measures the fleet's aggregate throughput scaling
// curve against RunManyPacked and per-machine passes at the same
// machine counts — the ISSUE 7 headline (≥ 2× RunManyPacked at 64).
func BenchmarkFleet(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	bits := randomBits(rng, 1<<18)
	words, n := bits.Words(), bits.Len()
	for _, machines := range []int{1, 16, 64, 256} {
		ms := make([]*Machine, machines)
		tabs := make([]*BlockTable, machines)
		for j := range ms {
			ms[j] = randomMachine(rng, 4+j%13)
			var err error
			if tabs[j], err = CompileBlockTable(ms[j]); err != nil {
				b.Fatal(err)
			}
		}
		fl := FleetOfTables(tabs)
		bytes := int64(machines * n / 8)
		b.Run(fmt.Sprintf("fleet/n%d", machines), func(b *testing.B) {
			b.SetBytes(bytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fl.Run(words, n, 0)
			}
		})
		b.Run(fmt.Sprintf("fleet-parallel/n%d", machines), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				fl.RunParallel(0, words, n, 0)
			}
		})
		b.Run(fmt.Sprintf("runmany/n%d", machines), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				RunManyPacked(tabs, words, n, 0)
			}
		})
	}
}
