package fsm

import (
	"fmt"

	"fsmpredict/internal/disktier"
)

// The block-table cache's disk tier: a compiled 8-event closure table
// is ~64 KiB for a 128-state machine and pure function of the machine,
// so a restarted process can mmap yesterday's table instead of re-
// running the doubling composition. The artifact stores the full table
// plus the 2-symbol step/output rows — which ARE the source machine's
// transition structure, so the decoded table carries an exact clone for
// the cache's structural hit-verification, and a hash collision or
// corrupted artifact is caught by the same compiledFrom check a memory
// hit gets.

// blockTableKind addresses block-table artifacts in the disk tier.
const blockTableKind = "blocktable"

// blockTableVersion is the artifact format version; bump on any layout
// change and stale files recompute cleanly.
const blockTableVersion = 1

// SetDiskTier attaches a disk store beneath the process-wide block-
// table cache (nil detaches). Intended to be called once at startup by
// the binaries that opt in via -cache-dir.
func SetDiskTier(d *disktier.Store) {
	if d == nil {
		blockCache.SetTier2(nil, nil)
		return
	}
	blockCache.SetTier2(
		func(h uint64) (*BlockTable, bool) {
			blob, ok := d.Get(blockTableKind, blockTableVersion, diskKey(h))
			if !ok {
				return nil, false
			}
			defer blob.Close()
			return decodeBlockTable(blob.Data)
		},
		func(h uint64, t *BlockTable) {
			d.Put(blockTableKind, blockTableVersion, diskKey(h), encodeBlockTable(t))
		},
	)
}

// ResetBlockCache drops the in-process block-table tier (statistics and
// any disk tier remain). Warm-start measurement uses it to force the
// next lookups through the disk tier.
func ResetBlockCache() { blockCache.Clear() }

// diskKey renders the 64-bit machine hash as the artifact key.
func diskKey(h uint64) string { return fmt.Sprintf("%016x", h) }

// encodeBlockTable renders a table's payload: state count, start state,
// per-state outputs, the 2-symbol step rows, then the full closure
// table. step/out/start reconstruct the source machine exactly, so no
// separate machine encoding is needed.
func encodeBlockTable(t *BlockTable) []byte {
	n := t.NumStates()
	b := make([]byte, 0, 8+3*n+2*len(t.tab))
	b = disktier.AppendU32(b, uint32(n))
	b = append(b, t.start)
	b = disktier.AppendBytes(b, t.out)
	b = disktier.AppendBytes(b, t.step)
	b = disktier.AppendU16s(b, t.tab)
	return b
}

// decodeBlockTable parses a payload back into a table, rebuilding the
// source-machine clone and structurally validating every field; any
// inconsistency reads as a miss (the caller recompiles).
func decodeBlockTable(payload []byte) (*BlockTable, bool) {
	r := disktier.NewReader(payload)
	n := int(r.U32())
	start := r.U8()
	out := r.Bytes()
	step := r.Bytes()
	tab := r.U16s()
	if !r.Done() || n <= 0 || n > maxBlockStates ||
		len(out) != n || len(step) != 2*n || len(tab) != n<<blockShift || int(start) >= n {
		return nil, false
	}
	m := &Machine{
		Output: make([]bool, n),
		Next:   make([][2]int, n),
		Start:  int(start),
	}
	for s := 0; s < n; s++ {
		if out[s] > 1 || int(step[s<<1]) >= n || int(step[s<<1|1]) >= n {
			return nil, false
		}
		m.Output[s] = out[s] == 1
		m.Next[s] = [2]int{int(step[s<<1]), int(step[s<<1|1])}
	}
	t := &BlockTable{tab: tab, step: step, out: out, start: start, src: m}
	return t, true
}
