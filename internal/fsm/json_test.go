package fsm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func testMachine() *Machine {
	return &Machine{
		Name:   "fig1",
		Output: []bool{true, false, true},
		Next:   [][2]int{{1, 2}, {1, 2}, {1, 0}},
		Start:  0,
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := testMachine()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"fig1","start":0,"states":[[1,1,2],[0,1,2],[1,1,0]]}`
	if string(data) != want {
		t.Errorf("encoding = %s, want %s", data, want)
	}
	var back Machine
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !Isomorphic(m, &back) || back.Name != m.Name || back.Start != m.Start {
		t.Errorf("round trip changed machine: %s -> %s", m, &back)
	}
	// The encoding must be deterministic: cache hits compare bytes.
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("re-encoding differs: %s vs %s", data, again)
	}
}

func TestJSONOmitsEmptyName(t *testing.T) {
	m := testMachine()
	m.Name = ""
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "name") {
		t.Errorf("empty name not omitted: %s", data)
	}
	var back Machine
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "" {
		t.Errorf("name = %q, want empty", back.Name)
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", `{{`},
		{"no states", `{"start":0,"states":[]}`},
		{"start out of range", `{"start":3,"states":[[0,0,0]]}`},
		{"negative start", `{"start":-1,"states":[[0,0,0]]}`},
		{"successor out of range", `{"start":0,"states":[[0,0,7]]}`},
		{"negative successor", `{"start":0,"states":[[0,-1,0]]}`},
		{"non-binary output", `{"start":0,"states":[[2,0,0]]}`},
		{"wrong arity", `{"start":0,"states":[[0,0]]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := testMachine()
			if err := json.Unmarshal([]byte(c.in), m); err == nil {
				t.Fatalf("decode of %s succeeded: %s", c.in, m)
			}
			// A failed decode must leave the receiver untouched.
			if !Isomorphic(m, testMachine()) {
				t.Errorf("failed decode modified receiver: %s", m)
			}
		})
	}
}

func TestMarshalRejectsInvalidMachine(t *testing.T) {
	m := &Machine{Output: []bool{false}, Next: [][2]int{{0, 9}}}
	if _, err := json.Marshal(m); err == nil {
		t.Error("marshalling an invalid machine succeeded")
	}
}

// FuzzUnmarshalJSON checks the decoder never panics and never yields an
// invalid machine, and that accepted machines survive an encode/decode
// round trip byte-identically.
func FuzzUnmarshalJSON(f *testing.F) {
	seed, err := json.Marshal(testMachine())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"start":0,"states":[[1,0,0]]}`)
	f.Add(`{"start":0,"states":[[1,1,2],[0,1,2],[1,1,0]]}`)
	f.Add(`{"start":99,"states":[[1,0,0]]}`)
	f.Add(`{"states":null}`)
	f.Add(`[]`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, s string) {
		var m Machine
		if err := json.Unmarshal([]byte(s), &m); err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decode of %q returned invalid machine: %v", s, err)
		}
		data, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("re-encoding %s: %v", &m, err)
		}
		var back Machine
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("decoding re-encoded %s: %v", data, err)
		}
		data2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("round trip not stable: %s vs %s", data, data2)
		}
	})
}
