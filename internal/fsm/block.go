package fsm

import (
	"fmt"
	"math/bits"

	"fsmpredict/internal/bitseq"
)

// This file is the byte-blocked superstep kernel: every replay loop in
// the flow ultimately walks a packed bitstream through a small Moore
// machine one event at a time, but a Moore machine's response to a
// fixed 8-bit outcome block — the eight predictions it makes and the
// state it lands in — is a pure function of the state it entered the
// block in. A BlockTable tabulates that function once per machine
// (NumStates × 256 entries) so simulation consumes the stream a byte
// per lookup instead of a bit per branch, and a byte's mispredictions
// reduce to one XOR and one popcount against the table's prediction
// mask. The per-bit Simulate/Runner walks remain as the differential
// oracles; every kernel here is bit-identical to them by construction
// (the table is built by composing the machine's own 2-symbol table,
// never by re-deriving behaviour) and by the package's fuzz tests.

// blockShift is the log2 of the block width: kernels consume the input
// 8 events at a time. Eight is the sweet spot — the table for an
// S-state machine is S*256 uint16s (a 2-bit counter costs 2 KiB, the
// largest machine the flow emits well under a mebibyte), entries pack
// next-state and prediction mask into one uint16, and byte extraction
// from a packed word stream never crosses a word boundary at aligned
// offsets.
const blockShift = 8

// maxBlockStates bounds the machines a BlockTable can represent:
// next-state and the block's prediction mask each fit a byte. Every
// machine the design flow emits is far smaller (2^order histories,
// counter sweeps top out at 41 states); larger hand-built machines
// simply fall back to the scalar oracle.
const maxBlockStates = 256

// BlockTable is the compiled transition closure of one Machine over
// 8-bit input blocks. It is immutable after compilation and safe for
// concurrent use; many simulations can share one table.
type BlockTable struct {
	// tab[s<<8|v] packs the response of state s to the 8-bit block v
	// (earliest event in bit 0, matching bitseq's packing): the low
	// byte is the exit state, the high byte is the prediction mask —
	// bit i holds the output of the state occupied when event i of the
	// block was predicted. Mispredictions for a full byte are then
	// popcount(mask XOR outcomes).
	tab []uint16
	// step[s<<1|b] is the plain 2-symbol transition, used for the
	// ragged sub-byte head and tail of a stream.
	step []uint8
	// out[s] is state s's prediction as a bit.
	out   []uint8
	start uint8
	// span holds the lazily built homogeneous-byte power tables the
	// run-length span kernel walks (see span.go); the shell is built
	// with the table, levels grow on first use.
	span *SpanTable
	// src is a private clone of the compiled machine, used to verify
	// cache hits (the shared cache keys on a 64-bit content hash).
	src *Machine
}

// CompileBlockTable builds the closure table for a machine. It errors
// on an invalid machine or one with more than 256 states; callers that
// want silent fallback use BlockTableFor, which returns nil instead.
func CompileBlockTable(m *Machine) (*BlockTable, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.NumStates()
	if n > maxBlockStates {
		return nil, fmt.Errorf("fsm: %d states exceed the %d-state block-table bound", n, maxBlockStates)
	}
	t := &BlockTable{
		step:  make([]uint8, 2*n),
		out:   make([]uint8, n),
		start: uint8(m.Start),
		src:   m.Clone(),
	}
	for s := 0; s < n; s++ {
		t.step[s<<1] = uint8(m.Next[s][0])
		t.step[s<<1|1] = uint8(m.Next[s][1])
		if m.Output[s] {
			t.out[s] = 1
		}
	}
	t.span = newSpanTable(t.step, t.out)
	// Build T_8 by doubling composition from the 2-symbol table:
	// T_2k[s][v] runs the low k bits through T_k, then the high k bits
	// from the intermediate state, OR-ing the prediction masks. Each
	// level is exact, so the final table replays 8 events exactly as
	// the scalar walk would.
	next := make([]uint8, 2*n)
	mask := make([]uint8, 2*n)
	for s := 0; s < n; s++ {
		next[s<<1] = t.step[s<<1]
		next[s<<1|1] = t.step[s<<1|1]
		mask[s<<1] = t.out[s]
		mask[s<<1|1] = t.out[s]
	}
	for k := 1; k < blockShift; k *= 2 {
		wide := 2 * k
		nn := make([]uint8, n<<uint(wide))
		nm := make([]uint8, n<<uint(wide))
		low := uint8(1<<uint(k) - 1)
		for s := 0; s < n; s++ {
			for v := 0; v < 1<<uint(wide); v++ {
				lo, hi := uint8(v)&low, v>>uint(k)
				i1 := s<<uint(k) | int(lo)
				mid := next[i1]
				i2 := int(mid)<<uint(k) | hi
				nn[s<<uint(wide)|v] = next[i2]
				nm[s<<uint(wide)|v] = mask[i1] | mask[i2]<<uint(k)
			}
		}
		next, mask = nn, nm
	}
	t.tab = make([]uint16, n<<blockShift)
	for i := range t.tab {
		t.tab[i] = uint16(next[i]) | uint16(mask[i])<<8
	}
	return t, nil
}

// NumStates returns the compiled machine's state count.
func (t *BlockTable) NumStates() int { return len(t.out) }

// StartState returns the compiled machine's start state.
func (t *BlockTable) StartState() int { return int(t.start) }

// Machine returns the machine the table was compiled from (a private
// clone; callers must not mutate it).
func (t *BlockTable) Machine() *Machine { return t.src }

// Bytes estimates the table's retained size, the unit of the shared
// cache's bytes statistic.
func (t *BlockTable) Bytes() uint64 {
	n := uint64(t.NumStates())
	machine := n * (1 + 16) // Output bools + Next pairs of the src clone
	return 2*(n<<blockShift) + 3*n + machine
}

// compiledFrom reports whether the table was compiled from a machine
// behaviourally identical to m — the content check behind the hashed
// cache (Name is irrelevant to simulation and deliberately ignored).
func (t *BlockTable) compiledFrom(m *Machine) bool {
	if len(m.Next) != len(t.src.Next) || m.Start != t.src.Start {
		return false
	}
	for s, row := range m.Next {
		if row != t.src.Next[s] || m.Output[s] != t.src.Output[s] {
			return false
		}
	}
	return true
}

// SimulatePacked replays n events of a packed outcome stream (bit i of
// words is event i, bitseq layout; bits at n and beyond must be zero)
// from the start state, consuming the first skip events as unscored
// warm-up. It is bit-identical to Machine.SimulateScalar on the
// unpacked stream and allocates nothing.
func (t *BlockTable) SimulatePacked(words []uint64, n, skip int) SimResult {
	res, _ := t.RunFrom(t.StartState(), words, n, skip)
	return res
}

// RunFrom is SimulatePacked from an arbitrary state, additionally
// returning the exit state; it is the building block for stateful
// replay (bpred runner banks advance mid-stream). n beyond the words'
// bit capacity is clamped rather than trusted, so a caller passing an
// over-long event count reads garbage from no one.
func (t *BlockTable) RunFrom(state int, words []uint64, n, skip int) (SimResult, int) {
	n, skip = clampSpan(words, n, skip)
	s := uint8(state)
	i := 0
	// Warm-up: advance without scoring, whole bytes then the ragged
	// remainder. i starts byte-aligned, so extraction stays in-word.
	for ; i+8 <= skip; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		s = uint8(t.tab[int(s)<<blockShift|int(b)])
	}
	for ; i < skip; i++ {
		b := words[i>>6] >> uint(i&63) & 1
		s = t.step[int(s)<<1|int(b)]
	}
	res := SimResult{Total: n - skip}
	correct := 0
	// Scalar-step to the next byte boundary, then run aligned bytes
	// (i a multiple of 8 never crosses a word), then the scalar tail.
	for ; i < n && i&7 != 0; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if t.out[s] == b {
			correct++
		}
		s = t.step[int(s)<<1|int(b)]
	}
	for ; i+8 <= n; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		e := t.tab[int(s)<<blockShift|int(b)]
		correct += 8 - bits.OnesCount8(uint8(e>>8)^b)
		s = uint8(e)
	}
	for ; i < n; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if t.out[s] == b {
			correct++
		}
		s = t.step[int(s)<<1|int(b)]
	}
	res.Correct = correct
	return res, int(s)
}

// RunSampled advances through all n events of the packed stream but
// scores predictions only at the given positions (strictly ascending,
// each in [0, n)) — the §7.3 update-all replay, where a per-branch
// predictor trains on the global outcome stream yet predicts only its
// own branch's occurrences. It returns the misprediction count over
// the sampled positions and the exit state, and allocates nothing.
func (t *BlockTable) RunSampled(state int, words []uint64, n int, pos []int32) (misses, end int) {
	n, _ = clampSpan(words, n, 0)
	s := uint8(state)
	c := 0
	i := 0
	for ; i+8 <= n; i += 8 {
		b := uint8(words[i>>6] >> uint(i&63))
		e := t.tab[int(s)<<blockShift|int(b)]
		if c < len(pos) && int(pos[c]) < i+8 {
			x := uint8(e>>8) ^ b
			for ; c < len(pos) && int(pos[c]) < i+8; c++ {
				misses += int(x >> uint(int(pos[c])-i) & 1)
			}
		}
		s = uint8(e)
	}
	for ; i < n; i++ {
		b := uint8(words[i>>6] >> uint(i&63) & 1)
		if c < len(pos) && int(pos[c]) == i {
			if t.out[s] != b {
				misses++
			}
			c++
		}
		s = t.step[int(s)<<1|int(b)]
	}
	return misses, int(s)
}

// ReplayGated is the confidence-estimator replay: the machine steps on
// every bit of the correctness stream, and positions whose valid bit
// is set count toward flagged (machine predicted confident) and
// flaggedCorrect (confident and the access was correct) — exactly the
// per-segment loop of confidence.EvaluateStreams. Both streams carry n
// bits in bitseq layout with zero padding past n; mismatched stream
// lengths (or n beyond their capacity) are an explicit error, never a
// silent truncation. Allocates nothing.
func (t *BlockTable) ReplayGated(correct, valid []uint64, n int) (flagged, flaggedCorrect int, err error) {
	n, err = checkGatedStreams(correct, valid, n)
	if err != nil {
		return 0, 0, err
	}
	s := t.start
	i := 0
	for ; i+8 <= n; i += 8 {
		w, off := i>>6, uint(i&63)
		cb := uint8(correct[w] >> off)
		vb := uint8(valid[w] >> off)
		e := t.tab[int(s)<<blockShift|int(cb)]
		pm := uint8(e >> 8)
		flagged += bits.OnesCount8(vb & pm)
		flaggedCorrect += bits.OnesCount8(vb & pm & cb)
		s = uint8(e)
	}
	for ; i < n; i++ {
		w, off := i>>6, uint(i&63)
		cb := uint8(correct[w] >> off & 1)
		if valid[w]>>off&1 == 1 && t.out[s] == 1 {
			flagged++
			flaggedCorrect += int(cb)
		}
		s = t.step[int(s)<<1|int(cb)]
	}
	return flagged, flaggedCorrect, nil
}

// simulateBools is the blocked kernel over an unpacked bool slice:
// bytes are assembled on the fly in a register, so the []bool entry
// point gains the superstep without allocating a packed copy.
func (t *BlockTable) simulateBools(trace []bool, skip int) SimResult {
	n := len(trace)
	if skip < 0 {
		skip = 0
	}
	if skip > n {
		skip = n
	}
	s := t.start
	i := 0
	for ; i < skip; i++ {
		b := uint8(0)
		if trace[i] {
			b = 1
		}
		s = t.step[int(s)<<1|int(b)]
	}
	res := SimResult{Total: n - skip}
	correct := 0
	for ; i+8 <= n; i += 8 {
		var b uint8
		for j := 0; j < 8; j++ {
			if trace[i+j] {
				b |= 1 << uint(j)
			}
		}
		e := t.tab[int(s)<<blockShift|int(b)]
		correct += 8 - bits.OnesCount8(uint8(e>>8)^b)
		s = uint8(e)
	}
	for ; i < n; i++ {
		b := uint8(0)
		if trace[i] {
			b = 1
		}
		if t.out[s] == b {
			correct++
		}
		s = t.step[int(s)<<1|int(b)]
	}
	res.Correct = correct
	return res
}

// BlockRunner is the streaming form of the blocked kernel: feed it
// outcome bits in arbitrary-sized chunks (packed words, bool slices or
// single bits) and it simulates exactly as one contiguous Simulate
// would, buffering the ragged sub-byte boundary between chunks. The
// zero value is not usable; construct with NewBlockRunner.
type BlockRunner struct {
	t     *BlockTable
	state uint8
	skip  int // warm-up events still to consume unscored
	res   SimResult
	buf   uint8 // pending bits below a byte boundary, earliest in bit 0
	nbuf  int
}

// NewBlockRunner returns a runner at the table's start state that will
// consume the first skip fed events as unscored warm-up.
func NewBlockRunner(t *BlockTable, skip int) *BlockRunner {
	if skip < 0 {
		skip = 0
	}
	return &BlockRunner{t: t, state: t.start, skip: skip}
}

// stepBit consumes one event the scalar way.
func (r *BlockRunner) stepBit(b uint8) {
	t := r.t
	if r.skip > 0 {
		r.skip--
	} else {
		r.res.Total++
		if t.out[r.state] == b {
			r.res.Correct++
		}
	}
	r.state = t.step[int(r.state)<<1|int(b)]
}

// stepByte consumes eight events through the closure table.
func (r *BlockRunner) stepByte(b uint8) {
	t := r.t
	switch {
	case r.skip >= 8:
		r.state = uint8(t.tab[int(r.state)<<blockShift|int(b)])
		r.skip -= 8
	case r.skip > 0:
		for j := 0; j < 8; j++ {
			r.stepBit(b >> uint(j) & 1)
		}
	default:
		e := t.tab[int(r.state)<<blockShift|int(b)]
		r.res.Total += 8
		r.res.Correct += 8 - bits.OnesCount8(uint8(e>>8)^b)
		r.state = uint8(e)
	}
}

// push buffers one bit, draining the buffer through the table whenever
// a full byte accumulates.
func (r *BlockRunner) push(b uint8) {
	r.buf |= b << uint(r.nbuf)
	r.nbuf++
	if r.nbuf == 8 {
		full := r.buf
		r.buf, r.nbuf = 0, 0
		r.stepByte(full)
	}
}

// FeedBit streams a single event.
func (r *BlockRunner) FeedBit(v bool) {
	b := uint8(0)
	if v {
		b = 1
	}
	r.push(b)
}

// FeedBools streams a chunk of unpacked events.
func (r *BlockRunner) FeedBools(vs []bool) {
	for _, v := range vs {
		r.FeedBit(v)
	}
}

// FeedWords streams the first n bits of a packed chunk (bitseq
// layout). Interior bytes go through the closure table directly once
// the stream position is byte-aligned.
func (r *BlockRunner) FeedWords(words []uint64, n int) {
	i := 0
	for i < n {
		if r.nbuf == 0 && n-i >= 8 {
			r.stepByte(byteAt(words, i))
			i += 8
			continue
		}
		r.push(uint8(words[i>>6] >> uint(i&63) & 1))
		i++
	}
}

// FeedBits streams a whole packed sequence.
func (r *BlockRunner) FeedBits(b *bitseq.Bits) { r.FeedWords(b.Words(), b.Len()) }

// Result tallies everything fed so far. Draining the sub-byte buffer
// scalar-steps the machine, so calling Result mid-stream is exact and
// feeding may continue afterwards.
func (r *BlockRunner) Result() SimResult {
	for j := 0; j < r.nbuf; j++ {
		r.stepBit(r.buf >> uint(j) & 1)
	}
	r.buf, r.nbuf = 0, 0
	return r.res
}

// State returns the machine state after every drained event; like
// Result it first drains the sub-byte buffer.
func (r *BlockRunner) State() int {
	r.Result()
	return int(r.state)
}

// byteAt extracts the 8 bits starting at position i of a packed word
// stream, handling the word-crossing case.
func byteAt(words []uint64, i int) uint8 {
	w, off := i>>6, uint(i&63)
	v := words[w] >> off
	if off > 56 && w+1 < len(words) {
		v |= words[w+1] << (64 - off)
	}
	return uint8(v)
}
