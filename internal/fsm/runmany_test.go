package fsm

import (
	"math/rand"
	"testing"
)

// TestRunManyPackedMatchesSimulatePacked checks the multi-machine pass
// against the single-machine kernel (itself verified against the
// scalar oracle) for mixed machine sizes, every ragged head/tail
// combination and a range of skips.
func TestRunManyPackedMatchesSimulatePacked(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		count := 1 + rng.Intn(12)
		tabs := make([]*BlockTable, count)
		for j := range tabs {
			var err error
			if tabs[j], err = CompileBlockTable(randomMachine(rng, 1+rng.Intn(40))); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []int{0, 1, 7, 8, 9, 64, 65, 200} {
			bits := randomBits(rng, n)
			for _, skip := range []int{0, 1, 3, 8, 17, n / 2, n, n + 5} {
				got := RunManyPacked(tabs, bits.Words(), n, skip)
				if len(got) != count {
					t.Fatalf("len = %d, want %d", len(got), count)
				}
				for j, tab := range tabs {
					want := tab.SimulatePacked(bits.Words(), n, skip)
					if got[j] != want {
						t.Fatalf("machines=%d n=%d skip=%d machine %d: many %+v, single %+v",
							count, n, skip, j, got[j], want)
					}
				}
			}
		}
	}
}

func TestRunManyPackedEmpty(t *testing.T) {
	if res := RunManyPacked(nil, nil, 0, 0); len(res) != 0 {
		t.Fatalf("RunManyPacked(nil) = %v", res)
	}
}

// BenchmarkRunManyPacked measures the amortization the batched pass
// buys over per-machine passes at a serving-realistic group size.
func BenchmarkRunManyPacked(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	const machines = 16
	tabs := make([]*BlockTable, machines)
	for j := range tabs {
		var err error
		if tabs[j], err = CompileBlockTable(randomMachine(rng, 4)); err != nil {
			b.Fatal(err)
		}
	}
	bits := randomBits(rng, 1<<16)
	words, n := bits.Words(), bits.Len()
	b.Run("many", func(b *testing.B) {
		b.SetBytes(int64(machines * n / 8))
		for i := 0; i < b.N; i++ {
			RunManyPacked(tabs, words, n, 0)
		}
	})
	b.Run("per-machine", func(b *testing.B) {
		b.SetBytes(int64(machines * n / 8))
		for i := 0; i < b.N; i++ {
			for _, tab := range tabs {
				tab.SimulatePacked(words, n, 0)
			}
		}
	})
}
