package fsm

import (
	"math/rand"
	"sync"
	"testing"

	"fsmpredict/internal/bitseq"
)

// randomMachine builds a valid machine from a seeded source; the block
// kernels must match the scalar oracle on any of them.
func randomMachine(rng *rand.Rand, states int) *Machine {
	m := &Machine{
		Output: make([]bool, states),
		Next:   make([][2]int, states),
		Start:  rng.Intn(states),
	}
	for s := 0; s < states; s++ {
		m.Output[s] = rng.Intn(2) == 1
		m.Next[s] = [2]int{rng.Intn(states), rng.Intn(states)}
	}
	return m
}

func randomBits(rng *rand.Rand, n int) *bitseq.Bits {
	b := &bitseq.Bits{}
	for i := 0; i < n; i++ {
		b.Append(rng.Intn(2) == 1)
	}
	return b
}

// TestSimulatePackedMatchesScalar sweeps machines, lengths and skips —
// including every sub-byte ragged head/tail combination — against the
// scalar oracle.
func TestSimulatePackedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		states := 1 + rng.Intn(40)
		m := randomMachine(rng, states)
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 100, 500} {
			bits := randomBits(rng, n)
			bools := bits.Bools()
			for _, skip := range []int{0, 1, 3, 8, 17, n / 2, n, n + 5} {
				want := m.SimulateScalar(bools, skip)
				got := tab.SimulatePacked(bits.Words(), n, skip)
				if got != want {
					t.Fatalf("states=%d n=%d skip=%d: packed %+v, scalar %+v", states, n, skip, got, want)
				}
			}
		}
	}
}

// TestRunFromMatchesScalarFromState checks the arbitrary-entry-state
// variant, whose exit state must also agree with the runner walk.
func TestRunFromMatchesScalarFromState(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		m := randomMachine(rng, 1+rng.Intn(30))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(300)
		bits := randomBits(rng, n)
		start := rng.Intn(m.NumStates())
		skip := rng.Intn(n + 2)

		// Scalar walk from the same state.
		state := start
		var want SimResult
		for i := 0; i < n; i++ {
			b := bits.At(i)
			if i >= skip {
				want.Total++
				if m.Output[state] == b {
					want.Correct++
				}
			}
			state = m.Step(state, b)
		}
		got, end := tab.RunFrom(start, bits.Words(), n, skip)
		if got != want || end != state {
			t.Fatalf("trial %d: got %+v end %d, want %+v end %d", trial, got, end, want, state)
		}
	}
}

// TestRunSampledMatchesScalar checks the masked replay: advance every
// bit, score only at sampled positions.
func TestRunSampledMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m := randomMachine(rng, 1+rng.Intn(30))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(300)
		bits := randomBits(rng, n)
		var pos []int32
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				pos = append(pos, int32(i))
			}
		}
		start := rng.Intn(m.NumStates())

		state := start
		wantMiss := 0
		c := 0
		for i := 0; i < n; i++ {
			b := bits.At(i)
			if c < len(pos) && int(pos[c]) == i {
				if m.Output[state] != b {
					wantMiss++
				}
				c++
			}
			state = m.Step(state, b)
		}
		miss, end := tab.RunSampled(start, bits.Words(), n, pos)
		if miss != wantMiss || end != state {
			t.Fatalf("trial %d: got %d misses end %d, want %d end %d", trial, miss, end, wantMiss, state)
		}
	}
}

// TestReplayGatedMatchesScalar checks the confidence replay against a
// direct runner walk of the gated loop.
func TestReplayGatedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		m := randomMachine(rng, 1+rng.Intn(30))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(300)
		correct, valid := randomBits(rng, n), randomBits(rng, n)

		state := m.Start
		wantF, wantFC := 0, 0
		for i := 0; i < n; i++ {
			cb := correct.At(i)
			if valid.At(i) && m.Output[state] {
				wantF++
				if cb {
					wantFC++
				}
			}
			state = m.Step(state, cb)
		}
		f, fc, err := tab.ReplayGated(correct.Words(), valid.Words(), n)
		if err != nil {
			t.Fatal(err)
		}
		if f != wantF || fc != wantFC {
			t.Fatalf("trial %d: got (%d,%d), want (%d,%d)", trial, f, fc, wantF, wantFC)
		}
	}
}

// TestBlockRunnerChunkedMatchesSimulate feeds the same stream in
// ragged chunks through every Feed entry point and requires the exact
// Simulate tally and exit state.
func TestBlockRunnerChunkedMatchesSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		m := randomMachine(rng, 1+rng.Intn(30))
		tab, err := CompileBlockTable(m)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(500)
		bits := randomBits(rng, n)
		bools := bits.Bools()
		skip := rng.Intn(n + 2)
		want := m.SimulateScalar(bools, skip)

		r := NewBlockRunner(tab, skip)
		for i := 0; i < n; {
			chunk := 1 + rng.Intn(13)
			if i+chunk > n {
				chunk = n - i
			}
			switch rng.Intn(3) {
			case 0:
				sub := &bitseq.Bits{}
				for j := 0; j < chunk; j++ {
					sub.Append(bools[i+j])
				}
				r.FeedBits(sub)
			case 1:
				r.FeedBools(bools[i : i+chunk])
			default:
				for j := 0; j < chunk; j++ {
					r.FeedBit(bools[i+j])
				}
			}
			i += chunk
		}
		if got := r.Result(); got != want {
			t.Fatalf("trial %d: runner %+v, scalar %+v", trial, got, want)
		}
		// Exit state must match a full runner walk.
		run := m.NewRunner()
		for _, b := range bools {
			run.Update(b)
		}
		if r.State() != run.State() {
			t.Fatalf("trial %d: runner state %d, oracle %d", trial, r.State(), run.State())
		}
		// Result mid-stream then continued feeding stays exact.
		r2 := NewBlockRunner(tab, skip)
		half := n / 2
		r2.FeedBools(bools[:half])
		_ = r2.Result()
		r2.FeedBools(bools[half:])
		if got := r2.Result(); got != want {
			t.Fatalf("trial %d: split runner %+v, scalar %+v", trial, got, want)
		}
	}
}

// TestSimulateUsesBlockKernel checks Simulate/SimulateBits agree with
// the scalar oracle with the kernel both on and off.
func TestSimulateUsesBlockKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMachine(rng, 23)
	bits := randomBits(rng, 1000)
	bools := bits.Bools()
	want := m.SimulateScalar(bools, 9)

	if got := m.Simulate(bools, 9); got != want {
		t.Fatalf("Simulate %+v, scalar %+v", got, want)
	}
	if got := m.SimulateBits(bits, 9); got != want {
		t.Fatalf("SimulateBits %+v, scalar %+v", got, want)
	}
	defer SetBlockKernel(SetBlockKernel(false))
	if BlockKernelEnabled() {
		t.Fatal("kernel still enabled")
	}
	if got := m.Simulate(bools, 9); got != want {
		t.Fatalf("Simulate (kernel off) %+v, scalar %+v", got, want)
	}
	if got := m.SimulateBits(bits, 9); got != want {
		t.Fatalf("SimulateBits (kernel off) %+v, scalar %+v", got, want)
	}
}

// TestBlockTableForVerifiesContent: mutating a machine after its table
// was cached must recompile, not serve the stale closure.
func TestBlockTableForVerifiesContent(t *testing.T) {
	m := &Machine{
		Output: []bool{false, true},
		Next:   [][2]int{{0, 1}, {0, 1}},
		Start:  0,
	}
	t1 := BlockTableFor(m)
	if t1 == nil {
		t.Fatal("no table")
	}
	m.Output[0] = true
	t2 := BlockTableFor(m)
	if t2 == nil {
		t.Fatal("no table after mutation")
	}
	if !t2.compiledFrom(m) {
		t.Fatal("table does not match mutated machine")
	}
	if t1.compiledFrom(m) {
		t.Fatal("stale table claims to match mutated machine")
	}
}

// TestBlockTableForRejectsOversized: machines beyond the uint8 state
// bound fall back to scalar (nil table) rather than truncating.
func TestBlockTableForRejectsOversized(t *testing.T) {
	const n = maxBlockStates + 1
	m := &Machine{Output: make([]bool, n), Next: make([][2]int, n)}
	for s := range m.Next {
		m.Next[s] = [2]int{(s + 1) % n, s}
	}
	if BlockTableFor(m) != nil {
		t.Fatal("expected nil table for oversized machine")
	}
	if _, err := CompileBlockTable(m); err == nil {
		t.Fatal("expected CompileBlockTable error for oversized machine")
	}
	// The boundary case compiles fine and still matches the oracle.
	big := m.Clone()
	big.Output = big.Output[:maxBlockStates]
	big.Next = big.Next[:maxBlockStates]
	for s := range big.Next {
		big.Next[s] = [2]int{(s + 1) % maxBlockStates, s}
	}
	tab, err := CompileBlockTable(big)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	bits := randomBits(rng, 777)
	if got, want := tab.SimulatePacked(bits.Words(), 777, 5), big.SimulateScalar(bits.Bools(), 5); got != want {
		t.Fatalf("256-state machine: packed %+v, scalar %+v", got, want)
	}
}

// TestBlockTableCacheConcurrent hammers the shared cache from many
// goroutines over overlapping machine content — the race-stress target
// for concurrent designs sharing tables.
func TestBlockTableCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const distinct = 8
	machines := make([]*Machine, distinct)
	streams := make([]*bitseq.Bits, distinct)
	want := make([]SimResult, distinct)
	for i := range machines {
		machines[i] = randomMachine(rng, 2+rng.Intn(30))
		streams[i] = randomBits(rng, 2048)
		want[i] = machines[i].SimulateScalar(streams[i].Bools(), 3)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 50; iter++ {
				i := r.Intn(distinct)
				// Fresh clone: same content, different identity — the
				// content address must dedup them.
				m := machines[i].Clone()
				tab := BlockTableFor(m)
				if tab == nil {
					t.Error("nil table")
					return
				}
				if got := tab.SimulatePacked(streams[i].Words(), streams[i].Len(), 3); got != want[i] {
					t.Errorf("machine %d: got %+v, want %+v", i, got, want[i])
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestBlockKernelAllocs: the packed kernels and the warmed Simulate
// paths must allocate nothing per call.
func TestBlockKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMachine(rng, 17)
	tab, err := CompileBlockTable(m)
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(rng, 4096)
	words, n := bits.Words(), bits.Len()
	bools := bits.Bools()
	var pos []int32
	for i := 0; i < n; i += 7 {
		pos = append(pos, int32(i))
	}
	check := func(name string, f func()) {
		t.Helper()
		if avg := testing.AllocsPerRun(100, f); avg != 0 {
			t.Errorf("%s allocates %.1f per run, want 0", name, avg)
		}
	}
	check("SimulatePacked", func() { tab.SimulatePacked(words, n, 11) })
	check("RunSampled", func() { tab.RunSampled(3, words, n, pos) })
	check("ReplayGated", func() { tab.ReplayGated(words, words, n) })
	check("Machine.SimulateBits", func() { m.SimulateBits(bits, 11) })
	check("Machine.Simulate", func() { m.Simulate(bools, 11) })
}

// BenchmarkSimulatePacked compares the blocked kernel against the
// scalar oracle on the same stream; the perf gate tracks the blocked
// variant, and the acceptance bar is blocked ≥3× faster per event.
func BenchmarkSimulatePacked(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := randomMachine(rng, 16)
	bits := randomBits(rng, 1<<16)
	words, n := bits.Words(), bits.Len()
	bools := bits.Bools()
	tab, err := CompileBlockTable(m)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("blocked", func(b *testing.B) {
		b.SetBytes(int64(n) / 8)
		for i := 0; i < b.N; i++ {
			tab.SimulatePacked(words, n, 64)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(n) / 8)
		for i := 0; i < b.N; i++ {
			m.SimulateScalar(bools, 64)
		}
	})
}

// BenchmarkCompileBlockTable prices table construction — the one-time
// cost a cache miss pays.
func BenchmarkCompileBlockTable(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m := randomMachine(rng, 32)
	for i := 0; i < b.N; i++ {
		if _, err := CompileBlockTable(m); err != nil {
			b.Fatal(err)
		}
	}
}
