// Package fsm defines the Moore-machine predictor produced by the design
// flow: a finite state machine over input alphabet {0,1} whose per-state
// output is the prediction of the next input (§1, §4.8 of the paper).
//
// The package provides simulation (predict/update), structural checks,
// serialization, DOT export for visualization, and the synchronization
// analysis that justifies the paper's update-on-every-branch policy
// (§7.3, §7.6): a predictor built from length-N histories reaches a state
// determined entirely by the last N inputs, no matter where it started.
package fsm

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/dfa"
)

// Machine is a Moore machine predictor. States are numbered 0..n-1.
// The zero value is not usable; construct via FromDFA or Parse, or fill
// the fields and call Validate.
type Machine struct {
	// Name optionally identifies what the predictor was built for
	// (a branch PC, a benchmark, ...).
	Name string
	// Output[s] is the prediction made in state s.
	Output []bool
	// Next[s][b] is the successor of state s after observing outcome b.
	Next [][2]int
	// Start is the initial state.
	Start int
}

// FromDFA converts an acceptance-labelled DFA into a predictor machine:
// accepting states predict 1.
func FromDFA(d *dfa.DFA) *Machine {
	m := &Machine{
		Output: append([]bool(nil), d.Accept...),
		Next:   append([][2]int(nil), d.Next...),
		Start:  d.Start,
	}
	return m
}

// ToDFA views the machine as a DFA whose accepting states are the
// predict-1 states.
func (m *Machine) ToDFA() *dfa.DFA {
	return &dfa.DFA{
		Accept: append([]bool(nil), m.Output...),
		Next:   append([][2]int(nil), m.Next...),
		Start:  m.Start,
	}
}

// NumStates returns the number of states.
func (m *Machine) NumStates() int { return len(m.Next) }

// Validate checks structural invariants.
func (m *Machine) Validate() error {
	if len(m.Next) == 0 {
		return fmt.Errorf("fsm: no states")
	}
	if len(m.Output) != len(m.Next) {
		return fmt.Errorf("fsm: %d outputs for %d states", len(m.Output), len(m.Next))
	}
	if m.Start < 0 || m.Start >= len(m.Next) {
		return fmt.Errorf("fsm: start state %d out of range", m.Start)
	}
	for s, row := range m.Next {
		for b := 0; b < 2; b++ {
			if row[b] < 0 || row[b] >= len(m.Next) {
				return fmt.Errorf("fsm: state %d successor on %d is %d, out of range", s, b, row[b])
			}
		}
	}
	return nil
}

// Step returns the successor of state s on outcome b.
func (m *Machine) Step(s int, b bool) int {
	if b {
		return m.Next[s][1]
	}
	return m.Next[s][0]
}

// Clone returns an independent copy.
func (m *Machine) Clone() *Machine {
	return &Machine{
		Name:   m.Name,
		Output: append([]bool(nil), m.Output...),
		Next:   append([][2]int(nil), m.Next...),
		Start:  m.Start,
	}
}

// Runner is the mutable execution state of one predictor instance. Many
// runners can share one Machine; a hardware deployment instantiates one
// runner per predictor entry.
type Runner struct {
	m     *Machine
	state int
}

// NewRunner returns a runner positioned at the machine's start state.
func (m *Machine) NewRunner() *Runner {
	return &Runner{m: m, state: m.Start}
}

// Predict returns the machine's prediction in the current state.
func (r *Runner) Predict() bool { return r.m.Output[r.state] }

// Update advances the machine with the observed outcome.
func (r *Runner) Update(outcome bool) { r.state = r.m.Step(r.state, outcome) }

// State returns the current state number.
func (r *Runner) State() int { return r.state }

// Reset returns the runner to the start state.
func (r *Runner) Reset() { r.state = r.m.Start }

// SetState positions the runner at an arbitrary state — the bridge
// that lets a blocked kernel advance a runner bank out-of-band and
// write the exit states back. It panics on an out-of-range state.
func (r *Runner) SetState(s int) {
	if s < 0 || s >= r.m.NumStates() {
		panic(fmt.Sprintf("fsm: state %d out of range [0,%d)", s, r.m.NumStates()))
	}
	r.state = s
}

// Machine returns the shared machine.
func (r *Runner) Machine() *Machine { return r.m }

// SimResult summarizes a simulation run.
type SimResult struct {
	Total   int
	Correct int
}

// MissRate returns the fraction of mispredictions.
func (s SimResult) MissRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Total-s.Correct) / float64(s.Total)
}

// Accuracy returns the fraction of correct predictions.
func (s SimResult) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Total)
}

// Simulate predicts every bit of the trace in sequence, updating after
// each outcome, and tallies correctness. skip outcomes at the head are
// consumed as warm-up without being scored (the paper scores steady-state
// behaviour). It runs on the byte-blocked superstep kernel (block.go)
// via the shared table cache — compiling the machine's closure table on
// first use, so steady-state calls allocate nothing — and falls back to
// the scalar walk when the kernel is disabled or the machine exceeds
// the table bound. Results are bit-identical either way.
func (m *Machine) Simulate(trace []bool, skip int) SimResult {
	if t := BlockTableFor(m); t != nil {
		return t.simulateBools(trace, skip)
	}
	return m.SimulateScalar(trace, skip)
}

// SimulateScalar is the bit-at-a-time reference walk — the
// differential oracle every blocked kernel is tested against. The walk
// is inlined rather than going through a Runner so a simulation
// performs no allocations.
func (m *Machine) SimulateScalar(trace []bool, skip int) SimResult {
	state := m.Start
	var res SimResult
	for i, b := range trace {
		if i >= skip {
			res.Total++
			if m.Output[state] == b {
				res.Correct++
			}
		}
		if b {
			state = m.Next[state][1]
		} else {
			state = m.Next[state][0]
		}
	}
	return res
}

// RunSampledScalar is the bit-at-a-time form of BlockTable.RunSampled —
// advance on every event of the packed stream from the given state,
// score only the listed positions (strictly ascending, each in [0, n))
// — kept as the differential oracle and as the fallback when the block
// kernel is disabled. n beyond the words' capacity is clamped.
func (m *Machine) RunSampledScalar(state int, words []uint64, n int, pos []int32) (misses, end int) {
	if n < 0 {
		n = 0
	}
	if max := len(words) << 6; n > max {
		n = max
	}
	c := 0
	for i := 0; i < n; i++ {
		b := words[i>>6]>>uint(i&63)&1 == 1
		if c < len(pos) && int(pos[c]) == i {
			if m.Output[state] != b {
				misses++
			}
			c++
		}
		if b {
			state = m.Next[state][1]
		} else {
			state = m.Next[state][0]
		}
	}
	return misses, state
}

// SimulateBits is Simulate over a packed sequence: the hot entry point
// for callers that already hold bit-packed outcomes (the serving
// layer, the packed trace store), avoiding the []bool unpacking
// entirely.
func (m *Machine) SimulateBits(trace *bitseq.Bits, skip int) SimResult {
	if t := BlockTableFor(m); t != nil {
		return t.SimulatePacked(trace.Words(), trace.Len(), skip)
	}
	state := m.Start
	var res SimResult
	n := trace.Len()
	for i := 0; i < n; i++ {
		b := trace.At(i)
		if i >= skip {
			res.Total++
			if m.Output[state] == b {
				res.Correct++
			}
		}
		if b {
			state = m.Next[state][1]
		} else {
			state = m.Next[state][0]
		}
	}
	return res
}

// SyncDepth analyzes the synchronization property (§7.6). It returns the
// smallest k such that after ANY k consecutive inputs the machine's state
// is a function of those inputs alone (independent of the starting
// state), and ok=false if no such k exists. Machines produced by the
// design flow from N-bit histories have SyncDepth <= N, which is why the
// paper can update every custom predictor on every branch without
// corrupting predictions.
func (m *Machine) SyncDepth() (k int, ok bool) {
	n := m.NumStates()
	// Pair graph over unordered off-diagonal pairs; an edge follows both
	// components on the same symbol. A word of length L fails to
	// synchronize iff some off-diagonal path of length L exists.
	type pair struct{ a, b int }
	norm := func(a, b int) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	nodes := map[pair]int{}
	var list []pair
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			nodes[pair{a, b}] = len(list)
			list = append(list, pair{a, b})
		}
	}
	if len(list) == 0 {
		return 0, true
	}
	adj := make([][]int, len(list))
	for i, p := range list {
		for bit := 0; bit < 2; bit++ {
			na, nb := m.Next[p.a][bit], m.Next[p.b][bit]
			if na == nb {
				continue // this word prefix synchronized
			}
			adj[i] = append(adj[i], nodes[norm(na, nb)])
		}
	}
	// Longest path in the off-diagonal graph; a cycle means unbounded.
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int, len(list))
	depth := make([]int, len(list))
	var cyclic bool
	var dfs func(u int) int
	dfs = func(u int) int {
		switch state[u] {
		case inStack:
			cyclic = true
			return 0
		case done:
			return depth[u]
		}
		state[u] = inStack
		best := 0
		for _, v := range adj[u] {
			if d := dfs(v) + 1; d > best {
				best = d
			}
			if cyclic {
				break
			}
		}
		state[u] = done
		depth[u] = best
		return best
	}
	longest := 0
	for u := range list {
		if d := dfs(u); d > longest {
			longest = d
		}
		if cyclic {
			return 0, false
		}
	}
	// A pair surviving a path of length L means words of length L+1 that
	// leave it unsynchronized... the path length counts edges; a pair with
	// longest off-diagonal path L tolerates L further symbols, so k = L+1
	// inputs are required counting the one that enters the pair graph.
	return longest + 1, true
}

// Equal reports whether two machines produce identical predictions on all
// input sequences starting from their start states.
func Equal(a, b *Machine) bool {
	return dfa.Equal(a.ToDFA(), b.ToDFA())
}

// Isomorphic reports whether the reachable parts of two machines are
// identical up to renumbering.
func Isomorphic(a, b *Machine) bool {
	return dfa.Isomorphic(a.ToDFA(), b.ToDFA())
}

// DOT renders the machine in Graphviz format, with each state labelled by
// its number and prediction, matching the paper's figures.
func (m *Machine) DOT() string {
	var sb strings.Builder
	name := m.Name
	if name == "" {
		name = "fsm"
	}
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("\trankdir=LR;\n\tnode [shape=circle];\n")
	fmt.Fprintf(&sb, "\tinit [shape=point];\n\tinit -> s%d;\n", m.Start)
	for s := range m.Next {
		out := 0
		if m.Output[s] {
			out = 1
		}
		fmt.Fprintf(&sb, "\ts%d [label=\"s%d\\n[%d]\"];\n", s, s, out)
	}
	for s, row := range m.Next {
		if row[0] == row[1] {
			fmt.Fprintf(&sb, "\ts%d -> s%d [label=\"0,1\"];\n", s, row[0])
			continue
		}
		fmt.Fprintf(&sb, "\ts%d -> s%d [label=\"0\"];\n", s, row[0])
		fmt.Fprintf(&sb, "\ts%d -> s%d [label=\"1\"];\n", s, row[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String gives a compact one-line description.
func (m *Machine) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fsm(%d states, start s%d:", m.NumStates(), m.Start)
	for s, row := range m.Next {
		out := 0
		if m.Output[s] {
			out = 1
		}
		fmt.Fprintf(&sb, " s%d[%d]->(%d,%d)", s, out, row[0], row[1])
	}
	sb.WriteByte(')')
	return sb.String()
}

// WriteTo serializes the machine in a line-oriented text format:
//
//	fsm <numStates> <start> <name>
//	<output> <next0> <next1>     (one line per state)
func (m *Machine) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "fsm %d %d %s\n", m.NumStates(), m.Start, m.Name)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for s, row := range m.Next {
		out := 0
		if m.Output[s] {
			out = 1
		}
		k, err = fmt.Fprintf(bw, "%d %d %d\n", out, row[0], row[1])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a machine written by WriteTo.
func Read(r io.Reader) (*Machine, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("fsm: missing header")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) < 3 || fields[0] != "fsm" {
		return nil, fmt.Errorf("fsm: bad header %q", sc.Text())
	}
	var n, start int
	if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &n, &start); err != nil {
		return nil, fmt.Errorf("fsm: bad header %q: %v", sc.Text(), err)
	}
	m := &Machine{Start: start}
	if len(fields) > 3 {
		m.Name = strings.Join(fields[3:], " ")
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("fsm: expected %d state rows, got %d", n, i)
		}
		var out, n0, n1 int
		if _, err := fmt.Sscanf(sc.Text(), "%d %d %d", &out, &n0, &n1); err != nil {
			return nil, fmt.Errorf("fsm: bad state row %q: %v", sc.Text(), err)
		}
		m.Output = append(m.Output, out != 0)
		m.Next = append(m.Next, [2]int{n0, n1})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, sc.Err()
}
