package fsm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"fsmpredict/internal/bitseq"
	"fsmpredict/internal/dfa"
	"fsmpredict/internal/nfa"
	"fsmpredict/internal/regex"
)

// figure1Machine is the 3-state machine of Figure 1 (right): predict 1
// unless the last two inputs were 00. State encodes the last two bits:
// s0 = 00 [0], s1 = x1 [1] (last bit 1), s2 = 10 [1].
func figure1Machine() *Machine {
	return &Machine{
		Name:   "figure1",
		Output: []bool{false, true, true},
		Next:   [][2]int{{0, 1}, {2, 1}, {0, 1}},
		Start:  0,
	}
}

// pipelineMachine compiles a cube cover through the full
// regex→NFA→DFA→minimize→trim pipeline.
func pipelineMachine(t *testing.T, cubes ...string) *Machine {
	t.Helper()
	var cover []bitseq.Cube
	for _, s := range cubes {
		cover = append(cover, bitseq.MustParseCube(s))
	}
	d := dfa.FromNFA(nfa.Compile(regex.FromCover(cover))).Minimize().TrimStartup()
	m := FromDFA(d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	good := figure1Machine()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Machine{
		{},
		{Output: []bool{true}, Next: [][2]int{{0, 0}}, Start: 2},
		{Output: []bool{true, false}, Next: [][2]int{{0, 0}}, Start: 0},
		{Output: []bool{true}, Next: [][2]int{{0, 9}}, Start: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunnerPredictUpdate(t *testing.T) {
	m := figure1Machine()
	r := m.NewRunner()
	if r.Predict() {
		t.Error("start state should predict 0")
	}
	r.Update(true) // history x1
	if !r.Predict() {
		t.Error("after a 1 should predict 1")
	}
	r.Update(false) // history 10
	if !r.Predict() {
		t.Error("after 1,0 should predict 1")
	}
	r.Update(false) // history 00
	if r.Predict() {
		t.Error("after 0,0 should predict 0")
	}
	r.Reset()
	if r.State() != m.Start {
		t.Error("Reset should return to start")
	}
}

func TestSimulate(t *testing.T) {
	m := figure1Machine()
	// On an all-ones trace the machine mispredicts only the first bit.
	trace := make([]bool, 50)
	for i := range trace {
		trace[i] = true
	}
	res := m.Simulate(trace, 0)
	if res.Total != 50 || res.Correct != 49 {
		t.Fatalf("Simulate = %+v, want 49/50", res)
	}
	if res.MissRate() != 1.0/50 {
		t.Errorf("MissRate = %v", res.MissRate())
	}
	// Warm-up skip removes the initial misprediction.
	res = m.Simulate(trace, 1)
	if res.Total != 49 || res.Correct != 49 {
		t.Fatalf("Simulate with skip = %+v, want 49/49", res)
	}
	if res.Accuracy() != 1 {
		t.Errorf("Accuracy = %v, want 1", res.Accuracy())
	}
}

func TestSimResultEmpty(t *testing.T) {
	var r SimResult
	if r.MissRate() != 0 || r.Accuracy() != 0 {
		t.Error("empty result should report zero rates")
	}
}

func TestFromToDFARoundTrip(t *testing.T) {
	m := figure1Machine()
	back := FromDFA(m.ToDFA())
	if !Isomorphic(m, back) || !Equal(m, back) {
		t.Fatal("DFA round trip changed the machine")
	}
}

func TestFigure1PipelineProducesKnownMachine(t *testing.T) {
	m := pipelineMachine(t, "x1", "1x")
	if m.NumStates() != 3 {
		t.Fatalf("pipeline machine has %d states, want 3", m.NumStates())
	}
	if !Equal(m, figure1Machine()) {
		t.Fatalf("pipeline machine differs from Figure 1:\n%s", m)
	}
}

func TestFigure6Property(t *testing.T) {
	// Figure 6: machine for cover {1x} (width 2). From ANY state,
	// following inputs b1 then b2 lands in a state predicting b1.
	m := pipelineMachine(t, "1x")
	if m.NumStates() != 4 {
		t.Errorf("Figure 6 machine has %d states, want 4", m.NumStates())
	}
	for s := 0; s < m.NumStates(); s++ {
		for _, b1 := range []bool{false, true} {
			for _, b2 := range []bool{false, true} {
				end := m.Step(m.Step(s, b1), b2)
				if m.Output[end] != b1 {
					t.Errorf("from s%d inputs %v,%v: predict %v, want %v",
						s, b1, b2, m.Output[end], b1)
				}
			}
		}
	}
}

func TestSyncDepthPipelineBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		width := rng.Intn(5) + 2
		var cubes []string
		for i := 0; i < rng.Intn(3)+1; i++ {
			c := bitseq.NewCube(rng.Uint32(), rng.Uint32()|1, width)
			cubes = append(cubes, c.String())
		}
		m := pipelineMachine(t, cubes...)
		k, ok := m.SyncDepth()
		if !ok {
			t.Fatalf("trial %d (cubes %v): pipeline machine must synchronize", trial, cubes)
		}
		if k > width {
			t.Fatalf("trial %d: SyncDepth %d exceeds history width %d", trial, k, width)
		}
		// Directly verify: every width-length word drives all states to
		// one state.
		for w := 0; w < 1<<uint(width); w++ {
			end := -1
			for s := 0; s < m.NumStates(); s++ {
				cur := s
				for i := width - 1; i >= 0; i-- {
					cur = m.Step(cur, w>>uint(i)&1 == 1)
				}
				if end < 0 {
					end = cur
				} else if end != cur {
					t.Fatalf("trial %d: word %b does not synchronize", trial, w)
				}
			}
		}
	}
}

func TestSyncDepthCounterUnbounded(t *testing.T) {
	// A 2-bit saturating counter never synchronizes: alternating inputs
	// keep two middle states apart forever.
	counter := &Machine{
		Output: []bool{false, false, true, true},
		Next:   [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		Start:  0,
	}
	if _, ok := counter.SyncDepth(); ok {
		t.Fatal("saturating counter should not synchronize")
	}
}

func TestSyncDepthSingleState(t *testing.T) {
	m := &Machine{Output: []bool{true}, Next: [][2]int{{0, 0}}, Start: 0}
	k, ok := m.SyncDepth()
	if !ok || k != 0 {
		t.Fatalf("SyncDepth = %d/%v, want 0/true", k, ok)
	}
}

func TestDOT(t *testing.T) {
	m := figure1Machine()
	dot := m.DOT()
	for _, want := range []string{
		"digraph", "init -> s0", `s0 [label="s0\n[0]"]`,
		`s1 [label="s1\n[1]"]`, `s1 -> s2 [label="0"]`,
		`s0 -> s0 [label="0"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Merged-edge rendering.
	loop := &Machine{Output: []bool{true}, Next: [][2]int{{0, 0}}, Start: 0}
	if !strings.Contains(loop.DOT(), `label="0,1"`) {
		t.Error("DOT should merge identical edges")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m := figure1Machine()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Start != m.Start || !Isomorphic(got, m) {
		t.Fatalf("round trip mismatch: %s vs %s", got, m)
	}
	for s := range m.Next {
		if got.Next[s] != m.Next[s] || got.Output[s] != m.Output[s] {
			t.Fatalf("state %d mismatch", s)
		}
	}
}

func TestReadErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"bogus 1 0\n1 0 0\n",
		"fsm 2 0 x\n1 0 0\n", // missing row
		"fsm 1 0\nz 0 0\n",
		"fsm 1 5 name\n1 0 0\n", // bad start
	} {
		if _, err := Read(bytes.NewBufferString(s)); err == nil {
			t.Errorf("Read(%q): expected error", s)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := figure1Machine()
	c := m.Clone()
	c.Output[0] = true
	c.Next[0][0] = 1
	if m.Output[0] || m.Next[0][0] != 0 {
		t.Fatal("Clone not independent")
	}
}

func TestEqualDistinguishes(t *testing.T) {
	a := figure1Machine()
	b := figure1Machine()
	b.Output[0] = true // now predicts 1 everywhere
	if Equal(a, b) {
		t.Fatal("machines with different outputs should differ")
	}
}

func TestStringContainsStates(t *testing.T) {
	s := figure1Machine().String()
	if !strings.Contains(s, "3 states") || !strings.Contains(s, "s0[0]") {
		t.Errorf("String = %q", s)
	}
}

// TestSimulateNoAllocs pins the zero-allocation guarantee of Simulate: the
// service hot path simulates the same machine over many cached traces, so
// per-call allocations would dominate the profile.
func TestSimulateNoAllocs(t *testing.T) {
	m := figure1Machine()
	trace := make([]bool, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range trace {
		trace[i] = rng.Intn(2) == 1
	}
	var sink SimResult
	allocs := testing.AllocsPerRun(100, func() {
		sink = m.Simulate(trace, 16)
	})
	if allocs != 0 {
		t.Fatalf("Simulate allocates %v times per run, want 0", allocs)
	}
	if sink.Total != len(trace)-16 {
		t.Fatalf("Total = %d, want %d", sink.Total, len(trace)-16)
	}
}

func BenchmarkSimulate(b *testing.B) {
	m := figure1Machine()
	trace := make([]bool, 65536)
	rng := rand.New(rand.NewSource(3))
	for i := range trace {
		trace[i] = rng.Intn(2) == 1
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(trace)))
	for i := 0; i < b.N; i++ {
		m.Simulate(trace, 0)
	}
}
