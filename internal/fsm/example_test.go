package fsm_test

import (
	"fmt"

	"fsmpredict/internal/fsm"
)

// ExampleMachine_Simulate drives the Figure 1 machine over a trace.
func ExampleMachine_Simulate() {
	m := &fsm.Machine{
		Name:   "figure1",
		Output: []bool{false, true, true},
		Next:   [][2]int{{0, 1}, {2, 1}, {0, 1}},
		Start:  0,
	}
	trace := []bool{true, true, true, false, false, true}
	res := m.Simulate(trace, 2)
	fmt.Printf("correct %d of %d\n", res.Correct, res.Total)
	// Output:
	// correct 1 of 4
}

// ExampleMachine_SyncDepth shows the §7.6 synchronization property that
// makes the update-all policy safe.
func ExampleMachine_SyncDepth() {
	m := &fsm.Machine{
		Output: []bool{false, true, true},
		Next:   [][2]int{{0, 1}, {2, 1}, {0, 1}},
		Start:  0,
	}
	k, ok := m.SyncDepth()
	fmt.Printf("synchronizes after %d inputs: %v\n", k, ok)
	// Output:
	// synchronizes after 2 inputs: true
}
